package helixpipe

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exampleFleet resolves the committed capacity-study spec, optionally
// overriding the policy.
func exampleFleet(t *testing.T, policy string) (*Session, FleetSpec) {
	t.Helper()
	spec, err := ParseSpecFile("examples/fleet_capacity/fleet_stream.json")
	if err != nil {
		t.Fatal(err)
	}
	if policy != "" {
		spec.Fleet.Policy = policy
	}
	session, runset, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if runset.Kind != RunKindFleet || runset.Fleet == nil {
		t.Fatalf("example spec resolved to kind %q, want fleet", runset.Kind)
	}
	return session, *runset.Fleet
}

// TestFleetExampleStream is the acceptance run: the committed example spec
// streams ≥50 jobs onto a preset topology and the report carries the
// capacity-planning metrics — queue wait, JCT, utilization, fragmentation —
// with the spec→Report cache absorbing repeated job shapes.
func TestFleetExampleStream(t *testing.T) {
	session, fs := exampleFleet(t, "")
	if len(fs.Jobs) < 50 {
		t.Fatalf("example stream has %d jobs, want >= 50", len(fs.Jobs))
	}
	report, err := session.Fleet(fs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Jobs != len(fs.Jobs) || len(report.JobRecords) != report.Jobs {
		t.Errorf("report covers %d jobs (%d records), want %d",
			report.Jobs, len(report.JobRecords), len(fs.Jobs))
	}
	if report.MakespanSec <= 0 {
		t.Error("no makespan")
	}
	if report.Wait.MeanSec <= 0 {
		t.Error("no queue wait despite an oversubscribed arrival rate")
	}
	if report.JCT.MeanSec <= report.Wait.MeanSec {
		t.Error("mean JCT not above mean wait")
	}
	if report.Utilization <= 0 || report.Utilization > 1 {
		t.Errorf("utilization %g out of (0,1]", report.Utilization)
	}
	if report.Fragmentation < 0 || report.Fragmentation > 1 {
		t.Errorf("fragmentation %g out of [0,1]", report.Fragmentation)
	}
	if report.CacheHits == 0 {
		t.Error("no cache hits on a repeated-job-shape stream")
	}
	if report.CacheMisses == 0 || report.CacheMisses >= report.Jobs/2 {
		t.Errorf("%d cache misses over %d jobs; the cache is not absorbing repeats",
			report.CacheMisses, report.Jobs)
	}
	if len(report.LinkTraffic) == 0 {
		t.Error("no per-link-class traffic")
	}
}

// TestFleetBestFitBeatsFIFO pins the policy comparison the subsystem exists
// to answer: on the example stream, best-fit's node packing finishes the
// stream sooner than FIFO's first-fit carve.
func TestFleetBestFitBeatsFIFO(t *testing.T) {
	cache := NewReportCache() // shared: both policies price identical job shapes
	run := func(policy string) *FleetReport {
		session, fs := exampleFleet(t, policy)
		fs.Cache = cache
		report, err := session.Fleet(fs)
		if err != nil {
			t.Fatal(err)
		}
		return report
	}
	fifo := run(FleetPolicyFIFO)
	best := run(FleetPolicyBestFit)
	if best.MakespanSec >= fifo.MakespanSec {
		t.Errorf("best-fit makespan %.1fs is not below fifo %.1fs",
			best.MakespanSec, fifo.MakespanSec)
	}
	if best.Wait.MeanSec >= fifo.Wait.MeanSec {
		t.Errorf("best-fit mean wait %.1fs is not below fifo %.1fs",
			best.Wait.MeanSec, fifo.Wait.MeanSec)
	}
}

// TestFleetDeterministicJSON pins end-to-end determinism: resolving and
// running the same spec twice, from scratch, yields byte-identical fleet
// report JSON.
func TestFleetDeterministicJSON(t *testing.T) {
	render := func() []byte {
		session, fs := exampleFleet(t, "")
		report, err := session.Fleet(fs)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFleetReportJSON(&buf, report); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Error("identical specs produced different fleet report JSON")
	}
}

// TestFleetSpecRoundTrip pins -emit-spec idempotency for the fleet section:
// a resolved spec re-resolves to the identical job stream.
func TestFleetSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpecFile("examples/fleet_capacity/fleet_stream.json")
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := spec.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	_, rs1, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	_, rs2, err := resolved.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs1.Fleet.Jobs) != len(rs2.Fleet.Jobs) {
		t.Fatalf("round trip changed the stream: %d vs %d jobs",
			len(rs1.Fleet.Jobs), len(rs2.Fleet.Jobs))
	}
	for i := range rs1.Fleet.Jobs {
		j1, j2 := rs1.Fleet.Jobs[i], rs2.Fleet.Jobs[i]
		if j1.ID != j2.ID || j1.Template != j2.Template ||
			j1.ArrivalSec != j2.ArrivalSec || j1.Priority != j2.Priority ||
			j1.Iterations != j2.Iterations {
			t.Fatalf("job %d drifted through the round trip: %+v vs %+v", i, j1, j2)
		}
	}
}

// TestFleetExecuteRejected pins the entry-point split: Execute refuses fleet
// specs and points at Session.Fleet.
func TestFleetExecuteRejected(t *testing.T) {
	spec, err := ParseSpecFile("examples/fleet_capacity/fleet_stream.json")
	if err != nil {
		t.Fatal(err)
	}
	session, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range session.Execute(spec) {
		if err == nil || !strings.Contains(err.Error(), "Session.Fleet") {
			t.Fatalf("Execute on a fleet spec: err = %v, want a Session.Fleet redirect", err)
		}
		break
	}
}

// TestFleetRequiresTopology pins the flat-cluster error.
func TestFleetRequiresTopology(t *testing.T) {
	spec := &ExperimentSpec{Model: "3B", Cluster: "A800", SeqLen: 8192, Stages: 4,
		Methods: []string{"HelixPipe"},
		Fleet:   &SpecFleet{Templates: []SpecFleetTemplate{{Name: "a"}}},
	}
	if _, _, err := spec.Resolve(); err == nil ||
		!strings.Contains(err.Error(), "topology") {
		t.Errorf("flat-cluster fleet spec resolved: err = %v", err)
	}
}

// TestFleetTraceReplay drives the trace path end to end: a replayed trace
// produces jobs at the traced arrivals with the traced overrides.
func TestFleetTraceReplay(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	if err := os.WriteFile(trace, []byte(`[
		{"arrival_sec": 0, "template": "short-8k"},
		{"arrival_sec": 30, "template": "long-16k", "priority": 9},
		{"arrival_sec": 30, "template": "short-8k", "iterations": 7}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpecFile("examples/fleet_capacity/fleet_stream.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.Fleet.Trace = trace
	spec.Fleet.Jobs = 0
	spec.Fleet.Arrival = ""
	spec.Fleet.RatePerHour = 0
	session, runset, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	fs := runset.Fleet
	if len(fs.Jobs) != 3 {
		t.Fatalf("trace produced %d jobs, want 3", len(fs.Jobs))
	}
	if fs.Jobs[1].Priority != 9 || fs.Jobs[2].Iterations != 7 {
		t.Errorf("trace overrides lost: %+v", fs.Jobs)
	}
	report, err := session.Fleet(*fs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Jobs != 3 {
		t.Errorf("trace run covered %d jobs, want 3", report.Jobs)
	}
}

// TestFleetProbeAndPerfetto pins the observability surface: the spec-level
// probe sees every engine event with sane cumulative counters, and the
// fleet report exports as a valid Perfetto trace with one process per job.
func TestFleetProbeAndPerfetto(t *testing.T) {
	session, fs := exampleFleet(t, "")
	probes := 0
	fs.Probe = func(p FleetProbeEvent) {
		probes++
		if p.Queued < 0 || p.Running < 0 || p.Preemptions < 0 {
			t.Fatalf("negative probe counters at t=%gs: %+v", p.TimeSec, p)
		}
	}
	report, err := session.Fleet(fs)
	if err != nil {
		t.Fatal(err)
	}
	if probes == 0 {
		t.Fatal("spec probe never fired")
	}

	var buf bytes.Buffer
	if err := WriteFleetPerfetto(&buf, report); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("fleet trace is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	runs := 0
	for _, e := range doc.TraceEvents {
		if e["ph"] == "M" && e["name"] == "process_name" {
			pids[e["pid"].(float64)] = true
		}
		if e["ph"] == "X" && e["name"] == "run" {
			runs++
			if e["ts"].(float64) < 0 || e["dur"].(float64) < 0 {
				t.Fatalf("run slice with negative time: %v", e)
			}
		}
	}
	if len(pids) != report.Jobs {
		t.Errorf("trace names %d processes, want one per job (%d)", len(pids), report.Jobs)
	}
	if runs != report.Jobs {
		t.Errorf("trace has %d run slices, want %d", runs, report.Jobs)
	}
}
