package helixpipe

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDegradeAwarePlacementBeatsClean is the acceptance test of the
// placement-resolved cost pipeline: on the mixed A800+H20 preset with the
// NVLink fabric degraded below InfiniBand, the greedy search run under the
// perturbed topology must find a placement that simulates strictly faster —
// on the same perturbed simulator — than the placement the clean-topology
// search returns. Before perturbation-aware search pricing, both searches
// returned the same NVLink-packed placement and this test could not pass.
func TestDegradeAwarePlacementBeatsClean(t *testing.T) {
	cl, topo, err := ResolveCluster("DGX-A800x2-H20x2")
	if err != nil {
		t.Fatal(err)
	}
	pt, err := ParsePerturb("link=nvlinkx0.15")
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := NewSession(Model3B(), cl,
		WithCluster(*topo), WithSeqLen(16384), WithPerturb(pt))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewSession(Model3B(), cl, WithCluster(*topo), WithSeqLen(16384))
	if err != nil {
		t.Fatal(err)
	}

	const method = Method("1F1B")
	awarePlace, err := perturbed.PlacementFor(method, "greedy", 0)
	if err != nil {
		t.Fatal(err)
	}
	cleanPlace, err := clean.PlacementFor(method, "greedy", 0)
	if err != nil {
		t.Fatal(err)
	}

	simulate := func(p Placement) float64 {
		t.Helper()
		ses, err := perturbed.With(WithPlacement(p))
		if err != nil {
			t.Fatal(err)
		}
		r, err := ses.Simulate(method)
		if err != nil {
			t.Fatal(err)
		}
		return r.Sim.IterationSeconds
	}
	aware, naive := simulate(awarePlace), simulate(cleanPlace)
	if aware >= naive {
		t.Errorf("degrade-aware placement %v simulates at %gs, clean-search placement %v at %gs; want strictly faster",
			awarePlace.Devices, aware, cleanPlace.Devices, naive)
	}
}

// TestHeterogeneousClusterSpecRoundTrip pins the end-to-end JSON path of
// mixed-generation clusters: a topology file with per-node GPU names loads
// through an ExperimentSpec, resolves to a heterogeneous session, and
// re-marshals without losing the per-node GPU fields.
func TestHeterogeneousClusterSpecRoundTrip(t *testing.T) {
	cl, topo, err := ResolveCluster("DGX-A800x2-H20x2")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Name != "A800" {
		t.Errorf("mixed preset prices base compute on %q, want the A800 flat spec", cl.Name)
	}
	if !topo.Heterogeneous() {
		t.Fatal("mixed preset does not report as heterogeneous")
	}
	if got := topo.GPUOf(0); got != "A800" {
		t.Errorf("device 0 GPU %q, want A800", got)
	}
	if got := topo.GPUOf(16); got != "H20" {
		t.Errorf("device 16 GPU %q, want H20", got)
	}

	// Round-trip the topology through JSON: per-node GPU names survive.
	raw, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"gpu":"H20"`) {
		t.Fatalf("marshalled topology lost the per-node GPU field: %s", raw)
	}
	path := filepath.Join(t.TempDir(), "mixed.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A spec naming the topology file resolves to the same heterogeneous view.
	spec, err := ParseSpec(strings.NewReader(`{
		"model": "3B",
		"cluster": "` + path + `",
		"seq_len": 16384,
		"stages": 8,
		"methods": ["1F1B"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ses, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ses.Topology()
	if !ok {
		t.Fatal("spec session has no topology")
	}
	if !got.Heterogeneous() || got.GPUOf(16) != "H20" {
		t.Errorf("spec-loaded topology lost heterogeneity: %+v", got)
	}
}

// TestUnknownNodeGPURejected pins eager validation: a topology node naming a
// GPU with no cost-model spec must fail session construction, not silently
// price at the cluster default.
func TestUnknownNodeGPURejected(t *testing.T) {
	cl, topo, err := ResolveCluster("DGX-A800x2-H20x2")
	if err != nil {
		t.Fatal(err)
	}
	bad := *topo
	bad.Nodes = append(topo.Nodes[:0:0], topo.Nodes...)
	bad.Nodes[2].GPU = "B200"
	if _, err := NewSession(Model3B(), cl, WithCluster(bad)); err == nil {
		t.Error("unknown per-node GPU accepted")
	} else if !strings.Contains(err.Error(), "B200") {
		t.Errorf("error does not name the unknown GPU: %v", err)
	}
}
