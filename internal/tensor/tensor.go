// Package tensor is a small dense float32 tensor library with the forward
// and backward kernels a GPT-style transformer needs: blocked parallel
// matrix multiplication, LayerNorm, GeLU, causal softmax attention,
// embedding lookup and cross-entropy. It backs the numeric pipeline runtime
// (internal/exec) that validates HelixPipe's semantics-preservation claim
// with real gradients.
//
// Kernels are deterministic: parallel reductions are always performed in a
// fixed order, so distributed executions reproduce single-device results
// bit for bit.
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	// Shape holds the dimension sizes, outermost first.
	Shape []int
	// Data is the row-major backing storage, length = product of Shape.
	Data []float32
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape, validating length.
func FromSlice(data []float32, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Len() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return t
}

// Len returns the element count.
func (t *Tensor) Len() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero clears the tensor in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	mustSameShape("Add", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates src into dst.
func AddInPlace(dst, src *Tensor) {
	mustSameShape("AddInPlace", dst, src)
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// Scale multiplies the tensor by s in place and returns it.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// MaxAbsDiff returns the largest absolute element difference between two
// same-shaped tensors — the metric the gradient-equivalence tests use.
func MaxAbsDiff(a, b *Tensor) float64 {
	mustSameShape("MaxAbsDiff", a, b)
	var worst float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

func mustSameShape(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// parallelFor runs fn over [0,n) split into contiguous chunks across
// GOMAXPROCS workers. Chunk boundaries are deterministic, and each index is
// processed by exactly one worker, so writes never race and reductions
// inside a chunk stay ordered.
func parallelFor(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 64 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns a [m,k] x [k,n] -> [m,n] product. Rows are computed in
// parallel; the inner accumulation is float64 for reproducible, well-
// conditioned sums.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul shapes %v x %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b.Data[kk*n : (kk+1)*n]
				for j := range orow {
					orow[j] += av * brow[j]
				}
			}
		}
	})
	return out
}

// MatMulT returns a [m,k] x [n,k]^T -> [m,n] product (B transposed), the
// layout backward passes need for dX = dY * W^T.
func MatMulT(a, bT *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(bT.Shape) != 2 || a.Shape[1] != bT.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulT shapes %v x %v^T", a.Shape, bT.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], bT.Shape[0]
	out := New(m, n)
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bT.Data[j*k : (j+1)*k]
				var sum float64
				for kk := 0; kk < k; kk++ {
					sum += float64(arow[kk]) * float64(brow[kk])
				}
				orow[j] = float32(sum)
			}
		}
	})
	return out
}

// TMatMul returns a [k,m]^T x [k,n] -> [m,n] product (A transposed), the
// layout weight gradients need for dW = X^T * dY.
func TMatMul(aT, b *Tensor) *Tensor {
	if len(aT.Shape) != 2 || len(b.Shape) != 2 || aT.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: TMatMul shapes %v^T x %v", aT.Shape, b.Shape))
	}
	k, m, n := aT.Shape[0], aT.Shape[1], b.Shape[1]
	out := New(m, n)
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*n : (i+1)*n]
			for kk := 0; kk < k; kk++ {
				av := aT.Data[kk*m+i]
				if av == 0 {
					continue
				}
				brow := b.Data[kk*n : (kk+1)*n]
				for j := range orow {
					orow[j] += av * brow[j]
				}
			}
		}
	})
	return out
}
