package tensor

import (
	"fmt"
	"math"
)

// Flatten2D views a [d0, d1, ..., h] tensor as [d0*d1*..., h] sharing the
// same backing storage.
func Flatten2D(t *Tensor) *Tensor {
	h := t.Shape[len(t.Shape)-1]
	return &Tensor{Shape: []int{t.Len() / h, h}, Data: t.Data}
}

// Reshape returns a view of t with the new shape (same element count).
func Reshape(t *Tensor, shape ...int) *Tensor {
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Len() != t.Len() {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v changes size", t.Shape, shape))
	}
	return v
}

// LayerNormCtx carries the forward statistics LayerNorm backward needs.
type LayerNormCtx struct {
	X     *Tensor
	Gamma *Tensor
	Mean  []float32
	Rstd  []float32
}

// LayerNormForward normalizes each row of x ([n, h]) and applies the affine
// transform gamma/beta ([h]).
func LayerNormForward(x, gamma, beta *Tensor) (*Tensor, *LayerNormCtx) {
	n, h := x.Shape[0], x.Shape[1]
	out := New(n, h)
	ctx := &LayerNormCtx{X: x, Gamma: gamma, Mean: make([]float32, n), Rstd: make([]float32, n)}
	const eps = 1e-5
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x.Data[i*h : (i+1)*h]
			var mean float64
			for _, v := range row {
				mean += float64(v)
			}
			mean /= float64(h)
			var varsum float64
			for _, v := range row {
				d := float64(v) - mean
				varsum += d * d
			}
			rstd := 1 / math.Sqrt(varsum/float64(h)+eps)
			ctx.Mean[i] = float32(mean)
			ctx.Rstd[i] = float32(rstd)
			orow := out.Data[i*h : (i+1)*h]
			for j, v := range row {
				xhat := (float64(v) - mean) * rstd
				orow[j] = float32(xhat)*gamma.Data[j] + beta.Data[j]
			}
		}
	})
	return out, ctx
}

// LayerNormBackward returns (dx, dgamma, dbeta) for dy ([n, h]).
func LayerNormBackward(ctx *LayerNormCtx, dy *Tensor) (*Tensor, *Tensor, *Tensor) {
	n, h := ctx.X.Shape[0], ctx.X.Shape[1]
	dx := New(n, h)
	dgamma := New(h)
	dbeta := New(h)
	// dgamma/dbeta reductions run serially over rows for determinism.
	for i := 0; i < n; i++ {
		mean, rstd := float64(ctx.Mean[i]), float64(ctx.Rstd[i])
		xrow := ctx.X.Data[i*h : (i+1)*h]
		dyrow := dy.Data[i*h : (i+1)*h]
		for j := 0; j < h; j++ {
			xhat := (float64(xrow[j]) - mean) * rstd
			dgamma.Data[j] += dyrow[j] * float32(xhat)
			dbeta.Data[j] += dyrow[j]
		}
	}
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mean, rstd := float64(ctx.Mean[i]), float64(ctx.Rstd[i])
			xrow := ctx.X.Data[i*h : (i+1)*h]
			dyrow := dy.Data[i*h : (i+1)*h]
			var sumDy, sumDyXhat float64
			for j := 0; j < h; j++ {
				g := float64(dyrow[j]) * float64(ctx.Gamma.Data[j])
				xhat := (float64(xrow[j]) - mean) * rstd
				sumDy += g
				sumDyXhat += g * xhat
			}
			inv := 1 / float64(h)
			for j := 0; j < h; j++ {
				g := float64(dyrow[j]) * float64(ctx.Gamma.Data[j])
				xhat := (float64(xrow[j]) - mean) * rstd
				dx.Data[i*h+j] = float32((g - sumDy*inv - xhat*sumDyXhat*inv) * rstd)
			}
		}
	})
	return dx, dgamma, dbeta
}

// geluCoeff is sqrt(2/pi) for the tanh GeLU approximation.
const geluCoeff = 0.7978845608028654

// GeLUForward applies the tanh-approximated GeLU elementwise.
func GeLUForward(x *Tensor) *Tensor {
	out := New(x.Shape...)
	parallelFor(len(x.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := float64(x.Data[i])
			out.Data[i] = float32(0.5 * v * (1 + math.Tanh(geluCoeff*(v+0.044715*v*v*v))))
		}
	})
	return out
}

// GeLUBackward returns dx given the forward input x and upstream dy.
func GeLUBackward(x, dy *Tensor) *Tensor {
	dx := New(x.Shape...)
	parallelFor(len(x.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := float64(x.Data[i])
			u := geluCoeff * (v + 0.044715*v*v*v)
			t := math.Tanh(u)
			du := geluCoeff * (1 + 3*0.044715*v*v)
			grad := 0.5*(1+t) + 0.5*v*(1-t*t)*du
			dx.Data[i] = float32(grad * float64(dy.Data[i]))
		}
	})
	return dx
}

// AttnCtx carries the flash-attention style stash: the inputs and the
// per-head softmax probabilities needed by the backward pass.
type AttnCtx struct {
	Q, K, V *Tensor
	Heads   int
	Probs   []*Tensor // one [s, s] tensor per (batch, head)
}

// CausalAttentionForward computes multi-head causal attention. q, k, v are
// [b, s, h] with h split into heads; the output has the same shape. The
// score matrix is lower-triangular (token i attends to tokens <= i).
func CausalAttentionForward(q, k, v *Tensor, heads int) (*Tensor, *AttnCtx) {
	b, s, h := q.Shape[0], q.Shape[1], q.Shape[2]
	hd := h / heads
	if hd*heads != h {
		panic(fmt.Sprintf("tensor: hidden %d not divisible by heads %d", h, heads))
	}
	out := New(b, s, h)
	ctx := &AttnCtx{Q: q, K: k, V: v, Heads: heads, Probs: make([]*Tensor, b*heads)}
	scale := 1 / math.Sqrt(float64(hd))
	parallelFor(b*heads, func(lo, hi int) {
		for bh := lo; bh < hi; bh++ {
			bi, hh := bh/heads, bh%heads
			probs := New(s, s)
			for i := 0; i < s; i++ {
				qrow := q.Data[(bi*s+i)*h+hh*hd : (bi*s+i)*h+(hh+1)*hd]
				// Scores for keys 0..i, softmax over the causal prefix.
				maxv := math.Inf(-1)
				scores := make([]float64, i+1)
				for j := 0; j <= i; j++ {
					krow := k.Data[(bi*s+j)*h+hh*hd : (bi*s+j)*h+(hh+1)*hd]
					var dot float64
					for d := 0; d < hd; d++ {
						dot += float64(qrow[d]) * float64(krow[d])
					}
					scores[j] = dot * scale
					if scores[j] > maxv {
						maxv = scores[j]
					}
				}
				var denom float64
				for j := 0; j <= i; j++ {
					scores[j] = math.Exp(scores[j] - maxv)
					denom += scores[j]
				}
				orow := out.Data[(bi*s+i)*h+hh*hd : (bi*s+i)*h+(hh+1)*hd]
				for j := 0; j <= i; j++ {
					p := float32(scores[j] / denom)
					probs.Data[i*s+j] = p
					vrow := v.Data[(bi*s+j)*h+hh*hd : (bi*s+j)*h+(hh+1)*hd]
					for d := 0; d < hd; d++ {
						orow[d] += p * vrow[d]
					}
				}
			}
			ctx.Probs[bh] = probs
		}
	})
	return out, ctx
}

// CausalAttentionBackward returns (dq, dk, dv) for upstream dy ([b, s, h]).
func CausalAttentionBackward(ctx *AttnCtx, dy *Tensor) (*Tensor, *Tensor, *Tensor) {
	q, k, v, heads := ctx.Q, ctx.K, ctx.V, ctx.Heads
	b, s, h := q.Shape[0], q.Shape[1], q.Shape[2]
	hd := h / heads
	dq := New(b, s, h)
	dk := New(b, s, h)
	dv := New(b, s, h)
	scale := 1 / math.Sqrt(float64(hd))
	parallelFor(b*heads, func(lo, hi int) {
		for bh := lo; bh < hi; bh++ {
			bi, hh := bh/heads, bh%heads
			probs := ctx.Probs[bh]
			off := func(t *Tensor, i int) []float32 {
				return t.Data[(bi*s+i)*h+hh*hd : (bi*s+i)*h+(hh+1)*hd]
			}
			for i := 0; i < s; i++ {
				dyrow := off(dy, i)
				// dV and dP.
				dp := make([]float64, i+1)
				for j := 0; j <= i; j++ {
					p := float64(probs.Data[i*s+j])
					vrow := off(v, j)
					dvrow := off(dv, j)
					var dot float64
					for d := 0; d < hd; d++ {
						dot += float64(dyrow[d]) * float64(vrow[d])
						dvrow[d] += float32(p) * dyrow[d]
					}
					dp[j] = dot
				}
				// Softmax backward: ds_j = p_j * (dp_j - sum_k p_k dp_k).
				var dot float64
				for j := 0; j <= i; j++ {
					dot += float64(probs.Data[i*s+j]) * dp[j]
				}
				qrow := off(q, i)
				dqrow := off(dq, i)
				for j := 0; j <= i; j++ {
					ds := float64(probs.Data[i*s+j]) * (dp[j] - dot) * scale
					krow := off(k, j)
					dkrow := off(dk, j)
					for d := 0; d < hd; d++ {
						dqrow[d] += float32(ds * float64(krow[d]))
						dkrow[d] += float32(ds * float64(qrow[d]))
					}
				}
			}
		}
	})
	return dq, dk, dv
}

// EmbeddingForward gathers rows of table ([v, h]) for ids ([n]) into [n, h].
func EmbeddingForward(table *Tensor, ids []int) *Tensor {
	h := table.Shape[1]
	out := New(len(ids), h)
	for i, id := range ids {
		if id < 0 || id >= table.Shape[0] {
			panic(fmt.Sprintf("tensor: embedding id %d out of range [0,%d)", id, table.Shape[0]))
		}
		copy(out.Data[i*h:(i+1)*h], table.Data[id*h:(id+1)*h])
	}
	return out
}

// EmbeddingBackward scatter-adds dy ([n, h]) into a gradient of the table.
func EmbeddingBackward(tableShape []int, ids []int, dy *Tensor) *Tensor {
	grad := New(tableShape...)
	h := tableShape[1]
	for i, id := range ids {
		grow := grad.Data[id*h : (id+1)*h]
		dyrow := dy.Data[i*h : (i+1)*h]
		for j := range grow {
			grow[j] += dyrow[j]
		}
	}
	return grad
}

// CrossEntropy computes the mean negative log-likelihood of targets under
// softmax(logits) ([n, v]) and the logits gradient in one pass — the fused
// "loss inside backward" shape the paper's section 4.6 moves the LM head to.
func CrossEntropy(logits *Tensor, targets []int) (float64, *Tensor) {
	n, v := logits.Shape[0], logits.Shape[1]
	if len(targets) != n {
		panic(fmt.Sprintf("tensor: %d targets for %d rows", len(targets), n))
	}
	grad := New(n, v)
	losses := make([]float64, n)
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := logits.Data[i*v : (i+1)*v]
			maxv := math.Inf(-1)
			for _, x := range row {
				if float64(x) > maxv {
					maxv = float64(x)
				}
			}
			var denom float64
			for _, x := range row {
				denom += math.Exp(float64(x) - maxv)
			}
			logDenom := math.Log(denom)
			tgt := targets[i]
			losses[i] = -(float64(row[tgt]) - maxv - logDenom)
			inv := 1 / float64(n)
			grow := grad.Data[i*v : (i+1)*v]
			for j, x := range row {
				p := math.Exp(float64(x)-maxv) / denom
				grow[j] = float32(p * inv)
			}
			grow[tgt] -= float32(inv)
		}
	})
	var loss float64
	for _, l := range losses {
		loss += l
	}
	return loss / float64(n), grad
}
