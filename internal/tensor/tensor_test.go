package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randTensor(t *testing.T, key uint64, shape ...int) *Tensor {
	t.Helper()
	out := New(shape...)
	rng.New(key).FillNormal(out.Data, 1)
	return out
}

func TestNewAndAccessors(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Dim(0) != 2 || x.Dim(2) != 4 {
		t.Fatal("shape accessors broken")
	}
	y := x.Clone()
	y.Data[0] = 5
	if x.Data[0] == 5 {
		t.Error("Clone must deep copy")
	}
	f := FromSlice(make([]float32, 6), 2, 3)
	if f.Len() != 6 {
		t.Error("FromSlice length")
	}
	v := Reshape(x, 6, 4)
	if v.Dim(0) != 6 || &v.Data[0] != &x.Data[0] {
		t.Error("Reshape must share storage")
	}
	fl := Flatten2D(x)
	if fl.Dim(0) != 6 || fl.Dim(1) != 4 {
		t.Error("Flatten2D shape")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative dim", func() { New(-1) })
	mustPanic("FromSlice mismatch", func() { FromSlice(make([]float32, 5), 2, 3) })
	mustPanic("MatMul shapes", func() { MatMul(New(2, 3), New(4, 5)) })
	mustPanic("Add shapes", func() { Add(New(2), New(3)) })
	mustPanic("Reshape size", func() { Reshape(New(4), 3) })
	mustPanic("embedding range", func() { EmbeddingForward(New(4, 2), []int{7}) })
}

// TestMatMulIdentity: multiplying by the identity is a no-op (property).
func TestMatMulIdentity(t *testing.T) {
	check := func(seed uint8) bool {
		n := int(seed)%6 + 2
		a := randTensor(t, uint64(seed)+1, n, n)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Data[i*n+i] = 1
		}
		return MaxAbsDiff(MatMul(a, id), a) < 1e-5 && MaxAbsDiff(MatMul(id, a), a) < 1e-5
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMatMulAgainstNaive cross-checks the parallel kernel with a serial
// reference on random shapes.
func TestMatMulAgainstNaive(t *testing.T) {
	check := func(ms, ks, ns, seed uint8) bool {
		m, k, n := int(ms)%7+1, int(ks)%7+1, int(ns)%7+1
		a := randTensor(t, uint64(seed)+11, m, k)
		b := randTensor(t, uint64(seed)+29, k, n)
		want := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var sum float64
				for kk := 0; kk < k; kk++ {
					sum += float64(a.Data[i*k+kk]) * float64(b.Data[kk*n+j])
				}
				want.Data[i*n+j] = float32(sum)
			}
		}
		return MaxAbsDiff(MatMul(a, b), want) < 1e-4
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTransposedVariants checks MatMulT and TMatMul against MatMul with
// explicitly transposed operands.
func TestTransposedVariants(t *testing.T) {
	transpose := func(x *Tensor) *Tensor {
		m, n := x.Shape[0], x.Shape[1]
		out := New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				out.Data[j*m+i] = x.Data[i*n+j]
			}
		}
		return out
	}
	a := randTensor(t, 3, 5, 7)
	b := randTensor(t, 4, 7, 6)
	want := MatMul(a, b)
	if d := MaxAbsDiff(MatMulT(a, transpose(b)), want); d > 1e-4 {
		t.Errorf("MatMulT differs by %g", d)
	}
	if d := MaxAbsDiff(TMatMul(transpose(a), b), want); d > 1e-4 {
		t.Errorf("TMatMul differs by %g", d)
	}
}

// numGrad computes a central finite-difference gradient of f w.r.t. x.
func numGrad(x *Tensor, f func() float64) *Tensor {
	grad := New(x.Shape...)
	const eps = 1e-3
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := f()
		x.Data[i] = orig - eps
		down := f()
		x.Data[i] = orig
		grad.Data[i] = float32((up - down) / (2 * eps))
	}
	return grad
}

// sumLoss reduces a tensor with fixed weights so gradients are nontrivial.
func sumLoss(y *Tensor) float64 {
	var s float64
	for i, v := range y.Data {
		s += float64(v) * math.Sin(float64(i)+1)
	}
	return s
}

// lossGrad returns dL/dy for sumLoss.
func lossGrad(y *Tensor) *Tensor {
	g := New(y.Shape...)
	for i := range g.Data {
		g.Data[i] = float32(math.Sin(float64(i) + 1))
	}
	return g
}

// TestLayerNormGradient checks analytic LayerNorm gradients against finite
// differences for input, gamma and beta.
func TestLayerNormGradient(t *testing.T) {
	x := randTensor(t, 7, 4, 6)
	gamma := randTensor(t, 8, 6)
	beta := randTensor(t, 9, 6)
	forward := func() float64 {
		y, _ := LayerNormForward(x, gamma, beta)
		return sumLoss(y)
	}
	y, ctx := LayerNormForward(x, gamma, beta)
	dx, dgamma, dbeta := LayerNormBackward(ctx, lossGrad(y))
	if d := MaxAbsDiff(dx, numGrad(x, forward)); d > 2e-2 {
		t.Errorf("LayerNorm dx off by %g", d)
	}
	if d := MaxAbsDiff(dgamma, numGrad(gamma, forward)); d > 2e-2 {
		t.Errorf("LayerNorm dgamma off by %g", d)
	}
	if d := MaxAbsDiff(dbeta, numGrad(beta, forward)); d > 2e-2 {
		t.Errorf("LayerNorm dbeta off by %g", d)
	}
}

// TestGeLUGradient checks the GeLU derivative against finite differences.
func TestGeLUGradient(t *testing.T) {
	x := randTensor(t, 11, 5, 3)
	forward := func() float64 { return sumLoss(GeLUForward(x)) }
	dx := GeLUBackward(x, lossGrad(GeLUForward(x)))
	if d := MaxAbsDiff(dx, numGrad(x, forward)); d > 2e-2 {
		t.Errorf("GeLU dx off by %g", d)
	}
}

// TestAttentionGradient checks causal attention gradients for q, k and v.
func TestAttentionGradient(t *testing.T) {
	const b, s, h, heads = 2, 5, 8, 2
	q := randTensor(t, 21, b, s, h)
	k := randTensor(t, 22, b, s, h)
	v := randTensor(t, 23, b, s, h)
	forward := func() float64 {
		y, _ := CausalAttentionForward(q, k, v, heads)
		return sumLoss(y)
	}
	y, ctx := CausalAttentionForward(q, k, v, heads)
	dq, dk, dv := CausalAttentionBackward(ctx, lossGrad(y))
	if d := MaxAbsDiff(dq, numGrad(q, forward)); d > 3e-2 {
		t.Errorf("attention dq off by %g", d)
	}
	if d := MaxAbsDiff(dk, numGrad(k, forward)); d > 3e-2 {
		t.Errorf("attention dk off by %g", d)
	}
	if d := MaxAbsDiff(dv, numGrad(v, forward)); d > 3e-2 {
		t.Errorf("attention dv off by %g", d)
	}
}

// TestAttentionIsCausal verifies that the output at position i does not
// depend on later positions.
func TestAttentionIsCausal(t *testing.T) {
	const b, s, h, heads = 1, 6, 4, 2
	q := randTensor(t, 31, b, s, h)
	k := randTensor(t, 32, b, s, h)
	v := randTensor(t, 33, b, s, h)
	y1, _ := CausalAttentionForward(q, k, v, heads)
	// Perturb the last position of k and v: outputs before it must not move.
	k2, v2 := k.Clone(), v.Clone()
	for d := 0; d < h; d++ {
		k2.Data[(s-1)*h+d] += 10
		v2.Data[(s-1)*h+d] -= 3
	}
	y2, _ := CausalAttentionForward(q, k2, v2, heads)
	for i := 0; i < (s-1)*h; i++ {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("causality violated at element %d", i)
		}
	}
	// The final position must change.
	var moved bool
	for i := (s - 1) * h; i < s*h; i++ {
		if y1.Data[i] != y2.Data[i] {
			moved = true
		}
	}
	if !moved {
		t.Error("perturbation had no effect at the final position")
	}
}

// TestEmbeddingRoundTrip checks lookup and scatter-add gradients.
func TestEmbeddingRoundTrip(t *testing.T) {
	table := randTensor(t, 41, 10, 4)
	ids := []int{3, 7, 3, 0}
	y := EmbeddingForward(table, ids)
	for i, id := range ids {
		for j := 0; j < 4; j++ {
			if y.Data[i*4+j] != table.Data[id*4+j] {
				t.Fatal("embedding lookup mismatch")
			}
		}
	}
	dy := randTensor(t, 42, 4, 4)
	grad := EmbeddingBackward([]int{10, 4}, ids, dy)
	// Row 3 receives the sum of rows 0 and 2 of dy (duplicate id).
	for j := 0; j < 4; j++ {
		want := dy.Data[0*4+j] + dy.Data[2*4+j]
		if math.Abs(float64(grad.Data[3*4+j]-want)) > 1e-6 {
			t.Fatal("duplicate-id scatter-add broken")
		}
	}
	// Untouched rows stay zero.
	for j := 0; j < 4; j++ {
		if grad.Data[5*4+j] != 0 {
			t.Fatal("unused embedding row has gradient")
		}
	}
}

// TestCrossEntropyGradient checks the fused loss gradient against finite
// differences of the loss value.
func TestCrossEntropyGradient(t *testing.T) {
	logits := randTensor(t, 51, 6, 5)
	targets := []int{0, 3, 2, 4, 1, 2}
	loss, grad := CrossEntropy(logits, targets)
	if loss <= 0 {
		t.Fatalf("loss %g should be positive for random logits", loss)
	}
	num := numGrad(logits, func() float64 {
		l, _ := CrossEntropy(logits, targets)
		return l
	})
	if d := MaxAbsDiff(grad, num); d > 2e-2 {
		t.Errorf("cross-entropy gradient off by %g", d)
	}
}

// TestCrossEntropyPerfectPrediction: a one-hot logit row on the target
// approaches zero loss.
func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := New(2, 4)
	logits.Data[0*4+1] = 50
	logits.Data[1*4+3] = 50
	loss, _ := CrossEntropy(logits, []int{1, 3})
	if loss > 1e-6 {
		t.Errorf("confident correct prediction should give near-zero loss, got %g", loss)
	}
}

// TestDeterministicParallelKernels runs the parallel kernels twice and
// demands bit-identical outputs (the property the numeric gradient-parity
// harness relies on).
func TestDeterministicParallelKernels(t *testing.T) {
	a := randTensor(t, 61, 64, 32)
	b := randTensor(t, 62, 32, 48)
	x1 := MatMul(a, b)
	x2 := MatMul(a, b)
	if MaxAbsDiff(x1, x2) != 0 {
		t.Error("MatMul must be bit-deterministic")
	}
	q := randTensor(t, 63, 2, 16, 8)
	k := randTensor(t, 64, 2, 16, 8)
	v := randTensor(t, 65, 2, 16, 8)
	y1, _ := CausalAttentionForward(q, k, v, 2)
	y2, _ := CausalAttentionForward(q, k, v, 2)
	if MaxAbsDiff(y1, y2) != 0 {
		t.Error("attention must be bit-deterministic")
	}
}

func TestAddAndScale(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	c := Add(a, b)
	if c.Data[0] != 5 || c.Data[2] != 9 {
		t.Error("Add broken")
	}
	AddInPlace(a, b)
	if a.Data[1] != 7 {
		t.Error("AddInPlace broken")
	}
	a.Scale(2)
	if a.Data[1] != 14 {
		t.Error("Scale broken")
	}
}
