package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Perturb injects faults and stragglers into a resolved topology: one slow
// device, one degraded link class, and per-iteration compute jitter. The
// zero value perturbs nothing.
type Perturb struct {
	// SlowDevice is the global device id of a straggler; compute on the
	// stage placed there is stretched by SlowFactor. Negative or absent (with
	// the zero value 0 meaning device 0 only when SlowFactor > 1) disables.
	SlowDevice int `json:"slow_device"`
	// SlowFactor multiplies the straggler's compute durations; values <= 1
	// disable the straggler.
	SlowFactor float64 `json:"slow_factor,omitempty"`
	// DegradeClass names the link class to degrade ("ib", "nvlink", ...).
	DegradeClass LinkClass `json:"degrade_class,omitempty"`
	// DegradeFactor multiplies the degraded class's bandwidth; must be in
	// (0, 1] when DegradeClass is set (0.5 = half bandwidth).
	DegradeFactor float64 `json:"degrade_factor,omitempty"`
	// Jitter is the amplitude of per-iteration compute noise: each stage's
	// compute is stretched by an independent factor drawn uniformly from
	// [1, 1+Jitter], deterministically from Seed.
	Jitter float64 `json:"jitter,omitempty"`
	// Seed drives the jitter draws; the same seed reproduces the iteration.
	Seed uint64 `json:"seed,omitempty"`
}

// Zero reports whether the perturbation changes nothing.
func (p Perturb) Zero() bool {
	return p.SlowFactor <= 1 && p.DegradeClass == "" && p.Jitter == 0
}

// Apply returns the link as the perturbation would leave it: bandwidth
// scaled by DegradeFactor when the link's class matches the degraded one,
// unchanged otherwise. Placement search prices candidate links through this,
// so a search under a degraded fabric avoids what the fault broke.
func (p Perturb) Apply(l Link) Link {
	if p.DegradeClass != "" && l.Class == p.DegradeClass {
		l.GBps *= p.DegradeFactor
	}
	return l
}

// Validate reports an error when the perturbation is not meaningful on the
// cluster.
func (p Perturb) Validate(c Cluster) error {
	if p.SlowFactor > 1 {
		if p.SlowDevice < 0 || p.SlowDevice >= c.Devices() {
			return fmt.Errorf("cluster: perturb slow device %d out of range on %s (%d devices)",
				p.SlowDevice, c.Name, c.Devices())
		}
	}
	if p.SlowFactor < 0 {
		return fmt.Errorf("cluster: perturb slow factor must be non-negative, got %g", p.SlowFactor)
	}
	if p.SlowFactor > 0 && p.SlowFactor < 1 {
		// A factor below 1 would speed the device up, which is surely a
		// mistake (exactly 1 is an explicit no-op baseline).
		return fmt.Errorf("cluster: perturb slow factor must be >= 1, got %g (slow stretches compute; use link=<class>x<factor> to degrade bandwidth)", p.SlowFactor)
	}
	if p.DegradeClass != "" {
		if p.DegradeFactor <= 0 || p.DegradeFactor > 1 {
			return fmt.Errorf("cluster: perturb degrade factor must be in (0,1], got %g", p.DegradeFactor)
		}
		found := false
		for _, class := range c.Classes() {
			if class == p.DegradeClass {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("cluster: perturb degrades %q but %s has no such link class",
				p.DegradeClass, c.Name)
		}
	}
	if p.Jitter < 0 {
		return fmt.Errorf("cluster: perturb jitter must be non-negative, got %g", p.Jitter)
	}
	return nil
}

// String renders the active perturbations in the flag syntax Parse accepts.
func (p Perturb) String() string {
	var parts []string
	if p.SlowFactor > 1 {
		parts = append(parts, fmt.Sprintf("slow=%dx%g", p.SlowDevice, p.SlowFactor))
	}
	if p.DegradeClass != "" {
		parts = append(parts, fmt.Sprintf("link=%sx%g", p.DegradeClass, p.DegradeFactor))
	}
	if p.Jitter > 0 {
		parts = append(parts, fmt.Sprintf("jitter=%g", p.Jitter))
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParsePerturb parses the -perturb flag syntax: comma-separated clauses
//
//	slow=<device>x<factor>   straggler: device's compute stretched by factor
//	link=<class>x<factor>    degraded link class: bandwidth multiplied by factor
//	jitter=<fraction>        per-stage compute noise amplitude
//	seed=<n>                 jitter seed
//
// e.g. "slow=3x2.0,link=ib:0.5" is written "slow=3x2.0,link=ibx0.5". An
// empty string returns the zero perturbation.
func ParsePerturb(s string) (Perturb, error) {
	var p Perturb
	p.SlowDevice = -1
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Perturb{}, fmt.Errorf("cluster: perturb clause %q is not key=value", clause)
		}
		switch key {
		case "slow":
			dev, factor, ok := strings.Cut(val, "x")
			if !ok {
				return Perturb{}, fmt.Errorf("cluster: perturb slow wants <device>x<factor>, got %q", val)
			}
			d, err := strconv.Atoi(dev)
			if err != nil {
				return Perturb{}, fmt.Errorf("cluster: perturb slow device %q: %w", dev, err)
			}
			f, err := strconv.ParseFloat(factor, 64)
			if err != nil {
				return Perturb{}, fmt.Errorf("cluster: perturb slow factor %q: %w", factor, err)
			}
			p.SlowDevice, p.SlowFactor = d, f
		case "link":
			class, factor, ok := strings.Cut(val, "x")
			if !ok {
				return Perturb{}, fmt.Errorf("cluster: perturb link wants <class>x<factor>, got %q", val)
			}
			f, err := strconv.ParseFloat(factor, 64)
			if err != nil {
				return Perturb{}, fmt.Errorf("cluster: perturb link factor %q: %w", factor, err)
			}
			p.DegradeClass, p.DegradeFactor = LinkClass(class), f
		case "jitter":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Perturb{}, fmt.Errorf("cluster: perturb jitter %q: %w", val, err)
			}
			p.Jitter = f
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Perturb{}, fmt.Errorf("cluster: perturb seed %q: %w", val, err)
			}
			p.Seed = n
		default:
			return Perturb{}, fmt.Errorf("cluster: unknown perturb clause %q (slow, link, jitter, seed)", key)
		}
	}
	return p, nil
}
