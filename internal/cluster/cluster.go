// Package cluster models the physical topology of a GPU cluster — nodes of
// devices joined by intra-node links (NVLink, PCIe) and an inter-node fabric
// (InfiniBand) — and the placement of pipeline stages onto its devices.
//
// The flat cost model of internal/costmodel prices every inter-stage message
// against a single NIC bandwidth, as if all stage pairs were one hop apart.
// This package replaces that assumption: a Placement maps each pipeline stage
// to a concrete device, the link class between two placed devices determines
// each transfer's bandwidth and latency, and the placement generators search
// for mappings that minimize the modeled point-to-point cost of a schedule's
// per-(stage, peer) traffic matrix. Perturbations (a slow device, a degraded
// link class, per-iteration compute jitter) open fault and straggler
// scenarios on top of the same model.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// LinkClass names a class of interconnect. Every transfer in a simulated
// iteration is priced by the class of the link between its endpoints.
type LinkClass string

const (
	// ClassNVLink is the intra-node NVLink/NVSwitch fabric.
	ClassNVLink LinkClass = "nvlink"
	// ClassPCIe is an intra-node PCIe switch (no NVLink).
	ClassPCIe LinkClass = "pcie"
	// ClassIB is the inter-node InfiniBand fabric.
	ClassIB LinkClass = "ib"
	// ClassEthernet is an inter-node RoCE/Ethernet fabric.
	ClassEthernet LinkClass = "ethernet"
)

// Link describes one link class instance: its bandwidth and per-message
// latency.
type Link struct {
	// Class names the interconnect class.
	Class LinkClass `json:"class"`
	// GBps is the unidirectional bandwidth in GB/s.
	GBps float64 `json:"gbps"`
	// LatencySec is the per-message latency in seconds.
	LatencySec float64 `json:"latency_sec"`
}

// Validate reports an error when the link is not physically meaningful.
func (l Link) Validate() error {
	switch {
	case l.Class == "":
		return fmt.Errorf("cluster: link has no class")
	case l.GBps <= 0:
		return fmt.Errorf("cluster: %s link bandwidth must be positive, got %g", l.Class, l.GBps)
	case l.LatencySec < 0:
		return fmt.Errorf("cluster: %s link latency must be non-negative, got %g", l.Class, l.LatencySec)
	}
	return nil
}

// BytesPerSec returns the link bandwidth in bytes per second.
func (l Link) BytesPerSec() float64 { return l.GBps * 1e9 }

// Node is one machine of the cluster: a set of devices joined by an
// intra-node link.
type Node struct {
	// Name optionally labels the node ("node0").
	Name string `json:"name,omitempty"`
	// Devices is the number of pipeline-capable devices on the node. One
	// pipeline stage occupies one device.
	Devices int `json:"devices"`
	// Intra is the link between any two devices of this node.
	Intra Link `json:"intra"`
	// GPU optionally names the costmodel GPU spec of this node's devices
	// ("A800", "H20"), overriding the cluster-wide GPU name. Mixed-generation
	// clusters set it per node; empty inherits the cluster's.
	GPU string `json:"gpu,omitempty"`
}

// Cluster is a topology: nodes of devices, an intra-node link per node, and
// one inter-node fabric joining all node pairs. Devices are globally indexed
// node-major: node 0 holds devices [0, Nodes[0].Devices), node 1 the next
// block, and so on.
type Cluster struct {
	// Name labels the cluster ("DGX-A800x4").
	Name string `json:"name"`
	// GPU optionally names the costmodel GPU/cluster preset ("A800", "H20")
	// that prices compute on this topology's devices.
	GPU string `json:"gpu,omitempty"`
	// Nodes are the machines of the cluster.
	Nodes []Node `json:"nodes"`
	// Inter is the fabric between any two devices on different nodes.
	// Ignored (and may be zero) on single-node clusters.
	Inter Link `json:"inter"`
}

// Validate reports an error when the topology cannot place a pipeline.
func (c Cluster) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: %s has no nodes", c.Name)
	}
	for i, n := range c.Nodes {
		if n.Devices <= 0 {
			return fmt.Errorf("cluster: %s node %d has %d devices", c.Name, i, n.Devices)
		}
		if n.Devices > 1 {
			if err := n.Intra.Validate(); err != nil {
				return fmt.Errorf("cluster: %s node %d intra link: %w", c.Name, i, err)
			}
		}
	}
	if len(c.Nodes) > 1 {
		if err := c.Inter.Validate(); err != nil {
			return fmt.Errorf("cluster: %s inter link: %w", c.Name, err)
		}
	}
	return nil
}

// Devices returns the total device count across all nodes.
func (c Cluster) Devices() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.Devices
	}
	return total
}

// NodeOf returns the node index holding the given global device id, or -1
// when the id is out of range.
func (c Cluster) NodeOf(device int) int {
	if device < 0 {
		return -1
	}
	for i, n := range c.Nodes {
		if device < n.Devices {
			return i
		}
		device -= n.Devices
	}
	return -1
}

// LinkBetween returns the link joining two devices: the node's intra link
// when they share a node, the inter fabric otherwise. Both devices must be
// in range (guaranteed after Validate on cluster and placement).
func (c Cluster) LinkBetween(d1, d2 int) Link {
	n1, n2 := c.NodeOf(d1), c.NodeOf(d2)
	if n1 == n2 && n1 >= 0 {
		return c.Nodes[n1].Intra
	}
	return c.Inter
}

// GPUOf returns the GPU spec name of the node holding the given global
// device id: the node's own when set, the cluster-wide name otherwise (which
// may itself be empty on anonymous custom topologies).
func (c Cluster) GPUOf(device int) string {
	if n := c.NodeOf(device); n >= 0 && c.Nodes[n].GPU != "" {
		return c.Nodes[n].GPU
	}
	return c.GPU
}

// Heterogeneous reports whether any node overrides the cluster-wide GPU name
// with a different one — a mixed-generation cluster.
func (c Cluster) Heterogeneous() bool {
	for _, n := range c.Nodes {
		if n.GPU != "" && n.GPU != c.GPU {
			return true
		}
	}
	return false
}

// Classes returns the distinct link classes of the topology, sorted by name.
func (c Cluster) Classes() []LinkClass {
	seen := map[LinkClass]bool{}
	for _, n := range c.Nodes {
		if n.Devices > 1 {
			seen[n.Intra.Class] = true
		}
	}
	if len(c.Nodes) > 1 {
		seen[c.Inter.Class] = true
	}
	out := make([]LinkClass, 0, len(seen))
	for class := range seen {
		out = append(out, class)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders a one-line topology summary ("4x8 devices, nvlink
// 200 GB/s intra, ib 46 GB/s inter").
func (c Cluster) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ", c.Name)
	if uniform, dev := c.uniformNodes(); uniform {
		fmt.Fprintf(&b, "%dx%d devices", len(c.Nodes), dev)
	} else {
		fmt.Fprintf(&b, "%d nodes, %d devices", len(c.Nodes), c.Devices())
	}
	if c.Heterogeneous() {
		fmt.Fprintf(&b, " (%s)", c.gpuMix())
	}
	if len(c.Nodes) > 0 && c.Nodes[0].Devices > 1 {
		l := c.Nodes[0].Intra
		fmt.Fprintf(&b, ", %s %.0f GB/s intra", l.Class, l.GBps)
	}
	if len(c.Nodes) > 1 {
		fmt.Fprintf(&b, ", %s %.0f GB/s inter", c.Inter.Class, c.Inter.GBps)
	}
	return b.String()
}

// gpuMix renders the node GPU generations as run-length groups in node
// order, e.g. "2xA800+2xH20".
func (c Cluster) gpuMix() string {
	var b strings.Builder
	run, count := "", 0
	flush := func() {
		if count == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%dx%s", count, run)
	}
	for _, n := range c.Nodes {
		gpu := n.GPU
		if gpu == "" {
			gpu = c.GPU
		}
		if gpu != run {
			flush()
			run, count = gpu, 1
		} else {
			count++
		}
	}
	flush()
	return b.String()
}

func (c Cluster) uniformNodes() (bool, int) {
	if len(c.Nodes) == 0 {
		return false, 0
	}
	dev := c.Nodes[0].Devices
	for _, n := range c.Nodes[1:] {
		if n.Devices != dev {
			return false, 0
		}
	}
	return true, dev
}

// FromJSON decodes a custom cluster topology from JSON and validates it.
// The schema is the Cluster struct itself:
//
//	{
//	  "name": "my-cluster",
//	  "gpu": "A800",
//	  "nodes": [
//	    {"devices": 8, "intra": {"class": "nvlink", "gbps": 200, "latency_sec": 6e-6}},
//	    {"devices": 8, "intra": {"class": "nvlink", "gbps": 200, "latency_sec": 6e-6}}
//	  ],
//	  "inter": {"class": "ib", "gbps": 46, "latency_sec": 14e-6}
//	}
func FromJSON(r io.Reader) (Cluster, error) {
	var c Cluster
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Cluster{}, fmt.Errorf("cluster: decoding topology JSON: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Cluster{}, err
	}
	return c, nil
}

// LoadFile reads and validates a custom cluster topology from a JSON file.
func LoadFile(path string) (Cluster, error) {
	f, err := os.Open(path)
	if err != nil {
		return Cluster{}, fmt.Errorf("cluster: %w", err)
	}
	defer f.Close()
	return FromJSON(f)
}

// uniformCluster builds n identical nodes.
func uniformCluster(name, gpu string, nodes, devices int, intra, inter Link) Cluster {
	c := Cluster{Name: name, GPU: gpu, Inter: inter}
	for i := 0; i < nodes; i++ {
		c.Nodes = append(c.Nodes, Node{
			Name:    fmt.Sprintf("node%d", i),
			Devices: devices,
			Intra:   intra,
		})
	}
	return c
}

// NVLinkA800 is the A800 intra-node fabric (400 GB/s NVLink, halved per
// export restrictions to 200 GB/s lanes as in the costmodel GPU spec).
func nvlinkA800() Link { return Link{Class: ClassNVLink, GBps: 200, LatencySec: 6e-6} }

// nvlinkH20 is the Hopper-class NVLink fabric of the H20.
func nvlinkH20() Link { return Link{Class: ClassNVLink, GBps: 450, LatencySec: 6e-6} }

// ibA800 matches the costmodel A800 testbed: four 100 Gb/s HDR HCAs per node
// at 0.92 transport efficiency.
func ibA800() Link { return Link{Class: ClassIB, GBps: 4 * 12.5 * 0.92, LatencySec: 14e-6} }

// ibH20 matches the costmodel H20 testbed: four 200 Gb/s NDR HCAs per node.
func ibH20() Link { return Link{Class: ClassIB, GBps: 4 * 25.0 * 0.92, LatencySec: 12e-6} }

// DGXA800x4 returns a 4-node cluster of 8-GPU A800 nodes: NVLink inside each
// node, HDR InfiniBand between nodes — the multi-node shape of the paper's
// A800 testbed.
func DGXA800x4() Cluster {
	return uniformCluster("DGX-A800x4", "A800", 4, 8, nvlinkA800(), ibA800())
}

// DGXH20x2 returns a 2-node cluster of 8-GPU H20 nodes: Hopper NVLink inside
// each node, NDR InfiniBand between them.
func DGXH20x2() Cluster {
	return uniformCluster("DGX-H20x2", "H20", 2, 8, nvlinkH20(), ibH20())
}

// PCIeBox returns a single commodity node: 8 A800-class devices behind a
// PCIe Gen4 switch, no NVLink and no second node. Every inter-stage hop pays
// PCIe bandwidth.
func PCIeBox() Cluster {
	return uniformCluster("PCIe-box", "A800", 1, 8,
		Link{Class: ClassPCIe, GBps: 24, LatencySec: 4e-6}, Link{})
}

// DGXA800x2H20x2 returns a mixed-generation 4-node cluster: two 8-GPU A800
// nodes followed by two 8-GPU H20 nodes, each with its own generation's
// NVLink fabric, joined by the slower cluster's HDR InfiniBand. It is the
// heterogeneous testbed of the placement-resolved cost books: the same stage
// prices differently depending on which generation it lands on.
func DGXA800x2H20x2() Cluster {
	c := Cluster{Name: "DGX-A800x2-H20x2", GPU: "A800", Inter: ibA800()}
	for i := 0; i < 2; i++ {
		c.Nodes = append(c.Nodes, Node{
			Name:    fmt.Sprintf("a800-%d", i),
			Devices: 8,
			Intra:   nvlinkA800(),
		})
	}
	for i := 0; i < 2; i++ {
		c.Nodes = append(c.Nodes, Node{
			Name:    fmt.Sprintf("h20-%d", i),
			Devices: 8,
			Intra:   nvlinkH20(),
			GPU:     "H20",
		})
	}
	return c
}

// Presets returns the built-in cluster topologies.
func Presets() []Cluster {
	return []Cluster{DGXA800x4(), DGXH20x2(), PCIeBox(), DGXA800x2H20x2()}
}

// PresetByName resolves a built-in topology case-insensitively and reports
// whether it exists.
func PresetByName(name string) (Cluster, bool) {
	for _, c := range Presets() {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return Cluster{}, false
}

// PresetListing renders the preset table — one line per topology — as the
// command-line tools print it.
func PresetListing() string {
	var b strings.Builder
	for _, c := range Presets() {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	return b.String()
}
