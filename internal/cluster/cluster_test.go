package cluster

import (
	"reflect"
	"strings"
	"testing"
)

// twoNodeIB returns a small 2-node test cluster: 4 NVLink devices per node,
// an IB fabric between the nodes.
func twoNodeIB() Cluster {
	return uniformCluster("test-2xIB", "A800", 2, 4,
		Link{Class: ClassNVLink, GBps: 200, LatencySec: 6e-6},
		Link{Class: ClassIB, GBps: 46, LatencySec: 14e-6})
}

func TestClusterValidateAndIndexing(t *testing.T) {
	c := twoNodeIB()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Devices(); got != 8 {
		t.Fatalf("Devices = %d, want 8", got)
	}
	for dev, wantNode := range []int{0, 0, 0, 0, 1, 1, 1, 1} {
		if got := c.NodeOf(dev); got != wantNode {
			t.Errorf("NodeOf(%d) = %d, want %d", dev, got, wantNode)
		}
	}
	if got := c.NodeOf(8); got != -1 {
		t.Errorf("NodeOf(8) = %d, want -1", got)
	}
	if l := c.LinkBetween(0, 3); l.Class != ClassNVLink {
		t.Errorf("intra-node link class = %s, want nvlink", l.Class)
	}
	if l := c.LinkBetween(3, 4); l.Class != ClassIB {
		t.Errorf("inter-node link class = %s, want ib", l.Class)
	}
	if got := c.Classes(); !reflect.DeepEqual(got, []LinkClass{ClassIB, ClassNVLink}) {
		t.Errorf("Classes = %v", got)
	}

	bad := c
	bad.Nodes = append([]Node(nil), c.Nodes...)
	bad.Nodes[1].Devices = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-device node validated")
	}
	bad = c
	bad.Inter = Link{}
	if err := bad.Validate(); err == nil {
		t.Error("multi-node cluster with no inter link validated")
	}
}

func TestPresets(t *testing.T) {
	for _, c := range Presets() {
		if err := c.Validate(); err != nil {
			t.Errorf("preset %s: %v", c.Name, err)
		}
		got, ok := PresetByName(strings.ToLower(c.Name))
		if !ok || got.Name != c.Name {
			t.Errorf("PresetByName(%q) failed", strings.ToLower(c.Name))
		}
	}
	if _, ok := PresetByName("no-such-cluster"); ok {
		t.Error("unknown preset resolved")
	}
	if !strings.Contains(PresetListing(), "DGX-A800x4") {
		t.Error("PresetListing misses DGX-A800x4")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := `{
		"name": "custom",
		"gpu": "A800",
		"nodes": [
			{"devices": 2, "intra": {"class": "nvlink", "gbps": 200, "latency_sec": 6e-6}},
			{"devices": 2, "intra": {"class": "pcie", "gbps": 24, "latency_sec": 4e-6}}
		],
		"inter": {"class": "ib", "gbps": 46, "latency_sec": 14e-6}
	}`
	c, err := FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Devices() != 4 || c.Nodes[1].Intra.Class != ClassPCIe {
		t.Fatalf("decoded cluster wrong: %+v", c)
	}
	if _, err := FromJSON(strings.NewReader(`{"name":"x","nodes":[],"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := FromJSON(strings.NewReader(`{"name":"x","nodes":[{"devices":1}]}`)); err != nil {
		t.Errorf("single-device single-node cluster rejected: %v", err)
	}
}

func TestContiguousAndRoundRobin(t *testing.T) {
	c := twoNodeIB()
	cont, err := Contiguous(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3, 4, 5, 6, 7}; !reflect.DeepEqual(cont.Devices, want) {
		t.Errorf("contiguous = %v, want %v", cont.Devices, want)
	}
	rr, err := RoundRobin(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 4, 1, 5, 2, 6, 3, 7}; !reflect.DeepEqual(rr.Devices, want) {
		t.Errorf("roundrobin = %v, want %v", rr.Devices, want)
	}
	for _, p := range []Placement{cont, rr} {
		if err := p.Validate(c); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	if _, err := Contiguous(c, 9); err == nil {
		t.Error("9 stages placed on 8 devices")
	}
	if err := (Placement{Devices: []int{0, 0}}).Validate(c); err == nil {
		t.Error("shared device validated")
	}
	if err := (Placement{Devices: []int{0, 99}}).Validate(c); err == nil {
		t.Error("out-of-range device validated")
	}
}

// neighbourTraffic builds the pipeline-shaped traffic matrix: heavy traffic
// between adjacent stages, nothing elsewhere.
func neighbourTraffic(stages int, bytes int64) [][]int64 {
	m := make([][]int64, stages)
	for i := range m {
		m[i] = make([]int64, stages)
	}
	for i := 0; i+1 < stages; i++ {
		m[i][i+1] = bytes
		m[i+1][i] = bytes
	}
	return m
}

func TestGreedyBeatsRoundRobinOnNeighbourTraffic(t *testing.T) {
	c := twoNodeIB()
	traffic := neighbourTraffic(8, 1<<30)
	greedy, err := Greedy(c, 8, traffic, SearchOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RoundRobin(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := Contiguous(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	gc, rc, cc := greedy.Cost(c, traffic), rr.Cost(c, traffic), cont.Cost(c, traffic)
	if gc >= rc {
		t.Errorf("greedy cost %g not below roundrobin %g", gc, rc)
	}
	// Neighbour-only traffic makes contiguous optimal (one IB crossing);
	// greedy must match it.
	if gc > cc {
		t.Errorf("greedy cost %g above contiguous %g", gc, cc)
	}
}

func TestGreedyDeterministicUnderSeed(t *testing.T) {
	c := twoNodeIB()
	// An irregular traffic matrix so the local search has real work.
	traffic := neighbourTraffic(8, 1<<28)
	traffic[0][5] = 3 << 28
	traffic[2][7] = 2 << 28
	traffic[6][1] = 1 << 29
	a, err := Greedy(c, 8, traffic, SearchOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(c, 8, traffic, SearchOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Devices, b.Devices) {
		t.Errorf("same seed, different placements: %v vs %v", a.Devices, b.Devices)
	}
}

func TestGenerateAndStrategyNames(t *testing.T) {
	c := twoNodeIB()
	for _, name := range []string{"Contiguous", "ROUNDROBIN", "greedy"} {
		p, err := Generate(name, c, 4, nil, SearchOptions{})
		if err != nil {
			t.Errorf("Generate(%q): %v", name, err)
			continue
		}
		if err := p.Validate(c); err != nil {
			t.Errorf("Generate(%q) invalid: %v", name, err)
		}
	}
	if _, err := Generate("nope", c, 4, nil, SearchOptions{}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestPerturbParseAndValidate(t *testing.T) {
	c := twoNodeIB()
	p, err := ParsePerturb("slow=3x2.0,link=ibx0.5,jitter=0.1,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if p.SlowDevice != 3 || p.SlowFactor != 2.0 || p.DegradeClass != ClassIB ||
		p.DegradeFactor != 0.5 || p.Jitter != 0.1 || p.Seed != 7 {
		t.Fatalf("parsed perturb wrong: %+v", p)
	}
	if err := p.Validate(c); err != nil {
		t.Fatal(err)
	}
	zero, err := ParsePerturb("")
	if err != nil || !zero.Zero() {
		t.Fatalf("empty perturb: %+v err %v", zero, err)
	}
	for _, bad := range []string{"slow=9x2.0", "slow=3x0.5", "link=ethernetx0.5", "link=ibx0", "jitter=-1"} {
		p, err := ParsePerturb(bad)
		if err != nil {
			continue // rejected at parse time is fine too
		}
		if err := p.Validate(c); err == nil {
			t.Errorf("perturb %q validated", bad)
		}
	}
	for _, malformed := range []string{"slow=3", "bogus=1", "jitter=x", "slow=ax2"} {
		if _, err := ParsePerturb(malformed); err == nil {
			t.Errorf("perturb %q parsed", malformed)
		}
	}
}

func TestResolveLinksAndFactors(t *testing.T) {
	c := twoNodeIB()
	cont, _ := Contiguous(c, 8)
	topo, err := Resolve(c, cont, Perturb{SlowDevice: 2, SlowFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Stages 0..3 on node 0, 4..7 on node 1.
	if bps, lat, class := topo.Link(0, 1); class != ClassNVLink || bps != 200e9 || lat != 6e-6 {
		t.Errorf("intra link = %g B/s %g s %s", bps, lat, class)
	}
	if bps, lat, class := topo.Link(3, 4); class != ClassIB || bps != 46e9 || lat != 14e-6 {
		t.Errorf("inter link = %g B/s %g s %s", bps, lat, class)
	}
	for stage, want := range []float64{1, 1, 2, 1, 1, 1, 1, 1} {
		if got := topo.ComputeFactor(stage); got != want {
			t.Errorf("ComputeFactor(%d) = %g, want %g", stage, got, want)
		}
	}
	if err := topo.CheckStages(4); err == nil {
		t.Error("stage-count mismatch accepted")
	}

	// Degraded IB halves only the inter-node bandwidth.
	degraded, err := Resolve(c, cont, Perturb{SlowDevice: -1, DegradeClass: ClassIB, DegradeFactor: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if bps, _, _ := degraded.Link(3, 4); bps != 23e9 {
		t.Errorf("degraded inter bandwidth = %g, want 23e9", bps)
	}
	if bps, _, _ := degraded.Link(0, 1); bps != 200e9 {
		t.Errorf("degraded run changed intra bandwidth: %g", bps)
	}

	// Jitter is deterministic from the seed and bounded by the amplitude.
	j1, err := Resolve(c, cont, Perturb{SlowDevice: -1, Jitter: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := Resolve(c, cont, Perturb{SlowDevice: -1, Jitter: 0.1, Seed: 9})
	for s := 0; s < 8; s++ {
		f := j1.ComputeFactor(s)
		if f < 1 || f > 1.1 {
			t.Errorf("jitter factor %g out of [1, 1.1]", f)
		}
		if f != j2.ComputeFactor(s) {
			t.Errorf("jitter not deterministic at stage %d", s)
		}
	}
}
