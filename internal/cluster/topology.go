package cluster

import (
	"fmt"

	"repro/internal/rng"
)

// Topology is a resolved view of (cluster, placement, perturbation) for one
// pipeline: per-stage-pair link parameters and per-stage compute factors,
// ready for the simulator's inner loop. Build one with Resolve.
type Topology struct {
	// Cluster and Placement are the inputs the view was resolved from.
	Cluster   Cluster
	Placement Placement
	// Perturb is the applied perturbation (possibly the zero value).
	Perturb Perturb

	// bytesPerSec, latency and class are indexed [from][to] by stage.
	bytesPerSec [][]float64
	latency     [][]float64
	class       [][]LinkClass
	// computeFactor stretches stage compute durations (straggler + jitter).
	computeFactor []float64
}

// Resolve validates the inputs and precomputes the per-stage-pair link
// parameters and per-stage compute factors the simulator reads. The jitter
// factors are drawn once per Resolve — one simulated iteration — from the
// perturbation seed, so identical inputs always resolve identically.
func Resolve(c Cluster, p Placement, pt Perturb) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(c); err != nil {
		return nil, err
	}
	if err := pt.Validate(c); err != nil {
		return nil, err
	}
	stages := p.Stages()
	t := &Topology{
		Cluster:       c,
		Placement:     p,
		Perturb:       pt,
		bytesPerSec:   make([][]float64, stages),
		latency:       make([][]float64, stages),
		class:         make([][]LinkClass, stages),
		computeFactor: make([]float64, stages),
	}
	for i := 0; i < stages; i++ {
		t.bytesPerSec[i] = make([]float64, stages)
		t.latency[i] = make([]float64, stages)
		t.class[i] = make([]LinkClass, stages)
		for j := 0; j < stages; j++ {
			if j == i {
				continue
			}
			l := c.LinkBetween(p.Devices[i], p.Devices[j])
			bps := l.BytesPerSec()
			if pt.DegradeClass != "" && l.Class == pt.DegradeClass {
				bps *= pt.DegradeFactor
			}
			t.bytesPerSec[i][j] = bps
			t.latency[i][j] = l.LatencySec
			t.class[i][j] = l.Class
		}
	}
	stream := rng.New(pt.Seed)
	for i := 0; i < stages; i++ {
		f := 1.0
		if pt.SlowFactor > 1 && p.Devices[i] == pt.SlowDevice {
			f = pt.SlowFactor
		}
		if pt.Jitter > 0 {
			// One independent draw per stage per iteration, in stage order, so
			// the iteration reproduces exactly from the seed.
			f *= 1 + pt.Jitter*stream.Float64()
		}
		t.computeFactor[i] = f
	}
	return t, nil
}

// Stages returns the pipeline size the topology was resolved for.
func (t *Topology) Stages() int { return len(t.computeFactor) }

// Link returns the bandwidth (bytes/s), latency (seconds) and class of the
// link between two stages' placed devices.
func (t *Topology) Link(from, to int) (bytesPerSec, latencySec float64, class LinkClass) {
	return t.bytesPerSec[from][to], t.latency[from][to], t.class[from][to]
}

// ComputeFactor returns the compute stretch of one stage under the
// perturbation (1 when unperturbed).
func (t *Topology) ComputeFactor(stage int) float64 { return t.computeFactor[stage] }

// CheckStages reports an error when the topology was resolved for a
// different pipeline size than the plan presents.
func (t *Topology) CheckStages(stages int) error {
	if stages != t.Stages() {
		return fmt.Errorf("cluster: topology resolved for %d stages, plan has %d",
			t.Stages(), stages)
	}
	return nil
}
