package cluster

import (
	"fmt"

	"repro/internal/rng"
)

// Topology is a resolved view of (cluster, placement, perturbation) for one
// pipeline: per-stage-pair link parameters and per-stage compute factors,
// ready for the simulator's inner loop. Build one with Resolve.
type Topology struct {
	// Cluster and Placement are the inputs the view was resolved from.
	Cluster   Cluster
	Placement Placement
	// Perturb is the applied perturbation (possibly the zero value).
	Perturb Perturb

	// bytesPerSec, latency and class are indexed [from][to] by stage.
	bytesPerSec [][]float64
	latency     [][]float64
	class       [][]LinkClass
	// computeFactor stretches stage compute durations (straggler + jitter).
	computeFactor []float64
	// intra is each stage's placed node's intra-node link, degraded like the
	// stage-pair links; gpuName is the placed node's GPU generation.
	intra   []Link
	gpuName []string
}

// Resolve validates the inputs and precomputes the per-stage-pair link
// parameters and per-stage compute factors the simulator reads. The jitter
// factors are drawn once per Resolve — one simulated iteration — from the
// perturbation seed, so identical inputs always resolve identically.
func Resolve(c Cluster, p Placement, pt Perturb) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(c); err != nil {
		return nil, err
	}
	if err := pt.Validate(c); err != nil {
		return nil, err
	}
	stages := p.Stages()
	t := &Topology{
		Cluster:       c,
		Placement:     p,
		Perturb:       pt,
		bytesPerSec:   make([][]float64, stages),
		latency:       make([][]float64, stages),
		class:         make([][]LinkClass, stages),
		computeFactor: make([]float64, stages),
		intra:         make([]Link, stages),
		gpuName:       make([]string, stages),
	}
	for i := 0; i < stages; i++ {
		node := c.NodeOf(p.Devices[i])
		intra := c.Nodes[node].Intra
		if pt.DegradeClass != "" && intra.Class == pt.DegradeClass {
			intra.GBps *= pt.DegradeFactor
		}
		t.intra[i] = intra
		t.gpuName[i] = c.GPUOf(p.Devices[i])
	}
	for i := 0; i < stages; i++ {
		t.bytesPerSec[i] = make([]float64, stages)
		t.latency[i] = make([]float64, stages)
		t.class[i] = make([]LinkClass, stages)
		for j := 0; j < stages; j++ {
			if j == i {
				continue
			}
			l := c.LinkBetween(p.Devices[i], p.Devices[j])
			bps := l.BytesPerSec()
			if pt.DegradeClass != "" && l.Class == pt.DegradeClass {
				bps *= pt.DegradeFactor
			}
			t.bytesPerSec[i][j] = bps
			t.latency[i][j] = l.LatencySec
			t.class[i][j] = l.Class
		}
	}
	stream := rng.New(pt.Seed)
	for i := 0; i < stages; i++ {
		f := 1.0
		if pt.SlowFactor > 1 && p.Devices[i] == pt.SlowDevice {
			f = pt.SlowFactor
		}
		if pt.Jitter > 0 {
			// One independent draw per stage per iteration, in stage order, so
			// the iteration reproduces exactly from the seed.
			f *= 1 + pt.Jitter*stream.Float64()
		}
		t.computeFactor[i] = f
	}
	return t, nil
}

// Stages returns the pipeline size the topology was resolved for.
func (t *Topology) Stages() int { return len(t.computeFactor) }

// Link returns the bandwidth (bytes/s), latency (seconds) and class of the
// link between two stages' placed devices.
func (t *Topology) Link(from, to int) (bytesPerSec, latencySec float64, class LinkClass) {
	return t.bytesPerSec[from][to], t.latency[from][to], t.class[from][to]
}

// ComputeFactor returns the compute stretch of one stage under the
// perturbation (1 when unperturbed).
func (t *Topology) ComputeFactor(stage int) float64 { return t.computeFactor[stage] }

// IntraLink returns the intra-node link of the stage's placed node — the
// fabric its sequence-parallel collectives traverse — with any matching
// link-class degradation applied. Single-device nodes may report a zero
// link; callers fall back to flat pricing then.
func (t *Topology) IntraLink(stage int) Link { return t.intra[stage] }

// GPUName returns the GPU generation of the stage's placed node: the node's
// own spec name when set, the cluster-wide one otherwise (possibly empty on
// anonymous custom topologies).
func (t *Topology) GPUName(stage int) string { return t.gpuName[stage] }

// CheckStages reports an error when the topology was resolved for a
// different pipeline size than the plan presents.
func (t *Topology) CheckStages(stages int) error {
	if stages != t.Stages() {
		return fmt.Errorf("cluster: topology resolved for %d stages, plan has %d",
			t.Stages(), stages)
	}
	return nil
}
