package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rng"
)

// Placement maps pipeline stages onto cluster devices: Devices[stage] is the
// global device id the stage executes on. Devices are exclusive — two stages
// never share one.
type Placement struct {
	// Strategy names the generator that produced the placement ("contiguous",
	// "roundrobin", "greedy", or "custom" for hand-built ones).
	Strategy string `json:"strategy,omitempty"`
	// Devices holds one global device id per pipeline stage.
	Devices []int `json:"devices"`
}

// Placement strategy names accepted by Generate and the command-line flags.
const (
	// StrategyContiguous fills devices node by node: stages that are pipeline
	// neighbours tend to share a node and its fast intra link.
	StrategyContiguous = "contiguous"
	// StrategyRoundRobin deals stages across nodes like cards: stage i lands
	// on node i mod n. Maximally spreads load, maximally crosses the fabric.
	StrategyRoundRobin = "roundrobin"
	// StrategyGreedy places the most communication-heavy stages first, each
	// onto the device minimizing the modeled P2P cost to its already-placed
	// peers, then improves the result with a seeded swap local search.
	StrategyGreedy = "greedy"
)

// Strategies lists the built-in placement strategies in search order.
func Strategies() []string {
	return []string{StrategyContiguous, StrategyRoundRobin, StrategyGreedy}
}

// StrategyByName resolves a strategy name case-insensitively and reports
// whether it exists.
func StrategyByName(name string) (string, bool) {
	for _, s := range Strategies() {
		if strings.EqualFold(s, name) {
			return s, true
		}
	}
	return "", false
}

// Stages returns the pipeline size the placement maps.
func (p Placement) Stages() int { return len(p.Devices) }

// Validate reports an error when the placement cannot run on the cluster:
// out-of-range device ids or two stages sharing one device.
func (p Placement) Validate(c Cluster) error {
	if len(p.Devices) == 0 {
		return fmt.Errorf("cluster: placement maps no stages")
	}
	total := c.Devices()
	used := map[int]int{}
	for stage, dev := range p.Devices {
		if dev < 0 || dev >= total {
			return fmt.Errorf("cluster: placement stage %d on device %d, cluster %s has %d devices",
				stage, dev, c.Name, total)
		}
		if prev, ok := used[dev]; ok {
			return fmt.Errorf("cluster: placement stages %d and %d share device %d", prev, stage, dev)
		}
		used[dev] = stage
	}
	return nil
}

// String renders the placement as "strategy[dev0 dev1 ...]".
func (p Placement) String() string {
	strategy := p.Strategy
	if strategy == "" {
		strategy = "custom"
	}
	var b strings.Builder
	b.WriteString(strategy)
	b.WriteByte('[')
	for i, d := range p.Devices {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteByte(']')
	return b.String()
}

// Contiguous places stages onto devices in global order: node 0 fills first,
// then node 1, and so on, so pipeline neighbours share nodes wherever the
// node size allows.
func Contiguous(c Cluster, stages int) (Placement, error) {
	if err := checkCapacity(c, stages); err != nil {
		return Placement{}, err
	}
	p := Placement{Strategy: StrategyContiguous, Devices: make([]int, stages)}
	for i := range p.Devices {
		p.Devices[i] = i
	}
	return p, nil
}

// RoundRobin deals stages across nodes: stage i lands on node i mod n, taking
// that node's next free device. Adjacent pipeline stages land on different
// nodes, so every boundary crosses the inter-node fabric — the adversarial
// baseline a topology-aware search must beat.
func RoundRobin(c Cluster, stages int) (Placement, error) {
	if err := checkCapacity(c, stages); err != nil {
		return Placement{}, err
	}
	base := make([]int, len(c.Nodes)) // first global device id of each node
	next := make([]int, len(c.Nodes)) // devices already taken per node
	for i := 1; i < len(c.Nodes); i++ {
		base[i] = base[i-1] + c.Nodes[i-1].Devices
	}
	p := Placement{Strategy: StrategyRoundRobin, Devices: make([]int, stages)}
	node := 0
	for stage := 0; stage < stages; stage++ {
		// Skip full nodes; capacity was checked, so a free node exists.
		for next[node] >= c.Nodes[node].Devices {
			node = (node + 1) % len(c.Nodes)
		}
		p.Devices[stage] = base[node] + next[node]
		next[node]++
		node = (node + 1) % len(c.Nodes)
	}
	return p, nil
}

// SearchOptions tunes the greedy placement search.
type SearchOptions struct {
	// Seed drives the swap local search deterministically: the same seed on
	// the same inputs always returns the same placement.
	Seed uint64
	// Sweeps bounds the local-search improvement sweeps over all stage pairs;
	// zero picks a small default.
	Sweeps int
	// Perturb prices candidate links as the perturbation would leave them
	// (degraded classes at their degraded bandwidth), so the search scores
	// placements under the topology the plan will actually run on instead of
	// the clean one. The zero value searches the clean topology.
	Perturb Perturb
}

// Greedy searches a placement minimizing the modeled P2P cost of the traffic
// matrix: a constructive pass places the most communication-heavy stages
// first, each onto the free device with the cheapest links to its placed
// peers, then a seeded swap local search improves the result. traffic[i][j]
// is the bytes stage i sends stage j over one iteration (sched's
// Plan.TrafficMatrix); a nil matrix degenerates to Contiguous.
func Greedy(c Cluster, stages int, traffic [][]int64, opt SearchOptions) (Placement, error) {
	if err := checkCapacity(c, stages); err != nil {
		return Placement{}, err
	}
	if len(traffic) == 0 {
		p, err := Contiguous(c, stages)
		p.Strategy = StrategyGreedy
		return p, err
	}
	if len(traffic) != stages {
		return Placement{}, fmt.Errorf("cluster: traffic matrix has %d rows for %d stages",
			len(traffic), stages)
	}
	// Symmetric per-pair volume: links are full duplex, so what matters per
	// pair is the heavier direction's share of both.
	pair := func(i, j int) int64 { return traffic[i][j] + traffic[j][i] }

	// Constructive pass: stages in descending total-traffic order, heaviest
	// first, ties broken by stage index for determinism.
	order := make([]int, stages)
	for i := range order {
		order[i] = i
	}
	totals := make([]int64, stages)
	for i := 0; i < stages; i++ {
		for j := 0; j < stages; j++ {
			if j != i {
				totals[i] += pair(i, j)
			}
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return totals[order[a]] > totals[order[b]] })

	devices := c.Devices()
	devOf := make([]int, stages) // stage -> device
	for i := range devOf {
		devOf[i] = -1
	}
	free := make([]bool, devices)
	for i := range free {
		free[i] = true
	}
	for _, stage := range order {
		bestDev, bestCost := -1, 0.0
		for dev := 0; dev < devices; dev++ {
			if !free[dev] {
				continue
			}
			cost := 0.0
			for peer := 0; peer < stages; peer++ {
				if devOf[peer] < 0 || peer == stage {
					continue
				}
				cost += linkCost(opt.Perturb.Apply(c.LinkBetween(dev, devOf[peer])), pair(stage, peer))
			}
			if bestDev < 0 || cost < bestCost {
				bestDev, bestCost = dev, cost
			}
		}
		devOf[stage] = bestDev
		free[bestDev] = false
	}

	// Seeded swap local search: repeatedly try exchanging two stages' devices
	// in a seeded random order, keeping strictly improving swaps.
	sweeps := opt.Sweeps
	if sweeps <= 0 {
		sweeps = 4
	}
	stream := rng.New(opt.Seed)
	cost := placementCost(c, devOf, pair, opt.Perturb)
	for sweep := 0; sweep < sweeps; sweep++ {
		improved := false
		for _, ij := range shuffledPairs(stages, stream) {
			i, j := ij[0], ij[1]
			devOf[i], devOf[j] = devOf[j], devOf[i]
			if next := placementCost(c, devOf, pair, opt.Perturb); next < cost {
				cost = next
				improved = true
			} else {
				devOf[i], devOf[j] = devOf[j], devOf[i]
			}
		}
		if !improved {
			break
		}
	}
	return Placement{Strategy: StrategyGreedy, Devices: devOf}, nil
}

// Generate builds the named strategy's placement. Greedy uses the traffic
// matrix and search options; the others ignore them.
func Generate(strategy string, c Cluster, stages int, traffic [][]int64, opt SearchOptions) (Placement, error) {
	name, ok := StrategyByName(strategy)
	if !ok {
		return Placement{}, fmt.Errorf("cluster: unknown placement strategy %q (known: %s)",
			strategy, strings.Join(Strategies(), ", "))
	}
	switch name {
	case StrategyContiguous:
		return Contiguous(c, stages)
	case StrategyRoundRobin:
		return RoundRobin(c, stages)
	default:
		return Greedy(c, stages, traffic, opt)
	}
}

// Cost returns the modeled P2P communication cost of the placement under the
// traffic matrix: per stage pair, transfer time at the joining link's
// bandwidth plus its latency. It is the objective Greedy minimizes; lower is
// better.
func (p Placement) Cost(c Cluster, traffic [][]int64) float64 {
	if len(traffic) != len(p.Devices) {
		return 0
	}
	pair := func(i, j int) int64 { return traffic[i][j] + traffic[j][i] }
	return placementCost(c, p.Devices, pair, Perturb{})
}

// linkCost prices one stage pair's traffic on a link: serialization time at
// the link bandwidth plus one latency charge for the pair's existence.
func linkCost(l Link, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	cost := l.LatencySec
	if bps := l.BytesPerSec(); bps > 0 {
		cost += float64(bytes) / bps
	}
	return cost
}

func placementCost(c Cluster, devOf []int, pair func(i, j int) int64, pt Perturb) float64 {
	total := 0.0
	for i := 0; i < len(devOf); i++ {
		for j := i + 1; j < len(devOf); j++ {
			total += linkCost(pt.Apply(c.LinkBetween(devOf[i], devOf[j])), pair(i, j))
		}
	}
	return total
}

// shuffledPairs returns all unordered stage pairs in a seeded random order
// (Fisher-Yates on the deterministic stream).
func shuffledPairs(stages int, stream *rng.Stream) [][2]int {
	pairs := make([][2]int, 0, stages*(stages-1)/2)
	for i := 0; i < stages; i++ {
		for j := i + 1; j < stages; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	for i := len(pairs) - 1; i > 0; i-- {
		j := stream.Intn(i + 1)
		pairs[i], pairs[j] = pairs[j], pairs[i]
	}
	return pairs
}

func checkCapacity(c Cluster, stages int) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if stages <= 0 {
		return fmt.Errorf("cluster: need a positive stage count, got %d", stages)
	}
	if total := c.Devices(); stages > total {
		return fmt.Errorf("cluster: %d stages exceed the %d devices of %s", stages, total, c.Name)
	}
	return nil
}
