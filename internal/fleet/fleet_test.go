package fleet

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/rng"
	"repro/internal/sim"
)

// stubSim prices jobs without the pipeline simulator: one iteration takes
// baseSec, doubled for every extra node the carve spans (a crude model of
// cross-fabric cost that lets policy tests reason about outcomes).
type stubSim struct {
	baseSec float64
	calls   int
	seen    map[string]int // Signature -> times simulated
}

func newStubSim() *stubSim { return &stubSim{baseSec: 10, seen: map[string]int{}} }

func (s *stubSim) Simulate(job Job, sub cluster.Cluster) (JobRun, error) {
	s.calls++
	sig := Signature(sub)
	s.seen[sig]++
	hit := s.seen[sig] > 1
	return JobRun{
		IterationSeconds: s.baseSec * float64(len(sub.Nodes)),
		CacheHit:         hit,
		LinkTraffic: []sim.LinkClassStats{
			{Class: "nvlink", Bytes: 1000, Seconds: 0.001, Transfers: 4},
		},
	}, nil
}

// twoNode is a 2x4 cluster for the small policy tests.
func twoNode() cluster.Cluster {
	return cluster.Cluster{
		Name: "test-2x4",
		GPU:  "A800",
		Nodes: []cluster.Node{
			{Name: "node0", Devices: 4, Intra: cluster.Link{Class: cluster.ClassNVLink, GBps: 200, LatencySec: 6e-6}},
			{Name: "node1", Devices: 4, Intra: cluster.Link{Class: cluster.ClassNVLink, GBps: 200, LatencySec: 6e-6}},
		},
		Inter: cluster.Link{Class: cluster.ClassIB, GBps: 46, LatencySec: 14e-6},
	}
}

func mustPolicy(t *testing.T, name string) Policy {
	t.Helper()
	p, ok := PolicyByName(name)
	if !ok {
		t.Fatalf("unknown policy %q", name)
	}
	return p
}

func simpleJobs(n, demand int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			ID:         fmt.Sprintf("job%03d", i),
			ArrivalSec: float64(i),
			Demand:     demand,
			Iterations: 3,
		}
	}
	return jobs
}

func TestRunValidation(t *testing.T) {
	c := twoNode()
	s := newStubSim()
	cases := []struct {
		name string
		jobs []Job
		want string
	}{
		{"no jobs", nil, "no jobs"},
		{"zero demand", []Job{{ID: "j", Demand: 0, Iterations: 1}}, "demands 0"},
		{"oversize demand", []Job{{ID: "j", Demand: 9, Iterations: 1}}, "demands 9"},
		{"zero iterations", []Job{{ID: "j", Demand: 2}}, "iterations"},
		{"negative arrival", []Job{{ID: "j", Demand: 2, Iterations: 1, ArrivalSec: -1}}, "negative time"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(c, tc.jobs, s, Options{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	if _, err := Run(c, simpleJobs(2, 2), nil, Options{}); err == nil {
		t.Fatal("want error for nil simulator")
	}
}

func TestNoStrandedDevices(t *testing.T) {
	c := twoNode()
	jobs := []Job{
		{ID: "low1", ArrivalSec: 0, Priority: 0, Demand: 4, Iterations: 5},
		{ID: "low2", ArrivalSec: 0, Priority: 0, Demand: 4, Iterations: 5},
		{ID: "high", ArrivalSec: 1, Priority: 5, Demand: 8, Iterations: 2},
		{ID: "mid", ArrivalSec: 2, Priority: 2, Demand: 2, Iterations: 3},
	}
	for _, name := range Policies() {
		t.Run(name, func(t *testing.T) {
			probes := 0
			opt := Options{
				Policy: mustPolicy(t, name),
				Probe: func(p ProbeEvent) {
					probes++
					if p.AllocatedDevices != p.RunningDemand {
						t.Fatalf("at t=%gs: %d devices allocated but running demand is %d",
							p.TimeSec, p.AllocatedDevices, p.RunningDemand)
					}
					if p.AllocatedDevices+p.FreeDevices != c.Devices() {
						t.Fatalf("at t=%gs: %d allocated + %d free != %d devices",
							p.TimeSec, p.AllocatedDevices, p.FreeDevices, c.Devices())
					}
				},
			}
			r, err := Run(c, jobs, newStubSim(), opt)
			if err != nil {
				t.Fatal(err)
			}
			if probes == 0 {
				t.Fatal("probe never fired")
			}
			if r.Jobs != len(jobs) || len(r.JobRecords) != len(jobs) {
				t.Fatalf("report covers %d/%d jobs", len(r.JobRecords), len(jobs))
			}
			for _, rec := range r.JobRecords {
				if rec.EndSec < rec.StartSec || rec.StartSec < rec.ArrivalSec {
					t.Fatalf("job %s has times arrival=%g start=%g end=%g",
						rec.ID, rec.ArrivalSec, rec.StartSec, rec.EndSec)
				}
				if rec.JCTSec < rec.WaitSec {
					t.Fatalf("job %s JCT %g < wait %g", rec.ID, rec.JCTSec, rec.WaitSec)
				}
			}
		})
	}
}

func TestPreemptionEvictsAndRestarts(t *testing.T) {
	c := twoNode()
	jobs := []Job{
		{ID: "low", ArrivalSec: 0, Priority: 0, Demand: 8, Iterations: 10},
		{ID: "high", ArrivalSec: 5, Priority: 9, Demand: 8, Iterations: 1},
	}
	// The probe's cumulative preemption count must climb monotonically to
	// the report total.
	lastPreempt := 0
	r, err := Run(c, jobs, newStubSim(), Options{
		Policy: mustPolicy(t, PolicyPreempt),
		Probe: func(p ProbeEvent) {
			if p.Preemptions < lastPreempt {
				t.Fatalf("at t=%gs: preemption count went backwards (%d -> %d)",
					p.TimeSec, lastPreempt, p.Preemptions)
			}
			lastPreempt = p.Preemptions
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions != 1 {
		t.Fatalf("want 1 preemption, got %d", r.Preemptions)
	}
	if lastPreempt != r.Preemptions {
		t.Fatalf("probe saw %d cumulative preemptions, report says %d", lastPreempt, r.Preemptions)
	}
	var low, high JobRecord
	for _, rec := range r.JobRecords {
		switch rec.ID {
		case "low":
			low = rec
		case "high":
			high = rec
		}
	}
	if low.Preempted != 1 {
		t.Fatalf("low job preempted %d times, want 1", low.Preempted)
	}
	if high.StartSec != 5 {
		t.Fatalf("high-priority job started at %gs, want 5s (immediate preemption)", high.StartSec)
	}
	// Demand 8 spans both nodes, so the stub prices 20s per iteration. The
	// low job restarts from scratch after the high job's 20s run: preempted
	// at 5s, restarted at 25s, full 200s run again.
	if want := 5.0 + 20 + 200; low.EndSec != want {
		t.Fatalf("low job ended at %gs, want %gs", low.EndSec, want)
	}
	if low.WaitSec != 20 {
		t.Fatalf("low job waited %gs, want 20s (re-queued during high's run)", low.WaitSec)
	}
}

func TestPreemptionSparesEqualAndHigherPriority(t *testing.T) {
	c := twoNode()
	jobs := []Job{
		{ID: "peer", ArrivalSec: 0, Priority: 5, Demand: 8, Iterations: 3},
		{ID: "also5", ArrivalSec: 1, Priority: 5, Demand: 8, Iterations: 1},
	}
	r, err := Run(c, jobs, newStubSim(), Options{Policy: mustPolicy(t, PolicyPreempt)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions != 0 {
		t.Fatalf("equal-priority job must not preempt, got %d preemptions", r.Preemptions)
	}
}

func TestBestFitStaysOnOneNode(t *testing.T) {
	c := twoNode()
	// A demand-2 job then a demand-4 job. First-fit gives the second job
	// devices 2-5, straddling the node boundary; best-fit packs it onto
	// node1 whole.
	jobs := []Job{
		{ID: "a", ArrivalSec: 0, Demand: 2, Iterations: 10},
		{ID: "c", ArrivalSec: 0, Demand: 4, Iterations: 10},
	}
	nodesOf := func(policy string) map[string]int {
		r, err := Run(c, jobs, newStubSim(), Options{Policy: mustPolicy(t, policy)})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int{}
		for _, rec := range r.JobRecords {
			out[rec.ID] = rec.Nodes
		}
		return out
	}
	if got := nodesOf(PolicyFIFO); got["c"] != 2 {
		t.Fatalf("first-fit should straddle job c across 2 nodes, got %d", got["c"])
	}
	if got := nodesOf(PolicyBestFit); got["c"] != 1 {
		t.Fatalf("best-fit should keep job c on 1 node, got %d", got["c"])
	}
}

func TestWorstFitSpreads(t *testing.T) {
	c := twoNode()
	jobs := []Job{
		{ID: "a", ArrivalSec: 0, Demand: 2, Iterations: 10},
		{ID: "b", ArrivalSec: 0, Demand: 2, Iterations: 10},
	}
	r, err := Run(c, jobs, newStubSim(), Options{Policy: mustPolicy(t, PolicyWorstFit)})
	if err != nil {
		t.Fatal(err)
	}
	devs := map[string][]int{}
	for _, rec := range r.JobRecords {
		devs[rec.ID] = rec.Devices
	}
	// Worst fit drains the emptiest node: job a lands on node0, job b on
	// node1 (now the emptier one).
	if c.NodeOf(devs["a"][0]) == c.NodeOf(devs["b"][0]) {
		t.Fatalf("worst-fit put both jobs on the same node: a=%v b=%v", devs["a"], devs["b"])
	}
}

func TestBackfillPassesBlockedHead(t *testing.T) {
	c := twoNode()
	jobs := []Job{
		{ID: "big1", ArrivalSec: 0, Demand: 8, Iterations: 5},
		{ID: "big2", ArrivalSec: 1, Demand: 8, Iterations: 5},
		{ID: "small", ArrivalSec: 2, Demand: 2, Iterations: 1},
	}
	endOf := func(policy string) float64 {
		r, err := Run(c, jobs, newStubSim(), Options{Policy: mustPolicy(t, policy)})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range r.JobRecords {
			if rec.ID == "small" {
				return rec.StartSec
			}
		}
		t.Fatal("small job missing")
		return 0
	}
	// Without backfill the small job waits behind big2 (starts when big2
	// completes); with backfill it cannot start earlier here (big1 holds all
	// devices), so use a gap: after big1 ends, big2 starts — full cluster
	// again. Small starts after big2 under FIFO.
	fifoStart := endOf(PolicyFIFO)
	backfillStart := endOf(PolicyBackfill)
	if backfillStart > fifoStart {
		t.Fatalf("backfill start %g later than FIFO start %g", backfillStart, fifoStart)
	}
}

func TestBackfillStartsSmallJobInGap(t *testing.T) {
	c := twoNode()
	// big1 takes node0+node1 fully? No: demand 6 leaves 2 free. big2 needs 8
	// and blocks; small (demand 2) fits the 2 free devices.
	jobs := []Job{
		{ID: "big1", ArrivalSec: 0, Demand: 6, Iterations: 5},
		{ID: "big2", ArrivalSec: 1, Demand: 8, Iterations: 5},
		{ID: "small", ArrivalSec: 2, Demand: 2, Iterations: 1},
	}
	run := func(policy string) map[string]JobRecord {
		r, err := Run(c, jobs, newStubSim(), Options{Policy: mustPolicy(t, policy)})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]JobRecord{}
		for _, rec := range r.JobRecords {
			out[rec.ID] = rec
		}
		return out
	}
	fifo := run(PolicyFIFO)
	back := run(PolicyBackfill)
	if back["small"].StartSec != 2 {
		t.Fatalf("backfill should start the small job on arrival at 2s, got %gs", back["small"].StartSec)
	}
	if fifo["small"].StartSec <= fifo["big2"].StartSec {
		t.Fatalf("FIFO should hold the small job behind big2 (big2 start %gs, small start %gs)",
			fifo["big2"].StartSec, fifo["small"].StartSec)
	}
}

func TestDeterministicReports(t *testing.T) {
	c := twoNode()
	s1 := rng.New(42)
	arrivals := PoissonArrivals(s1, 20, 0.01)
	tmpl := s1.Split(1)
	jobs := make([]Job, len(arrivals))
	for i, at := range arrivals {
		demand := []int{2, 4, 8}[tmpl.Intn(3)]
		jobs[i] = Job{
			ID:         fmt.Sprintf("job%03d", i),
			ArrivalSec: at,
			Demand:     demand,
			Priority:   tmpl.Intn(3),
			Iterations: 1 + tmpl.Intn(5),
		}
	}
	for _, name := range Policies() {
		t.Run(name, func(t *testing.T) {
			var out [2]bytes.Buffer
			for i := 0; i < 2; i++ {
				r, err := Run(c, jobs, newStubSim(), Options{Policy: mustPolicy(t, name)})
				if err != nil {
					t.Fatal(err)
				}
				if err := r.WriteJSON(&out[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
				t.Fatal("identical runs produced different report JSON")
			}
		})
	}
}

func TestCarveCanonicalShape(t *testing.T) {
	c := twoNode()
	// Devices 0,1 (node0) and devices 4,5 (node1) carve to the same shape.
	sub1, l2g1 := Carve(c, []int{0, 1})
	sub2, l2g2 := Carve(c, []int{4, 5})
	if Signature(sub1) != Signature(sub2) {
		t.Fatalf("equivalent carves differ:\n%s\n%s", Signature(sub1), Signature(sub2))
	}
	if len(sub1.Nodes) != 1 || sub1.Nodes[0].Devices != 2 {
		t.Fatalf("carve shape wrong: %+v", sub1.Nodes)
	}
	if l2g1[0] != 0 || l2g1[1] != 1 || l2g2[0] != 4 || l2g2[1] != 5 {
		t.Fatalf("local2global wrong: %v %v", l2g1, l2g2)
	}
	// A straddling carve has two nodes and a different signature.
	sub3, _ := Carve(c, []int{3, 4})
	if len(sub3.Nodes) != 2 {
		t.Fatalf("straddling carve should span 2 sub-nodes, got %d", len(sub3.Nodes))
	}
	if Signature(sub3) == Signature(sub1) {
		t.Fatal("straddling carve must not share the single-node signature")
	}
	// Canonical order: bigger group first regardless of node index.
	sub4, l2g4 := Carve(c, []int{0, 4, 5, 6})
	if sub4.Nodes[0].Devices != 3 || sub4.Nodes[1].Devices != 1 {
		t.Fatalf("canonical order wrong: %+v", sub4.Nodes)
	}
	if l2g4[0] != 4 || l2g4[1] != 5 || l2g4[2] != 6 || l2g4[3] != 0 {
		t.Fatalf("local2global should follow canonical group order, got %v", l2g4)
	}
	if err := sub4.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheCountsRepeatShapes(t *testing.T) {
	c := twoNode()
	jobs := simpleJobs(6, 4) // same shape six times, arrivals spaced out
	for i := range jobs {
		jobs[i].ArrivalSec = float64(i * 1000) // sequential: each runs alone
	}
	r, err := Run(c, jobs, newStubSim(), Options{Policy: mustPolicy(t, PolicyBestFit)})
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheMisses != 1 || r.CacheHits != 5 {
		t.Fatalf("want 1 miss + 5 hits for a repeated shape, got %d misses %d hits",
			r.CacheMisses, r.CacheHits)
	}
}

func TestPoissonArrivals(t *testing.T) {
	s := rng.New(7)
	a := PoissonArrivals(s, 1000, 0.5)
	if len(a) != 1000 {
		t.Fatalf("want 1000 arrivals, got %d", len(a))
	}
	prev := 0.0
	for i, at := range a {
		if at <= prev {
			t.Fatalf("arrival %d at %g not after %g", i, at, prev)
		}
		prev = at
	}
	// Mean gap should be near 1/rate = 2s.
	mean := a[len(a)-1] / float64(len(a))
	if mean < 1.5 || mean > 2.5 {
		t.Fatalf("mean gap %g far from 2s", mean)
	}
	// Determinism.
	b := PoissonArrivals(rng.New(7), 1000, 0.5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identical seeds", i)
		}
	}
	if PoissonArrivals(s, 0, 1) != nil || PoissonArrivals(s, 1, 0) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
}

func TestBurstyArrivals(t *testing.T) {
	s := rng.New(7)
	a := BurstyArrivals(s, 100, 5, 0.01)
	if len(a) != 100 {
		t.Fatalf("want 100 arrivals, got %d", len(a))
	}
	prev := -1.0
	for i, at := range a {
		if at < prev {
			t.Fatalf("arrival %d at %g before %g", i, at, prev)
		}
		prev = at
	}
	// Bursts cluster: the median gap must be far below the mean gap.
	gaps := make([]float64, 0, len(a)-1)
	for i := 1; i < len(a); i++ {
		gaps = append(gaps, a[i]-a[i-1])
	}
	mean := 0.0
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	within := 0
	for _, g := range gaps {
		if g < mean/2 {
			within++
		}
	}
	if within < len(gaps)/2 {
		t.Fatalf("gaps do not cluster into bursts: %d/%d below half the mean", within, len(gaps))
	}
}

func TestParseTrace(t *testing.T) {
	good := `[
	  {"arrival_sec": 0, "template": "short"},
	  {"arrival_sec": 5.5, "template": "long", "priority": 2, "iterations": 7}
	]`
	entries, err := ParseTrace(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Template != "long" || entries[1].Iterations != 7 {
		t.Fatalf("parsed %+v", entries)
	}
	bad := []string{
		`[]`,
		`[{"arrival_sec": 0}]`,
		`[{"arrival_sec": -1, "template": "t"}]`,
		`[{"arrival_sec": 5, "template": "t"}, {"arrival_sec": 1, "template": "t"}]`,
		`[{"arrival_sec": 0, "template": "t", "bogus": 1}]`,
	}
	for i, in := range bad {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("bad trace %d parsed without error", i)
		}
	}
	if _, err := LoadTraceFile("/nonexistent/trace.json"); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range Policies() {
		p, ok := PolicyByName(strings.ToUpper(name))
		if !ok {
			t.Fatalf("policy %s not found case-insensitively", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := PolicyByName("nope"); ok {
		t.Fatal("unknown policy resolved")
	}
	if err := (Policy{Order: "x", Carve: CarveBest}).Validate(); err == nil {
		t.Fatal("bad order validated")
	}
	if err := (Policy{Order: OrderArrival, Carve: "x"}).Validate(); err == nil {
		t.Fatal("bad carve validated")
	}
}

func TestStats(t *testing.T) {
	s := newStats([]float64{4, 1, 3, 2})
	if s.MeanSec != 2.5 || s.P50Sec != 2 || s.MaxSec != 4 {
		t.Fatalf("stats %+v", s)
	}
	if z := newStats(nil); z != (Stats{}) {
		t.Fatalf("empty stats %+v", z)
	}
}

func TestReportWriters(t *testing.T) {
	c := twoNode()
	r, err := Run(c, simpleJobs(4, 4), newStubSim(), Options{Policy: mustPolicy(t, PolicyBestFit)})
	if err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"makespan_sec"`) {
		t.Fatal("JSON misses makespan")
	}
	var cs bytes.Buffer
	if err := r.WriteCSV(&cs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cs.String()), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("CSV has %d lines, want header + 4 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "job,template,priority") {
		t.Fatalf("CSV header %q", lines[0])
	}
	sum := r.Summary()
	for _, want := range []string{"jobs on", "makespan", "utilization", "sim cache"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary misses %q:\n%s", want, sum)
		}
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization %g out of range", r.Utilization)
	}
	if len(r.LinkTraffic) == 0 || r.LinkTraffic[0].Class != "nvlink" {
		t.Fatalf("link traffic %+v", r.LinkTraffic)
	}
	// 4 jobs x 3 iterations x 1000 bytes.
	if r.LinkTraffic[0].Bytes != 12000 {
		t.Fatalf("link bytes %d, want 12000", r.LinkTraffic[0].Bytes)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	c := twoNode()
	// One job holding half the cluster for its whole run: utilization 0.5,
	// no fragmentation windows with free devices on partially-used nodes
	// under best fit (node1 stays fully free).
	jobs := []Job{{ID: "j", Demand: 4, Iterations: 1, ArrivalSec: 0}}
	r, err := Run(c, jobs, newStubSim(), Options{Policy: mustPolicy(t, PolicyBestFit)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Utilization-0.5) > 1e-9 {
		t.Fatalf("utilization %g, want 0.5", r.Utilization)
	}
	if r.Fragmentation != 0 {
		t.Fatalf("fragmentation %g, want 0 (whole node carve)", r.Fragmentation)
	}
	// First fit on a demand-2 job leaves 2 fragmented free devices on node0
	// for the whole makespan: fragmentation 2/8.
	r2, err := Run(c, []Job{{ID: "j", Demand: 2, Iterations: 1, ArrivalSec: 0}},
		newStubSim(), Options{Policy: mustPolicy(t, PolicyFIFO)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Fragmentation-0.25) > 1e-9 {
		t.Fatalf("fragmentation %g, want 0.25", r2.Fragmentation)
	}
}
