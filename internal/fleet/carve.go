package fleet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
)

// Carve builds the sub-cluster a device set forms: one sub-node per physical
// node the set touches, carrying that node's intra link, joined by the parent
// fabric. Node groups are ordered canonically by shape (larger groups first,
// then link class/speed, then parent node index), so two carves of the same
// shape — 4 NVLink devices here or there — produce identical sub-clusters and
// share spec→Report cache entries. The second return value maps each
// sub-cluster-local device index back to its fleet-global device id.
func Carve(c cluster.Cluster, devs []int) (cluster.Cluster, []int) {
	byNode := map[int][]int{}
	for _, d := range devs {
		n := c.NodeOf(d)
		if n < 0 {
			panic(fmt.Sprintf("fleet: carve names device %d outside cluster %s", d, c.Name))
		}
		byNode[n] = append(byNode[n], d)
	}
	type group struct {
		node int
		devs []int
	}
	groups := make([]group, 0, len(byNode))
	for n, ds := range byNode {
		sort.Ints(ds)
		groups = append(groups, group{node: n, devs: ds})
	}
	sort.Slice(groups, func(a, b int) bool {
		ga, gb := groups[a], groups[b]
		if len(ga.devs) != len(gb.devs) {
			return len(ga.devs) > len(gb.devs)
		}
		la, lb := c.Nodes[ga.node].Intra, c.Nodes[gb.node].Intra
		if la.Class != lb.Class {
			return la.Class < lb.Class
		}
		if la.GBps != lb.GBps {
			return la.GBps > lb.GBps
		}
		if la.LatencySec != lb.LatencySec {
			return la.LatencySec < lb.LatencySec
		}
		return ga.node < gb.node
	})

	sub := cluster.Cluster{GPU: c.GPU, Inter: c.Inter}
	local2global := make([]int, 0, len(devs))
	for i, g := range groups {
		sub.Nodes = append(sub.Nodes, cluster.Node{
			Name:    fmt.Sprintf("carve%d", i),
			Devices: len(g.devs),
			Intra:   c.Nodes[g.node].Intra,
		})
		local2global = append(local2global, g.devs...)
	}
	sub.Name = fmt.Sprintf("%s/%s", c.Name, shape(sub))
	return sub, local2global
}

// shape renders the node-size profile of a cluster ("8+4+2").
func shape(c cluster.Cluster) string {
	parts := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		parts[i] = fmt.Sprintf("%d", n.Devices)
	}
	return strings.Join(parts, "+")
}

// Signature renders everything about a carved sub-cluster that affects a
// simulation on it — GPU model, node sizes, link classes and speeds — as a
// canonical string, the cache-key component that lets equivalent carve shapes
// share spec→Report cache entries.
func Signature(c cluster.Cluster) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gpu=%s", c.GPU)
	for _, n := range c.Nodes {
		fmt.Fprintf(&b, "|%dx(%s,%g,%g)", n.Devices, n.Intra.Class, n.Intra.GBps, n.Intra.LatencySec)
	}
	if len(c.Nodes) > 1 {
		fmt.Fprintf(&b, "|inter=(%s,%g,%g)", c.Inter.Class, c.Inter.GBps, c.Inter.LatencySec)
	}
	return b.String()
}
