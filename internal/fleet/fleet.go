// Package fleet is a discrete-event simulator of a shared GPU cluster
// serving a stream of training jobs. One HelixPipe run models one job on one
// dedicated cluster; this package models the fleet question on top of it:
// how many jobs per hour can a cluster sustain, at what queue wait, under
// which admission and placement policy?
//
// A Job is a device demand plus arrival time, priority and an opaque payload
// describing the training run. Arrival generators (arrivals.go) produce the
// stream; a Policy (policy.go) decides admission order and which free
// devices to carve for each admitted job; the carved devices become a
// sub-cluster (the job's private topology view) and a Simulator — the bridge
// back to the real pipeline simulator — prices one training iteration on it.
// The engine advances an event queue of arrivals and completions, preempts
// and re-queues under the preemptive policy, and aggregates fleet metrics
// (queue wait, JCT, makespan, utilization, fragmentation, per-link-class
// traffic) into a Report.
//
// The engine is deterministic: the same jobs, policy and simulator always
// produce the same Report, byte for byte.
package fleet

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// Job is one training job of the stream: when it arrives, how important it
// is, how many devices its pipeline needs, and how long it trains.
type Job struct {
	// ID identifies the job in the report ("job007").
	ID string
	// Template labels the job shape the stream drew ("short-32k").
	Template string
	// ArrivalSec is the job's arrival time on the fleet clock.
	ArrivalSec float64
	// Priority orders preemptive admission; higher preempts lower.
	Priority int
	// Demand is the number of devices the job's pipeline occupies — one per
	// pipeline stage.
	Demand int
	// Iterations is the number of training iterations the job runs; its
	// runtime is Iterations times the simulated iteration seconds.
	Iterations int
	// Payload is opaque to the engine and handed to the Simulator — the
	// spec-level bridge attaches the job's experiment spec here.
	Payload any
}

// JobRun is the Simulator's answer for one job on one carved sub-cluster.
type JobRun struct {
	// IterationSeconds is the simulated duration of one training iteration
	// on the carved devices.
	IterationSeconds float64
	// Placement maps the job's pipeline stages onto the sub-cluster's local
	// device ids (the engine translates them back to fleet-global ids).
	Placement cluster.Placement
	// LinkTraffic is one iteration's communication per link class.
	LinkTraffic []sim.LinkClassStats
	// CacheHit reports whether the result came from a result cache instead
	// of a fresh simulation.
	CacheHit bool
}

// Simulator prices one training iteration of a job on a carved sub-cluster.
// Implementations search a stage placement on the sub-cluster and run the
// real pipeline simulator; a result cache keyed on the job's normalized spec
// and the carve shape keeps repeated job shapes from re-simulating.
type Simulator interface {
	Simulate(job Job, sub cluster.Cluster) (JobRun, error)
}

// ProbeEvent is the engine state snapshot handed to Options.Probe after
// every processed event — the hook the policy-invariant tests watch.
type ProbeEvent struct {
	// TimeSec is the fleet clock.
	TimeSec float64
	// AllocatedDevices is the number of devices marked busy.
	AllocatedDevices int
	// RunningDemand is the summed device demand of the running jobs. The
	// no-stranded-devices invariant is AllocatedDevices == RunningDemand.
	RunningDemand int
	// FreeDevices is the number of free devices.
	FreeDevices int
	// Queued and Running count the jobs in each state.
	Queued, Running int
	// Preemptions is the cumulative preemption count up to this event.
	Preemptions int
}

// Options tunes one fleet run.
type Options struct {
	// Policy is the admission/placement policy (default FIFO).
	Policy Policy
	// Probe, when set, observes the engine state after every event.
	Probe func(ProbeEvent)
}

// jobState tracks one job through the event loop.
type jobState struct {
	job   Job
	seq   int // arrival order tiebreak
	state int // jsQueued, jsRunning, jsDone

	enqueuedAt float64 // time of the latest queue (re-)entry
	waitSec    float64 // accumulated queue wait across (re-)entries
	startSec   float64 // latest run start
	endSec     float64
	runSec     float64
	run        JobRun
	busyDevs   []int // fleet-global devices marked busy while running
	placedDevs []int // fleet-global device per pipeline stage
	nodes      int   // node span of the latest carve
	preempted  int
	cacheHit   bool
	gen        int // completion-event generation; bumped on preemption
}

const (
	jsQueued = iota
	jsRunning
	jsDone
)

// event is one entry of the fleet clock: an arrival or a completion.
type event struct {
	timeSec float64
	seq     int // monotonic push order: deterministic tie-break
	arrival bool
	st      *jobState
	gen     int // completion generation; stale after a preemption
}

// eventHeap orders events by (time, push order): ties on the clock resolve
// in the deterministic order they were scheduled.
type eventHeap struct {
	events []*event
	seq    int
}

func (h eventHeap) Len() int { return len(h.events) }
func (h eventHeap) Less(i, j int) bool {
	if h.events[i].timeSec != h.events[j].timeSec {
		return h.events[i].timeSec < h.events[j].timeSec
	}
	return h.events[i].seq < h.events[j].seq
}
func (h eventHeap) Swap(i, j int) { h.events[i], h.events[j] = h.events[j], h.events[i] }
func (h *eventHeap) Push(x any)   { h.events = append(h.events, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := h.events
	n := len(old)
	e := old[n-1]
	h.events = old[:n-1]
	return e
}
func (h *eventHeap) push(e *event) {
	h.seq++
	e.seq = h.seq
	heap.Push(h, e)
}

// engine is the mutable state of one fleet run.
type engine struct {
	c      cluster.Cluster
	sim    Simulator
	policy Policy
	probe  func(ProbeEvent)

	a       *alloc
	events  eventHeap
	queue   []*jobState
	running []*jobState
	states  []*jobState

	cacheHits, cacheMisses int
	preemptions            int // cumulative across all jobs
}

// Run simulates the job stream on the shared cluster under the policy and
// returns the fleet report. Jobs are validated eagerly: a demand exceeding
// the cluster's device count can never be admitted and is an error, not a
// stranded queue entry.
func Run(c cluster.Cluster, jobs []Job, simr Simulator, opt Options) (*Report, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if simr == nil {
		return nil, fmt.Errorf("fleet: no simulator")
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fleet: no jobs")
	}
	policy := opt.Policy
	if policy.Name == "" {
		policy, _ = PolicyByName(PolicyFIFO)
	}
	total := c.Devices()
	for _, j := range jobs {
		switch {
		case j.Demand <= 0:
			return nil, fmt.Errorf("fleet: job %s demands %d devices", j.ID, j.Demand)
		case j.Demand > total:
			return nil, fmt.Errorf("fleet: job %s demands %d devices, cluster %s has %d",
				j.ID, j.Demand, c.Name, total)
		case j.Iterations <= 0:
			return nil, fmt.Errorf("fleet: job %s runs %d iterations", j.ID, j.Iterations)
		case j.ArrivalSec < 0:
			return nil, fmt.Errorf("fleet: job %s arrives at negative time %g", j.ID, j.ArrivalSec)
		}
	}

	e := &engine{c: c, sim: simr, policy: policy, probe: opt.Probe, a: newAlloc(c)}
	e.states = make([]*jobState, len(jobs))
	for i, j := range jobs {
		e.states[i] = &jobState{job: j, seq: i, state: jsQueued}
	}
	// Arrival order: time, then input order.
	byArrival := append([]*jobState(nil), e.states...)
	sort.SliceStable(byArrival, func(a, b int) bool {
		return byArrival[a].job.ArrivalSec < byArrival[b].job.ArrivalSec
	})
	for _, st := range byArrival {
		e.events.push(&event{timeSec: st.job.ArrivalSec, arrival: true, st: st})
	}

	t0 := byArrival[0].job.ArrivalSec
	prev := t0
	busyDevSec, fragDevSec := 0.0, 0.0

	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if !ev.arrival && (ev.gen != ev.st.gen || ev.st.state != jsRunning) {
			continue // completion invalidated by a preemption
		}
		// Accrue the interval since the previous effective event under the
		// allocation that held across it.
		dt := ev.timeSec - prev
		busyDevSec += float64(e.a.allocated()) * dt
		fragDevSec += float64(e.a.fragmentedFree()) * dt
		prev = ev.timeSec

		if ev.arrival {
			ev.st.enqueuedAt = ev.timeSec
			e.queue = append(e.queue, ev.st)
		} else {
			e.complete(ev.st, ev.timeSec)
		}
		if err := e.schedule(ev.timeSec); err != nil {
			return nil, err
		}
		if e.probe != nil {
			demand := 0
			for _, st := range e.running {
				demand += st.job.Demand
			}
			e.probe(ProbeEvent{
				TimeSec:          ev.timeSec,
				AllocatedDevices: e.a.allocated(),
				RunningDemand:    demand,
				FreeDevices:      e.a.free,
				Queued:           len(e.queue),
				Running:          len(e.running),
				Preemptions:      e.preemptions,
			})
		}
	}
	if len(e.queue) > 0 || len(e.running) > 0 {
		return nil, fmt.Errorf("fleet: %d jobs stranded after the last event (engine bug)",
			len(e.queue)+len(e.running))
	}
	return e.report(t0, prev, busyDevSec, fragDevSec), nil
}

// complete finishes a running job and releases its devices.
func (e *engine) complete(st *jobState, t float64) {
	e.a.release(st.busyDevs)
	st.busyDevs = nil
	st.state = jsDone
	st.endSec = t
	e.removeRunning(st)
}

// schedule admits every job the policy allows at the current state, looping
// until nothing further can start.
func (e *engine) schedule(t float64) error {
	for {
		if len(e.queue) == 0 {
			return nil
		}
		ordered := e.orderedQueue()
		started := false
		for idx, st := range ordered {
			devs, ok := e.a.carve(e.policy.Carve, st.job.Demand)
			if ok {
				if err := e.start(st, devs, t); err != nil {
					return err
				}
				started = true
				break
			}
			if idx == 0 && e.policy.Preempt {
				if victims, ok := e.preemptionPlan(st); ok {
					for _, v := range victims {
						e.preempt(v, t)
					}
					devs, ok := e.a.carve(e.policy.Carve, st.job.Demand)
					if !ok {
						return fmt.Errorf("fleet: preemption freed too few devices for job %s (engine bug)", st.job.ID)
					}
					if err := e.start(st, devs, t); err != nil {
						return err
					}
					started = true
					break
				}
			}
			if !e.policy.Backfill {
				break // head-of-line blocking: only the head may start
			}
		}
		if !started {
			return nil
		}
	}
}

// orderedQueue returns the queue in the policy's admission order.
func (e *engine) orderedQueue() []*jobState {
	q := append([]*jobState(nil), e.queue...)
	switch e.policy.Order {
	case OrderPriority:
		sort.SliceStable(q, func(a, b int) bool {
			if q[a].job.Priority != q[b].job.Priority {
				return q[a].job.Priority > q[b].job.Priority
			}
			if q[a].job.ArrivalSec != q[b].job.ArrivalSec {
				return q[a].job.ArrivalSec < q[b].job.ArrivalSec
			}
			return q[a].seq < q[b].seq
		})
	default: // arrival order
		sort.SliceStable(q, func(a, b int) bool {
			if q[a].job.ArrivalSec != q[b].job.ArrivalSec {
				return q[a].job.ArrivalSec < q[b].job.ArrivalSec
			}
			return q[a].seq < q[b].seq
		})
	}
	return q
}

// preemptionPlan selects the cheapest set of strictly-lower-priority running
// jobs whose devices, together with the free pool, cover the job's demand.
// Victims are taken lowest priority first, youngest first within a priority,
// and only as many as needed; no plan exists when even preempting every
// lower-priority job leaves the demand uncovered.
func (e *engine) preemptionPlan(st *jobState) ([]*jobState, bool) {
	var candidates []*jobState
	for _, r := range e.running {
		if r.job.Priority < st.job.Priority {
			candidates = append(candidates, r)
		}
	}
	sort.SliceStable(candidates, func(a, b int) bool {
		if candidates[a].job.Priority != candidates[b].job.Priority {
			return candidates[a].job.Priority < candidates[b].job.Priority
		}
		if candidates[a].startSec != candidates[b].startSec {
			return candidates[a].startSec > candidates[b].startSec
		}
		return candidates[a].seq > candidates[b].seq
	})
	freed := e.a.free
	var victims []*jobState
	for _, c := range candidates {
		if freed >= st.job.Demand {
			break
		}
		victims = append(victims, c)
		freed += c.job.Demand
	}
	if freed < st.job.Demand {
		return nil, false
	}
	return victims, true
}

// preempt stops a running job and re-queues it. The restart is
// checkpoint-free: the job re-simulates and re-runs its full iteration
// count when re-admitted.
func (e *engine) preempt(st *jobState, t float64) {
	e.a.release(st.busyDevs)
	st.busyDevs = nil
	st.gen++ // invalidate the in-flight completion event
	st.state = jsQueued
	st.enqueuedAt = t
	st.preempted++
	e.preemptions++
	e.removeRunning(st)
	e.queue = append(e.queue, st)
}

// start admits a job onto carved devices: the carve becomes a sub-cluster,
// the simulator prices one iteration and places the stages on it, and the
// completion event lands Iterations iterations later.
func (e *engine) start(st *jobState, devs []int, t float64) error {
	sub, local2global := Carve(e.c, devs)
	run, err := e.sim.Simulate(st.job, sub)
	if err != nil {
		return fmt.Errorf("fleet: job %s: %w", st.job.ID, err)
	}
	if run.IterationSeconds <= 0 {
		return fmt.Errorf("fleet: job %s simulated a non-positive iteration time %g",
			st.job.ID, run.IterationSeconds)
	}
	placed := devs
	if n := len(run.Placement.Devices); n > 0 {
		if n != st.job.Demand {
			return fmt.Errorf("fleet: job %s placement maps %d stages for demand %d",
				st.job.ID, n, st.job.Demand)
		}
		placed = make([]int, n)
		for stage, local := range run.Placement.Devices {
			if local < 0 || local >= len(local2global) {
				return fmt.Errorf("fleet: job %s placement names sub-device %d of %d",
					st.job.ID, local, len(local2global))
			}
			placed[stage] = local2global[local]
		}
	}
	e.a.take(devs)
	if run.CacheHit {
		e.cacheHits++
	} else {
		e.cacheMisses++
	}
	st.run = run
	st.cacheHit = run.CacheHit
	st.busyDevs = devs
	st.placedDevs = placed
	st.nodes = e.nodeSpan(devs)
	st.state = jsRunning
	st.waitSec += t - st.enqueuedAt
	st.startSec = t
	st.runSec = run.IterationSeconds * float64(st.job.Iterations)
	e.running = append(e.running, st)
	e.queue = removeState(e.queue, st)
	e.events.push(&event{timeSec: t + st.runSec, st: st, gen: st.gen})
	return nil
}

func (e *engine) removeRunning(st *jobState) { e.running = removeState(e.running, st) }

func removeState(list []*jobState, st *jobState) []*jobState {
	for i, s := range list {
		if s == st {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// nodeSpan counts the distinct nodes a device set touches.
func (e *engine) nodeSpan(devs []int) int {
	seen := map[int]bool{}
	for _, d := range devs {
		seen[e.c.NodeOf(d)] = true
	}
	return len(seen)
}

// alloc tracks the free/busy state of the cluster's devices.
type alloc struct {
	c          cluster.Cluster
	busy       []bool
	freeByNode []int
	nodeBase   []int
	free       int
}

func newAlloc(c cluster.Cluster) *alloc {
	a := &alloc{
		c:          c,
		busy:       make([]bool, c.Devices()),
		freeByNode: make([]int, len(c.Nodes)),
		nodeBase:   make([]int, len(c.Nodes)),
		free:       c.Devices(),
	}
	for i, n := range c.Nodes {
		a.freeByNode[i] = n.Devices
		if i > 0 {
			a.nodeBase[i] = a.nodeBase[i-1] + c.Nodes[i-1].Devices
		}
	}
	return a
}

func (a *alloc) allocated() int { return len(a.busy) - a.free }

// fragmentedFree counts the free devices sitting on partially-occupied
// nodes — capacity that exists but cannot host a whole-node job, the
// quantity the report's time-averaged fragmentation integrates.
func (a *alloc) fragmentedFree() int {
	frag := 0
	for i, n := range a.c.Nodes {
		if a.freeByNode[i] > 0 && a.freeByNode[i] < n.Devices {
			frag += a.freeByNode[i]
		}
	}
	return frag
}

func (a *alloc) take(devs []int) {
	for _, d := range devs {
		if a.busy[d] {
			panic(fmt.Sprintf("fleet: device %d double-allocated", d))
		}
		a.busy[d] = true
		a.freeByNode[a.c.NodeOf(d)]--
		a.free--
	}
}

func (a *alloc) release(devs []int) {
	for _, d := range devs {
		if !a.busy[d] {
			panic(fmt.Sprintf("fleet: device %d double-released", d))
		}
		a.busy[d] = false
		a.freeByNode[a.c.NodeOf(d)]++
		a.free++
	}
}

// freeOnNode returns the node's free device ids in ascending order, at most
// limit of them.
func (a *alloc) freeOnNode(node, limit int) []int {
	var out []int
	base := a.nodeBase[node]
	for d := base; d < base+a.c.Nodes[node].Devices && len(out) < limit; d++ {
		if !a.busy[d] {
			out = append(out, d)
		}
	}
	return out
}

// carve selects demand free devices under the carve policy, or reports that
// the job does not fit. The returned ids are sorted ascending.
func (a *alloc) carve(kind string, demand int) ([]int, bool) {
	if demand > a.free {
		return nil, false
	}
	switch kind {
	case CarveBest:
		return a.carveBest(demand), true
	case CarveWorst:
		return a.carveWorst(demand), true
	default:
		return a.carveFirst(demand), true
	}
}

// carveFirst takes free devices in ascending global order — the naive scan
// that happily straddles node boundaries.
func (a *alloc) carveFirst(demand int) []int {
	out := make([]int, 0, demand)
	for d := 0; d < len(a.busy) && len(out) < demand; d++ {
		if !a.busy[d] {
			out = append(out, d)
		}
	}
	return out
}

// carveBest packs tightly: repeatedly the node with the fewest free devices
// that still covers the remaining demand (classic best fit), falling back to
// draining the fullest-free node when no single node suffices. Jobs stay
// within one node whenever any node has room, minimizing fragmentation and
// cross-fabric hops.
func (a *alloc) carveBest(demand int) []int {
	out := make([]int, 0, demand)
	for len(out) < demand {
		remaining := demand - len(out)
		best := -1
		for i := range a.c.Nodes {
			if a.freeByNode[i] >= remaining {
				if best < 0 || a.freeByNode[i] < a.freeByNode[best] {
					best = i
				}
			}
		}
		if best < 0 {
			// No single node covers the rest: drain the node with the most
			// free devices to span as few nodes as possible.
			for i := range a.c.Nodes {
				if a.freeByNode[i] > 0 && (best < 0 || a.freeByNode[i] > a.freeByNode[best]) {
					best = i
				}
			}
		}
		take := a.freeOnNode(best, remaining)
		out = append(out, take...)
		// Mark tentatively so the next round sees the reduced free counts;
		// undone below because carve must not mutate until take().
		for _, d := range take {
			a.busy[d] = true
			a.freeByNode[a.c.NodeOf(d)]--
		}
	}
	for _, d := range out {
		a.busy[d] = false
		a.freeByNode[a.c.NodeOf(d)]++
	}
	sort.Ints(out)
	return out
}

// carveWorst spreads wide: repeatedly the node with the most free devices
// (classic worst fit), leaving every node with as much slack as possible.
func (a *alloc) carveWorst(demand int) []int {
	out := make([]int, 0, demand)
	for len(out) < demand {
		remaining := demand - len(out)
		best := -1
		for i := range a.c.Nodes {
			if a.freeByNode[i] > 0 && (best < 0 || a.freeByNode[i] > a.freeByNode[best]) {
				best = i
			}
		}
		take := a.freeOnNode(best, remaining)
		out = append(out, take...)
		for _, d := range take {
			a.busy[d] = true
			a.freeByNode[a.c.NodeOf(d)]--
		}
	}
	for _, d := range out {
		a.busy[d] = false
		a.freeByNode[a.c.NodeOf(d)]++
	}
	sort.Ints(out)
	return out
}
