package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/rng"
)

// PoissonArrivals draws n arrival times from a Poisson process with the
// given mean rate (jobs per second): exponential inter-arrival gaps from a
// deterministic counter-based stream. Times are returned in ascending order
// starting at the first gap after t=0.
func PoissonArrivals(s *rng.Stream, n int, ratePerSec float64) []float64 {
	if n <= 0 || ratePerSec <= 0 {
		return nil
	}
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += expGap(s, ratePerSec)
		out[i] = t
	}
	return out
}

// BurstyArrivals draws n arrival times in bursts: burst starts follow a
// Poisson process at burstRatePerSec, each burst lands burstSize jobs spaced
// by a fast within-burst Poisson gap (10x the burst rate). It models the
// "whole team submits at once" pattern that stresses admission policies far
// harder than a smooth stream. Bursts may overlap; the merged sequence is
// returned sorted ascending.
func BurstyArrivals(s *rng.Stream, n, burstSize int, burstRatePerSec float64) []float64 {
	if n <= 0 || burstSize <= 0 || burstRatePerSec <= 0 {
		return nil
	}
	out := make([]float64, 0, n)
	t := 0.0
	for len(out) < n {
		t += expGap(s, burstRatePerSec)
		bt := t
		for i := 0; i < burstSize && len(out) < n; i++ {
			if i > 0 {
				bt += expGap(s, 10*burstRatePerSec)
			}
			out = append(out, bt)
		}
	}
	sort.Float64s(out)
	return out
}

// expGap draws one exponential inter-arrival gap with the given rate.
func expGap(s *rng.Stream, rate float64) float64 {
	u := s.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / rate
}

// TraceEntry is one job of a replayed arrival trace. Template names a job
// template of the surrounding fleet spec; the remaining fields override the
// template's defaults when positive.
type TraceEntry struct {
	// ArrivalSec is the job's arrival time in seconds from trace start.
	ArrivalSec float64 `json:"arrival_sec"`
	// Template names the job template this entry instantiates.
	Template string `json:"template"`
	// Priority overrides the template's priority when non-zero.
	Priority int `json:"priority,omitempty"`
	// Iterations overrides the template's iteration count when positive.
	Iterations int `json:"iterations,omitempty"`
}

// ParseTrace decodes a JSON arrival trace — an array of TraceEntry — and
// validates it: entries must name a template, arrive at non-negative and
// non-decreasing times.
func ParseTrace(r io.Reader) ([]TraceEntry, error) {
	var entries []TraceEntry
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&entries); err != nil {
		return nil, fmt.Errorf("fleet: decoding trace JSON: %w", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("fleet: trace has no entries")
	}
	prev := 0.0
	for i, e := range entries {
		switch {
		case e.Template == "":
			return nil, fmt.Errorf("fleet: trace entry %d names no template", i)
		case e.ArrivalSec < 0:
			return nil, fmt.Errorf("fleet: trace entry %d arrives at negative time %g", i, e.ArrivalSec)
		case e.ArrivalSec < prev:
			return nil, fmt.Errorf("fleet: trace entry %d arrives at %gs, before entry %d at %gs",
				i, e.ArrivalSec, i-1, prev)
		case e.Iterations < 0:
			return nil, fmt.Errorf("fleet: trace entry %d runs %d iterations", i, e.Iterations)
		}
		prev = e.ArrivalSec
	}
	return entries, nil
}

// LoadTraceFile reads and validates an arrival trace from a JSON file.
func LoadTraceFile(path string) ([]TraceEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	defer f.Close()
	return ParseTrace(f)
}
