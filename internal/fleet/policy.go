package fleet

import (
	"fmt"
	"strings"
)

// Admission orders for Policy.Order.
const (
	// OrderArrival admits jobs first-come first-served.
	OrderArrival = "arrival"
	// OrderPriority admits the highest-priority queued job first (ties break
	// by arrival).
	OrderPriority = "priority"
)

// Carve kinds for Policy.Carve.
const (
	// CarveFirst takes free devices in ascending global order.
	CarveFirst = "first"
	// CarveBest packs each job onto the fullest node that still fits it.
	CarveBest = "best"
	// CarveWorst spreads each job across the emptiest nodes.
	CarveWorst = "worst"
)

// Preset policy names.
const (
	// PolicyFIFO is strict arrival order with first-fit carving and
	// head-of-line blocking.
	PolicyFIFO = "fifo"
	// PolicyBestFit is arrival order with best-fit carving.
	PolicyBestFit = "bestfit"
	// PolicyWorstFit is arrival order with worst-fit carving.
	PolicyWorstFit = "worstfit"
	// PolicyBackfill is arrival order with best-fit carving and backfill:
	// when the head job does not fit, smaller jobs behind it may start.
	PolicyBackfill = "backfill"
	// PolicyPreempt is priority order with best-fit carving, backfill, and
	// preemption: a high-priority arrival evicts strictly-lower-priority
	// running jobs (which re-queue and restart) when the free pool is short.
	PolicyPreempt = "preempt"
)

// Policy is an admission/placement policy: the order the queue drains in,
// the carve that picks devices for each admitted job, and whether jobs may
// backfill past a blocked head or preempt lower-priority runners.
type Policy struct {
	// Name labels the policy in reports ("bestfit").
	Name string `json:"name"`
	// Order is the admission order: OrderArrival or OrderPriority.
	Order string `json:"order"`
	// Carve selects devices for an admitted job: CarveFirst, CarveBest or
	// CarveWorst.
	Carve string `json:"carve"`
	// Backfill lets jobs behind a blocked queue head start when they fit.
	Backfill bool `json:"backfill"`
	// Preempt lets the queue head evict strictly-lower-priority running jobs
	// to cover its demand; victims re-queue and restart from scratch.
	Preempt bool `json:"preempt"`
}

// Validate reports an error when the policy mixes unknown knob values.
func (p Policy) Validate() error {
	switch p.Order {
	case OrderArrival, OrderPriority:
	default:
		return fmt.Errorf("fleet: unknown admission order %q (want %s or %s)",
			p.Order, OrderArrival, OrderPriority)
	}
	switch p.Carve {
	case CarveFirst, CarveBest, CarveWorst:
	default:
		return fmt.Errorf("fleet: unknown carve %q (want %s, %s or %s)",
			p.Carve, CarveFirst, CarveBest, CarveWorst)
	}
	return nil
}

// presets maps policy names to their knob settings.
func presets() []Policy {
	return []Policy{
		{Name: PolicyFIFO, Order: OrderArrival, Carve: CarveFirst},
		{Name: PolicyBestFit, Order: OrderArrival, Carve: CarveBest},
		{Name: PolicyWorstFit, Order: OrderArrival, Carve: CarveWorst},
		{Name: PolicyBackfill, Order: OrderArrival, Carve: CarveBest, Backfill: true},
		{Name: PolicyPreempt, Order: OrderPriority, Carve: CarveBest, Backfill: true, Preempt: true},
	}
}

// Policies returns the preset policy names in listing order.
func Policies() []string {
	ps := presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// PolicyByName resolves a preset policy case-insensitively and reports
// whether it exists.
func PolicyByName(name string) (Policy, bool) {
	for _, p := range presets() {
		if strings.EqualFold(p.Name, name) {
			return p, true
		}
	}
	return Policy{}, false
}
