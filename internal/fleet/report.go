package fleet

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Stats summarizes a distribution of durations.
type Stats struct {
	// MeanSec, P50Sec, P90Sec, P99Sec and MaxSec describe the distribution.
	MeanSec float64 `json:"mean_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P90Sec  float64 `json:"p90_sec"`
	P99Sec  float64 `json:"p99_sec"`
	MaxSec  float64 `json:"max_sec"`
}

// newStats computes distribution stats over the values (nearest-rank
// percentiles). The zero Stats is returned for an empty input.
func newStats(values []float64) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	pct := func(p float64) float64 {
		rank := int(math.Ceil(p / 100 * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		return sorted[rank-1]
	}
	return Stats{
		MeanSec: sum / float64(len(sorted)),
		P50Sec:  pct(50),
		P90Sec:  pct(90),
		P99Sec:  pct(99),
		MaxSec:  sorted[len(sorted)-1],
	}
}

// JobRecord is one job's outcome in the report.
type JobRecord struct {
	// ID, Template, Priority, Demand and Iterations echo the job.
	ID         string `json:"id"`
	Template   string `json:"template,omitempty"`
	Priority   int    `json:"priority,omitempty"`
	Demand     int    `json:"demand"`
	Iterations int    `json:"iterations"`
	// ArrivalSec, StartSec and EndSec are fleet-clock timestamps (StartSec is
	// the latest admission when the job was preempted and restarted).
	ArrivalSec float64 `json:"arrival_sec"`
	StartSec   float64 `json:"start_sec"`
	EndSec     float64 `json:"end_sec"`
	// WaitSec is the total queued time across admissions; JCTSec is
	// completion minus arrival (wait plus all run attempts).
	WaitSec float64 `json:"wait_sec"`
	JCTSec  float64 `json:"jct_sec"`
	// IterationSec is the simulated per-iteration time of the final run.
	IterationSec float64 `json:"iteration_sec"`
	// Devices is the fleet-global device id each pipeline stage ran on.
	Devices []int `json:"devices"`
	// Nodes is the node span of the final carve.
	Nodes int `json:"nodes"`
	// Preempted counts how often the job was evicted and re-queued.
	Preempted int `json:"preempted,omitempty"`
	// CacheHit reports whether the final run came from the result cache.
	CacheHit bool `json:"cache_hit"`
}

// LinkClassTraffic aggregates the fleet's total communication on one link
// class (per-iteration traffic scaled by each job's final iteration count).
type LinkClassTraffic struct {
	// Class is the link class name ("nvlink", "ib", ...).
	Class string `json:"class"`
	// Bytes is the total volume carried by the class.
	Bytes int64 `json:"bytes"`
	// Seconds is the total wire time spent on the class.
	Seconds float64 `json:"seconds"`
	// Transfers counts the messages.
	Transfers int64 `json:"transfers"`
}

// Report is the outcome of one fleet run.
type Report struct {
	// Cluster and Devices identify the shared cluster.
	Cluster string `json:"cluster"`
	Devices int    `json:"devices"`
	// Policy is the admission/placement policy the run used.
	Policy Policy `json:"policy"`
	// Jobs counts the completed jobs; Preemptions the evictions.
	Jobs        int `json:"jobs"`
	Preemptions int `json:"preemptions"`
	// CacheHits and CacheMisses count simulator cache outcomes across
	// admissions (preempted jobs simulate again on re-admission).
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// StartSec and MakespanSec bound the run: first arrival, and last
	// completion minus first arrival.
	StartSec    float64 `json:"start_sec"`
	MakespanSec float64 `json:"makespan_sec"`
	// Wait and JCT summarize queue wait and job completion time.
	Wait Stats `json:"wait"`
	JCT  Stats `json:"jct"`
	// Utilization is busy device-seconds over total device-seconds across
	// the makespan.
	Utilization float64 `json:"utilization"`
	// Fragmentation is the time-averaged fraction of devices that were free
	// but sitting on partially-occupied nodes — capacity a whole-node job
	// could not use.
	Fragmentation float64 `json:"fragmentation"`
	// ThroughputJobsPerHour is completed jobs per makespan hour.
	ThroughputJobsPerHour float64 `json:"throughput_jobs_per_hour"`
	// LinkTraffic is the fleet's total communication per link class, sorted
	// by class name.
	LinkTraffic []LinkClassTraffic `json:"link_traffic,omitempty"`
	// JobRecords is the per-job outcome in input order.
	JobRecords []JobRecord `json:"job_records"`
}

// report assembles the Report after the event loop drains.
func (e *engine) report(t0, end, busyDevSec, fragDevSec float64) *Report {
	r := &Report{
		Cluster:     e.c.Name,
		Devices:     e.c.Devices(),
		Policy:      e.policy,
		Jobs:        len(e.states),
		StartSec:    t0,
		MakespanSec: end - t0,
		CacheHits:   e.cacheHits,
		CacheMisses: e.cacheMisses,
	}
	waits := make([]float64, 0, len(e.states))
	jcts := make([]float64, 0, len(e.states))
	classes := map[string]*LinkClassTraffic{}
	for _, st := range e.states {
		j := st.job
		rec := JobRecord{
			ID:           j.ID,
			Template:     j.Template,
			Priority:     j.Priority,
			Demand:       j.Demand,
			Iterations:   j.Iterations,
			ArrivalSec:   j.ArrivalSec,
			StartSec:     st.startSec,
			EndSec:       st.endSec,
			WaitSec:      st.waitSec,
			JCTSec:       st.endSec - j.ArrivalSec,
			IterationSec: st.run.IterationSeconds,
			Devices:      st.placedDevs,
			Nodes:        st.nodes,
			Preempted:    st.preempted,
			CacheHit:     st.cacheHit,
		}
		r.Preemptions += st.preempted
		waits = append(waits, rec.WaitSec)
		jcts = append(jcts, rec.JCTSec)
		for _, lc := range st.run.LinkTraffic {
			agg := classes[lc.Class]
			if agg == nil {
				agg = &LinkClassTraffic{Class: lc.Class}
				classes[lc.Class] = agg
			}
			iters := int64(j.Iterations)
			agg.Bytes += lc.Bytes * iters
			agg.Seconds += lc.Seconds * float64(j.Iterations)
			agg.Transfers += int64(lc.Transfers) * iters
		}
		r.JobRecords = append(r.JobRecords, rec)
	}
	r.Wait = newStats(waits)
	r.JCT = newStats(jcts)
	if r.MakespanSec > 0 {
		devSec := float64(r.Devices) * r.MakespanSec
		r.Utilization = busyDevSec / devSec
		r.Fragmentation = fragDevSec / devSec
		r.ThroughputJobsPerHour = float64(r.Jobs) / (r.MakespanSec / 3600)
	}
	for _, agg := range classes {
		r.LinkTraffic = append(r.LinkTraffic, *agg)
	}
	sort.Slice(r.LinkTraffic, func(i, j int) bool { return r.LinkTraffic[i].Class < r.LinkTraffic[j].Class })
	return r
}

// WriteJSON writes the report as indented JSON. The encoding is
// deterministic: identical runs produce byte-identical output.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// CSVHeader is the column set of WriteCSV, one row per job.
func CSVHeader() []string {
	return []string{
		"job", "template", "priority", "demand", "iterations",
		"arrival_sec", "start_sec", "end_sec", "wait_sec", "jct_sec",
		"iteration_sec", "nodes", "preempted", "cache_hit",
	}
}

// WriteCSV writes the per-job records as CSV, one row per job in input order.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader()); err != nil {
		return err
	}
	for _, rec := range r.JobRecords {
		row := []string{
			rec.ID,
			rec.Template,
			strconv.Itoa(rec.Priority),
			strconv.Itoa(rec.Demand),
			strconv.Itoa(rec.Iterations),
			formatSec(rec.ArrivalSec),
			formatSec(rec.StartSec),
			formatSec(rec.EndSec),
			formatSec(rec.WaitSec),
			formatSec(rec.JCTSec),
			strconv.FormatFloat(rec.IterationSec, 'g', 8, 64),
			strconv.Itoa(rec.Nodes),
			strconv.Itoa(rec.Preempted),
			strconv.FormatBool(rec.CacheHit),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatSec(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// Summary renders a few human-facing lines of the report, as helixfleet
// prints them.
func (r *Report) Summary() string {
	s := fmt.Sprintf("%d jobs on %s (%d devices), policy %s\n",
		r.Jobs, r.Cluster, r.Devices, r.Policy.Name)
	s += fmt.Sprintf("  makespan    %10.1fs   throughput %.1f jobs/h\n",
		r.MakespanSec, r.ThroughputJobsPerHour)
	s += fmt.Sprintf("  queue wait  %10.1fs mean, %.1fs p50, %.1fs p99\n",
		r.Wait.MeanSec, r.Wait.P50Sec, r.Wait.P99Sec)
	s += fmt.Sprintf("  JCT         %10.1fs mean, %.1fs p50, %.1fs p99\n",
		r.JCT.MeanSec, r.JCT.P50Sec, r.JCT.P99Sec)
	s += fmt.Sprintf("  utilization %10.1f%%   fragmentation %.1f%%\n",
		100*r.Utilization, 100*r.Fragmentation)
	if r.Preemptions > 0 {
		s += fmt.Sprintf("  preemptions %10d\n", r.Preemptions)
	}
	s += fmt.Sprintf("  sim cache   %10d hits, %d misses\n", r.CacheHits, r.CacheMisses)
	return s
}
