// Package nn implements GPT transformer modules partitioned exactly as
// HelixPipe partitions them (paper Figure 1): a parameterized pre-attention
// segment (LayerNorm 1 + fused QKV projection), the non-parameterized
// attention core, and a parameterized post-attention segment (output
// projection, LayerNorm 2, two-linear GeLU MLP), plus input embeddings and
// an LM head with the fused loss-in-backward of section 4.6.
//
// Every segment exposes forward, backward-B (input gradients) and
// backward-W (weight gradients) separately, mirroring the decoupling the
// schedule IR expresses. Biases are omitted throughout, following the
// paper's Table 1 accounting ("bias parameters are neglected").
package nn

import (
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// LayerParams holds one transformer layer's weights.
type LayerParams struct {
	LN1Gamma, LN1Beta *tensor.Tensor // [h]
	WQKV              *tensor.Tensor // [h, 3h]
	WO                *tensor.Tensor // [h, h]
	LN2Gamma, LN2Beta *tensor.Tensor // [h]
	W1                *tensor.Tensor // [h, 4h]
	W2                *tensor.Tensor // [4h, h]
}

// NewLayerParams initializes a layer deterministically from a counter-based
// stream keyed by the layer index.
func NewLayerParams(cfg model.Config, layer int, root *rng.Stream) *LayerParams {
	h := cfg.Hidden
	s := root.Split(uint64(layer) + 100)
	lp := &LayerParams{
		LN1Gamma: tensor.New(h), LN1Beta: tensor.New(h),
		WQKV:     tensor.New(h, 3*h),
		WO:       tensor.New(h, h),
		LN2Gamma: tensor.New(h), LN2Beta: tensor.New(h),
		W1: tensor.New(h, 4*h),
		W2: tensor.New(4*h, h),
	}
	for i := 0; i < h; i++ {
		lp.LN1Gamma.Data[i] = 1
		lp.LN2Gamma.Data[i] = 1
	}
	const std = 0.02
	s.Split(1).FillNormal(lp.WQKV.Data, std)
	s.Split(2).FillNormal(lp.WO.Data, std)
	s.Split(3).FillNormal(lp.W1.Data, std)
	s.Split(4).FillNormal(lp.W2.Data, std)
	return lp
}

// LayerGrads accumulates one layer's weight gradients.
type LayerGrads struct {
	LN1Gamma, LN1Beta *tensor.Tensor
	WQKV              *tensor.Tensor
	WO                *tensor.Tensor
	LN2Gamma, LN2Beta *tensor.Tensor
	W1                *tensor.Tensor
	W2                *tensor.Tensor
}

// NewLayerGrads returns zeroed gradients matching lp.
func NewLayerGrads(lp *LayerParams) *LayerGrads {
	return &LayerGrads{
		LN1Gamma: tensor.New(lp.LN1Gamma.Shape...), LN1Beta: tensor.New(lp.LN1Beta.Shape...),
		WQKV:     tensor.New(lp.WQKV.Shape...),
		WO:       tensor.New(lp.WO.Shape...),
		LN2Gamma: tensor.New(lp.LN2Gamma.Shape...), LN2Beta: tensor.New(lp.LN2Beta.Shape...),
		W1: tensor.New(lp.W1.Shape...),
		W2: tensor.New(lp.W2.Shape...),
	}
}

// PreCtx is the pre-attention forward stash: the LayerNorm context (which
// keeps the segment input) and the normalized output feeding the QKV GEMM.
type PreCtx struct {
	ln  *tensor.LayerNormCtx
	ln1 *tensor.Tensor
}

// PreForward runs LayerNorm 1 and the QKV projection on x ([b, s, h]) and
// returns the packed QKV tensor ([b, s, 3h]).
func PreForward(lp *LayerParams, x *tensor.Tensor) (*tensor.Tensor, *PreCtx) {
	ln1, lnCtx := tensor.LayerNormForward(tensor.Flatten2D(x), lp.LN1Gamma, lp.LN1Beta)
	qkv := tensor.MatMul(ln1, lp.WQKV)
	b, s, h := x.Shape[0], x.Shape[1], x.Shape[2]
	return tensor.Reshape(qkv, b, s, 3*h), &PreCtx{ln: lnCtx, ln1: ln1}
}

// RecomputePre regenerates the pre-attention stash from the segment input
// (recomputation without attention, section 4.4.1). Only the LayerNorm and
// its normalized output are needed locally — the QKV output already crossed
// to the attention stage, so it is not re-materialized.
func RecomputePre(lp *LayerParams, x *tensor.Tensor) *PreCtx {
	ln1, lnCtx := tensor.LayerNormForward(tensor.Flatten2D(x), lp.LN1Gamma, lp.LN1Beta)
	return &PreCtx{ln: lnCtx, ln1: ln1}
}

// PreWCtx carries what pre-attention backward-W needs: the GEMM input and
// the output gradient.
type PreWCtx struct {
	ln1     *tensor.Tensor
	dqkv    *tensor.Tensor
	lnCtx   *tensor.LayerNormCtx
	dln1Out *tensor.Tensor // upstream gradient at the LayerNorm output
}

// PreBackwardB propagates dqkv ([b, s, 3h]) and the residual gradient
// dresid ([b, s, h], may be nil) to the segment input gradient dx.
func PreBackwardB(lp *LayerParams, ctx *PreCtx, dqkv, dresid *tensor.Tensor) (*tensor.Tensor, *PreWCtx) {
	flatDqkv := tensor.Flatten2D(dqkv)
	dln1 := tensor.MatMulT(flatDqkv, lp.WQKV) // dqkv x WQKV^T
	dx, _, _ := tensor.LayerNormBackward(ctx.ln, dln1)
	shape := ctx.ln.X.Shape
	out := tensor.Reshape(dx, shape[0], shape[1])
	if dresid != nil {
		tensor.AddInPlace(out, tensor.Flatten2D(dresid))
	}
	b := dqkv.Shape[0]
	s := dqkv.Shape[1]
	h := lp.WO.Shape[0]
	return tensor.Reshape(out, b, s, h), &PreWCtx{ln1: ctx.ln1, dqkv: flatDqkv, lnCtx: ctx.ln, dln1Out: dln1}
}

// PreBackwardW accumulates the pre-attention weight gradients.
func PreBackwardW(lp *LayerParams, w *PreWCtx, g *LayerGrads) {
	tensor.AddInPlace(g.WQKV, tensor.TMatMul(w.ln1, w.dqkv))
	_, dgamma, dbeta := tensor.LayerNormBackward(w.lnCtx, w.dln1Out)
	tensor.AddInPlace(g.LN1Gamma, dgamma)
	tensor.AddInPlace(g.LN1Beta, dbeta)
}

// AttnCtx is the attention stash: the flash-attention style context.
type AttnCtx struct {
	inner *tensor.AttnCtx
}

// AttnForward splits the packed QKV ([b, s, 3h]) and runs causal multi-head
// attention, returning the attention output ([b, s, h]).
func AttnForward(cfg model.Config, qkv *tensor.Tensor) (*tensor.Tensor, *AttnCtx) {
	b, s := qkv.Shape[0], qkv.Shape[1]
	h := qkv.Shape[2] / 3
	q := tensor.New(b, s, h)
	k := tensor.New(b, s, h)
	v := tensor.New(b, s, h)
	for i := 0; i < b*s; i++ {
		row := qkv.Data[i*3*h : (i+1)*3*h]
		copy(q.Data[i*h:(i+1)*h], row[:h])
		copy(k.Data[i*h:(i+1)*h], row[h:2*h])
		copy(v.Data[i*h:(i+1)*h], row[2*h:])
	}
	out, ctx := tensor.CausalAttentionForward(q, k, v, cfg.Heads)
	return out, &AttnCtx{inner: ctx}
}

// AttnBackward propagates dout to the packed QKV gradient. Attention has no
// parameters, so there is no backward-W (paper section 4.2).
func AttnBackward(ctx *AttnCtx, dout *tensor.Tensor) *tensor.Tensor {
	dq, dk, dv := tensor.CausalAttentionBackward(ctx.inner, dout)
	b, s, h := dout.Shape[0], dout.Shape[1], dout.Shape[2]
	dqkv := tensor.New(b, s, 3*h)
	for i := 0; i < b*s; i++ {
		row := dqkv.Data[i*3*h : (i+1)*3*h]
		copy(row[:h], dq.Data[i*h:(i+1)*h])
		copy(row[h:2*h], dk.Data[i*h:(i+1)*h])
		copy(row[2*h:], dv.Data[i*h:(i+1)*h])
	}
	return dqkv
}

// PostCtx is the post-attention forward stash.
type PostCtx struct {
	attnOut *tensor.Tensor
	r1      *tensor.Tensor
	lnCtx   *tensor.LayerNormCtx
	ln2     *tensor.Tensor
	h1      *tensor.Tensor
	g       *tensor.Tensor
}

// PostForward consumes the residual input x and the attention output
// (both [b, s, h]) and produces the layer output.
func PostForward(lp *LayerParams, x, attnOut *tensor.Tensor) (*tensor.Tensor, *PostCtx) {
	b, s, h := x.Shape[0], x.Shape[1], x.Shape[2]
	o := tensor.MatMul(tensor.Flatten2D(attnOut), lp.WO)
	r1 := tensor.Add(tensor.Flatten2D(x), o)
	ln2, lnCtx := tensor.LayerNormForward(r1, lp.LN2Gamma, lp.LN2Beta)
	h1 := tensor.MatMul(ln2, lp.W1)
	g := tensor.GeLUForward(h1)
	h2 := tensor.MatMul(g, lp.W2)
	y := tensor.Add(r1, h2)
	return tensor.Reshape(y, b, s, h), &PostCtx{attnOut: attnOut, r1: r1, lnCtx: lnCtx, ln2: ln2, h1: h1, g: g}
}

// RecomputePost regenerates the post-attention stash from its two stashed
// inputs (the residual and the received attention output).
func RecomputePost(lp *LayerParams, x, attnOut *tensor.Tensor) *PostCtx {
	_, ctx := PostForward(lp, x, attnOut)
	return ctx
}

// PostWCtx carries what post-attention backward-W needs.
type PostWCtx struct {
	attnOut *tensor.Tensor
	do      *tensor.Tensor
	lnCtx   *tensor.LayerNormCtx
	dln2Out *tensor.Tensor
	ln2     *tensor.Tensor
	dh1     *tensor.Tensor
	g       *tensor.Tensor
	dh2     *tensor.Tensor
}

// PostBackwardB propagates dy ([b, s, h]) to the attention-output gradient
// and the residual gradient (both [b, s, h]).
func PostBackwardB(lp *LayerParams, ctx *PostCtx, dy *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor, *PostWCtx) {
	b, s, h := dy.Shape[0], dy.Shape[1], dy.Shape[2]
	flatDy := tensor.Flatten2D(dy)
	// y = r1 + h2.
	dh2 := flatDy
	dg := tensor.MatMulT(dh2, lp.W2) // dh2 x W2^T
	dh1 := tensor.GeLUBackward(ctx.h1, dg)
	dln2 := tensor.MatMulT(dh1, lp.W1) // dh1 x W1^T
	dr1FromLN, _, _ := tensor.LayerNormBackward(ctx.lnCtx, dln2)
	dr1 := tensor.Add(flatDy, dr1FromLN)
	do := dr1
	dAttnOut := tensor.MatMulT(do, lp.WO) // do x WO^T
	w := &PostWCtx{attnOut: ctx.attnOut, do: do, lnCtx: ctx.lnCtx, dln2Out: dln2, ln2: ctx.ln2, dh1: dh1, g: ctx.g, dh2: dh2}
	return tensor.Reshape(dAttnOut, b, s, h), tensor.Reshape(dr1.Clone(), b, s, h), w
}

// PostBackwardW accumulates the post-attention weight gradients.
func PostBackwardW(lp *LayerParams, w *PostWCtx, g *LayerGrads) {
	tensor.AddInPlace(g.WO, tensor.TMatMul(tensor.Flatten2D(w.attnOut), w.do))
	_, dgamma, dbeta := tensor.LayerNormBackward(w.lnCtx, w.dln2Out)
	tensor.AddInPlace(g.LN2Gamma, dgamma)
	tensor.AddInPlace(g.LN2Beta, dbeta)
	tensor.AddInPlace(g.W1, tensor.TMatMul(w.ln2, w.dh1))
	tensor.AddInPlace(g.W2, tensor.TMatMul(w.g, w.dh2))
}
