package nn

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/tensor"
)

func tinyModel(t *testing.T) *Model {
	t.Helper()
	return NewModel(model.TinyTest(), 12345)
}

func TestNewModelDeterministic(t *testing.T) {
	a := NewModel(model.TinyTest(), 7)
	b := NewModel(model.TinyTest(), 7)
	for name, pa := range a.NamedParams() {
		if d := tensor.MaxAbsDiff(pa, b.NamedParams()[name]); d != 0 {
			t.Fatalf("%s differs across identical seeds by %g", name, d)
		}
	}
	c := NewModel(model.TinyTest(), 8)
	if tensor.MaxAbsDiff(a.Layers[0].WQKV, c.Layers[0].WQKV) == 0 {
		t.Error("different seeds must differ")
	}
}

func TestNamedCoverage(t *testing.T) {
	m := tinyModel(t)
	params := m.NamedParams()
	grads := NewGrads(m).Named()
	if len(params) != len(grads) {
		t.Fatalf("params (%d) and grads (%d) name sets differ", len(params), len(grads))
	}
	for name, p := range params {
		g, ok := grads[name]
		if !ok {
			t.Fatalf("gradient missing for %s", name)
		}
		if !tensor.SameShape(p, g) {
			t.Fatalf("%s: param shape %v grad shape %v", name, p.Shape, g.Shape)
		}
	}
	// 3 global params + 8 per layer.
	if want := 3 + 8*m.Cfg.Layers; len(params) != want {
		t.Errorf("named params = %d, want %d", len(params), want)
	}
}

// TestLayerSegmentsComposeLikeMonolith verifies that pre + attention + post
// with the residual wiring equal a straight transformer block, and that the
// full backward through the three segments matches finite differences.
func TestLayerSegmentsCompose(t *testing.T) {
	m := tinyModel(t)
	lp := m.Layers[0]
	mb := SyntheticBatch(m.Cfg, 2, 6, 99)
	x := EmbedForward(m.Embed, mb.Ids)

	qkv, preCtx := PreForward(lp, x)
	attnOut, attnCtx := AttnForward(m.Cfg, qkv)
	y, postCtx := PostForward(lp, x, attnOut)
	if !tensor.SameShape(y, x) {
		t.Fatalf("layer output shape %v != input %v", y.Shape, x.Shape)
	}

	// Backward chain with a fixed synthetic upstream gradient.
	dy := tensor.New(y.Shape...)
	for i := range dy.Data {
		dy.Data[i] = float32(math.Sin(float64(i)))
	}
	dAttnOut, dResid, postW := PostBackwardB(lp, postCtx, dy)
	dqkv := AttnBackward(attnCtx, dAttnOut)
	dx, preW := PreBackwardB(lp, preCtx, dqkv, dResid)

	loss := func() float64 {
		qkv2, _ := PreForward(lp, x)
		a2, _ := AttnForward(m.Cfg, qkv2)
		y2, _ := PostForward(lp, x, a2)
		var s float64
		for i, v := range y2.Data {
			s += float64(v) * math.Sin(float64(i))
		}
		return s
	}
	// Finite differences over a sample of input positions.
	const eps = 1e-2
	for _, i := range []int{0, 5, 17, 63, 100} {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := loss()
		x.Data[i] = orig - eps
		down := loss()
		x.Data[i] = orig
		want := (up - down) / (2 * eps)
		if got := float64(dx.Data[i]); math.Abs(got-want) > 5e-2*math.Max(1, math.Abs(want)) {
			t.Errorf("dx[%d] = %g, finite difference %g", i, got, want)
		}
	}

	// Weight gradients against finite differences on one sampled entry each.
	g := NewLayerGrads(lp)
	PostBackwardW(lp, postW, g)
	PreBackwardW(lp, preW, g)
	checkW := func(name string, w, grad *tensor.Tensor, idx int) {
		orig := w.Data[idx]
		w.Data[idx] = orig + eps
		up := loss()
		w.Data[idx] = orig - eps
		down := loss()
		w.Data[idx] = orig
		want := (up - down) / (2 * eps)
		if got := float64(grad.Data[idx]); math.Abs(got-want) > 6e-2*math.Max(1, math.Abs(want)) {
			t.Errorf("%s grad[%d] = %g, finite difference %g", name, idx, got, want)
		}
	}
	checkW("wqkv", lp.WQKV, g.WQKV, 11)
	checkW("wo", lp.WO, g.WO, 7)
	checkW("w1", lp.W1, g.W1, 23)
	checkW("w2", lp.W2, g.W2, 31)
	checkW("ln1_gamma", lp.LN1Gamma, g.LN1Gamma, 3)
	checkW("ln2_beta", lp.LN2Beta, g.LN2Beta, 5)
}

// TestRecomputeReproducesStash verifies the recomputation-without-attention
// strategy regenerates identical contexts: backward results are bit-equal
// whether the stash was kept or recomputed from segment inputs.
func TestRecomputeReproducesStash(t *testing.T) {
	m := tinyModel(t)
	lp := m.Layers[1]
	mb := SyntheticBatch(m.Cfg, 1, 8, 5)
	x := EmbedForward(m.Embed, mb.Ids)
	qkv, preCtx := PreForward(lp, x)
	attnOut, attnCtx := AttnForward(m.Cfg, qkv)
	_, postCtx := PostForward(lp, x, attnOut)

	rePre := RecomputePre(lp, x)
	rePost := RecomputePost(lp, x, attnOut)

	dy := tensor.New(x.Shape...)
	for i := range dy.Data {
		dy.Data[i] = float32(math.Cos(float64(i)))
	}
	a1, r1, _ := PostBackwardB(lp, postCtx, dy)
	a2, r2, _ := PostBackwardB(lp, rePost, dy)
	if tensor.MaxAbsDiff(a1, a2) != 0 || tensor.MaxAbsDiff(r1, r2) != 0 {
		t.Error("recomputed post stash changes backward results")
	}
	dqkv := AttnBackward(attnCtx, a1)
	x1, _ := PreBackwardB(lp, preCtx, dqkv, r1)
	x2, _ := PreBackwardB(lp, rePre, dqkv, r2)
	if tensor.MaxAbsDiff(x1, x2) != 0 {
		t.Error("recomputed pre stash changes backward results")
	}
}

// TestHeadFusedBackwardGradient checks the fused head op (forward + loss +
// backward-B) against finite differences of the loss.
func TestHeadFusedBackwardGradient(t *testing.T) {
	m := tinyModel(t)
	mb := SyntheticBatch(m.Cfg, 1, 5, 3)
	x := EmbedForward(m.Embed, mb.Ids)
	loss1, dx, wctx := HeadFusedBackward(m.Head, x, mb.Targets, 1)
	if loss1 <= 0 {
		t.Fatal("loss should be positive at init")
	}
	lossOf := func() float64 {
		l, _, _ := HeadFusedBackward(m.Head, x, mb.Targets, 1)
		return l
	}
	const eps = 1e-2
	for _, i := range []int{0, 9, 31} {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := lossOf()
		x.Data[i] = orig - eps
		down := lossOf()
		x.Data[i] = orig
		want := (up - down) / (2 * eps)
		if got := float64(dx.Data[i]); math.Abs(got-want) > 5e-3*math.Max(1, math.Abs(want)) {
			t.Errorf("head dx[%d] = %g, want %g", i, got, want)
		}
	}
	g := tensor.New(m.Head.W.Shape...)
	HeadBackwardW(m.Head, wctx, g)
	for _, i := range []int{2, 40} {
		orig := m.Head.W.Data[i]
		m.Head.W.Data[i] = orig + eps
		up := lossOf()
		m.Head.W.Data[i] = orig - eps
		down := lossOf()
		m.Head.W.Data[i] = orig
		want := (up - down) / (2 * eps)
		if got := float64(g.Data[i]); math.Abs(got-want) > 5e-3*math.Max(1, math.Abs(want)) {
			t.Errorf("head dW[%d] = %g, want %g", i, got, want)
		}
	}
}

// TestEmbedBackward checks embedding gradients via finite differences.
func TestEmbedBackward(t *testing.T) {
	m := tinyModel(t)
	mb := SyntheticBatch(m.Cfg, 2, 4, 17)
	dx := tensor.New(2, 4, m.Cfg.Hidden)
	for i := range dx.Data {
		dx.Data[i] = float32(math.Sin(float64(i) / 3))
	}
	g := NewEmbedGrads(m.Embed)
	EmbedBackwardW(m.Embed, mb.Ids, dx, g)
	// The word-embedding gradient row of a token equals the sum of dx rows
	// where that token appears.
	h := m.Cfg.Hidden
	want := tensor.New(m.Cfg.Vocab, h)
	for bi, row := range mb.Ids {
		for i, id := range row {
			for j := 0; j < h; j++ {
				want.Data[id*h+j] += dx.Data[(bi*4+i)*h+j]
			}
		}
	}
	if d := tensor.MaxAbsDiff(g.Word, want); d > 1e-6 {
		t.Errorf("word embedding gradient off by %g", d)
	}
}

// TestReferenceTrainingConverges trains the tiny model for a few Adam steps
// on the synthetic task and expects the loss to drop substantially — the
// sanity baseline for the pipeline-parity experiments.
func TestReferenceTrainingConverges(t *testing.T) {
	m := tinyModel(t)
	opt := NewAdam(3e-3)
	var first, last float64
	for step := 0; step < 30; step++ {
		batches := []MicroBatch{
			SyntheticBatch(m.Cfg, 2, 16, uint64(step)*2+1),
			SyntheticBatch(m.Cfg, 2, 16, uint64(step)*2+2),
		}
		loss, grads := ReferenceStep(m, batches)
		if step == 0 {
			first = loss
		}
		last = loss
		opt.Step(m, grads)
	}
	if last >= first*0.8 {
		t.Errorf("training did not converge: first loss %.4f, last %.4f", first, last)
	}
}

// TestGradsAdd checks the accumulation helper.
func TestGradsAdd(t *testing.T) {
	m := tinyModel(t)
	a := NewGrads(m)
	b := NewGrads(m)
	a.Named()["head.w"].Data[0] = 1
	b.Named()["head.w"].Data[0] = 2
	a.Add(b)
	if a.Named()["head.w"].Data[0] != 3 {
		t.Error("Grads.Add broken")
	}
}

func TestSyntheticBatchDeterministic(t *testing.T) {
	cfg := model.TinyTest()
	a := SyntheticBatch(cfg, 2, 8, 42)
	b := SyntheticBatch(cfg, 2, 8, 42)
	for bi := range a.Ids {
		for i := range a.Ids[bi] {
			if a.Ids[bi][i] != b.Ids[bi][i] || a.Targets[bi][i] != b.Targets[bi][i] {
				t.Fatal("synthetic batches must be reproducible")
			}
			if a.Ids[bi][i] < 0 || a.Ids[bi][i] >= cfg.Vocab {
				t.Fatal("token out of range")
			}
		}
	}
}
