package nn

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// EmbedParams holds the input word and learned position embeddings (the
// paper's section 4.6 module (1), kept on the first pipeline stage).
type EmbedParams struct {
	Word *tensor.Tensor // [V, h]
	Pos  *tensor.Tensor // [maxSeq, h]
}

// HeadParams holds the LM head projection (module (2) of section 4.6). The
// head is untied from the input embedding so that layer-wise schedules
// (head on the last stage) and HelixPipe (head on stage 0) share identical
// mathematical semantics without cross-stage weight synchronization.
type HeadParams struct {
	W *tensor.Tensor // [h, V]
}

// Model is a full GPT stack.
type Model struct {
	Cfg    model.Config
	Embed  *EmbedParams
	Layers []*LayerParams
	Head   *HeadParams
}

// NewModel deterministically initializes a model from a seed; the same seed
// always produces bit-identical parameters regardless of how the layers are
// later distributed.
func NewModel(cfg model.Config, seed uint64) *Model {
	root := rng.New(seed)
	h := cfg.Hidden
	m := &Model{
		Cfg: cfg,
		Embed: &EmbedParams{
			Word: tensor.New(cfg.Vocab, h),
			Pos:  tensor.New(cfg.MaxSeq, h),
		},
		Head: &HeadParams{W: tensor.New(h, cfg.Vocab)},
	}
	const std = 0.02
	root.Split(1).FillNormal(m.Embed.Word.Data, std)
	root.Split(2).FillNormal(m.Embed.Pos.Data, std)
	root.Split(3).FillNormal(m.Head.W.Data, std)
	for l := 0; l < cfg.Layers; l++ {
		m.Layers = append(m.Layers, NewLayerParams(cfg, l, root))
	}
	return m
}

// EmbedForward looks up word plus position embeddings for ids ([b][s]).
func EmbedForward(ep *EmbedParams, ids [][]int) *tensor.Tensor {
	b := len(ids)
	s := len(ids[0])
	h := ep.Word.Shape[1]
	out := tensor.New(b, s, h)
	for bi := 0; bi < b; bi++ {
		flat := tensor.EmbeddingForward(ep.Word, ids[bi])
		for i := 0; i < s; i++ {
			dst := out.Data[(bi*s+i)*h : (bi*s+i+1)*h]
			copy(dst, flat.Data[i*h:(i+1)*h])
			pos := ep.Pos.Data[i*h : (i+1)*h]
			for j := range dst {
				dst[j] += pos[j]
			}
		}
	}
	return out
}

// EmbedGrads accumulates embedding gradients.
type EmbedGrads struct {
	Word *tensor.Tensor
	Pos  *tensor.Tensor
}

// NewEmbedGrads returns zeroed gradients matching ep.
func NewEmbedGrads(ep *EmbedParams) *EmbedGrads {
	return &EmbedGrads{Word: tensor.New(ep.Word.Shape...), Pos: tensor.New(ep.Pos.Shape...)}
}

// EmbedBackwardW scatter-adds the input-activation gradient into the
// embedding tables. The embedding has no backward-B (nothing below it).
func EmbedBackwardW(ep *EmbedParams, ids [][]int, dx *tensor.Tensor, g *EmbedGrads) {
	b, s, h := dx.Shape[0], dx.Shape[1], dx.Shape[2]
	for bi := 0; bi < b; bi++ {
		rows := tensor.FromSlice(dx.Data[bi*s*h:(bi+1)*s*h], s, h)
		tensor.AddInPlace(g.Word, tensor.EmbeddingBackward(ep.Word.Shape, ids[bi], rows))
		for i := 0; i < s; i++ {
			prow := g.Pos.Data[i*h : (i+1)*h]
			drow := dx.Data[(bi*s+i)*h : (bi*s+i+1)*h]
			for j := range prow {
				prow[j] += drow[j]
			}
		}
	}
}

// HeadWCtx carries the fused head op's stash for the deferred backward-W.
type HeadWCtx struct {
	x       *tensor.Tensor
	dlogits *tensor.Tensor
}

// HeadFusedBackward implements the paper's section 4.6 optimization: the
// next-token projection, the loss, and the backward-B all run inside the
// backward pass, so the [s, b, V] logits tensor is never stashed across the
// iteration. lossScale (typically 1/microBatches) scales the gradient so
// that accumulating over micro batches yields the global mean.
func HeadFusedBackward(hp *HeadParams, x *tensor.Tensor, targets [][]int, lossScale float32) (float64, *tensor.Tensor, *HeadWCtx) {
	b, s, h := x.Shape[0], x.Shape[1], x.Shape[2]
	flat := tensor.Flatten2D(x)
	logits := tensor.MatMul(flat, hp.W)
	tgts := make([]int, 0, b*s)
	for _, row := range targets {
		tgts = append(tgts, row...)
	}
	loss, dlogits := tensor.CrossEntropy(logits, tgts)
	dlogits.Scale(lossScale)
	dx := tensor.MatMulT(dlogits, hp.W) // dlogits x W^T
	return loss, tensor.Reshape(dx, b, s, h), &HeadWCtx{x: flat, dlogits: dlogits}
}

// HeadBackwardW accumulates the head weight gradient from the fused stash.
func HeadBackwardW(hp *HeadParams, w *HeadWCtx, g *tensor.Tensor) {
	tensor.AddInPlace(g, tensor.TMatMul(w.x, w.dlogits))
}

// Grads aggregates every parameter gradient of a model, addressable by a
// canonical name so that distributed executions can be compared against the
// single-device reference parameter by parameter.
type Grads struct {
	Embed  *EmbedGrads
	Layers []*LayerGrads
	Head   *tensor.Tensor
}

// NewGrads returns zeroed gradients for m.
func NewGrads(m *Model) *Grads {
	g := &Grads{Embed: NewEmbedGrads(m.Embed), Head: tensor.New(m.Head.W.Shape...)}
	for _, lp := range m.Layers {
		g.Layers = append(g.Layers, NewLayerGrads(lp))
	}
	return g
}

// Named returns the gradient tensors keyed by canonical parameter name.
func (g *Grads) Named() map[string]*tensor.Tensor {
	out := map[string]*tensor.Tensor{
		"embed.word": g.Embed.Word,
		"embed.pos":  g.Embed.Pos,
		"head.w":     g.Head,
	}
	for l, lg := range g.Layers {
		out[fmt.Sprintf("layer%d.ln1_gamma", l)] = lg.LN1Gamma
		out[fmt.Sprintf("layer%d.ln1_beta", l)] = lg.LN1Beta
		out[fmt.Sprintf("layer%d.wqkv", l)] = lg.WQKV
		out[fmt.Sprintf("layer%d.wo", l)] = lg.WO
		out[fmt.Sprintf("layer%d.ln2_gamma", l)] = lg.LN2Gamma
		out[fmt.Sprintf("layer%d.ln2_beta", l)] = lg.LN2Beta
		out[fmt.Sprintf("layer%d.w1", l)] = lg.W1
		out[fmt.Sprintf("layer%d.w2", l)] = lg.W2
	}
	return out
}

// Add accumulates other into g.
func (g *Grads) Add(other *Grads) {
	mine, theirs := g.Named(), other.Named()
	for name, t := range mine {
		tensor.AddInPlace(t, theirs[name])
	}
}

// MicroBatch is one micro batch of token ids and next-token targets.
type MicroBatch struct {
	// Ids is the [b][s] input token matrix.
	Ids [][]int
	// Targets is the [b][s] next-token target matrix.
	Targets [][]int
}

// SyntheticBatch generates a deterministic synthetic micro batch, mirroring
// the paper's synthesized full-length datasets ("each batch had the full
// targeting sequence lengths to rule out the effect of padding").
func SyntheticBatch(cfg model.Config, b, s int, seed uint64) MicroBatch {
	stream := rng.New(seed)
	mb := MicroBatch{Ids: make([][]int, b), Targets: make([][]int, b)}
	for bi := 0; bi < b; bi++ {
		mb.Ids[bi] = make([]int, s)
		mb.Targets[bi] = make([]int, s)
		// A learnable sequence: token t+1 = (token t * 3 + noise) mod V, so
		// small models make real training progress on it.
		cur := stream.Intn(cfg.Vocab)
		for i := 0; i < s; i++ {
			mb.Ids[bi][i] = cur
			next := (cur*3 + stream.Intn(3)) % cfg.Vocab
			mb.Targets[bi][i] = next
			cur = next
		}
	}
	return mb
}

// ReferenceStep runs one full training iteration on a single device:
// forward and backward over every micro batch with per-micro-batch gradient
// accumulation in canonical order. It is the ground truth the pipeline
// executions are compared against.
//
// Gradients are buffered per micro batch and reduced in order at the end —
// the same reduction the pipeline executor performs. Accumulating straight
// into one shared buffer instead would reassociate the float additions of
// micro batches with more than one row (b > 1) and break bit-parity on the
// position-embedding gradient, where every row of a micro batch contributes
// to the same table entries.
func ReferenceStep(m *Model, batches []MicroBatch) (float64, *Grads) {
	total := NewGrads(m)
	lossScale := float32(1) / float32(len(batches))
	var totalLoss float64
	for _, mb := range batches {
		grads := NewGrads(m)
		x := EmbedForward(m.Embed, mb.Ids)
		preCtxs := make([]*PreCtx, len(m.Layers))
		attnCtxs := make([]*AttnCtx, len(m.Layers))
		postCtxs := make([]*PostCtx, len(m.Layers))
		for l, lp := range m.Layers {
			qkv, pre := PreForward(lp, x)
			attnOut, attn := AttnForward(m.Cfg, qkv)
			y, post := PostForward(lp, x, attnOut)
			preCtxs[l], attnCtxs[l], postCtxs[l] = pre, attn, post
			x = y
		}
		loss, dx, headW := HeadFusedBackward(m.Head, x, mb.Targets, lossScale)
		totalLoss += loss
		HeadBackwardW(m.Head, headW, grads.Head)
		for l := len(m.Layers) - 1; l >= 0; l-- {
			lp := m.Layers[l]
			dAttnOut, dResid, postW := PostBackwardB(lp, postCtxs[l], dx)
			PostBackwardW(lp, postW, grads.Layers[l])
			dqkv := AttnBackward(attnCtxs[l], dAttnOut)
			var preW *PreWCtx
			dx, preW = PreBackwardB(lp, preCtxs[l], dqkv, dResid)
			PreBackwardW(lp, preW, grads.Layers[l])
		}
		EmbedBackwardW(m.Embed, mb.Ids, dx, grads.Embed)
		total.Add(grads)
	}
	return totalLoss / float64(len(batches)), total
}
