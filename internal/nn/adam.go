package nn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// NamedParams returns the model's parameter tensors keyed by the same
// canonical names Grads.Named uses.
func (m *Model) NamedParams() map[string]*tensor.Tensor {
	out := map[string]*tensor.Tensor{
		"embed.word": m.Embed.Word,
		"embed.pos":  m.Embed.Pos,
		"head.w":     m.Head.W,
	}
	for l, lp := range m.Layers {
		out[fmt.Sprintf("layer%d.ln1_gamma", l)] = lp.LN1Gamma
		out[fmt.Sprintf("layer%d.ln1_beta", l)] = lp.LN1Beta
		out[fmt.Sprintf("layer%d.wqkv", l)] = lp.WQKV
		out[fmt.Sprintf("layer%d.wo", l)] = lp.WO
		out[fmt.Sprintf("layer%d.ln2_gamma", l)] = lp.LN2Gamma
		out[fmt.Sprintf("layer%d.ln2_beta", l)] = lp.LN2Beta
		out[fmt.Sprintf("layer%d.w1", l)] = lp.W1
		out[fmt.Sprintf("layer%d.w2", l)] = lp.W2
	}
	return out
}

// Adam is the standard Adam optimizer with fp32 moments, matching the
// mixed-precision training recipe the paper inherits from Megatron-LM.
type Adam struct {
	// LR is the learning rate.
	LR float64
	// Beta1, Beta2 and Eps are the usual Adam hyperparameters.
	Beta1, Beta2, Eps float64

	step int
	m    map[string][]float64
	v    map[string][]float64
}

// NewAdam returns an optimizer with the conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[string][]float64{}, v: map[string][]float64{}}
}

// Step applies one update of grads to the model's parameters. Parameters
// are visited in sorted name order, keeping updates deterministic.
func (a *Adam) Step(model *Model, grads *Grads) {
	a.step++
	params := model.NamedParams()
	gs := grads.Named()
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, name := range names {
		p := params[name]
		g := gs[name]
		if a.m[name] == nil {
			a.m[name] = make([]float64, p.Len())
			a.v[name] = make([]float64, p.Len())
		}
		mBuf, vBuf := a.m[name], a.v[name]
		for i := range p.Data {
			gi := float64(g.Data[i])
			mBuf[i] = a.Beta1*mBuf[i] + (1-a.Beta1)*gi
			vBuf[i] = a.Beta2*vBuf[i] + (1-a.Beta2)*gi*gi
			mHat := mBuf[i] / bc1
			vHat := vBuf[i] / bc2
			p.Data[i] -= float32(a.LR * mHat / (math.Sqrt(vHat) + a.Eps))
		}
	}
}
