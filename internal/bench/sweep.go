package bench

import (
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Sweep-baseline grid: every registered method at each (seqlen, stages)
// geometry of the 3B/A800 configuration — 216 cells with the 9 registered
// methods, comfortably over the 200-cell floor the sweep-path gate wants.
var (
	sweepBaselineSeqLens = []int{4096, 8192, 16384, 32768, 49152, 65536, 98304, 131072}
	sweepBaselineStages  = []int{2, 4, 8}
)

// SweepCellsPerSecond is the one throughput key of the sweep baseline
// config.
const SweepCellsPerSecond = "cells_per_second"

// sweepBaselineThreshold is the regression threshold of the sweep config:
// its metric is wall-clock cells/s on a shared CI runner, far noisier than
// the simulated tokens/s of the other configs, so the gate fires only on a
// drop large enough to be a real slowdown rather than scheduler noise.
const sweepBaselineThreshold = 0.5

// SweepBaseline times the sweep path end to end: plan building plus
// simulation for every cell of the method x seqlen x stages grid, run
// sequentially so the cells/s metric measures the hot path and not the
// host's core count. It is the BENCH_baseline config that makes sweep-path
// slowdowns visible to the helixbench -diff gate.
func SweepBaseline() (BaselineConfig, error) {
	mc := model.Model3B()
	cl := costmodel.A800Cluster()
	cells := 0
	start := time.Now()
	for _, seq := range sweepBaselineSeqLens {
		for _, p := range sweepBaselineStages {
			s := NewScenario(mc, cl, seq, p)
			cfg := sched.Config{Stages: p, MicroBatches: s.MicroBatches, Layers: mc.Layers}
			costs := sched.NewCosts(s.Workload())
			params := sched.BuildParams{MemoryBudget: s.MemoryBudget()}
			for _, method := range sched.Methods() {
				plan, err := sched.Build(method, cfg, costs, params)
				if err != nil {
					return BaselineConfig{}, fmt.Errorf("sweep baseline seq=%d p=%d %s: %w", seq, p, method, err)
				}
				if _, err := sim.Run(plan, sim.Options{SMPenalty: cl.CommSMPenalty}); err != nil {
					return BaselineConfig{}, fmt.Errorf("sweep baseline seq=%d p=%d %s: %w", seq, p, method, err)
				}
				cells++
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	bc := BaselineConfig{
		Name:      fmt.Sprintf("sweep-3B-A800-%dcells", cells),
		Sweep:     true,
		Threshold: sweepBaselineThreshold,
		Throughput: map[string]float64{
			SweepCellsPerSecond: float64(cells) / elapsed,
		},
	}
	return bc, nil
}
