// Package bench defines the reproduction experiments: one runnable
// definition per table and figure of the paper's evaluation, each producing
// the same rows or series the paper reports. cmd/helixbench regenerates
// them all; the root bench_test.go exposes them as Go benchmarks.
package bench

import (
	"fmt"
	"strings"

	// Linked for its registry side effect: the HelixPipe variants register
	// themselves into the sched method registry at init.
	_ "repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("table1", "fig8-7B-H20", ...).
	ID string
	// Title describes the experiment and its paper counterpart.
	Title string
	// Header and Rows hold the tabular data.
	Header []string
	Rows   [][]string
	// Notes records paper-vs-measured commentary.
	Notes []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scenario is one simulated training configuration: a model on a cluster at
// a sequence length with a pipeline of p stages and m micro batches. The
// paper's defaults are micro batch size 1 and m = 2p (section 5.1).
type Scenario struct {
	Model        model.Config
	Cluster      costmodel.ClusterSpec
	SeqLen       int
	MicroBatch   int
	Stages       int
	MicroBatches int
}

// NewScenario builds the paper-default scenario.
func NewScenario(m model.Config, cl costmodel.ClusterSpec, seqLen, stages int) Scenario {
	return Scenario{Model: m, Cluster: cl, SeqLen: seqLen, MicroBatch: 1,
		Stages: stages, MicroBatches: 2 * stages}
}

// Workload returns the cost-model workload of the scenario.
func (s Scenario) Workload() costmodel.Workload {
	return costmodel.NewWorkload(s.Model, s.Cluster, model.Shape{B: s.MicroBatch, S: s.SeqLen})
}

// MemoryBudget returns the per-GPU activation budget handed to AdaPipe: the
// GPU capacity minus model states and a 10% allocator reserve.
func (s Scenario) MemoryBudget() int64 {
	gpu := int64(s.Cluster.GPU.MemoryGB * 0.9 * float64(1<<30))
	return gpu - s.Model.ModelStateBytesPerStage(s.Stages, s.Cluster.GPUsPerNode) -
		s.Model.EmbeddingStateBytes(s.Cluster.GPUsPerNode)
}

// BuildPlan builds the plan for any registered method through the sched
// method registry.
func (s Scenario) BuildPlan(method sched.Method) (*sched.Plan, error) {
	cfg := sched.Config{Stages: s.Stages, MicroBatches: s.MicroBatches, Layers: s.Model.Layers}
	costs := sched.NewCosts(s.Workload())
	return sched.Build(method, cfg, costs, sched.BuildParams{MemoryBudget: s.MemoryBudget()})
}

// Simulate builds and simulates one method for the scenario.
func (s Scenario) Simulate(method sched.Method) (*sim.Result, error) {
	plan, err := s.BuildPlan(method)
	if err != nil {
		return nil, err
	}
	return sim.Run(plan, sim.Options{SMPenalty: s.Cluster.CommSMPenalty})
}

// Figure8Methods are the four methods of the paper's main comparison.
var Figure8Methods = []sched.Method{
	sched.Method1F1B, sched.MethodZB1P, sched.MethodAdaPipe, sched.MethodHelix,
}

// TokensPerIteration returns the tokens one iteration processes.
func (s Scenario) TokensPerIteration() int64 {
	return int64(s.MicroBatch) * int64(s.SeqLen) * int64(s.MicroBatches)
}

// ThroughputRow simulates every Figure-8 method and returns the throughputs
// (tokens/s) keyed by method.
func (s Scenario) ThroughputRow() (map[sched.Method]float64, error) {
	out := map[sched.Method]float64{}
	for _, method := range Figure8Methods {
		res, err := s.Simulate(method)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", method, err)
		}
		out[method] = res.Throughput(s.TokensPerIteration())
	}
	return out, nil
}

// fmtGB renders bytes as GB with one decimal.
func fmtGB(b int64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<30)) }

// fmtMS renders seconds as milliseconds.
func fmtMS(s float64) string { return fmt.Sprintf("%.1f", s*1e3) }

// fmtF renders a float with the given decimals.
func fmtF(v float64, dec int) string { return fmt.Sprintf("%.*f", dec, v) }

// simRun simulates a prebuilt plan with default options.
func simRun(plan *sched.Plan) (*sim.Result, error) {
	return sim.Run(plan, sim.Options{})
}
