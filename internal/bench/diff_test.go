package bench

import (
	"strings"
	"testing"
)

func TestCompareBaselines(t *testing.T) {
	prev := []BaselineConfig{
		{Name: "a", Throughput: map[string]float64{"1F1B": 1000, "HelixPipe": 2000}},
		{Name: "gone", Throughput: map[string]float64{"1F1B": 500}},
	}
	cur := []BaselineConfig{
		{Name: "a", Throughput: map[string]float64{"1F1B": 950, "HelixPipe": 1700}},
		{Name: "new", Throughput: map[string]float64{"1F1B": 10}},
	}
	// 1F1B dropped 5% (within the 10% threshold), HelixPipe 15% (beyond);
	// "gone" and "new" are not regressions.
	regs := CompareBaselines(prev, cur, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "a/HelixPipe") {
		t.Fatalf("regressions = %v, want exactly a/HelixPipe", regs)
	}
	if regs := CompareBaselines(prev, cur, 0.20); len(regs) != 0 {
		t.Errorf("20%% threshold flagged %v", regs)
	}
	if regs := CompareBaselines(nil, cur, 0.10); len(regs) != 0 {
		t.Errorf("first run (no previous baseline) flagged %v", regs)
	}
}

// TestCompareBaselinesPerConfigThreshold pins the looser gate of wall-clock
// configs: a recorded Threshold overrides the global one for that config
// only.
func TestCompareBaselinesPerConfigThreshold(t *testing.T) {
	prev := []BaselineConfig{
		{Name: "sweep", Sweep: true, Threshold: 0.5,
			Throughput: map[string]float64{SweepCellsPerSecond: 100}},
		{Name: "sim", Throughput: map[string]float64{"1F1B": 1000}},
	}
	cur := []BaselineConfig{
		// 30% down: beyond the 10% global gate, within the sweep's own 50%.
		{Name: "sweep", Sweep: true, Threshold: 0.5,
			Throughput: map[string]float64{SweepCellsPerSecond: 70}},
		{Name: "sim", Throughput: map[string]float64{"1F1B": 700}},
	}
	regs := CompareBaselines(prev, cur, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "sim/1F1B") {
		t.Fatalf("regressions = %v, want exactly sim/1F1B", regs)
	}
	// A drop beyond the per-config threshold still fails.
	cur[0].Throughput[SweepCellsPerSecond] = 40
	regs = CompareBaselines(prev, cur, 0.10)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want sweep + sim", regs)
	}
}

func TestReadBaselineJSON(t *testing.T) {
	src := `[{"name":"a","tokens_per_iteration":10,"throughput":{"1F1B":123.5}}]`
	configs, err := ReadBaselineJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 1 || configs[0].Throughput["1F1B"] != 123.5 {
		t.Fatalf("decoded %+v", configs)
	}
	if _, err := ReadBaselineJSON(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}
