package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// BaselineConfig is one configuration of the performance baseline: the paper
// configs plus one variable-length workload, each simulated under every
// Figure 8 method.
type BaselineConfig struct {
	// Name identifies the configuration ("7B-H20-seq131072-pp8", ...).
	Name string `json:"name"`
	// VariableLength marks the mixed-length workload config.
	VariableLength bool `json:"variable_length,omitempty"`
	// Fleet marks the fleet-scale config, whose Throughput is keyed by
	// admission policy in completed jobs per makespan hour, not by method in
	// tokens/s.
	Fleet bool `json:"fleet,omitempty"`
	// Sweep marks the large-sweep config, whose Throughput is the wall-clock
	// cells/s of the whole build+simulate grid (SweepCellsPerSecond key).
	Sweep bool `json:"sweep,omitempty"`
	// Threshold overrides the diff gate's regression threshold for this
	// config; 0 keeps the gate's global one. Wall-clock configs pin a looser
	// threshold than simulated-throughput ones.
	Threshold float64 `json:"threshold,omitempty"`
	// TokensPerIteration is the config's iteration token count.
	TokensPerIteration int64 `json:"tokens_per_iteration"`
	// Throughput maps method name to simulated tokens/s (policy name to
	// jobs/hour on the fleet config).
	Throughput map[string]float64 `json:"throughput"`
}

// Baseline simulates the performance baseline: tokens/s per method for the
// two paper headline configs and one variable-length bimodal config, plus
// the fleet-scale policy comparison (jobs/hour per admission policy). CI
// uploads the result as BENCH_baseline.json so future changes have a
// recorded perf trajectory to diff against.
func Baseline() ([]BaselineConfig, error) {
	type cfg struct {
		name    string
		model   model.Config
		cluster costmodel.ClusterSpec
		seqLen  int
		stages  int
		batch   model.BatchSpec // empty = uniform at seqLen
	}
	// The bimodal workload keeps m = 2p (8 short + 8 full-length micro
	// batches) so the helix FILO schedules build on it too.
	varlen := model.BatchSpec{}
	for i := 0; i < 8; i++ {
		varlen.Shapes = append(varlen.Shapes, model.Shape{B: 1, S: 32768})
	}
	for i := 0; i < 8; i++ {
		varlen.Shapes = append(varlen.Shapes, model.Shape{B: 1, S: 131072})
	}
	configs := []cfg{
		{name: "7B-H20-seq131072-pp8", model: model.Model7B(), cluster: costmodel.H20Cluster(),
			seqLen: 131072, stages: 8},
		{name: "3B-A800-seq65536-pp4", model: model.Model3B(), cluster: costmodel.A800Cluster(),
			seqLen: 65536, stages: 4},
		{name: "7B-H20-varlen-bimodal-pp8", model: model.Model7B(), cluster: costmodel.H20Cluster(),
			seqLen: 131072, stages: 8, batch: varlen},
	}

	var out []BaselineConfig
	for _, c := range configs {
		s := NewScenario(c.model, c.cluster, c.seqLen, c.stages)
		scfg := sched.Config{Stages: c.stages, MicroBatches: s.MicroBatches, Layers: c.model.Layers}
		w := s.Workload()
		costs := sched.NewCosts(w)
		tokens := s.TokensPerIteration()
		if len(c.batch.Shapes) > 0 {
			scfg.MicroBatches = c.batch.MicroBatches()
			scfg.Batch = c.batch
			w.Shape = c.batch.MaxShape()
			costs = sched.NewBatchCosts(w, c.batch)
			tokens = c.batch.TotalTokens()
		}
		bc := BaselineConfig{
			Name:               c.name,
			VariableLength:     len(c.batch.Shapes) > 0,
			TokensPerIteration: tokens,
			Throughput:         map[string]float64{},
		}
		for _, method := range Figure8Methods {
			plan, err := sched.Build(method, scfg, costs,
				sched.BuildParams{MemoryBudget: s.MemoryBudget()})
			if err != nil {
				return nil, fmt.Errorf("baseline %s/%s: %w", c.name, method, err)
			}
			res, err := sim.Run(plan, sim.Options{SMPenalty: c.cluster.CommSMPenalty})
			if err != nil {
				return nil, fmt.Errorf("baseline %s/%s: %w", c.name, method, err)
			}
			bc.Throughput[string(method)] = res.Throughput(tokens)
		}
		out = append(out, bc)
	}
	fc, err := FleetBaseline()
	if err != nil {
		return nil, err
	}
	out = append(out, fc)
	sc, err := SweepBaseline()
	if err != nil {
		return nil, err
	}
	return append(out, sc), nil
}

// WriteBaselineJSON writes the baseline as indented JSON.
func WriteBaselineJSON(w io.Writer, configs []BaselineConfig) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(configs)
}
