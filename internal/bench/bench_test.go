package bench

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
)

func TestTableRender(t *testing.T) {
	tbl := Table1()
	out := tbl.Render()
	for _, want := range []string{"table1", "QKVLinear", "Attention", "Total", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

func TestStaticExperiments(t *testing.T) {
	for _, tbl := range []*Table{Table1(), Table3(), Figure3(), Figure4(), Figure9()} {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Errorf("%s: row width %d != header %d", tbl.ID, len(row), len(tbl.Header))
			}
		}
	}
}

func TestTable2CrossValidates(t *testing.T) {
	tbl := Table2()
	if len(tbl.Rows) != 3 {
		t.Fatalf("table2 should have 3 rows, got %d", len(tbl.Rows))
	}
	// Measured columns must be filled (simulations succeeded).
	for _, row := range tbl.Rows {
		if row[2] == "-" || row[4] == "-" {
			t.Errorf("%s: simulation failed", row[0])
		}
	}
}

// TestFigure8Headline runs the 7B/H20 panel and checks the paper's headline
// claims: HelixPipe wins at 128k/p=8 by double digits, and its advantage
// grows with sequence length.
func TestFigure8Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("full panel sweep")
	}
	tbl, err := Figure8(model.Model7B(), costmodel.H20Cluster())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Figure8SeqLens)*len(Figure8Stages) {
		t.Fatalf("panel has %d rows", len(tbl.Rows))
	}
	find := func(seq string, p string) []string {
		for _, row := range tbl.Rows {
			if row[0] == seq && row[1] == p {
				return row
			}
		}
		t.Fatalf("row %s/%s missing", seq, p)
		return nil
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	headline := find("128k", "8")
	if headline[5] != "1.000" {
		t.Errorf("HelixPipe should be the best method at 128k/p8, normalized %s", headline[5])
	}
	gain := parse(headline[6])
	if gain < 12 || gain > 40 {
		t.Errorf("headline gain %.1f%%, paper reports 26%%", gain)
	}
	// Scalability: gain at 128k exceeds gain at 32k for p=8.
	if g32 := parse(find("32k", "8")[6]); g32 >= gain {
		t.Errorf("gain should grow with sequence length: 32k=%.1f%% vs 128k=%.1f%%", g32, gain)
	}
}

// TestFigure8A800ShortSeq pins the paper's weakest case: on A800 at 32k,
// 1F1B is the best method.
func TestFigure8A800ShortSeq(t *testing.T) {
	if testing.Short() {
		t.Skip("full panel sweep")
	}
	s := NewScenario(model.Model7B(), costmodel.A800Cluster(), 32768, 8)
	row, err := s.ThroughputRow()
	if err != nil {
		t.Fatal(err)
	}
	if row[sched.MethodHelix] >= row[sched.Method1F1B] {
		t.Errorf("A800/32k: 1F1B (%.0f tok/s) should beat HelixPipe (%.0f tok/s)",
			row[sched.Method1F1B], row[sched.MethodHelix])
	}
}

func TestFigure10Shapes(t *testing.T) {
	tbl, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 methods, got %d", len(tbl.Rows))
	}
	byMethod := map[string][]float64{}
	for _, row := range tbl.Rows {
		var vals []float64
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, v)
		}
		byMethod[row[0]] = vals
	}
	ob := byMethod["1F1B"]
	if ob[0] <= ob[6] {
		t.Error("1F1B memory should be skewed toward stage 0")
	}
	zb := byMethod["ZB1P"]
	if zb[7] <= zb[6] {
		t.Error("ZB1P should spike at the last stage")
	}
	hx := byMethod["HelixPipe"]
	maxH, minH := hx[0], hx[0]
	var maxZ float64
	for i := range hx {
		if hx[i] > maxH {
			maxH = hx[i]
		}
		if hx[i] < minH {
			minH = hx[i]
		}
		if zb[i] > maxZ {
			maxZ = zb[i]
		}
	}
	if maxH >= maxZ {
		t.Error("HelixPipe peak should be below ZB1P peak")
	}
	if maxH > 1.8*minH {
		t.Errorf("HelixPipe memory should be balanced: %v", hx)
	}
}

func TestFigure11RecomputeTradeoff(t *testing.T) {
	tbl, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 11: recomputation sacrifices up to ~20% throughput at
	// short sequences and the gap shrinks as attention grows to dominate;
	// on the A800 cluster the gap is near zero (its 2x compute makes the
	// recomputed pre/post passes cheap relative to communication).
	gapAt := func(cluster, seq string) float64 {
		for _, row := range tbl.Rows {
			if row[0] == cluster && row[1] == seq {
				with, _ := strconv.ParseFloat(row[4], 64)
				without, _ := strconv.ParseFloat(row[5], 64)
				return without - with
			}
		}
		t.Fatalf("row %s/%s missing", cluster, seq)
		return 0
	}
	short := gapAt("H20", "32k")
	long := gapAt("H20", "128k")
	if short < 0.08 || short > 0.25 {
		t.Errorf("H20/32k recompute gap = %.3f, paper reports up to ~20%%", short)
	}
	if long >= short {
		t.Errorf("H20: recompute gap should shrink with sequence length: 32k=%.3f 128k=%.3f", short, long)
	}
	for _, seq := range []string{"32k", "64k", "96k", "128k"} {
		if gap := gapAt("A800", seq); gap < -0.02 || gap > 0.12 {
			t.Errorf("A800/%s: recompute gap %.3f, paper reports near-zero gaps on A800", seq, gap)
		}
	}
}

func TestAblationTables(t *testing.T) {
	for _, fn := range []func() (*Table, error){ChunkedMLPTable, MicroBatchSaturation, InterleavedComparison, ZB1PSensitivity} {
		tbl, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty", tbl.ID)
		}
	}
}

func TestMicroBatchSaturationShrinksBubble(t *testing.T) {
	tbl, err := MicroBatchSaturation()
	if err != nil {
		t.Fatal(err)
	}
	first, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	last, _ := strconv.ParseFloat(tbl.Rows[len(tbl.Rows)-1][1], 64)
	if last >= first {
		t.Errorf("1F1B bubble fraction should shrink with more micro batches: %v -> %v", first, last)
	}
}
