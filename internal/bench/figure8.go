package bench

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
)

// Figure8SeqLens and Figure8Stages are the paper's sweep axes.
var (
	Figure8SeqLens = []int{32768, 65536, 98304, 131072}
	Figure8Stages  = []int{2, 4, 8}
)

// Figure8 reproduces one panel of paper Figure 8: normalized training
// throughput of the four methods for one model on one cluster, across
// pipeline sizes and sequence lengths. Throughput is normalized per
// (pipeline size, sequence length) group to the best method, exactly like
// the paper's bars.
func Figure8(m model.Config, cl costmodel.ClusterSpec) (*Table, error) {
	t := &Table{
		ID:     fmt.Sprintf("fig8-%s-%s", m.Name, cl.Name),
		Title:  fmt.Sprintf("Normalized throughput, %s model on %s (paper Figure 8)", m.Name, cl.Name),
		Header: []string{"Seq len", "PP", "1F1B", "ZB1P", "AdaPipe", "HelixPipe", "Helix vs best baseline"},
	}
	for _, seq := range Figure8SeqLens {
		for _, p := range Figure8Stages {
			s := NewScenario(m, cl, seq, p)
			row, err := s.ThroughputRow()
			if err != nil {
				return nil, fmt.Errorf("%s/%s seq=%d p=%d: %w", m.Name, cl.Name, seq, p, err)
			}
			best := 0.0
			for _, v := range row {
				if v > best {
					best = v
				}
			}
			bestBaseline := 0.0
			for _, method := range []sched.Method{sched.Method1F1B, sched.MethodZB1P, sched.MethodAdaPipe} {
				if row[method] > bestBaseline {
					bestBaseline = row[method]
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dk", seq/1024),
				fmt.Sprintf("%d", p),
				fmtF(row[sched.Method1F1B]/best, 3),
				fmtF(row[sched.MethodZB1P]/best, 3),
				fmtF(row[sched.MethodAdaPipe]/best, 3),
				fmtF(row[sched.MethodHelix]/best, 3),
				fmt.Sprintf("%+.1f%%", (row[sched.MethodHelix]/bestBaseline-1)*100),
			})
		}
	}
	return t, nil
}

// Figure8All runs every Figure 8 panel: three models by two clusters.
func Figure8All() ([]*Table, error) {
	var out []*Table
	for _, m := range []model.Config{model.Model1B3(), model.Model3B(), model.Model7B()} {
		for _, cl := range costmodel.Clusters() {
			t, err := Figure8(m, cl)
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// Figure10 reproduces paper Figure 10: per-stage peak memory (model states
// plus measured activation stash) for the 3B model at 128k on 8 stages.
func Figure10() (*Table, error) {
	s := NewScenario(model.Model3B(), costmodel.H20Cluster(), 131072, 8)
	t := &Table{
		ID:     "fig10",
		Title:  "Per-stage peak memory (GB), 3B model, 128k, p=8 (paper Figure 10)",
		Header: []string{"Method", "P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7"},
		Notes: []string{
			"includes model states; ZB1P spikes at the last stage (fp32 embedding-gradient stash for deferred W)",
			"HelixPipe is lowest and balanced; 1F1B is skewed toward early stages",
		},
	}
	modelState := s.Model.ModelStateBytesPerStage(s.Stages, s.Cluster.GPUsPerNode)
	embedState := s.Model.EmbeddingStateBytes(s.Cluster.GPUsPerNode)
	for _, method := range Figure8Methods {
		res, err := s.Simulate(method)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", method, err)
		}
		row := []string{string(method)}
		for st := 0; st < s.Stages; st++ {
			total := res.PeakStashBytes[st] + modelState
			// Embedding/head states live on the pipeline ends (both on
			// stage 0 for HelixPipe, section 4.6).
			switch {
			case method == sched.MethodHelix && st == 0:
				total += 2 * embedState
			case method != sched.MethodHelix && (st == 0 || st == s.Stages-1):
				total += embedState
			}
			row = append(row, fmtGB(total))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure11 reproduces paper Figure 11: memory footprint and normalized
// throughput of HelixPipe with and without recomputation without attention,
// 3B model on 4 stages, both clusters.
func Figure11() (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "Recomputation-without-attention ablation, 3B model, p=4 (paper Figure 11)",
		Header: []string{"Cluster", "Seq len", "recomp mem P0-P3 (GB)", "no-recomp mem P0-P3 (GB)", "recomp tput", "no-recomp tput"},
		Notes: []string{
			"throughput normalized to the faster variant per row",
			"the throughput cost of recomputation shrinks as attention dominates with longer sequences (up to ~20% at 32k)",
		},
	}
	for _, cl := range costmodel.Clusters() {
		for _, seq := range Figure8SeqLens {
			s := NewScenario(model.Model3B(), cl, seq, 4)
			with, err := s.Simulate(sched.MethodHelix)
			if err != nil {
				return nil, err
			}
			without, err := s.Simulate(sched.MethodHelixNoRecompute)
			if err != nil {
				return nil, err
			}
			tokens := s.TokensPerIteration()
			tw := with.Throughput(tokens)
			two := without.Throughput(tokens)
			best := tw
			if two > best {
				best = two
			}
			memRange := func(peaks []int64) string {
				lo, hi := peaks[0], peaks[0]
				for _, v := range peaks {
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				return fmt.Sprintf("%s-%s", fmtGB(lo), fmtGB(hi))
			}
			t.Rows = append(t.Rows, []string{
				cl.Name,
				fmt.Sprintf("%dk", seq/1024),
				memRange(with.PeakStashBytes),
				memRange(without.PeakStashBytes),
				fmtF(tw/best, 3),
				fmtF(two/best, 3),
			})
		}
	}
	return t, nil
}
