package bench

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
)

// Table1 reproduces paper Table 1: per-component FLOPs, parameters and
// activation elements of a transformer layer, printed symbolically (in
// multiples of bsh^2, bs^2h, h^2 and bsh) plus a numeric column for a
// reference shape.
func Table1() *Table {
	cfg := model.Model7B()
	sh := model.Shape{B: 1, S: 4096}
	t := &Table{
		ID:     "table1",
		Title:  "Computation and memory overhead of a transformer layer (paper Table 1)",
		Header: []string{"Component", "Fwd GFLOPs", "BwdB GFLOPs", "BwdW GFLOPs", "Params (M)", "Activation (M elems)"},
		Notes: []string{
			fmt.Sprintf("numeric columns for h=%d, b=%d, s=%d", cfg.Hidden, sh.B, sh.S),
			"totals verified against 4bsh(6h+s), 4bsh(6h+2s), 24bsh*h and 16bsh by unit tests",
		},
	}
	add := func(name string, comp model.Component) {
		t.Rows = append(t.Rows, []string{
			name,
			fmtF(cfg.ComponentFLOPs(comp, model.Forward, sh)/1e9, 1),
			fmtF(cfg.ComponentFLOPs(comp, model.BackwardB, sh)/1e9, 1),
			fmtF(cfg.ComponentFLOPs(comp, model.BackwardW, sh)/1e9, 1),
			fmtF(float64(cfg.ComponentParams(comp))/1e6, 2),
			fmtF(float64(cfg.ComponentActivationElems(comp, sh))/1e6, 1),
		})
	}
	for _, comp := range model.Components {
		add(comp.String(), comp)
	}
	t.Rows = append(t.Rows, []string{
		"Total",
		fmtF(cfg.LayerFLOPs(model.Forward, sh)/1e9, 1),
		fmtF(cfg.LayerFLOPs(model.BackwardB, sh)/1e9, 1),
		fmtF(cfg.LayerFLOPs(model.BackwardW, sh)/1e9, 1),
		fmtF(float64(cfg.LayerParams())/1e6, 2),
		fmtF(float64(cfg.LayerActivationElems(sh))/1e6, 1),
	})
	return t
}

// Table2 reproduces paper Table 2 and cross-validates it: the analytic
// bubble and activation-memory expressions next to the simulator's measured
// values for the same configuration.
func Table2() *Table {
	s := NewScenario(model.Model7B(), costmodel.H20Cluster(), 65536, 4)
	w := s.Workload()
	rows := w.AnalyzeTable2(s.Stages, s.MicroBatches)
	t := &Table{
		ID:     "table2",
		Title:  "Pipeline bubble time and activation memory, analytic vs simulated (paper Table 2)",
		Header: []string{"Pipeline", "Analytic bubble (ms)", "Measured bubble (ms)", "Analytic act mem (GB)", "Measured stash peak (GB)"},
		Notes: []string{
			"7B model, 64k sequence, p=4, m=8, H20 cluster",
			"measured helix bubble exceeds the closed form: the paper's analysis idealizes the FILO drain (it draws L = p); see EXPERIMENTS.md",
		},
	}
	methods := map[string]sched.Method{
		"1F1B": sched.Method1F1B, "ZB1P": sched.MethodZB1P, "HelixPipe": sched.MethodHelix,
	}
	for _, row := range rows {
		res, err := s.Simulate(methods[row.Method])
		measuredBubble, measuredMem := "-", "-"
		if err == nil {
			measuredBubble = fmtMS(res.BubbleSeconds())
			measuredMem = fmtGB(res.MaxPeakStashBytes())
		}
		t.Rows = append(t.Rows, []string{
			row.Method,
			fmtMS(row.BubbleSeconds),
			measuredBubble,
			fmtGB(row.PeakActivationBytes),
			measuredMem,
		})
	}
	return t
}

// Table3 reproduces paper Table 3: the model configurations.
func Table3() *Table {
	t := &Table{
		ID:     "table3",
		Title:  "Targeting model configurations (paper Table 3)",
		Header: []string{"Model Size", "#Layers", "#Heads", "Hidden size", "Params (B)"},
	}
	for _, cfg := range []model.Config{model.Model1B3(), model.Model3B(), model.Model7B()} {
		t.Rows = append(t.Rows, []string{
			cfg.Name,
			fmt.Sprintf("%d", cfg.Layers),
			fmt.Sprintf("%d", cfg.Heads),
			fmt.Sprintf("%d", cfg.Hidden),
			fmtF(float64(cfg.TotalParams())/1e9, 2),
		})
	}
	return t
}

// Figure3 reproduces paper Figure 3: the normalized execution-time share of
// each layer phase on a single A800 (h=4096, b=1) across sequence lengths.
func Figure3() *Table {
	seqs := []int{4096, 8192, 16384, 32768, 65536, 131072}
	prof := costmodel.ComponentProfile(model.Model7B(), costmodel.A800Cluster(), seqs)
	t := &Table{
		ID:     "fig3",
		Title:  "Normalized layer-phase time on one A800, h=4096 (paper Figure 3)",
		Header: []string{"Seq len", "pre fwd %", "attn fwd %", "post fwd %", "pre bwd %", "attn bwd %", "post bwd %"},
		Notes:  []string{"attention (fwd+bwd) dominates from 32k and exceeds 80% at 128k"},
	}
	for _, c := range prof {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dk", c.SeqLen/1024),
			fmtF(c.PreFwd*100, 1), fmtF(c.AttnFwd*100, 1), fmtF(c.PostFwd*100, 1),
			fmtF(c.PreBwd*100, 1), fmtF(c.AttnBwd*100, 1), fmtF(c.PostBwd*100, 1),
		})
	}
	return t
}

// Figure4 reproduces paper Figure 4: the theoretical 1F1B activation memory
// per pipeline stage for the 13B model on 8 stages at various sequence
// lengths (fp16, sequence parallel size 8).
func Figure4() *Table {
	cfg := model.Model13B()
	const stages, seqPar = 8, 8
	seqs := []int{4096, 8192, 16384, 32768, 65536, 131072}
	t := &Table{
		ID:     "fig4",
		Title:  "1F1B activation memory (GB) per stage, 13B model, p=8 (paper Figure 4)",
		Header: []string{"Seq len", "P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7"},
		Notes:  []string{"at 128k the first two stages exceed the 80 GB A800 capacity while late stages idle"},
	}
	for _, s := range seqs {
		row := []string{fmt.Sprintf("%dk", s/1024)}
		for st := 0; st < stages; st++ {
			row = append(row, fmtGB(cfg.ActivationBytes1F1B(model.Shape{B: 1, S: s}, stages, st, seqPar)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure9 reproduces paper Figure 9: decoupled per-layer compute times of
// the 7B model and the estimated two-fold FILO p2p time, per cluster.
func Figure9() *Table {
	t := &Table{
		ID:     "fig9",
		Title:  "Decoupled layer compute vs two-fold FILO p2p time, 7B model (paper Figure 9)",
		Header: []string{"Cluster", "Seq len", "pre+post fwd (ms)", "attention fwd (ms)", "p2p comm (ms)", "overlapped"},
		Notes: []string{
			"communication is hidden iff attention time >= p2p time (section 5.3)",
			"H20 overlaps everywhere; A800 fails to overlap at 32k — the paper's explanation for its weakest result",
		},
	}
	seqs := []int{32768, 65536, 98304, 131072}
	for _, cl := range costmodel.Clusters() {
		for _, r := range costmodel.OverlapProfile(model.Model7B(), cl, seqs) {
			t.Rows = append(t.Rows, []string{
				cl.Name,
				fmt.Sprintf("%dk", r.SeqLen/1024),
				fmtMS(r.PrePostSeconds),
				fmtMS(r.AttentionSeconds),
				fmtMS(r.CommSeconds),
				fmt.Sprintf("%v", r.FullyOverlapped),
			})
		}
	}
	return t
}
