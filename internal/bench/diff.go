package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ReadBaselineJSON decodes a recorded perf baseline (the BENCH_baseline.json
// artifact CI uploads per run).
func ReadBaselineJSON(r io.Reader) ([]BaselineConfig, error) {
	var configs []BaselineConfig
	if err := json.NewDecoder(r).Decode(&configs); err != nil {
		return nil, fmt.Errorf("bench: decoding baseline JSON: %w", err)
	}
	return configs, nil
}

// CompareBaselines diffs a previously recorded baseline against the current
// one and returns one line per throughput regression beyond the threshold
// (0.10 = fail on a >10% drop). A config that recorded its own Threshold —
// the wall-clock sweep config, whose cells/s metric is noisier than
// simulated tokens/s — is gated at that threshold instead of the global one.
// Configs or methods present on only one side are not regressions — they
// are new or retired work, not slowdowns — so the first recorded run
// trivially passes.
func CompareBaselines(prev, cur []BaselineConfig, threshold float64) []string {
	curByName := map[string]BaselineConfig{}
	for _, c := range cur {
		curByName[c.Name] = c
	}
	var regressions []string
	for _, p := range prev {
		c, ok := curByName[p.Name]
		if !ok {
			continue
		}
		thr := threshold
		if p.Threshold > 0 {
			thr = p.Threshold
		}
		methods := make([]string, 0, len(p.Throughput))
		for method := range p.Throughput {
			methods = append(methods, method)
		}
		sort.Strings(methods)
		for _, method := range methods {
			was := p.Throughput[method]
			now, ok := c.Throughput[method]
			if !ok || was <= 0 {
				continue
			}
			if drop := 1 - now/was; drop > thr {
				regressions = append(regressions, fmt.Sprintf(
					"%s/%s: %.0f -> %.0f tokens/s (-%.1f%%, threshold %.0f%%)",
					p.Name, method, was, now, drop*100, thr*100))
			}
		}
	}
	return regressions
}
