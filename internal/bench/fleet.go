package bench

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// fleetBaselineJobs is the stream size of the fleet baseline config.
const fleetBaselineJobs = 60

// fleetJobShape is the payload of a fleet-baseline job: the pipeline
// geometry the bench simulator prices on the carved sub-cluster.
type fleetJobShape struct {
	seqLen int
	stages int
}

// FleetBaseline records the fleet engine's policy comparison as one perf
// baseline config: a fixed 60-job Poisson stream of 3B pipelines on the
// DGX-A800x4 preset, run under every preset admission policy, with
// Throughput keyed by policy name in completed jobs per makespan hour. A
// >10% drop in any policy's jobs/hour fails the helixbench -diff gate, so
// scheduling regressions in the fleet engine leave the same trajectory
// trail as simulator regressions.
func FleetBaseline() (BaselineConfig, error) {
	c := cluster.DGXA800x4()
	jobs := fleetBaselineJobs
	stream := rng.New(7)
	arrivals := fleet.PoissonArrivals(stream.Split(1), jobs, 600.0/3600)
	draws := stream.Split(2)
	shapes := []fleetJobShape{
		{seqLen: 8192, stages: 4},
		{seqLen: 16384, stages: 8},
	}
	fjobs := make([]fleet.Job, jobs)
	for i := range fjobs {
		shape := shapes[draws.Intn(len(shapes))]
		fjobs[i] = fleet.Job{
			ID:         fmt.Sprintf("job%03d", i),
			Template:   fmt.Sprintf("3B-seq%d-pp%d", shape.seqLen, shape.stages),
			ArrivalSec: arrivals[i],
			Demand:     shape.stages,
			Iterations: 50,
			Payload:    shape,
		}
	}
	bc := BaselineConfig{
		Name:               fmt.Sprintf("fleet-3B-%s-%djobs", c.Name, jobs),
		Fleet:              true,
		TokensPerIteration: int64(shapes[0].seqLen) * int64(2*shapes[0].stages),
		Throughput:         map[string]float64{},
	}
	simr := &fleetBenchSimulator{cache: map[string]fleet.JobRun{}}
	for _, name := range fleet.Policies() {
		policy, ok := fleet.PolicyByName(name)
		if !ok {
			return bc, fmt.Errorf("fleet baseline: unknown policy %q", name)
		}
		report, err := fleet.Run(c, fjobs, simr, fleet.Options{Policy: policy})
		if err != nil {
			return bc, fmt.Errorf("fleet baseline %s: %w", name, err)
		}
		bc.Throughput[name] = report.ThroughputJobsPerHour
	}
	return bc, nil
}

// fleetBenchSimulator prices fleet-baseline jobs with the real discrete-event
// simulator: the HelixPipe plan for the job's geometry, placed contiguously
// on the carved sub-cluster, run under the carve's topology. Results are
// memoized per (shape, carve signature) — the same keying as the public
// spec→Report cache, scoped to the bench.
type fleetBenchSimulator struct {
	cache map[string]fleet.JobRun
}

func (f *fleetBenchSimulator) Simulate(job fleet.Job, sub cluster.Cluster) (fleet.JobRun, error) {
	shape, ok := job.Payload.(fleetJobShape)
	if !ok {
		return fleet.JobRun{}, fmt.Errorf("fleet baseline job %s has no shape payload", job.ID)
	}
	key := fmt.Sprintf("seq=%d/pp=%d/%s", shape.seqLen, shape.stages, fleet.Signature(sub))
	if run, ok := f.cache[key]; ok {
		run.CacheHit = true
		return run, nil
	}
	s := NewScenario(model.Model3B(), costmodel.A800Cluster(), shape.seqLen, shape.stages)
	plan, err := s.BuildPlan(sched.MethodHelix)
	if err != nil {
		return fleet.JobRun{}, err
	}
	placement, err := cluster.Contiguous(sub, shape.stages)
	if err != nil {
		return fleet.JobRun{}, err
	}
	topo, err := cluster.Resolve(sub, placement, cluster.Perturb{})
	if err != nil {
		return fleet.JobRun{}, err
	}
	res, err := sim.Run(plan, sim.Options{SMPenalty: s.Cluster.CommSMPenalty, Topology: topo})
	if err != nil {
		return fleet.JobRun{}, err
	}
	run := fleet.JobRun{
		IterationSeconds: res.IterationSeconds,
		Placement:        placement,
		LinkTraffic:      append([]sim.LinkClassStats(nil), res.LinkClasses...),
	}
	f.cache[key] = run
	return run, nil
}
