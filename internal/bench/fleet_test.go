package bench

import (
	"reflect"
	"testing"
)

// TestFleetBaselineDeterministic pins what the perf-diff gate depends on:
// regenerating the fleet config yields identical jobs/hour per policy, so a
// trajectory diff only moves when the engine does.
func TestFleetBaselineDeterministic(t *testing.T) {
	a, err := FleetBaseline()
	if err != nil {
		t.Fatal(err)
	}
	b, err := FleetBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fleet baseline drifted between runs:\n%+v\n%+v", a, b)
	}
	if !a.Fleet {
		t.Error("fleet config not marked")
	}
	// Packing beats head-of-line blocking on this stream; pin the ordering
	// so a policy regression is caught even within the diff threshold.
	if a.Throughput["bestfit"] <= a.Throughput["fifo"] {
		t.Errorf("bestfit %.1f jobs/h does not beat fifo %.1f jobs/h",
			a.Throughput["bestfit"], a.Throughput["fifo"])
	}
}
