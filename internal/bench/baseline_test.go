package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/fleet"
	"repro/internal/sched"
)

func TestBaseline(t *testing.T) {
	configs, err := Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 5 {
		t.Fatalf("baseline has %d configs, want 5", len(configs))
	}
	varlen, fleetCfgs, sweepCfgs := 0, 0, 0
	for _, c := range configs {
		if c.VariableLength {
			varlen++
		}
		if c.Sweep {
			// The sweep config records wall-clock cells/s over a ≥200-cell
			// grid and pins its own (looser) regression threshold.
			sweepCfgs++
			if tput := c.Throughput[SweepCellsPerSecond]; tput <= 0 {
				t.Errorf("%s: cells/s %g", c.Name, tput)
			}
			if c.Threshold <= 0 {
				t.Errorf("%s: sweep config must pin its own threshold", c.Name)
			}
			continue
		}
		if c.TokensPerIteration <= 0 {
			t.Errorf("%s: no tokens", c.Name)
		}
		if c.Fleet {
			// The fleet config records jobs/hour per admission policy.
			fleetCfgs++
			for _, policy := range fleet.Policies() {
				if tput := c.Throughput[policy]; tput <= 0 {
					t.Errorf("%s/%s: jobs/hour %g", c.Name, policy, tput)
				}
			}
			continue
		}
		for _, method := range Figure8Methods {
			if tput := c.Throughput[string(method)]; tput <= 0 {
				t.Errorf("%s/%s: throughput %g", c.Name, method, tput)
			}
		}
		if tput := c.Throughput[string(sched.MethodHelix)]; tput <= 0 {
			t.Errorf("%s: helix missing from baseline", c.Name)
		}
	}
	if varlen != 1 {
		t.Errorf("baseline has %d variable-length configs, want 1", varlen)
	}
	if fleetCfgs != 1 {
		t.Errorf("baseline has %d fleet configs, want 1", fleetCfgs)
	}
	if sweepCfgs != 1 {
		t.Errorf("baseline has %d sweep configs, want 1", sweepCfgs)
	}

	var buf bytes.Buffer
	if err := WriteBaselineJSON(&buf, configs); err != nil {
		t.Fatal(err)
	}
	var back []BaselineConfig
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(configs) {
		t.Error("baseline JSON round trip lost configs")
	}
}

// BenchmarkBaseline regenerates the perf baseline; with BENCH_BASELINE_OUT
// set it also writes BENCH_baseline.json, which CI uploads as an artifact so
// every change leaves a throughput trajectory behind.
func BenchmarkBaseline(b *testing.B) {
	var configs []BaselineConfig
	var err error
	for i := 0; i < b.N; i++ {
		configs, err = Baseline()
		if err != nil {
			b.Fatal(err)
		}
	}
	if path := os.Getenv("BENCH_BASELINE_OUT"); path != "" && len(configs) > 0 {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := WriteBaselineJSON(f, configs); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
