package bench

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/sched"
)

// ChunkedMLPTable reproduces the section 4.4.2 fragmentation experiment on
// the caching-allocator simulator: peak reserved vs allocated memory of one
// HelixPipe stage's allocation trace, with and without chunked MLP.
func ChunkedMLPTable() (*Table, error) {
	t := &Table{
		ID:     "chunk",
		Title:  "Chunked MLP vs allocator fragmentation (paper section 4.4.2)",
		Header: []string{"Seq len", "variant", "peak reserved (GB)", "peak allocated (GB)", "frag ratio", "free blocks"},
		Notes: []string{
			"caching-allocator replay of one stage's two-fold FILO iteration (3B model geometry, L/p=4, m=8)",
			"chunked MLP streams the all-gathered sequence through pre-allocated buffers, eliminating the irregular transients",
		},
	}
	for _, seq := range []int{32768, 65536, 131072} {
		unit := int64(seq) * 4096 * 2 / 8 // [s,b,h] fp16 shard per GPU (t=8)
		cfg := memsim.ChunkedMLPConfig{
			UnitBytes:       unit,
			LayersPerStage:  4,
			MicroBatches:    8,
			ChunkTokensFrac: 0.125,
		}
		base := memsim.DefaultConfig()
		base.SegmentBytes = 64 << 20
		plain, chunked, err := memsim.CompareChunking(base, cfg)
		if err != nil {
			return nil, err
		}
		for _, v := range []struct {
			name string
			st   memsim.Stats
		}{{"unchunked", plain}, {"chunked", chunked}} {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%dk", seq/1024),
				v.name,
				fmtGB(v.st.PeakReservedBytes),
				fmtGB(v.st.PeakAllocatedBytes),
				fmtF(v.st.FragmentationRatio(), 3),
				fmt.Sprintf("%d", v.st.FreeBlocks),
			})
		}
	}
	return t, nil
}

// MicroBatchSaturation is an extension experiment for the section 3.1
// argument: with a fixed token budget per iteration, longer sequences mean
// fewer micro batches, leaving the pipeline unsaturated and amplifying the
// bubble. It sweeps the micro batch count at fixed p and reports the bubble
// fraction of 1F1B vs HelixPipe.
func MicroBatchSaturation() (*Table, error) {
	t := &Table{
		ID:     "saturation",
		Title:  "Bubble fraction vs micro batch count, 7B/64k/p=4 on H20 (extension of section 3.1)",
		Header: []string{"Micro batches", "1F1B bubble %", "HelixPipe bubble %"},
		Notes: []string{
			"the paper fixes tokens per iteration (e.g. Llama 3: 16M), so long sequences cap m; helix keeps the bubble low even at m=2p",
		},
	}
	for _, m := range []int{8, 16, 32} {
		s := NewScenario(model.Model7B(), costmodel.H20Cluster(), 65536, 4)
		s.MicroBatches = m
		r1, err := s.Simulate(sched.Method1F1B)
		if err != nil {
			return nil, err
		}
		rh, err := s.Simulate(sched.MethodHelix)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmtF(r1.BubbleSeconds()/r1.IterationSeconds*100, 1),
			fmtF(rh.BubbleSeconds()/rh.IterationSeconds*100, 1),
		})
	}
	return t, nil
}

// InterleavedComparison is the section 6.2 discussion as an experiment:
// interleaved 1F1B reduces the bubble below 1F1B but cannot remove the
// attention term, while HelixPipe can; and interleaving multiplies p2p
// traffic.
func InterleavedComparison() (*Table, error) {
	t := &Table{
		ID:     "interleaved",
		Title:  "Interleaved 1F1B vs HelixPipe, 7B/p=4 on H20 (paper section 6.2 discussion)",
		Header: []string{"Seq len", "1F1B iter (s)", "Interleaved iter (s)", "HelixPipe iter (s)", "Interleaved p2p (GB)", "Helix p2p (GB)"},
	}
	for _, seq := range []int{32768, 131072} {
		s := NewScenario(model.Model7B(), costmodel.H20Cluster(), seq, 4)
		r1, err := s.Simulate(sched.Method1F1B)
		if err != nil {
			return nil, err
		}
		ri, err := s.Simulate(sched.MethodInterleaved)
		if err != nil {
			return nil, err
		}
		rh, err := s.Simulate(sched.MethodHelix)
		if err != nil {
			return nil, err
		}
		sum := func(v []int64) int64 {
			var total int64
			for _, x := range v {
				total += x
			}
			return total
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dk", seq/1024),
			fmtF(r1.IterationSeconds, 2),
			fmtF(ri.IterationSeconds, 2),
			fmtF(rh.IterationSeconds, 2),
			fmtGB(sum(ri.BytesSent)),
			fmtGB(sum(rh.BytesSent)),
		})
	}
	return t, nil
}

// ZB1PSensitivity is an extension experiment for the paper's observation
// that ZB1P is unstable when backward-B and backward-W are uneven: it
// scales the W share of pre/post backward and reports the ZB1P bubble.
func ZB1PSensitivity() (*Table, error) {
	t := &Table{
		ID:     "zb1p-sensitivity",
		Title:  "ZB1P bubble vs backward-W share (extension of section 5.2)",
		Header: []string{"W share of backward", "ZB1P bubble (ms)", "1F1B bubble (ms)"},
		Notes:  []string{"delaying W fills bubbles only as long as there is enough W work: small W shares leave ZB1P close to 1F1B"},
	}
	s := NewScenario(model.Model7B(), costmodel.H20Cluster(), 65536, 4)
	baseCosts := sched.NewCosts(s.Workload())
	cfg := sched.Config{Stages: s.Stages, MicroBatches: s.MicroBatches, Layers: s.Model.Layers}
	for _, share := range []float64{0.1, 0.33, 0.5} {
		costs := baseCosts
		for _, seg := range []model.Segment{model.SegPre, model.SegPost} {
			total := baseCosts.Seg[seg][model.BackwardB] + baseCosts.Seg[seg][model.BackwardW]
			costs.Seg[seg][model.BackwardW] = total * share
			costs.Seg[seg][model.BackwardB] = total * (1 - share)
		}
		zbPlan, err := sched.ZB1P(cfg, costs)
		if err != nil {
			return nil, err
		}
		obPlan, err := sched.OneFOneB(cfg, costs)
		if err != nil {
			return nil, err
		}
		zb, err := simRun(zbPlan)
		if err != nil {
			return nil, err
		}
		ob, err := simRun(obPlan)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmtF(share, 2),
			fmtMS(zb.BubbleSeconds()),
			fmtMS(ob.BubbleSeconds()),
		})
	}
	return t, nil
}

// All runs every experiment (Figure 8 panels included) and returns the
// tables in paper order.
func All() ([]*Table, error) {
	var out []*Table
	out = append(out, Table1(), Table2(), Table3(), Figure3(), Figure4())
	figs8, err := Figure8All()
	if err != nil {
		return nil, err
	}
	out = append(out, figs8...)
	f9 := Figure9()
	out = append(out, f9)
	f10, err := Figure10()
	if err != nil {
		return nil, err
	}
	out = append(out, f10)
	f11, err := Figure11()
	if err != nil {
		return nil, err
	}
	out = append(out, f11)
	for _, fn := range []func() (*Table, error){ChunkedMLPTable, MicroBatchSaturation, InterleavedComparison, ZB1PSensitivity} {
		tbl, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, tbl)
	}
	return out, nil
}
