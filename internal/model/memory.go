package model

// This file holds the closed-form activation-memory formulas of the paper
// (Equations 2 and 4, Table 2). They are "theoretical" numbers — the
// discrete-event simulator measures the same quantities dynamically and the
// two are cross-checked in tests and in the Table 2 experiment.

// FP16Bytes is the byte width used for activation accounting throughout the
// paper's analysis ("1F1B schedule and FP16 are used", Figure 4).
const FP16Bytes = 2

// FP32Bytes is the byte width of master/optimizer state and of the word
// embedding gradients ZB1P stashes at the final stage (paper section 5.4).
const FP32Bytes = 4

// ActivationBytes1F1B returns Equation 2 of the paper in bytes: the peak
// activation memory of pipeline stage `stage` (0-based) under the 1F1B
// schedule, 16*(p-stage)*b*s*h*(L/p) elements in fp16, divided across the
// sequence-parallel group of size seqPar (the paper fixes seqPar=8, one
// pipeline stage per 8-GPU node).
func (c Config) ActivationBytes1F1B(sh Shape, stages, stage, seqPar int) int64 {
	perLayer := c.LayerActivationElems(sh) * FP16Bytes
	layersPerStage := int64(c.Layers) / int64(stages)
	outstanding := int64(stages - stage)
	return outstanding * perLayer * layersPerStage / int64(seqPar)
}

// ActivationBytesZB1P returns Equation 4 of the paper in bytes: the
// worst-case peak activation memory of any stage under ZB1P, which equals
// the first-stage peak of 1F1B: 16*b*s*h*L elements in fp16.
func (c Config) ActivationBytesZB1P(sh Shape, stages, seqPar int) int64 {
	return c.ActivationBytes1F1B(sh, stages, 0, seqPar)
}

// ActivationBytesHelix returns the Table 2 activation memory of HelixPipe in
// bytes: 4*b*s*h*m*(L/p) elements in fp16 with the recomputation-without-
// attention strategy (every stage stashes all m micro batches, but only
// 4bsh per layer survives the forward pass).
func (c Config) ActivationBytesHelix(sh Shape, stages, microBatches, seqPar int) int64 {
	perLayer := c.HelixStashElems(sh) * FP16Bytes
	layersPerStage := int64(c.Layers) / int64(stages)
	return int64(microBatches) * perLayer * layersPerStage / int64(seqPar)
}

// ActivationBytesHelixNoRecompute returns the HelixPipe FILO activation
// memory without the recomputation strategy: the full 16*b*s*h per layer for
// all m micro batches (paper section 4.5, the step before recomputation).
func (c Config) ActivationBytesHelixNoRecompute(sh Shape, stages, microBatches, seqPar int) int64 {
	perLayer := c.LayerActivationElems(sh) * FP16Bytes
	layersPerStage := int64(c.Layers) / int64(stages)
	return int64(microBatches) * perLayer * layersPerStage / int64(seqPar)
}

// ModelStateBytesPerStage returns the bytes of model state (fp16 weights,
// fp16 gradients, fp32 master weights and two fp32 Adam moments — the
// standard mixed-precision recipe the paper inherits from Megatron-LM) held
// by one pipeline stage, with parameters split across the tensor/sequence
// parallel group of size seqPar.
func (c Config) ModelStateBytesPerStage(stages, seqPar int) int64 {
	layersPerStage := int64(c.Layers) / int64(stages)
	params := layersPerStage * c.LayerParams()
	// 2 (fp16 weight) + 2 (fp16 grad) + 4+4+4 (fp32 master, m, v) = 16 B/param.
	const bytesPerParam = 16
	return params * bytesPerParam / int64(seqPar)
}

// EmbeddingStateBytes returns the model-state bytes of the input embeddings
// (held by the first stage) or the tied LM head (held by the last stage),
// split across the tensor-parallel group per paper section 4.6.
func (c Config) EmbeddingStateBytes(seqPar int) int64 {
	const bytesPerParam = 16
	return c.EmbeddingParams() * bytesPerParam / int64(seqPar)
}
