package model

import (
	"reflect"
	"testing"
)

func TestPackLengthsRecordsRealTokens(t *testing.T) {
	lengths := []int{1000, 900, 500, 100}
	bs, err := PackLengths(lengths, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if bs.RealTokens != 2500 {
		t.Errorf("RealTokens = %d, want 2500", bs.RealTokens)
	}
	padded := bs.TotalTokens()
	if padded < bs.RealTokens {
		t.Fatalf("padded %d below real %d", padded, bs.RealTokens)
	}
	want := 1 - float64(2500)/float64(padded)
	if got := bs.PadFraction(); got != want {
		t.Errorf("PadFraction = %g, want %g", got, want)
	}
	// Hand-built specs have no real-token record and report no waste.
	if got := UniformBatch(4, 1, 128).PadFraction(); got != 0 {
		t.Errorf("uniform PadFraction = %g, want 0", got)
	}
}

func TestOrdered(t *testing.T) {
	bs := BatchSpec{
		RealTokens: 999,
		Shapes: []Shape{
			{B: 1, S: 100}, {B: 1, S: 400}, {B: 1, S: 200}, {B: 1, S: 300},
		},
	}
	cases := []struct {
		order MBOrder
		want  []int // sequence lengths in expected order
	}{
		{OrderPacked, []int{100, 400, 200, 300}},
		{"", []int{100, 400, 200, 300}},
		{OrderLongestFirst, []int{400, 300, 200, 100}},
		{OrderShortestFirst, []int{100, 200, 300, 400}},
		{OrderBalanced, []int{400, 100, 300, 200}},
	}
	for _, tc := range cases {
		got, err := bs.Ordered(tc.order)
		if err != nil {
			t.Errorf("Ordered(%q): %v", tc.order, err)
			continue
		}
		var seqs []int
		for _, sh := range got.Shapes {
			seqs = append(seqs, sh.S)
		}
		if !reflect.DeepEqual(seqs, tc.want) {
			t.Errorf("Ordered(%q) = %v, want %v", tc.order, seqs, tc.want)
		}
		if got.RealTokens != bs.RealTokens || got.TotalTokens() != bs.TotalTokens() {
			t.Errorf("Ordered(%q) changed token totals", tc.order)
		}
	}
	// The receiver must be untouched (Ordered copies).
	if bs.Shapes[0].S != 100 {
		t.Error("Ordered mutated its receiver")
	}
	if _, err := bs.Ordered("bogus"); err == nil {
		t.Error("unknown order accepted")
	}
	// Odd-length balanced keeps every micro batch exactly once.
	odd := BatchSpec{Shapes: []Shape{{B: 1, S: 1}, {B: 1, S: 2}, {B: 1, S: 3}}}
	got, err := odd.Ordered(OrderBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if got.MicroBatches() != 3 || got.TotalTokens() != odd.TotalTokens() {
		t.Errorf("balanced odd order broken: %+v", got.Shapes)
	}
	if _, ok := OrderByName("balanced"); !ok {
		t.Error("OrderByName(balanced) failed")
	}
	if _, ok := OrderByName("nope"); ok {
		t.Error("OrderByName(nope) resolved")
	}
}
