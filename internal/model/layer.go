package model

import "fmt"

// Segment identifies one of the three parts of a transformer layer in the
// attention parallel partition (paper Figure 1): pre-attention (LayerNorm +
// QKV linear), the non-parameterized attention core, and post-attention
// (output projection, LayerNorm, MLP).
type Segment int

const (
	// SegPre is the pre-attention segment: LayerNorm 1 and the QKV linear.
	SegPre Segment = iota
	// SegAttn is the attention core: softmax(QK^T)V with flash attention.
	// It holds no model parameters.
	SegAttn
	// SegPost is the post-attention segment: output projection, LayerNorm 2,
	// and the two-linear GeLU MLP.
	SegPost
)

// Segments lists the three layer segments in execution order.
var Segments = [3]Segment{SegPre, SegAttn, SegPost}

// String implements fmt.Stringer.
func (s Segment) String() string {
	switch s {
	case SegPre:
		return "pre"
	case SegAttn:
		return "attn"
	case SegPost:
		return "post"
	default:
		return fmt.Sprintf("Segment(%d)", int(s))
	}
}

// Component identifies a single operation inside a transformer layer,
// matching the columns of paper Table 1.
type Component int

const (
	// CompLayerNorm1 is the attention-module LayerNorm.
	CompLayerNorm1 Component = iota
	// CompQKV is the fused query/key/value linear projection.
	CompQKV
	// CompAttention is the flash-attention core (QK^T softmax, PV).
	CompAttention
	// CompOProj is the attention output linear projection.
	CompOProj
	// CompLayerNorm2 is the MLP-module LayerNorm.
	CompLayerNorm2
	// CompLinear1 is the first MLP linear (h -> 4h).
	CompLinear1
	// CompGeLU is the MLP activation.
	CompGeLU
	// CompLinear2 is the second MLP linear (4h -> h).
	CompLinear2

	numComponents
)

// Components lists every layer component in execution order.
var Components = [numComponents]Component{
	CompLayerNorm1, CompQKV, CompAttention, CompOProj,
	CompLayerNorm2, CompLinear1, CompGeLU, CompLinear2,
}

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case CompLayerNorm1:
		return "LayerNorm1"
	case CompQKV:
		return "QKVLinear"
	case CompAttention:
		return "Attention"
	case CompOProj:
		return "OLinear"
	case CompLayerNorm2:
		return "LayerNorm2"
	case CompLinear1:
		return "Linear1"
	case CompGeLU:
		return "GeLU"
	case CompLinear2:
		return "Linear2"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Segment returns the layer segment a component belongs to.
func (c Component) Segment() Segment {
	switch c {
	case CompLayerNorm1, CompQKV:
		return SegPre
	case CompAttention:
		return SegAttn
	default:
		return SegPost
	}
}

// Shape describes the activation shape [s, b, h] of a micro batch flowing
// through a layer: S is the sequence length, B the micro batch size. The
// hidden size comes from the model Config.
type Shape struct {
	// B is the micro batch size (b in the paper).
	B int
	// S is the sequence length (s in the paper).
	S int
}

// Tokens returns b*s, the number of tokens in the micro batch.
func (sh Shape) Tokens() int64 { return int64(sh.B) * int64(sh.S) }

// Pass identifies a computation pass over a layer. Following paper Table 1
// the backward pass is decoupled into backward-B (gradients for input
// activations) and backward-W (gradients for model parameters); zero bubble
// schedules exploit exactly this decoupling.
type Pass int

const (
	// Forward is the forward pass.
	Forward Pass = iota
	// BackwardB computes gradients w.r.t. input activations.
	BackwardB
	// BackwardW computes gradients w.r.t. model parameters. The attention
	// core has no parameters, so its backward-W cost is zero.
	BackwardW
)

// String implements fmt.Stringer.
func (p Pass) String() string {
	switch p {
	case Forward:
		return "F"
	case BackwardB:
		return "B"
	case BackwardW:
		return "W"
	default:
		return fmt.Sprintf("Pass(%d)", int(p))
	}
}

// ComponentFLOPs returns the matrix-multiply FLOPs of one component for the
// given pass, reproducing paper Table 1 exactly. LayerNorms and GeLU perform
// no matrix math and return 0 here; their memory-bound cost is modeled via
// ComponentVectorElems.
func (c Config) ComponentFLOPs(comp Component, pass Pass, sh Shape) float64 {
	b := float64(sh.B)
	s := float64(sh.S)
	h := float64(c.Hidden)
	bsh2 := b * s * h * h // b*s*h^2
	bs2h := b * s * s * h // b*s^2*h
	switch comp {
	case CompQKV:
		// 6bsh^2 for every pass (forward, dgrad and wgrad each cost the
		// same 2x(3h^2) GEMM volume).
		return 6 * bsh2
	case CompAttention:
		switch pass {
		case Forward:
			return 4 * bs2h
		case BackwardB:
			return 8 * bs2h
		default:
			return 0 // attention is non-parameterized: no backward-W
		}
	case CompOProj:
		return 2 * bsh2
	case CompLinear1:
		return 8 * bsh2
	case CompLinear2:
		return 8 * bsh2
	default:
		return 0 // LayerNorms, GeLU: bandwidth bound, no matrix FLOPs
	}
}

// ComponentVectorElems returns the number of elements read+written by the
// bandwidth-bound (non-GEMM) part of a component, used by the cost model to
// charge HBM time for LayerNorm, GeLU, softmax bookkeeping, residual adds
// and similar vector work. GEMM-only components return a small epilogue
// traffic; vector components return a few multiples of their tensor size.
func (c Config) ComponentVectorElems(comp Component, pass Pass, sh Shape) int64 {
	bsh := sh.Tokens() * int64(c.Hidden)
	switch comp {
	case CompLayerNorm1, CompLayerNorm2:
		// read input, write normalized output (plus stats, negligible);
		// backward reads two tensors and writes one.
		if pass == Forward {
			return 2 * bsh
		}
		return 3 * bsh
	case CompGeLU:
		// operates on the 4h-wide MLP hidden tensor.
		if pass == Forward {
			return 2 * 4 * bsh
		}
		return 3 * 4 * bsh
	case CompAttention:
		// flash attention streams Q,K,V and writes O; the quadratic score
		// matrix never touches HBM. Residual add folded in.
		if pass == BackwardW {
			return 0
		}
		return 5 * bsh
	case CompQKV:
		if pass == BackwardW {
			return 0
		}
		return 4 * bsh // read bsh input, write 3bsh of Q,K,V
	case CompOProj:
		if pass == BackwardW {
			return 0
		}
		return 2 * bsh
	case CompLinear1, CompLinear2:
		if pass == BackwardW {
			return 0
		}
		return 5 * bsh // h-side tensor plus 4h-side tensor
	default:
		return 0
	}
}

// ComponentActivationElems returns the number of activation elements stashed
// by one component during the forward pass for use in its backward pass,
// reproducing the Activation row of paper Table 1. The total over all
// components is 16*b*s*h.
func (c Config) ComponentActivationElems(comp Component, sh Shape) int64 {
	bsh := sh.Tokens() * int64(c.Hidden)
	switch comp {
	case CompLayerNorm1, CompQKV, CompOProj, CompLayerNorm2, CompLinear1:
		return bsh
	case CompAttention:
		// flash attention stashes its input/output and softmax statistics,
		// rounded to 3bsh per Table 1.
		return 3 * bsh
	case CompGeLU, CompLinear2:
		return 4 * bsh
	default:
		return 0
	}
}

// ComponentParams returns the parameter element count of one component,
// reproducing the "Model parameters" row of paper Table 1.
func (c Config) ComponentParams(comp Component) int64 {
	h := int64(c.Hidden)
	switch comp {
	case CompLayerNorm1, CompLayerNorm2:
		return 2 * h
	case CompQKV:
		return 3 * h * h
	case CompOProj:
		return h * h
	case CompLinear1, CompLinear2:
		return 4 * h * h
	default:
		return 0
	}
}

// SegmentFLOPs returns the matrix FLOPs of a whole layer segment for a pass.
func (c Config) SegmentFLOPs(seg Segment, pass Pass, sh Shape) float64 {
	var total float64
	for _, comp := range Components {
		if comp.Segment() == seg {
			total += c.ComponentFLOPs(comp, pass, sh)
		}
	}
	return total
}

// SegmentVectorElems returns the bandwidth-bound element traffic of a whole
// layer segment for a pass.
func (c Config) SegmentVectorElems(seg Segment, pass Pass, sh Shape) int64 {
	var total int64
	for _, comp := range Components {
		if comp.Segment() == seg {
			total += c.ComponentVectorElems(comp, pass, sh)
		}
	}
	return total
}

// SegmentActivationElems returns the activation elements stashed by a whole
// layer segment during the forward pass.
func (c Config) SegmentActivationElems(seg Segment, sh Shape) int64 {
	var total int64
	for _, comp := range Components {
		if comp.Segment() == seg {
			total += c.ComponentActivationElems(comp, sh)
		}
	}
	return total
}

// SegmentParams returns the parameter element count of a layer segment.
func (c Config) SegmentParams(seg Segment) int64 {
	var total int64
	for _, comp := range Components {
		if comp.Segment() == seg {
			total += c.ComponentParams(comp)
		}
	}
	return total
}

// LayerFLOPs returns the matrix FLOPs of one full transformer layer for a
// pass. For the forward pass this is 4bsh(6h+s), for backward-B 4bsh(6h+2s)
// and for backward-W 4bsh*6h, matching the Total column of paper Table 1.
func (c Config) LayerFLOPs(pass Pass, sh Shape) float64 {
	return c.SegmentFLOPs(SegPre, pass, sh) +
		c.SegmentFLOPs(SegAttn, pass, sh) +
		c.SegmentFLOPs(SegPost, pass, sh)
}

// LayerActivationElems returns the activation elements stashed by one full
// layer during the forward pass: 16*b*s*h (paper Table 1, Total column).
func (c Config) LayerActivationElems(sh Shape) int64 {
	return c.SegmentActivationElems(SegPre, sh) +
		c.SegmentActivationElems(SegAttn, sh) +
		c.SegmentActivationElems(SegPost, sh)
}

// HelixStashElems returns the activation elements stashed per layer under
// the paper's recomputation-without-attention strategy (section 4.4.1):
// roughly 2bsh for the flash-attention input/output plus 2bsh for the
// combined pre/post-attention unit inputs, i.e. 4bsh in total.
func (c Config) HelixStashElems(sh Shape) int64 {
	return 4 * sh.Tokens() * int64(c.Hidden)
}

// EmbeddingFLOPs returns the matrix FLOPs of the LM head projection
// (logits = X * E^T, 2*b*s*h*V) for the forward pass and its backward
// counterparts. The input embedding lookup is bandwidth bound and costs no
// matrix FLOPs.
func (c Config) EmbeddingFLOPs(pass Pass, sh Shape) float64 {
	f := 2 * float64(sh.Tokens()) * float64(c.Hidden) * float64(c.Vocab)
	switch pass {
	case Forward:
		return f
	case BackwardB:
		return f
	case BackwardW:
		return f
	}
	return 0
}

// LogitsElems returns the b*s*V element count of the LM-head logits tensor,
// the activation the paper's section 4.6 avoids stashing by deferring the
// next-token prediction into the backward pass.
func (c Config) LogitsElems(sh Shape) int64 {
	return sh.Tokens() * int64(c.Vocab)
}

// StashFreedAt returns the backward pass after which a component's stashed
// activation can be released: parameterized components keep their input
// until backward-W has consumed it, while non-parameterized components
// (attention core, GeLU) release at backward-B. Zero bubble schedules defer
// backward-W, so this split determines how much memory the deferral holds.
func (c Config) StashFreedAt(comp Component) Pass {
	if c.ComponentParams(comp) > 0 {
		return BackwardW
	}
	return BackwardB
}

// SegmentStashFreedBy returns the activation elements of a segment released
// by the given backward pass (BackwardB or BackwardW). The two passes
// together release the segment's full stash.
func (c Config) SegmentStashFreedBy(seg Segment, pass Pass, sh Shape) int64 {
	var total int64
	for _, comp := range Components {
		if comp.Segment() == seg && c.StashFreedAt(comp) == pass {
			total += c.ComponentActivationElems(comp, sh)
		}
	}
	return total
}
