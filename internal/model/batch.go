package model

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// BatchSpec describes the micro batches of one training iteration by shape:
// Shapes[i] is the (b, s) geometry of micro batch i. It generalizes the
// single-Shape assumption of the fixed-length paths — real long-context
// corpora are dominated by mixed-length documents, and the quadratic
// attention share of each micro batch depends on its own sequence length.
//
// A BatchSpec with identical shapes is exactly equivalent to the classic
// "m micro batches of one Shape" configuration.
type BatchSpec struct {
	// Shapes holds one micro-batch shape per micro batch, in execution order.
	Shapes []Shape `json:"shapes"`
	// RealTokens is the unpadded token count of the documents behind the
	// shapes, when known (PackLengths records it; hand-built specs leave it
	// zero). TotalTokens minus RealTokens is the padding waste of the
	// packing.
	RealTokens int64 `json:"real_tokens,omitempty"`
}

// UniformBatch returns the classic fixed-shape iteration: m micro batches of
// shape (b, s).
func UniformBatch(m, b, s int) BatchSpec {
	shapes := make([]Shape, m)
	for i := range shapes {
		shapes[i] = Shape{B: b, S: s}
	}
	return BatchSpec{Shapes: shapes}
}

// Validate reports an error when the spec cannot drive an iteration.
func (bs BatchSpec) Validate() error {
	if len(bs.Shapes) == 0 {
		return fmt.Errorf("model: batch spec has no micro batches")
	}
	for i, sh := range bs.Shapes {
		if sh.B <= 0 || sh.S <= 0 {
			return fmt.Errorf("model: micro batch %d has non-positive shape %+v", i, sh)
		}
	}
	return nil
}

// MicroBatches returns the number of micro batches in the iteration.
func (bs BatchSpec) MicroBatches() int { return len(bs.Shapes) }

// TotalTokens returns the token count of one iteration, summed per micro
// batch — the numerator of variable-length throughput.
func (bs BatchSpec) TotalTokens() int64 {
	var total int64
	for _, sh := range bs.Shapes {
		total += sh.Tokens()
	}
	return total
}

// PadFraction returns the share of the iteration's padded tokens that are
// padding: 1 - real/padded. Zero when the real token count is unknown (the
// spec was built by hand rather than by PackLengths) or the spec is empty.
func (bs BatchSpec) PadFraction() float64 {
	padded := bs.TotalTokens()
	if bs.RealTokens <= 0 || padded <= 0 {
		return 0
	}
	return 1 - float64(bs.RealTokens)/float64(padded)
}

// TokensPerMB returns the per-micro-batch token counts in execution order.
func (bs BatchSpec) TokensPerMB() []int64 {
	out := make([]int64, len(bs.Shapes))
	for i, sh := range bs.Shapes {
		out[i] = sh.Tokens()
	}
	return out
}

// MinSeqLen and MaxSeqLen bound the sequence lengths across micro batches.
func (bs BatchSpec) MinSeqLen() int {
	min := 0
	for i, sh := range bs.Shapes {
		if i == 0 || sh.S < min {
			min = sh.S
		}
	}
	return min
}

// MaxSeqLen returns the longest sequence length of any micro batch.
func (bs BatchSpec) MaxSeqLen() int {
	max := 0
	for _, sh := range bs.Shapes {
		if sh.S > max {
			max = sh.S
		}
	}
	return max
}

// MaxShape returns the per-axis maximum shape across micro batches — the
// conservative shape for capacity-style estimates.
func (bs BatchSpec) MaxShape() Shape {
	var out Shape
	for _, sh := range bs.Shapes {
		if sh.B > out.B {
			out.B = sh.B
		}
		if sh.S > out.S {
			out.S = sh.S
		}
	}
	return out
}

// Uniform reports whether every micro batch shares one shape, and that shape.
func (bs BatchSpec) Uniform() (Shape, bool) {
	if len(bs.Shapes) == 0 {
		return Shape{}, false
	}
	first := bs.Shapes[0]
	for _, sh := range bs.Shapes[1:] {
		if sh != first {
			return Shape{}, false
		}
	}
	return first, true
}

// LengthBucket is one bin of a sequence-length histogram.
type LengthBucket struct {
	// MinSeqLen and MaxSeqLen are the inclusive sequence-length bounds.
	MinSeqLen int `json:"min_seq_len"`
	MaxSeqLen int `json:"max_seq_len"`
	// MicroBatches counts the micro batches whose S falls in the bucket.
	MicroBatches int `json:"micro_batches"`
	// Tokens sums the tokens of those micro batches.
	Tokens int64 `json:"tokens"`
}

// Histogram bins the micro batches by sequence length into at most `bins`
// equal-width buckets (empty buckets are dropped). With one distinct length
// the single bucket covers it exactly.
func (bs BatchSpec) Histogram(bins int) []LengthBucket {
	if len(bs.Shapes) == 0 || bins <= 0 {
		return nil
	}
	lo, hi := bs.MinSeqLen(), bs.MaxSeqLen()
	if lo == hi {
		return []LengthBucket{{
			MinSeqLen: lo, MaxSeqLen: hi,
			MicroBatches: len(bs.Shapes), Tokens: bs.TotalTokens(),
		}}
	}
	width := (hi - lo + bins) / bins // ceil so bins*width covers [lo, hi]
	out := make([]LengthBucket, bins)
	for i := range out {
		out[i].MinSeqLen = lo + i*width
		out[i].MaxSeqLen = lo + (i+1)*width - 1
	}
	out[len(out)-1].MaxSeqLen = hi
	for _, sh := range bs.Shapes {
		i := (sh.S - lo) / width
		if i >= bins {
			i = bins - 1
		}
		out[i].MicroBatches++
		out[i].Tokens += sh.Tokens()
	}
	filled := out[:0]
	for _, b := range out {
		if b.MicroBatches > 0 {
			filled = append(filled, b)
		}
	}
	return filled
}

// LengthDist names a synthetic document-length distribution.
type LengthDist int

const (
	// DistUniform draws lengths uniformly in [MinLen, MaxLen].
	DistUniform LengthDist = iota
	// DistBimodal mixes a short mode near MinLen (70% of documents) with a
	// long mode near MaxLen (30%) — the "mostly chat, some books" corpus.
	DistBimodal
	// DistLongTail concentrates documents near MinLen with a polynomial tail
	// of rare near-MaxLen documents — the web-crawl profile.
	DistLongTail
)

// String implements fmt.Stringer.
func (d LengthDist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistBimodal:
		return "bimodal"
	case DistLongTail:
		return "longtail"
	default:
		return fmt.Sprintf("LengthDist(%d)", int(d))
	}
}

// LengthDistByName resolves a distribution name ("uniform", "bimodal",
// "longtail") and reports whether it exists.
func LengthDistByName(name string) (LengthDist, bool) {
	switch name {
	case "uniform":
		return DistUniform, true
	case "bimodal":
		return DistBimodal, true
	case "longtail":
		return DistLongTail, true
	}
	return 0, false
}

// SampleLengths draws n synthetic document lengths in [minLen, maxLen] from
// the distribution, deterministically from the seed.
func SampleLengths(dist LengthDist, n, minLen, maxLen int, seed uint64) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("model: need a positive document count, got %d", n)
	}
	if minLen <= 0 || maxLen < minLen {
		return nil, fmt.Errorf("model: need 0 < minLen <= maxLen, got [%d, %d]", minLen, maxLen)
	}
	stream := rng.New(seed)
	span := float64(maxLen - minLen)
	clamp := func(l int) int {
		if l < minLen {
			return minLen
		}
		if l > maxLen {
			return maxLen
		}
		return l
	}
	out := make([]int, n)
	for i := range out {
		switch dist {
		case DistBimodal:
			// Normal jitter of sigma span/16 around each mode keeps the two
			// populations clearly separated at any [minLen, maxLen].
			mode, jitter := float64(minLen), stream.NormFloat64()*span/16
			if stream.Float64() < 0.3 {
				mode = float64(maxLen)
			}
			out[i] = clamp(int(mode + jitter))
		case DistLongTail:
			// u^4 maps the uniform draw onto a heavy-headed distribution:
			// the median document is short, the 99th percentile near maxLen.
			u := stream.Float64()
			out[i] = clamp(minLen + int(span*u*u*u*u))
		default: // DistUniform
			out[i] = minLen + stream.Intn(maxLen-minLen+1)
		}
	}
	return out, nil
}

// PackLengths bins document lengths into micro batches under a token budget
// with first-fit-decreasing bucketing: documents are sorted by length
// descending and greedily placed into the first micro batch that stays within
// the budget when every document in it is padded to the batch's longest
// sequence. Each resulting micro batch is a Shape{B: documents, S: longest},
// so padding waste is bounded by the greedy bucketing, and no single document
// may exceed the budget by itself.
func PackLengths(lengths []int, tokenBudget int64) (BatchSpec, error) {
	if len(lengths) == 0 {
		return BatchSpec{}, fmt.Errorf("model: no documents to pack")
	}
	if tokenBudget <= 0 {
		return BatchSpec{}, fmt.Errorf("model: token budget must be positive, got %d", tokenBudget)
	}
	sorted := append([]int(nil), lengths...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	if int64(sorted[0]) > tokenBudget {
		return BatchSpec{}, fmt.Errorf("model: document of %d tokens exceeds the %d-token budget",
			sorted[0], tokenBudget)
	}
	var shapes []Shape
	for _, l := range sorted {
		if l <= 0 {
			return BatchSpec{}, fmt.Errorf("model: non-positive document length %d", l)
		}
		placed := false
		for i := range shapes {
			// Descending order means shapes[i].S never grows when a document
			// joins, so the padded cost is (B+1) * S.
			if int64(shapes[i].B+1)*int64(shapes[i].S) <= tokenBudget {
				shapes[i].B++
				placed = true
				break
			}
		}
		if !placed {
			shapes = append(shapes, Shape{B: 1, S: l})
		}
	}
	var real int64
	for _, l := range lengths {
		real += int64(l)
	}
	return BatchSpec{Shapes: shapes, RealTokens: real}, nil
}

// MBOrder names a micro-batch execution-order policy applied on top of a
// packed BatchSpec. The per-micro-batch cost IR follows the spec's order, so
// reordering is a free scheduling axis: warmup-heavy schedules (1F1B) prefer
// their long micro batches early, while fold-paired schedules (HelixPipe)
// prefer long and short micro batches interleaved so fold partners balance.
type MBOrder string

const (
	// OrderPacked keeps the packer's order (first-fit-decreasing emits
	// longest-first buckets; hand-built specs keep their given order).
	OrderPacked MBOrder = "packed"
	// OrderLongestFirst sorts micro batches by descending token count.
	OrderLongestFirst MBOrder = "longest"
	// OrderShortestFirst sorts micro batches by ascending token count.
	OrderShortestFirst MBOrder = "shortest"
	// OrderBalanced interleaves from both ends of the sorted list — longest,
	// shortest, second longest, second shortest, ... — so any pairing of
	// nearby or folded micro batches mixes heavy and light work.
	OrderBalanced MBOrder = "balanced"
)

// Orders lists the micro-batch ordering policies.
func Orders() []MBOrder {
	return []MBOrder{OrderPacked, OrderLongestFirst, OrderShortestFirst, OrderBalanced}
}

// OrderByName resolves an ordering policy name and reports whether it
// exists.
func OrderByName(name string) (MBOrder, bool) {
	for _, o := range Orders() {
		if string(o) == name {
			return o, true
		}
	}
	return "", false
}

// Ordered returns a copy of the spec with its micro batches arranged under
// the policy. Token totals (real and padded) are unchanged — only the
// execution order moves. Sorting is stable, so equal-token micro batches
// keep their packed relative order and the result is deterministic.
func (bs BatchSpec) Ordered(order MBOrder) (BatchSpec, error) {
	out := BatchSpec{RealTokens: bs.RealTokens,
		Shapes: append([]Shape(nil), bs.Shapes...)}
	switch order {
	case OrderPacked, "":
		return out, nil
	case OrderLongestFirst, OrderBalanced:
		sort.SliceStable(out.Shapes, func(i, j int) bool {
			return out.Shapes[i].Tokens() > out.Shapes[j].Tokens()
		})
	case OrderShortestFirst:
		sort.SliceStable(out.Shapes, func(i, j int) bool {
			return out.Shapes[i].Tokens() < out.Shapes[j].Tokens()
		})
	default:
		return BatchSpec{}, fmt.Errorf("model: unknown micro-batch order %q (known: %v)", order, Orders())
	}
	if order == OrderBalanced {
		sorted := out.Shapes
		out.Shapes = make([]Shape, 0, len(sorted))
		for lo, hi := 0, len(sorted)-1; lo <= hi; lo, hi = lo+1, hi-1 {
			out.Shapes = append(out.Shapes, sorted[lo])
			if lo != hi {
				out.Shapes = append(out.Shapes, sorted[hi])
			}
		}
	}
	return out, nil
}

// SyntheticBatchSpec samples n document lengths from the distribution and
// packs them under the token budget — the one-call constructor for
// variable-length workload experiments.
func SyntheticBatchSpec(dist LengthDist, n, minLen, maxLen int, tokenBudget int64, seed uint64) (BatchSpec, error) {
	lengths, err := SampleLengths(dist, n, minLen, maxLen, seed)
	if err != nil {
		return BatchSpec{}, err
	}
	return PackLengths(lengths, tokenBudget)
}
