package model

import (
	"testing"
)

func TestBatchSpecBasics(t *testing.T) {
	bs := BatchSpec{Shapes: []Shape{{B: 1, S: 1024}, {B: 2, S: 512}, {B: 1, S: 4096}}}
	if err := bs.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := bs.MicroBatches(); got != 3 {
		t.Errorf("MicroBatches = %d, want 3", got)
	}
	if got := bs.TotalTokens(); got != 1024+2*512+4096 {
		t.Errorf("TotalTokens = %d", got)
	}
	if got := bs.MaxSeqLen(); got != 4096 {
		t.Errorf("MaxSeqLen = %d, want 4096", got)
	}
	if got := bs.MinSeqLen(); got != 512 {
		t.Errorf("MinSeqLen = %d, want 512", got)
	}
	if got := bs.MaxShape(); got != (Shape{B: 2, S: 4096}) {
		t.Errorf("MaxShape = %+v", got)
	}
	if _, uniform := bs.Uniform(); uniform {
		t.Error("mixed shapes must not report uniform")
	}
	toks := bs.TokensPerMB()
	if len(toks) != 3 || toks[0] != 1024 || toks[1] != 1024 || toks[2] != 4096 {
		t.Errorf("TokensPerMB = %v", toks)
	}

	u := UniformBatch(4, 1, 128)
	if sh, uniform := u.Uniform(); !uniform || sh != (Shape{B: 1, S: 128}) {
		t.Errorf("UniformBatch not uniform: %+v %v", sh, uniform)
	}
	if err := (BatchSpec{}).Validate(); err == nil {
		t.Error("empty spec must fail validation")
	}
	if err := (BatchSpec{Shapes: []Shape{{B: 0, S: 8}}}).Validate(); err == nil {
		t.Error("non-positive shape must fail validation")
	}
}

func TestBatchSpecHistogram(t *testing.T) {
	bs := BatchSpec{Shapes: []Shape{
		{B: 1, S: 100}, {B: 1, S: 110}, {B: 1, S: 900}, {B: 1, S: 1000},
	}}
	h := bs.Histogram(4)
	if len(h) == 0 {
		t.Fatal("histogram empty")
	}
	var mbs int
	var toks int64
	for _, b := range h {
		if b.MicroBatches == 0 {
			t.Errorf("empty bucket %+v survived", b)
		}
		if b.MinSeqLen > b.MaxSeqLen {
			t.Errorf("inverted bucket %+v", b)
		}
		mbs += b.MicroBatches
		toks += b.Tokens
	}
	if mbs != 4 || toks != bs.TotalTokens() {
		t.Errorf("histogram covers %d micro batches / %d tokens, want 4 / %d",
			mbs, toks, bs.TotalTokens())
	}
	// The short and long pairs land in different buckets.
	if h[0].MicroBatches != 2 || h[len(h)-1].MicroBatches != 2 {
		t.Errorf("bimodal split lost: %+v", h)
	}
	// Degenerate single-length histogram covers everything in one bucket.
	one := UniformBatch(3, 1, 64).Histogram(8)
	if len(one) != 1 || one[0].MicroBatches != 3 || one[0].MinSeqLen != 64 || one[0].MaxSeqLen != 64 {
		t.Errorf("uniform histogram = %+v", one)
	}
}

func TestSampleLengthsDistributions(t *testing.T) {
	const n, lo, hi = 500, 1024, 65536
	for _, dist := range []LengthDist{DistUniform, DistBimodal, DistLongTail} {
		a, err := SampleLengths(dist, n, lo, hi, 7)
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		b, err := SampleLengths(dist, n, lo, hi, 7)
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: not deterministic at %d (%d vs %d)", dist, i, a[i], b[i])
			}
			if a[i] < lo || a[i] > hi {
				t.Fatalf("%v: length %d out of [%d, %d]", dist, a[i], lo, hi)
			}
		}
	}
	// Long-tail medians sit far below uniform medians.
	med := func(dist LengthDist) int {
		xs, err := SampleLengths(dist, n, lo, hi, 3)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, x := range xs {
			sum += x
		}
		return sum / n
	}
	if !(med(DistLongTail) < med(DistUniform)) {
		t.Error("long-tail mean should undercut uniform mean")
	}
	if _, err := SampleLengths(DistUniform, 0, lo, hi, 1); err == nil {
		t.Error("zero documents must error")
	}
	if _, err := SampleLengths(DistUniform, 1, 10, 5, 1); err == nil {
		t.Error("inverted bounds must error")
	}
}

func TestPackLengths(t *testing.T) {
	lengths := []int{100, 900, 300, 500, 800, 200, 400}
	const budget = 1000
	bs, err := PackLengths(lengths, budget)
	if err != nil {
		t.Fatal(err)
	}
	// Every document is represented and every micro batch fits the budget.
	docs := 0
	for _, sh := range bs.Shapes {
		docs += sh.B
		if sh.Tokens() > budget {
			t.Errorf("micro batch %+v exceeds budget %d", sh, budget)
		}
	}
	if docs != len(lengths) {
		t.Errorf("packed %d documents, want %d", docs, len(lengths))
	}
	// First-fit-decreasing: the first micro batch holds the longest document.
	if bs.Shapes[0].S != 900 {
		t.Errorf("first micro batch S = %d, want 900", bs.Shapes[0].S)
	}
	if _, err := PackLengths([]int{2000}, budget); err == nil {
		t.Error("oversized document must error")
	}
	if _, err := PackLengths(nil, budget); err == nil {
		t.Error("empty document list must error")
	}
	if _, err := PackLengths(lengths, 0); err == nil {
		t.Error("non-positive budget must error")
	}
}

func TestSyntheticBatchSpec(t *testing.T) {
	bs, err := SyntheticBatchSpec(DistBimodal, 64, 512, 8192, 8192, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, uniform := bs.Uniform(); uniform {
		t.Error("bimodal workload should not be uniform")
	}
	again, err := SyntheticBatchSpec(DistBimodal, 64, 512, 8192, 8192, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Shapes) != len(bs.Shapes) {
		t.Fatalf("not deterministic: %d vs %d micro batches", len(again.Shapes), len(bs.Shapes))
	}
	for i := range bs.Shapes {
		if bs.Shapes[i] != again.Shapes[i] {
			t.Fatalf("shape %d differs across runs", i)
		}
	}
}

func TestLengthDistByName(t *testing.T) {
	for _, name := range []string{"uniform", "bimodal", "longtail"} {
		d, ok := LengthDistByName(name)
		if !ok || d.String() != name {
			t.Errorf("LengthDistByName(%q) = %v, %v", name, d, ok)
		}
	}
	if _, ok := LengthDistByName("zipf"); ok {
		t.Error("unknown name resolved")
	}
}
