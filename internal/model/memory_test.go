package model

import (
	"testing"
	"testing/quick"
)

// TestFigure4Shape reproduces the load-bearing observation of paper Figure 4:
// for the 13B model on 8 stages with sequence parallel size 8 and fp16, the
// first stages exceed 80 GB of activation memory at 128k sequence length
// while the last stages have large spare capacity; at 4k nothing comes close.
func TestFigure4Shape(t *testing.T) {
	cfg := Model13B()
	const stages, seqPar = 8, 8
	const gb = 1 << 30

	sh := Shape{B: 1, S: 131072}
	first := float64(cfg.ActivationBytes1F1B(sh, stages, 0, seqPar)) / gb
	second := float64(cfg.ActivationBytes1F1B(sh, stages, 1, seqPar)) / gb
	last := float64(cfg.ActivationBytes1F1B(sh, stages, stages-1, seqPar)) / gb
	if first <= 80 {
		t.Errorf("stage 0 at 128k = %.1f GB, paper expects >80 GB", first)
	}
	if second <= 80 {
		t.Errorf("stage 1 at 128k = %.1f GB, paper expects >80 GB", second)
	}
	if last >= 40 {
		t.Errorf("stage 7 at 128k = %.1f GB, paper expects large spare memory", last)
	}
	// Stage memory decreases linearly with stage index: stage i holds p-i
	// outstanding micro batches.
	for i := 0; i < stages-1; i++ {
		a := cfg.ActivationBytes1F1B(sh, stages, i, seqPar)
		b := cfg.ActivationBytes1F1B(sh, stages, i+1, seqPar)
		if a <= b {
			t.Errorf("memory should strictly decrease with stage: stage %d=%d stage %d=%d", i, a, i+1, b)
		}
	}
	shShort := Shape{B: 1, S: 4096}
	if m := float64(cfg.ActivationBytes1F1B(shShort, stages, 0, seqPar)) / gb; m > 10 {
		t.Errorf("stage 0 at 4k = %.1f GB, expected small", m)
	}
}

// TestZB1PEqualsWorstCase1F1B verifies Equation 4: ZB1P peak memory equals
// the stage-0 peak of 1F1B, for all stages.
func TestZB1PEqualsWorstCase1F1B(t *testing.T) {
	cfg := Model3B()
	sh := Shape{B: 1, S: 32768}
	if got, want := cfg.ActivationBytesZB1P(sh, 8, 8), cfg.ActivationBytes1F1B(sh, 8, 0, 8); got != want {
		t.Errorf("ZB1P peak %d != 1F1B stage-0 peak %d", got, want)
	}
}

// TestStage0IndependentOfPipelineSize verifies the paper's note under
// Equation 2: at stage 0 the activation overhead is 16bshL, irrespective of
// the pipeline size p.
func TestStage0IndependentOfPipelineSize(t *testing.T) {
	cfg := Model7B() // 32 layers: divisible by 2,4,8
	sh := Shape{B: 1, S: 8192}
	ref := cfg.ActivationBytes1F1B(sh, 2, 0, 8)
	for _, p := range []int{4, 8, 16} {
		if got := cfg.ActivationBytes1F1B(sh, p, 0, 8); got != ref {
			t.Errorf("stage-0 memory at p=%d is %d, want %d (independent of p)", p, got, ref)
		}
	}
}

// TestHelixMemoryProperties checks Table 2's memory column: Helix memory is
// balanced (same for all stages by construction), equals 4bsh*m*L/p, and the
// no-recompute variant is exactly 4x larger.
func TestHelixMemoryProperties(t *testing.T) {
	if err := quick.Check(func(sRaw, pRaw, loopsRaw uint8) bool {
		s := (int(sRaw)%64 + 1) * 1024
		pOpts := []int{2, 4, 8}
		p := pOpts[int(pRaw)%len(pOpts)]
		m := 2 * p * (int(loopsRaw)%2 + 1)
		cfg := Model7B()
		sh := Shape{B: 1, S: s}
		withRec := cfg.ActivationBytesHelix(sh, p, m, 8)
		noRec := cfg.ActivationBytesHelixNoRecompute(sh, p, m, 8)
		wantWith := 4 * int64(1) * int64(s) * int64(cfg.Hidden) * int64(m) * int64(cfg.Layers/p) * FP16Bytes / 8
		return withRec == wantWith && noRec == 4*withRec
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestHelixVsZB1PMemory verifies the regime highlighted by the paper: with
// m=2p micro batches, Helix memory 4bsh*m*L/p = 8bshL is half of ZB1P's
// 16bshL on every stage.
func TestHelixVsZB1PMemory(t *testing.T) {
	cfg := Model3B()
	sh := Shape{B: 1, S: 131072}
	const p, seqPar = 8, 8
	m := 2 * p
	helix := cfg.ActivationBytesHelix(sh, p, m, seqPar)
	zb := cfg.ActivationBytesZB1P(sh, p, seqPar)
	if 2*helix != zb {
		t.Errorf("with m=2p, Helix memory (%d) should be half of ZB1P (%d)", helix, zb)
	}
}

func TestModelStateBytes(t *testing.T) {
	cfg := Model7B()
	// 7B params, 16 bytes/param mixed precision, over 8 stages and 8-way SP:
	// about 7e9*16/64 = 1.75 GB per GPU.
	got := float64(cfg.ModelStateBytesPerStage(8, 8)) / (1 << 30)
	if got < 1.0 || got > 2.5 {
		t.Errorf("7B model state per GPU = %.2f GB, expected about 1.6-2 GB", got)
	}
	if cfg.EmbeddingStateBytes(8) <= 0 {
		t.Error("embedding state must be positive")
	}
}
