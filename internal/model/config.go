// Package model describes GPT-style transformer models at the accounting
// level used throughout the paper: parameter counts, per-component FLOPs and
// activation sizes of a transformer layer (paper Table 1), and the model
// configurations of the evaluation (paper Table 3).
//
// All counts are expressed per micro batch in "elements" (numbers) and FLOPs;
// conversion to bytes and seconds is the job of internal/costmodel.
package model

import "fmt"

// Config describes a GPT-3 family transformer model.
//
// The zero value is not useful; construct configs with the preset helpers
// (Model1B3, Model3B, ...) or fill every field explicitly.
type Config struct {
	// Name is a human-readable label such as "7B".
	Name string
	// Layers is the number of transformer layers (L in the paper).
	Layers int
	// Heads is the number of attention heads.
	Heads int
	// Hidden is the model hidden size (h in the paper).
	Hidden int
	// Vocab is the vocabulary size (V in the paper, about 50k for GPT).
	Vocab int
	// MaxSeq is the maximum position-embedding length. It only affects the
	// parameter count of the embedding block.
	MaxSeq int
}

// Validate reports an error when the configuration is structurally invalid.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("model: Layers must be positive, got %d", c.Layers)
	case c.Hidden <= 0:
		return fmt.Errorf("model: Hidden must be positive, got %d", c.Hidden)
	case c.Heads <= 0:
		return fmt.Errorf("model: Heads must be positive, got %d", c.Heads)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model: Hidden (%d) must be divisible by Heads (%d)", c.Hidden, c.Heads)
	case c.Vocab < 0 || c.MaxSeq < 0:
		return fmt.Errorf("model: Vocab and MaxSeq must be non-negative")
	}
	return nil
}

// HeadDim returns the per-head dimension h / heads.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// LayerParams returns the number of parameter elements in one transformer
// layer: 12h^2 + 4h (QKV 3h^2, O h^2, MLP 8h^2, two LayerNorms 2h each).
// Bias parameters are neglected, following paper Table 1.
func (c Config) LayerParams() int64 {
	h := int64(c.Hidden)
	return 12*h*h + 4*h
}

// EmbeddingParams returns the number of parameter elements in the word and
// position embeddings: V*h + MaxSeq*h.
func (c Config) EmbeddingParams() int64 {
	h := int64(c.Hidden)
	return int64(c.Vocab)*h + int64(c.MaxSeq)*h
}

// TotalParams returns the total parameter element count of the model,
// transformer layers plus embeddings. The LM head shares the word embedding
// (standard GPT weight tying), so it adds nothing.
func (c Config) TotalParams() int64 {
	return int64(c.Layers)*c.LayerParams() + c.EmbeddingParams()
}

// String implements fmt.Stringer.
func (c Config) String() string {
	return fmt.Sprintf("%s(L=%d heads=%d h=%d)", c.Name, c.Layers, c.Heads, c.Hidden)
}

// Paper Table 3 model configurations, plus the 13B model used by Figure 4.
// Vocabulary follows the GPT family conventions referenced in the paper
// (V is "around 50k for a typical GPT family model"). MaxSeq is zero for the
// large presets: long-sequence GPT variants use parameter-free rotary
// position encodings, so positions add no parameters; the tiny numeric-
// runtime config uses learned position embeddings and a nonzero MaxSeq.

// Model1B3 returns the 1.3B-parameter configuration of paper Table 3.
func Model1B3() Config {
	return Config{Name: "1.3B", Layers: 24, Heads: 16, Hidden: 2048, Vocab: 50304, MaxSeq: 0}
}

// Model3B returns the 3B-parameter configuration of paper Table 3.
func Model3B() Config {
	return Config{Name: "3B", Layers: 16, Heads: 32, Hidden: 4096, Vocab: 50304, MaxSeq: 0}
}

// Model7B returns the 7B-parameter configuration of paper Table 3.
func Model7B() Config {
	return Config{Name: "7B", Layers: 32, Heads: 32, Hidden: 4096, Vocab: 50304, MaxSeq: 0}
}

// Model13B returns the 13B-parameter configuration used by paper Figure 4
// (GPT-3 13B: 40 layers, hidden 5120).
func Model13B() Config {
	return Config{Name: "13B", Layers: 40, Heads: 40, Hidden: 5120, Vocab: 50304, MaxSeq: 0}
}

// Presets returns the named model configurations of the paper, in the order
// they appear (Table 3 plus the 13B model of Figure 4).
func Presets() []Config {
	return []Config{Model1B3(), Model3B(), Model7B(), Model13B()}
}

// PresetByName returns the preset configuration with the given name
// ("1.3B", "3B", "7B", "13B") and reports whether it exists.
func PresetByName(name string) (Config, bool) {
	for _, c := range Presets() {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// TinyTest returns a miniature configuration used by the numeric runtime
// tests and examples: it exercises the same code paths as the paper models
// at a size where pure-Go tensor math is fast.
func TinyTest() Config {
	return Config{Name: "tiny", Layers: 4, Heads: 2, Hidden: 32, Vocab: 64, MaxSeq: 64}
}
