package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetValidate(t *testing.T) {
	for _, c := range Presets() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	if err := TinyTest().Validate(); err != nil {
		t.Errorf("tiny: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{Name: "noLayers", Layers: 0, Heads: 2, Hidden: 8},
		{Name: "noHidden", Layers: 2, Heads: 2, Hidden: 0},
		{Name: "noHeads", Layers: 2, Heads: 0, Hidden: 8},
		{Name: "indivisible", Layers: 2, Heads: 3, Hidden: 8},
		{Name: "negVocab", Layers: 2, Heads: 2, Hidden: 8, Vocab: -1},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.Name)
		}
	}
}

// TestPresetParameterCounts checks that the Table 3 presets actually have the
// advertised parameter counts (within the usual "model size" rounding).
func TestPresetParameterCounts(t *testing.T) {
	cases := []struct {
		cfg  Config
		want float64 // billions
		tol  float64 // relative tolerance
	}{
		{Model1B3(), 1.3, 0.12},
		{Model3B(), 3.0, 0.15},
		{Model7B(), 7.0, 0.08},
		{Model13B(), 13.0, 0.05},
	}
	for _, tc := range cases {
		got := float64(tc.cfg.TotalParams()) / 1e9
		if math.Abs(got-tc.want)/tc.want > tc.tol {
			t.Errorf("%s: total params %.2fB, want about %.1fB", tc.cfg.Name, got, tc.want)
		}
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"1.3B", "3B", "7B", "13B"} {
		c, ok := PresetByName(name)
		if !ok {
			t.Fatalf("preset %q not found", name)
		}
		if c.Name != name {
			t.Errorf("PresetByName(%q).Name = %q", name, c.Name)
		}
	}
	if _, ok := PresetByName("175B"); ok {
		t.Error("PresetByName should not invent models")
	}
}

// TestLayerFLOPsTotals verifies the Total column of paper Table 1:
// forward 4bsh(6h+s), backward-B 4bsh(6h+2s), backward-W 4bsh*6h.
func TestLayerFLOPsTotals(t *testing.T) {
	check := func(b, s, h int) bool {
		if b <= 0 || s <= 0 || h <= 0 {
			return true
		}
		cfg := Config{Name: "q", Layers: 1, Heads: 1, Hidden: h}
		sh := Shape{B: b, S: s}
		bf, sf, hf := float64(b), float64(s), float64(h)
		wantF := 4 * bf * sf * hf * (6*hf + sf)
		wantB := 4 * bf * sf * hf * (6*hf + 2*sf)
		wantW := 4 * bf * sf * hf * 6 * hf
		const eps = 1e-9
		okF := math.Abs(cfg.LayerFLOPs(Forward, sh)-wantF) <= eps*wantF
		okB := math.Abs(cfg.LayerFLOPs(BackwardB, sh)-wantB) <= eps*wantB
		okW := math.Abs(cfg.LayerFLOPs(BackwardW, sh)-wantW) <= eps*wantW
		return okF && okB && okW
	}
	cfgQ := &quick.Config{MaxCount: 200, Values: nil}
	if err := quick.Check(func(b, s, h uint8) bool {
		return check(int(b)%32+1, int(s)%512+1, int(h)%256+1)
	}, cfgQ); err != nil {
		t.Error(err)
	}
}

// TestLayerActivationTotal verifies the 16bsh total of paper Table 1.
func TestLayerActivationTotal(t *testing.T) {
	if err := quick.Check(func(b, s, h uint8) bool {
		bb, ss, hh := int(b)%32+1, int(s)%512+1, int(h)%256+1
		cfg := Config{Name: "q", Layers: 1, Heads: 1, Hidden: hh}
		sh := Shape{B: bb, S: ss}
		return cfg.LayerActivationElems(sh) == 16*int64(bb)*int64(ss)*int64(hh)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLayerParams verifies the 12h^2+4h parameter total of paper Table 1 and
// that the per-component params sum to the layer total.
func TestLayerParams(t *testing.T) {
	cfg := Model7B()
	h := int64(cfg.Hidden)
	if got, want := cfg.LayerParams(), 12*h*h+4*h; got != want {
		t.Errorf("LayerParams = %d, want %d", got, want)
	}
	var sum int64
	for _, comp := range Components {
		sum += cfg.ComponentParams(comp)
	}
	if sum != cfg.LayerParams() {
		t.Errorf("component params sum %d != layer params %d", sum, cfg.LayerParams())
	}
}

// TestSegmentDecomposition checks that segment-level aggregates partition the
// layer-level aggregates with nothing dropped or double counted.
func TestSegmentDecomposition(t *testing.T) {
	cfg := Model3B()
	sh := Shape{B: 1, S: 4096}
	for _, pass := range []Pass{Forward, BackwardB, BackwardW} {
		sum := cfg.SegmentFLOPs(SegPre, pass, sh) + cfg.SegmentFLOPs(SegAttn, pass, sh) + cfg.SegmentFLOPs(SegPost, pass, sh)
		if math.Abs(sum-cfg.LayerFLOPs(pass, sh)) > 1 {
			t.Errorf("pass %v: segment FLOPs sum %g != layer %g", pass, sum, cfg.LayerFLOPs(pass, sh))
		}
	}
	actSum := cfg.SegmentActivationElems(SegPre, sh) + cfg.SegmentActivationElems(SegAttn, sh) + cfg.SegmentActivationElems(SegPost, sh)
	if actSum != cfg.LayerActivationElems(sh) {
		t.Errorf("segment activation sum %d != layer %d", actSum, cfg.LayerActivationElems(sh))
	}
	pSum := cfg.SegmentParams(SegPre) + cfg.SegmentParams(SegAttn) + cfg.SegmentParams(SegPost)
	if pSum != cfg.LayerParams() {
		t.Errorf("segment params sum %d != layer %d", pSum, cfg.LayerParams())
	}
}

// TestAttentionSegment verifies the defining property of the attention
// parallel partition: the attention segment holds no parameters and its
// backward-W cost is zero (paper section 4.2).
func TestAttentionSegment(t *testing.T) {
	cfg := Model7B()
	sh := Shape{B: 2, S: 8192}
	if p := cfg.SegmentParams(SegAttn); p != 0 {
		t.Errorf("attention segment params = %d, want 0", p)
	}
	if f := cfg.SegmentFLOPs(SegAttn, BackwardW, sh); f != 0 {
		t.Errorf("attention backward-W FLOPs = %g, want 0", f)
	}
	// Backward-B of attention costs twice its forward (Table 1).
	fw := cfg.SegmentFLOPs(SegAttn, Forward, sh)
	bw := cfg.SegmentFLOPs(SegAttn, BackwardB, sh)
	if math.Abs(bw-2*fw) > 1e-6*fw {
		t.Errorf("attention backward-B %g != 2x forward %g", bw, fw)
	}
}

func TestComponentSegmentAssignment(t *testing.T) {
	want := map[Component]Segment{
		CompLayerNorm1: SegPre,
		CompQKV:        SegPre,
		CompAttention:  SegAttn,
		CompOProj:      SegPost,
		CompLayerNorm2: SegPost,
		CompLinear1:    SegPost,
		CompGeLU:       SegPost,
		CompLinear2:    SegPost,
	}
	for comp, seg := range want {
		if comp.Segment() != seg {
			t.Errorf("%v.Segment() = %v, want %v", comp, comp.Segment(), seg)
		}
	}
}

// TestAttentionDominance reproduces the motivation of paper Figure 3: with
// h=4096 the attention share of forward FLOPs crosses 50% between 8k and 32k
// and dominates (>80%) at 128k.
func TestAttentionDominance(t *testing.T) {
	cfg := Model7B() // h = 4096
	share := func(s int) float64 {
		sh := Shape{B: 1, S: s}
		return cfg.SegmentFLOPs(SegAttn, Forward, sh) / cfg.LayerFLOPs(Forward, sh)
	}
	if sh4k := share(4096); sh4k > 0.5 {
		t.Errorf("attention share at 4k = %.2f, expected below 0.5", sh4k)
	}
	if sh32k := share(32768); sh32k < 0.5 {
		t.Errorf("attention share at 32k = %.2f, expected above 0.5", sh32k)
	}
	if sh128k := share(131072); sh128k < 0.8 {
		t.Errorf("attention share at 128k = %.2f, expected above 0.8", sh128k)
	}
	// Monotone in s.
	prev := -1.0
	for s := 1024; s <= 131072; s *= 2 {
		cur := share(s)
		if cur <= prev {
			t.Errorf("attention share not increasing at s=%d", s)
		}
		prev = cur
	}
}

func TestHelixStash(t *testing.T) {
	cfg := Model3B()
	sh := Shape{B: 1, S: 65536}
	full := cfg.LayerActivationElems(sh)
	helix := cfg.HelixStashElems(sh)
	if full != 4*helix {
		t.Errorf("recomputation should cut activation memory 4x: full=%d helix=%d", full, helix)
	}
}

func TestStrings(t *testing.T) {
	if SegPre.String() != "pre" || SegAttn.String() != "attn" || SegPost.String() != "post" {
		t.Error("segment String() mismatch")
	}
	if Segment(99).String() == "" || Component(99).String() == "" || Pass(99).String() == "" {
		t.Error("out-of-range String() should still format")
	}
	if Forward.String() != "F" || BackwardB.String() != "B" || BackwardW.String() != "W" {
		t.Error("pass String() mismatch")
	}
	for _, comp := range Components {
		if comp.String() == "" {
			t.Errorf("component %d has empty name", comp)
		}
	}
	cfg := Model7B()
	if cfg.String() == "" {
		t.Error("config String() empty")
	}
}
