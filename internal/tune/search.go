package tune

import (
	"fmt"
	"iter"
	"runtime"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/memsim"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Search accounting mirrors into the default obs registry: the evaluated-
// point and memoized-cost-eval totals as plain counters, the per-reason
// prune totals as one labeled counter family.
var (
	tunePointsC    = obs.Default().Counter("helix_tune_points_total")
	tuneCostEvalsC = obs.Default().Counter("helix_tune_cost_evals_total")
)

func (s *Search) prune(reason string) {
	s.res.Pruned[reason]++
	obs.Default().Counter("helix_tune_pruned_total", "reason", reason).Inc()
}

// PruneError reports one discarded grid point of a streaming search: the
// candidate, the constraint that discarded it (PruneBuild, PruneSim,
// PrunePlacement or PruneMeasured), and the underlying cause.
type PruneError struct {
	// Candidate is the discarded grid point.
	Candidate Candidate
	// Reason is the Prune* constraint name.
	Reason string
	// Err is the underlying failure.
	Err error
}

func (e *PruneError) Error() string { return fmt.Sprintf("pruned (%s): %v", e.Reason, e.Err) }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *PruneError) Unwrap() error { return e.Err }

// survivor is a grid point that passed the cheap pruning phases.
type survivor struct {
	Candidate
	estPeak int64 // memsim activation peak + model states
}

// shapeKey memoizes cost books: cost-model evaluation depends only on the
// micro-batch shape (b, s) — or, for workload candidates, on the workload
// and its order — so the whole method x stages x micro-batch cross product
// shares one evaluation per shape.
type shapeKey struct {
	b, s     int
	workload string
	order    string
}

// Search is a prepared, streamable autotuner run. NewSearch validates the
// spec and runs the cheap phases (grid enumeration, geometry and memory
// pruning, cost-book memoization); Points streams the expensive phase — one
// simulated Point or PruneError per surviving grid point, in deterministic
// grid order, each yielded as soon as it is available; Result finalizes the
// accounting and rankings over whatever Points has yielded so far. Run
// wires the three together for callers that want the collected Result.
type Search struct {
	m      model.Config
	cl     costmodel.ClusterSpec
	spec   Spec
	budget int64

	res       *Result
	survivors []survivor
	costs     map[shapeKey]sched.Costs
	workloads map[string]model.BatchSpec
}

// NewSearch validates the spec against the model and cluster and runs the
// cheap pruning phases, returning a Search ready to stream. It errors only
// on an unusable spec or inputs; prunable grid points are counted, never
// fatal.
func NewSearch(m model.Config, cl costmodel.ClusterSpec, spec Spec) (*Search, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("tune: invalid model: %w", err)
	}
	if err := cl.Validate(); err != nil {
		return nil, fmt.Errorf("tune: invalid cluster: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	methods := sched.Methods()
	if len(spec.Methods) > 0 {
		// Resolve to canonical registry names: the per-method memory
		// profiles (stageTrace, stateBytes) switch on them, so a
		// case-variant spelling must not fall through to the default.
		methods = make([]sched.Method, 0, len(spec.Methods))
		for _, method := range spec.Methods {
			r, ok := sched.Lookup(string(method))
			if !ok {
				return nil, fmt.Errorf("tune: unknown method %q", method)
			}
			methods = append(methods, r.Name)
		}
	}
	budget := spec.MemoryBudgetBytes
	if budget == 0 {
		budget = int64(cl.GPU.MemoryGB * float64(1<<30))
	}

	s := &Search{
		m: m, cl: cl, spec: spec, budget: budget,
		res: &Result{
			Model:             m.Name,
			Cluster:           cl.Name,
			MemoryBudgetBytes: budget,
			Pruned:            map[string]int{},
		},
		costs:     map[shapeKey]sched.Costs{},
		workloads: map[string]model.BatchSpec{},
	}
	if spec.Cluster != nil {
		s.res.Topology = spec.Cluster.Name
	}
	grid := spec.grid(methods)
	s.res.GridSize = len(grid)
	for _, w := range spec.Workloads {
		s.workloads[w.Name] = w.Batch
	}

	// Phase 1: cheap pruning. Geometry first, then the memsim peak-memory
	// estimate — no cost model, no plan building, no simulation. The
	// estimate is order-independent (its outstanding window holds the
	// largest micro batches), so ordered variants share the verdict.
	for _, c := range grid {
		if c.Stages <= 0 || c.MicroBatches <= 0 || c.MicroBatchSize <= 0 ||
			c.SeqLen <= 0 || m.Layers%c.Stages != 0 {
			s.prune(PruneGeometry)
			continue
		}
		w := costmodel.NewWorkload(m, cl, model.Shape{B: c.MicroBatchSize, S: c.SeqLen})
		est, err := estimatePeak(w, c, s.batchOf(c), budget)
		if err != nil || est > budget {
			s.prune(PruneMemory)
			continue
		}
		s.survivors = append(s.survivors, survivor{Candidate: c, estPeak: est})
	}

	// Phase 2: memoized cost books, one per distinct shape key; this is
	// what keeps CostModelEvals strictly below the naive grid size.
	for _, sv := range s.survivors {
		key := keyOf(sv.Candidate)
		if _, ok := s.costs[key]; ok {
			continue
		}
		if key.workload != "" {
			batch := *s.batchOf(sv.Candidate)
			w := costmodel.NewWorkload(m, cl, batch.MaxShape())
			s.costs[key] = sched.NewBatchCosts(w, batch)
		} else {
			w := costmodel.NewWorkload(m, cl, model.Shape{B: key.b, S: key.s})
			s.costs[key] = sched.NewCosts(w)
		}
		s.res.CostModelEvals++
		tuneCostEvalsC.Inc()
	}
	return s, nil
}

func keyOf(c Candidate) shapeKey {
	if c.Workload != "" {
		return shapeKey{workload: c.Workload, order: c.Order}
	}
	return shapeKey{b: c.MicroBatchSize, s: c.SeqLen}
}

// batchOf resolves a candidate's workload name (and order) to its batch
// spec; fixed-length candidates resolve to nil.
func (s *Search) batchOf(c Candidate) *model.BatchSpec {
	if c.Workload == "" {
		return nil
	}
	b := s.workloads[c.Workload]
	if c.Order != "" {
		// Order names are validated by Spec.Validate, so Ordered cannot
		// fail here.
		b, _ = b.Ordered(model.MBOrder(c.Order))
	}
	return &b
}

// Points streams the expensive phase: the surviving grid points run on a
// bounded worker pool (Spec.Workers wide; a launch window a few pool
// widths ahead of the yield cursor caps buffered results) and are yielded
// in deterministic grid order as soon as each simulation completes —
// evaluated points as (Point, nil), discarded ones as (Point{},
// *PruneError). A prune never aborts the remaining points. The stream
// records everything it yields into the Search's accounting, so Result
// after draining equals what Run returns; breaking early launches nothing
// further and leaves a partial (but consistent) Result. Points may be
// consumed once.
func (s *Search) Points() iter.Seq2[Point, error] {
	workers := s.spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return func(yield func(Point, error) bool) {
		type outcome struct {
			point  Point
			reason string // empty on success
			err    error
		}
		window := 4 * workers
		results := make([]chan outcome, len(s.survivors))
		for i := range results {
			results[i] = make(chan outcome, 1)
		}
		// The semaphore doubles as the worker-id pool, so progress events
		// can report which slot evaluated each survivor.
		sem := make(chan int, workers)
		for w := 0; w < workers; w++ {
			sem <- w
		}
		sink := s.spec.Sink
		launch := func(i int) {
			go func() {
				w := <-sem
				defer func() { sem <- w }()
				sv := s.survivors[i]
				var start time.Time
				if sink != nil {
					start = time.Now()
					sink.Emit(obs.Event{Kind: obs.CellStarted, Label: sv.Candidate.String(),
						Index: i, Total: len(s.survivors), Worker: w})
				}
				point, reason, err := evaluate(s.m, s.cl, s.spec, sv.Candidate,
					s.batchOf(sv.Candidate), sv.estPeak, s.budget, s.costs[keyOf(sv.Candidate)])
				if sink != nil {
					sink.Emit(obs.Event{Kind: obs.CellFinished, Label: sv.Candidate.String(),
						Index: i, Total: len(s.survivors), Worker: w,
						Duration: time.Since(start), Err: err})
				}
				results[i] <- outcome{point: point, reason: reason, err: err}
			}()
		}
		next := 0
		for ; next < len(s.survivors) && next < window; next++ {
			launch(next)
		}
		for i, sv := range s.survivors {
			o := <-results[i]
			if next < len(s.survivors) {
				launch(next)
				next++
			}
			if o.reason != "" {
				s.prune(o.reason)
				s.res.Errors = append(s.res.Errors, o.err.Error())
				if !yield(Point{}, &PruneError{Candidate: sv.Candidate, Reason: o.reason, Err: o.err}) {
					return
				}
				continue
			}
			s.res.Points = append(s.res.Points, o.point)
			tunePointsC.Inc()
			if !yield(o.point, nil) {
				return
			}
			if s.spec.budgetMet(o.point) {
				// The budget target is met: stop the stream here. In-flight
				// launches drain into their buffered channels and are
				// discarded; nothing further launches.
				s.res.StoppedEarly = true
				return
			}
		}
	}
}

// Result finalizes the accounting — evaluated count, best-per-scenario
// picks, Pareto frontier — over the points streamed so far and returns the
// collected Result.
func (s *Search) Result() *Result {
	s.res.Evaluated = len(s.res.Points)
	s.res.Best = bestPerScenario(s.spec, s.res.Points)
	s.res.Frontier = paretoFrontier(s.spec, s.res.Points)
	return s.res
}

// Run searches the spec's grid for the given model on the given cluster: a
// thin collector that drains the Search's point stream and returns the
// ranked Result. Build and simulation failures of individual grid points
// are counted and recorded, never fatal; Run errors only on an unusable
// spec or inputs.
func Run(m model.Config, cl costmodel.ClusterSpec, spec Spec) (*Result, error) {
	search, err := NewSearch(m, cl, spec)
	if err != nil {
		return nil, err
	}
	for range search.Points() {
		// Outcomes are recorded by the stream itself; draining it is all a
		// collector does.
	}
	return search.Result(), nil
}

// evaluate builds and simulates one surviving candidate. A non-empty reason
// (PruneBuild, PruneSim, PrunePlacement or PruneMeasured) reports a
// discarded point. Under a cluster topology the candidate searches the
// spec's placement strategies and keeps the best placement's result.
func evaluate(m model.Config, cl costmodel.ClusterSpec, spec Spec, c Candidate, batch *model.BatchSpec,
	estPeak, budget int64, costs sched.Costs) (Point, string, error) {
	cfg := sched.Config{Stages: c.Stages, MicroBatches: c.MicroBatches, Layers: m.Layers}
	tokens := int64(c.MicroBatchSize) * int64(c.SeqLen) * int64(c.MicroBatches)
	padFraction := 0.0
	if batch != nil {
		cfg.Batch = *batch
		tokens = batch.TotalTokens()
		padFraction = batch.PadFraction()
	}
	activationBudget := budget - stateBytes(m, cl, c.Method, c.Stages)
	plan, err := sched.Build(c.Method, cfg, costs, sched.BuildParams{MemoryBudget: activationBudget})
	if err != nil {
		return Point{}, PruneBuild, fmt.Errorf("%s: %w", c, err)
	}

	var simRes *sim.Result
	var best cluster.Placement
	if spec.Cluster != nil {
		pt := cluster.Perturb{SlowDevice: -1}
		if spec.Perturb != nil {
			pt = *spec.Perturb
		}
		simRes, best, err = simulatePlacements(plan, *spec.Cluster, spec.Placements, pt, cl)
		if err != nil {
			reason := PruneSim
			if c.Stages > spec.Cluster.Devices() {
				reason = PrunePlacement
			}
			return Point{}, reason, fmt.Errorf("%s: %w", c, err)
		}
	} else {
		simRes, err = sim.Run(plan, sim.Options{SMPenalty: cl.CommSMPenalty})
		if err != nil {
			return Point{}, PruneSim, fmt.Errorf("%s: %w", c, err)
		}
	}
	peak := simRes.MaxPeakStashBytes() + stateBytes(m, cl, c.Method, c.Stages)
	if peak > budget {
		// The cheap estimate admitted the point but the simulation measured
		// it over budget: discard it rather than recommend an OOM.
		return Point{}, PruneMeasured, fmt.Errorf(
			"%s: measured peak %d exceeds budget %d", c, peak, budget)
	}
	point := Point{
		Candidate:          c,
		Placement:          best.Strategy,
		PlacementDevices:   best.Devices,
		PadFraction:        padFraction,
		TokensPerIteration: tokens,
		EstimatedPeakBytes: estPeak,
		PeakBytes:          peak,
		IterationSeconds:   simRes.IterationSeconds,
		TokensPerSecond:    simRes.Throughput(tokens),
		BubbleFraction:     bubbleFraction(simRes),
	}
	if tokens > 0 {
		point.SecondsPerToken = simRes.IterationSeconds / float64(tokens)
	}
	return point, "", nil
}

// simulatePlacements runs the plan once per placement strategy on the
// topology and returns the fastest iteration's result and placement. The
// greedy search seeds from zero, so results are deterministic.
func simulatePlacements(plan *sched.Plan, topo cluster.Cluster, strategies []string,
	pt cluster.Perturb, cl costmodel.ClusterSpec) (*sim.Result, cluster.Placement, error) {
	if len(strategies) == 0 {
		strategies = cluster.Strategies()
	}
	if plan.Stages > topo.Devices() {
		return nil, cluster.Placement{}, fmt.Errorf(
			"%d stages exceed the %d devices of %s", plan.Stages, topo.Devices(), topo.Name)
	}
	traffic := plan.TrafficMatrix()
	var bestRes *sim.Result
	var bestPlace cluster.Placement
	var firstErr error
	for _, strategy := range strategies {
		// Candidate links are priced as the perturbation leaves them, so a
		// degraded fabric steers the search away from the broken links and the
		// ranking matches the perturbed simulation below.
		place, err := cluster.Generate(strategy, topo, plan.Stages, traffic, cluster.SearchOptions{Perturb: pt})
		if err == nil {
			var topoView *cluster.Topology
			topoView, err = cluster.Resolve(topo, place, pt)
			if err == nil {
				plan.Placement = place.Devices
				var res *sim.Result
				res, err = sim.Run(plan, sim.Options{SMPenalty: cl.CommSMPenalty, Topology: topoView})
				if err == nil {
					if bestRes == nil || res.IterationSeconds < bestRes.IterationSeconds {
						bestRes, bestPlace = res, place
					}
					continue
				}
			}
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("placement %s: %w", strategy, err)
		}
	}
	if bestRes == nil {
		return nil, cluster.Placement{}, firstErr
	}
	plan.Placement = bestPlace.Devices
	return bestRes, bestPlace, nil
}

func bubbleFraction(r *sim.Result) float64 {
	if r.IterationSeconds <= 0 {
		return 0
	}
	return r.BubbleSeconds() / r.IterationSeconds
}

// estimatePeak returns the candidate's per-GPU peak-memory estimate: the
// memsim caching-allocator replay of the most loaded stage's activation
// trace plus model states. The replay costs a few hundred allocator
// operations — the "cheap" in cheap pruning. For workload candidates the
// trace carries per-micro-batch stashes (largest first — the conservative
// outstanding window).
func estimatePeak(w costmodel.Workload, c Candidate, batch *model.BatchSpec, budget int64) (int64, error) {
	states := stateBytes(w.Model, w.Cluster, c.Method, c.Stages)
	if states >= budget {
		// Model states alone exhaust the budget; no activation trace needed.
		return states, nil
	}
	tr := stageTrace(w, c, batch)
	cfg := memsim.DefaultConfig()
	cfg.SegmentBytes = 64 << 20
	st, err := memsim.EstimatePeak(cfg, tr)
	if err != nil {
		return 0, err
	}
	return st.PeakReservedBytes + states, nil
}

// stashProfile discriminates how much one layer stashes per method.
type stashProfile int

const (
	stashFull  stashProfile = iota // every activation (16bsh per layer)
	stashHelix                     // recomputation without attention (4bsh)
	stashInput                     // full recomputation floor (1bsh)
)

// layerStashBytes returns one layer's per-GPU stash for a shape under a
// profile.
func layerStashBytes(w costmodel.Workload, sh model.Shape, p stashProfile) int64 {
	seqPar := int64(w.Cluster.GPUsPerNode)
	switch p {
	case stashHelix:
		return w.Model.HelixStashElems(sh) * model.FP16Bytes / seqPar
	case stashInput:
		return sh.Tokens() * int64(w.Model.Hidden) * model.FP16Bytes / seqPar
	default:
		return w.Model.LayerActivationElems(sh) * model.FP16Bytes / seqPar
	}
}

// stageTrace maps a candidate onto the allocation trace of its most loaded
// pipeline stage. The per-method profiles follow the paper's analysis
// (Equations 2 and 4, Table 2): what varies between schedules is how much
// one layer stashes and how many micro batches stay outstanding at once. On
// a variable-length workload the outstanding window holds the workload's
// largest micro batches — the worst case any pick order can reach.
func stageTrace(w costmodel.Workload, c Candidate, batch *model.BatchSpec) memsim.StageTrace {
	seqPar := int64(w.Cluster.GPUsPerNode)
	unit := w.Shape.Tokens() * int64(w.Model.Hidden) * model.FP16Bytes / seqPar

	tr := memsim.StageTrace{
		LayersPerStage: w.Model.Layers / c.Stages,
		// The MLP working set of one layer: input, the two 4bsh
		// intermediates, output — the buffers whose irregular sizes carve
		// the pool (section 4.4.2). On variable-length workloads this is the
		// largest micro batch's working set.
		TransientBytes: []int64{unit, 4 * unit, 4 * unit, unit},
	}
	profile := stashFull
	switch c.Method {
	case sched.MethodGPipe:
		// All forwards before any backward: every micro batch outstanding.
		tr.OutstandingMB = c.MicroBatches
	case sched.MethodInterleaved:
		// Interleaving adds up to one extra in-flight micro batch at the
		// first stage over plain 1F1B.
		tr.OutstandingMB = min(c.Stages+1, c.MicroBatches)
	case sched.MethodZB1P:
		// Equation 4: ZB1P's worst stage matches 1F1B's first stage, plus
		// the last stage's fp32 embedding-gradient stash for deferred W.
		tr.OutstandingMB = min(c.Stages, c.MicroBatches)
		tr.ResidentBytes = embedGradResidents(w, c.Stages-1)
	case sched.MethodZB2P:
		// ZB2P admits roughly a second pipeline's worth of warmup forwards
		// for its smaller bubble, doubling ZB1P's outstanding count.
		tr.OutstandingMB = min(2*c.Stages, c.MicroBatches)
		tr.ResidentBytes = embedGradResidents(w, c.Stages-1)
	case sched.MethodAdaPipe:
		// AdaPipe recomputes adaptively under the budget; its floor is full
		// recomputation, which keeps only each layer's input.
		profile, tr.OutstandingMB = stashInput, min(c.Stages, c.MicroBatches)
	case sched.MethodHelix, sched.MethodHelixNaive:
		// Table 2: the FILO schedules stash all m micro batches, but
		// recomputation without attention keeps only 4bsh per layer.
		profile, tr.OutstandingMB = stashHelix, c.MicroBatches
	case sched.MethodHelixNoRecompute:
		tr.OutstandingMB = c.MicroBatches
	default:
		// Unknown registered methods get the 1F1B profile: the most common
		// steady state, p outstanding micro batches of full layer stashes.
		tr.OutstandingMB = min(c.Stages, c.MicroBatches)
	}
	tr.StashBytes = layerStashBytes(w, w.Shape, profile)
	if batch != nil {
		perMB := make([]int64, 0, len(batch.Shapes))
		for _, sh := range batch.Shapes {
			perMB = append(perMB, layerStashBytes(w, sh, profile))
		}
		sort.Slice(perMB, func(i, j int) bool { return perMB[i] > perMB[j] })
		if len(perMB) > tr.OutstandingMB {
			perMB = perMB[:tr.OutstandingMB]
		}
		tr.StashBytesPerMB = perMB
	}
	return tr
}

// embedGradResidents returns the last stage's deferred embedding-gradient
// stashes under the zero-bubble schedules: one fp32 head-activation pair per
// warmup micro batch (section 5.4).
func embedGradResidents(w costmodel.Workload, warmup int) []int64 {
	if warmup <= 0 {
		return nil
	}
	out := make([]int64, warmup)
	for i := range out {
		out[i] = w.EmbeddingGradStashBytes()
	}
	return out
}

// bestPerScenario picks the best point under the spec's objective per
// scenario: one per sequence length (fixed-length points only) in the
// spec's order, then one per workload in the spec's order.
func bestPerScenario(spec Spec, points []Point) []Point {
	bestSeq := map[int]Point{}
	bestWL := map[string]Point{}
	for _, p := range points {
		if p.Workload != "" {
			if cur, ok := bestWL[p.Workload]; !ok || spec.better(p, cur) {
				bestWL[p.Workload] = p
			}
			continue
		}
		if cur, ok := bestSeq[p.SeqLen]; !ok || spec.better(p, cur) {
			bestSeq[p.SeqLen] = p
		}
	}
	out := make([]Point, 0, len(bestSeq)+len(bestWL))
	for _, seq := range dedupe(spec.SeqLens) {
		if p, ok := bestSeq[seq]; ok {
			out = append(out, p)
		}
	}
	for _, w := range spec.Workloads {
		if p, ok := bestWL[w.Name]; ok {
			out = append(out, p)
		}
	}
	return out
}

// paretoFrontier returns the points no other point dominates in (peak
// memory down, objective up), ordered by ascending peak memory.
func paretoFrontier(spec Spec, points []Point) []Point {
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].PeakBytes != sorted[j].PeakBytes {
			return sorted[i].PeakBytes < sorted[j].PeakBytes
		}
		return spec.better(sorted[i], sorted[j])
	})
	var frontier []Point
	for _, p := range sorted {
		if len(frontier) == 0 || spec.better(p, frontier[len(frontier)-1]) {
			frontier = append(frontier, p)
		}
	}
	return frontier
}
