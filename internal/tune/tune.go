// Package tune implements the configuration autotuner: given a model, a
// cluster and a constraint spec it enumerates the method x sequence-length x
// stages x micro-batch grid, discards memory-infeasible points with cheap
// memsim peak estimates before simulating anything, fans the survivors
// across a bounded worker pool, memoizes cost-model evaluations keyed by
// micro-batch shape so repeated grid points are free, and ranks the results
// into a best-throughput pick per sequence length and a throughput-versus-
// peak-memory Pareto frontier.
//
// The paper's own evaluation is exactly such a sweep — method x seqlen x
// cluster, with schedules winning or losing depending on where attention
// time and memory pressure land — and the autotuner turns that from "run
// every cell and eyeball the table" into "ask which schedule fits a budget".
package tune

import (
	"fmt"

	"repro/internal/cluster"
	// Linked for its registry side effect: the HelixPipe variants register
	// themselves into the sched method registry at init.
	_ "repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Prune reasons counted in Result.Pruned, one per constraint.
const (
	// PruneGeometry counts grid points with an unusable pipeline geometry
	// (non-positive axes, layers not divisible by stages).
	PruneGeometry = "geometry"
	// PruneMemory counts grid points whose memsim peak-memory estimate
	// exceeds the per-GPU budget.
	PruneMemory = "memory-budget"
	// PruneBuild counts survivors whose schedule builder rejected the
	// configuration (e.g. AdaPipe finding no partition under the budget).
	PruneBuild = "build-error"
	// PruneSim counts survivors whose simulation failed.
	PruneSim = "sim-error"
	// PruneMeasured counts survivors whose simulated (measured) peak memory
	// exceeded the budget even though the cheap estimate admitted them.
	PruneMeasured = "memory-measured"
	// PrunePlacement counts survivors that could not be placed on the
	// topology (more stages than devices).
	PrunePlacement = "placement"
)

// The objectives a search can rank points by. Throughput (tokens per
// second, the training default) and latency per token (seconds per token)
// are reciprocal on any one point, so they induce the same ranking — the
// objective chooses the direction a Budget threshold is read in and how
// results are oriented.
const (
	// ObjectiveThroughput maximizes tokens per second (the default).
	ObjectiveThroughput = "throughput"
	// ObjectiveLatencyPerToken minimizes seconds per token.
	ObjectiveLatencyPerToken = "latency_per_token"
)

// WorkloadSpec names one variable-length workload candidate: a per-micro-
// batch shape list the autotuner ranks methods on, next to the fixed-length
// SeqLens axis.
type WorkloadSpec struct {
	// Name labels the workload in results ("bimodal-64k", ...).
	Name string `json:"name"`
	// Batch is the per-micro-batch shape list. Its length fixes the
	// micro-batch count of every candidate built on the workload.
	Batch model.BatchSpec `json:"batch"`
}

// Spec constrains the autotuner's search. Empty axes are rejected by
// Validate — callers with a natural default (the Session front door, the
// helixtune CLI) fill them in before calling Run.
type Spec struct {
	// Methods are the schedules to consider; empty means every registered
	// method.
	Methods []sched.Method `json:"methods,omitempty"`
	// SeqLens are the fixed sequence lengths to tune for. May be empty when
	// Workloads is not.
	SeqLens []int `json:"seq_lens"`
	// Workloads are variable-length workloads to tune for: each crosses with
	// Stages and Methods (the micro-batch axes come from the workload
	// itself), and each gets its own best-method pick in Result.Best.
	Workloads []WorkloadSpec `json:"workloads,omitempty"`
	// Stages are the candidate pipeline sizes.
	Stages []int `json:"stages"`
	// MicroBatches are the candidate micro-batch counts per iteration; a 0
	// entry means the paper default m = 2p of the grid point's stages.
	MicroBatches []int `json:"micro_batches,omitempty"`
	// MicroBatchSizes are the candidate micro-batch sizes; empty means {1}.
	MicroBatchSizes []int `json:"micro_batch_sizes,omitempty"`
	// MemoryBudgetBytes is the per-GPU memory budget (model states included)
	// a configuration must fit in. Zero means the GPU's full capacity.
	MemoryBudgetBytes int64 `json:"memory_budget_bytes,omitempty"`
	// Objective ranks points: ObjectiveThroughput (default) or
	// ObjectiveLatencyPerToken.
	Objective string `json:"objective,omitempty"`
	// Budget is an early-stopping target in the objective's unit: the
	// stream stops as soon as a point reaches it (tokens/s >= Budget under
	// throughput, seconds/token <= Budget under latency), marking the
	// result StoppedEarly. Zero searches the whole grid.
	Budget float64 `json:"budget,omitempty"`
	// Workers bounds the simulation worker pool; zero picks a default.
	Workers int `json:"workers,omitempty"`
	// Cluster is an optional cluster topology. When set, every surviving
	// grid point additionally searches the Placements strategies: each
	// placement is simulated under the topology's link classes and the
	// point keeps its best placement's result.
	Cluster *cluster.Cluster `json:"cluster,omitempty"`
	// Placements are the placement strategies to search per grid point
	// ("contiguous", "roundrobin", "greedy"); empty means all three.
	// Requires Cluster.
	Placements []string `json:"placements,omitempty"`
	// Orders are the micro-batch execution-order policies to cross with
	// every workload candidate ("packed", "longest", "shortest",
	// "balanced"), so order, method and placement rank jointly. Empty keeps
	// each workload's own order. Requires Workloads.
	Orders []string `json:"orders,omitempty"`
	// Perturb optionally injects a fault/straggler perturbation (slow
	// device, degraded link class, compute jitter) into every placement
	// simulation, ranking configurations under the degraded cluster.
	// Requires Cluster.
	Perturb *cluster.Perturb `json:"perturb,omitempty"`
	// Sink optionally receives a progress event per evaluated survivor
	// (started/finished, worker id, duration). It is runtime plumbing, not
	// search identity: never serialized, and excluded from spec hashing.
	Sink obs.Sink `json:"-"`
}

// Validate reports an error when the spec cannot be searched.
func (s Spec) Validate() error {
	switch {
	case len(s.SeqLens) == 0 && len(s.Workloads) == 0:
		return fmt.Errorf("tune: no sequence lengths or workloads to search")
	case len(s.Stages) == 0:
		return fmt.Errorf("tune: no pipeline sizes to search")
	case s.MemoryBudgetBytes < 0:
		return fmt.Errorf("tune: negative memory budget %d", s.MemoryBudgetBytes)
	case s.Workers < 0:
		return fmt.Errorf("tune: negative worker count %d", s.Workers)
	case s.Budget < 0:
		return fmt.Errorf("tune: negative budget target %g", s.Budget)
	}
	switch s.Objective {
	case "", ObjectiveThroughput, ObjectiveLatencyPerToken:
	default:
		return fmt.Errorf("tune: unknown objective %q (want %q or %q)",
			s.Objective, ObjectiveThroughput, ObjectiveLatencyPerToken)
	}
	for _, seq := range s.SeqLens {
		if seq <= 0 {
			return fmt.Errorf("tune: non-positive sequence length %d", seq)
		}
	}
	for _, b := range s.MicroBatchSizes {
		if b <= 0 {
			return fmt.Errorf("tune: non-positive micro batch size %d", b)
		}
	}
	for _, m := range s.MicroBatches {
		if m < 0 {
			return fmt.Errorf("tune: negative micro batch count %d", m)
		}
	}
	if s.Cluster != nil {
		if err := s.Cluster.Validate(); err != nil {
			return err
		}
	}
	if len(s.Placements) > 0 && s.Cluster == nil {
		return fmt.Errorf("tune: placements given without a cluster topology")
	}
	if s.Perturb != nil {
		if s.Cluster == nil {
			return fmt.Errorf("tune: perturbation given without a cluster topology")
		}
		if err := s.Perturb.Validate(*s.Cluster); err != nil {
			return err
		}
	}
	for _, strategy := range s.Placements {
		if _, ok := cluster.StrategyByName(strategy); !ok {
			return fmt.Errorf("tune: unknown placement strategy %q", strategy)
		}
	}
	if len(s.Orders) > 0 && len(s.Workloads) == 0 {
		return fmt.Errorf("tune: micro-batch orders given without workloads to reorder")
	}
	for _, order := range s.Orders {
		if _, ok := model.OrderByName(order); !ok {
			return fmt.Errorf("tune: unknown micro-batch order %q (known: %v)", order, model.Orders())
		}
	}
	names := map[string]bool{}
	for i, w := range s.Workloads {
		if w.Name == "" {
			return fmt.Errorf("tune: workload %d has no name", i)
		}
		if names[w.Name] {
			return fmt.Errorf("tune: duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
		if err := w.Batch.Validate(); err != nil {
			return fmt.Errorf("tune: workload %q: %w", w.Name, err)
		}
	}
	return nil
}

// Candidate is one grid point of the search.
type Candidate struct {
	// Method is the pipeline parallelism.
	Method sched.Method `json:"method"`
	// SeqLen is the sequence length of every micro batch; on a workload
	// candidate it is the workload's longest sequence.
	SeqLen int `json:"seq_len"`
	// Stages is the pipeline size p.
	Stages int `json:"stages"`
	// MicroBatches is the micro-batch count m per iteration.
	MicroBatches int `json:"micro_batches"`
	// MicroBatchSize is the micro-batch size b; on a workload candidate it is
	// the workload's largest micro batch.
	MicroBatchSize int `json:"micro_batch_size"`
	// Workload names the variable-length workload the candidate runs, empty
	// on fixed-length candidates.
	Workload string `json:"workload,omitempty"`
	// Order is the micro-batch execution order of a workload candidate when
	// the spec crosses Orders; empty keeps the workload's own order.
	Order string `json:"order,omitempty"`
}

func (c Candidate) String() string {
	if c.Workload != "" {
		name := c.Workload
		if c.Order != "" {
			name += "/" + c.Order
		}
		return fmt.Sprintf("%s workload=%s p=%d m=%d",
			c.Method, name, c.Stages, c.MicroBatches)
	}
	return fmt.Sprintf("%s seq=%d p=%d m=%d b=%d",
		c.Method, c.SeqLen, c.Stages, c.MicroBatches, c.MicroBatchSize)
}

// Point is one evaluated (simulated) configuration.
type Point struct {
	Candidate
	// Placement names the winning placement strategy of a topology-aware
	// search and PlacementDevices its stage-to-device mapping (absent when
	// the spec has no cluster topology).
	Placement        string `json:"placement,omitempty"`
	PlacementDevices []int  `json:"placement_devices,omitempty"`
	// PadFraction is the padding share of a packed variable-length workload
	// (zero on fixed-length candidates and unpacked workloads).
	PadFraction float64 `json:"pad_fraction,omitempty"`
	// TokensPerIteration is the token count the candidate's iteration
	// processes (padded; the throughput numerator).
	TokensPerIteration int64 `json:"tokens_per_iteration"`
	// EstimatedPeakBytes is the memsim per-GPU peak estimate the point was
	// admitted under: peak reserved activation memory plus model states.
	EstimatedPeakBytes int64 `json:"estimated_peak_bytes"`
	// PeakBytes is the measured per-GPU peak: the simulator's largest stash
	// peak plus model states. The Pareto frontier orders by this.
	PeakBytes int64 `json:"peak_bytes"`
	// IterationSeconds is the simulated iteration makespan.
	IterationSeconds float64 `json:"iteration_seconds"`
	// TokensPerSecond is the simulated training throughput.
	TokensPerSecond float64 `json:"tokens_per_second"`
	// SecondsPerToken is the reciprocal latency reading of the same
	// simulation — what the latency_per_token objective ranks by.
	SecondsPerToken float64 `json:"seconds_per_token"`
	// BubbleFraction is the simulated bubble share of the iteration.
	BubbleFraction float64 `json:"bubble_fraction"`
}

// Result is the serializable outcome of one autotuner run.
type Result struct {
	// Model and Cluster label the tuned configuration.
	Model   string `json:"model"`
	Cluster string `json:"cluster"`
	// Topology names the cluster topology of a placement-aware search
	// (empty on flat-NIC runs).
	Topology string `json:"topology,omitempty"`
	// MemoryBudgetBytes is the per-GPU budget the search ran under.
	MemoryBudgetBytes int64 `json:"memory_budget_bytes"`
	// GridSize is the naive grid size: the product of the axis lengths.
	GridSize int `json:"grid_size"`
	// Evaluated counts the grid points that survived pruning and simulated
	// successfully.
	Evaluated int `json:"evaluated"`
	// Pruned counts discarded grid points per constraint (PruneGeometry,
	// PruneMemory, PruneBuild, PruneSim).
	Pruned map[string]int `json:"pruned"`
	// CostModelEvals counts the cost-model evaluations actually issued;
	// memoization keeps it strictly below GridSize on any real grid.
	CostModelEvals int `json:"cost_model_evals"`
	// Best is the highest-throughput feasible point per scenario — one per
	// sequence length in Spec.SeqLens order, then one per workload in
	// Spec.Workloads order; scenarios with no feasible point are absent.
	Best []Point `json:"best"`
	// Frontier is the throughput-versus-peak-memory Pareto frontier over all
	// evaluated points, ordered by ascending peak memory.
	Frontier []Point `json:"frontier"`
	// Points are all evaluated points in deterministic grid order.
	Points []Point `json:"points"`
	// StoppedEarly marks a run the Budget target cut short: the last point
	// met the threshold and the remaining grid never simulated.
	StoppedEarly bool `json:"stopped_early,omitempty"`
	// Errors records build/sim failures of pruned survivors.
	Errors []string `json:"errors,omitempty"`
}

// better ranks a over b under the spec's objective.
func (s Spec) better(a, b Point) bool {
	if s.Objective == ObjectiveLatencyPerToken {
		return a.SecondsPerToken < b.SecondsPerToken
	}
	return a.TokensPerSecond > b.TokensPerSecond
}

// budgetMet reports whether the point reaches the spec's early-stopping
// target; always false without one.
func (s Spec) budgetMet(p Point) bool {
	if s.Budget <= 0 {
		return false
	}
	if s.Objective == ObjectiveLatencyPerToken {
		return p.SecondsPerToken <= s.Budget
	}
	return p.TokensPerSecond >= s.Budget
}

// grid enumerates the candidate grid in deterministic order: the fixed-length
// block first (seqlen-major, then stages, micro batches, micro batch size,
// method — resolving the m = 2p default and deduplicating axis values while
// preserving order), then one block per workload crossed with stages and
// methods (a workload fixes its own micro-batch axes).
func (s Spec) grid(methods []sched.Method) []Candidate {
	seqLens := dedupe(s.SeqLens)
	stages := dedupe(s.Stages)
	microBatches := s.MicroBatches
	if len(microBatches) == 0 {
		microBatches = []int{0}
	}
	microBatches = dedupe(microBatches)
	sizes := s.MicroBatchSizes
	if len(sizes) == 0 {
		sizes = []int{1}
	}
	sizes = dedupe(sizes)

	seen := map[Candidate]bool{}
	out := make([]Candidate, 0, len(seqLens)*len(stages)*len(microBatches)*len(sizes)*len(methods))
	for _, seq := range seqLens {
		for _, p := range stages {
			for _, m := range microBatches {
				if m == 0 {
					m = 2 * p
				}
				for _, b := range sizes {
					for _, method := range methods {
						c := Candidate{Method: method, SeqLen: seq, Stages: p,
							MicroBatches: m, MicroBatchSize: b}
						if seen[c] {
							continue
						}
						seen[c] = true
						out = append(out, c)
					}
				}
			}
		}
	}
	orders := s.Orders
	if len(orders) == 0 {
		orders = []string{""}
	}
	for _, w := range s.Workloads {
		max := w.Batch.MaxShape()
		for _, p := range stages {
			for _, order := range orders {
				for _, method := range methods {
					c := Candidate{Method: method, Workload: w.Name, Order: order,
						SeqLen: max.S, Stages: p,
						MicroBatches: w.Batch.MicroBatches(), MicroBatchSize: max.B}
					if seen[c] {
						continue
					}
					seen[c] = true
					out = append(out, c)
				}
			}
		}
	}
	return out
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// stateBytes returns the per-GPU model-state bytes of the most loaded stage:
// per-stage parameter/optimizer state plus the embedding (doubled for
// HelixPipe, whose first stage holds both the input embedding and the tied
// LM head, section 4.6).
func stateBytes(m model.Config, cl costmodel.ClusterSpec, method sched.Method, stages int) int64 {
	states := m.ModelStateBytesPerStage(stages, cl.GPUsPerNode)
	embed := m.EmbeddingStateBytes(cl.GPUsPerNode)
	switch method {
	case sched.MethodHelix, sched.MethodHelixNaive, sched.MethodHelixNoRecompute:
		return states + 2*embed
	default:
		return states + embed
	}
}
