package tune

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
)

func bimodalWorkload(t *testing.T) WorkloadSpec {
	t.Helper()
	batch, err := model.SyntheticBatchSpec(model.DistBimodal, 24, 8, 64, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	return WorkloadSpec{Name: "bimodal", Batch: batch}
}

func TestWorkloadSpecValidate(t *testing.T) {
	wl := bimodalWorkload(t)
	good := Spec{Workloads: []WorkloadSpec{wl}, Stages: []int{2}}
	if err := good.Validate(); err != nil {
		t.Errorf("workload-only spec rejected: %v", err)
	}
	dup := Spec{Workloads: []WorkloadSpec{wl, wl}, Stages: []int{2}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate workload names accepted")
	}
	anon := Spec{Workloads: []WorkloadSpec{{Batch: wl.Batch}}, Stages: []int{2}}
	if err := anon.Validate(); err == nil {
		t.Error("unnamed workload accepted")
	}
	empty := Spec{Stages: []int{2}}
	if err := empty.Validate(); err == nil {
		t.Error("spec with neither seqlens nor workloads accepted")
	}
}

func TestWorkloadGridAndRun(t *testing.T) {
	wl := bimodalWorkload(t)
	spec := Spec{
		Methods:   []sched.Method{sched.Method1F1B, sched.MethodGPipe},
		SeqLens:   []int{32},
		Workloads: []WorkloadSpec{wl},
		Stages:    []int{2},
	}
	res, err := Run(model.TinyTest(), costmodel.H20Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 methods x (1 seqlen + 1 workload) x 1 stages.
	if res.GridSize != 4 {
		t.Errorf("grid size = %d, want 4", res.GridSize)
	}
	if res.Evaluated == 0 {
		t.Fatalf("nothing evaluated: pruned %v errors %v", res.Pruned, res.Errors)
	}
	// One best per scenario: the fixed seqlen first, the workload second.
	if len(res.Best) != 2 {
		t.Fatalf("best = %+v, want 2 scenarios", res.Best)
	}
	if res.Best[0].Workload != "" || res.Best[0].SeqLen != 32 {
		t.Errorf("first best should be the fixed-length scenario: %+v", res.Best[0])
	}
	if res.Best[1].Workload != "bimodal" {
		t.Errorf("second best should be the workload scenario: %+v", res.Best[1])
	}
	if res.Best[1].MicroBatches != wl.Batch.MicroBatches() {
		t.Errorf("workload best m = %d, want %d", res.Best[1].MicroBatches, wl.Batch.MicroBatches())
	}
	// The workload's cost book is shared across its methods: one evaluation
	// per shape key plus one per workload.
	if res.CostModelEvals != 2 {
		t.Errorf("cost model evals = %d, want 2 (one per scenario)", res.CostModelEvals)
	}
	// Rendering includes the workload name.
	if table := res.BestTable(); !strings.Contains(table, "bimodal") {
		t.Errorf("best table misses the workload name:\n%s", table)
	}
	for _, p := range res.Points {
		if p.Workload == "bimodal" {
			if row := p.CSVRow(); row[1] != "bimodal" {
				t.Errorf("CSV workload column = %q", row[1])
			}
		}
	}
}

// TestOrdersAxis checks the micro-batch ordering axis: orders cross with
// workload candidates (and only those), rank jointly with methods, and the
// order-dependent cost books are memoized per (workload, order).
func TestOrdersAxis(t *testing.T) {
	wl := bimodalWorkload(t)
	spec := Spec{
		Methods:   []sched.Method{sched.Method1F1B, sched.MethodGPipe},
		SeqLens:   []int{32},
		Workloads: []WorkloadSpec{wl},
		Stages:    []int{2},
		Orders:    []string{"packed", "longest", "shortest"},
	}
	res, err := Run(model.TinyTest(), costmodel.H20Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 methods x 1 seqlen + 2 methods x 1 workload x 3 orders.
	if res.GridSize != 8 {
		t.Errorf("grid size = %d, want 8", res.GridSize)
	}
	orders := map[string]bool{}
	for _, p := range res.Points {
		if p.Workload == "" {
			if p.Order != "" {
				t.Errorf("fixed-length point %s carries order %q", p.Candidate, p.Order)
			}
			continue
		}
		orders[p.Order] = true
		if row := p.CSVRow(); row[2] != p.Order {
			t.Errorf("CSV order column = %q, want %q", row[2], p.Order)
		}
	}
	for _, want := range spec.Orders {
		if !orders[want] {
			t.Errorf("no evaluated point for order %q (pruned %v, errors %v)",
				want, res.Pruned, res.Errors)
		}
	}
	// One cost book per shape key: the fixed shape plus one per order.
	if res.CostModelEvals != 4 {
		t.Errorf("cost model evals = %d, want 4", res.CostModelEvals)
	}
	// The workload's single best pick spans every order — order, method and
	// placement rank jointly instead of per-order winners.
	var workloadBest int
	for _, b := range res.Best {
		if b.Workload != "" {
			workloadBest++
		}
	}
	if workloadBest != 1 {
		t.Errorf("workload best picks = %d, want 1 across all orders", workloadBest)
	}

	bad := Spec{SeqLens: []int{32}, Stages: []int{2}, Orders: []string{"longest"}}
	if err := bad.Validate(); err == nil {
		t.Error("orders without workloads accepted")
	}
	unknown := Spec{Workloads: []WorkloadSpec{wl}, Stages: []int{2}, Orders: []string{"random"}}
	if err := unknown.Validate(); err == nil {
		t.Error("unknown order accepted")
	}
}

// TestSearchStreams checks the streaming Search surface directly: points
// arrive through the iterator in grid order, the accounting matches the
// collector, and prune outcomes surface as PruneErrors.
func TestSearchStreams(t *testing.T) {
	spec := Spec{
		Methods: []sched.Method{sched.Method1F1B, sched.MethodAdaPipe},
		SeqLens: []int{32, 64},
		Stages:  []int{2},
	}
	search, err := NewSearch(model.TinyTest(), costmodel.H20Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Point
	for p, err := range search.Points() {
		if err != nil {
			var pe *PruneError
			if !errors.As(err, &pe) {
				t.Fatalf("stream error is not a PruneError: %v", err)
			}
			continue
		}
		streamed = append(streamed, p)
	}
	res := search.Result()
	if len(streamed) != res.Evaluated {
		t.Errorf("streamed %d points, result says %d", len(streamed), res.Evaluated)
	}
	collected, err := Run(model.TinyTest(), costmodel.H20Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if collected.Evaluated != res.Evaluated || collected.GridSize != res.GridSize {
		t.Errorf("collector disagrees with stream: %+v vs %+v", collected, res)
	}
}

// TestWorkloadStageTrace checks the variable-length trace carries the
// largest per-micro-batch stashes, descending.
func TestWorkloadStageTrace(t *testing.T) {
	w := costmodel.NewWorkload(model.TinyTest(), costmodel.H20Cluster(), model.Shape{B: 1, S: 64})
	batch := model.BatchSpec{Shapes: []model.Shape{
		{B: 1, S: 16}, {B: 1, S: 64}, {B: 1, S: 32}, {B: 1, S: 64},
	}}
	c := Candidate{Method: sched.Method1F1B, Workload: "wl", SeqLen: 64,
		Stages: 2, MicroBatches: 4, MicroBatchSize: 1}
	tr := stageTrace(w, c, &batch)
	if len(tr.StashBytesPerMB) != tr.OutstandingMB {
		t.Fatalf("per-mb stashes = %d, want outstanding %d", len(tr.StashBytesPerMB), tr.OutstandingMB)
	}
	for i := 1; i < len(tr.StashBytesPerMB); i++ {
		if tr.StashBytesPerMB[i] > tr.StashBytesPerMB[i-1] {
			t.Error("per-mb stashes not descending")
		}
	}
	// The conservative window starts with the longest micro batch's stash.
	if tr.StashBytesPerMB[0] != layerStashBytes(w, model.Shape{B: 1, S: 64}, stashFull) {
		t.Errorf("largest stash %d mismatch", tr.StashBytesPerMB[0])
	}
}
