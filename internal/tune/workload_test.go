package tune

import (
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
)

func bimodalWorkload(t *testing.T) WorkloadSpec {
	t.Helper()
	batch, err := model.SyntheticBatchSpec(model.DistBimodal, 24, 8, 64, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	return WorkloadSpec{Name: "bimodal", Batch: batch}
}

func TestWorkloadSpecValidate(t *testing.T) {
	wl := bimodalWorkload(t)
	good := Spec{Workloads: []WorkloadSpec{wl}, Stages: []int{2}}
	if err := good.Validate(); err != nil {
		t.Errorf("workload-only spec rejected: %v", err)
	}
	dup := Spec{Workloads: []WorkloadSpec{wl, wl}, Stages: []int{2}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate workload names accepted")
	}
	anon := Spec{Workloads: []WorkloadSpec{{Batch: wl.Batch}}, Stages: []int{2}}
	if err := anon.Validate(); err == nil {
		t.Error("unnamed workload accepted")
	}
	empty := Spec{Stages: []int{2}}
	if err := empty.Validate(); err == nil {
		t.Error("spec with neither seqlens nor workloads accepted")
	}
}

func TestWorkloadGridAndRun(t *testing.T) {
	wl := bimodalWorkload(t)
	spec := Spec{
		Methods:   []sched.Method{sched.Method1F1B, sched.MethodGPipe},
		SeqLens:   []int{32},
		Workloads: []WorkloadSpec{wl},
		Stages:    []int{2},
	}
	res, err := Run(model.TinyTest(), costmodel.H20Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 methods x (1 seqlen + 1 workload) x 1 stages.
	if res.GridSize != 4 {
		t.Errorf("grid size = %d, want 4", res.GridSize)
	}
	if res.Evaluated == 0 {
		t.Fatalf("nothing evaluated: pruned %v errors %v", res.Pruned, res.Errors)
	}
	// One best per scenario: the fixed seqlen first, the workload second.
	if len(res.Best) != 2 {
		t.Fatalf("best = %+v, want 2 scenarios", res.Best)
	}
	if res.Best[0].Workload != "" || res.Best[0].SeqLen != 32 {
		t.Errorf("first best should be the fixed-length scenario: %+v", res.Best[0])
	}
	if res.Best[1].Workload != "bimodal" {
		t.Errorf("second best should be the workload scenario: %+v", res.Best[1])
	}
	if res.Best[1].MicroBatches != wl.Batch.MicroBatches() {
		t.Errorf("workload best m = %d, want %d", res.Best[1].MicroBatches, wl.Batch.MicroBatches())
	}
	// The workload's cost book is shared across its methods: one evaluation
	// per shape key plus one per workload.
	if res.CostModelEvals != 2 {
		t.Errorf("cost model evals = %d, want 2 (one per scenario)", res.CostModelEvals)
	}
	// Rendering includes the workload name.
	if table := res.BestTable(); !strings.Contains(table, "bimodal") {
		t.Errorf("best table misses the workload name:\n%s", table)
	}
	for _, p := range res.Points {
		if p.Workload == "bimodal" {
			if row := p.CSVRow(); row[1] != "bimodal" {
				t.Errorf("CSV workload column = %q", row[1])
			}
		}
	}
}

// TestWorkloadStageTrace checks the variable-length trace carries the
// largest per-micro-batch stashes, descending.
func TestWorkloadStageTrace(t *testing.T) {
	w := costmodel.NewWorkload(model.TinyTest(), costmodel.H20Cluster(), model.Shape{B: 1, S: 64})
	batch := model.BatchSpec{Shapes: []model.Shape{
		{B: 1, S: 16}, {B: 1, S: 64}, {B: 1, S: 32}, {B: 1, S: 64},
	}}
	c := Candidate{Method: sched.Method1F1B, Workload: "wl", SeqLen: 64,
		Stages: 2, MicroBatches: 4, MicroBatchSize: 1}
	tr := stageTrace(w, c, &batch)
	if len(tr.StashBytesPerMB) != tr.OutstandingMB {
		t.Fatalf("per-mb stashes = %d, want outstanding %d", len(tr.StashBytesPerMB), tr.OutstandingMB)
	}
	for i := 1; i < len(tr.StashBytesPerMB); i++ {
		if tr.StashBytesPerMB[i] > tr.StashBytesPerMB[i-1] {
			t.Error("per-mb stashes not descending")
		}
	}
	// The conservative window starts with the longest micro batch's stash.
	if tr.StashBytesPerMB[0] != layerStashBytes(w, model.Shape{B: 1, S: 64}, stashFull) {
		t.Errorf("largest stash %d mismatch", tr.StashBytesPerMB[0])
	}
}
