package tune

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
)

// a800Spec is the acceptance configuration: the paper's A800 testbed under
// a 64 GB per-GPU budget.
func a800Spec() Spec {
	return Spec{
		SeqLens:           []int{32768, 65536, 131072},
		Stages:            []int{2, 4, 8},
		MemoryBudgetBytes: 64 << 30,
	}
}

func TestAutotuneA800Budget(t *testing.T) {
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), a800Spec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("expected a non-empty Pareto frontier on the A800 64GB budget")
	}
	if len(res.Best) == 0 {
		t.Fatal("expected best-per-seqlen picks")
	}
	// No returned configuration may exceed the budget by its memsim
	// estimate — the feasibility guarantee of the pruning phase.
	for _, set := range [][]Point{res.Points, res.Best, res.Frontier} {
		for _, p := range set {
			if p.EstimatedPeakBytes > res.MemoryBudgetBytes {
				t.Errorf("%s: memsim peak %d exceeds budget %d",
					p.Candidate, p.EstimatedPeakBytes, res.MemoryBudgetBytes)
			}
			if p.PeakBytes > res.MemoryBudgetBytes {
				t.Errorf("%s: measured peak %d exceeds budget %d",
					p.Candidate, p.PeakBytes, res.MemoryBudgetBytes)
			}
		}
	}
	// Long sequences at small pipeline sizes must actually be pruned on
	// this budget: the search is not a no-op.
	if res.Pruned[PruneMemory] == 0 {
		t.Error("expected memory-budget pruning on a 64GB A800 budget")
	}
}

func TestAutotuneMemoizationBeatsNaiveGrid(t *testing.T) {
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), a800Spec())
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance criterion: the memoized search issues strictly fewer
	// cost-model evaluations than the naive grid size. Cost books depend
	// only on the micro-batch shape, so the method x stages cross product
	// shares them.
	if res.CostModelEvals >= res.GridSize {
		t.Errorf("memoization ineffective: %d cost-model evals on a grid of %d",
			res.CostModelEvals, res.GridSize)
	}
	if res.CostModelEvals == 0 {
		t.Error("expected at least one cost-model evaluation")
	}
	if max := len(a800Spec().SeqLens); res.CostModelEvals > max {
		t.Errorf("cost-model evals %d exceed the %d distinct micro-batch shapes",
			res.CostModelEvals, max)
	}
}

func TestAutotuneFrontierIsPareto(t *testing.T) {
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), a800Spec())
	if err != nil {
		t.Fatal(err)
	}
	f := res.Frontier
	for i := 1; i < len(f); i++ {
		if f[i].PeakBytes <= f[i-1].PeakBytes {
			t.Errorf("frontier not ascending in peak memory at %d: %d <= %d",
				i, f[i].PeakBytes, f[i-1].PeakBytes)
		}
		if f[i].TokensPerSecond <= f[i-1].TokensPerSecond {
			t.Errorf("frontier not ascending in throughput at %d: %g <= %g",
				i, f[i].TokensPerSecond, f[i-1].TokensPerSecond)
		}
	}
	// No evaluated point may dominate a frontier point.
	for _, p := range res.Points {
		for _, q := range f {
			if p.PeakBytes <= q.PeakBytes && p.TokensPerSecond > q.TokensPerSecond {
				t.Errorf("%s dominates frontier point %s", p.Candidate, q.Candidate)
			}
		}
	}
}

func TestAutotuneBestPerSeqLen(t *testing.T) {
	spec := a800Spec()
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, p := range res.Best {
		if seen[p.SeqLen] {
			t.Errorf("duplicate best pick for seqlen %d", p.SeqLen)
		}
		seen[p.SeqLen] = true
		// The pick must beat every other evaluated point of its seqlen.
		for _, q := range res.Points {
			if q.SeqLen == p.SeqLen && q.TokensPerSecond > p.TokensPerSecond {
				t.Errorf("seq=%d: %s beats the best pick %s", p.SeqLen, q.Candidate, p.Candidate)
			}
		}
	}
}

func TestAutotuneTinyBudgetPrunesEverything(t *testing.T) {
	spec := a800Spec()
	spec.MemoryBudgetBytes = 1 << 30 // smaller than the model states alone
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 0 {
		t.Errorf("expected no feasible points under a 1GB budget, got %d", res.Evaluated)
	}
	if len(res.Frontier) != 0 || len(res.Best) != 0 {
		t.Error("expected empty frontier and best picks under a 1GB budget")
	}
	if res.Pruned[PruneMemory]+res.Pruned[PruneGeometry] != res.GridSize {
		t.Errorf("pruned counts %v do not account for the whole grid %d", res.Pruned, res.GridSize)
	}
}

func TestAutotuneGeometryPruning(t *testing.T) {
	// 16 layers are not divisible by 3 stages: every method x seqlen cell
	// of that column must land in the geometry count.
	spec := Spec{SeqLens: []int{32768}, Stages: []int{3, 4}}
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want := len(sched.Methods())
	if res.Pruned[PruneGeometry] != want {
		t.Errorf("geometry pruned = %d, want %d", res.Pruned[PruneGeometry], want)
	}
}

func TestAutotuneDefaultsAndDedupe(t *testing.T) {
	spec := Spec{
		Methods: []sched.Method{sched.Method1F1B, sched.Method1F1B},
		SeqLens: []int{32768, 32768},
		Stages:  []int{4, 4},
	}
	res, err := Run(model.Model3B(), costmodel.H20Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.GridSize != 1 {
		t.Errorf("duplicated axes should dedupe to one grid point, got %d", res.GridSize)
	}
	if res.Evaluated != 1 {
		t.Errorf("evaluated = %d, want 1", res.Evaluated)
	}
	// m defaulted to 2p.
	if got := res.Points[0].MicroBatches; got != 8 {
		t.Errorf("micro batches defaulted to %d, want 8", got)
	}
	if got := res.Points[0].MicroBatchSize; got != 1 {
		t.Errorf("micro batch size defaulted to %d, want 1", got)
	}
}

func TestAutotuneCanonicalizesMethodNames(t *testing.T) {
	run := func(name string) *Result {
		res, err := Run(model.Model3B(), costmodel.A800Cluster(), Spec{
			Methods:           []sched.Method{sched.Method(name)},
			SeqLens:           []int{65536},
			Stages:            []int{4},
			MemoryBudgetBytes: 64 << 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	canonical, lower := run("HelixPipe"), run("helixpipe")
	if len(lower.Points) != 1 || len(canonical.Points) != 1 {
		t.Fatalf("want one point each, got %d/%d", len(canonical.Points), len(lower.Points))
	}
	if lower.Points[0].Method != sched.MethodHelix {
		t.Errorf("lowercase spelling not canonicalized: %q", lower.Points[0].Method)
	}
	// The case-variant spelling must hit the same per-method memory
	// profile, not fall through to the 1F1B default.
	if lower.Points[0].EstimatedPeakBytes != canonical.Points[0].EstimatedPeakBytes {
		t.Errorf("estimate differs by spelling: %d vs %d",
			lower.Points[0].EstimatedPeakBytes, canonical.Points[0].EstimatedPeakBytes)
	}
	// Case variants of one method dedupe to one grid point.
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), Spec{
		Methods: []sched.Method{"1F1B", "1f1b"},
		SeqLens: []int{32768},
		Stages:  []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GridSize != 1 {
		t.Errorf("case variants should dedupe to one grid point, got %d", res.GridSize)
	}
}

func TestAutotuneSpecValidation(t *testing.T) {
	cl := costmodel.H20Cluster()
	bad := []Spec{
		{},
		{SeqLens: []int{4096}},
		{SeqLens: []int{-1}, Stages: []int{2}},
		{SeqLens: []int{4096}, Stages: []int{2}, MemoryBudgetBytes: -1},
		{SeqLens: []int{4096}, Stages: []int{2}, Workers: -1},
		{SeqLens: []int{4096}, Stages: []int{2}, MicroBatchSizes: []int{0}},
		{SeqLens: []int{4096}, Stages: []int{2}, MicroBatches: []int{-2}},
		{SeqLens: []int{4096}, Stages: []int{2}, Budget: -1},
		{SeqLens: []int{4096}, Stages: []int{2}, Objective: "goodput"},
	}
	for i, spec := range bad {
		if _, err := Run(model.Model3B(), cl, spec); err == nil {
			t.Errorf("spec %d: expected a validation error", i)
		}
	}
	if _, err := Run(model.Model3B(), cl, Spec{
		SeqLens: []int{4096}, Stages: []int{2},
		Methods: []sched.Method{"no-such-method"},
	}); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("unknown method: got %v", err)
	}
}

func TestAutotuneBuildErrorsAreCountedNotFatal(t *testing.T) {
	// AdaPipe with m < p is unbuildable in this repo's scheduler; the run
	// must count it and keep the other method's report.
	spec := Spec{
		Methods:      []sched.Method{sched.MethodAdaPipe, sched.Method1F1B},
		SeqLens:      []int{8192},
		Stages:       []int{4},
		MicroBatches: []int{2},
	}
	res, err := Run(model.Model3B(), costmodel.H20Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == 0 {
		t.Fatal("expected surviving evaluations")
	}
	total := res.Evaluated
	for _, n := range res.Pruned {
		total += n
	}
	if total != res.GridSize {
		t.Errorf("evaluated %d + pruned %v != grid %d", res.Evaluated, res.Pruned, res.GridSize)
	}
}

func TestResultSerializationAndTables(t *testing.T) {
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), Spec{
		SeqLens:           []int{32768},
		Stages:            []int{4},
		MemoryBudgetBytes: 64 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Result
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.GridSize != res.GridSize || len(decoded.Frontier) != len(res.Frontier) {
		t.Error("JSON round trip lost fields")
	}
	if !strings.Contains(string(data), "pruned") {
		t.Error("serialized result misses the pruned counts")
	}

	if s := res.Summary(); !strings.Contains(s, "grid") {
		t.Errorf("summary misses accounting: %q", s)
	}
	if s := res.FrontierTable(); !strings.Contains(s, "method") {
		t.Errorf("frontier table misses header: %q", s)
	}
	if s := res.BestTable(); !strings.Contains(s, "tokens/s") {
		t.Errorf("best table misses header: %q", s)
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, res.Points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Points)+1 {
		t.Errorf("CSV rows = %d, want %d", len(lines), len(res.Points)+1)
	}
	if !strings.HasPrefix(lines[0], "method,workload,order,seq_len") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestStageTraceProfiles(t *testing.T) {
	w := costmodel.NewWorkload(model.Model3B(), costmodel.A800Cluster(),
		model.Shape{B: 1, S: 65536})
	base := Candidate{SeqLen: 65536, Stages: 4, MicroBatches: 8, MicroBatchSize: 1}

	trace := func(m sched.Method) int64 {
		c := base
		c.Method = m
		tr := stageTrace(w, c, nil)
		return tr.StashBytes * int64(tr.OutstandingMB) * int64(tr.LayersPerStage)
	}
	// Table 2 ordering: HelixPipe's recomputation-without-attention stash is
	// far below 1F1B's full stash, which is below GPipe's all-outstanding.
	if !(trace(sched.MethodHelix) < trace(sched.Method1F1B)) {
		t.Error("helix stash volume should undercut 1F1B")
	}
	if !(trace(sched.Method1F1B) < trace(sched.MethodGPipe)) {
		t.Error("1F1B stash volume should undercut GPipe")
	}
	if !(trace(sched.MethodHelix) < trace(sched.MethodHelixNoRecompute)) {
		t.Error("recomputation must shrink the helix stash")
	}
	// ZB1P carries the deferred embedding-gradient residents.
	c := base
	c.Method = sched.MethodZB1P
	if tr := stageTrace(w, c, nil); len(tr.ResidentBytes) != c.Stages-1 {
		t.Errorf("ZB1P residents = %d, want %d", len(tr.ResidentBytes), c.Stages-1)
	}
}

func TestAutotuneObjectiveLatency(t *testing.T) {
	spec := a800Spec()
	spec.Objective = ObjectiveLatencyPerToken
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		want := p.IterationSeconds / float64(p.TokensPerIteration)
		if diff := p.SecondsPerToken - want; diff > want*1e-9 || diff < -want*1e-9 {
			t.Errorf("%s: seconds/token %g != iteration/tokens %g", p.Candidate, p.SecondsPerToken, want)
		}
	}
	// The best pick per scenario minimizes seconds per token.
	for _, p := range res.Best {
		for _, q := range res.Points {
			if q.SeqLen == p.SeqLen && q.Workload == p.Workload && q.SecondsPerToken < p.SecondsPerToken {
				t.Errorf("seq=%d: %s undercuts the best pick %s", p.SeqLen, q.Candidate, p.Candidate)
			}
		}
	}
	// The frontier still ascends in the objective as peak memory grows.
	for i := 1; i < len(res.Frontier); i++ {
		if res.Frontier[i].SecondsPerToken >= res.Frontier[i-1].SecondsPerToken {
			t.Errorf("frontier not descending in latency at %d", i)
		}
	}
}

func TestAutotuneBudgetEarlyStop(t *testing.T) {
	full, err := Run(model.Model3B(), costmodel.A800Cluster(), a800Spec())
	if err != nil {
		t.Fatal(err)
	}
	if full.StoppedEarly {
		t.Fatal("full run must not carry the early-stop marker")
	}
	// Any feasible configuration clears one token per second: the stream
	// must stop at its first point.
	spec := a800Spec()
	spec.Budget = 1
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Fatal("expected the early-stop marker on a trivially met target")
	}
	if res.Evaluated == 0 || res.Evaluated >= full.Evaluated {
		t.Errorf("early stop evaluated %d points, full run %d", res.Evaluated, full.Evaluated)
	}
	// An unreachable target searches the whole grid without the marker.
	spec.Budget = 1e18
	res, err = Run(model.Model3B(), costmodel.A800Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedEarly || res.Evaluated != full.Evaluated {
		t.Errorf("unreachable target: stopped=%v evaluated=%d, want full %d",
			res.StoppedEarly, res.Evaluated, full.Evaluated)
	}
}

func TestAutotuneBudgetDirectionFollowsObjective(t *testing.T) {
	// Under the latency objective the target is an upper bound: a generous
	// seconds-per-token allowance stops at the first point, an impossible
	// one never does.
	spec := a800Spec()
	spec.Objective = ObjectiveLatencyPerToken
	spec.Budget = 1e6
	res, err := Run(model.Model3B(), costmodel.A800Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Error("a 1e6 s/token allowance should stop the search immediately")
	}
	spec.Budget = 1e-12
	res, err = Run(model.Model3B(), costmodel.A800Cluster(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedEarly {
		t.Error("a 1e-12 s/token target is unreachable; the marker must stay clear")
	}
}
