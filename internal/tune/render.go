package tune

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Summary renders the search accounting — grid size, evaluated points, and
// the "why pruned" count per constraint — as one line per fact.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model %s on %s, budget %.1f GB per GPU\n",
		r.Model, r.Cluster, gb(r.MemoryBudgetBytes))
	fmt.Fprintf(&b, "grid %d points, evaluated %d, cost-model evaluations %d\n",
		r.GridSize, r.Evaluated, r.CostModelEvals)
	for _, reason := range []string{PruneGeometry, PruneMemory, PruneBuild, PruneSim, PruneMeasured, PrunePlacement} {
		if n := r.Pruned[reason]; n > 0 {
			fmt.Fprintf(&b, "pruned %d (%s)\n", n, reason)
		}
	}
	if r.StoppedEarly {
		b.WriteString("stopped early: budget target met\n")
	}
	return b.String()
}

// BestTable renders the best-throughput pick per scenario (sequence length
// or variable-length workload) as an aligned ASCII table.
func (r *Result) BestTable() string {
	return pointTable("best configuration per scenario", r.Best)
}

// FrontierTable renders the throughput-versus-peak-memory Pareto frontier
// as an aligned ASCII table, ascending in peak memory.
func (r *Result) FrontierTable() string {
	return pointTable("throughput vs peak-memory Pareto frontier", r.Frontier)
}

func pointTable(title string, points []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s\n", title)
	if len(points) == 0 {
		b.WriteString("(no feasible points)\n")
		return b.String()
	}
	placed := false
	for _, p := range points {
		if p.Placement != "" {
			placed = true
		}
	}
	fmt.Fprintf(&b, "%-22s %-14s %-4s %-4s %-3s %-12s %-10s %-10s %-12s",
		"method", "scenario", "pp", "m", "b", "tokens/s", "bubble %", "peak GB", "est peak GB")
	if placed {
		fmt.Fprintf(&b, " %-10s", "placement")
	}
	b.WriteByte('\n')
	for _, p := range points {
		scenario := fmt.Sprintf("seq=%d", p.SeqLen)
		if p.Workload != "" {
			scenario = p.Workload
			if p.Order != "" {
				scenario += "/" + p.Order
			}
		}
		fmt.Fprintf(&b, "%-22s %-14s %-4d %-4d %-3d %-12.0f %-10.1f %-10.1f %-12.1f",
			p.Method, scenario, p.Stages, p.MicroBatches, p.MicroBatchSize,
			p.TokensPerSecond, p.BubbleFraction*100, gb(p.PeakBytes), gb(p.EstimatedPeakBytes))
		if placed {
			fmt.Fprintf(&b, " %-10s", p.Placement)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func gb(bytes int64) float64 { return float64(bytes) / (1 << 30) }

// CSVHeader returns the column names of Point.CSVRow.
func CSVHeader() []string {
	return []string{
		"method", "workload", "order", "seq_len", "stages", "micro_batches", "micro_batch_size",
		"placement", "placement_devices", "pad_fraction",
		"tokens_per_second", "seconds_per_token", "iteration_seconds", "bubble_fraction",
		"peak_bytes", "estimated_peak_bytes",
	}
}

// CSVRow renders the point as one CSV row matching CSVHeader. The placement
// columns are empty without a cluster topology, pad_fraction on fixed-length
// candidates.
func (p Point) CSVRow() []string {
	var devices []string
	for _, d := range p.PlacementDevices {
		devices = append(devices, fmt.Sprintf("%d", d))
	}
	padFraction := ""
	if p.PadFraction > 0 {
		padFraction = fmt.Sprintf("%g", p.PadFraction)
	}
	return []string{
		string(p.Method), p.Workload, p.Order,
		fmt.Sprintf("%d", p.SeqLen), fmt.Sprintf("%d", p.Stages),
		fmt.Sprintf("%d", p.MicroBatches), fmt.Sprintf("%d", p.MicroBatchSize),
		p.Placement, strings.Join(devices, ";"), padFraction,
		fmt.Sprintf("%g", p.TokensPerSecond), fmt.Sprintf("%g", p.SecondsPerToken),
		fmt.Sprintf("%g", p.IterationSeconds),
		fmt.Sprintf("%g", p.BubbleFraction),
		fmt.Sprintf("%d", p.PeakBytes), fmt.Sprintf("%d", p.EstimatedPeakBytes),
	}
}

// WriteCSV writes a header plus one row per point.
func WriteCSV(w io.Writer, points []Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader()); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write(p.CSVRow()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
