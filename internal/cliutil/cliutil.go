// Package cliutil is the shared front door of the command-line tools. Every
// tool describes its run as one helixpipe.ExperimentSpec: -spec loads a
// saved spec file, explicitly-set flags become overrides layered onto it
// (flag defaults only fill fields the spec leaves unset), and -emit-spec
// writes back the fully-resolved spec so the exact run can be reproduced
// from one artifact. The package also centralizes the flag-value parsing the
// tools used to duplicate — method lists with the registry "help" listing,
// comma-separated integer lists — so errors are formatted one way
// everywhere.
package cliutil

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	helixpipe "repro"
)

// SpecFlags holds the shared -spec / -emit-spec flag values.
type SpecFlags struct {
	// Path is the -spec value: an experiment spec JSON file to load.
	Path string
	// EmitPath is the -emit-spec value: where to write the fully-resolved
	// spec ("-" for stdout).
	EmitPath string
}

// RegisterSpecFlags registers -spec and -emit-spec on the default flag set.
// Call before flag.Parse.
func RegisterSpecFlags() *SpecFlags {
	sf := &SpecFlags{}
	flag.StringVar(&sf.Path, "spec", "",
		"experiment spec JSON file; explicitly-set flags override its fields")
	flag.StringVar(&sf.EmitPath, "emit-spec", "",
		"write the fully-resolved experiment spec to this path ('-' for stdout) for exact reproduction")
	return sf
}

// Load parses the -spec file, or returns an empty spec when none was given.
// Parse errors are fatal: a mistyped spec must not silently run defaults.
func (sf *SpecFlags) Load() *helixpipe.ExperimentSpec {
	if sf.Path == "" {
		return &helixpipe.ExperimentSpec{}
	}
	spec, err := helixpipe.ParseSpecFile(sf.Path)
	if err != nil {
		log.Fatal(err)
	}
	return spec
}

// EmitResolved writes the fully-resolved spec to the -emit-spec path when
// one was given: every default filled, every name canonicalized, so the
// emitted file re-resolves to an identical RunSet. Call after layering the
// flags onto the spec.
func (sf *SpecFlags) EmitResolved(spec *helixpipe.ExperimentSpec) {
	if sf.EmitPath == "" {
		return
	}
	resolved, err := spec.Resolved()
	if err != nil {
		log.Fatal(err)
	}
	if sf.EmitPath == "-" {
		if err := helixpipe.WriteSpec(os.Stdout, resolved); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := helixpipe.WriteSpecFile(sf.EmitPath, resolved); err != nil {
		log.Fatal(err)
	}
}

// Overlay layers explicitly-set command-line flags onto a loaded spec: a
// flag the user typed always overrides the spec's field, and a flag default
// only fills a field the spec leaves at its zero value. Construct it after
// flag.Parse.
type Overlay struct {
	set map[string]bool
}

// NewOverlay records which flags were explicitly set on the command line.
func NewOverlay() *Overlay {
	o := &Overlay{set: map[string]bool{}}
	flag.Visit(func(f *flag.Flag) { o.set[f.Name] = true })
	return o
}

// Has reports whether the named flag was explicitly set.
func (o *Overlay) Has(name string) bool { return o.set[name] }

// String layers a string flag onto a spec field.
func (o *Overlay) String(name, value string, dst *string) {
	if o.set[name] || *dst == "" {
		*dst = value
	}
}

// Int layers an integer flag onto a spec field.
func (o *Overlay) Int(name string, value int, dst *int) {
	if o.set[name] || *dst == 0 {
		*dst = value
	}
}

// Uint64 layers a uint64 flag onto a spec field.
func (o *Overlay) Uint64(name string, value uint64, dst *uint64) {
	if o.set[name] || *dst == 0 {
		*dst = value
	}
}

// Float64 layers a float64 flag onto a spec field.
func (o *Overlay) Float64(name string, value float64, dst *float64) {
	if o.set[name] || *dst == 0 {
		*dst = value
	}
}

// Bool layers a boolean flag onto a spec field; only an explicitly-set flag
// overrides (false is a meaningful spec value).
func (o *Overlay) Bool(name string, value bool, dst *bool) {
	if o.set[name] {
		*dst = value
	}
}

// Workload layers a tool's variable-length workload flags onto the spec.
// Nothing happens unless -dist was given or the spec already carries a
// workload. Only explicitly-set flags override — an unset -minseq/-maxseq
// keeps the spec's own derivation (max_seq from seq_len, min_seq from
// max_seq), which coincides with the tools' flag defaults on a flag-only
// run. An explicit -dist replaces a spec's pinned shapes, which would
// otherwise win over the distribution. Tools without one of these flags
// pass its zero value; an unregistered flag is never "set", so the value
// is ignored.
func (o *Overlay) Workload(spec *helixpipe.ExperimentSpec,
	dist string, docs, minSeq, maxSeq int, seed uint64, order string) {
	if dist == "" && spec.Workload == nil {
		return
	}
	if spec.Workload == nil {
		spec.Workload = &helixpipe.SpecWorkload{}
	}
	w := spec.Workload
	if o.Has("dist") {
		w.Shapes = nil
	}
	o.String("dist", dist, &w.Dist)
	if o.Has("docs") {
		w.Docs = docs
	}
	if o.Has("minseq") {
		w.MinSeq = minSeq
	}
	if o.Has("maxseq") {
		w.MaxSeq = maxSeq
	}
	if o.Has("dist-seed") {
		w.Seed = seed
	}
	if o.Has("order") {
		w.Order = order
	}
}

// Output hands the spec's output block (or a detached empty one) to the
// tool to layer its output flags onto, then attaches it to the spec only
// when any selection is set — so -emit-spec never writes an empty output
// block. The returned block is what the tool should read its output
// decisions from.
func (o *Overlay) Output(spec *helixpipe.ExperimentSpec,
	apply func(*helixpipe.SpecOutput)) *helixpipe.SpecOutput {
	out := spec.Output
	if out == nil {
		out = &helixpipe.SpecOutput{}
	}
	apply(out)
	if *out != (helixpipe.SpecOutput{}) {
		spec.Output = out
	}
	return out
}

// Ints layers a comma-separated integer-list flag onto a spec axis.
func (o *Overlay) Ints(name, value string, dst *[]int) {
	if o.set[name] || len(*dst) == 0 {
		*dst = ParseInts(name, value)
	}
}

// Strings layers a comma-separated string-list flag onto a spec axis.
func (o *Overlay) Strings(name, value string, dst *[]string) {
	if o.set[name] || len(*dst) == 0 {
		*dst = SplitList(value)
	}
}

// ParseInts parses a comma-separated integer list flag; a malformed entry
// is fatal with the flag's name.
func ParseInts(name, s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			log.Fatalf("-%s: %q is not an integer", name, part)
		}
		out = append(out, v)
	}
	return out
}

// SplitList splits a comma-separated list flag, trimming blanks.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// MethodsArg expands a -method flag value into canonical registry method
// names: a comma-separated list, with "all" passed through for the spec
// layer to expand. "help" — or any unknown name — prints the registry's
// method listing and exits 2. An empty value returns nil (the spec
// default); a non-empty value that names nothing (e.g. "-method ,") is
// fatal rather than silently meaning "all".
func MethodsArg(arg string) []string {
	if arg == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.EqualFold(part, "all") {
			out = append(out, "all")
			continue
		}
		m, ok := helixpipe.LookupMethod(part)
		if !ok {
			FatalUnknownMethod(part)
		}
		out = append(out, string(m))
	}
	if len(out) == 0 {
		log.Fatal("-method: no method given")
	}
	return out
}

// FatalUnknownMethod prints the registry's method listing — the shared
// "-method help" / unknown-method path of every tool — and exits 2.
func FatalUnknownMethod(name string) {
	fatalMethodListing(name, true)
}

// FatalUnknownMethodSingle is FatalUnknownMethod for tools that run
// exactly one method: the listing omits the "all" row.
func FatalUnknownMethodSingle(name string) {
	fatalMethodListing(name, false)
}

func fatalMethodListing(name string, withAll bool) {
	if !strings.EqualFold(name, "help") {
		fmt.Fprintf(os.Stderr, "unknown method %q; the registered methods are:\n\n", name)
	}
	fmt.Fprint(os.Stderr, helixpipe.MethodListing())
	if withAll {
		fmt.Fprintf(os.Stderr, "  %-22s run every registered method\n", "all")
	}
	os.Exit(2)
}
