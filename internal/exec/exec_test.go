package exec

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// tinySetup builds the tiny model, batches, and the cost book shared by the
// parity tests: p=2 stages, m=4 micro batches, L=4 layers.
func tinySetup(t *testing.T) (*nn.Model, []nn.MicroBatch, sched.Config, sched.Costs) {
	t.Helper()
	cfg := model.TinyTest()
	m := nn.NewModel(cfg, 2024)
	const p, mbs, b, s = 2, 4, 1, 8
	batches := make([]nn.MicroBatch, mbs)
	for i := range batches {
		batches[i] = nn.SyntheticBatch(cfg, b, s, uint64(i)+1)
	}
	return m, batches, sched.Config{Stages: p, MicroBatches: mbs, Layers: cfg.Layers}, sched.UnitCosts(0)
}

// assertGradsEqual demands bit-identical gradients and loss between an
// executed plan and the reference.
func assertGradsEqual(t *testing.T, name string, refLoss float64, ref *nn.Grads, res *Result) {
	t.Helper()
	if res.Loss != refLoss {
		t.Errorf("%s: loss %.9f != reference %.9f", name, res.Loss, refLoss)
	}
	refNamed := ref.Named()
	for pname, g := range res.Grads.Named() {
		if d := tensor.MaxAbsDiff(g, refNamed[pname]); d != 0 {
			t.Errorf("%s: gradient %s differs from reference by %g", name, pname, d)
		}
	}
}

// TestGradientParityAcrossSchedules is the centerpiece semantics experiment
// (paper section 4.1): every pipeline schedule — 1F1B, GPipe, ZB1P, AdaPipe
// with recomputation, interleaved, HelixPipe naive and two-fold FILO, with
// and without recomputation-without-attention — must produce gradients
// bit-identical to the single-device reference.
func TestGradientParityAcrossSchedules(t *testing.T) {
	m, batches, cfg, costs := tinySetup(t)
	refLoss, refGrads := nn.ReferenceStep(m, batches)

	builders := map[string]func() (*sched.Plan, error){
		"1F1B":  func() (*sched.Plan, error) { return sched.OneFOneB(cfg, costs) },
		"GPipe": func() (*sched.Plan, error) { return sched.GPipe(cfg, costs) },
		"ZB1P":  func() (*sched.Plan, error) { return sched.ZB1P(cfg, costs) },
		"ZB2P":  func() (*sched.Plan, error) { return sched.ZB2P(cfg, costs) },
		"AdaPipe-recompute": func() (*sched.Plan, error) {
			full := costs.SegStash[0] + costs.SegStash[1] + costs.SegStash[2]
			return sched.AdaPipe(cfg, costs, int64(cfg.Layers/cfg.Stages)*full) // forces recompute on stage 0
		},
		"Interleaved": func() (*sched.Plan, error) { return sched.Interleaved(cfg, costs, 2) },
		"Helix-naive": func() (*sched.Plan, error) {
			return core.Build(cfg, costs, core.Options{Fold: 1, Recompute: true})
		},
		"Helix-twofold": func() (*sched.Plan, error) {
			return core.Build(cfg, costs, core.Options{Fold: 2, Recompute: true})
		},
		"Helix-norecompute": func() (*sched.Plan, error) {
			return core.Build(cfg, costs, core.Options{Fold: 2, Recompute: false})
		},
	}
	for name, build := range builders {
		plan, err := build()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		res, err := Run(plan, m, batches)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		assertGradsEqual(t, name, refLoss, refGrads, res)
	}
}

// TestParityLargerPipeline repeats the parity check at p=4 with 8 micro
// batches and 8 layers for the main contenders.
func TestParityLargerPipeline(t *testing.T) {
	cfgM := model.TinyTest()
	cfgM.Layers = 8
	m := nn.NewModel(cfgM, 77)
	const p, mbs = 4, 8
	batches := make([]nn.MicroBatch, mbs)
	for i := range batches {
		batches[i] = nn.SyntheticBatch(cfgM, 1, 6, uint64(i)+10)
	}
	cfg := sched.Config{Stages: p, MicroBatches: mbs, Layers: cfgM.Layers}
	costs := sched.UnitCosts(0)
	refLoss, refGrads := nn.ReferenceStep(m, batches)

	plans := map[string]*sched.Plan{}
	var err error
	if plans["1F1B"], err = sched.OneFOneB(cfg, costs); err != nil {
		t.Fatal(err)
	}
	if plans["Helix"], err = core.Build(cfg, costs, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if plans["ZB1P"], err = sched.ZB1P(cfg, costs); err != nil {
		t.Fatal(err)
	}
	for name, plan := range plans {
		res, err := Run(plan, m, batches)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertGradsEqual(t, name, refLoss, refGrads, res)
	}
}

// TestTrainingTrajectoryParity trains the same initial model for several
// Adam steps under the HelixPipe executor and under the single-device
// reference; the loss trajectories must match exactly, demonstrating the
// paper's "same computation semantics and convergence" claim end to end.
func TestTrainingTrajectoryParity(t *testing.T) {
	cfg := model.TinyTest()
	const p, mbs, steps = 2, 4, 6
	scfg := sched.Config{Stages: p, MicroBatches: mbs, Layers: cfg.Layers}
	costs := sched.UnitCosts(0)
	plan, err := core.Build(scfg, costs, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	mHelix := nn.NewModel(cfg, 5)
	mRef := nn.NewModel(cfg, 5)
	optHelix := nn.NewAdam(1e-3)
	optRef := nn.NewAdam(1e-3)
	for step := 0; step < steps; step++ {
		batches := make([]nn.MicroBatch, mbs)
		for i := range batches {
			batches[i] = nn.SyntheticBatch(cfg, 1, 8, uint64(step*mbs+i)+1)
		}
		res, err := Run(plan, mHelix, batches)
		if err != nil {
			t.Fatal(err)
		}
		refLoss, refGrads := nn.ReferenceStep(mRef, batches)
		if res.Loss != refLoss {
			t.Fatalf("step %d: helix loss %.9f != reference %.9f", step, res.Loss, refLoss)
		}
		optHelix.Step(mHelix, res.Grads)
		optRef.Step(mRef, refGrads)
	}
	// Final parameters must be identical too.
	refParams := mRef.NamedParams()
	for name, par := range mHelix.NamedParams() {
		if d := tensor.MaxAbsDiff(par, refParams[name]); d != 0 {
			t.Errorf("parameter %s diverged by %g after %d steps", name, d, steps)
		}
	}
}

// TestRunErrors exercises the argument validation.
func TestRunErrors(t *testing.T) {
	m, batches, cfg, costs := tinySetup(t)
	plan, err := sched.OneFOneB(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, m, batches[:1]); err == nil {
		t.Error("mismatched batch count must error")
	}
	otherCfg := model.TinyTest()
	otherCfg.Layers = 8
	other := nn.NewModel(otherCfg, 1)
	if _, err := Run(plan, other, batches); err == nil {
		t.Error("mismatched layer count must error")
	}
	bad := &sched.Plan{Method: "broken", Stages: 1, MicroBatches: 1, Layers: 4, Ops: make([][]sched.Op, 2)}
	if _, err := Run(bad, m, batches); err == nil {
		t.Error("invalid plan must error")
	}
}
