package exec

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sched"
)

// varlenSetup builds the tiny model and a mixed-length iteration: p=2 stages,
// m=4 micro batches whose sequence lengths differ per micro batch.
func varlenSetup(t *testing.T) (*nn.Model, []nn.MicroBatch, sched.Config, sched.Costs) {
	t.Helper()
	cfg := model.TinyTest()
	m := nn.NewModel(cfg, 31)
	shapes := []model.Shape{{B: 1, S: 4}, {B: 2, S: 12}, {B: 1, S: 8}, {B: 1, S: 16}}
	batch := model.BatchSpec{Shapes: shapes}
	batches := make([]nn.MicroBatch, len(shapes))
	scales := make([]float64, len(shapes))
	for i, sh := range shapes {
		batches[i] = nn.SyntheticBatch(cfg, sh.B, sh.S, uint64(i)+1)
		scales[i] = float64(sh.Tokens()) / float64(shapes[0].Tokens())
	}
	scfg := sched.Config{Stages: 2, MicroBatches: len(shapes), Layers: cfg.Layers, Batch: batch}
	return m, batches, scfg, sched.UnitBatchCosts(0, scales)
}

// TestVariableLengthGradientParity is the acceptance experiment for
// variable-length workloads: on a mixed-length batch set, every schedule —
// most importantly helix and 1F1B — must produce loss and gradients
// bit-identical to the sequential single-device reference.
func TestVariableLengthGradientParity(t *testing.T) {
	m, batches, cfg, costs := varlenSetup(t)
	refLoss, refGrads := nn.ReferenceStep(m, batches)

	builders := map[string]func() (*sched.Plan, error){
		"1F1B":  func() (*sched.Plan, error) { return sched.OneFOneB(cfg, costs) },
		"GPipe": func() (*sched.Plan, error) { return sched.GPipe(cfg, costs) },
		"ZB1P":  func() (*sched.Plan, error) { return sched.ZB1P(cfg, costs) },
		"ZB2P":  func() (*sched.Plan, error) { return sched.ZB2P(cfg, costs) },
		"AdaPipe-recompute": func() (*sched.Plan, error) {
			worst := costs.MB(1)
			full := worst.SegStash[0] + worst.SegStash[1] + worst.SegStash[2]
			return sched.AdaPipe(cfg, costs, int64(cfg.Layers/cfg.Stages)*full)
		},
		"Interleaved": func() (*sched.Plan, error) { return sched.Interleaved(cfg, costs, 2) },
		"Helix-naive": func() (*sched.Plan, error) {
			return core.Build(cfg, costs, core.Options{Fold: 1, Recompute: true})
		},
		"Helix-twofold": func() (*sched.Plan, error) {
			return core.Build(cfg, costs, core.Options{Fold: 2, Recompute: true})
		},
		"Helix-norecompute": func() (*sched.Plan, error) {
			return core.Build(cfg, costs, core.Options{Fold: 2, Recompute: false})
		},
	}
	for name, build := range builders {
		plan, err := build()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := sched.Validate(plan); err != nil {
			t.Errorf("%s: invalid variable-length plan: %v", name, err)
			continue
		}
		res, err := Run(plan, m, batches)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		assertGradsEqual(t, name, refLoss, refGrads, res)
	}
}

// TestVariableLengthShapeMismatch checks the executor rejects batches whose
// tensors do not match the plan's declared per-micro-batch shapes.
func TestVariableLengthShapeMismatch(t *testing.T) {
	m, batches, cfg, costs := varlenSetup(t)
	plan, err := sched.OneFOneB(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	// Swap two differently-shaped batches: counts still match, shapes do not.
	swapped := append([]nn.MicroBatch(nil), batches...)
	swapped[0], swapped[3] = swapped[3], swapped[0]
	_, err = Run(plan, m, swapped)
	if err == nil || !strings.Contains(err.Error(), "expects") {
		t.Errorf("shape mismatch not rejected: %v", err)
	}
}
