package trace

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Perfetto appends a traced simulation result to the trace builder as one
// process: one thread lane per pipeline stage, a complete event per
// executed op, and a flow event pair (send → recv) linking every
// cross-stage transfer. The output loads in ui.perfetto.dev (or
// chrome://tracing); span times convert from the simulator's seconds to
// the format's microseconds.
//
// Flow arrows need anchors on both lanes, so — unlike the ASCII/SVG
// renderers, which drop them — recv waits are emitted as slices on the
// receiving lane (category "recv", spanning wait-begin to arrival) and
// async sends as zero-or-launch-duration slices on the sender.
func Perfetto(t *obs.Trace, res *sim.Result, pid int, name string) {
	t.ProcessName(pid, name)
	t.ProcessSortIndex(pid, pid)
	for s := 0; s < res.Stages; s++ {
		t.ThreadName(pid, s, fmt.Sprintf("stage %d", s))
	}

	// A send and its recv pair on (tag, sender, receiver) — the simulator's
	// own message identity. Ids are assigned to sends in span order
	// (deterministic for a deterministic sim), scoped per process so
	// multi-cell traces never cross-link.
	type pairKey struct {
		tag      sched.Tag
		from, to int
	}
	flowIDs := make(map[pairKey]uint64)
	for _, sp := range res.Spans {
		if sp.Op.Kind == sched.KSend {
			k := pairKey{sp.Op.Tag, sp.Stage, sp.Op.Peer}
			if _, ok := flowIDs[k]; !ok {
				flowIDs[k] = uint64(pid)<<32 | uint64(len(flowIDs)+1)
			}
		}
	}

	for _, sp := range res.Spans {
		ts := sp.Start * 1e6
		dur := (sp.End - sp.Start) * 1e6
		op := sp.Op
		switch op.Kind {
		case sched.KSend:
			args := map[string]any{
				"tag":      op.Tag.String(),
				"peer":     op.Peer,
				"bytes":    op.Bytes,
				"blocking": op.Blocking,
			}
			t.Complete(pid, sp.Stage, "send "+op.Tag.String(), "send", ts, dur, args)
			if id, ok := flowIDs[pairKey{op.Tag, sp.Stage, op.Peer}]; ok {
				t.FlowStart(pid, sp.Stage, "xfer "+op.Tag.String(), "transfer", ts, id)
			}
		case sched.KRecv:
			args := map[string]any{"tag": op.Tag.String(), "peer": op.Peer}
			t.Complete(pid, sp.Stage, "recv "+op.Tag.String(), "recv", ts, dur, args)
			if id, ok := flowIDs[pairKey{op.Tag, op.Peer, sp.Stage}]; ok {
				// Bind the arrow head at the arrival edge, inside the recv
				// slice (bp:"e" attaches to the enclosing slice).
				t.FlowEnd(pid, sp.Stage, "xfer "+op.Tag.String(), "transfer", sp.End*1e6, id)
			}
		default:
			t.Complete(pid, sp.Stage, perfettoName(op), perfettoCat(op), ts, dur,
				map[string]any{"layer": layerLabel(op), "seg": op.Seg.String(), "mb": op.MB})
		}
	}
}

// perfettoName labels a compute slice: the op class plus micro batch, with
// the layer target — short enough to read at sweep zoom, unique enough to
// search.
func perfettoName(op sched.Op) string {
	return fmt.Sprintf("%s mb%d %s", opClass(op), op.MB, layerLabel(op))
}

// perfettoCat buckets compute ops into searchable categories.
func perfettoCat(op sched.Op) string {
	switch op.Kind {
	case sched.KForward:
		return "forward"
	case sched.KBackwardB:
		return "backward"
	case sched.KBackwardW:
		return "weight-grad"
	case sched.KRecompute:
		return "recompute"
	default:
		return "other"
	}
}

func layerLabel(op sched.Op) string {
	switch op.Layer {
	case sched.LayerEmbed:
		return "embed"
	case sched.LayerHead:
		return "head"
	default:
		return fmt.Sprintf("l%d.%s", op.Layer, op.Seg)
	}
}
