package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// commPlan runs a traced simulation with visible communication (Figure 6's
// setting), so the trace carries send/recv spans to pair into flows.
func commPlan(t *testing.T) *sim.Result {
	t.Helper()
	cfg := sched.Config{Stages: 2, MicroBatches: 4, Layers: 4}
	plan, err := core.Build(cfg, sched.UnitCosts(1.0), core.Options{Fold: 2, Recompute: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(plan, sim.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// perfettoEvents converts a traced result and decodes the serialized trace
// back into its event list.
func perfettoEvents(t *testing.T, res *sim.Result, pid int) []map[string]any {
	t.Helper()
	tr := obs.NewTrace()
	Perfetto(tr, res, pid, "test cell")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	return doc.TraceEvents
}

func TestPerfettoValidJSONAndTimestamps(t *testing.T) {
	res := commPlan(t)
	events := perfettoEvents(t, res, 1)

	lanes := map[float64]bool{}
	for i, e := range events {
		ph, _ := e["ph"].(string)
		if ph == "M" {
			continue
		}
		ts, ok := e["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d: ts %v is missing or negative", i, e["ts"])
		}
		if dur, ok := e["dur"].(float64); ok && dur < 0 {
			t.Fatalf("event %d: negative dur %v", i, dur)
		}
		if ph == "X" {
			lanes[e["tid"].(float64)] = true
		}
	}
	// One lane per stage.
	if len(lanes) != res.Stages {
		t.Fatalf("got slices on %d lanes, want one per stage (%d)", len(lanes), res.Stages)
	}
	// Thread-name metadata covers every stage lane.
	named := map[float64]bool{}
	for _, e := range events {
		if e["ph"] == "M" && e["name"] == "thread_name" {
			named[e["tid"].(float64)] = true
		}
	}
	for lane := range lanes {
		if !named[lane] {
			t.Errorf("stage lane %v has no thread_name metadata", lane)
		}
	}
}

func TestPerfettoFlowPairing(t *testing.T) {
	res := commPlan(t)

	// The traced plan must actually communicate, or the test is vacuous.
	sends := 0
	for _, sp := range res.Spans {
		if sp.Op.Kind == sched.KSend {
			sends++
		}
	}
	if sends == 0 {
		t.Fatal("traced plan has no send ops; pick a config with communication")
	}

	events := perfettoEvents(t, res, 3)
	type flow struct {
		lane float64
		ts   float64
	}
	starts := map[string]flow{}
	ends := map[string]flow{}
	for _, e := range events {
		id, _ := e["id"].(string)
		switch e["ph"] {
		case "s":
			if _, dup := starts[id]; dup {
				t.Fatalf("flow %s started twice", id)
			}
			starts[id] = flow{e["tid"].(float64), e["ts"].(float64)}
		case "f":
			if bp, _ := e["bp"].(string); bp != "e" {
				t.Errorf("flow end %s: bp = %q, want \"e\" (bind to enclosing slice)", id, bp)
			}
			if _, dup := ends[id]; dup {
				t.Fatalf("flow %s ended twice", id)
			}
			ends[id] = flow{e["tid"].(float64), e["ts"].(float64)}
		}
	}
	if len(starts) != sends {
		t.Fatalf("%d flow starts for %d send spans", len(starts), sends)
	}
	// Rebuild the expected send-lane → recv-lane pairs from the spans.
	type lanePair struct{ from, to int }
	want := map[lanePair]bool{}
	for _, sp := range res.Spans {
		if sp.Op.Kind == sched.KSend {
			want[lanePair{sp.Stage, sp.Op.Peer}] = true
		}
	}
	for id, s := range starts {
		e, ok := ends[id]
		if !ok {
			t.Fatalf("send flow %s has no recv end", id)
		}
		if !want[lanePair{int(s.lane), int(e.lane)}] {
			t.Errorf("flow %s links lane %v to lane %v, which no send span justifies", id, s.lane, e.lane)
		}
		if e.ts < s.ts {
			t.Errorf("flow %s arrives at %v before it starts at %v", id, e.ts, s.ts)
		}
	}
	for id := range ends {
		if _, ok := starts[id]; !ok {
			t.Fatalf("recv flow %s has no send start", id)
		}
	}
}

func TestPerfettoMultiProcessIDsDisjoint(t *testing.T) {
	res := commPlan(t)
	tr := obs.NewTrace()
	Perfetto(tr, res, 1, "cell a")
	Perfetto(tr, res, 2, "cell b")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	byPid := map[float64]map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e["ph"] == "s" {
			pid := e["pid"].(float64)
			if byPid[pid] == nil {
				byPid[pid] = map[string]bool{}
			}
			byPid[pid][e["id"].(string)] = true
		}
	}
	if len(byPid) != 2 {
		t.Fatalf("flows on %d processes, want 2", len(byPid))
	}
	for id := range byPid[1] {
		if byPid[2][id] {
			t.Fatalf("flow id %s shared across processes; ids must be pid-scoped", id)
		}
	}
}
