// Package trace renders simulated pipeline timelines as ASCII art and SVG,
// reproducing the schedule diagrams of the paper (Figures 2, 5, 6 and 7):
// per-stage lanes, forward cells labelled with micro-batch numbers, shaded
// backward cells, and distinct tones for pre-attention, attention and
// post-attention work.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
)

// cellRune returns the lane character for an op: digits are the micro batch
// of forward work, letters mark backward (b/w), recompute (r) and stalls.
func cellRune(op sched.Op, kind string) byte {
	switch kind {
	case "F":
		return byte('0' + op.MB%10)
	case "B":
		return 'b'
	case "W":
		return 'w'
	case "R":
		return 'r'
	case "S":
		return '>'
	default:
		return '.'
	}
}

func opClass(op sched.Op) string {
	switch op.Kind {
	case sched.KForward:
		return "F"
	case sched.KBackwardB:
		return "B"
	case sched.KBackwardW:
		return "W"
	case sched.KRecompute:
		return "R"
	case sched.KSend:
		return "S"
	default:
		return "."
	}
}

// ASCII renders the span timeline as one text lane per stage. width is the
// number of character columns the full iteration is scaled to.
func ASCII(res *sim.Result, width int) string {
	if width <= 0 {
		width = 100
	}
	lanes := make([][]byte, res.Stages)
	for s := range lanes {
		lanes[s] = []byte(strings.Repeat(" ", width))
	}
	scale := float64(width) / res.IterationSeconds
	for _, sp := range res.Spans {
		if sp.End <= sp.Start {
			continue
		}
		class := opClass(sp.Op)
		if class == "." {
			continue
		}
		if class == "S" && !sp.Op.Blocking {
			continue // async sends do not occupy the lane
		}
		lo := int(math.Floor(sp.Start * scale))
		hi := int(math.Ceil(sp.End * scale))
		if hi > width {
			hi = width
		}
		if lo == hi && lo < width {
			hi = lo + 1
		}
		ch := cellRune(sp.Op, class)
		for x := lo; x < hi; x++ {
			lanes[sp.Stage][x] = ch
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %d stages, %d ops, iteration %.3g s\n",
		res.Method, res.Stages, len(res.Spans), res.IterationSeconds)
	for s, lane := range lanes {
		fmt.Fprintf(&b, "P%-2d |%s|\n", s, string(lane))
	}
	b.WriteString("     digits: forward (micro batch)  b: backward-B  w: backward-W  r: recompute  >: blocking send\n")
	return b.String()
}

// segFill returns the SVG fill color of a span, shaded for backward work,
// with the paper's three-tone scheme for pre/attention/post.
func segFill(op sched.Op) string {
	base := map[model.Segment]string{
		model.SegPre:  "#4878cf", // blue
		model.SegAttn: "#e8a33d", // orange
		model.SegPost: "#6acc65", // green
	}
	backward := map[model.Segment]string{
		model.SegPre:  "#2c4a80",
		model.SegAttn: "#96691f",
		model.SegPost: "#3f7a3c",
	}
	switch op.Kind {
	case sched.KForward:
		if op.Layer < 0 {
			return "#999999"
		}
		return base[op.Seg]
	case sched.KRecompute:
		return "#c5c5c5"
	case sched.KBackwardB, sched.KBackwardW:
		if op.Layer < 0 {
			return "#666666"
		}
		return backward[op.Seg]
	case sched.KSend:
		return "#cc4444"
	default:
		return "#eeeeee"
	}
}

// SVG renders the span timeline as a scalable vector image.
func SVG(res *sim.Result, width int) string {
	if width <= 0 {
		width = 1200
	}
	const laneH, gap, top, left = 28, 6, 30, 46
	height := top + res.Stages*(laneH+gap) + 30
	scale := float64(width-left-10) / res.IterationSeconds
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="14">%s — iteration %.4g s</text>`+"\n", left, res.Method, res.IterationSeconds)
	for s := 0; s < res.Stages; s++ {
		y := top + s*(laneH+gap)
		fmt.Fprintf(&b, `<text x="4" y="%d" font-size="12">P%d</text>`+"\n", y+laneH-9, s)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#f4f4f4"/>`+"\n", left, y, width-left-10, laneH)
	}
	spans := append([]sim.Span(nil), res.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, sp := range spans {
		if sp.End <= sp.Start {
			continue
		}
		if sp.Op.Kind == sched.KRecv || (sp.Op.Kind == sched.KSend && !sp.Op.Blocking) {
			continue
		}
		x := left + sp.Start*scale
		w := (sp.End - sp.Start) * scale
		if w < 0.5 {
			w = 0.5
		}
		y := top + sp.Stage*(laneH+gap)
		fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" stroke="#ffffff" stroke-width="0.4">`,
			x, y, w, laneH, segFill(sp.Op))
		fmt.Fprintf(&b, `<title>%v [%0.4g, %0.4g]</title></rect>`+"\n", sp.Op, sp.Start, sp.End)
		if sp.Op.Kind == sched.KForward && sp.Op.Layer >= 0 && w > 8 {
			fmt.Fprintf(&b, `<text x="%.2f" y="%d" font-size="10" fill="#ffffff">%d</text>`+"\n",
				x+w/2-3, y+laneH/2+4, sp.Op.MB)
		}
	}
	legendY := top + res.Stages*(laneH+gap) + 14
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">blue: pre-attention · orange: attention · green: post-attention · dark: backward · grey: recompute/embed/head</text>`+"\n", left, legendY)
	b.WriteString("</svg>\n")
	return b.String()
}

// GanttRow summarises one stage for textual reports.
type GanttRow struct {
	Stage       int
	Busy        float64
	Idle        float64
	Wait        float64
	CommStall   float64
	PeakStashGB float64
}

// Summary tabulates per-stage utilisation of a result.
func Summary(res *sim.Result) []GanttRow {
	rows := make([]GanttRow, res.Stages)
	for s := 0; s < res.Stages; s++ {
		rows[s] = GanttRow{
			Stage:       s,
			Busy:        res.BusySeconds[s],
			Idle:        res.IdleSeconds[s],
			Wait:        res.WaitSeconds[s],
			CommStall:   res.CommStallSeconds[s],
			PeakStashGB: float64(res.PeakStashBytes[s]) / (1 << 30),
		}
	}
	return rows
}
