package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

func figurePlan(t *testing.T) *sim.Result {
	t.Helper()
	// Figure 2's setting: 4 micro batches, 8 layers, 4 stages, 1:3:2 ratio.
	cfg := sched.Config{Stages: 4, MicroBatches: 4, Layers: 8}
	plan, err := core.Build(cfg, sched.UnitCosts(0).ZeroCommCosts(), core.Options{Fold: 1, Recompute: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(plan, sim.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestASCIIRendering(t *testing.T) {
	res := figurePlan(t)
	out := ASCII(res, 120)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 lanes + legend.
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
	for s := 1; s <= 4; s++ {
		if !strings.HasPrefix(lines[s], "P") {
			t.Errorf("lane %d missing stage prefix: %q", s, lines[s])
		}
		if len(lines[s]) < 100 {
			t.Errorf("lane %d too short", s)
		}
	}
	// Forward cells for all four micro batches must appear somewhere.
	for _, d := range []string{"0", "1", "2", "3"} {
		if !strings.Contains(out, d) {
			t.Errorf("micro batch %s missing from timeline", d)
		}
	}
	if !strings.Contains(out, "b") || !strings.Contains(out, "w") {
		t.Error("backward cells missing from timeline")
	}
}

func TestASCIIDefaultWidth(t *testing.T) {
	res := figurePlan(t)
	if out := ASCII(res, 0); !strings.Contains(out, "P0") {
		t.Error("default width rendering broken")
	}
}

func TestSVGRendering(t *testing.T) {
	res := figurePlan(t)
	svg := SVG(res, 1000)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, want := range []string{"HelixPipe-naive", "<rect", "pre-attention", "P3"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// All three segment tones must be used.
	for _, color := range []string{"#4878cf", "#e8a33d", "#6acc65"} {
		if !strings.Contains(svg, color) {
			t.Errorf("SVG missing segment color %s", color)
		}
	}
	if out := SVG(res, 0); !strings.Contains(out, "<svg") {
		t.Error("default width SVG broken")
	}
}

func TestSummary(t *testing.T) {
	res := figurePlan(t)
	rows := Summary(res)
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Busy <= 0 {
			t.Errorf("stage %d: busy must be positive", r.Stage)
		}
		if r.PeakStashGB < 0 {
			t.Errorf("stage %d: negative stash", r.Stage)
		}
	}
}

// TestBlockingSendsVisible verifies that naive FILO's blocking sends show up
// in the ASCII lanes (the communication delay of Figure 6a) once real
// communication costs are enabled.
func TestBlockingSendsVisible(t *testing.T) {
	cfg := sched.Config{Stages: 2, MicroBatches: 2, Layers: 2}
	plan, err := core.Build(cfg, sched.UnitCosts(0.8), core.Options{Fold: 1, Recompute: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(plan, sim.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ASCII(res, 150), ">") {
		t.Error("blocking sends should be visible in the naive FILO timeline")
	}
}
