package costmodel

import "repro/internal/model"

// This file reproduces the closed-form pipeline-bubble analysis of paper
// Table 2. The formulas are expressed with the actual pass times of the cost
// model rather than the paper's "backward = 2x forward" approximation, and
// degenerate to the paper's exact expressions when that approximation holds.
// The discrete-event simulator measures the same quantities dynamically; the
// Table 2 experiment cross-checks the two.

// BubbleAnalysis summarises one schedule's analytic bubble time per
// iteration and the activation memory of the most loaded stage.
type BubbleAnalysis struct {
	// Method names the schedule ("1F1B", "ZB1P", ...).
	Method string
	// BubbleSeconds is the pipeline bubble time per training iteration.
	BubbleSeconds float64
	// PeakActivationBytes is the per-GPU activation memory of the most
	// loaded pipeline stage.
	PeakActivationBytes int64
}

// Bubble1F1B returns the 1F1B bubble per Equation 1:
// (p-1) * (F + B + W) * L/p, which equals 3(p-1)(t_pre+t_attn+t_post)L/p
// under the backward = 2x forward approximation.
func (w Workload) Bubble1F1B(stages int) float64 {
	perLayer := w.LayerTime(model.Forward) + w.LayerTime(model.BackwardB) + w.LayerTime(model.BackwardW)
	return float64(stages-1) * perLayer * float64(w.Model.Layers) / float64(stages)
}

// BubbleZB1P returns the ZB1P bubble per Equation 3:
// (p-1) * (F_layer + B_attn) * L/p, i.e. (p-1)(t_pre + 3 t_attn + t_post)L/p
// under the 2x approximation: delaying backward-W can remove the pre/post
// backward work from the bubble but never the non-parameterized attention.
func (w Workload) BubbleZB1P(stages int) float64 {
	perLayer := w.LayerTime(model.Forward) + w.SegmentTime(model.SegAttn, model.BackwardB)
	return float64(stages-1) * perLayer * float64(w.Model.Layers) / float64(stages)
}

// BubbleHelixNaive returns the naive-FILO HelixPipe bubble of section 4.5:
// (p-1) * (F + B + W of pre+post only) = 3(p-1)(t_pre + t_post). Attention
// is executed in parallel across stages and leaves the bubble entirely; the
// bubble is also independent of the layer count.
func (w Workload) BubbleHelixNaive(stages int) float64 {
	perUnit := w.PrePostTime(model.Forward) + w.PrePostTime(model.BackwardB) + w.PrePostTime(model.BackwardW)
	return float64(stages-1) * perUnit
}

// BubbleHelixTwoFold returns the two-fold FILO bubble: twice the naive
// bubble, the price of executing two micro batches per slot to hide
// communication (section 4.5).
func (w Workload) BubbleHelixTwoFold(stages int) float64 {
	return 2 * w.BubbleHelixNaive(stages)
}

// BubbleHelixRecompute returns the two-fold FILO bubble with recomputation
// without attention: 8(p-1)(t_pre+t_post) in the paper's approximation —
// the two-fold bubble plus the recomputed pre/post forward passes.
func (w Workload) BubbleHelixRecompute(stages int) float64 {
	recompute := 2 * float64(stages-1) * w.PrePostTime(model.Forward)
	return w.BubbleHelixTwoFold(stages) + recompute
}

// AnalyzeTable2 returns the paper's Table 2 for this workload: analytic
// bubble time and peak activation memory for 1F1B, ZB1P and HelixPipe
// (two-fold FILO with recomputation), using m micro batches and the given
// pipeline size.
func (w Workload) AnalyzeTable2(stages, microBatches int) []BubbleAnalysis {
	sp := w.seqPar()
	return []BubbleAnalysis{
		{
			Method:              "1F1B",
			BubbleSeconds:       w.Bubble1F1B(stages),
			PeakActivationBytes: w.Model.ActivationBytes1F1B(w.Shape, stages, 0, sp),
		},
		{
			Method:              "ZB1P",
			BubbleSeconds:       w.BubbleZB1P(stages),
			PeakActivationBytes: w.Model.ActivationBytesZB1P(w.Shape, stages, sp),
		},
		{
			Method:              "HelixPipe",
			BubbleSeconds:       w.BubbleHelixRecompute(stages),
			PeakActivationBytes: w.Model.ActivationBytesHelix(w.Shape, stages, microBatches, sp),
		},
	}
}

// ComponentShare holds the normalized execution-time share of the six layer
// phases of paper Figure 3 for one sequence length.
type ComponentShare struct {
	SeqLen  int
	PreFwd  float64
	AttnFwd float64
	PostFwd float64
	PreBwd  float64
	AttnBwd float64
	PostBwd float64
}

// ComponentProfile reproduces paper Figure 3: the share of one transformer
// layer's forward+backward execution time spent in each phase, for the given
// sequence lengths. The paper profiles a single A800 GPU with b=1, h=4096;
// pass the corresponding workload (SkipSPComm is forced on, matching the
// single-GPU setting).
func ComponentProfile(m model.Config, cl ClusterSpec, seqLens []int) []ComponentShare {
	out := make([]ComponentShare, 0, len(seqLens))
	for _, s := range seqLens {
		w := Workload{Model: m, Cluster: cl, Shape: model.Shape{B: 1, S: s}, SeqPar: 1, SkipSPComm: true}
		preF := w.SegmentTime(model.SegPre, model.Forward)
		attnF := w.SegmentTime(model.SegAttn, model.Forward)
		postF := w.SegmentTime(model.SegPost, model.Forward)
		preB := w.SegmentTime(model.SegPre, model.BackwardB) + w.SegmentTime(model.SegPre, model.BackwardW)
		attnB := w.SegmentTime(model.SegAttn, model.BackwardB)
		postB := w.SegmentTime(model.SegPost, model.BackwardB) + w.SegmentTime(model.SegPost, model.BackwardW)
		total := preF + attnF + postF + preB + attnB + postB
		out = append(out, ComponentShare{
			SeqLen: s,
			PreFwd: preF / total, AttnFwd: attnF / total, PostFwd: postF / total,
			PreBwd: preB / total, AttnBwd: attnB / total, PostBwd: postB / total,
		})
	}
	return out
}

// OverlapReport quantifies the section 5.3 overlap rule for the two-fold
// FILO schedule: communication is hidden iff the attention computation
// behind it is at least as long as the per-layer p2p transfer.
type OverlapReport struct {
	SeqLen           int
	PrePostSeconds   float64 // forward time of combined pre+post per layer
	AttentionSeconds float64 // forward time of attention per layer
	CommSeconds      float64 // one boundary p2p (two activations)
	FullyOverlapped  bool
}

// OverlapProfile reproduces paper Figure 9 for the given workload across
// sequence lengths: decoupled per-layer compute times and the estimated
// p2p time of the two-fold FILO boundary transfer.
func OverlapProfile(m model.Config, cl ClusterSpec, seqLens []int) []OverlapReport {
	out := make([]OverlapReport, 0, len(seqLens))
	for _, s := range seqLens {
		w := NewWorkload(m, cl, model.Shape{B: 1, S: s})
		attn := w.SegmentTime(model.SegAttn, model.Forward)
		comm := w.P2PTime(w.HelixAttnPostBytes())
		out = append(out, OverlapReport{
			SeqLen:           s,
			PrePostSeconds:   w.PrePostTime(model.Forward),
			AttentionSeconds: attn,
			CommSeconds:      comm,
			FullyOverlapped:  attn >= comm,
		})
	}
	return out
}
