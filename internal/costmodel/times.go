package costmodel

import (
	"fmt"

	"repro/internal/model"
)

// CausalFactor is the fraction of the dense 4bhs^2 attention FLOPs that a
// causal (autoregressive) flash-attention kernel actually executes: the
// score matrix is lower-triangular, halving the work. Paper Table 1 counts
// the dense volume by convention; published wall-clock attention times (the
// paper's Figures 3 and 9) reflect the causal kernel, so timing applies this
// factor while the accounting layer keeps the paper's convention.
const CausalFactor = 0.5

// LinkSpec prices the interconnect a stage's intra-node sequence-parallel
// collectives traverse: the placed node's real link class instead of the
// cluster-wide NVLink assumption. The zero value means "unplaced" and keeps
// the flat ClusterSpec NVLink pricing. It is comparable, so it participates
// in Workload-keyed memoization.
type LinkSpec struct {
	// Class names the interconnect ("nvlink", "pcie", ...); informational.
	Class string
	// GBps is the unidirectional bandwidth in GB/s.
	GBps float64
	// LatencySec is the per-collective base latency in seconds.
	LatencySec float64
}

// Workload binds a model configuration to a cluster and a micro-batch shape.
// One pipeline stage occupies one full node and the activation tensors are
// sequence-parallel across the node's GPUs (SeqPar = GPUsPerNode = 8 in all
// paper experiments). All times are in seconds and describe the whole stage
// (node), not a single GPU.
//
// The Link, GPU and ComputeFactor fields resolve the workload to one placed
// stage of a topology: collectives price against the placed node's intra
// link, compute against the placed device's spec, and every duration
// stretches by the stage's perturbation factor. Their zero values reproduce
// the flat cluster-global pricing bit-exactly, so unplaced workloads are
// unaffected. The struct stays comparable — placed fields are part of the
// cost-book memo key.
type Workload struct {
	// Model is the transformer being trained.
	Model model.Config
	// Cluster is the testbed.
	Cluster ClusterSpec
	// Shape is the micro-batch shape (b, s).
	Shape model.Shape
	// SeqPar is the sequence/tensor parallel width inside a stage. Zero
	// means "use the whole node" (GPUsPerNode).
	SeqPar int
	// SkipSPComm disables intra-node sequence-parallel collective costs;
	// used to isolate pure compute in component-profile experiments that
	// mirror the paper's single-GPU profiling (Figure 3).
	SkipSPComm bool
	// Link prices intra-stage collectives on the placed node's intra-node
	// link; the zero value keeps the flat NVLink term.
	Link LinkSpec
	// GPU overrides the cluster's GPU spec with the placed device's; the
	// zero value (empty Name) keeps Cluster.GPU.
	GPU GPUSpec
	// ComputeFactor stretches every duration by the placed stage's
	// perturbation factor (straggler + jitter); values <= 0 mean 1.
	ComputeFactor float64
}

// NewWorkload returns a Workload with SeqPar defaulted to the node size.
func NewWorkload(m model.Config, cl ClusterSpec, sh model.Shape) Workload {
	return Workload{Model: m, Cluster: cl, Shape: sh, SeqPar: cl.GPUsPerNode}
}

// Validate reports an error when the workload is inconsistent.
func (w Workload) Validate() error {
	if err := w.Model.Validate(); err != nil {
		return err
	}
	if err := w.Cluster.Validate(); err != nil {
		return err
	}
	if w.Shape.B <= 0 || w.Shape.S <= 0 {
		return fmt.Errorf("costmodel: micro batch shape must be positive, got %+v", w.Shape)
	}
	if w.seqPar() > w.Cluster.GPUsPerNode {
		return fmt.Errorf("costmodel: SeqPar %d exceeds node size %d", w.SeqPar, w.Cluster.GPUsPerNode)
	}
	return nil
}

func (w Workload) seqPar() int {
	if w.SeqPar <= 0 {
		return w.Cluster.GPUsPerNode
	}
	return w.SeqPar
}

// gpu returns the GPU spec pricing this workload's compute: the placed
// device's when resolved, the cluster-wide spec otherwise.
func (w Workload) gpu() GPUSpec {
	if w.GPU.Name != "" {
		return w.GPU
	}
	return w.Cluster.GPU
}

// factor returns the compute stretch of the placed stage (1 when unplaced or
// unperturbed).
func (w Workload) factor() float64 {
	if w.ComputeFactor <= 0 {
		return 1
	}
	return w.ComputeFactor
}

// gemmFLOPS returns the effective GEMM throughput of the stage in FLOP/s.
func (w Workload) gemmFLOPS() float64 {
	g := w.gpu()
	return float64(w.seqPar()) * g.DenseFP16TFLOPS * 1e12 * g.GEMMEfficiency
}

// attnFLOPS returns the effective flash-attention throughput of the stage.
func (w Workload) attnFLOPS() float64 {
	g := w.gpu()
	return float64(w.seqPar()) * g.DenseFP16TFLOPS * 1e12 * g.AttnEfficiency
}

// hbmBps returns the aggregate HBM bandwidth of the stage in bytes/s.
func (w Workload) hbmBps() float64 {
	return float64(w.seqPar()) * w.gpu().HBMGBps * 1e9
}

// spCollectiveTime returns the time of one ring all-gather or reduce-scatter
// of a [s,b,h] fp16 tensor across the sequence-parallel group: on the placed
// node's intra link when the workload is placement-resolved (a PCIe box pays
// PCIe bandwidth), on the cluster-wide NVLink term otherwise.
func (w Workload) spCollectiveTime() float64 {
	t := float64(w.seqPar())
	if t <= 1 || w.SkipSPComm {
		return 0
	}
	bytes := float64(w.Shape.Tokens()) * float64(w.Model.Hidden) * model.FP16Bytes
	perGPU := bytes * (t - 1) / t
	if w.Link.GBps > 0 {
		return w.Link.LatencySec + perGPU/(w.Link.GBps*1e9)
	}
	return w.Cluster.NVLinkLatency + perGPU/(w.Cluster.GPU.NVLinkGBps*1e9)
}

// spCollectivesPerSegment returns how many sequence-parallel collectives a
// segment performs per pass: the attention module all-gathers its input
// before the QKV projection (pre) and reduce-scatters after the output
// projection; the MLP module does the same around its two linears (post).
// The backward pass mirrors the forward collectives; backward-W needs none.
func spCollectivesPerSegment(seg model.Segment, pass model.Pass) int {
	if pass == model.BackwardW {
		return 0
	}
	switch seg {
	case model.SegPre:
		return 1
	case model.SegPost:
		return 3
	default:
		return 0
	}
}

// SegmentTime returns the execution time in seconds of one layer segment for
// one micro batch on one stage: GEMM time at the class-specific efficiency,
// plus bandwidth-bound vector time, plus intra-node sequence-parallel
// collectives, all stretched by the placed stage's perturbation factor (the
// simulator stretched whole ops the same way before books were
// placement-resolved, so collectives inside a slow stage slow down with it).
func (w Workload) SegmentTime(seg model.Segment, pass model.Pass) float64 {
	flops := w.Model.SegmentFLOPs(seg, pass, w.Shape)
	var compute float64
	if seg == model.SegAttn {
		compute = flops * CausalFactor / w.attnFLOPS()
	} else {
		compute = flops / w.gemmFLOPS()
	}
	vecBytes := float64(w.Model.SegmentVectorElems(seg, pass, w.Shape)) * model.FP16Bytes
	vector := vecBytes / w.hbmBps()
	sp := float64(spCollectivesPerSegment(seg, pass)) * w.spCollectiveTime()
	return (compute + vector + sp) * w.factor()
}

// LayerTime returns the execution time of a whole layer for one pass.
func (w Workload) LayerTime(pass model.Pass) float64 {
	return w.SegmentTime(model.SegPre, pass) +
		w.SegmentTime(model.SegAttn, pass) +
		w.SegmentTime(model.SegPost, pass)
}

// PrePostTime returns t_pre + t_post for one pass — the quantity the paper's
// Table 2 bubble formulas are expressed in.
func (w Workload) PrePostTime(pass model.Pass) float64 {
	return w.SegmentTime(model.SegPre, pass) + w.SegmentTime(model.SegPost, pass)
}

// EmbeddingTime returns the time of the input embedding lookup for one micro
// batch: bandwidth bound, streaming b*s rows of h.
func (w Workload) EmbeddingTime(pass model.Pass) float64 {
	if pass == model.BackwardW {
		// Gradient scatter-add into the embedding table.
		return float64(w.Shape.Tokens()) * float64(w.Model.Hidden) * model.FP32Bytes / w.hbmBps() * w.factor()
	}
	return float64(w.Shape.Tokens()) * float64(w.Model.Hidden) * model.FP16Bytes / w.hbmBps() * w.factor()
}

// HeadTime returns the time of the LM head projection plus softmax/loss for
// one micro batch and pass (2*b*s*h*V GEMM dominates).
func (w Workload) HeadTime(pass model.Pass) float64 {
	flops := w.Model.EmbeddingFLOPs(pass, w.Shape)
	logitBytes := float64(w.Model.LogitsElems(w.Shape)) * model.FP16Bytes
	return (flops/w.gemmFLOPS() + 2*logitBytes/w.hbmBps()) * w.factor()
}

// P2PBytes is the node-aggregate byte volume of one inter-stage transfer.
type P2PBytes int64

// P2PTime returns the wall time of transferring the given node-aggregate
// volume between two adjacent stages over InfiniBand.
func (w Workload) P2PTime(bytes int64) float64 {
	return w.Cluster.InterNodeLatency + float64(bytes)/(w.Cluster.InterNodeGBps*1e9)
}

// ActivationP2PBytes returns the volume of the conventional layer-wise
// pipeline boundary: one [s,b,h] activation (or its gradient) in fp16.
func (w Workload) ActivationP2PBytes() int64 {
	return w.Shape.Tokens() * int64(w.Model.Hidden) * model.FP16Bytes
}

// HelixPreAttnBytes returns the volume of HelixPipe's pre-attention to
// attention boundary with the QKV weight-shipping optimization of section
// 4.2: the attention input A plus residual (2bsh) and the QKV linear
// parameters (3h^2) instead of the raw Q,K,V tensors (which would be 4bsh).
func (w Workload) HelixPreAttnBytes() int64 {
	h := int64(w.Model.Hidden)
	act := 2 * w.Shape.Tokens() * h
	params := 3 * h * h
	return (act + params) * model.FP16Bytes
}

// HelixPreAttnBytesNaive returns the same boundary without weight shipping:
// attention input, Q, K, V and residual, 4bsh elements total (section 4.2).
func (w Workload) HelixPreAttnBytesNaive() int64 {
	return 4 * w.Shape.Tokens() * int64(w.Model.Hidden) * model.FP16Bytes
}

// HelixAttnPostBytes returns the volume of HelixPipe's attention to
// post-attention boundary: attention output plus residual input, 2bsh.
func (w Workload) HelixAttnPostBytes() int64 {
	return 2 * w.Shape.Tokens() * int64(w.Model.Hidden) * model.FP16Bytes
}

// SegmentStashBytes returns the per-GPU bytes stashed by a segment's forward
// pass for its backward pass (activation elements in fp16, divided across
// the sequence-parallel group).
func (w Workload) SegmentStashBytes(seg model.Segment) int64 {
	return w.Model.SegmentActivationElems(seg, w.Shape) * model.FP16Bytes / int64(w.seqPar())
}

// HelixSegmentStashBytes returns the per-GPU bytes stashed per segment under
// recomputation-without-attention: the attention segment keeps its flash-
// attention input/output (about 2bsh), while pre and post keep only their
// segment inputs (1bsh each), totalling the paper's 4bsh per layer.
func (w Workload) HelixSegmentStashBytes(seg model.Segment) int64 {
	bsh := w.Shape.Tokens() * int64(w.Model.Hidden)
	var elems int64
	switch seg {
	case model.SegAttn:
		elems = 2 * bsh
	default:
		elems = bsh
	}
	return elems * model.FP16Bytes / int64(w.seqPar())
}

// InputStashBytes returns the per-GPU bytes of one boundary activation
// ([s,b,h] fp16), the unit 1F1B stages keep between forward and backward.
func (w Workload) InputStashBytes() int64 {
	return w.Shape.Tokens() * int64(w.Model.Hidden) * model.FP16Bytes / int64(w.seqPar())
}

// LogitsStashBytes returns the per-GPU bytes of the LM-head vocabulary
// activation [s,b,V] that section 4.6 avoids stashing, in fp16.
func (w Workload) LogitsStashBytes() int64 {
	return w.Model.LogitsElems(w.Shape) * model.FP16Bytes / int64(w.seqPar())
}

// EmbeddingGradStashBytes returns the per-GPU bytes ZB1P stashes at the last
// stage for each micro batch whose word-embedding backward-W is deferred:
// the head input activation and its output gradient in fp32 (section 5.4
// observes these are "often stashed in fp32 format").
func (w Workload) EmbeddingGradStashBytes() int64 {
	return 2 * w.Shape.Tokens() * int64(w.Model.Hidden) * model.FP32Bytes / int64(w.seqPar())
}
