// Package costmodel converts the element/FLOP accounting of internal/model
// into simulated time and bytes under a concrete GPU cluster, replacing the
// paper's H20 and A800 testbeds.
//
// Only ratios matter for reproducing the paper's figures: the paper itself
// explains its A800 results by "A800 has double the computation power of H20"
// and "the A800 cluster has half the communication bandwidth of the H20
// cluster" (section 5.2). The spec constants below encode exactly those
// published ratios, with absolute values taken from vendor datasheets. All
// calibration constants live in this file so EXPERIMENTS.md can point at a
// single source of truth.
package costmodel

import (
	"fmt"
	"strings"
)

// GPUSpec describes one GPU type at the fidelity the cost model needs.
type GPUSpec struct {
	// Name is the marketing name, e.g. "H20".
	Name string
	// DenseFP16TFLOPS is the peak dense fp16/bf16 tensor-core throughput of
	// one GPU, in TFLOPS.
	DenseFP16TFLOPS float64
	// HBMGBps is the HBM memory bandwidth of one GPU in GB/s, used to price
	// bandwidth-bound vector work (LayerNorm, GeLU, flash-attention traffic).
	HBMGBps float64
	// MemoryGB is the HBM capacity in GB (both testbed GPUs have 80+ GB;
	// H20 is the 96 GB part).
	MemoryGB float64
	// NVLinkGBps is the intra-node NVLink bandwidth per GPU in GB/s
	// (unidirectional), used for sequence-parallel collectives.
	NVLinkGBps float64
	// GEMMEfficiency is the fraction of peak FLOPS realised by large GEMMs
	// (model-flop utilisation of the linear layers).
	GEMMEfficiency float64
	// AttnEfficiency is the fraction of peak FLOPS realised by flash
	// attention, which is lower than plain GEMM efficiency.
	AttnEfficiency float64
}

// Validate reports an error if the spec is not physically meaningful.
func (g GPUSpec) Validate() error {
	switch {
	case g.DenseFP16TFLOPS <= 0:
		return fmt.Errorf("costmodel: %s: DenseFP16TFLOPS must be positive", g.Name)
	case g.HBMGBps <= 0:
		return fmt.Errorf("costmodel: %s: HBMGBps must be positive", g.Name)
	case g.MemoryGB <= 0:
		return fmt.Errorf("costmodel: %s: MemoryGB must be positive", g.Name)
	case g.NVLinkGBps <= 0:
		return fmt.Errorf("costmodel: %s: NVLinkGBps must be positive", g.Name)
	case g.GEMMEfficiency <= 0 || g.GEMMEfficiency > 1:
		return fmt.Errorf("costmodel: %s: GEMMEfficiency must be in (0,1]", g.Name)
	case g.AttnEfficiency <= 0 || g.AttnEfficiency > 1:
		return fmt.Errorf("costmodel: %s: AttnEfficiency must be in (0,1]", g.Name)
	}
	return nil
}

// H20 returns the spec of the NVIDIA H20 GPU used by the paper's first
// cluster: low compute (~148 TFLOPS dense fp16) but Hopper-class HBM3 and
// NVLink.
func H20() GPUSpec {
	return GPUSpec{
		Name:            "H20",
		DenseFP16TFLOPS: 148,
		HBMGBps:         4000,
		MemoryGB:        96,
		NVLinkGBps:      450,
		GEMMEfficiency:  0.70,
		AttnEfficiency:  0.38,
	}
}

// A800 returns the spec of the NVIDIA A800 GPU used by the paper's second
// cluster: Ampere-class, about double the H20's compute ("A800 GPU has
// double computation power compared to H20", section 5.2).
func A800() GPUSpec {
	return GPUSpec{
		Name:            "A800",
		DenseFP16TFLOPS: 312,
		HBMGBps:         2039,
		MemoryGB:        80,
		NVLinkGBps:      200,
		GEMMEfficiency:  0.62,
		AttnEfficiency:  0.35,
	}
}

// GPUs returns the built-in GPU specs.
func GPUs() []GPUSpec { return []GPUSpec{H20(), A800()} }

// GPUByName returns the named GPU spec ("H20" or "A800") case-insensitively
// and reports whether it exists. Heterogeneous topologies name per-node
// device generations with these names.
func GPUByName(name string) (GPUSpec, bool) {
	for _, g := range GPUs() {
		if strings.EqualFold(g.Name, name) {
			return g, true
		}
	}
	return GPUSpec{}, false
}

// ClusterSpec describes a GPU cluster: identical nodes of GPUsPerNode GPUs
// connected by InfiniBand. One pipeline stage maps to one node, matching the
// paper's deployment ("one pipeline stage was mapped to one node").
type ClusterSpec struct {
	// Name labels the cluster, e.g. "H20-NDR".
	Name string
	// GPU is the GPU type of every node.
	GPU GPUSpec
	// GPUsPerNode is the node size (8 on both paper clusters).
	GPUsPerNode int
	// InterNodeGBps is the aggregate unidirectional InfiniBand bandwidth of
	// one node in GB/s: number of HCAs x per-port rate x wire efficiency.
	InterNodeGBps float64
	// InterNodeLatency is the per-message latency of an inter-node transfer
	// in seconds (rendezvous + switch traversal).
	InterNodeLatency float64
	// NVLinkLatency is the per-collective base latency inside a node.
	NVLinkLatency float64
	// CommSMPenalty models NCCL's use of GPU SMs for communication: the
	// fraction of compute throughput lost while a transfer overlaps compute.
	// The paper observes "only a marginal delay in computation time"
	// (section 5.3), so this stays small.
	CommSMPenalty float64
}

// Validate reports an error if the cluster spec is not usable.
func (cl ClusterSpec) Validate() error {
	if err := cl.GPU.Validate(); err != nil {
		return err
	}
	switch {
	case cl.GPUsPerNode <= 0:
		return fmt.Errorf("costmodel: %s: GPUsPerNode must be positive", cl.Name)
	case cl.InterNodeGBps <= 0:
		return fmt.Errorf("costmodel: %s: InterNodeGBps must be positive", cl.Name)
	case cl.InterNodeLatency < 0 || cl.NVLinkLatency < 0:
		return fmt.Errorf("costmodel: %s: latencies must be non-negative", cl.Name)
	case cl.CommSMPenalty < 0 || cl.CommSMPenalty >= 1:
		return fmt.Errorf("costmodel: %s: CommSMPenalty must be in [0,1)", cl.Name)
	}
	return nil
}

// H20Cluster returns the paper's first testbed: H20 nodes with four 200 Gb/s
// InfiniBand NDR HCAs each (aggregate 100 GB/s per node at 100% wire rate;
// we apply a 0.80 transport efficiency).
func H20Cluster() ClusterSpec {
	return ClusterSpec{
		Name:             "H20",
		GPU:              H20(),
		GPUsPerNode:      8,
		InterNodeGBps:    4 * 25.0 * 0.92, // 4 HCAs x 200Gb/s x RDMA transport efficiency
		InterNodeLatency: 12e-6,
		NVLinkLatency:    6e-6,
		CommSMPenalty:    0.03,
	}
}

// A800Cluster returns the paper's second testbed: A800 nodes with four
// 100 Gb/s InfiniBand HDR HCAs each — half the H20 cluster's bandwidth.
func A800Cluster() ClusterSpec {
	return ClusterSpec{
		Name:             "A800",
		GPU:              A800(),
		GPUsPerNode:      8,
		InterNodeGBps:    4 * 12.5 * 0.92, // 4 HCAs x 100Gb/s x RDMA transport efficiency
		InterNodeLatency: 14e-6,
		NVLinkLatency:    6e-6,
		CommSMPenalty:    0.03,
	}
}

// Clusters returns the two paper testbeds.
func Clusters() []ClusterSpec { return []ClusterSpec{H20Cluster(), A800Cluster()} }

// ClusterByName returns the named testbed ("H20" or "A800") and reports
// whether it exists.
func ClusterByName(name string) (ClusterSpec, bool) {
	for _, cl := range Clusters() {
		if cl.Name == name {
			return cl, true
		}
	}
	return ClusterSpec{}, false
}
