package costmodel

import (
	"math"
	"testing"

	"repro/internal/model"
)

func TestSpecsValidate(t *testing.T) {
	for _, cl := range Clusters() {
		if err := cl.Validate(); err != nil {
			t.Errorf("%s: %v", cl.Name, err)
		}
	}
}

func TestClusterByName(t *testing.T) {
	for _, name := range []string{"H20", "A800"} {
		cl, ok := ClusterByName(name)
		if !ok || cl.Name != name {
			t.Errorf("ClusterByName(%q) = %v, %v", name, cl.Name, ok)
		}
	}
	if _, ok := ClusterByName("B200"); ok {
		t.Error("unknown cluster should not resolve")
	}
}

// TestPaperHardwareRatios pins the two hardware ratios the paper's section
// 5.2 analysis rests on: A800 has about double H20's compute, and the A800
// cluster has half the H20 cluster's inter-node bandwidth.
func TestPaperHardwareRatios(t *testing.T) {
	h20, a800 := H20Cluster(), A800Cluster()
	compute := a800.GPU.DenseFP16TFLOPS / h20.GPU.DenseFP16TFLOPS
	if compute < 1.8 || compute > 2.4 {
		t.Errorf("A800/H20 compute ratio = %.2f, paper says about 2x", compute)
	}
	bw := h20.InterNodeGBps / a800.InterNodeGBps
	if math.Abs(bw-2.0) > 0.01 {
		t.Errorf("H20/A800 bandwidth ratio = %.2f, paper says exactly 2x", bw)
	}
}

func TestWorkloadValidate(t *testing.T) {
	w := NewWorkload(model.Model7B(), H20Cluster(), model.Shape{B: 1, S: 32768})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := w
	bad.Shape.S = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero sequence length should fail validation")
	}
	bad = w
	bad.SeqPar = 64
	if err := bad.Validate(); err == nil {
		t.Error("SeqPar beyond node size should fail validation")
	}
}

// TestSegmentTimesPositiveAndOrdered sanity-checks segment times: positive,
// and the backward-B of attention costs about twice its forward.
func TestSegmentTimesPositiveAndOrdered(t *testing.T) {
	w := NewWorkload(model.Model7B(), H20Cluster(), model.Shape{B: 1, S: 65536})
	for _, seg := range model.Segments {
		for _, pass := range []model.Pass{model.Forward, model.BackwardB} {
			if d := w.SegmentTime(seg, pass); d <= 0 {
				t.Errorf("SegmentTime(%v,%v) = %g, want positive", seg, pass, d)
			}
		}
	}
	if w.SegmentTime(model.SegAttn, model.BackwardW) != 0 {
		t.Error("attention backward-W must cost zero time")
	}
	f := w.SegmentTime(model.SegAttn, model.Forward)
	b := w.SegmentTime(model.SegAttn, model.BackwardB)
	if b < 1.8*f || b > 2.2*f {
		t.Errorf("attention backward/forward = %.2f, want about 2", b/f)
	}
}

// TestAttentionQuadraticScaling verifies that doubling the sequence length
// roughly quadruples attention time but only doubles pre/post time — the
// scaling behaviour all of the paper's motivation rests on.
func TestAttentionQuadraticScaling(t *testing.T) {
	mk := func(s int) Workload {
		return NewWorkload(model.Model7B(), H20Cluster(), model.Shape{B: 1, S: s})
	}
	a1 := mk(32768).SegmentTime(model.SegAttn, model.Forward)
	a2 := mk(65536).SegmentTime(model.SegAttn, model.Forward)
	if r := a2 / a1; r < 3.5 || r > 4.5 {
		t.Errorf("attention scaling for 2x seq = %.2f, want about 4", r)
	}
	p1 := mk(32768).PrePostTime(model.Forward)
	p2 := mk(65536).PrePostTime(model.Forward)
	if r := p2 / p1; r < 1.8 || r > 2.3 {
		t.Errorf("pre/post scaling for 2x seq = %.2f, want about 2", r)
	}
}

// TestFigure3Profile checks the published headline of Figure 3: on an A800
// with h=4096, attention (fwd+bwd) consumes the majority of layer time from
// 32k on, and more than 80% at 128k.
func TestFigure3Profile(t *testing.T) {
	prof := ComponentProfile(model.Model7B(), A800Cluster(), []int{4096, 32768, 131072})
	share := func(c ComponentShare) float64 { return c.AttnFwd + c.AttnBwd }
	if s := share(prof[0]); s > 0.55 {
		t.Errorf("attention share at 4k = %.2f, expected moderate", s)
	}
	if s := share(prof[1]); s < 0.5 {
		t.Errorf("attention share at 32k = %.2f, expected dominant", s)
	}
	if s := share(prof[2]); s < 0.8 {
		t.Errorf("attention share at 128k = %.2f, expected >0.8", s)
	}
	for _, c := range prof {
		sum := c.PreFwd + c.AttnFwd + c.PostFwd + c.PreBwd + c.AttnBwd + c.PostBwd
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("shares at s=%d sum to %g, want 1", c.SeqLen, sum)
		}
	}
}

// TestBubbleOrdering verifies the whole point of the paper: for long
// sequences the analytic bubbles order HelixPipe (even with recomputation)
// far below ZB1P, which is below 1F1B.
func TestBubbleOrdering(t *testing.T) {
	w := NewWorkload(model.Model7B(), H20Cluster(), model.Shape{B: 1, S: 131072})
	const p = 8
	b1f1b := w.Bubble1F1B(p)
	bzb := w.BubbleZB1P(p)
	bhelix := w.BubbleHelixRecompute(p)
	if !(bhelix < bzb && bzb < b1f1b) {
		t.Errorf("bubble order violated: helix=%.3f zb1p=%.3f 1f1b=%.3f", bhelix, bzb, b1f1b)
	}
	// Helix bubble should be an order of magnitude smaller at 128k.
	if bhelix*5 > bzb {
		t.Errorf("helix bubble %.3fs not far below ZB1P %.3fs at 128k", bhelix, bzb)
	}
}

// TestHelixBubbleIndependentOfLayers verifies the remarkable Table 2
// property that the HelixPipe bubble does not grow with the layer count.
func TestHelixBubbleIndependentOfLayers(t *testing.T) {
	base := model.Model7B()
	deep := base
	deep.Layers *= 2
	wBase := NewWorkload(base, H20Cluster(), model.Shape{B: 1, S: 65536})
	wDeep := NewWorkload(deep, H20Cluster(), model.Shape{B: 1, S: 65536})
	if b1, b2 := wBase.BubbleHelixNaive(8), wDeep.BubbleHelixNaive(8); math.Abs(b1-b2) > 1e-12 {
		t.Errorf("helix bubble depends on L: %g vs %g", b1, b2)
	}
	// 1F1B's bubble, by contrast, is proportional to per-stage layer time,
	// identical here since L/p doubles... so check against pipeline depth:
	if w1, w2 := wBase.Bubble1F1B(8), wDeep.Bubble1F1B(8); w2 <= w1 {
		t.Errorf("1F1B bubble should grow with layers: %g vs %g", w1, w2)
	}
}

// TestBubbleRatios verifies the naive : two-fold : recompute bubble ratios
// 3 : 6 : 8 of section 4.5 (approximately, since our backward times are not
// exactly 2x forward).
func TestBubbleRatios(t *testing.T) {
	w := NewWorkload(model.Model3B(), H20Cluster(), model.Shape{B: 1, S: 65536})
	const p = 4
	naive := w.BubbleHelixNaive(p)
	two := w.BubbleHelixTwoFold(p)
	rec := w.BubbleHelixRecompute(p)
	if math.Abs(two/naive-2) > 1e-9 {
		t.Errorf("two-fold/naive = %.3f, want 2", two/naive)
	}
	if r := rec / naive; r < 2.4 || r > 2.9 {
		t.Errorf("recompute/naive = %.3f, want about 8/3", r)
	}
}

// TestOverlapCrossover reproduces the section 5.3 finding: on the H20
// cluster the two-fold FILO communication is overlapped by attention at all
// tested sequence lengths, while on the A800 cluster it is NOT overlapped at
// 32k but is at 96k and beyond.
func TestOverlapCrossover(t *testing.T) {
	seqs := []int{32768, 65536, 98304, 131072}
	h20 := OverlapProfile(model.Model7B(), H20Cluster(), seqs)
	for _, r := range h20 {
		if !r.FullyOverlapped {
			t.Errorf("H20 s=%d: comm %.1fms > attn %.1fms, paper expects full overlap on H20",
				r.SeqLen, r.CommSeconds*1e3, r.AttentionSeconds*1e3)
		}
	}
	a800 := OverlapProfile(model.Model7B(), A800Cluster(), seqs)
	if a800[0].FullyOverlapped {
		t.Errorf("A800 s=32k: attn %.1fms >= comm %.1fms, paper expects NO overlap",
			a800[0].AttentionSeconds*1e3, a800[0].CommSeconds*1e3)
	}
	for _, r := range a800[2:] {
		if !r.FullyOverlapped {
			t.Errorf("A800 s=%d: comm %.1fms > attn %.1fms, paper expects overlap from 96k",
				r.SeqLen, r.CommSeconds*1e3, r.AttentionSeconds*1e3)
		}
	}
}

// TestFigure9Magnitudes loosely pins absolute per-layer times against the
// axes of paper Figure 9 (7B layer): H20 attention in the low hundreds of
// milliseconds at 128k; A800 attention several times faster.
func TestFigure9Magnitudes(t *testing.T) {
	wH := NewWorkload(model.Model7B(), H20Cluster(), model.Shape{B: 1, S: 131072})
	attnH := wH.SegmentTime(model.SegAttn, model.Forward) * 1e3
	if attnH < 100 || attnH > 350 {
		t.Errorf("H20 attention at 128k = %.0fms, Figure 9 axis suggests about 200ms", attnH)
	}
	wA := NewWorkload(model.Model7B(), A800Cluster(), model.Shape{B: 1, S: 131072})
	attnA := wA.SegmentTime(model.SegAttn, model.Forward) * 1e3
	if r := attnH / attnA; r < 1.6 || r > 2.6 {
		t.Errorf("H20/A800 attention time ratio = %.2f, want about 2", r)
	}
}

// TestCommVolumes verifies section 4.2's boundary-volume arithmetic,
// including the QKV weight-shipping optimization: 4bsh naive pre-attention
// volume reduced to 2bsh + 3h^2.
func TestCommVolumes(t *testing.T) {
	w := NewWorkload(model.Model7B(), H20Cluster(), model.Shape{B: 1, S: 131072})
	bsh := int64(1) * 131072 * 4096
	h := int64(4096)
	if got, want := w.ActivationP2PBytes(), bsh*2; got != want {
		t.Errorf("layerwise boundary = %d, want %d", got, want)
	}
	if got, want := w.HelixPreAttnBytesNaive(), 4*bsh*2; got != want {
		t.Errorf("naive pre-attn boundary = %d, want %d", got, want)
	}
	if got, want := w.HelixPreAttnBytes(), (2*bsh+3*h*h)*2; got != want {
		t.Errorf("optimized pre-attn boundary = %d, want %d", got, want)
	}
	if got, want := w.HelixAttnPostBytes(), 2*bsh*2; got != want {
		t.Errorf("attn-post boundary = %d, want %d", got, want)
	}
	// For s >> h the optimized volume approaches half the naive volume.
	ratio := float64(w.HelixPreAttnBytes()) / float64(w.HelixPreAttnBytesNaive())
	if ratio > 0.55 {
		t.Errorf("weight shipping saves too little: ratio %.2f", ratio)
	}
}

// TestStashBytes checks stash accounting: full-stash per layer is 16bsh and
// the helix per-segment stashes add up to the paper's 4bsh.
func TestStashBytes(t *testing.T) {
	w := NewWorkload(model.Model3B(), A800Cluster(), model.Shape{B: 1, S: 32768})
	var full, helix int64
	for _, seg := range model.Segments {
		full += w.SegmentStashBytes(seg)
		helix += w.HelixSegmentStashBytes(seg)
	}
	bsh := int64(1) * 32768 * 4096
	if want := 16 * bsh * 2 / 8; full != want {
		t.Errorf("full stash per layer = %d, want %d", full, want)
	}
	if want := 4 * bsh * 2 / 8; helix != want {
		t.Errorf("helix stash per layer = %d, want %d", helix, want)
	}
}

func TestHeadAndEmbeddingTimes(t *testing.T) {
	w := NewWorkload(model.Model3B(), H20Cluster(), model.Shape{B: 1, S: 32768})
	if w.HeadTime(model.Forward) <= 0 || w.EmbeddingTime(model.Forward) <= 0 {
		t.Error("head/embedding times must be positive")
	}
	// The head GEMM (2bshV) is comparable to a couple of layers, far from
	// dominating a 16-layer iteration.
	if w.HeadTime(model.Forward) > 4*w.LayerTime(model.Forward) {
		t.Error("head time implausibly large")
	}
	if w.LogitsStashBytes() <= 0 || w.EmbeddingGradStashBytes() <= 0 {
		t.Error("stash sizes must be positive")
	}
}

func TestAnalyzeTable2(t *testing.T) {
	w := NewWorkload(model.Model7B(), H20Cluster(), model.Shape{B: 1, S: 131072})
	rows := w.AnalyzeTable2(8, 16)
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	byName := map[string]BubbleAnalysis{}
	for _, r := range rows {
		byName[r.Method] = r
		if r.BubbleSeconds <= 0 || r.PeakActivationBytes <= 0 {
			t.Errorf("%s: non-positive entries: %+v", r.Method, r)
		}
	}
	if byName["HelixPipe"].PeakActivationBytes >= byName["ZB1P"].PeakActivationBytes {
		t.Error("HelixPipe must use less activation memory than ZB1P")
	}
	if byName["HelixPipe"].BubbleSeconds >= byName["ZB1P"].BubbleSeconds {
		t.Error("HelixPipe must have a smaller bubble than ZB1P at 128k")
	}
}
