package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
)

// buildAll builds the four Figure 8 methods for a workload, with AdaPipe
// given the per-GPU memory budget remaining after model states.
func buildAll(t *testing.T, w costmodel.Workload, p, m int) map[sched.Method]*sched.Plan {
	t.Helper()
	costs := sched.NewCosts(w)
	cfg := sched.Config{Stages: p, MicroBatches: m, Layers: w.Model.Layers}
	budget := int64(w.Cluster.GPU.MemoryGB*0.9*float64(1<<30)) -
		w.Model.ModelStateBytesPerStage(p, w.Cluster.GPUsPerNode) -
		w.Model.EmbeddingStateBytes(w.Cluster.GPUsPerNode)
	plans := map[sched.Method]*sched.Plan{}
	var err error
	if plans[sched.Method1F1B], err = sched.OneFOneB(cfg, costs); err != nil {
		t.Fatal(err)
	}
	if plans[sched.MethodZB1P], err = sched.ZB1P(cfg, costs); err != nil {
		t.Fatal(err)
	}
	if plans[sched.MethodAdaPipe], err = sched.AdaPipe(cfg, costs, budget); err != nil {
		t.Fatal(err)
	}
	if plans[sched.MethodHelix], err = core.Build(cfg, costs, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return plans
}

func runPlan(t *testing.T, plan *sched.Plan) *Result {
	t.Helper()
	res, err := Run(plan, Options{})
	if err != nil {
		t.Fatalf("%s: %v", plan.Method, err)
	}
	return res
}

// TestBubble1F1BMatchesFormula cross-checks the simulator against Equation 1
// with the didactic unit cost book, zero communication and no embed/head
// cost: every stage's idle time must equal (p-1)*(F+B+W)*L/p exactly.
func TestBubble1F1BMatchesFormula(t *testing.T) {
	costs := sched.UnitCosts(0).ZeroCommCosts()
	for _, p := range []int{2, 4, 8} {
		cfg := sched.Config{Stages: p, MicroBatches: 2 * p, Layers: 4 * p}
		plan, err := sched.OneFOneB(cfg, costs)
		if err != nil {
			t.Fatal(err)
		}
		res := runPlan(t, plan)
		perLayer := costs.LayerDur(sched.KForward) + costs.LayerDur(sched.KBackwardB) + costs.LayerDur(sched.KBackwardW)
		want := float64(p-1) * perLayer * float64(cfg.Layers) / float64(p)
		for s, idle := range res.IdleSeconds {
			if math.Abs(idle-want) > 1e-9 {
				t.Errorf("p=%d stage %d: idle %.3f, Equation 1 predicts %.3f", p, s, idle, want)
			}
		}
	}
}

// TestBubbleHelixMatchesTable2 cross-checks the three HelixPipe bubble
// formulas of section 4.5 against simulated idle time with unit costs and
// zero communication: naive 3(p-1)(t_pre+t_post)-equivalent, two-fold twice
// that, recompute adding the re-run forward.
//
// The paper's analysis idealizes the FILO drain (its figures draw L = p, one
// unit per stage); with L/p > 1 the spiral tail — the final groups' descent
// through the remaining layers while upper stages run dry — adds idle the
// closed form omits. We therefore assert the idealized formula as a lower
// band and allow up to 3.0x of it; EXPERIMENTS.md records the measured gap.
func TestBubbleHelixMatchesTable2(t *testing.T) {
	costs := sched.UnitCosts(0).ZeroCommCosts()
	prepostF := costs.Seg[model.SegPre][model.Forward] + costs.Seg[model.SegPost][model.Forward]
	prepostBW := costs.Seg[model.SegPre][model.BackwardB] + costs.Seg[model.SegPre][model.BackwardW] +
		costs.Seg[model.SegPost][model.BackwardB] + costs.Seg[model.SegPost][model.BackwardW]
	cases := []struct {
		name string
		opt  core.Options
		want func(p int) float64
	}{
		{"naive", core.Options{Fold: 1, Recompute: false},
			func(p int) float64 { return float64(p-1) * (prepostF + prepostBW) }},
		{"twofold", core.Options{Fold: 2, Recompute: false},
			func(p int) float64 { return 2 * float64(p-1) * (prepostF + prepostBW) }},
		{"recompute", core.Options{Fold: 2, Recompute: true},
			func(p int) float64 { return 2 * float64(p-1) * (2*prepostF + prepostBW) }},
	}
	for _, tc := range cases {
		for _, p := range []int{2, 4} {
			cfg := sched.Config{Stages: p, MicroBatches: 2 * tc.opt.Fold * p, Layers: 4 * p}
			plan, err := core.Build(cfg, costs, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			res := runPlan(t, plan)
			want := tc.want(p)
			got := res.BubbleSeconds()
			if got < 0.3*want || got > 3.0*want {
				t.Errorf("%s p=%d: mean idle %.2f, outside [0.3, 3.0]x of the Table 2 idealization %.2f",
					tc.name, p, got, want)
			}
		}
	}
}

// TestHelixBubbleIndependentOfDepth verifies the Table 2 property on the
// simulator: doubling the layer count leaves the helix bubble roughly
// unchanged while 1F1B's bubble doubles.
func TestHelixBubbleIndependentOfDepth(t *testing.T) {
	costs := sched.UnitCosts(0).ZeroCommCosts()
	const p = 4
	bubble := func(layers int, helix bool) float64 {
		cfg := sched.Config{Stages: p, MicroBatches: 4 * p, Layers: layers}
		var plan *sched.Plan
		var err error
		if helix {
			plan, err = core.Build(cfg, costs, core.Options{Fold: 2, Recompute: false})
		} else {
			plan, err = sched.OneFOneB(cfg, costs)
		}
		if err != nil {
			t.Fatal(err)
		}
		return runPlan(t, plan).BubbleSeconds()
	}
	h1, h2 := bubble(2*p, true), bubble(8*p, true)
	if h2 > 1.8*h1 {
		t.Errorf("helix bubble grew with depth: %.2f -> %.2f", h1, h2)
	}
	f1, f2 := bubble(2*p, false), bubble(8*p, false)
	if f2 < 3*f1 {
		t.Errorf("1F1B bubble should scale with per-stage layers: %.2f -> %.2f", f1, f2)
	}
}

// TestZB1PBeatsOneFOneB checks that delaying backward-W shrinks the bubble
// under unit costs with zero communication.
func TestZB1PBeatsOneFOneB(t *testing.T) {
	costs := sched.UnitCosts(0).ZeroCommCosts()
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 16}
	ob, err := sched.OneFOneB(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	zb, err := sched.ZB1P(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	rOB, rZB := runPlan(t, ob), runPlan(t, zb)
	if rZB.IterationSeconds >= rOB.IterationSeconds {
		t.Errorf("ZB1P iteration %.2f should beat 1F1B %.2f", rZB.IterationSeconds, rOB.IterationSeconds)
	}
}

// TestZB2PBubbleNotWorse verifies the ZB2P extension on the simulator: the
// doubled in-flight window gives a bubble no worse than ZB1P's.
func TestZB2PBubbleNotWorse(t *testing.T) {
	w := costmodel.NewWorkload(model.Model7B(), costmodel.H20Cluster(), model.Shape{B: 1, S: 65536})
	costs := sched.NewCosts(w)
	cfg := sched.Config{Stages: 4, MicroBatches: 16, Layers: 32}
	zb1, err := sched.ZB1P(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	zb2, err := sched.ZB2P(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := runPlan(t, zb1), runPlan(t, zb2)
	if r2.IterationSeconds > r1.IterationSeconds*1.02 {
		t.Errorf("ZB2P iteration %.2fs should not exceed ZB1P %.2fs", r2.IterationSeconds, r1.IterationSeconds)
	}
	if r2.MaxPeakStashBytes() <= r1.MaxPeakStashBytes() {
		t.Error("ZB2P should trade memory for its bubble")
	}
}

// TestHeadlineSpeedup reproduces the paper's headline: training the 7B model
// with 128k sequence length on 8 pipeline stages (64 H20 GPUs), HelixPipe
// beats the best baseline by roughly 26%.
func TestHeadlineSpeedup(t *testing.T) {
	w := costmodel.NewWorkload(model.Model7B(), costmodel.H20Cluster(), model.Shape{B: 1, S: 131072})
	plans := buildAll(t, w, 8, 16)
	iter := map[sched.Method]float64{}
	for method, plan := range plans {
		iter[method] = runPlan(t, plan).IterationSeconds
	}
	bestBaseline := math.Min(iter[sched.Method1F1B], math.Min(iter[sched.MethodZB1P], iter[sched.MethodAdaPipe]))
	speedup := bestBaseline / iter[sched.MethodHelix]
	t.Logf("7B/128k/p8/H20: 1F1B=%.2fs ZB1P=%.2fs AdaPipe=%.2fs Helix=%.2fs speedup=%.1f%%",
		iter[sched.Method1F1B], iter[sched.MethodZB1P], iter[sched.MethodAdaPipe], iter[sched.MethodHelix],
		(speedup-1)*100)
	if speedup < 1.12 || speedup > 1.45 {
		t.Errorf("headline speedup = %.1f%%, paper reports 26%%", (speedup-1)*100)
	}
}

// TestA800ShortSequenceRegression reproduces the paper's negative result:
// on the A800 cluster at 32k, the two-fold FILO communication cannot be
// overlapped and 1F1B is the best method (section 5.2).
func TestA800ShortSequenceRegression(t *testing.T) {
	w := costmodel.NewWorkload(model.Model7B(), costmodel.A800Cluster(), model.Shape{B: 1, S: 32768})
	plans := buildAll(t, w, 8, 16)
	i1f1b := runPlan(t, plans[sched.Method1F1B]).IterationSeconds
	ihelix := runPlan(t, plans[sched.MethodHelix]).IterationSeconds
	if ihelix < i1f1b {
		t.Errorf("A800/32k: Helix %.2fs should NOT beat 1F1B %.2fs (paper 5.2)", ihelix, i1f1b)
	}
}

// TestSpeedupGrowsWithSequence verifies the first scalability claim: the
// HelixPipe advantage over 1F1B grows with sequence length on H20.
func TestSpeedupGrowsWithSequence(t *testing.T) {
	speedup := func(s int) float64 {
		w := costmodel.NewWorkload(model.Model3B(), costmodel.H20Cluster(), model.Shape{B: 1, S: s})
		plans := buildAll(t, w, 8, 16)
		return runPlan(t, plans[sched.Method1F1B]).IterationSeconds /
			runPlan(t, plans[sched.MethodHelix]).IterationSeconds
	}
	s32, s128 := speedup(32768), speedup(131072)
	if s128 <= s32 {
		t.Errorf("speedup should grow with sequence length: 32k=%.3f 128k=%.3f", s32, s128)
	}
}

// TestTwoFoldBeatsNaiveWithComm verifies section 4.3.2: with real
// communication, the asynchronous two-fold schedule beats the naive FILO
// schedule whose blocking transfers sit on the critical path.
func TestTwoFoldBeatsNaiveWithComm(t *testing.T) {
	w := costmodel.NewWorkload(model.Model7B(), costmodel.H20Cluster(), model.Shape{B: 1, S: 65536})
	costs := sched.NewCosts(w)
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 32}
	naive, err := core.Build(cfg, costs, core.Options{Fold: 1, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	two, err := core.Build(cfg, costs, core.Options{Fold: 2, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	rNaive, rTwo := runPlan(t, naive), runPlan(t, two)
	if rTwo.IterationSeconds >= rNaive.IterationSeconds {
		t.Errorf("two-fold %.3fs should beat naive %.3fs at 64k", rTwo.IterationSeconds, rNaive.IterationSeconds)
	}
	// The naive schedule must show substantial blocking-comm stalls.
	var stall float64
	for _, v := range rNaive.CommStallSeconds {
		stall += v
	}
	if stall <= 0 {
		t.Error("naive FILO should accumulate blocking communication stalls")
	}
}

// TestMemoryProfiles reproduces the Figure 10 shapes: 1F1B's stash peak
// decreases with stage index; ZB1P is flat-high with a last-stage spike;
// HelixPipe is balanced and far below ZB1P.
func TestMemoryProfiles(t *testing.T) {
	w := costmodel.NewWorkload(model.Model3B(), costmodel.H20Cluster(), model.Shape{B: 1, S: 131072})
	plans := buildAll(t, w, 8, 16)
	res := map[sched.Method]*Result{}
	for method, plan := range plans {
		res[method] = runPlan(t, plan)
	}

	ob := res[sched.Method1F1B].PeakStashBytes
	for s := 0; s < len(ob)-1; s++ {
		if ob[s] < ob[s+1] {
			t.Errorf("1F1B peak stash should not increase with stage: stage %d=%d stage %d=%d", s, ob[s], s+1, ob[s+1])
		}
	}

	zb := res[sched.MethodZB1P].PeakStashBytes
	last := zb[len(zb)-1]
	if last <= zb[len(zb)-2] {
		t.Error("ZB1P last stage should spike above its neighbour (fp32 embedding-gradient stash)")
	}

	hx := res[sched.MethodHelix].PeakStashBytes
	var hmin, hmax int64 = math.MaxInt64, 0
	for _, v := range hx {
		if v < hmin {
			hmin = v
		}
		if v > hmax {
			hmax = v
		}
	}
	if float64(hmax) > 1.6*float64(hmin) {
		t.Errorf("Helix stash should be balanced across stages: min=%d max=%d", hmin, hmax)
	}
	if hmax >= res[sched.MethodZB1P].MaxPeakStashBytes() {
		t.Error("Helix peak stash should be far below ZB1P's")
	}
	if hmax >= ob[0] {
		t.Error("Helix peak stash should be below 1F1B stage 0")
	}
}

// TestSimAccounting sanity-checks the result bookkeeping: busy+idle+stall
// equals the iteration on every stage, spans lie within the iteration, and
// throughput is consistent.
func TestSimAccounting(t *testing.T) {
	w := costmodel.NewWorkload(model.Model3B(), costmodel.H20Cluster(), model.Shape{B: 1, S: 32768})
	costs := sched.NewCosts(w)
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 16}
	plan, err := sched.OneFOneB(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(plan, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < res.Stages; s++ {
		sum := res.BusySeconds[s] + res.CommStallSeconds[s] + res.IdleSeconds[s]
		if math.Abs(sum-res.IterationSeconds) > 1e-6*res.IterationSeconds {
			t.Errorf("stage %d: busy+stall+idle=%.6f != iteration %.6f", s, sum, res.IterationSeconds)
		}
	}
	if len(res.Spans) == 0 {
		t.Fatal("trace requested but no spans recorded")
	}
	for _, sp := range res.Spans {
		if sp.Start < 0 || sp.End > res.IterationSeconds+1e-9 || sp.End < sp.Start {
			t.Fatalf("span out of bounds: %+v", sp)
		}
	}
	tokens := int64(cfg.MicroBatches) * w.Shape.Tokens()
	if res.Throughput(tokens) <= 0 {
		t.Error("throughput must be positive")
	}
	if res.BubbleSeconds() < 0 {
		t.Error("bubble must be non-negative")
	}
}

// TestSMPenaltyStretchesCompute verifies the NCCL SM-contention model: with
// a penalty, iterations get slightly slower, and without transfers there is
// no effect.
func TestSMPenaltyStretchesCompute(t *testing.T) {
	w := costmodel.NewWorkload(model.Model7B(), costmodel.H20Cluster(), model.Shape{B: 1, S: 65536})
	costs := sched.NewCosts(w)
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 32}
	plan, err := core.Build(cfg, costs, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pen, err := Run(plan, Options{SMPenalty: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if pen.IterationSeconds < base.IterationSeconds {
		t.Error("SM penalty must not speed the iteration up")
	}
	if pen.IterationSeconds > 1.15*base.IterationSeconds {
		t.Errorf("SM penalty effect should be marginal (paper 5.3): %.3f vs %.3f",
			pen.IterationSeconds, base.IterationSeconds)
	}
}

// TestDeterminism runs the same plan twice and expects identical results.
func TestDeterminism(t *testing.T) {
	w := costmodel.NewWorkload(model.Model3B(), costmodel.A800Cluster(), model.Shape{B: 1, S: 65536})
	plans := buildAll(t, w, 4, 8)
	for method, plan := range plans {
		a := runPlan(t, plan)
		b := runPlan(t, plan)
		if a.IterationSeconds != b.IterationSeconds {
			t.Errorf("%s: nondeterministic iteration time", method)
		}
	}
}
