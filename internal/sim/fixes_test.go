package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sched"
)

// mirrorPlan relabels the plan's stages s -> p-1-s (programs and peers). A
// mirrored plan is the same schedule under a different stage naming, so any
// correct simulator must produce mirrored results.
func mirrorPlan(p *sched.Plan) *sched.Plan {
	out := *p
	out.Ops = make([][]sched.Op, p.Stages)
	for s, ops := range p.Ops {
		ms := p.Stages - 1 - s
		out.Ops[ms] = make([]sched.Op, len(ops))
		for i, op := range ops {
			if op.Kind == sched.KSend || op.Kind == sched.KRecv {
				op.Peer = p.Stages - 1 - op.Peer
			}
			out.Ops[ms][i] = op
		}
	}
	return &out
}

// TestSMPenaltyOrderIndependence pins the second-pass overlap resolution:
// before it, nicOverlap only saw NIC intervals recorded earlier in the
// engine's global pick order, so relabeling the stages of an identical plan
// could change which compute ops got stretched. Mirrored plans must now get
// mirrored results, busy second for busy second.
func TestSMPenaltyOrderIndependence(t *testing.T) {
	cfg := sched.Config{Stages: 2, MicroBatches: 4, Layers: 4}
	// Comm time comparable to compute so transfers overlap compute windows.
	costs := sched.UnitCosts(0.5)
	for name, build := range map[string]func() (*sched.Plan, error){
		"1F1B": func() (*sched.Plan, error) { return sched.OneFOneB(cfg, costs) },
		"ZB1P": func() (*sched.Plan, error) { return sched.ZB1P(cfg, costs) },
	} {
		plan, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opt := Options{SMPenalty: 0.5}
		r, err := Run(plan, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m, err := Run(mirrorPlan(plan), opt)
		if err != nil {
			t.Fatalf("%s mirrored: %v", name, err)
		}
		if math.Abs(r.IterationSeconds-m.IterationSeconds) > 1e-9 {
			t.Errorf("%s: iteration %g vs mirrored %g", name, r.IterationSeconds, m.IterationSeconds)
		}
		for s := 0; s < plan.Stages; s++ {
			ms := plan.Stages - 1 - s
			if math.Abs(r.BusySeconds[s]-m.BusySeconds[ms]) > 1e-9 {
				t.Errorf("%s: stage %d busy %g vs mirrored stage %d busy %g",
					name, s, r.BusySeconds[s], ms, m.BusySeconds[ms])
			}
		}
	}
}

// TestSMPenaltyStretchIsOrderIndependent pins the bug directly at the engine
// level: a compute op and a peer's transfer begin at the same instant, so
// which executes first in the engine's pick order is pure stage-index
// tie-breaking. Before the pre-pass oracle, the compute was stretched only
// when the sender's index let the transfer record first; the mirrored naming
// of the same plan changed the result. Both orientations must now stretch.
func TestSMPenaltyStretchIsOrderIndependent(t *testing.T) {
	const wire, dur, penalty = 5.0, 10.0, 0.5
	// computeFirst: stage 0 computes while stage 1 sends to it at t=0.
	// Stage-index tie-breaking executes the compute before the send records
	// its NIC interval. (The plan skips the validator's token semantics on
	// purpose; runEngine is the post-validation entry point.)
	mk := func(computeStage, sendStage int) *sched.Plan {
		ops := make([][]sched.Op, 2)
		ops[computeStage] = []sched.Op{{Kind: sched.KForward, MB: 0, Layer: 0, Dur: dur}}
		ops[sendStage] = []sched.Op{{Kind: sched.KSend, MB: 0, Peer: computeStage,
			Tag: sched.Tag{MB: 0}, Bytes: 1}}
		return &sched.Plan{Method: "crafted", Stages: 2, MicroBatches: 1, Layers: 2,
			Ops: ops, Costs: sched.Costs{P2PBytesPerSec: 1 / wire}}
	}
	want := dur + wire*penalty
	for name, plan := range map[string]*sched.Plan{
		"compute-on-0": mk(0, 1),
		"compute-on-1": mk(1, 0),
	} {
		r, err := runEngine(plan, Options{SMPenalty: penalty})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var busy float64
		for _, b := range r.BusySeconds {
			busy += b
		}
		if math.Abs(busy-want) > 1e-9 {
			t.Errorf("%s: busy %g, want %g (stretch must not depend on stage order)",
				name, busy, want)
		}
	}
}

// TestSMPenaltySeesLaterTransfers checks the oracle covers transfers that
// begin while a compute op is already running: the penalized makespan must
// not be shorter than the penalty-free one, and with overlapping traffic on
// a comm-heavy plan it must be strictly longer.
func TestSMPenaltySeesLaterTransfers(t *testing.T) {
	cfg := sched.Config{Stages: 2, MicroBatches: 4, Layers: 4}
	costs := sched.UnitCosts(1.0)
	plan, err := sched.OneFOneB(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pen, err := Run(plan, Options{SMPenalty: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pen.IterationSeconds < base.IterationSeconds {
		t.Errorf("penalty shortened the iteration: %g < %g",
			pen.IterationSeconds, base.IterationSeconds)
	}
	var busyBase, busyPen float64
	for s := range base.BusySeconds {
		busyBase += base.BusySeconds[s]
		busyPen += pen.BusySeconds[s]
	}
	if !(busyPen > busyBase) {
		t.Errorf("penalty did not stretch compute: %g vs %g", busyPen, busyBase)
	}
}

// TestDegenerateResultGuards pins the divide-by-zero guards on an empty
// Result.
func TestDegenerateResultGuards(t *testing.T) {
	var r Result
	if got := r.BubbleSeconds(); got != 0 || math.IsNaN(got) {
		t.Errorf("BubbleSeconds on empty result = %v, want 0", got)
	}
	if got := r.MaxPeakStashBytes(); got != 0 {
		t.Errorf("MaxPeakStashBytes on empty result = %d, want 0", got)
	}
	if got := r.Throughput(1000); got != 0 || math.IsInf(got, 1) {
		t.Errorf("Throughput on empty result = %v, want 0", got)
	}
}

// TestDeadlockErrorNamesBlockage drives the engine (below the validator)
// into a cross recv deadlock and checks the error names each blocked stage
// and the (tag, peer) it waits on.
func TestDeadlockErrorNamesBlockage(t *testing.T) {
	tagA := sched.Tag{MB: 0, Layer: 1, Bound: sched.BoundAct}
	tagB := sched.Tag{MB: 1, Layer: 2, Bound: sched.BoundAct, Back: true}
	plan := &sched.Plan{
		Method: "broken", Stages: 2, MicroBatches: 2, Layers: 2,
		Ops: [][]sched.Op{
			{{Kind: sched.KRecv, MB: 0, Peer: 1, Tag: tagA}},
			{{Kind: sched.KRecv, MB: 1, Peer: 0, Tag: tagB}},
		},
	}
	e := newEngine(plan, Options{})
	err := e.run()
	if err == nil {
		t.Fatal("cross recvs must deadlock")
	}
	msg := err.Error()
	for _, want := range []string{
		"stage 0 blocked", "stage 1 blocked",
		tagA.String(), tagB.String(),
		"from stage 1", "from stage 0",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock error %q misses %q", msg, want)
		}
	}
}

// TestVariableLengthSimulation runs a variable-length plan end to end and
// checks the timing accounting holds per stage.
func TestVariableLengthSimulation(t *testing.T) {
	cfg := sched.Config{Stages: 2, MicroBatches: 4, Layers: 4}
	costs := sched.UnitBatchCosts(0.25, []float64{1, 4, 1, 4})
	plan, err := sched.OneFOneB(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < plan.Stages; s++ {
		if want := plan.StageComputeSeconds(s); math.Abs(r.BusySeconds[s]-want) > 1e-9 {
			t.Errorf("stage %d busy %g, want compute total %g", s, r.BusySeconds[s], want)
		}
		if r.IterationSeconds < r.BusySeconds[s] {
			t.Errorf("stage %d busy exceeds makespan", s)
		}
	}
}
