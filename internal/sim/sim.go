// Package sim is a deterministic discrete-event simulator for pipeline
// schedules. It executes a sched.Plan on a simulated cluster: one compute
// stream per stage, one full-duplex NIC per stage (node), and alpha-beta
// point-to-point links. It reports iteration time, per-stage busy/idle/wait
// breakdowns, communication statistics, peak stash memory, and an optional
// task timeline for rendering.
//
// The engine replaces the paper's 64-GPU testbeds: pipeline bubbles,
// comm/compute overlap and the FILO memory behaviour are all scheduling
// phenomena that the simulated task system reproduces exactly.
//
// The hot path is allocation-free in steady state: a Runner pre-sizes every
// per-stage buffer from the plan once and reuses it across Run calls, the
// event loop is an indexed min-heap of ready stages keyed by int64 ticks,
// and blocked receivers park until their sender wakes them instead of being
// re-polled every step.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sched"
)

// Span records one executed operation for timeline rendering.
type Span struct {
	// Stage is the pipeline stage the op ran on.
	Stage int
	// Op is the executed operation.
	Op sched.Op
	// Start and End are the op's simulated time bounds in seconds. For
	// recvs, Start is when the stage began waiting and End when the message
	// arrived (End==Start for messages that were already there).
	Start, End float64
}

// Result summarises one simulated training iteration.
type Result struct {
	// Method is the simulated schedule.
	Method sched.Method
	// Stages is the pipeline size.
	Stages int
	// IterationSeconds is the makespan of one training iteration.
	IterationSeconds float64
	// BusySeconds is the per-stage compute-busy time (forward, backward,
	// recompute).
	BusySeconds []float64
	// CommStallSeconds is the per-stage time the compute stream spent
	// inside blocking sends (the naive FILO behaviour of Figure 6a).
	CommStallSeconds []float64
	// WaitSeconds is the per-stage time spent blocked in recvs waiting for
	// messages that had not arrived yet.
	WaitSeconds []float64
	// IdleSeconds is IterationSeconds minus busy and comm-stall time: the
	// pipeline bubble plus recv waiting.
	IdleSeconds []float64
	// LinkBusySeconds is the per-stage NIC busy time (max of the send and
	// receive directions).
	LinkBusySeconds []float64
	// PeakStashBytes is the per-stage peak activation stash.
	PeakStashBytes []int64
	// BytesSent is the per-stage outbound traffic.
	BytesSent []int64
	// LinkClasses breaks the iteration's communication down per link class
	// (nvlink, ib, ...), sorted by class name. Empty on runs without a
	// topology, where every transfer crosses the one flat NIC.
	LinkClasses []LinkClassStats
	// Spans is the executed-op timeline (only when Options.Trace is set).
	Spans []Span
	// PoolReused reports whether the run executed on a recycled pooled
	// Runner (set only by the package-level Run; telemetry provenance).
	PoolReused bool
}

// LinkClassStats aggregates the transfers that crossed one link class.
type LinkClassStats struct {
	// Class is the link class name ("nvlink", "ib", ...).
	Class string `json:"class"`
	// Bytes is the total volume carried by the class.
	Bytes int64 `json:"bytes"`
	// Seconds is the total wire (serialization) time spent on the class.
	Seconds float64 `json:"seconds"`
	// Transfers counts the messages.
	Transfers int `json:"transfers"`
}

// BubbleSeconds returns the mean per-stage idle time — the quantity the
// paper's Table 2 bubble formulas describe. A degenerate result with no
// per-stage breakdown has no bubble (0), not a NaN.
func (r *Result) BubbleSeconds() float64 {
	if len(r.IdleSeconds) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.IdleSeconds {
		sum += v
	}
	return sum / float64(len(r.IdleSeconds))
}

// MaxPeakStashBytes returns the largest per-stage stash peak (0 on a
// degenerate result with no per-stage breakdown).
func (r *Result) MaxPeakStashBytes() int64 {
	var peak int64
	for _, v := range r.PeakStashBytes {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Throughput returns tokens-per-second given the tokens processed per
// iteration (the per-micro-batch token sum on variable-length workloads).
// A degenerate result with a non-positive makespan yields 0, not an Inf/NaN.
func (r *Result) Throughput(tokensPerIteration int64) float64 {
	if r.IterationSeconds <= 0 {
		return 0
	}
	return float64(tokensPerIteration) / r.IterationSeconds
}

// Clone returns a deep copy of the result that aliases no Runner buffer, so
// it stays valid after the Runner's next Run (or its return to the pool).
func (r *Result) Clone() *Result {
	out := *r
	out.BusySeconds = append([]float64(nil), r.BusySeconds...)
	out.CommStallSeconds = append([]float64(nil), r.CommStallSeconds...)
	out.WaitSeconds = append([]float64(nil), r.WaitSeconds...)
	out.IdleSeconds = append([]float64(nil), r.IdleSeconds...)
	out.LinkBusySeconds = append([]float64(nil), r.LinkBusySeconds...)
	out.PeakStashBytes = append([]int64(nil), r.PeakStashBytes...)
	out.BytesSent = append([]int64(nil), r.BytesSent...)
	out.LinkClasses = append([]LinkClassStats(nil), r.LinkClasses...)
	out.Spans = append([]Span(nil), r.Spans...)
	return &out
}

// Options tunes a simulation run.
type Options struct {
	// Trace records a Span per executed op.
	Trace bool
	// SMPenalty is the fraction of compute throughput lost while NIC
	// transfers overlap a compute op (NCCL steals SMs; paper section 5.3
	// observes the effect is marginal). Compute ops are stretched by
	// SMPenalty times their overlap with NIC busy intervals.
	SMPenalty float64
	// SendLaunchSeconds is the compute-stream cost of initiating an async
	// send (kernel launch + NCCL bookkeeping).
	SendLaunchSeconds float64
	// Topology, when set, replaces the plan's single flat NIC model: each
	// transfer's bandwidth and latency come from the link class between its
	// endpoints' placed devices, and each stage's compute is stretched by the
	// topology's perturbation factors (straggler, jitter). The SMPenalty
	// pre-pass runs under the same topology, so the stretch stays
	// order-independent.
	Topology *cluster.Topology
}

// Run simulates one training iteration of the plan and returns the result.
//
// With a non-zero SMPenalty the simulation runs twice: a penalty-free pass
// first records the complete NIC transfer timeline, then the reported pass
// stretches compute ops against that final interval set. Resolving overlap
// against the final set (instead of whatever transfers happened to be
// recorded before a compute op in the engine's global pick order) makes the
// penalty order-independent: identical plans always stretch identically,
// whatever the tie-breaking.
//
// Run draws a Runner from an internal pool and rebinds it to the plan, so
// cold starts reuse the per-stage buffers of earlier calls instead of
// reallocating them; the returned Result is a deep copy the caller owns. To
// re-simulate the same plan repeatedly (a benchmark steady state, a fleet
// pricing loop) build a Runner once and reuse it — reruns are then
// allocation-free.
func Run(plan *sched.Plan, opt Options) (*Result, error) {
	if err := sched.Validate(plan); err != nil {
		return nil, fmt.Errorf("sim: invalid plan: %w", err)
	}
	if opt.Topology != nil {
		if err := opt.Topology.CheckStages(plan.Stages); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	r := runnerPool.Get().(*Runner)
	poolGets.Inc()
	reused := r.used
	r.used = true
	r.reinit(plan, opt)
	res, err := r.Run()
	if err != nil {
		runnerPool.Put(r)
		poolPuts.Inc()
		return nil, err
	}
	out := res.Clone()
	runnerPool.Put(r)
	poolPuts.Inc()
	out.PoolReused = reused
	return out, nil
}

// runnerPool recycles Runners across cold-start Run calls. A pooled Runner
// keeps its per-stage buffers; reinit resizes them to the next plan reusing
// their capacity.
var runnerPool = sync.Pool{New: func() any {
	poolCold.Inc()
	return &Runner{eng: &engine{}}
}}

// Pool traffic publishes to the default registry through package-level
// instruments resolved once at init: the gated hot paths stay
// allocation-free (Counter.Inc is one atomic add).
var (
	poolGets = obs.Default().Counter("helix_sim_runner_pool_gets_total")
	poolPuts = obs.Default().Counter("helix_sim_runner_pool_puts_total")
	poolCold = obs.Default().Counter("helix_sim_runner_pool_cold_inits_total")
)

// Runner is a reusable simulator for one plan: every per-stage buffer is
// allocated and pre-sized once, from the plan, and reused across Run calls.
// In steady state (second Run onward) a Runner performs zero heap
// allocations per run — the property the alloc-gate CI step pins.
//
// A Runner is not safe for concurrent use, and the Result it returns aliases
// its internal buffers: the result (including Spans) is valid only until the
// next Run call. Callers that need to keep a result across runs must copy it.
type Runner struct {
	eng *engine
	// pre is the penalty-free pre-pass engine of SMPenalty runs; its NIC
	// timeline is the oracle the reported pass resolves overlap against.
	pre *engine
	res Result
	// used marks a pool-managed Runner that has executed at least one run,
	// so Run can report buffer reuse in the result's provenance.
	used bool
}

// NewRunner validates the plan against the options and returns a reusable
// simulator for it.
func NewRunner(plan *sched.Plan, opt Options) (*Runner, error) {
	if err := sched.Validate(plan); err != nil {
		return nil, fmt.Errorf("sim: invalid plan: %w", err)
	}
	if opt.Topology != nil {
		if err := opt.Topology.CheckStages(plan.Stages); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	return newRunner(plan, opt), nil
}

// newRunner builds the runner below the validator; crafted test plans enter
// here via runEngine.
func newRunner(plan *sched.Plan, opt Options) *Runner {
	r := &Runner{eng: &engine{}}
	r.reinit(plan, opt)
	return r
}

// reinit rebinds the runner to a plan and options, reusing every buffer
// capacity left by the previous binding.
func (r *Runner) reinit(plan *sched.Plan, opt Options) {
	r.eng.reinit(plan, opt)
	if opt.SMPenalty > 0 {
		if r.pre == nil {
			r.pre = &engine{}
		}
		r.pre.reinit(plan, opt)
		r.pre.opt.SMPenalty = 0
		r.pre.opt.Trace = false
	} else {
		// A stale pre-pass engine would wrongly install its NIC oracle on the
		// reported pass; drop it until a penalized plan needs one again.
		r.pre = nil
	}
}

// runEngine simulates one iteration below the validator.
func runEngine(plan *sched.Plan, opt Options) (*Result, error) {
	return newRunner(plan, opt).Run()
}

// Run simulates one training iteration. The returned Result aliases the
// Runner's buffers and is valid until the next Run call.
func (r *Runner) Run() (*Result, error) {
	if r.pre != nil {
		r.pre.reset()
		if err := r.pre.run(); err != nil {
			return nil, err
		}
		r.eng.oracle = &r.pre.nic
	}
	r.eng.reset()
	if err := r.eng.run(); err != nil {
		return nil, err
	}
	r.eng.resultInto(&r.res)
	return &r.res, nil
}

// message tracks one in-flight transfer.
type message struct {
	arrival float64
}

// tick is simulated time as an int64 the event loop orders stages by: the
// order-preserving bit pattern of the non-negative float64 second count
// (IEEE 754 ordering matches numeric ordering for non-negative values).
// Encoding time this way keeps heap comparisons branch-cheap integer
// compares while the engine's arithmetic stays in float64 seconds — no
// quantization, so results are bit-identical to float ordering.
type tick int64

func toTick(sec float64) tick { return tick(math.Float64bits(sec)) }

// interval is one NIC reservation. seq is the transfer's global initiation
// order: overlap sums accumulate in seq order so the floating-point result
// is independent of how the per-direction timelines are stored.
type interval struct {
	start, end float64
	seq        int32
}

// nicLog is the per-stage NIC reservation timeline, split by direction.
// Within one direction the intervals are non-overlapping and sorted (each
// direction serializes its transfers), so overlap queries binary-search
// instead of scanning.
type nicLog struct {
	send, recv [][]interval
}

type engine struct {
	plan *sched.Plan
	opt  Options

	pc    []int32
	clock []float64
	tick  []tick

	// ready is the indexed min-heap of runnable stages ordered by
	// (tick, stage); pos[s] is s's heap index, -1 while s is parked on a
	// recv whose message is not in flight yet (or complete).
	ready []int32
	pos   []int32

	sendFree []float64 // NIC send-direction availability per stage
	recvFree []float64 // NIC recv-direction availability per stage
	nic      nicLog
	seq      int32
	// oracle, when set, is the complete NIC timeline of a penalty-free
	// pre-pass; SMPenalty overlap is resolved against it so the stretch does
	// not depend on the engine's pick order.
	oracle *nicLog

	inflight map[msgKey]message
	// classStats aggregates transfers per link class under a topology.
	// Entries persist (zeroed) across reset so reruns stay allocation-free.
	classStats map[cluster.LinkClass]*LinkClassStats

	busy      []float64
	commStall []float64
	wait      []float64
	linkBusy  []float64
	sent      []int64
	stash     []int64
	peak      []int64

	idle    []float64
	classes []LinkClassStats

	spans []Span
}

type msgKey struct {
	tag      sched.Tag
	from, to int
}

func newEngine(plan *sched.Plan, opt Options) *engine {
	e := &engine{}
	e.reinit(plan, opt)
	return e
}

// grow returns s resized to length n, reusing its backing array when the
// capacity suffices. Retained elements may hold stale values from a previous
// binding; reset (which every Run begins with) rewrites them.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// reinit rebinds the engine to a plan, resizing every per-stage buffer and
// keeping whatever capacity a previous binding left behind — the cold-start
// Run pool relies on this to avoid re-allocating the engine per call.
func (e *engine) reinit(plan *sched.Plan, opt Options) {
	p := plan.Stages
	e.plan = plan
	e.opt = opt
	e.oracle = nil
	e.pc = grow(e.pc, p)
	e.clock = grow(e.clock, p)
	e.tick = grow(e.tick, p)
	if cap(e.ready) < p {
		e.ready = make([]int32, 0, p)
	}
	e.ready = e.ready[:0]
	e.pos = grow(e.pos, p)
	e.sendFree = grow(e.sendFree, p)
	e.recvFree = grow(e.recvFree, p)
	e.nic.send = grow(e.nic.send, p)
	e.nic.recv = grow(e.nic.recv, p)
	if e.inflight == nil {
		e.inflight = map[msgKey]message{}
	}
	if e.classStats == nil {
		e.classStats = map[cluster.LinkClass]*LinkClassStats{}
	}
	e.busy = grow(e.busy, p)
	e.commStall = grow(e.commStall, p)
	e.wait = grow(e.wait, p)
	e.linkBusy = grow(e.linkBusy, p)
	e.sent = grow(e.sent, p)
	e.stash = grow(e.stash, p)
	e.peak = grow(e.peak, p)
	e.idle = grow(e.idle, p)
	for s := range e.pos {
		e.pos[s] = -1
	}
	// Pre-size the NIC timelines and the span buffer exactly from the plan:
	// sends and receives per stage are known up front, so steady-state runs
	// never grow a buffer.
	sends := make([]int, p)
	recvs := make([]int, p)
	ops := 0
	for s := 0; s < p; s++ {
		ops += len(plan.Ops[s])
		for i := range plan.Ops[s] {
			if plan.Ops[s][i].Kind == sched.KSend {
				sends[s]++
				if peer := plan.Ops[s][i].Peer; peer >= 0 && peer < p {
					recvs[peer]++
				}
			}
		}
	}
	for s := 0; s < p; s++ {
		if cap(e.nic.send[s]) < sends[s] {
			e.nic.send[s] = make([]interval, 0, sends[s])
		}
		e.nic.send[s] = e.nic.send[s][:0]
		if cap(e.nic.recv[s]) < recvs[s] {
			e.nic.recv[s] = make([]interval, 0, recvs[s])
		}
		e.nic.recv[s] = e.nic.recv[s][:0]
	}
	if opt.Trace && cap(e.spans) < ops {
		e.spans = make([]Span, 0, ops)
	}
	e.spans = e.spans[:0]
}

// reset rewinds the engine to the start of an iteration, keeping every
// buffer's capacity.
func (e *engine) reset() {
	p := e.plan.Stages
	for s := 0; s < p; s++ {
		e.pc[s] = 0
		e.clock[s] = 0
		e.tick[s] = 0
		e.pos[s] = -1
		e.sendFree[s] = 0
		e.recvFree[s] = 0
		e.nic.send[s] = e.nic.send[s][:0]
		e.nic.recv[s] = e.nic.recv[s][:0]
		e.busy[s] = 0
		e.commStall[s] = 0
		e.wait[s] = 0
		e.linkBusy[s] = 0
		e.sent[s] = 0
		e.stash[s] = 0
		e.peak[s] = 0
	}
	e.ready = e.ready[:0]
	e.seq = 0
	clear(e.inflight)
	for _, st := range e.classStats {
		*st = LinkClassStats{Class: st.Class}
	}
	e.classes = e.classes[:0]
	e.spans = e.spans[:0]
}

// heapLess orders ready stages by (tick, stage): the smallest clock runs
// first, ties to the lowest stage index — the same global pick order as a
// linear minimum scan, so schedules execute identically.
func (e *engine) heapLess(a, b int32) bool {
	if e.tick[a] != e.tick[b] {
		return e.tick[a] < e.tick[b]
	}
	return a < b
}

func (e *engine) heapPush(s int32) {
	e.ready = append(e.ready, s)
	i := int32(len(e.ready) - 1)
	e.pos[s] = i
	e.siftUp(i)
}

func (e *engine) heapPop() int32 {
	s := e.ready[0]
	last := int32(len(e.ready) - 1)
	e.ready[0] = e.ready[last]
	e.pos[e.ready[0]] = 0
	e.ready = e.ready[:last]
	if last > 0 {
		e.siftDown(0)
	}
	e.pos[s] = -1
	return s
}

func (e *engine) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heapLess(e.ready[i], e.ready[parent]) {
			return
		}
		e.ready[i], e.ready[parent] = e.ready[parent], e.ready[i]
		e.pos[e.ready[i]] = i
		e.pos[e.ready[parent]] = parent
		i = parent
	}
}

func (e *engine) siftDown(i int32) {
	n := int32(len(e.ready))
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && e.heapLess(e.ready[left], e.ready[smallest]) {
			smallest = left
		}
		if right < n && e.heapLess(e.ready[right], e.ready[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		e.ready[i], e.ready[smallest] = e.ready[smallest], e.ready[i]
		e.pos[e.ready[i]] = i
		e.pos[e.ready[smallest]] = smallest
		i = smallest
	}
}

// runnable reports whether the stage's next op can execute now: anything but
// a recv, or a recv whose message is already in flight.
func (e *engine) runnable(s int32) bool {
	op := &e.plan.Ops[s][e.pc[s]]
	if op.Kind != sched.KRecv {
		return true
	}
	_, ok := e.inflight[msgKey{tag: op.Tag, from: op.Peer, to: int(s)}]
	return ok
}

// run advances stages in global time order until every program completes:
// the ready heap always pops the unblocked stage with the smallest clock, so
// NIC reservations happen in non-decreasing global time. Stages whose next
// op is a recv with no message in flight park outside the heap until their
// sender initiates (execSend wakes them), replacing the per-step rescan of
// every stage with one push.
func (e *engine) run() error {
	p := e.plan.Stages
	for s := 0; s < p; s++ {
		if len(e.plan.Ops[s]) == 0 {
			continue
		}
		if e.runnable(int32(s)) {
			e.heapPush(int32(s))
		}
	}
	for len(e.ready) > 0 {
		s := e.heapPop()
		e.step(s)
		if int(e.pc[s]) < len(e.plan.Ops[s]) && e.runnable(s) {
			e.heapPush(s)
		}
	}
	for s := 0; s < p; s++ {
		if int(e.pc[s]) < len(e.plan.Ops[s]) {
			return e.deadlockError()
		}
	}
	return nil
}

// step executes exactly one op on the given stage.
func (e *engine) step(s int32) {
	op := &e.plan.Ops[s][e.pc[s]]
	start := e.clock[s]
	switch op.Kind {
	case sched.KSend:
		e.execSend(s, op, start)
	case sched.KRecv:
		key := msgKey{tag: op.Tag, from: op.Peer, to: int(s)}
		msg := e.inflight[key]
		delete(e.inflight, key)
		end := msg.arrival
		if start > end {
			end = start
		}
		e.wait[s] += end - start
		e.setClock(s, end)
		e.record(s, op, start, end)
	default: // compute
		dur := op.Dur
		if t := e.opt.Topology; t != nil && len(e.plan.Costs.PerStage) == 0 {
			// Straggler and jitter perturbations stretch this stage's compute.
			// Placement-resolved books (Costs.PerStage) already price those
			// factors into op durations, so they must not be applied twice.
			dur *= t.ComputeFactor(int(s))
		}
		if e.opt.SMPenalty > 0 {
			overlap := e.nicOverlap(s, start, start+dur)
			dur += overlap * e.opt.SMPenalty
		}
		end := start + dur
		e.stash[s] += op.Alloc
		if e.stash[s] > e.peak[s] {
			e.peak[s] = e.stash[s]
		}
		e.stash[s] -= op.Free
		e.busy[s] += dur
		e.setClock(s, end)
		e.record(s, op, start, end)
	}
	e.pc[s]++
}

func (e *engine) setClock(s int32, v float64) {
	e.clock[s] = v
	e.tick[s] = toTick(v)
}

// execSend reserves the NIC pair and computes the arrival time. Blocking
// sends additionally hold the compute stream until the message lands. If the
// receiver is parked on exactly this message, it wakes into the ready heap.
func (e *engine) execSend(s int32, op *sched.Op, start float64) {
	c := e.plan.Costs
	// The flat NIC parameters of the cost book, unless a topology resolves
	// this stage pair to a concrete link.
	bytesPerSec, latency := c.P2PBytesPerSec, c.P2PLatency
	if t := e.opt.Topology; t != nil {
		var class cluster.LinkClass
		bytesPerSec, latency, class = t.Link(int(s), op.Peer)
		st, ok := e.classStats[class]
		if !ok {
			st = &LinkClassStats{Class: string(class)}
			e.classStats[class] = st
		}
		st.Bytes += op.Bytes
		st.Transfers++
		if bytesPerSec > 0 {
			st.Seconds += float64(op.Bytes) / bytesPerSec
		}
	}
	launch := e.opt.SendLaunchSeconds
	xferStart := start + launch
	if e.sendFree[s] > xferStart {
		xferStart = e.sendFree[s]
	}
	if e.recvFree[op.Peer] > xferStart {
		xferStart = e.recvFree[op.Peer]
	}
	var wireDur float64
	if bytesPerSec > 0 {
		wireDur = float64(op.Bytes) / bytesPerSec
	}
	xferEnd := xferStart + wireDur
	arrival := xferEnd + latency
	e.sendFree[s] = xferEnd
	e.recvFree[op.Peer] = xferEnd
	iv := interval{start: xferStart, end: xferEnd, seq: e.seq}
	e.seq++
	e.nic.send[s] = append(e.nic.send[s], iv)
	e.nic.recv[op.Peer] = append(e.nic.recv[op.Peer], iv)
	e.linkBusy[s] += wireDur
	e.sent[s] += op.Bytes
	e.inflight[msgKey{tag: op.Tag, from: int(s), to: op.Peer}] = message{arrival: arrival}
	// Wake a receiver parked on exactly this message.
	if p := int32(op.Peer); p != s && e.pos[p] < 0 && int(e.pc[p]) < len(e.plan.Ops[p]) {
		next := &e.plan.Ops[p][e.pc[p]]
		if next.Kind == sched.KRecv && next.Peer == int(s) && next.Tag == op.Tag {
			e.heapPush(p)
		}
	}
	if op.Blocking {
		e.commStall[s] += arrival - start
		e.setClock(s, arrival)
		e.record(s, op, start, arrival)
		return
	}
	e.setClock(s, start+launch)
	e.record(s, op, start, start+launch)
}

// nicOverlap returns the total overlap of [start, end] with this stage's NIC
// transfer intervals: the penalty-free pre-pass oracle when one exists (the
// order-independent final set), the intervals recorded so far otherwise.
// Each direction's timeline is sorted and non-overlapping, so the
// overlapping run is found by binary search; the two runs are then merged in
// transfer-initiation (seq) order so the sum accumulates exactly as a single
// chronological scan would.
func (e *engine) nicOverlap(s int32, start, end float64) float64 {
	log := &e.nic
	if e.oracle != nil {
		log = e.oracle
	}
	sendRun := overlapRun(log.send[s], start, end)
	recvRun := overlapRun(log.recv[s], start, end)
	var total float64
	i, j := 0, 0
	for i < len(sendRun) && j < len(recvRun) {
		if sendRun[i].seq < recvRun[j].seq {
			total += clampedOverlap(sendRun[i], start, end)
			i++
		} else {
			total += clampedOverlap(recvRun[j], start, end)
			j++
		}
	}
	for ; i < len(sendRun); i++ {
		total += clampedOverlap(sendRun[i], start, end)
	}
	for ; j < len(recvRun); j++ {
		total += clampedOverlap(recvRun[j], start, end)
	}
	return total
}

// overlapRun returns the contiguous run of intervals overlapping [start,
// end] within one sorted, non-overlapping timeline.
func overlapRun(ivs []interval, start, end float64) []interval {
	// First interval that ends after the query starts (ends are
	// non-decreasing).
	lo := sort.Search(len(ivs), func(i int) bool { return ivs[i].end > start })
	hi := lo
	for hi < len(ivs) && ivs[hi].start < end {
		hi++
	}
	return ivs[lo:hi]
}

func clampedOverlap(iv interval, start, end float64) float64 {
	lo, hi := iv.start, iv.end
	if start > lo {
		lo = start
	}
	if end < hi {
		hi = end
	}
	if hi > lo {
		return hi - lo
	}
	return 0
}

// deadlockError names every blocked stage and the (tag, peer) it waits on, so
// a bad generator can be debugged from the error alone.
func (e *engine) deadlockError() error {
	var b []byte
	for s := 0; s < e.plan.Stages; s++ {
		if int(e.pc[s]) >= len(e.plan.Ops[s]) {
			continue
		}
		op := e.plan.Ops[s][e.pc[s]]
		if len(b) > 0 {
			b = append(b, "; "...)
		}
		b = fmt.Appendf(b, "stage %d blocked at op %d/%d", s, e.pc[s], len(e.plan.Ops[s]))
		if op.Kind == sched.KRecv {
			b = fmt.Appendf(b, " waiting for tag %v from stage %d (send never initiated)", op.Tag, op.Peer)
		} else {
			b = fmt.Appendf(b, " (%v)", op)
		}
	}
	return fmt.Errorf("sim: deadlock — %s", b)
}

func (e *engine) record(s int32, op *sched.Op, start, end float64) {
	if e.opt.Trace {
		e.spans = append(e.spans, Span{Stage: int(s), Op: *op, Start: start, End: end})
	}
}

// resultInto fills the result from the engine's accumulators. The result's
// slices alias the engine's reusable buffers.
func (e *engine) resultInto(r *Result) {
	p := e.plan.Stages
	var iter float64
	for s := 0; s < p; s++ {
		if e.clock[s] > iter {
			iter = e.clock[s]
		}
	}
	for s := 0; s < p; s++ {
		e.idle[s] = iter - e.busy[s] - e.commStall[s]
		if e.idle[s] < 0 {
			e.idle[s] = 0
		}
	}
	if e.opt.Trace {
		sort.SliceStable(e.spans, func(i, j int) bool {
			if e.spans[i].Start != e.spans[j].Start {
				return e.spans[i].Start < e.spans[j].Start
			}
			return e.spans[i].Stage < e.spans[j].Stage
		})
	}
	for _, st := range e.classStats {
		if st.Transfers > 0 {
			e.classes = append(e.classes, *st)
		}
	}
	// Insertion sort by class name: the handful of link classes does not
	// justify sort.Slice's closure allocation on the steady-state path.
	for i := 1; i < len(e.classes); i++ {
		for j := i; j > 0 && e.classes[j].Class < e.classes[j-1].Class; j-- {
			e.classes[j], e.classes[j-1] = e.classes[j-1], e.classes[j]
		}
	}
	*r = Result{
		Method:           e.plan.Method,
		Stages:           p,
		IterationSeconds: iter,
		BusySeconds:      e.busy,
		CommStallSeconds: e.commStall,
		WaitSeconds:      e.wait,
		IdleSeconds:      e.idle,
		LinkBusySeconds:  e.linkBusy,
		PeakStashBytes:   e.peak,
		BytesSent:        e.sent,
		LinkClasses:      e.classes,
		Spans:            e.spans,
	}
	if len(e.classes) == 0 {
		r.LinkClasses = nil
	}
	if len(e.spans) == 0 {
		r.Spans = nil
	}
}
