// Package sim is a deterministic discrete-event simulator for pipeline
// schedules. It executes a sched.Plan on a simulated cluster: one compute
// stream per stage, one full-duplex NIC per stage (node), and alpha-beta
// point-to-point links. It reports iteration time, per-stage busy/idle/wait
// breakdowns, communication statistics, peak stash memory, and an optional
// task timeline for rendering.
//
// The engine replaces the paper's 64-GPU testbeds: pipeline bubbles,
// comm/compute overlap and the FILO memory behaviour are all scheduling
// phenomena that the simulated task system reproduces exactly.
package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sched"
)

// Span records one executed operation for timeline rendering.
type Span struct {
	// Stage is the pipeline stage the op ran on.
	Stage int
	// Op is the executed operation.
	Op sched.Op
	// Start and End are the op's simulated time bounds in seconds. For
	// recvs, Start is when the stage began waiting and End when the message
	// arrived (End==Start for messages that were already there).
	Start, End float64
}

// Result summarises one simulated training iteration.
type Result struct {
	// Method is the simulated schedule.
	Method sched.Method
	// Stages is the pipeline size.
	Stages int
	// IterationSeconds is the makespan of one training iteration.
	IterationSeconds float64
	// BusySeconds is the per-stage compute-busy time (forward, backward,
	// recompute).
	BusySeconds []float64
	// CommStallSeconds is the per-stage time the compute stream spent
	// inside blocking sends (the naive FILO behaviour of Figure 6a).
	CommStallSeconds []float64
	// WaitSeconds is the per-stage time spent blocked in recvs waiting for
	// messages that had not arrived yet.
	WaitSeconds []float64
	// IdleSeconds is IterationSeconds minus busy and comm-stall time: the
	// pipeline bubble plus recv waiting.
	IdleSeconds []float64
	// LinkBusySeconds is the per-stage NIC busy time (max of the send and
	// receive directions).
	LinkBusySeconds []float64
	// PeakStashBytes is the per-stage peak activation stash.
	PeakStashBytes []int64
	// BytesSent is the per-stage outbound traffic.
	BytesSent []int64
	// LinkClasses breaks the iteration's communication down per link class
	// (nvlink, ib, ...), sorted by class name. Empty on runs without a
	// topology, where every transfer crosses the one flat NIC.
	LinkClasses []LinkClassStats
	// Spans is the executed-op timeline (only when Options.Trace is set).
	Spans []Span
}

// LinkClassStats aggregates the transfers that crossed one link class.
type LinkClassStats struct {
	// Class is the link class name ("nvlink", "ib", ...).
	Class string `json:"class"`
	// Bytes is the total volume carried by the class.
	Bytes int64 `json:"bytes"`
	// Seconds is the total wire (serialization) time spent on the class.
	Seconds float64 `json:"seconds"`
	// Transfers counts the messages.
	Transfers int `json:"transfers"`
}

// BubbleSeconds returns the mean per-stage idle time — the quantity the
// paper's Table 2 bubble formulas describe. A degenerate result with no
// per-stage breakdown has no bubble (0), not a NaN.
func (r *Result) BubbleSeconds() float64 {
	if len(r.IdleSeconds) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.IdleSeconds {
		sum += v
	}
	return sum / float64(len(r.IdleSeconds))
}

// MaxPeakStashBytes returns the largest per-stage stash peak (0 on a
// degenerate result with no per-stage breakdown).
func (r *Result) MaxPeakStashBytes() int64 {
	var peak int64
	for _, v := range r.PeakStashBytes {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Throughput returns tokens-per-second given the tokens processed per
// iteration (the per-micro-batch token sum on variable-length workloads).
// A degenerate result with a non-positive makespan yields 0, not an Inf/NaN.
func (r *Result) Throughput(tokensPerIteration int64) float64 {
	if r.IterationSeconds <= 0 {
		return 0
	}
	return float64(tokensPerIteration) / r.IterationSeconds
}

// Options tunes a simulation run.
type Options struct {
	// Trace records a Span per executed op.
	Trace bool
	// SMPenalty is the fraction of compute throughput lost while NIC
	// transfers overlap a compute op (NCCL steals SMs; paper section 5.3
	// observes the effect is marginal). Compute ops are stretched by
	// SMPenalty times their overlap with NIC busy intervals.
	SMPenalty float64
	// SendLaunchSeconds is the compute-stream cost of initiating an async
	// send (kernel launch + NCCL bookkeeping).
	SendLaunchSeconds float64
	// Topology, when set, replaces the plan's single flat NIC model: each
	// transfer's bandwidth and latency come from the link class between its
	// endpoints' placed devices, and each stage's compute is stretched by the
	// topology's perturbation factors (straggler, jitter). The SMPenalty
	// pre-pass runs under the same topology, so the stretch stays
	// order-independent.
	Topology *cluster.Topology
}

// Run simulates one training iteration of the plan and returns the result.
//
// With a non-zero SMPenalty the simulation runs twice: a penalty-free pass
// first records the complete NIC transfer timeline, then the reported pass
// stretches compute ops against that final interval set. Resolving overlap
// against the final set (instead of whatever transfers happened to be
// recorded before a compute op in the engine's global pick order) makes the
// penalty order-independent: identical plans always stretch identically,
// whatever the tie-breaking.
func Run(plan *sched.Plan, opt Options) (*Result, error) {
	if err := sched.Validate(plan); err != nil {
		return nil, fmt.Errorf("sim: invalid plan: %w", err)
	}
	if opt.Topology != nil {
		if err := opt.Topology.CheckStages(plan.Stages); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	return runEngine(plan, opt)
}

// runEngine executes the (already validated) plan, including the SMPenalty
// pre-pass.
func runEngine(plan *sched.Plan, opt Options) (*Result, error) {
	e := newEngine(plan, opt)
	if opt.SMPenalty > 0 {
		pre := newEngine(plan, opt)
		pre.opt.SMPenalty = 0
		pre.opt.Trace = false
		if err := pre.run(); err != nil {
			return nil, err
		}
		e.nicOracle = pre.nicBusy
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	return e.result(), nil
}

// message tracks one in-flight transfer.
type message struct {
	arrival float64
}

type interval struct{ start, end float64 }

type engine struct {
	plan *sched.Plan
	opt  Options

	pc    []int
	clock []float64

	sendFree []float64 // NIC send-direction availability per stage
	recvFree []float64 // NIC recv-direction availability per stage
	nicBusy  [][]interval
	// nicOracle, when set, is the complete per-stage NIC interval set of a
	// penalty-free pre-pass; SMPenalty overlap is resolved against it so the
	// stretch does not depend on the engine's pick order.
	nicOracle [][]interval

	inflight map[msgKey]message
	// classStats aggregates transfers per link class under a topology.
	classStats map[cluster.LinkClass]*LinkClassStats

	busy      []float64
	commStall []float64
	wait      []float64
	linkBusy  []float64
	sent      []int64
	stash     []int64
	peak      []int64

	spans []Span
}

type msgKey struct {
	tag      sched.Tag
	from, to int
}

func newEngine(plan *sched.Plan, opt Options) *engine {
	p := plan.Stages
	e := &engine{
		plan:       plan,
		opt:        opt,
		pc:         make([]int, p),
		clock:      make([]float64, p),
		sendFree:   make([]float64, p),
		recvFree:   make([]float64, p),
		nicBusy:    make([][]interval, p),
		inflight:   map[msgKey]message{},
		classStats: map[cluster.LinkClass]*LinkClassStats{},
		busy:       make([]float64, p),
		commStall:  make([]float64, p),
		wait:       make([]float64, p),
		linkBusy:   make([]float64, p),
		sent:       make([]int64, p),
		stash:      make([]int64, p),
		peak:       make([]int64, p),
	}
	return e
}

// run advances stages in global time order until every program completes.
func (e *engine) run() error {
	p := e.plan.Stages
	for {
		// Pick the unblocked stage with the smallest clock so that NIC
		// reservations happen in non-decreasing global time.
		best, bestClock := -1, math.MaxFloat64
		blockedAll := true
		for s := 0; s < p; s++ {
			if e.pc[s] >= len(e.plan.Ops[s]) {
				continue
			}
			blockedAll = false
			op := e.plan.Ops[s][e.pc[s]]
			if op.Kind == sched.KRecv {
				if _, ok := e.inflight[msgKey{tag: op.Tag, from: op.Peer, to: s}]; !ok {
					continue // sender has not initiated yet
				}
			}
			if e.clock[s] < bestClock {
				best, bestClock = s, e.clock[s]
			}
		}
		if best < 0 {
			if blockedAll {
				return nil // all programs complete
			}
			return e.deadlockError()
		}
		e.step(best)
	}
}

// step executes exactly one op on the given stage.
func (e *engine) step(s int) {
	op := e.plan.Ops[s][e.pc[s]]
	start := e.clock[s]
	switch op.Kind {
	case sched.KSend:
		e.execSend(s, op, start)
	case sched.KRecv:
		key := msgKey{tag: op.Tag, from: op.Peer, to: s}
		msg := e.inflight[key]
		delete(e.inflight, key)
		end := math.Max(start, msg.arrival)
		e.wait[s] += end - start
		e.clock[s] = end
		e.record(s, op, start, end)
	default: // compute
		dur := op.Dur
		if t := e.opt.Topology; t != nil {
			// Straggler and jitter perturbations stretch this stage's compute.
			dur *= t.ComputeFactor(s)
		}
		if e.opt.SMPenalty > 0 {
			overlap := e.nicOverlap(s, start, start+dur)
			dur += overlap * e.opt.SMPenalty
		}
		end := start + dur
		e.stash[s] += op.Alloc
		if e.stash[s] > e.peak[s] {
			e.peak[s] = e.stash[s]
		}
		e.stash[s] -= op.Free
		e.busy[s] += dur
		e.clock[s] = end
		e.record(s, op, start, end)
	}
	e.pc[s]++
}

// execSend reserves the NIC pair and computes the arrival time. Blocking
// sends additionally hold the compute stream until the message lands.
func (e *engine) execSend(s int, op sched.Op, start float64) {
	c := e.plan.Costs
	// The flat NIC parameters of the cost book, unless a topology resolves
	// this stage pair to a concrete link.
	bytesPerSec, latency := c.P2PBytesPerSec, c.P2PLatency
	if t := e.opt.Topology; t != nil {
		var class cluster.LinkClass
		bytesPerSec, latency, class = t.Link(s, op.Peer)
		st, ok := e.classStats[class]
		if !ok {
			st = &LinkClassStats{Class: string(class)}
			e.classStats[class] = st
		}
		st.Bytes += op.Bytes
		st.Transfers++
		if bytesPerSec > 0 {
			st.Seconds += float64(op.Bytes) / bytesPerSec
		}
	}
	launch := e.opt.SendLaunchSeconds
	initiate := start + launch
	xferStart := math.Max(initiate, math.Max(e.sendFree[s], e.recvFree[op.Peer]))
	var wireDur float64
	if bytesPerSec > 0 {
		wireDur = float64(op.Bytes) / bytesPerSec
	}
	xferEnd := xferStart + wireDur
	arrival := xferEnd + latency
	e.sendFree[s] = xferEnd
	e.recvFree[op.Peer] = xferEnd
	e.nicBusy[s] = append(e.nicBusy[s], interval{xferStart, xferEnd})
	e.nicBusy[op.Peer] = append(e.nicBusy[op.Peer], interval{xferStart, xferEnd})
	e.linkBusy[s] += wireDur
	e.sent[s] += op.Bytes
	e.inflight[msgKey{tag: op.Tag, from: s, to: op.Peer}] = message{arrival: arrival}
	if op.Blocking {
		e.commStall[s] += arrival - start
		e.clock[s] = arrival
		e.record(s, op, start, arrival)
		return
	}
	e.clock[s] = start + launch
	e.record(s, op, start, start+launch)
}

// nicOverlap returns the total overlap of [start, end] with this stage's NIC
// transfer intervals: the penalty-free pre-pass oracle when one exists (the
// order-independent final set), the intervals recorded so far otherwise.
func (e *engine) nicOverlap(s int, start, end float64) float64 {
	busy := e.nicBusy[s]
	if e.nicOracle != nil {
		busy = e.nicOracle[s]
	}
	var total float64
	for _, iv := range busy {
		lo := math.Max(start, iv.start)
		hi := math.Min(end, iv.end)
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// deadlockError names every blocked stage and the (tag, peer) it waits on, so
// a bad generator can be debugged from the error alone.
func (e *engine) deadlockError() error {
	var b []byte
	for s := 0; s < e.plan.Stages; s++ {
		if e.pc[s] >= len(e.plan.Ops[s]) {
			continue
		}
		op := e.plan.Ops[s][e.pc[s]]
		if len(b) > 0 {
			b = append(b, "; "...)
		}
		b = fmt.Appendf(b, "stage %d blocked at op %d/%d", s, e.pc[s], len(e.plan.Ops[s]))
		if op.Kind == sched.KRecv {
			b = fmt.Appendf(b, " waiting for tag %v from stage %d (send never initiated)", op.Tag, op.Peer)
		} else {
			b = fmt.Appendf(b, " (%v)", op)
		}
	}
	return fmt.Errorf("sim: deadlock — %s", b)
}

func (e *engine) record(s int, op sched.Op, start, end float64) {
	if e.opt.Trace {
		e.spans = append(e.spans, Span{Stage: s, Op: op, Start: start, End: end})
	}
}

func (e *engine) result() *Result {
	p := e.plan.Stages
	var iter float64
	for s := 0; s < p; s++ {
		if e.clock[s] > iter {
			iter = e.clock[s]
		}
	}
	idle := make([]float64, p)
	for s := 0; s < p; s++ {
		idle[s] = iter - e.busy[s] - e.commStall[s]
		if idle[s] < 0 {
			idle[s] = 0
		}
	}
	if e.opt.Trace {
		sort.SliceStable(e.spans, func(i, j int) bool {
			if e.spans[i].Start != e.spans[j].Start {
				return e.spans[i].Start < e.spans[j].Start
			}
			return e.spans[i].Stage < e.spans[j].Stage
		})
	}
	var classes []LinkClassStats
	for _, st := range e.classStats {
		classes = append(classes, *st)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].Class < classes[j].Class })
	return &Result{
		Method:           e.plan.Method,
		Stages:           p,
		IterationSeconds: iter,
		BusySeconds:      e.busy,
		CommStallSeconds: e.commStall,
		WaitSeconds:      e.wait,
		IdleSeconds:      idle,
		LinkBusySeconds:  e.linkBusy,
		PeakStashBytes:   e.peak,
		BytesSent:        e.sent,
		LinkClasses:      classes,
		Spans:            e.spans,
	}
}
