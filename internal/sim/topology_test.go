package sim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sched"
)

// testClusters builds the paired test topologies of the acceptance
// criterion: a single NVLink node, and the same device count split across
// two nodes joined by a much slower IB fabric.
func oneNodeNVLink(devices int) cluster.Cluster {
	return cluster.Cluster{
		Name: "1xNVLink",
		Nodes: []cluster.Node{{
			Devices: devices,
			Intra:   cluster.Link{Class: cluster.ClassNVLink, GBps: 200, LatencySec: 6e-6},
		}},
	}
}

func twoNodeIB(devices int) cluster.Cluster {
	intra := cluster.Link{Class: cluster.ClassNVLink, GBps: 200, LatencySec: 6e-6}
	return cluster.Cluster{
		Name: "2xIB",
		Nodes: []cluster.Node{
			{Devices: devices / 2, Intra: intra},
			{Devices: devices - devices/2, Intra: intra},
		},
		Inter: cluster.Link{Class: cluster.ClassIB, GBps: 46, LatencySec: 14e-6},
	}
}

// runOn simulates the plan on one cluster under the given placement
// strategy.
func runOn(t *testing.T, plan *sched.Plan, c cluster.Cluster, strategy string, trace bool) *Result {
	t.Helper()
	place, err := cluster.Generate(strategy, c, plan.Stages, plan.TrafficMatrix(),
		cluster.SearchOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cluster.Resolve(c, place, cluster.Perturb{SlowDevice: -1})
	if err != nil {
		t.Fatal(err)
	}
	planCopy := *plan
	planCopy.Placement = place.Devices
	res, err := Run(&planCopy, Options{Trace: trace, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// computeOrder extracts each stage's compute-op sequence from the traced
// spans, in execution order.
func computeOrder(res *Result, stages int) [][]sched.Op {
	out := make([][]sched.Op, stages)
	for _, sp := range res.Spans {
		if sp.Op.Kind.IsCompute() {
			out[sp.Stage] = append(out[sp.Stage], sp.Op)
		}
	}
	return out
}

// TestTopologyCommTiming is the acceptance table: the same plan on a 1-node
// NVLink cluster versus a 2-node IB cluster must execute identical compute
// ops in identical per-stage order, while the iteration strictly slows down
// because inter-node transfers stretch by the link ratio.
func TestTopologyCommTiming(t *testing.T) {
	cases := []struct {
		name    string
		build   func(sched.Config, sched.Costs) (*sched.Plan, error)
		stages  int
		microBs int
	}{
		{"1F1B-p4", sched.OneFOneB, 4, 8},
		{"GPipe-p4", sched.GPipe, 4, 8},
		{"ZB1P-p8", sched.ZB1P, 8, 16},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := sched.Config{Stages: tc.stages, MicroBatches: tc.microBs, Layers: 2 * tc.stages}
			// Large messages so comm time dominates latency and the
			// bandwidth ratio is visible end to end.
			costs := sched.UnitCosts(0.01)
			plan, err := tc.build(cfg, costs)
			if err != nil {
				t.Fatal(err)
			}
			fast := runOn(t, plan, oneNodeNVLink(tc.stages), cluster.StrategyContiguous, true)
			slow := runOn(t, plan, twoNodeIB(tc.stages), cluster.StrategyContiguous, true)

			// Identical compute ops in identical per-stage order.
			fo, so := computeOrder(fast, tc.stages), computeOrder(slow, tc.stages)
			for s := 0; s < tc.stages; s++ {
				if len(fo[s]) != len(so[s]) {
					t.Fatalf("stage %d: %d compute ops on NVLink, %d on IB", s, len(fo[s]), len(so[s]))
				}
				for i := range fo[s] {
					if fo[s][i] != so[s][i] {
						t.Fatalf("stage %d op %d differs: %v vs %v", s, i, fo[s][i], so[s][i])
					}
				}
			}

			// The 2-node IB iteration strictly exceeds the 1-node NVLink one.
			if slow.IterationSeconds <= fast.IterationSeconds {
				t.Errorf("2-node IB iteration %g not above 1-node NVLink %g",
					slow.IterationSeconds, fast.IterationSeconds)
			}

			// Every transfer crossing the node boundary stretches by the
			// bandwidth ratio: compare per-class wire time per byte.
			for _, lt := range slow.LinkClasses {
				if lt.Class != string(cluster.ClassIB) || lt.Bytes == 0 {
					continue
				}
				perByte := lt.Seconds / float64(lt.Bytes)
				want := 1 / 46e9
				if math.Abs(perByte-want)/want > 1e-9 {
					t.Errorf("IB wire time %g s/B, want %g", perByte, want)
				}
			}
			var nvSlow, nvFast *LinkClassStats
			for i := range slow.LinkClasses {
				if slow.LinkClasses[i].Class == string(cluster.ClassNVLink) {
					nvSlow = &slow.LinkClasses[i]
				}
			}
			for i := range fast.LinkClasses {
				if fast.LinkClasses[i].Class == string(cluster.ClassNVLink) {
					nvFast = &fast.LinkClasses[i]
				}
			}
			if nvFast == nil || nvSlow == nil {
				t.Fatal("missing nvlink traffic stats")
			}
			// All traffic crosses NVLink on one node; on two nodes the IB
			// share moves off it but the per-byte rate stays NVLink's.
			if nvFast.Bytes <= nvSlow.Bytes {
				t.Errorf("nvlink bytes %d on 1 node not above %d on 2 nodes", nvFast.Bytes, nvSlow.Bytes)
			}
		})
	}
}

// TestGreedyPlacementBeatsRoundRobinSimulated is the acceptance criterion's
// multi-node scenario: simulated iteration time under the greedy placement
// must beat round robin, which forces every pipeline boundary across the IB
// fabric.
func TestGreedyPlacementBeatsRoundRobinSimulated(t *testing.T) {
	cfg := sched.Config{Stages: 8, MicroBatches: 16, Layers: 16}
	costs := sched.UnitCosts(0.05) // comm-heavy so placement matters
	plan, err := sched.OneFOneB(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	c := twoNodeIB(8)
	greedy := runOn(t, plan, c, cluster.StrategyGreedy, false)
	rr := runOn(t, plan, c, cluster.StrategyRoundRobin, false)
	if greedy.IterationSeconds >= rr.IterationSeconds {
		t.Errorf("greedy iteration %g not below roundrobin %g",
			greedy.IterationSeconds, rr.IterationSeconds)
	}
}

// TestTopologyStageMismatchRejected pins the eager validation: a topology
// resolved for a different pipeline size must not silently mis-time a plan.
func TestTopologyStageMismatchRejected(t *testing.T) {
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 8}
	plan, err := sched.OneFOneB(cfg, sched.UnitCosts(0.01))
	if err != nil {
		t.Fatal(err)
	}
	c := oneNodeNVLink(8)
	place, err := cluster.Contiguous(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := cluster.Resolve(c, place, cluster.Perturb{SlowDevice: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(plan, Options{Topology: topo}); err == nil {
		t.Error("8-stage topology accepted for a 4-stage plan")
	}
}

// TestPerturbationsSlowTheIteration pins the fault layer: a straggler
// device, a degraded fabric, and jitter each strictly slow the same plan.
func TestPerturbationsSlowTheIteration(t *testing.T) {
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 8}
	plan, err := sched.OneFOneB(cfg, sched.UnitCosts(0.05))
	if err != nil {
		t.Fatal(err)
	}
	c := twoNodeIB(4)
	place, err := cluster.Contiguous(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pt cluster.Perturb) float64 {
		topo, err := cluster.Resolve(c, place, pt)
		if err != nil {
			t.Fatal(err)
		}
		planCopy := *plan
		planCopy.Placement = place.Devices
		res, err := Run(&planCopy, Options{Topology: topo})
		if err != nil {
			t.Fatal(err)
		}
		return res.IterationSeconds
	}
	base := run(cluster.Perturb{SlowDevice: -1})
	for name, pt := range map[string]cluster.Perturb{
		"straggler":   {SlowDevice: 1, SlowFactor: 2},
		"degraded-ib": {SlowDevice: -1, DegradeClass: cluster.ClassIB, DegradeFactor: 0.25},
		"jitter":      {SlowDevice: -1, Jitter: 0.2, Seed: 3},
	} {
		if got := run(pt); got <= base {
			t.Errorf("%s iteration %g not above unperturbed %g", name, got, base)
		}
	}
}
