package sim

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
)

// benchEngineInputs builds the steady-state benchmark workload: the helix
// schedule of the paper's 3B/A800 configuration at 64k, with the cluster's
// SMPenalty so the pre-pass oracle and the overlap search are both on the
// measured path.
func benchEngineInputs(tb testing.TB) (*sched.Plan, Options) {
	tb.Helper()
	mc := model.Model3B()
	cl := costmodel.A800Cluster()
	const p, m = 8, 16
	w := costmodel.NewWorkload(mc, cl, model.Shape{B: 1, S: 65536})
	costs := sched.NewCosts(w)
	cfg := sched.Config{Stages: p, MicroBatches: m, Layers: mc.Layers}
	plan, err := core.Build(cfg, costs, core.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return plan, Options{SMPenalty: cl.CommSMPenalty}
}

// BenchmarkEngineSteadyState measures re-simulating one plan on a reused
// Runner — the fleet-pricing / repeated-cell hot path. The alloc-gate CI
// step pins its allocs/op to the budget in testdata/alloc_budget.json
// (zero).
func BenchmarkEngineSteadyState(b *testing.B) {
	plan, opt := benchEngineInputs(b)
	r, err := NewRunner(plan, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineOneShot measures the cold path — a pooled Runner per Run
// call, as one sweep cell pays it. The alloc-gate CI step pins its allocs/op
// to the budget in testdata/alloc_budget.json: once the pool is warm, a cold
// start costs only the deep-copied Result, not a rebuilt engine.
func BenchmarkEngineOneShot(b *testing.B) {
	plan, opt := benchEngineInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(plan, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRunnerReuseMatchesOneShot proves reset correctness: a reused Runner
// must reproduce the one-shot result exactly, run after run.
func TestRunnerReuseMatchesOneShot(t *testing.T) {
	plan, opt := benchEngineInputs(t)
	want, err := Run(plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("run %d diverged from one-shot result:\n got %s\nwant %s", i, gotJSON, wantJSON)
		}
	}
}

// allocBudget is the pinned allocation budget of the steady-state engine
// benchmark (testdata/alloc_budget.json at the repo root); CI's alloc-gate
// fails when the measured allocs/op exceed it.
type allocBudget struct {
	EngineSteadyStateAllocsPerOp float64 `json:"engine_steady_state_allocs_per_op"`
	EngineColdRunAllocsPerOp     float64 `json:"engine_cold_run_allocs_per_op"`
}

// readAllocBudget loads the pinned budget file shared with the CI gate.
func readAllocBudget(t *testing.T) allocBudget {
	t.Helper()
	raw, err := os.ReadFile("../../testdata/alloc_budget.json")
	if err != nil {
		t.Fatal(err)
	}
	var budget allocBudget
	if err := json.Unmarshal(raw, &budget); err != nil {
		t.Fatal(err)
	}
	return budget
}

// TestEngineSteadyStateAllocBudget enforces the budget in-process: the
// steady-state run must not allocate more per iteration than the pinned
// file allows (zero). The same contract backs the CI alloc-gate step, which
// re-checks it from the -benchmem output.
func TestEngineSteadyStateAllocBudget(t *testing.T) {
	budget := readAllocBudget(t)
	plan, opt := benchEngineInputs(t)
	r, err := NewRunner(plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: the first run grows maps and the class-stats entries; the
	// budget pins the steady state.
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget.EngineSteadyStateAllocsPerOp {
		t.Errorf("steady-state engine run allocates %.1f allocs/op, budget %.1f (testdata/alloc_budget.json)",
			got, budget.EngineSteadyStateAllocsPerOp)
	}
}

// TestEngineColdRunAllocBudget pins the pooled cold-start path: once the
// Runner pool is warm, sim.Run must cost no more allocations per call than
// the budget file allows (the deep-copied Result plus pool bookkeeping — no
// rebuilt engine). The CI alloc-gate re-checks the same contract from
// BenchmarkEngineOneShot's -benchmem output.
func TestEngineColdRunAllocBudget(t *testing.T) {
	budget := readAllocBudget(t)
	plan, opt := benchEngineInputs(t)
	// Warm up the pool and the engine's maps.
	if _, err := Run(plan, opt); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := Run(plan, opt); err != nil {
			t.Fatal(err)
		}
	})
	if got > budget.EngineColdRunAllocsPerOp {
		t.Errorf("cold-start sim.Run allocates %.1f allocs/op, budget %.1f (testdata/alloc_budget.json)",
			got, budget.EngineColdRunAllocsPerOp)
	}
}

// TestColdRunResultDetached proves the pooled Run's result is a deep copy: a
// later Run on the same pool must not mutate an earlier result.
func TestColdRunResultDetached(t *testing.T) {
	plan, opt := benchEngineInputs(t)
	first, err := Run(plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	firstJSON, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := Run(plan, opt); err != nil {
			t.Fatal(err)
		}
	}
	again, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(firstJSON) {
		t.Fatalf("earlier Run result mutated by later pooled runs:\n was %s\n now %s", firstJSON, again)
	}
}
