package sched

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/model"
)

// mixedLinkCluster is a two-node topology with an NVLink box and a PCIe box
// of the same GPU generation, joined by InfiniBand. The NVLink node's link
// parameters equal the flat A800 ClusterSpec's, so a stage placed there is
// priced bit-identically to the flat book.
func mixedLinkCluster() cluster.Cluster {
	return cluster.Cluster{
		Name: "mixed-link-test",
		GPU:  "A800",
		Nodes: []cluster.Node{
			{Name: "nv", Devices: 8, Intra: cluster.Link{Class: cluster.ClassNVLink, GBps: 200, LatencySec: 6e-6}},
			{Name: "pcie", Devices: 8, Intra: cluster.Link{Class: cluster.ClassPCIe, GBps: 24, LatencySec: 3e-6}},
		},
		Inter: cluster.Link{Class: cluster.ClassIB, GBps: 46, LatencySec: 12e-6},
	}
}

func placedTestWorkload(t *testing.T) costmodel.Workload {
	t.Helper()
	w := costmodel.NewWorkload(model.Model3B(), costmodel.A800Cluster(), model.Shape{B: 1, S: 16384})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

func resolveTest(t *testing.T, c cluster.Cluster, devices []int, pt cluster.Perturb) *cluster.Topology {
	t.Helper()
	topo, err := cluster.Resolve(c, cluster.Placement{Devices: devices}, pt)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestPlacedCostsPCIeStageSlower pins the tentpole's pricing contract: the
// same stage of the same plan is strictly slower when its device sits in a
// PCIe box than in an NVLink box — the intra-stage sequence-parallel
// collectives serialize at the placed link's bandwidth — while the emitted op
// order does not change at all.
func TestPlacedCostsPCIeStageSlower(t *testing.T) {
	w := placedTestWorkload(t)
	c := mixedLinkCluster()
	cfg := testCfg(2, 4, 8)
	none := cluster.Perturb{SlowDevice: -1}

	nvTopo := resolveTest(t, c, []int{0, 1}, none)   // both stages in the NVLink box
	pcieTopo := resolveTest(t, c, []int{0, 8}, none) // stage 1 in the PCIe box

	nvCosts := NewPlacedCosts(w, nvTopo)
	pcieCosts := NewPlacedCosts(w, pcieTopo)

	nvPlan, err := OneFOneB(cfg, nvCosts)
	if err != nil {
		t.Fatal(err)
	}
	pciePlan, err := OneFOneB(cfg, pcieCosts)
	if err != nil {
		t.Fatal(err)
	}

	// Identical op order: the plans differ only in durations.
	for s := range nvPlan.Ops {
		if len(nvPlan.Ops[s]) != len(pciePlan.Ops[s]) {
			t.Fatalf("stage %d op count differs: %d vs %d", s, len(nvPlan.Ops[s]), len(pciePlan.Ops[s]))
		}
		for i := range nvPlan.Ops[s] {
			a, b := nvPlan.Ops[s][i], pciePlan.Ops[s][i]
			a.Dur, b.Dur = 0, 0
			if a != b {
				t.Fatalf("stage %d op %d differs beyond duration: %+v vs %+v", s, i, nvPlan.Ops[s][i], pciePlan.Ops[s][i])
			}
		}
	}

	// Stage 0 sits in the NVLink box under both placements: identical book.
	if nvCosts.StageMB(0, 0) != pcieCosts.StageMB(0, 0) {
		t.Error("stage 0 book changed although its placement did not")
	}
	// Stage 1's PCIe book must be slower on every SP-collective-bearing
	// segment duration, and strictly so overall.
	nv1, pcie1 := nvCosts.StageMB(1, 0), pcieCosts.StageMB(1, 0)
	strict := false
	for _, seg := range model.Segments {
		for _, kind := range []OpKind{KForward, KBackwardB, KBackwardW} {
			a, b := nv1.SegDur(seg, kind), pcie1.SegDur(seg, kind)
			if b < a {
				t.Errorf("PCIe-placed %v/%v faster than NVLink-placed: %g < %g", seg, kind, b, a)
			}
			if b > a {
				strict = true
			}
		}
	}
	if !strict {
		t.Error("no segment priced strictly slower in the PCIe box")
	}
	// Message volumes are shape-derived and placement-invariant.
	if nv1.BoundBytes != pcie1.BoundBytes {
		t.Error("boundary bytes changed with placement")
	}
}

// TestPlacedCostsNVLinkMatchesFlat pins bit-exactness: on a topology whose
// intra links equal the flat ClusterSpec's NVLink parameters, the placed
// books must equal the flat book bit for bit — placement resolution is free
// for the homogeneous configurations the golden corpus covers.
func TestPlacedCostsNVLinkMatchesFlat(t *testing.T) {
	w := placedTestWorkload(t)
	topo := resolveTest(t, mixedLinkCluster(), []int{0, 1}, cluster.Perturb{SlowDevice: -1})
	flat := NewCosts(w)
	placed := NewPlacedCosts(w, topo)
	if len(placed.PerStage) != 2 {
		t.Fatalf("placed costs carry %d stage books, want 2", len(placed.PerStage))
	}
	for s := range placed.PerStage {
		if placed.StageMB(s, 0) != flat.MB(0) {
			t.Errorf("stage %d NVLink book differs from the flat book", s)
		}
	}
}

// TestPerturbStretchesOwnStageOnly pins the straggler contract: a slow
// device stretches exactly its own stage's book, by exactly its factor, and
// leaves every other stage's book bit-identical to the unperturbed one.
func TestPerturbStretchesOwnStageOnly(t *testing.T) {
	w := placedTestWorkload(t)
	c := mixedLinkCluster()
	devices := []int{0, 1, 2, 3}
	const slowStage = 2
	const factor = 1.5
	clean := resolveTest(t, c, devices, cluster.Perturb{SlowDevice: -1})
	pt := cluster.Perturb{SlowDevice: devices[slowStage], SlowFactor: factor}
	perturbed := resolveTest(t, c, devices, pt)

	cleanCosts := NewPlacedCosts(w, clean)
	slowCosts := NewPlacedCosts(w, perturbed)
	for s := 0; s < len(devices); s++ {
		got, want := slowCosts.StageMB(s, 0), cleanCosts.StageMB(s, 0)
		if s != slowStage {
			if got != want {
				t.Errorf("stage %d book changed although only stage %d's device is slow", s, slowStage)
			}
			continue
		}
		for _, seg := range model.Segments {
			for _, kind := range []OpKind{KForward, KBackwardB, KBackwardW} {
				if g, exp := got.SegDur(seg, kind), want.SegDur(seg, kind)*factor; g != exp {
					t.Errorf("slow stage %v/%v duration %g, want exactly %g", seg, kind, g, exp)
				}
			}
		}
		if got.HeadFB != want.HeadFB*factor || got.EmbedF != want.EmbedF*factor {
			t.Error("slow stage embed/head durations not stretched by exactly the factor")
		}
		if got.BoundBytes != want.BoundBytes || got.SegStash != want.SegStash {
			t.Error("slow stage byte fields changed; only durations may stretch")
		}
	}
}

// TestPlacedBatchCostsPerStage checks the variable-length path: per-stage
// books exist per micro batch, and the PCIe stage's book is slower for every
// shape.
func TestPlacedBatchCostsPerStage(t *testing.T) {
	w := placedTestWorkload(t)
	spec := model.BatchSpec{Shapes: []model.Shape{{B: 1, S: 16384}, {B: 1, S: 8192}}}
	topo := resolveTest(t, mixedLinkCluster(), []int{0, 8}, cluster.Perturb{SlowDevice: -1})
	costs := NewPlacedBatchCosts(w, spec, topo)
	if len(costs.PerStage) != 2 {
		t.Fatalf("placed batch costs carry %d stage books, want 2", len(costs.PerStage))
	}
	for mb := range spec.Shapes {
		nv, pcie := costs.StageMB(0, mb), costs.StageMB(1, mb)
		if pcie.SegDur(model.SegPost, KForward) <= nv.SegDur(model.SegPost, KForward) {
			t.Errorf("mb %d: PCIe stage not strictly slower than NVLink stage", mb)
		}
		if nv.BoundBytes != costs.MB(mb).BoundBytes {
			t.Errorf("mb %d: placed book bytes differ from flat book bytes", mb)
		}
	}
}
