package sched

import (
	"testing"

	"repro/internal/model"
)

// varlenScales is a didactic mixed-length iteration: micro batches 1 and 3
// are four times the work of micro batches 0 and 2.
var varlenScales = []float64{1, 4, 1, 4}

func varlenBuilders(cfg Config, costs Costs) map[Method]func() (*Plan, error) {
	return map[Method]func() (*Plan, error){
		MethodGPipe:       func() (*Plan, error) { return GPipe(cfg, costs) },
		Method1F1B:        func() (*Plan, error) { return OneFOneB(cfg, costs) },
		MethodZB1P:        func() (*Plan, error) { return ZB1P(cfg, costs) },
		MethodZB2P:        func() (*Plan, error) { return ZB2P(cfg, costs) },
		MethodInterleaved: func() (*Plan, error) { return Interleaved(cfg, costs, 2) },
		MethodAdaPipe:     func() (*Plan, error) { return AdaPipe(cfg, costs, 0) },
	}
}

// TestVariableLengthPlansValid builds every layer-wise generator on a
// variable-length cost book and validates the emitted plans.
func TestVariableLengthPlansValid(t *testing.T) {
	batch := model.BatchSpec{Shapes: []model.Shape{
		{B: 1, S: 8}, {B: 1, S: 32}, {B: 1, S: 8}, {B: 1, S: 32},
	}}
	cfg := Config{Stages: 2, MicroBatches: 4, Layers: 4, Batch: batch}
	costs := UnitBatchCosts(0, varlenScales)
	for method, build := range varlenBuilders(cfg, costs) {
		plan, err := build()
		if err != nil {
			t.Errorf("%s: %v", method, err)
			continue
		}
		if err := Validate(plan); err != nil {
			t.Errorf("%s: invalid variable-length plan: %v", method, err)
		}
		if len(plan.Batch.Shapes) != 4 {
			t.Errorf("%s: plan lost its batch spec", method)
		}
	}
}

// TestVariableLengthOpsShapeCorrect checks that emitted compute ops follow
// each micro batch's own cost book: a 4x micro batch's forward segment must
// run 4x as long as a 1x micro batch's, and its sends must carry 4x bytes.
func TestVariableLengthOpsShapeCorrect(t *testing.T) {
	cfg := Config{Stages: 2, MicroBatches: 4, Layers: 4}
	costs := UnitBatchCosts(0.25, varlenScales)
	for method, build := range varlenBuilders(cfg, costs) {
		plan, err := build()
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		durOf := make(map[int]float64)   // mb -> forward dur of (layer 0 pre)
		bytesOf := make(map[int][]int64) // mb -> send volumes
		for _, ops := range plan.Ops {
			for _, op := range ops {
				if op.Kind == KForward && op.Layer >= 0 && op.Seg == model.SegPre {
					durOf[op.MB] += op.Dur
				}
				if op.Kind == KSend {
					bytesOf[op.MB] = append(bytesOf[op.MB], op.Bytes)
				}
			}
		}
		for mb, scale := range varlenScales {
			want := costs.MB(mb).Seg[model.SegPre][model.Forward]
			// Each mb visits SegPre once per layer across the plan; compare
			// the per-visit duration via the total over 4 layers.
			if got := durOf[mb] / 4; !almost(got, want) {
				t.Errorf("%s: mb %d pre-forward dur %g, want %g (scale %g)",
					method, mb, got, want, scale)
			}
		}
		// A 4x micro batch's transfers are 4x a 1x micro batch's.
		if len(bytesOf[0]) > 0 && len(bytesOf[1]) > 0 {
			if bytesOf[1][0] != 4*bytesOf[0][0] {
				t.Errorf("%s: send bytes mb1 %d vs mb0 %d, want 4x",
					method, bytesOf[1][0], bytesOf[0][0])
			}
		}
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// TestUnitBatchCostsFallback checks the uniform fallback book is the maximum
// scale, and that MB() resolves overrides and out-of-range indices.
func TestUnitBatchCostsFallback(t *testing.T) {
	costs := UnitBatchCosts(0, []float64{1, 3})
	if !costs.Variable() {
		t.Fatal("batch costs must report Variable")
	}
	if got := costs.MB(1).Seg[model.SegPre][model.Forward]; !almost(got, 3) {
		t.Errorf("mb1 pre F = %g, want 3", got)
	}
	if got := costs.MB(99).Seg[model.SegPre][model.Forward]; !almost(got, 3) {
		t.Errorf("fallback pre F = %g, want max scale 3", got)
	}
	uniform := UnitCosts(0)
	if uniform.Variable() {
		t.Error("unit costs must not report Variable")
	}
	if got := uniform.MB(5).Seg[model.SegPre][model.Forward]; !almost(got, 1) {
		t.Errorf("uniform MB lookup = %g, want 1", got)
	}
	// Fractional scales round instead of truncating, and stash conservation
	// (SegStash = BFree + WFree) survives the rounding.
	frac := UnitBatchCosts(0.25, []float64{0.5, 1.5})
	for mb := 0; mb < 2; mb++ {
		c := frac.MB(mb)
		for i := range c.SegStash {
			if c.SegStash[i] != c.SegStashBFree[i]+c.SegStashWFree[i] {
				t.Errorf("mb %d seg %d: stash %d != BFree %d + WFree %d",
					mb, i, c.SegStash[i], c.SegStashBFree[i], c.SegStashWFree[i])
			}
		}
		if c.BoundBytes[BoundAct] <= 0 {
			t.Errorf("mb %d: fractional scale zeroed message volume", mb)
		}
	}
}

// TestMeanMB checks the aggregate book averages per-micro-batch values.
func TestMeanMB(t *testing.T) {
	costs := UnitBatchCosts(0, []float64{1, 3})
	mean := costs.MeanMB(2)
	if got := mean.Seg[model.SegPre][model.Forward]; !almost(got, 2) {
		t.Errorf("mean pre F = %g, want 2", got)
	}
	uniform := UnitCosts(0)
	if got := uniform.MeanMB(8).Seg[model.SegAttn][model.Forward]; !almost(got, 3) {
		t.Errorf("uniform mean attn F = %g, want 3", got)
	}
}

// TestConfigValidateBatch checks the batch-vs-micro-batch consistency rule.
func TestConfigValidateBatch(t *testing.T) {
	good := Config{Stages: 2, MicroBatches: 2, Layers: 4,
		Batch: model.UniformBatch(2, 1, 8)}
	if err := good.Validate(); err != nil {
		t.Errorf("consistent batch rejected: %v", err)
	}
	bad := good
	bad.Batch = model.UniformBatch(3, 1, 8)
	if err := bad.Validate(); err == nil {
		t.Error("mismatched batch length accepted")
	}
}

// TestValidateRejectsBatchLengthMismatch checks a plan whose batch spec does
// not cover every micro batch is rejected before either engine runs it.
func TestValidateRejectsBatchLengthMismatch(t *testing.T) {
	cfg := Config{Stages: 2, MicroBatches: 4, Layers: 4}
	plan, err := OneFOneB(cfg, UnitCosts(0))
	if err != nil {
		t.Fatal(err)
	}
	plan.Batch = model.BatchSpec{Shapes: []model.Shape{{B: 1, S: 8}, {B: 1, S: 16}}}
	if err := Validate(plan); err == nil {
		t.Error("plan with 2 batch shapes for 4 micro batches accepted")
	}
}
