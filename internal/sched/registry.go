package sched

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
)

// BuildParams carries the method-specific knobs a plan builder may consume.
// The zero value asks every method for its paper-default configuration, so
// generic callers (the experiment harness, sweeps, the command-line tools)
// can build any registered method without knowing its parameters.
type BuildParams struct {
	// MemoryBudget is the per-GPU activation budget in bytes for
	// budget-aware schedules (AdaPipe). Zero or negative means unlimited.
	MemoryBudget int64
	// Chunks is the model-chunk count of interleaved schedules; zero keeps
	// the method default (2).
	Chunks int
	// HelixFold overrides the HelixPipe fold (1 naive FILO, 2 two-fold);
	// zero keeps the registered variant's default.
	HelixFold int
	// HelixRecompute overrides recomputation-without-attention; nil keeps
	// the registered variant's default.
	HelixRecompute *bool
}

// Builder constructs the plan of one registered method.
type Builder func(cfg Config, costs Costs, p BuildParams) (*Plan, error)

// Registration describes one pipeline parallelism in the method registry.
type Registration struct {
	// Name is the canonical method name.
	Name Method
	// Description is a one-line summary shown by method listings.
	Description string
	// Rank orders registry listings (baselines first, like the paper).
	Rank int
	// Build constructs the method's plan.
	Build Builder
}

var registry = struct {
	sync.RWMutex
	byName map[string]Registration
}{byName: map[string]Registration{}}

// ErrDuplicateMethod reports a registration whose name (case-insensitively)
// is already taken. TryRegister wraps it; errors.Is unwraps it.
var ErrDuplicateMethod = errors.New("sched: duplicate method registration")

// TryRegister adds a method to the registry and reports why it could not:
// an empty name, a nil builder, or a name (case-insensitively) already
// registered. On a duplicate the existing registration stays in place —
// first wins, deterministically, whatever the init order.
func TryRegister(r Registration) error {
	if r.Name == "" {
		return errors.New("sched: Register with empty method name")
	}
	if r.Build == nil {
		return fmt.Errorf("sched: Register(%s) with nil builder", r.Name)
	}
	key := strings.ToLower(string(r.Name))
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[key]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateMethod, r.Name)
	}
	registry.byName[key] = r
	return nil
}

// Register adds a method to the registry. Generator packages call it from
// init: the layer-wise baselines register here in package sched, and
// internal/core registers the HelixPipe variants. Registering an empty name
// or a nil builder panics — those are programmer errors that must surface at
// process start. A duplicate name is logged and ignored, keeping the first
// registration: panicking here would make program startup depend on package
// init order. Callers that need the duplicate as a value use TryRegister.
func Register(r Registration) {
	if err := TryRegister(r); err != nil {
		if errors.Is(err, ErrDuplicateMethod) {
			log.Print(err)
			return
		}
		panic(err)
	}
}

// Lookup resolves a method name case-insensitively and reports whether it is
// registered.
func Lookup(name string) (Registration, bool) {
	registry.RLock()
	defer registry.RUnlock()
	r, ok := registry.byName[strings.ToLower(name)]
	return r, ok
}

// Registrations returns every registered method ordered by rank (baselines
// first) then name.
func Registrations() []Registration {
	registry.RLock()
	out := make([]Registration, 0, len(registry.byName))
	for _, r := range registry.byName {
		out = append(out, r)
	}
	registry.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Methods returns the names of every registered pipeline parallelism,
// baselines first. The list is registry-driven: it contains exactly the
// methods whose packages are linked into the program.
func Methods() []Method {
	regs := Registrations()
	out := make([]Method, len(regs))
	for i, r := range regs {
		out[i] = r.Name
	}
	return out
}

// Build constructs the plan of a registered method. The method name is
// resolved case-insensitively; unknown names report the registered
// alternatives.
func Build(method Method, cfg Config, costs Costs, p BuildParams) (*Plan, error) {
	r, ok := Lookup(string(method))
	if !ok {
		return nil, fmt.Errorf("sched: unknown method %q (registered: %s)",
			method, joinMethods(Methods()))
	}
	return r.Build(cfg, costs, p)
}

func joinMethods(ms []Method) string {
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = string(m)
	}
	return strings.Join(names, ", ")
}

// The layer-wise baselines register themselves here; HelixPipe's variants
// are registered by internal/core, which builds on this package's IR.
func init() {
	Register(Registration{
		Name:        MethodGPipe,
		Description: "all forwards then all backwards (FILO), layer-wise partition",
		Rank:        10,
		Build: func(cfg Config, costs Costs, _ BuildParams) (*Plan, error) {
			return GPipe(cfg, costs)
		},
	})
	Register(Registration{
		Name:        Method1F1B,
		Description: "PipeDream/Megatron-LM one-forward-one-backward steady state",
		Rank:        20,
		Build: func(cfg Config, costs Costs, _ BuildParams) (*Plan, error) {
			return OneFOneB(cfg, costs)
		},
	})
	Register(Registration{
		Name:        MethodInterleaved,
		Description: "interleaved 1F1B with multiple model chunks per stage",
		Rank:        30,
		Build: func(cfg Config, costs Costs, p BuildParams) (*Plan, error) {
			chunks := p.Chunks
			if chunks <= 0 {
				chunks = 2
			}
			return Interleaved(cfg, costs, chunks)
		},
	})
	Register(Registration{
		Name:        MethodZB1P,
		Description: "zero-bubble 1F1B: weight gradients deferred into bubbles",
		Rank:        40,
		Build: func(cfg Config, costs Costs, _ BuildParams) (*Plan, error) {
			return ZB1P(cfg, costs)
		},
	})
	Register(Registration{
		Name:        MethodZB2P,
		Description: "zero-bubble variant admitting extra warmup forwards",
		Rank:        50,
		Build: func(cfg Config, costs Costs, _ BuildParams) (*Plan, error) {
			return ZB2P(cfg, costs)
		},
	})
	Register(Registration{
		Name:        MethodAdaPipe,
		Description: "adaptive recomputation and layer partition under a memory budget",
		Rank:        60,
		Build: func(cfg Config, costs Costs, p BuildParams) (*Plan, error) {
			return AdaPipe(cfg, costs, p.MemoryBudget)
		},
	})
}
