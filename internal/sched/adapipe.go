package sched

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// AdaPipe builds the adaptive-recomputation, adaptive-partition baseline of
// Sun et al. (ASPLOS'24), as used by the paper's evaluation: a 1F1B schedule
// whose layer partition and per-stage recomputation set are chosen jointly
// so that (a) every stage fits the per-GPU memory budget and (b) the
// bottleneck stage time is minimized.
//
// The original system searches with a cost-model-guided dynamic program; we
// reproduce that directly: a DP over contiguous layer partitions where each
// stage is assigned the minimal number of fully recomputed layers that
// satisfies its 1F1B residency (p - stage outstanding micro batches), and
// the objective is the bottleneck per-micro-batch stage time.
//
// memBudgetBytes is the per-GPU activation budget; non-positive means
// unbounded (the DP then degenerates to pure partition balancing). The
// paper's key observation reproduces naturally: with very long sequences the
// attention time dominates every layer, so partition balancing has almost no
// room and AdaPipe cannot beat 1F1B (section 5.2).
func AdaPipe(cfg Config, costs Costs, memBudgetBytes int64) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, L := cfg.Stages, cfg.Layers
	// The DP reasons about the partition with aggregates: per-micro-batch
	// mean durations for the bottleneck objective, and the worst (largest)
	// micro batch's stash for memory feasibility, so a variable-length
	// iteration never admits a partition its longest micro batches overflow.
	mean := costs.MeanMB(cfg.MicroBatches)
	// On a variable-length book the embedded fallback is costed at the
	// per-axis maximum shape — a phantom micro batch no real iteration
	// contains — so the worst case must be scanned from the actual per-MB
	// books, not seeded with the fallback.
	worst := costs.MBCosts
	if len(costs.PerMB) > 0 {
		layerStash := func(c MBCosts) int64 {
			return c.SegStash[model.SegPre] + c.SegStash[model.SegAttn] + c.SegStash[model.SegPost]
		}
		worst = costs.PerMB[0]
		for mb := 1; mb < cfg.MicroBatches && mb < len(costs.PerMB); mb++ {
			if layerStash(costs.PerMB[mb]) > layerStash(worst) {
				worst = costs.PerMB[mb]
			}
		}
	}
	fullLayerStash := worst.SegStash[model.SegPre] + worst.SegStash[model.SegAttn] + worst.SegStash[model.SegPost]
	inputStash := worst.InputStash
	layerFBW := mean.LayerDur(KForward) + mean.LayerDur(KBackwardB) +
		mean.SegDur(model.SegPre, KBackwardW) + mean.SegDur(model.SegPost, KBackwardW)
	recomputeDur := mean.SegRecompute[model.SegPre] + mean.SegRecompute[model.SegAttn] + mean.SegRecompute[model.SegPost]

	// minRecompute returns the minimal number of recomputed layers for a
	// stage holding `c` layers with `outstanding` resident micro batches,
	// and whether the assignment is feasible at all.
	minRecompute := func(c, outstanding int) (int, bool) {
		if memBudgetBytes <= 0 {
			return 0, true
		}
		full := int64(outstanding) * int64(c) * fullLayerStash
		if full <= memBudgetBytes {
			return 0, true
		}
		perLayerSaving := int64(outstanding) * (fullLayerStash - inputStash)
		if perLayerSaving <= 0 {
			return c + 1, false
		}
		need := full - memBudgetBytes
		r := int((need + perLayerSaving - 1) / perLayerSaving)
		if r > c {
			return r, false
		}
		return r, true
	}

	// stageTime returns the steady-state per-micro-batch time of a stage.
	stageTime := func(stage, c, r int) float64 {
		t := float64(c)*layerFBW + float64(r)*recomputeDur
		if stage == 0 {
			t += mean.EmbedF + mean.EmbedW
		}
		if stage == p-1 {
			t += mean.HeadFB + mean.HeadW
		}
		return t
	}

	// DP over contiguous partitions: dp[s][l] = minimal bottleneck time
	// assigning the first l layers to the first s stages.
	const inf = math.MaxFloat64
	dp := make([][]float64, p+1)
	choice := make([][]int, p+1)
	for s := range dp {
		dp[s] = make([]float64, L+1)
		choice[s] = make([]int, L+1)
		for l := range dp[s] {
			dp[s][l] = inf
		}
	}
	dp[0][0] = 0
	for s := 1; s <= p; s++ {
		outstanding := p - (s - 1) // 1F1B residency of stage s-1
		for l := 1; l <= L; l++ {
			maxC := l - (s - 1) // leave at least one layer per earlier stage
			for c := 1; c <= maxC; c++ {
				prev := dp[s-1][l-c]
				if prev == inf {
					continue
				}
				r, ok := minRecompute(c, outstanding)
				if !ok {
					continue
				}
				t := math.Max(prev, stageTime(s-1, c, r))
				if t < dp[s][l] {
					dp[s][l] = t
					choice[s][l] = c
				}
			}
		}
	}
	if dp[p][L] == inf {
		return nil, fmt.Errorf("sched: AdaPipe found no partition of %d layers over %d stages within %d bytes",
			L, p, memBudgetBytes)
	}

	sizes := make([]int, p)
	l := L
	for s := p; s >= 1; s-- {
		c := choice[s][l]
		sizes[s-1] = c
		l -= c
	}

	lw := newLayerwise(cfg, costs, chunksFromSizes(sizes))
	for s := 0; s < p; s++ {
		r, _ := minRecompute(sizes[s], p-s)
		// Recompute the last r layers of the chunk; the choice within the
		// chunk does not affect time or peak memory.
		for i := sizes[s] - r; i < sizes[s]; i++ {
			lw.recomp[s][lw.chunks[s][i]] = true
		}
	}
	plan := oneFOneBOn(lw)
	plan.Method = MethodAdaPipe
	return plan, nil
}
