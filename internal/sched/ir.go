// Package sched defines the schedule intermediate representation shared by
// every pipeline parallelism in this repository, and the generators for the
// layer-wise baselines (GPipe, 1F1B, interleaved 1F1B, ZB1P, AdaPipe).
// HelixPipe's attention-parallel plans are built by internal/core on top of
// the same IR.
//
// A Plan is a static program: for every pipeline stage, an ordered list of
// compute and communication operations. Two independent engines consume
// plans: internal/sim times them on a simulated cluster, and internal/exec
// runs them numerically on real tensors with one goroutine per stage. The
// IR is therefore purely structural — durations and byte volumes are
// annotations provided by a cost book at build time.
package sched

import (
	"fmt"

	"repro/internal/model"
)

// OpKind discriminates the operations of a plan.
type OpKind int

const (
	// KForward executes the forward pass of one target (a layer segment,
	// the embedding, or the LM head).
	KForward OpKind = iota
	// KBackwardB executes the input-gradient backward pass of one target.
	KBackwardB
	// KBackwardW executes the weight-gradient backward pass of one target.
	KBackwardW
	// KRecompute re-executes a forward target to regenerate discarded
	// intermediate activations before its backward pass.
	KRecompute
	// KSend initiates a point-to-point transfer to Op.Peer. Unless
	// Op.Blocking is set, the send only enqueues on the NIC and the stage
	// continues immediately.
	KSend
	// KRecv waits for the matching message from Op.Peer to arrive.
	KRecv
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case KForward:
		return "F"
	case KBackwardB:
		return "B"
	case KBackwardW:
		return "W"
	case KRecompute:
		return "R"
	case KSend:
		return "send"
	case KRecv:
		return "recv"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// IsCompute reports whether the op occupies the stage's compute resource
// with a model computation (as opposed to communication).
func (k OpKind) IsCompute() bool {
	return k == KForward || k == KBackwardB || k == KBackwardW || k == KRecompute
}

// Special layer indices for non-layer targets.
const (
	// LayerEmbed marks an op that targets the input embeddings.
	LayerEmbed = -1
	// LayerHead marks an op that targets the LM head and loss. With the
	// paper's section 4.6 optimization the head forward+loss runs inside
	// the backward pass, so plans usually contain only KBackwardB/W ops
	// for this target.
	LayerHead = -2
)

// Boundary identifies the kind of inter-stage activation boundary a message
// crosses, which determines its byte volume.
type Boundary int

const (
	// BoundAct is the conventional layer-wise pipeline boundary: one
	// [s,b,h] activation or its gradient (1F1B, GPipe, ZB1P, AdaPipe).
	BoundAct Boundary = iota
	// BoundPreAttn is HelixPipe's pre-attention to attention boundary:
	// attention input plus residual plus shipped QKV weights (section 4.2).
	BoundPreAttn
	// BoundAttnPost is HelixPipe's attention to post-attention boundary:
	// attention output plus residual.
	BoundAttnPost
)

// String implements fmt.Stringer.
func (b Boundary) String() string {
	switch b {
	case BoundAct:
		return "act"
	case BoundPreAttn:
		return "pre>attn"
	case BoundAttnPost:
		return "attn>post"
	default:
		return fmt.Sprintf("Boundary(%d)", int(b))
	}
}

// Tag uniquely identifies a message within one iteration. A KSend and a
// KRecv match if and only if their tags are equal.
type Tag struct {
	// MB is the micro batch index.
	MB int
	// Layer is the layer the boundary belongs to.
	Layer int
	// Bound is the boundary kind.
	Bound Boundary
	// Back marks gradient (backward) traffic.
	Back bool
	// Chunk disambiguates model chunks for interleaved schedules (0
	// otherwise).
	Chunk int
}

// String implements fmt.Stringer.
func (t Tag) String() string {
	dir := "f"
	if t.Back {
		dir = "b"
	}
	return fmt.Sprintf("%s/l%d/mb%d/%s", t.Bound, t.Layer, t.MB, dir)
}

// Op is one operation in a stage program.
type Op struct {
	// Kind is the operation kind.
	Kind OpKind
	// MB is the micro batch index the op works on.
	MB int
	// Layer is the target layer (or LayerEmbed / LayerHead).
	Layer int
	// Seg is the layer segment for layer targets.
	Seg model.Segment
	// Dur is the compute duration in seconds (compute kinds only).
	Dur float64
	// Alloc is the number of bytes of stash the op allocates on completion.
	Alloc int64
	// Free is the number of bytes of stash the op releases on completion.
	Free int64
	// Peer is the other stage of a communication op.
	Peer int
	// Tag identifies the message of a communication op.
	Tag Tag
	// Bytes is the node-aggregate volume of a KSend (ignored on KRecv; the
	// matching send's volume governs the transfer).
	Bytes int64
	// Blocking marks a KSend that occupies the compute stream until the
	// transfer completes — the behaviour of the naive FILO schedule
	// (paper Figure 6a). Non-blocking sends only enqueue.
	Blocking bool
}

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o.Kind {
	case KSend, KRecv:
		return fmt.Sprintf("%v(%v->%d)", o.Kind, o.Tag, o.Peer)
	default:
		switch o.Layer {
		case LayerEmbed:
			return fmt.Sprintf("%v(embed,mb%d)", o.Kind, o.MB)
		case LayerHead:
			return fmt.Sprintf("%v(head,mb%d)", o.Kind, o.MB)
		default:
			return fmt.Sprintf("%v(l%d.%v,mb%d)", o.Kind, o.Layer, o.Seg, o.MB)
		}
	}
}

// Method names a pipeline parallelism.
type Method string

// The pipeline parallelisms implemented in this repository.
const (
	MethodGPipe            Method = "GPipe"
	Method1F1B             Method = "1F1B"
	MethodInterleaved      Method = "Interleaved1F1B"
	MethodZB1P             Method = "ZB1P"
	MethodZB2P             Method = "ZB2P"
	MethodAdaPipe          Method = "AdaPipe"
	MethodHelixNaive       Method = "HelixPipe-naive"
	MethodHelix            Method = "HelixPipe"
	MethodHelixNoRecompute Method = "HelixPipe-norecompute"
)

// Plan is a static pipeline schedule: one ordered op program per stage.
type Plan struct {
	// Method names the generating schedule.
	Method Method
	// Stages is the pipeline size p.
	Stages int
	// MicroBatches is the number of micro batches m per iteration.
	MicroBatches int
	// Layers is the transformer layer count L.
	Layers int
	// Ops holds the per-stage programs: Ops[stage] executes in order.
	Ops [][]Op
	// Costs is the cost book the plan was built with; the simulator uses
	// its link parameters to time communication.
	Costs Costs
	// Batch holds the per-micro-batch shapes of a variable-length workload.
	// Empty Shapes mean the legacy fixed-shape iteration. When set, its
	// length must equal MicroBatches (enforced by Validate).
	Batch model.BatchSpec
	// Placement optionally records the cluster device each stage was placed
	// on (internal/cluster's Placement.Devices). Empty means unplaced (the
	// flat one-hop NIC model). When set, its length must equal Stages and
	// its entries must be distinct (enforced by Validate).
	Placement []int

	// validated memoizes a successful Validate, so re-simulating the same
	// plan (a pooled sim.Run per sweep cell) does not re-walk the full token
	// dataflow every call. Code that mutates a plan's Ops after validating it
	// must clear the flag; in practice plans are immutable once built.
	validated bool
}

// TrafficMatrix returns the per-(stage, peer) communication volume of the
// plan: m[s][p] is the bytes stage s sends stage p over one iteration,
// summed over the plan's KSend ops. This is the input the topology-aware
// placement search minimizes modeled P2P cost against.
func (p *Plan) TrafficMatrix() [][]int64 {
	m := make([][]int64, p.Stages)
	for s := range m {
		m[s] = make([]int64, p.Stages)
	}
	for s, ops := range p.Ops {
		for _, op := range ops {
			if op.Kind == KSend && op.Peer >= 0 && op.Peer < p.Stages {
				m[s][op.Peer] += op.Bytes
			}
		}
	}
	return m
}

// NumOps returns the total operation count across all stages.
func (p *Plan) NumOps() int {
	n := 0
	for _, ops := range p.Ops {
		n += len(ops)
	}
	return n
}

// ComputeSeconds returns the total compute time summed over all stages
// (the lower bound on p * iteration time with zero bubble).
func (p *Plan) ComputeSeconds() float64 {
	var total float64
	for _, ops := range p.Ops {
		for _, op := range ops {
			if op.Kind.IsCompute() {
				total += op.Dur
			}
		}
	}
	return total
}

// StageComputeSeconds returns the compute time of one stage's program.
func (p *Plan) StageComputeSeconds(stage int) float64 {
	var total float64
	for _, op := range p.Ops[stage] {
		if op.Kind.IsCompute() {
			total += op.Dur
		}
	}
	return total
}

// Config carries the schedule-independent build parameters shared by all
// generators.
type Config struct {
	// Stages is the pipeline size p. The paper maps one stage to one node.
	Stages int
	// MicroBatches is the number of micro batches m per iteration. The
	// paper uses m = 2p ("the global batch size was set to double the
	// pipeline size", section 5.1).
	MicroBatches int
	// Layers is the transformer layer count; must be divisible by Stages.
	Layers int
	// Batch optionally records the per-micro-batch shapes of a
	// variable-length workload; generators copy it onto the plan. When set,
	// its length must equal MicroBatches. The shapes themselves do not steer
	// scheduling — the per-micro-batch cost book does — but engines and
	// reports read them off the plan.
	Batch model.BatchSpec
}

// Validate reports an error when the configuration cannot be scheduled.
func (c Config) Validate() error {
	switch {
	case c.Stages <= 0:
		return fmt.Errorf("sched: Stages must be positive, got %d", c.Stages)
	case c.MicroBatches <= 0:
		return fmt.Errorf("sched: MicroBatches must be positive, got %d", c.MicroBatches)
	case c.Layers <= 0:
		return fmt.Errorf("sched: Layers must be positive, got %d", c.Layers)
	case c.Layers%c.Stages != 0:
		return fmt.Errorf("sched: Layers (%d) must be divisible by Stages (%d)", c.Layers, c.Stages)
	}
	if n := len(c.Batch.Shapes); n > 0 {
		if n != c.MicroBatches {
			return fmt.Errorf("sched: batch spec has %d shapes for %d micro batches", n, c.MicroBatches)
		}
		if err := c.Batch.Validate(); err != nil {
			return err
		}
	}
	return nil
}
