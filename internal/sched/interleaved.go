package sched

import (
	"fmt"
	"math"

	"repro/internal/model"
)

// Local aliases keeping the emit code compact.
const (
	segPre  = model.SegPre
	segAttn = model.SegAttn
	segPost = model.SegPost
)

var segsFwd = []model.Segment{segPre, segAttn, segPost}

// Interleaved builds the interleaved-1F1B schedule of Megatron-LM (paper
// section 6.2): instead of one contiguous chunk, every stage owns `chunks`
// smaller model chunks spread across the depth, shrinking the pipeline fill
// bubble by the chunk factor at the price of chunks-times more p2p traffic
// and a demand for many micro batches. The paper excludes it from its main
// experiments for exactly that reason ("it requires extensive micro batches
// to saturate the pipeline"); we implement it as an ablation baseline.
//
// The generator treats the p*chunks model chunks as virtual pipeline stages
// and list-schedules them onto the physical stages with the same
// deterministic earliest-start policy as ZB1P, with fused backward (B+W)
// like 1F1B and a 1F1B-style in-flight cap per virtual stage.
func Interleaved(cfg Config, costs Costs, chunks int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if chunks < 1 {
		return nil, fmt.Errorf("sched: interleaved chunks must be >= 1, got %d", chunks)
	}
	p, m := cfg.Stages, cfg.MicroBatches
	v := p * chunks // virtual pipeline depth
	if cfg.Layers%v != 0 {
		return nil, fmt.Errorf("sched: layers (%d) must divide into %d virtual stages", cfg.Layers, v)
	}
	layersPer := cfg.Layers / v

	// Virtual stage vs runs on physical stage vs%%p and owns layers
	// [vs*layersPer, (vs+1)*layersPer).
	physOf := func(vs int) int { return vs % p }
	firstLayer := func(vs int) int { return vs * layersPer }

	lw := newLayerwise(cfg, costs, evenChunks(cfg.Layers, p)) // chunk table unused; ops emitted manually

	emitVF := func(vs, mb int) {
		phys := physOf(vs)
		c := costs.StageMB(phys, mb)
		if vs == 0 {
			lw.emit(phys, Op{Kind: KForward, MB: mb, Layer: LayerEmbed, Dur: c.EmbedF})
		} else {
			lw.emit(phys, Op{Kind: KRecv, MB: mb, Peer: physOf(vs - 1),
				Tag: Tag{MB: mb, Layer: firstLayer(vs), Bound: BoundAct, Chunk: vs}})
		}
		for i := 0; i < layersPer; i++ {
			layer := firstLayer(vs) + i
			for _, seg := range segsFwd {
				lw.emit(phys, Op{Kind: KForward, MB: mb, Layer: layer, Seg: seg,
					Dur: c.SegDur(seg, KForward), Alloc: c.SegStash[seg]})
			}
		}
		if vs < v-1 {
			lw.emit(phys, Op{Kind: KSend, MB: mb, Peer: physOf(vs + 1),
				Tag:   Tag{MB: mb, Layer: firstLayer(vs + 1), Bound: BoundAct, Chunk: vs + 1},
				Bytes: c.BoundBytes[BoundAct]})
		}
	}
	emitVB := func(vs, mb int) {
		phys := physOf(vs)
		c := costs.StageMB(phys, mb)
		if vs == v-1 {
			lw.emit(phys, Op{Kind: KBackwardB, MB: mb, Layer: LayerHead, Dur: c.HeadFB, Alloc: c.EmbedGradStash})
			lw.emit(phys, Op{Kind: KBackwardW, MB: mb, Layer: LayerHead, Dur: c.HeadW, Free: c.EmbedGradStash})
		} else {
			lw.emit(phys, Op{Kind: KRecv, MB: mb, Peer: physOf(vs + 1),
				Tag: Tag{MB: mb, Layer: firstLayer(vs + 1), Bound: BoundAct, Back: true, Chunk: vs + 1}})
		}
		for i := layersPer - 1; i >= 0; i-- {
			layer := firstLayer(vs) + i
			for s := len(segsFwd) - 1; s >= 0; s-- {
				seg := segsFwd[s]
				lw.emit(phys, Op{Kind: KBackwardB, MB: mb, Layer: layer, Seg: seg,
					Dur: c.SegDur(seg, KBackwardB), Free: c.SegStashBFree[seg]})
				if seg != segAttn {
					lw.emit(phys, Op{Kind: KBackwardW, MB: mb, Layer: layer, Seg: seg,
						Dur: c.SegDur(seg, KBackwardW), Free: c.SegStashWFree[seg]})
				}
			}
		}
		if vs == 0 {
			lw.emit(phys, Op{Kind: KBackwardW, MB: mb, Layer: LayerEmbed, Dur: c.EmbedW})
		} else {
			lw.emit(phys, Op{Kind: KSend, MB: mb, Peer: physOf(vs - 1),
				Tag:   Tag{MB: mb, Layer: firstLayer(vs), Bound: BoundAct, Back: true, Chunk: vs},
				Bytes: c.BoundBytes[BoundAct]})
		}
	}

	vfDur := func(vs, mb int) float64 {
		c := costs.StageMB(physOf(vs), mb)
		d := float64(layersPer) * c.LayerDur(KForward)
		if vs == 0 {
			d += c.EmbedF
		}
		return d
	}
	vbDur := func(vs, mb int) float64 {
		c := costs.StageMB(physOf(vs), mb)
		d := float64(layersPer) * (c.LayerDur(KBackwardB) + c.SegDur(segPre, KBackwardW) + c.SegDur(segPost, KBackwardW))
		if vs == v-1 {
			d += c.HeadFB + c.HeadW
		}
		if vs == 0 {
			d += c.EmbedW
		}
		return d
	}

	// Deterministic earliest-start list scheduling over virtual stages.
	const inf = math.MaxFloat64
	fArr := make([][]float64, v)
	bArr := make([][]float64, v)
	fDone := make([][]float64, v)
	for vs := 0; vs < v; vs++ {
		fArr[vs] = make([]float64, m)
		bArr[vs] = make([]float64, m)
		fDone[vs] = make([]float64, m)
		for j := 0; j < m; j++ {
			if vs != 0 {
				fArr[vs][j] = inf
			}
			bArr[vs][j] = inf
			fDone[vs][j] = inf
		}
	}
	clock := make([]float64, p)
	fNext := make([]int, v)
	bNext := make([]int, v)

	// cap limits in-flight micro batches per virtual stage, mirroring
	// Megatron's interleaved warmup depth.
	inflightCap := func(vs int) int {
		c := v - vs
		if c < 1 {
			c = 1
		}
		return c
	}

	type cand struct {
		vs    int
		back  bool
		start float64
	}
	pick := func(phys int) (cand, bool) {
		best := cand{start: inf}
		found := false
		for vs := phys; vs < v; vs += p {
			if j := bNext[vs]; j < m {
				ready := bArr[vs][j]
				if vs == v-1 {
					ready = fDone[vs][j]
				}
				if ready < inf {
					if t := math.Max(clock[phys], ready); t < best.start {
						best, found = cand{vs: vs, back: true, start: t}, true
					}
				}
			}
			if j := fNext[vs]; j < m && fNext[vs]-bNext[vs] < inflightCap(vs) {
				if ready := fArr[vs][j]; ready < inf {
					if t := math.Max(clock[phys], ready); t < best.start {
						best, found = cand{vs: vs, back: false, start: t}, true
					}
				}
			}
		}
		return best, found
	}

	for {
		bestPhys, best := -1, cand{start: inf}
		for phys := 0; phys < p; phys++ {
			if c, ok := pick(phys); ok && c.start < best.start {
				bestPhys, best = phys, c
			}
		}
		if bestPhys < 0 {
			break
		}
		vs := best.vs
		if best.back {
			j := bNext[vs]
			end := best.start + vbDur(vs, j)
			emitVB(vs, j)
			if vs > 0 {
				bArr[vs-1][j] = end + costs.P2PTime(costs.MB(j).BoundBytes[BoundAct])
			}
			bNext[vs]++
			clock[bestPhys] = end
		} else {
			j := fNext[vs]
			end := best.start + vfDur(vs, j)
			emitVF(vs, j)
			fDone[vs][j] = end
			if vs < v-1 {
				fArr[vs+1][j] = end + costs.P2PTime(costs.MB(j).BoundBytes[BoundAct])
			}
			fNext[vs]++
			clock[bestPhys] = end
		}
	}
	for vs := 0; vs < v; vs++ {
		if fNext[vs] != m || bNext[vs] != m {
			return nil, fmt.Errorf("sched: interleaved scheduling deadlocked at virtual stage %d", vs)
		}
	}
	plan := lw.plan(MethodInterleaved)
	return plan, nil
}
