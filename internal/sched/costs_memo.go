package sched

import (
	"sync"

	"repro/internal/costmodel"
)

// Cost books are pure functions of a comparable costmodel.Workload, and
// sweeps, tune grids and fleet streams evaluate the same (model, cluster,
// shape) workloads over and over — every cell of a method sweep shares one
// workload, and a variable-length batch repeats its few distinct shapes
// across micro batches. The process-wide memo below makes each distinct
// workload pay the analytic cost model once.

// mbCostsMemoCap bounds the memo so unbounded sweeps (fleet streams over
// random lengths) cannot grow it without limit; at ~200 bytes per entry the
// cap keeps it under a few MB. On overflow the memo resets — a full rebuild
// of the working set is cheaper than tracking recency.
const mbCostsMemoCap = 1 << 14

var mbCostsMemo struct {
	sync.Mutex
	m map[costmodel.Workload]MBCosts
}

// memoMBCosts returns the micro-batch cost book for the workload, computing
// and caching it on first sight.
func memoMBCosts(w costmodel.Workload) MBCosts {
	mbCostsMemo.Lock()
	if c, ok := mbCostsMemo.m[w]; ok {
		mbCostsMemo.Unlock()
		return c
	}
	mbCostsMemo.Unlock()
	// Compute outside the lock: the model is pure, so concurrent duplicate
	// work is wasteful but correct, and sweep workers never serialize on the
	// analytic model.
	c := newMBCosts(w)
	mbCostsMemo.Lock()
	if mbCostsMemo.m == nil || len(mbCostsMemo.m) >= mbCostsMemoCap {
		mbCostsMemo.m = make(map[costmodel.Workload]MBCosts)
	}
	mbCostsMemo.m[w] = c
	mbCostsMemo.Unlock()
	return c
}
