package sched

import (
	"fmt"

	"repro/internal/model"
)

// This file implements a schedule-independent plan validator. It runs the
// plan as an abstract token-dataflow machine: every compute op consumes and
// produces named value tokens, sends require the token locally and recvs
// materialize it on the receiving stage. A plan is valid when (a) every
// stage's program runs to completion without deadlock, (b) every op's input
// tokens are present on its stage when it executes, (c) per-micro-batch op
// counts are complete and exact, and (d) stashes balance.
//
// The same token semantics is what internal/exec implements with real
// tensors, so passing validation here is exactly the property that makes a
// plan runnable by the numeric engine.

// tokKind names the abstract values flowing through a transformer iteration.
type tokKind int

const (
	tokA       tokKind = iota // activation entering layer l (or the head for l=L)
	tokQ                      // pre-attention output of layer l
	tokO                      // attention output of layer l
	tokGA                     // gradient of A(l)
	tokGO                     // gradient of O(l)
	tokGQ                     // gradient of Q(l)
	tokWEnable                // backward-B of (l,seg) done; enables backward-W
)

type token struct {
	kind  tokKind
	mb    int
	layer int
	seg   model.Segment // only for tokWEnable
}

func tokenOfTag(t Tag) token {
	if !t.Back {
		switch t.Bound {
		case BoundAct:
			return token{kind: tokA, mb: t.MB, layer: t.Layer}
		case BoundPreAttn:
			return token{kind: tokQ, mb: t.MB, layer: t.Layer}
		default:
			return token{kind: tokO, mb: t.MB, layer: t.Layer}
		}
	}
	switch t.Bound {
	case BoundAct:
		return token{kind: tokGA, mb: t.MB, layer: t.Layer}
	case BoundPreAttn:
		return token{kind: tokGQ, mb: t.MB, layer: t.Layer}
	default:
		return token{kind: tokGO, mb: t.MB, layer: t.Layer}
	}
}

// opIO returns the tokens an op requires and produces. Recompute ops have no
// token effects (they regenerate locally stashed intermediates).
func opIO(op Op, layers int) (req []token, prod []token) {
	switch op.Kind {
	case KForward:
		switch op.Layer {
		case LayerEmbed:
			return nil, []token{{kind: tokA, mb: op.MB, layer: 0}}
		case LayerHead:
			return []token{{kind: tokA, mb: op.MB, layer: layers}}, nil
		}
		switch op.Seg {
		case model.SegPre:
			return []token{{kind: tokA, mb: op.MB, layer: op.Layer}},
				[]token{{kind: tokQ, mb: op.MB, layer: op.Layer}}
		case model.SegAttn:
			return []token{{kind: tokQ, mb: op.MB, layer: op.Layer}},
				[]token{{kind: tokO, mb: op.MB, layer: op.Layer}}
		default:
			return []token{{kind: tokO, mb: op.MB, layer: op.Layer}},
				[]token{{kind: tokA, mb: op.MB, layer: op.Layer + 1}}
		}
	case KBackwardB:
		switch op.Layer {
		case LayerHead:
			// Deferred head: forward + loss + backward in one op (4.6).
			return []token{{kind: tokA, mb: op.MB, layer: layers}},
				[]token{
					{kind: tokGA, mb: op.MB, layer: layers},
					{kind: tokWEnable, mb: op.MB, layer: LayerHead},
				}
		case LayerEmbed:
			return []token{{kind: tokGA, mb: op.MB, layer: 0}}, nil
		}
		switch op.Seg {
		case model.SegPost:
			return []token{{kind: tokGA, mb: op.MB, layer: op.Layer + 1}},
				[]token{
					{kind: tokGO, mb: op.MB, layer: op.Layer},
					{kind: tokWEnable, mb: op.MB, layer: op.Layer, seg: model.SegPost},
				}
		case model.SegAttn:
			return []token{{kind: tokGO, mb: op.MB, layer: op.Layer}},
				[]token{{kind: tokGQ, mb: op.MB, layer: op.Layer}}
		default:
			return []token{{kind: tokGQ, mb: op.MB, layer: op.Layer}},
				[]token{
					{kind: tokGA, mb: op.MB, layer: op.Layer},
					{kind: tokWEnable, mb: op.MB, layer: op.Layer, seg: model.SegPre},
				}
		}
	case KBackwardW:
		switch op.Layer {
		case LayerHead:
			return []token{{kind: tokWEnable, mb: op.MB, layer: LayerHead}}, nil
		case LayerEmbed:
			return []token{{kind: tokGA, mb: op.MB, layer: 0}}, nil
		}
		return []token{{kind: tokWEnable, mb: op.MB, layer: op.Layer, seg: op.Seg}}, nil
	}
	return nil, nil
}

// Validate checks the plan's structural and dataflow invariants and returns
// a descriptive error for the first violation found.
func Validate(p *Plan) error {
	if p.validated {
		return nil
	}
	if len(p.Ops) != p.Stages {
		return fmt.Errorf("sched: plan has %d stage programs, want %d", len(p.Ops), p.Stages)
	}
	if err := validateStructure(p); err != nil {
		return err
	}
	if err := validateCounts(p); err != nil {
		return err
	}
	if err := validateDataflow(p); err != nil {
		return err
	}
	if err := validateMemory(p); err != nil {
		return err
	}
	p.validated = true
	return nil
}

func validateStructure(p *Plan) error {
	if n := len(p.Batch.Shapes); n > 0 && n != p.MicroBatches {
		return fmt.Errorf("sched: plan batch spec has %d shapes for %d micro batches", n, p.MicroBatches)
	}
	if n := len(p.Placement); n > 0 {
		if n != p.Stages {
			return fmt.Errorf("sched: plan placement maps %d devices for %d stages", n, p.Stages)
		}
		seen := map[int]int{}
		for stage, dev := range p.Placement {
			if dev < 0 {
				return fmt.Errorf("sched: plan placement stage %d on negative device %d", stage, dev)
			}
			if prev, ok := seen[dev]; ok {
				return fmt.Errorf("sched: plan placement stages %d and %d share device %d", prev, stage, dev)
			}
			seen[dev] = stage
		}
	}
	for s, ops := range p.Ops {
		for i, op := range ops {
			if op.Kind.IsCompute() && op.Dur < 0 {
				return fmt.Errorf("sched: stage %d op %d (%v): negative duration", s, i, op)
			}
			if op.Kind == KSend || op.Kind == KRecv {
				if op.Peer < 0 || op.Peer >= p.Stages {
					return fmt.Errorf("sched: stage %d op %d (%v): peer out of range", s, i, op)
				}
				if op.Peer == s {
					return fmt.Errorf("sched: stage %d op %d (%v): self communication", s, i, op)
				}
			}
			if op.MB < 0 || (op.Kind != KSend && op.Kind != KRecv && op.MB >= p.MicroBatches) {
				return fmt.Errorf("sched: stage %d op %d (%v): micro batch out of range", s, i, op)
			}
		}
	}
	return nil
}

// validateCounts checks that every (micro batch, layer, segment) gets
// exactly one forward, one backward-B, exactly one backward-W for the
// parameterized segments and none for attention, plus exactly one embedding
// forward, embedding W, head backward and head W per micro batch — and that
// the stash-holding passes of a (layer, segment) are colocated on one stage.
func validateCounts(p *Plan) error {
	type key struct {
		mb, layer int
		seg       model.Segment
		kind      OpKind
	}
	count := map[key]int{}
	home := map[key]int{} // stage of the forward pass
	for s, ops := range p.Ops {
		for _, op := range ops {
			if !op.Kind.IsCompute() || op.Kind == KRecompute {
				continue
			}
			k := key{mb: op.MB, layer: op.Layer, seg: op.Seg, kind: op.Kind}
			count[k]++
			fk := key{mb: op.MB, layer: op.Layer, seg: op.Seg, kind: KForward}
			switch op.Kind {
			case KForward:
				home[fk] = s
			case KBackwardB, KBackwardW:
				if op.Layer >= 0 {
					if fs, ok := home[fk]; ok && fs != s {
						return fmt.Errorf("sched: %v on stage %d but forward ran on stage %d (stash not local)", op, s, fs)
					}
				}
			}
		}
	}
	for mb := 0; mb < p.MicroBatches; mb++ {
		for l := 0; l < p.Layers; l++ {
			for _, seg := range model.Segments {
				if c := count[key{mb, l, seg, KForward}]; c != 1 {
					return fmt.Errorf("sched: F(l%d.%v,mb%d) emitted %d times", l, seg, mb, c)
				}
				if c := count[key{mb, l, seg, KBackwardB}]; c != 1 {
					return fmt.Errorf("sched: B(l%d.%v,mb%d) emitted %d times", l, seg, mb, c)
				}
				wantW := 0
				if seg != model.SegAttn {
					wantW = 1
				}
				if c := count[key{mb, l, seg, KBackwardW}]; c != wantW {
					return fmt.Errorf("sched: W(l%d.%v,mb%d) emitted %d times, want %d", l, seg, mb, c, wantW)
				}
			}
		}
		if c := count[key{mb, LayerEmbed, model.SegPre, KForward}]; c != 1 {
			return fmt.Errorf("sched: embed F for mb%d emitted %d times", mb, c)
		}
		if c := count[key{mb, LayerEmbed, model.SegPre, KBackwardW}]; c != 1 {
			return fmt.Errorf("sched: embed W for mb%d emitted %d times", mb, c)
		}
		if c := count[key{mb, LayerHead, model.SegPre, KBackwardB}]; c != 1 {
			return fmt.Errorf("sched: head FB for mb%d emitted %d times", mb, c)
		}
		if c := count[key{mb, LayerHead, model.SegPre, KBackwardW}]; c != 1 {
			return fmt.Errorf("sched: head W for mb%d emitted %d times", mb, c)
		}
	}
	return nil
}

// validateDataflow runs the token machine to completion or reports the
// deadlock / missing-input violation.
func validateDataflow(p *Plan) error {
	type msgKey struct {
		tag  Tag
		from int
		to   int
	}
	sent := map[msgKey]int{}
	have := make([]map[token]bool, p.Stages)
	for s := range have {
		have[s] = map[token]bool{}
	}
	pc := make([]int, p.Stages)
	for {
		progress := false
		for s := 0; s < p.Stages; s++ {
		stageLoop:
			for pc[s] < len(p.Ops[s]) {
				op := p.Ops[s][pc[s]]
				switch op.Kind {
				case KRecv:
					k := msgKey{tag: op.Tag, from: op.Peer, to: s}
					if sent[k] == 0 {
						break stageLoop // block until the matching send
					}
					sent[k]--
					have[s][tokenOfTag(op.Tag)] = true
				case KSend:
					tok := tokenOfTag(op.Tag)
					if !have[s][tok] {
						return fmt.Errorf("sched: stage %d sends %v before producing it", s, op.Tag)
					}
					sent[msgKey{tag: op.Tag, from: s, to: op.Peer}]++
				default:
					req, prod := opIO(op, p.Layers)
					for _, tok := range req {
						if !have[s][tok] {
							return fmt.Errorf("sched: stage %d op %v: missing input token %+v", s, op, tok)
						}
					}
					for _, tok := range prod {
						have[s][tok] = true
					}
				}
				pc[s]++
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for s := 0; s < p.Stages; s++ {
		if pc[s] != len(p.Ops[s]) {
			return fmt.Errorf("sched: deadlock: stage %d blocked at op %d (%v)", s, pc[s], p.Ops[s][pc[s]])
		}
	}
	for k, n := range sent {
		if n != 0 {
			return fmt.Errorf("sched: message %v from %d to %d sent %d times but never received", k.tag, k.from, k.to, n)
		}
	}
	return nil
}

// validateMemory checks stash conservation: on every stage the allocated
// bytes equal the freed bytes over the iteration (no leak across iterations)
// and the running balance never goes negative in program order.
func validateMemory(p *Plan) error {
	for s, ops := range p.Ops {
		var bal int64
		for i, op := range ops {
			bal += op.Alloc - op.Free
			if bal < 0 {
				return fmt.Errorf("sched: stage %d op %d (%v): stash balance negative (%d)", s, i, op, bal)
			}
		}
		if bal != 0 {
			return fmt.Errorf("sched: stage %d leaks %d stash bytes per iteration", s, bal)
		}
	}
	return nil
}
