package sched

import (
	"fmt"
	"math"
)

// ZB1P builds the zero-bubble pipeline schedule of Qi et al. (paper section
// 2.3.2): the backward pass is decoupled into backward-B and backward-W, and
// the weight gradients are delayed to fill pipeline bubbles. The original
// system combines a handcrafted schedule with an ILP-assisted heuristic to
// place backward-W under uneven F/B/W times; this generator reproduces that
// with deterministic cost-driven list scheduling — each stage greedily runs
// the ready action with the earliest start time, preferring backward-B over
// forward over weight gradients on ties, and falls back to pending weight
// gradients whenever it would otherwise idle.
//
// Memory follows Equation 4: forward admission is capped at p outstanding
// micro batches per stage (the 1F1B stage-0 worst case), and activations of
// parameterized components stay stashed until their deferred backward-W.
func ZB1P(cfg Config, costs Costs) (*Plan, error) {
	return zeroBubble(cfg, costs, cfg.Stages, MethodZB1P)
}

// ZB2P builds the second zero-bubble variant the paper's footnote 1
// describes: it "costs more memory and involves optimizer modification" —
// the post-update synchronization barrier is bypassed so stages may admit
// up to 2p in-flight micro batches, trading activation memory for an even
// smaller bubble. We implement the schedule side (the doubled in-flight
// window); the optimizer-bypass itself has no effect inside a single
// simulated iteration.
func ZB2P(cfg Config, costs Costs) (*Plan, error) {
	return zeroBubble(cfg, costs, 2*cfg.Stages, MethodZB2P)
}

// zeroBubble is the shared cost-driven list scheduler of ZB1P and ZB2P;
// inflightCap bounds forward admission per stage (p for ZB1P, matching
// Equation 4's 1F1B-equivalent memory; 2p for ZB2P).
func zeroBubble(cfg Config, costs Costs, inflightCap int, method Method) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lw := newLayerwise(cfg, costs, evenChunks(cfg.Layers, cfg.Stages))
	p, m := cfg.Stages, cfg.MicroBatches
	const inf = math.MaxFloat64

	fArr := make([][]float64, p)  // arrival time of the forward input
	bArr := make([][]float64, p)  // arrival time of the gradient input
	fDone := make([][]float64, p) // completion time of the local forward
	for s := 0; s < p; s++ {
		fArr[s] = make([]float64, m)
		bArr[s] = make([]float64, m)
		fDone[s] = make([]float64, m)
		for j := 0; j < m; j++ {
			if s != 0 {
				fArr[s][j] = inf
			}
			bArr[s][j] = inf
			fDone[s][j] = inf
		}
	}

	type wUnit struct {
		mb, layer int // layer, or LayerHead / LayerEmbed
	}
	clock := make([]float64, p)
	fNext := make([]int, p)
	bNext := make([]int, p)
	wQ := make([][]wUnit, p)

	wUnitDur := func(s int, u wUnit) float64 {
		c := costs.StageMB(s, u.mb)
		switch u.layer {
		case LayerHead:
			return c.HeadW
		case LayerEmbed:
			return c.EmbedW
		default:
			return lw.wStepDur(s, u.mb)
		}
	}
	emitWUnit := func(s int, u wUnit) {
		c := costs.StageMB(s, u.mb)
		switch u.layer {
		case LayerHead:
			lw.emit(s, Op{Kind: KBackwardW, MB: u.mb, Layer: LayerHead, Dur: c.HeadW, Free: c.EmbedGradStash})
		case LayerEmbed:
			lw.emit(s, Op{Kind: KBackwardW, MB: u.mb, Layer: LayerEmbed, Dur: c.EmbedW})
		default:
			lw.emitWStep(s, u.mb, u.layer)
		}
	}

	type action int
	const (
		actNone action = iota
		actB
		actF
		actW
	)
	// nextAction returns the stage's best next action and its start time.
	nextAction := func(s int) (action, float64) {
		best, bestStart := actNone, inf
		if j := bNext[s]; j < m {
			ready := bArr[s][j]
			if s == p-1 {
				ready = fDone[s][j]
			}
			if ready < inf {
				if t := math.Max(clock[s], ready); t < bestStart {
					best, bestStart = actB, t
				}
			}
		}
		if j := fNext[s]; j < m && fNext[s]-bNext[s] < inflightCap {
			if ready := fArr[s][j]; ready < inf {
				if t := math.Max(clock[s], ready); t < bestStart {
					best, bestStart = actF, t
				}
			}
		}
		if len(wQ[s]) > 0 {
			if t := clock[s]; t < bestStart {
				best, bestStart = actW, t
			}
		}
		return best, bestStart
	}

	for {
		bestStage, bestAct, bestStart := -1, actNone, inf
		for s := 0; s < p; s++ {
			act, start := nextAction(s)
			if act != actNone && start < bestStart {
				bestStage, bestAct, bestStart = s, act, start
			}
		}
		if bestStage < 0 {
			break
		}
		s := bestStage
		switch bestAct {
		case actF:
			j := fNext[s]
			end := bestStart + lw.fStepDur(s, j)
			lw.emitFStep(s, j)
			fDone[s][j] = end
			if s < p-1 {
				fArr[s+1][j] = end + costs.P2PTime(costs.MB(j).BoundBytes[BoundAct])
			}
			fNext[s]++
			clock[s] = end
		case actB:
			j := bNext[s]
			end := bestStart + lw.bStepDur(s, j, false)
			lw.emitBStep(s, j, false)
			if s > 0 {
				bArr[s-1][j] = end + costs.P2PTime(costs.MB(j).BoundBytes[BoundAct])
			}
			bNext[s]++
			clock[s] = end
			// Enqueue the deferred weight gradients: head first (it ran
			// first in the backward step), then the chunk layers in the
			// backward order they were visited.
			if s == p-1 {
				wQ[s] = append(wQ[s], wUnit{mb: j, layer: LayerHead})
			}
			for i := len(lw.chunks[s]) - 1; i >= 0; i-- {
				wQ[s] = append(wQ[s], wUnit{mb: j, layer: lw.chunks[s][i]})
			}
			if s == 0 {
				wQ[s] = append(wQ[s], wUnit{mb: j, layer: LayerEmbed})
			}
		case actW:
			u := wQ[s][0]
			wQ[s] = wQ[s][1:]
			emitWUnit(s, u)
			clock[s] = bestStart + wUnitDur(s, u)
		}
	}

	for s := 0; s < p; s++ {
		if fNext[s] != m || bNext[s] != m || len(wQ[s]) != 0 {
			return nil, fmt.Errorf("sched: ZB1P scheduling deadlocked at stage %d (F %d/%d, B %d/%d, W pending %d)",
				s, fNext[s], m, bNext[s], m, len(wQ[s]))
		}
	}
	plan := lw.plan(method)
	return plan, nil
}
