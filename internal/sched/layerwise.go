package sched

import (
	"repro/internal/model"
)

// This file implements the layer-wise baselines: the model is partitioned
// into contiguous layer chunks, one per stage, and micro batches flow
// stage-to-stage (GPipe and 1F1B here; ZB1P and AdaPipe build on the same
// emit helpers in their own files).

// layerwise accumulates per-stage programs for chunked layer partitions.
type layerwise struct {
	cfg    Config
	costs  Costs
	chunks [][]int        // chunks[stage] lists the stage's layer indices
	recomp []map[int]bool // recomp[stage][layer]: fully recompute that layer
	ops    [][]Op
}

// evenChunks partitions L layers into p contiguous equal chunks.
func evenChunks(layers, stages int) [][]int {
	per := layers / stages
	chunks := make([][]int, stages)
	next := 0
	for s := range chunks {
		for i := 0; i < per; i++ {
			chunks[s] = append(chunks[s], next)
			next++
		}
	}
	return chunks
}

// chunksFromSizes partitions layers into contiguous chunks of the given
// sizes (which must sum to the layer count).
func chunksFromSizes(sizes []int) [][]int {
	chunks := make([][]int, len(sizes))
	next := 0
	for s, n := range sizes {
		for i := 0; i < n; i++ {
			chunks[s] = append(chunks[s], next)
			next++
		}
	}
	return chunks
}

func newLayerwise(cfg Config, costs Costs, chunks [][]int) *layerwise {
	lw := &layerwise{
		cfg:    cfg,
		costs:  costs,
		chunks: chunks,
		recomp: make([]map[int]bool, cfg.Stages),
		ops:    make([][]Op, cfg.Stages),
	}
	for s := range lw.recomp {
		lw.recomp[s] = map[int]bool{}
	}
	return lw
}

func (lw *layerwise) emit(stage int, op Op) { lw.ops[stage] = append(lw.ops[stage], op) }

// inBoundaryLayer returns the layer identifying the activation boundary
// entering the stage (the first layer of its chunk).
func (lw *layerwise) inBoundaryLayer(stage int) int { return lw.chunks[stage][0] }

// emitFStep emits the full forward step of one micro batch on one stage:
// receive the boundary activation (or embed on stage 0), run every chunk
// layer segment by segment, and forward the result downstream. Costs come
// from the micro batch's own book, so variable-length micro batches get
// shape-correct durations, stashes and message volumes.
func (lw *layerwise) emitFStep(stage, mb int) {
	c := lw.costs.StageMB(stage, mb)
	if stage == 0 {
		lw.emit(stage, Op{Kind: KForward, MB: mb, Layer: LayerEmbed, Dur: c.EmbedF})
	} else {
		lw.emit(stage, Op{Kind: KRecv, MB: mb, Peer: stage - 1,
			Tag: Tag{MB: mb, Layer: lw.inBoundaryLayer(stage), Bound: BoundAct}})
	}
	for _, layer := range lw.chunks[stage] {
		rec := lw.recomp[stage][layer]
		for _, seg := range model.Segments {
			op := Op{Kind: KForward, MB: mb, Layer: layer, Seg: seg, Dur: c.SegDur(seg, KForward)}
			switch {
			case rec && seg == model.SegPre:
				op.Alloc = c.InputStash // keep only the layer input
			case rec:
				op.Alloc = 0
			default:
				op.Alloc = c.SegStash[seg]
			}
			lw.emit(stage, op)
		}
	}
	if stage < lw.cfg.Stages-1 {
		lw.emit(stage, Op{Kind: KSend, MB: mb, Peer: stage + 1,
			Tag:   Tag{MB: mb, Layer: lw.inBoundaryLayer(stage + 1), Bound: BoundAct},
			Bytes: c.BoundBytes[BoundAct]})
	}
}

// emitBStep emits the backward step of one micro batch: receive the gradient
// (or run the deferred head forward+loss+backward on the last stage), walk
// the chunk layers in reverse with backward-B, optionally emitting the
// weight gradients in place (withW), and send the boundary gradient
// upstream. With withW false the caller is responsible for scheduling the
// corresponding W ops later (ZB1P).
func (lw *layerwise) emitBStep(stage, mb int, withW bool) {
	c := lw.costs.StageMB(stage, mb)
	last := lw.cfg.Stages - 1
	if stage == last {
		// Section 4.6: the LM-head forward and loss run inside the backward
		// pass, so no [s,b,V] logits tensor is ever stashed. The head input
		// and output gradient live until the head's backward-W.
		lw.emit(stage, Op{Kind: KBackwardB, MB: mb, Layer: LayerHead, Dur: c.HeadFB, Alloc: c.EmbedGradStash})
		if withW {
			lw.emit(stage, Op{Kind: KBackwardW, MB: mb, Layer: LayerHead, Dur: c.HeadW, Free: c.EmbedGradStash})
		}
	} else {
		lw.emit(stage, Op{Kind: KRecv, MB: mb, Peer: stage + 1,
			Tag: Tag{MB: mb, Layer: lw.inBoundaryLayer(stage + 1), Bound: BoundAct, Back: true}})
	}
	for i := len(lw.chunks[stage]) - 1; i >= 0; i-- {
		layer := lw.chunks[stage][i]
		if lw.recomp[stage][layer] {
			// Full-layer recomputation (AdaPipe style): regenerate all three
			// segment stashes from the retained layer input, one op per
			// segment so the numeric executor can replay it faithfully.
			for _, seg := range model.Segments {
				alloc := c.SegStash[seg]
				if seg == model.SegPre {
					alloc -= c.InputStash
				}
				lw.emit(stage, Op{Kind: KRecompute, MB: mb, Layer: layer, Seg: seg,
					Dur: c.SegRecompute[seg], Alloc: alloc})
			}
		}
		for s := len(model.Segments) - 1; s >= 0; s-- {
			seg := model.Segments[s]
			lw.emit(stage, Op{Kind: KBackwardB, MB: mb, Layer: layer, Seg: seg,
				Dur: c.SegDur(seg, KBackwardB), Free: c.SegStashBFree[seg]})
			if withW && seg != model.SegAttn {
				lw.emit(stage, Op{Kind: KBackwardW, MB: mb, Layer: layer, Seg: seg,
					Dur: c.SegDur(seg, KBackwardW), Free: c.SegStashWFree[seg]})
			}
		}
	}
	if stage == 0 {
		if withW {
			lw.emit(stage, Op{Kind: KBackwardW, MB: mb, Layer: LayerEmbed, Dur: c.EmbedW})
		}
	} else {
		lw.emit(stage, Op{Kind: KSend, MB: mb, Peer: stage - 1,
			Tag:   Tag{MB: mb, Layer: lw.inBoundaryLayer(stage), Bound: BoundAct, Back: true},
			Bytes: c.BoundBytes[BoundAct]})
	}
}

// emitWStep emits the deferred weight-gradient ops of one (micro batch,
// layer) unit: post then pre, in the order ZB1P fills bubbles with.
func (lw *layerwise) emitWStep(stage, mb, layer int) {
	c := lw.costs.StageMB(stage, mb)
	for _, seg := range []model.Segment{model.SegPost, model.SegPre} {
		lw.emit(stage, Op{Kind: KBackwardW, MB: mb, Layer: layer, Seg: seg,
			Dur: c.SegDur(seg, KBackwardW), Free: c.SegStashWFree[seg]})
	}
}

// wStepDur returns the duration of one emitWStep for one micro batch on one
// stage.
func (lw *layerwise) wStepDur(stage, mb int) float64 {
	c := lw.costs.StageMB(stage, mb)
	return c.SegDur(model.SegPost, KBackwardW) + c.SegDur(model.SegPre, KBackwardW)
}

// fStepDur returns the duration of one emitFStep's compute on a stage.
func (lw *layerwise) fStepDur(stage, mb int) float64 {
	c := lw.costs.StageMB(stage, mb)
	d := 0.0
	if stage == 0 {
		d += c.EmbedF
	}
	d += float64(len(lw.chunks[stage])) * c.LayerDur(KForward)
	return d
}

// bStepDur returns the duration of one emitBStep's compute on a stage.
func (lw *layerwise) bStepDur(stage, mb int, withW bool) float64 {
	c := lw.costs.StageMB(stage, mb)
	d := 0.0
	if stage == lw.cfg.Stages-1 {
		d += c.HeadFB
		if withW {
			d += c.HeadW
		}
	}
	for _, layer := range lw.chunks[stage] {
		if lw.recomp[stage][layer] {
			d += c.SegRecompute[model.SegPre] + c.SegRecompute[model.SegAttn] + c.SegRecompute[model.SegPost]
		}
		d += c.LayerDur(KBackwardB)
		if withW {
			d += c.SegDur(model.SegPre, KBackwardW) + c.SegDur(model.SegPost, KBackwardW)
		}
	}
	if stage == 0 && withW {
		d += c.EmbedW
	}
	return d
}

func (lw *layerwise) plan(method Method) *Plan {
	return &Plan{
		Method:       method,
		Stages:       lw.cfg.Stages,
		MicroBatches: lw.cfg.MicroBatches,
		Layers:       lw.cfg.Layers,
		Ops:          lw.ops,
		Costs:        lw.costs,
		Batch:        lw.cfg.Batch,
	}
}

// GPipe builds the GPipe schedule: all forward passes in micro-batch order,
// then all backward passes in reverse (first-in-last-out), weight gradients
// in place. Referenced by the paper's related work as the original FILO
// pipeline with layer-wise partitioning.
func GPipe(cfg Config, costs Costs) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lw := newLayerwise(cfg, costs, evenChunks(cfg.Layers, cfg.Stages))
	for s := 0; s < cfg.Stages; s++ {
		for mb := 0; mb < cfg.MicroBatches; mb++ {
			lw.emitFStep(s, mb)
		}
		for mb := cfg.MicroBatches - 1; mb >= 0; mb-- {
			lw.emitBStep(s, mb, true)
		}
	}
	return lw.plan(MethodGPipe), nil
}

// OneFOneB builds the 1F1B schedule of PipeDream/DAPPLE as deployed by
// Megatron-LM: stage i warms up with p-1-i forward passes, then alternates
// one-forward-one-backward, then drains. Weight gradients run fused with
// backward-B (paper section 2.3.1).
func OneFOneB(cfg Config, costs Costs) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return oneFOneBOn(newLayerwise(cfg, costs, evenChunks(cfg.Layers, cfg.Stages))), nil
}

// oneFOneBOn runs the canonical 1F1B emission order on a prepared layerwise
// builder (shared with AdaPipe, which changes chunks and recompute sets).
func oneFOneBOn(lw *layerwise) *Plan {
	cfg := lw.cfg
	for s := 0; s < cfg.Stages; s++ {
		warmup := cfg.Stages - 1 - s
		if warmup > cfg.MicroBatches {
			warmup = cfg.MicroBatches
		}
		for mb := 0; mb < warmup; mb++ {
			lw.emitFStep(s, mb)
		}
		for mb := warmup; mb < cfg.MicroBatches; mb++ {
			lw.emitFStep(s, mb)
			lw.emitBStep(s, mb-warmup, true)
		}
		for mb := cfg.MicroBatches - warmup; mb < cfg.MicroBatches; mb++ {
			lw.emitBStep(s, mb, true)
		}
	}
	return lw.plan(Method1F1B)
}
