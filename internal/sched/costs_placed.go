package sched

import (
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/model"
)

// StageBook is the cost book of one placed pipeline stage: the stage's
// workload priced against its placed node — its real intra-node link class
// for sequence-parallel collectives, its device generation for compute, and
// its perturbation compute factor. The embedded MBCosts is the stage's
// uniform book; PerMB overrides it per micro batch on variable-length
// workloads, exactly like Costs itself.
type StageBook struct {
	MBCosts
	PerMB []MBCosts
}

// mb returns the stage's book for one micro batch, falling back to the
// stage's uniform book outside the override range.
func (b StageBook) mb(mb int) MBCosts {
	if mb >= 0 && mb < len(b.PerMB) {
		return b.PerMB[mb]
	}
	return b.MBCosts
}

// placedWorkload resolves the workload to one placed stage of the topology:
// collectives priced on the placed node's intra link, compute on its device
// generation, durations stretched by its perturbation factor. The placed
// fields are comparable parts of the workload, so the cost-book memo keys on
// the placement signature automatically.
func placedWorkload(w costmodel.Workload, topo *cluster.Topology, stage int) costmodel.Workload {
	ws := w
	if l := topo.IntraLink(stage); l.GBps > 0 {
		ws.Link = costmodel.LinkSpec{Class: string(l.Class), GBps: l.GBps, LatencySec: l.LatencySec}
	}
	if name := topo.GPUName(stage); name != "" {
		if g, ok := costmodel.GPUByName(name); ok {
			ws.GPU = g
		}
	}
	ws.ComputeFactor = topo.ComputeFactor(stage)
	return ws
}

// NewPlacedCosts builds the placement-resolved cost book for a fixed-shape
// workload on a resolved topology: the embedded book stays the flat
// cluster-global one (partition heuristics like AdaPipe's DP keep reasoning
// about the aggregate), while PerStage[s] prices stage s against its placed
// node. A nil topology degenerates to NewCosts.
func NewPlacedCosts(w costmodel.Workload, topo *cluster.Topology) Costs {
	c := NewCosts(w)
	if topo == nil {
		return c
	}
	c.PerStage = make([]StageBook, topo.Stages())
	for s := range c.PerStage {
		c.PerStage[s] = StageBook{MBCosts: memoMBCosts(placedWorkload(w, topo, s))}
	}
	return c
}

// NewPlacedBatchCosts builds the placement-resolved cost book for a
// variable-length workload: stage s's book prices micro batch i at
// spec.Shapes[i] under stage s's placed node. A nil topology degenerates to
// NewBatchCosts.
func NewPlacedBatchCosts(w costmodel.Workload, spec model.BatchSpec, topo *cluster.Topology) Costs {
	c := NewBatchCosts(w, spec)
	if topo == nil {
		return c
	}
	_, uniform := spec.Uniform()
	c.PerStage = make([]StageBook, topo.Stages())
	for s := range c.PerStage {
		ws := placedWorkload(w, topo, s)
		wMax := ws
		wMax.Shape = spec.MaxShape()
		book := StageBook{MBCosts: memoMBCosts(wMax)}
		if !uniform {
			book.PerMB = make([]MBCosts, len(spec.Shapes))
			for i, sh := range spec.Shapes {
				wi := ws
				wi.Shape = sh
				book.PerMB[i] = memoMBCosts(wi)
			}
		}
		c.PerStage[s] = book
	}
	return c
}
