package sched

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/model"
)

func testCfg(p, m, layers int) Config { return Config{Stages: p, MicroBatches: m, Layers: layers} }

func realCosts(t *testing.T) Costs {
	t.Helper()
	w := costmodel.NewWorkload(model.Model7B(), costmodel.H20Cluster(), model.Shape{B: 1, S: 32768})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewCosts(w)
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg(4, 8, 16).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Stages: 0, MicroBatches: 1, Layers: 4},
		{Stages: 2, MicroBatches: 0, Layers: 4},
		{Stages: 2, MicroBatches: 2, Layers: 0},
		{Stages: 3, MicroBatches: 2, Layers: 4}, // indivisible
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

// TestGeneratorsProduceValidPlans is the core schedule test: every generator
// under several pipeline shapes must produce a plan that passes the token
// dataflow machine, exact op counting, and stash conservation.
func TestGeneratorsProduceValidPlans(t *testing.T) {
	costs := realCosts(t)
	shapes := []struct{ p, m, layers int }{
		{2, 4, 8},
		{4, 8, 16},
		{8, 16, 32},
		{4, 4, 8},  // m == p
		{2, 8, 2},  // single layer per stage
		{4, 12, 8}, // m not a multiple of 2p
	}
	type gen struct {
		name  string
		build func(Config) (*Plan, error)
	}
	gens := []gen{
		{"GPipe", func(c Config) (*Plan, error) { return GPipe(c, costs) }},
		{"1F1B", func(c Config) (*Plan, error) { return OneFOneB(c, costs) }},
		{"ZB1P", func(c Config) (*Plan, error) { return ZB1P(c, costs) }},
		{"AdaPipe-loose", func(c Config) (*Plan, error) { return AdaPipe(c, costs, 0) }},
		{"AdaPipe-tight", func(c Config) (*Plan, error) {
			full := costs.SegStash[0] + costs.SegStash[1] + costs.SegStash[2]
			budget := int64(c.Stages) * int64(c.Layers/c.Stages) * full / 2
			return AdaPipe(c, costs, budget)
		}},
		{"Interleaved", func(c Config) (*Plan, error) { return Interleaved(c, costs, 2) }},
	}
	for _, g := range gens {
		for _, sh := range shapes {
			cfg := testCfg(sh.p, sh.m, sh.layers)
			if g.name == "Interleaved" && cfg.Layers%(cfg.Stages*2) != 0 {
				continue
			}
			plan, err := g.build(cfg)
			if err != nil {
				t.Errorf("%s %+v: %v", g.name, sh, err)
				continue
			}
			if err := Validate(plan); err != nil {
				t.Errorf("%s %+v: %v", g.name, sh, err)
			}
		}
	}
}

// TestComputeTotalsAgree verifies that schedules performing identical work
// report identical total compute seconds: GPipe == 1F1B == ZB1P (reordering
// changes nothing), while AdaPipe with recomputation is strictly larger.
func TestComputeTotalsAgree(t *testing.T) {
	costs := realCosts(t)
	cfg := testCfg(4, 8, 16)
	gp, err := GPipe(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := OneFOneB(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	zb, err := ZB1P(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	if d := gp.ComputeSeconds() - ob.ComputeSeconds(); d > 1e-9 || d < -1e-9 {
		t.Errorf("GPipe and 1F1B compute totals differ by %g", d)
	}
	if d := zb.ComputeSeconds() - ob.ComputeSeconds(); d > 1e-9 || d < -1e-9 {
		t.Errorf("ZB1P and 1F1B compute totals differ by %g", d)
	}
	full := costs.SegStash[0] + costs.SegStash[1] + costs.SegStash[2]
	tight := int64(cfg.Stages) * int64(cfg.Layers/cfg.Stages) * full / 2
	ap, err := AdaPipe(cfg, costs, tight)
	if err != nil {
		t.Fatal(err)
	}
	if ap.ComputeSeconds() <= ob.ComputeSeconds() {
		t.Error("AdaPipe under memory pressure must pay recomputation time")
	}
}

// Test1F1BSteadyState verifies the canonical 1F1B structure: after warmup,
// the last stage strictly alternates forward and backward micro batches.
func Test1F1BSteadyState(t *testing.T) {
	costs := realCosts(t)
	cfg := testCfg(4, 8, 8)
	plan, err := OneFOneB(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	last := plan.Ops[cfg.Stages-1]
	var steps []string
	for _, op := range last {
		switch {
		case op.Kind == KRecv && !op.Tag.Back:
			steps = append(steps, "F") // one forward step begins per input recv
		case op.Kind == KBackwardB && op.Layer == LayerHead:
			steps = append(steps, "B")
		}
	}
	// Stage p-1 has no warmup: F B F B ... F B.
	for i, s := range steps {
		want := "F"
		if i%2 == 1 {
			want = "B"
		}
		if s != want {
			t.Fatalf("last stage step %d = %s, want %s (steps %v)", i, s, want, steps)
		}
	}
	if len(steps) != 2*cfg.MicroBatches {
		t.Fatalf("last stage has %d F/B steps, want %d", len(steps), 2*cfg.MicroBatches)
	}
}

// TestGPipeIsFILO verifies GPipe's first-in-last-out backward order.
func TestGPipeIsFILO(t *testing.T) {
	costs := realCosts(t)
	cfg := testCfg(2, 4, 4)
	plan, err := GPipe(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	for s, ops := range plan.Ops {
		lastF, firstB := -1, len(ops)
		var fOrder, bOrder []int
		for i, op := range ops {
			if op.Layer < 0 {
				continue
			}
			if op.Kind == KForward {
				if i > lastF {
					lastF = i
				}
				if op.Seg == model.SegPre && op.Layer == plan.Ops[s][1].Layer {
					fOrder = append(fOrder, op.MB)
				}
			}
			if op.Kind == KBackwardB {
				if i < firstB {
					firstB = i
				}
				if op.Seg == model.SegPre {
					bOrder = append(bOrder, op.MB)
				}
			}
		}
		if lastF > firstB {
			t.Errorf("stage %d: forward op at %d after backward op at %d", s, lastF, firstB)
		}
		for i := 1; i < len(bOrder); i++ {
			if bOrder[i] > bOrder[i-1] {
				t.Errorf("stage %d: backward micro batches not in FILO order: %v", s, bOrder)
				break
			}
		}
		_ = fOrder
	}
}

// TestZB1PDefersW verifies the defining ZB1P property: on the first stage,
// at least one weight-gradient op executes after the last backward-B
// (filling the drain bubble), and backward-B ops never wait for W of the
// same micro batch (B and W are decoupled).
func TestZB1PDefersW(t *testing.T) {
	costs := realCosts(t)
	cfg := testCfg(4, 8, 16)
	plan, err := ZB1P(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	ops := plan.Ops[0]
	lastB, lastW := -1, -1
	for i, op := range ops {
		if op.Kind == KBackwardB && op.Layer >= 0 {
			lastB = i
		}
		if op.Kind == KBackwardW {
			lastW = i
		}
	}
	if lastW < lastB {
		t.Error("ZB1P stage 0 should finish with deferred weight gradients after the last backward-B")
	}
	// Count W ops strictly after the last B: the drain bubble filler.
	deferred := 0
	for i := lastB + 1; i < len(ops); i++ {
		if ops[i].Kind == KBackwardW {
			deferred++
		}
	}
	if deferred == 0 {
		t.Error("ZB1P deferred no weight gradients into the drain phase")
	}
}

// TestZB1PHoldsEmbedGradStash verifies the section 5.4 observation: the last
// stage accumulates fp32 embedding-gradient stashes across micro batches
// because the head backward-W is deferred. The running stash balance at the
// last stage must exceed what 1F1B (immediate W) ever holds.
func TestZB1PHoldsEmbedGradStash(t *testing.T) {
	costs := realCosts(t)
	cfg := testCfg(4, 8, 16)
	peakOf := func(p *Plan, stage int) int64 {
		var bal, peak int64
		for _, op := range p.Ops[stage] {
			bal += op.Alloc - op.Free
			if bal > peak {
				peak = bal
			}
		}
		return peak
	}
	zb, err := ZB1P(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := OneFOneB(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	last := cfg.Stages - 1
	if peakOf(zb, last) <= peakOf(ob, last) {
		t.Errorf("ZB1P last-stage stash peak (%d) should exceed 1F1B (%d)",
			peakOf(zb, last), peakOf(ob, last))
	}
}

// TestAdaPipeAdaptsToBudget verifies the two AdaPipe behaviours: with a
// loose budget it reduces to an even, recompute-free 1F1B; with a tight
// budget it recomputes on the early (memory-pressured) stages.
func TestAdaPipeAdaptsToBudget(t *testing.T) {
	costs := realCosts(t)
	cfg := testCfg(4, 8, 16)
	loose, err := AdaPipe(cfg, costs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ops := range loose.Ops {
		for _, op := range ops {
			if op.Kind == KRecompute {
				t.Fatal("AdaPipe with unlimited memory should not recompute")
			}
		}
	}
	full := costs.SegStash[0] + costs.SegStash[1] + costs.SegStash[2]
	// Budget fits stage 0's 1F1B residency only if half the layers recompute.
	budget := int64(cfg.Stages) * int64(cfg.Layers/cfg.Stages) * full / 2
	tight, err := AdaPipe(cfg, costs, budget)
	if err != nil {
		t.Fatal(err)
	}
	recomputes := 0
	for _, op := range tight.Ops[0] {
		if op.Kind == KRecompute {
			recomputes++
		}
	}
	if recomputes == 0 {
		t.Error("AdaPipe under memory pressure should recompute on stage 0")
	}
	if err := Validate(tight); err != nil {
		t.Fatal(err)
	}
}

// TestAdaPipeInfeasible verifies the error path when no partition fits.
func TestAdaPipeInfeasible(t *testing.T) {
	costs := realCosts(t)
	if _, err := AdaPipe(testCfg(4, 8, 16), costs, 1); err == nil {
		t.Error("1-byte budget must be infeasible")
	}
}

// TestBuildDispatch exercises the registry-driven method dispatcher.
func TestBuildDispatch(t *testing.T) {
	costs := realCosts(t)
	cfg := testCfg(4, 8, 16)
	for _, m := range []Method{MethodGPipe, Method1F1B, MethodZB1P, MethodAdaPipe, MethodInterleaved} {
		plan, err := Build(m, cfg, costs, BuildParams{})
		if err != nil {
			t.Errorf("Build(%s): %v", m, err)
			continue
		}
		if plan.Method != m {
			t.Errorf("Build(%s) produced method %s", m, plan.Method)
		}
	}
	// Helix methods are registered by internal/core, which this package
	// does not (and must not) import: unlinked methods are unknown here.
	if _, err := Build(MethodHelix, cfg, costs, BuildParams{}); err == nil {
		t.Error("helix methods must not be buildable without internal/core linked")
	}
	// Lookup is case-insensitive.
	if _, ok := Lookup("zb1p"); !ok {
		t.Error("Lookup must resolve method names case-insensitively")
	}
	if _, ok := Lookup("no-such-method"); ok {
		t.Error("Lookup must reject unknown names")
	}
}

// TestUnitCosts checks the didactic 1:3:2 cost book used by the figure
// experiments.
func TestUnitCosts(t *testing.T) {
	c := UnitCosts(0)
	if c.Seg[model.SegPre][model.Forward] != 1 ||
		c.Seg[model.SegAttn][model.Forward] != 3 ||
		c.Seg[model.SegPost][model.Forward] != 2 {
		t.Error("UnitCosts must encode the paper's 1:3:2 ratio")
	}
	for _, seg := range model.Segments {
		f := c.Seg[seg][model.Forward]
		bw := c.Seg[seg][model.BackwardB] + c.Seg[seg][model.BackwardW]
		if diff := bw - f; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("segment %v: backward time %g != forward %g (figures draw them equal)", seg, bw, f)
		}
	}
	if c.SegStashBFree[model.SegAttn] != c.SegStash[model.SegAttn] {
		t.Error("attention stash must be fully released by backward-B")
	}
}

// TestValidatorCatchesCorruption corrupts a valid plan in several ways and
// expects the validator to object to each.
func TestValidatorCatchesCorruption(t *testing.T) {
	costs := realCosts(t)
	cfg := testCfg(2, 4, 4)
	fresh := func() *Plan {
		p, err := OneFOneB(cfg, costs)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := fresh()
	if err := Validate(base); err != nil {
		t.Fatal(err)
	}

	// Drop a compute op: count violation.
	p := fresh()
	for i, op := range p.Ops[0] {
		if op.Kind == KBackwardB && op.Layer >= 0 {
			p.Ops[0] = append(p.Ops[0][:i], p.Ops[0][i+1:]...)
			break
		}
	}
	if err := Validate(p); err == nil {
		t.Error("validator missed a dropped backward op")
	}

	// Swap a recv before... rather: remove a send: deadlock.
	p = fresh()
	for i, op := range p.Ops[0] {
		if op.Kind == KSend {
			p.Ops[0] = append(p.Ops[0][:i], p.Ops[0][i+1:]...)
			break
		}
	}
	if err := Validate(p); err == nil {
		t.Error("validator missed a dropped send")
	}

	// Reorder forward before its input recv on stage 1: missing token.
	p = fresh()
	ops := p.Ops[1]
	if ops[0].Kind == KRecv && ops[1].Kind == KForward {
		ops[0], ops[1] = ops[1], ops[0]
	}
	if err := Validate(p); err == nil {
		t.Error("validator missed compute before its input recv")
	}

	// Leak stash bytes.
	p = fresh()
	for i := range p.Ops[0] {
		if p.Ops[0][i].Kind == KForward && p.Ops[0][i].Alloc > 0 {
			p.Ops[0][i].Alloc += 1024
			break
		}
	}
	if err := Validate(p); err == nil {
		t.Error("validator missed a stash leak")
	}
}

// TestPlanAccessors covers the small accessor helpers.
func TestPlanAccessors(t *testing.T) {
	costs := realCosts(t)
	plan, err := OneFOneB(testCfg(2, 2, 4), costs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumOps() <= 0 {
		t.Error("NumOps must be positive")
	}
	sum := plan.StageComputeSeconds(0) + plan.StageComputeSeconds(1)
	if d := sum - plan.ComputeSeconds(); d > 1e-12 || d < -1e-12 {
		t.Error("stage compute seconds must sum to plan total")
	}
	if BoundAct.String() == "" || KForward.String() == "" || KSend.String() == "" {
		t.Error("stringers must not be empty")
	}
	if len(Methods()) < 6 {
		t.Error("Methods() should list all implemented schedules")
	}
}
