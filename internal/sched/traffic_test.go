package sched

import (
	"strings"
	"testing"
)

func TestTrafficMatrix(t *testing.T) {
	cfg := Config{Stages: 4, MicroBatches: 8, Layers: 8}
	plan, err := OneFOneB(cfg, UnitCosts(0.01))
	if err != nil {
		t.Fatal(err)
	}
	m := plan.TrafficMatrix()
	if len(m) != 4 {
		t.Fatalf("matrix has %d rows", len(m))
	}
	// The matrix must account for exactly the plan's send volumes.
	var fromOps, fromMatrix int64
	for s, ops := range plan.Ops {
		for _, op := range ops {
			if op.Kind == KSend {
				fromOps += op.Bytes
				if op.Peer != s+1 && op.Peer != s-1 {
					t.Errorf("1F1B sends beyond neighbours: stage %d -> %d", s, op.Peer)
				}
			}
		}
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("self traffic at stage %d", i)
		}
		for j := range m[i] {
			fromMatrix += m[i][j]
		}
	}
	if fromOps == 0 || fromMatrix != fromOps {
		t.Errorf("matrix total %d, ops total %d", fromMatrix, fromOps)
	}
}

func TestValidateRejectsBadPlacement(t *testing.T) {
	cfg := Config{Stages: 2, MicroBatches: 4, Layers: 4}
	plan, err := OneFOneB(cfg, UnitCosts(0))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		placement []int
		wantErr   string
	}{
		{"count-mismatch", []int{0, 1, 2}, "placement maps 3 devices for 2 stages"},
		{"shared-device", []int{3, 3}, "share device"},
		{"negative-device", []int{-1, 0}, "negative device"},
	}
	for _, tc := range cases {
		p := *plan
		p.Placement = tc.placement
		err := Validate(&p)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Validate = %v, want %q", tc.name, err, tc.wantErr)
		}
	}
	// A well-formed placement (any distinct device ids) passes.
	p := *plan
	p.Placement = []int{5, 2}
	if err := Validate(&p); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
}

func TestMeanMBMatchesMB(t *testing.T) {
	// The consolidated uniform fallback: without overrides both MB and
	// MeanMB return the embedded book.
	uniform := UnitCosts(0.01)
	if uniform.MB(3) != uniform.MBCosts || uniform.MeanMB(4) != uniform.MBCosts {
		t.Error("uniform fallback broken")
	}
	// With overrides, MeanMB of identical books equals any one of them up to
	// integer division.
	c := UnitBatchCosts(0.01, []float64{2, 2, 2})
	mean := c.MeanMB(3)
	if mean.Seg != c.MB(0).Seg || mean.BoundBytes != c.MB(0).BoundBytes {
		t.Errorf("MeanMB of identical books differs: %+v vs %+v", mean, c.MB(0))
	}
	// Out-of-range lookups keep the conservative uniform book.
	if c.MB(99) != c.MBCosts || c.MB(-1) != c.MBCosts {
		t.Error("out-of-range MB lookup not uniform")
	}
}
