package sched

import (
	"math"

	"repro/internal/costmodel"
	"repro/internal/model"
)

// MBCosts is the cost book of one micro batch: compute durations, stash byte
// deltas, and communication volumes, all derived from that micro batch's own
// (b, s) shape. All durations are seconds, all sizes node- or GPU-local bytes
// as noted.
type MBCosts struct {
	// Seg holds the per-segment compute durations indexed [segment][pass].
	Seg [3][3]float64
	// SegRecompute is the duration of re-running a segment forward.
	SegRecompute [3]float64
	// EmbedF and EmbedW are the input-embedding forward and weight-gradient
	// durations; the embedding has no backward-B (nothing below it).
	EmbedF, EmbedW float64
	// HeadFB is the fused LM-head forward + loss + backward-B duration: the
	// paper's section 4.6 defers the head forward into the backward pass, so
	// plans execute it as one backward-time unit.
	HeadFB float64
	// HeadW is the LM-head weight-gradient duration.
	HeadW float64

	// SegStash is the full per-GPU activation stash of each segment.
	SegStash [3]int64
	// SegStashBFree and SegStashWFree split SegStash into the portions
	// released by backward-B (non-parameterized components) and backward-W
	// (parameterized components). They sum to SegStash per segment.
	SegStashBFree, SegStashWFree [3]int64
	// HelixSegStash is the reduced per-GPU stash under recomputation
	// without attention (2bsh for attention, 1bsh for pre and post).
	HelixSegStash [3]int64
	// InputStash is the per-GPU size of one boundary activation, the only
	// stash a fully recomputed layer keeps.
	InputStash int64
	// EmbedGradStash is the per-GPU fp32 stash ZB1P holds at the last stage
	// between the head's backward-B and its deferred backward-W.
	EmbedGradStash int64

	// BoundBytes holds the node-aggregate message volume per boundary kind,
	// indexed by Boundary.
	BoundBytes [3]int64
}

// Costs is the cost book a generator annotates a plan with. The embedded
// MBCosts is the uniform cost book every micro batch shares on fixed-length
// workloads; PerMB overrides it per micro batch on variable-length workloads,
// where each micro batch's durations, stashes and message volumes follow its
// own shape.
type Costs struct {
	MBCosts
	// PerMB holds per-micro-batch cost books for variable-length workloads;
	// index is the micro batch. Empty means every micro batch uses the
	// embedded uniform book.
	PerMB []MBCosts
	// PerStage holds placement-resolved per-stage books: PerStage[s] prices
	// stage s against its placed node (intra-node link class, device
	// generation, perturbation factor). Empty means every stage shares the
	// flat cluster-global books — the pre-placement behavior. When present,
	// the simulator must not stretch compute by topology factors again; the
	// books already carry them.
	PerStage []StageBook
	// P2PLatency and P2PBytesPerSec parameterize inter-stage links (shared by
	// all micro batches; the hardware does not change per message).
	P2PLatency     float64
	P2PBytesPerSec float64
}

// MB returns the cost book of one micro batch: the per-micro-batch override
// when present, the uniform book otherwise. The uniform fallback is shared
// with MeanMB: both answer "no overrides, or an out-of-range request" with
// the embedded book.
func (c Costs) MB(mb int) MBCosts {
	if book, ok := c.override(mb); ok {
		return book
	}
	return c.MBCosts
}

// StageMB returns the cost book of one micro batch as priced on one placed
// stage: the stage's placement-resolved book when the costs carry them, the
// cluster-global book otherwise. Generators price every duration through
// this so per-stage compute, collective and perturbation differences reach
// the plan's ops. Byte fields (stashes, message volumes) are shape-derived
// and identical across stages, so stage-agnostic callers may keep using MB.
func (c Costs) StageMB(stage, mb int) MBCosts {
	if stage >= 0 && stage < len(c.PerStage) {
		return c.PerStage[stage].mb(mb)
	}
	return c.MB(mb)
}

// override returns the per-micro-batch book for an index covered by PerMB.
func (c Costs) override(mb int) (MBCosts, bool) {
	if mb < 0 || mb >= len(c.PerMB) {
		return MBCosts{}, false
	}
	return c.PerMB[mb], true
}

// Variable reports whether the cost book carries per-micro-batch overrides.
func (c Costs) Variable() bool { return len(c.PerMB) > 0 }

// newMBCosts fills one micro batch's cost book from a cost-model workload.
func newMBCosts(w costmodel.Workload) MBCosts {
	var c MBCosts
	for _, seg := range model.Segments {
		i := int(seg)
		c.Seg[i][model.Forward] = w.SegmentTime(seg, model.Forward)
		c.Seg[i][model.BackwardB] = w.SegmentTime(seg, model.BackwardB)
		c.Seg[i][model.BackwardW] = w.SegmentTime(seg, model.BackwardW)
		c.SegRecompute[i] = w.SegmentTime(seg, model.Forward)
		c.SegStash[i] = w.SegmentStashBytes(seg)
		sp := seqParOf(w)
		c.SegStashBFree[i] = w.Model.SegmentStashFreedBy(seg, model.BackwardB, w.Shape) * model.FP16Bytes / sp
		c.SegStashWFree[i] = w.Model.SegmentStashFreedBy(seg, model.BackwardW, w.Shape) * model.FP16Bytes / sp
		c.HelixSegStash[i] = w.HelixSegmentStashBytes(seg)
	}
	c.EmbedF = w.EmbeddingTime(model.Forward)
	c.EmbedW = w.EmbeddingTime(model.BackwardW)
	c.HeadFB = w.HeadTime(model.Forward) + w.HeadTime(model.BackwardB)
	c.HeadW = w.HeadTime(model.BackwardW)
	c.InputStash = w.InputStashBytes()
	c.EmbedGradStash = w.EmbeddingGradStashBytes()
	c.BoundBytes[BoundAct] = w.ActivationP2PBytes()
	c.BoundBytes[BoundPreAttn] = w.HelixPreAttnBytes()
	c.BoundBytes[BoundAttnPost] = w.HelixAttnPostBytes()
	return c
}

// NewCosts builds the cost book for a fixed-shape workload: every micro batch
// shares the workload's single (b, s) shape. Books are memoized by workload,
// so identical cells across a sweep or fleet stream share one book.
func NewCosts(w costmodel.Workload) Costs {
	return Costs{
		MBCosts:        memoMBCosts(w),
		P2PLatency:     w.Cluster.InterNodeLatency,
		P2PBytesPerSec: w.Cluster.InterNodeGBps * 1e9,
	}
}

// NewBatchCosts builds the cost book for a variable-length workload: micro
// batch i is costed at spec.Shapes[i], so every generator emits durations,
// stash deltas and message volumes that follow each micro batch's own shape.
// The uniform fallback book is costed at the per-axis maximum shape, keeping
// out-of-range lookups conservative. Per-shape books are memoized, so a batch
// that repeats a few distinct lengths prices each length once.
func NewBatchCosts(w costmodel.Workload, spec model.BatchSpec) Costs {
	wMax := w
	wMax.Shape = spec.MaxShape()
	c := Costs{
		MBCosts:        memoMBCosts(wMax),
		P2PLatency:     w.Cluster.InterNodeLatency,
		P2PBytesPerSec: w.Cluster.InterNodeGBps * 1e9,
	}
	if _, uniform := spec.Uniform(); uniform {
		// One shape: the embedded book already covers every micro batch.
		return c
	}
	c.PerMB = make([]MBCosts, len(spec.Shapes))
	for i, sh := range spec.Shapes {
		wi := w
		wi.Shape = sh
		c.PerMB[i] = memoMBCosts(wi)
	}
	return c
}

func seqParOf(w costmodel.Workload) int64 {
	if w.SeqPar <= 0 {
		return int64(w.Cluster.GPUsPerNode)
	}
	return int64(w.SeqPar)
}

// SegDur returns the compute duration of a segment op of the given kind.
func (c MBCosts) SegDur(seg model.Segment, kind OpKind) float64 {
	switch kind {
	case KForward:
		return c.Seg[seg][model.Forward]
	case KBackwardB:
		return c.Seg[seg][model.BackwardB]
	case KBackwardW:
		return c.Seg[seg][model.BackwardW]
	case KRecompute:
		return c.SegRecompute[seg]
	default:
		return 0
	}
}

// LayerDur returns the whole-layer duration for a compute kind.
func (c MBCosts) LayerDur(kind OpKind) float64 {
	var d float64
	for _, seg := range model.Segments {
		d += c.SegDur(seg, kind)
	}
	return d
}

// P2PTime returns the wall time of one inter-stage transfer of the given
// node-aggregate volume.
func (c Costs) P2PTime(bytes int64) float64 {
	if c.P2PBytesPerSec <= 0 {
		return c.P2PLatency
	}
	return c.P2PLatency + float64(bytes)/c.P2PBytesPerSec
}

// MeanMB returns the cost book averaged over the plan's m micro batches —
// the aggregate book partition heuristics (AdaPipe's DP) reason with when
// per-micro-batch shapes differ. With no per-micro-batch overrides it is the
// uniform book itself (the same fallback MB takes).
func (c Costs) MeanMB(m int) MBCosts {
	if len(c.PerMB) == 0 || m <= 0 {
		return c.MBCosts
	}
	var out MBCosts
	for mb := 0; mb < m; mb++ {
		out.add(c.MB(mb))
	}
	out.divide(m)
	return out
}

// add accumulates another book field by field.
func (c *MBCosts) add(b MBCosts) {
	for i := 0; i < 3; i++ {
		for p := 0; p < 3; p++ {
			c.Seg[i][p] += b.Seg[i][p]
		}
		c.SegRecompute[i] += b.SegRecompute[i]
		c.SegStash[i] += b.SegStash[i]
		c.SegStashBFree[i] += b.SegStashBFree[i]
		c.SegStashWFree[i] += b.SegStashWFree[i]
		c.HelixSegStash[i] += b.HelixSegStash[i]
		c.BoundBytes[i] += b.BoundBytes[i]
	}
	c.EmbedF += b.EmbedF
	c.EmbedW += b.EmbedW
	c.HeadFB += b.HeadFB
	c.HeadW += b.HeadW
	c.InputStash += b.InputStash
	c.EmbedGradStash += b.EmbedGradStash
}

// divide scales every field down by m (durations in floating point, byte
// fields by integer division).
func (c *MBCosts) divide(m int) {
	div, fdiv := int64(m), float64(m)
	for i := 0; i < 3; i++ {
		for p := 0; p < 3; p++ {
			c.Seg[i][p] /= fdiv
		}
		c.SegRecompute[i] /= fdiv
		c.SegStash[i] /= div
		c.SegStashBFree[i] /= div
		c.SegStashWFree[i] /= div
		c.HelixSegStash[i] /= div
		c.BoundBytes[i] /= div
	}
	c.EmbedF /= fdiv
	c.EmbedW /= fdiv
	c.HeadFB /= fdiv
	c.HeadW /= fdiv
	c.InputStash /= div
	c.EmbedGradStash /= div
}

// ZeroCommCosts returns a copy of the cost book with free communication
// (zero latency and infinite bandwidth is approximated by pricing every
// transfer at the latency floor of zero). Used by experiments isolating
// pure schedule shape, like the Table 2 bubble validation.
func (c Costs) ZeroCommCosts() Costs {
	out := c
	out.P2PLatency = 0
	out.P2PBytesPerSec = 0
	for i := range out.BoundBytes {
		out.BoundBytes[i] = 0
	}
	if len(c.PerMB) > 0 {
		out.PerMB = append([]MBCosts(nil), c.PerMB...)
		for mb := range out.PerMB {
			for i := range out.PerMB[mb].BoundBytes {
				out.PerMB[mb].BoundBytes[i] = 0
			}
		}
	}
	if len(c.PerStage) > 0 {
		out.PerStage = make([]StageBook, len(c.PerStage))
		for s, book := range c.PerStage {
			book.PerMB = append([]MBCosts(nil), book.PerMB...)
			for i := range book.BoundBytes {
				book.BoundBytes[i] = 0
			}
			for mb := range book.PerMB {
				for i := range book.PerMB[mb].BoundBytes {
					book.PerMB[mb].BoundBytes[i] = 0
				}
			}
			out.PerStage[s] = book
		}
	}
	return out
}

// unitMBCosts builds the didactic per-segment book with every duration,
// stash and message volume multiplied by scale. Byte fields round to the
// nearest integer, and composite stashes derive from their rounded parts so
// the alloc/free conservation the validator enforces survives fractional
// scales.
func unitMBCosts(scale float64, commTime float64) MBCosts {
	var c MBCosts
	bytes := func(base float64) int64 { return int64(math.Round(base * scale)) }
	ratio := [3]float64{1, 3, 2}
	for i := 0; i < 3; i++ {
		c.Seg[i][model.Forward] = ratio[i] * scale
		// The figures draw backward time equal to forward "for brevity";
		// splitting it as B=2/3 and W=1/3 of the segment keeps F+B+W = 2F
		// per segment while exercising the B/W decoupling. Attention has no
		// W, so its backward-B carries the full backward time.
		if model.Segment(i) == model.SegAttn {
			c.Seg[i][model.BackwardB] = ratio[i] * scale
			c.Seg[i][model.BackwardW] = 0
		} else {
			c.Seg[i][model.BackwardB] = ratio[i] * scale * 2 / 3
			c.Seg[i][model.BackwardW] = ratio[i] * scale / 3
		}
		c.SegRecompute[i] = ratio[i] * scale
		c.SegStashBFree[i] = bytes(8)
		c.SegStashWFree[i] = bytes(8)
		c.SegStash[i] = c.SegStashBFree[i] + c.SegStashWFree[i]
		c.HelixSegStash[i] = bytes(4)
	}
	// Attention stash is entirely released by backward-B (no parameters).
	c.SegStashBFree[model.SegAttn] = c.SegStash[model.SegAttn]
	c.SegStashWFree[model.SegAttn] = 0
	c.InputStash = bytes(2)
	c.EmbedGradStash = bytes(8)
	c.BoundBytes = [3]int64{bytes(1), bytes(2), bytes(2)}
	if commTime > 0 {
		c.BoundBytes = [3]int64{bytes(1), bytes(1), bytes(1)}
	}
	return c
}

// UnitCosts returns a synthetic cost book with the paper's didactic
// execution-time ratio t_pre : t_attn : t_post = 1 : 3 : 2 (Figures 2, 5, 6,
// 7), backward-B = forward and backward-W = forward per segment, unit
// stashes, and the given per-message communication time. Used by the
// figure-reproduction experiments and schedule unit tests.
func UnitCosts(commTime float64) Costs {
	c := Costs{MBCosts: unitMBCosts(1, commTime)}
	if commTime > 0 {
		c.P2PLatency = 0
		c.P2PBytesPerSec = 1 / commTime // 1 byte message units
	}
	return c
}

// UnitBatchCosts returns the didactic cost book with per-micro-batch scale
// factors: micro batch i's durations, stashes and message volumes are the
// unit book times scales[i]. It drives variable-length schedule unit tests
// without a cost model.
func UnitBatchCosts(commTime float64, scales []float64) Costs {
	c := UnitCosts(commTime)
	if len(scales) == 0 {
		return c
	}
	maxScale := scales[0]
	for _, s := range scales[1:] {
		if s > maxScale {
			maxScale = s
		}
	}
	c.MBCosts = unitMBCosts(maxScale, commTime)
	c.PerMB = make([]MBCosts, len(scales))
	for i, s := range scales {
		c.PerMB[i] = unitMBCosts(s, commTime)
	}
	return c
}
