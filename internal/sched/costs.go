package sched

import (
	"repro/internal/costmodel"
	"repro/internal/model"
)

// Costs is the cost book a generator annotates a plan with: compute
// durations, stash byte deltas, and communication volumes/link parameters.
// All durations are seconds, all sizes node- or GPU-local bytes as noted.
type Costs struct {
	// Seg holds the per-segment compute durations indexed [segment][pass].
	Seg [3][3]float64
	// SegRecompute is the duration of re-running a segment forward.
	SegRecompute [3]float64
	// EmbedF and EmbedW are the input-embedding forward and weight-gradient
	// durations; the embedding has no backward-B (nothing below it).
	EmbedF, EmbedW float64
	// HeadFB is the fused LM-head forward + loss + backward-B duration: the
	// paper's section 4.6 defers the head forward into the backward pass,
	// so plans execute it as one backward-time unit.
	HeadFB float64
	// HeadW is the LM-head weight-gradient duration.
	HeadW float64

	// SegStash is the full per-GPU activation stash of each segment.
	SegStash [3]int64
	// SegStashBFree and SegStashWFree split SegStash into the portions
	// released by backward-B (non-parameterized components) and backward-W
	// (parameterized components). They sum to SegStash per segment.
	SegStashBFree, SegStashWFree [3]int64
	// HelixSegStash is the reduced per-GPU stash under recomputation
	// without attention (2bsh for attention, 1bsh for pre and post).
	HelixSegStash [3]int64
	// InputStash is the per-GPU size of one boundary activation, the only
	// stash a fully recomputed layer keeps.
	InputStash int64
	// EmbedGradStash is the per-GPU fp32 stash ZB1P holds at the last stage
	// between the head's backward-B and its deferred backward-W.
	EmbedGradStash int64

	// BoundBytes holds the node-aggregate message volume per boundary kind,
	// indexed by Boundary.
	BoundBytes [3]int64
	// P2PLatency and P2PBytesPerSec parameterize inter-stage links.
	P2PLatency     float64
	P2PBytesPerSec float64
}

// NewCosts builds the cost book for a workload.
func NewCosts(w costmodel.Workload) Costs {
	var c Costs
	for _, seg := range model.Segments {
		i := int(seg)
		c.Seg[i][model.Forward] = w.SegmentTime(seg, model.Forward)
		c.Seg[i][model.BackwardB] = w.SegmentTime(seg, model.BackwardB)
		c.Seg[i][model.BackwardW] = w.SegmentTime(seg, model.BackwardW)
		c.SegRecompute[i] = w.SegmentTime(seg, model.Forward)
		c.SegStash[i] = w.SegmentStashBytes(seg)
		sp := seqParOf(w)
		c.SegStashBFree[i] = w.Model.SegmentStashFreedBy(seg, model.BackwardB, w.Shape) * model.FP16Bytes / sp
		c.SegStashWFree[i] = w.Model.SegmentStashFreedBy(seg, model.BackwardW, w.Shape) * model.FP16Bytes / sp
		c.HelixSegStash[i] = w.HelixSegmentStashBytes(seg)
	}
	c.EmbedF = w.EmbeddingTime(model.Forward)
	c.EmbedW = w.EmbeddingTime(model.BackwardW)
	c.HeadFB = w.HeadTime(model.Forward) + w.HeadTime(model.BackwardB)
	c.HeadW = w.HeadTime(model.BackwardW)
	c.InputStash = w.InputStashBytes()
	c.EmbedGradStash = w.EmbeddingGradStashBytes()
	c.BoundBytes[BoundAct] = w.ActivationP2PBytes()
	c.BoundBytes[BoundPreAttn] = w.HelixPreAttnBytes()
	c.BoundBytes[BoundAttnPost] = w.HelixAttnPostBytes()
	c.P2PLatency = w.Cluster.InterNodeLatency
	c.P2PBytesPerSec = w.Cluster.InterNodeGBps * 1e9
	return c
}

func seqParOf(w costmodel.Workload) int64 {
	if w.SeqPar <= 0 {
		return int64(w.Cluster.GPUsPerNode)
	}
	return int64(w.SeqPar)
}

// SegDur returns the compute duration of a segment op of the given kind.
func (c Costs) SegDur(seg model.Segment, kind OpKind) float64 {
	switch kind {
	case KForward:
		return c.Seg[seg][model.Forward]
	case KBackwardB:
		return c.Seg[seg][model.BackwardB]
	case KBackwardW:
		return c.Seg[seg][model.BackwardW]
	case KRecompute:
		return c.SegRecompute[seg]
	default:
		return 0
	}
}

// LayerDur returns the whole-layer duration for a compute kind.
func (c Costs) LayerDur(kind OpKind) float64 {
	var d float64
	for _, seg := range model.Segments {
		d += c.SegDur(seg, kind)
	}
	return d
}

// P2PTime returns the wall time of one inter-stage transfer of the given
// node-aggregate volume.
func (c Costs) P2PTime(bytes int64) float64 {
	if c.P2PBytesPerSec <= 0 {
		return c.P2PLatency
	}
	return c.P2PLatency + float64(bytes)/c.P2PBytesPerSec
}

// ZeroCommCosts returns a copy of the cost book with free communication
// (zero latency and infinite bandwidth is approximated by pricing every
// transfer at the latency floor of zero). Used by experiments isolating
// pure schedule shape, like the Table 2 bubble validation.
func (c Costs) ZeroCommCosts() Costs {
	out := c
	out.P2PLatency = 0
	out.P2PBytesPerSec = 0
	for i := range out.BoundBytes {
		out.BoundBytes[i] = 0
	}
	return out
}

// UnitCosts returns a synthetic cost book with the paper's didactic
// execution-time ratio t_pre : t_attn : t_post = 1 : 3 : 2 (Figures 2, 5, 6,
// 7), backward-B = forward and backward-W = forward per segment, unit
// stashes, and the given per-message communication time. Used by the
// figure-reproduction experiments and schedule unit tests.
func UnitCosts(commTime float64) Costs {
	var c Costs
	ratio := [3]float64{1, 3, 2}
	for i := 0; i < 3; i++ {
		c.Seg[i][model.Forward] = ratio[i]
		// The figures draw backward time equal to forward "for brevity";
		// splitting it as B=2/3 and W=1/3 of the segment keeps F+B+W = 2F
		// per segment while exercising the B/W decoupling. Attention has no
		// W, so its backward-B carries the full backward time.
		if model.Segment(i) == model.SegAttn {
			c.Seg[i][model.BackwardB] = ratio[i]
			c.Seg[i][model.BackwardW] = 0
		} else {
			c.Seg[i][model.BackwardB] = ratio[i] * 2 / 3
			c.Seg[i][model.BackwardW] = ratio[i] / 3
		}
		c.SegRecompute[i] = ratio[i]
		c.SegStash[i] = 16
		c.SegStashBFree[i] = 8
		c.SegStashWFree[i] = 8
		c.HelixSegStash[i] = 4
	}
	// Attention stash is entirely released by backward-B (no parameters).
	c.SegStashBFree[model.SegAttn] = 16
	c.SegStashWFree[model.SegAttn] = 0
	c.InputStash = 2
	c.EmbedGradStash = 8
	c.BoundBytes = [3]int64{1, 2, 2}
	if commTime > 0 {
		c.P2PLatency = 0
		c.P2PBytesPerSec = 1 / commTime // 1 byte message units
		c.BoundBytes = [3]int64{1, 1, 1}
	}
	return c
}
