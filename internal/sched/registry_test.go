package sched

import (
	"errors"
	"strings"
	"testing"
)

// unregister removes a test registration so the shared registry stays clean
// for the other tests in this package.
func unregister(name Method) {
	registry.Lock()
	delete(registry.byName, strings.ToLower(string(name)))
	registry.Unlock()
}

func testBuilder(cfg Config, costs Costs, _ BuildParams) (*Plan, error) {
	return GPipe(cfg, costs)
}

func TestTryRegisterRejectsBadRegistrations(t *testing.T) {
	if err := TryRegister(Registration{Name: "", Build: testBuilder}); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := TryRegister(Registration{Name: "registry-test-nil"}); err == nil {
		t.Error("nil builder must be rejected")
	}
}

func TestDuplicateRegistrationIsDeterministic(t *testing.T) {
	const name Method = "registry-test-dup"
	defer unregister(name)

	first := Registration{Name: name, Description: "first", Build: testBuilder}
	if err := TryRegister(first); err != nil {
		t.Fatal(err)
	}
	// A duplicate — same name, any case — returns ErrDuplicateMethod and
	// leaves the first registration untouched.
	dup := Registration{Name: "Registry-Test-DUP", Description: "second", Build: testBuilder}
	err := TryRegister(dup)
	if !errors.Is(err, ErrDuplicateMethod) {
		t.Fatalf("want ErrDuplicateMethod, got %v", err)
	}
	if got, _ := Lookup(string(name)); got.Description != "first" {
		t.Errorf("duplicate overwrote the first registration: %q", got.Description)
	}

	// Register (the init-time path) must not panic on the duplicate either:
	// it logs and keeps the first registration, whatever the init order.
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("Register panicked on a duplicate: %v", r)
		}
	}()
	Register(dup)
	if got, _ := Lookup(string(name)); got.Description != "first" {
		t.Errorf("Register overwrote the first registration: %q", got.Description)
	}
}

func TestRegisterStillPanicsOnProgrammerErrors(t *testing.T) {
	for _, r := range []Registration{
		{Name: "", Build: testBuilder},
		{Name: "registry-test-nil-builder"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) must panic", r)
				}
			}()
			Register(r)
		}()
	}
}
