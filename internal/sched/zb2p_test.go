package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// TestZB2PValidAndDeeper verifies the ZB2P extension: plans validate, the
// doubled in-flight window lets stages run further ahead than ZB1P, and the
// peak stash grows accordingly (the paper's footnote: ZB2P "costs more
// memory").
func TestZB2PValidAndDeeper(t *testing.T) {
	costs := realCosts(t)
	cfg := testCfg(4, 16, 16)
	zb1, err := ZB1P(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	zb2, err := ZB2P(cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(zb2); err != nil {
		t.Fatal(err)
	}
	if zb2.Method != MethodZB2P {
		t.Errorf("method = %s", zb2.Method)
	}
	peak := func(p *Plan, stage int) int64 {
		var bal, pk int64
		for _, op := range p.Ops[stage] {
			bal += op.Alloc - op.Free
			if bal > pk {
				pk = bal
			}
		}
		return pk
	}
	// Stage 0 may now hold up to 2p in-flight forwards.
	if peak(zb2, 0) <= peak(zb1, 0) {
		t.Errorf("ZB2P stage-0 stash (%d) should exceed ZB1P (%d)", peak(zb2, 0), peak(zb1, 0))
	}
	// Identical total work.
	if d := zb2.ComputeSeconds() - zb1.ComputeSeconds(); d > 1e-9 || d < -1e-9 {
		t.Errorf("ZB2P compute total differs from ZB1P by %g", d)
	}
}

// TestGeneratorPropertyRandomShapes is a property test over random pipeline
// shapes: every layer-wise generator must produce a validating plan for any
// (p, m, L) with p | L and m >= 1.
func TestGeneratorPropertyRandomShapes(t *testing.T) {
	costs := UnitCosts(0)
	check := func(pRaw, mRaw, lRaw uint8) bool {
		p := int(pRaw)%7 + 2         // 2..8
		m := int(mRaw)%12 + 1        // 1..12
		layersPer := int(lRaw)%4 + 1 // 1..4
		cfg := Config{Stages: p, MicroBatches: m, Layers: p * layersPer}
		for _, build := range []func(Config, Costs) (*Plan, error){GPipe, OneFOneB, ZB1P, ZB2P} {
			plan, err := build(cfg, costs)
			if err != nil {
				return false
			}
			if Validate(plan) != nil {
				return false
			}
		}
		plan, err := AdaPipe(cfg, costs, 0)
		if err != nil || Validate(plan) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStashSplitsSumToFull is a property of the cost book: per segment, the
// backward-B and backward-W stash releases always sum to the full stash.
func TestStashSplitsSumToFull(t *testing.T) {
	costs := realCosts(t)
	for _, seg := range model.Segments {
		if costs.SegStashBFree[seg]+costs.SegStashWFree[seg] != costs.SegStash[seg] {
			t.Errorf("segment %v: BFree %d + WFree %d != full %d", seg,
				costs.SegStashBFree[seg], costs.SegStashWFree[seg], costs.SegStash[seg])
		}
	}
	if costs.SegStashWFree[model.SegAttn] != 0 {
		t.Error("attention must release everything at backward-B")
	}
}
