package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// TestCounterBased verifies the defining counter-RNG property: At(i) is a
// pure function of (key, i), independent of draw order.
func TestCounterBased(t *testing.T) {
	s := New(42)
	want := []uint64{s.At(0), s.At(1), s.At(2)}
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("position %d: At=%d sequential=%d", i, want[i], got[i])
		}
	}
	// Random access after sequential draws still agrees.
	if s.At(1) != want[1] {
		t.Error("At must not depend on stream position")
	}
}

// TestStreamsIndependent checks that different keys and different lanes give
// different sequences, while identical construction reproduces exactly.
func TestStreamsIndependent(t *testing.T) {
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different keys should give different values")
	}
	a := New(7).Split(1)
	b := New(7).Split(2)
	if a.Uint64() == b.Uint64() {
		t.Error("different lanes should give different values")
	}
	x := New(9).Split(3)
	y := New(9).Split(3)
	for i := 0; i < 16; i++ {
		if x.Uint64() != y.Uint64() {
			t.Fatal("identical construction must reproduce the stream")
		}
	}
}

// TestFloat64Range is a property test: uniforms stay in [0, 1).
func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(key uint64) bool {
		s := New(key)
		for i := 0; i < 64; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestUniformMoments sanity-checks the first two moments of the uniform.
func TestUniformMoments(t *testing.T) {
	s := New(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean %g, want 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance %g, want %g", variance, 1.0/12)
	}
}

// TestNormalMoments sanity-checks the Box-Muller normal.
func TestNormalMoments(t *testing.T) {
	s := New(321)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %g, want 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %g, want 1", variance)
	}
}

func TestFillNormalAndIntn(t *testing.T) {
	dst := make([]float32, 100)
	New(5).FillNormal(dst, 0.02)
	var nonzero int
	for _, v := range dst {
		if v != 0 {
			nonzero++
		}
		if math.Abs(float64(v)) > 0.2 {
			t.Errorf("value %g implausible for std 0.02", v)
		}
	}
	if nonzero < 90 {
		t.Error("FillNormal left too many zeros")
	}
	s := New(6)
	for i := 0; i < 100; i++ {
		if v := s.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	s.Intn(0)
}
