// Package rng provides a counter-based pseudo-random number generator in the
// spirit of Philox ("Parallel random numbers: as easy as 1, 2, 3", the
// paper's reference [33] for low-memory dropout): every value is a pure
// function of (key, counter), so independent streams can be drawn in any
// order on any worker and still agree bit for bit. The numeric pipeline
// runtime uses it so that distributed parameter initialization and synthetic
// data generation reproduce the single-device reference exactly.
package rng

import "math"

// Stream is a keyed counter-based random stream. The zero value is a valid
// stream with key 0; distinct keys give statistically independent streams.
type Stream struct {
	key     uint64
	counter uint64
}

// New returns a stream for the given key.
func New(key uint64) *Stream { return &Stream{key: key} }

// Split returns an independent stream derived from this stream's key and
// the given lane — use it to give each parameter tensor or worker its own
// stream without coordination.
func (s *Stream) Split(lane uint64) *Stream {
	return &Stream{key: mix(s.key ^ mix(lane+0x9e3779b97f4a7c15))}
}

// mix is the SplitMix64 finalizer: a bijective avalanche over 64 bits.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// block computes the random 64-bit block for (key, counter).
func block(key, counter uint64) uint64 {
	return mix(counter ^ mix(key))
}

// Uint64 returns the next 64-bit value and advances the counter.
func (s *Stream) Uint64() uint64 {
	v := block(s.key, s.counter)
	s.counter++
	return v
}

// At returns the value at an absolute counter position without disturbing
// the stream state — the "random access" property of counter-based RNGs.
func (s *Stream) At(counter uint64) uint64 { return block(s.key, counter) }

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn needs positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal value via Box-Muller. Each call
// consumes exactly two counter positions, keeping streams alignable.
func (s *Stream) NormFloat64() float64 {
	u1 := s.Float64()
	u2 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// FillNormal fills dst with normal values of the given standard deviation.
func (s *Stream) FillNormal(dst []float32, std float64) {
	for i := range dst {
		dst[i] = float32(s.NormFloat64() * std)
	}
}
