// Package decode implements the interactive-decoding scenario family: the
// Helix Parallelism setting (PAPERS.md, arXiv:2507.07120) where a batch of
// concurrent sessions generates tokens against multi-million-token KV
// caches and the objective is latency per token, not training throughput.
//
// Attention at decode time shards along two axes: TPA partitions the KV
// heads (classic tensor parallelism over attention), KVP partitions the
// sequence — each KVP rank holds a contiguous shard of every session's KV
// cache and produces a partial attention output that a flash-style
// rescale/combine merges. The lattice is constrained by TPA <= K (a rank
// cannot hold less than one KV head; MLA's single shared latent means
// effectively K = 1) and KVP*TPA <= N (the attention groups live inside
// the N-GPU tensor-parallel world that the FFN uses in full). The cost
// model prices per-token attention against the growing cache, FFN GEMV
// work, KV-cache reads from HBM, and the all-gather/all-to-all/all-reduce
// collectives of each sharding, using the same GPUSpec/LinkSpec pricing
// idioms as the training cost model (internal/costmodel).
package decode

import (
	"fmt"
	"sort"
)

// FP16Bytes is the element width of weights, activations and KV cache.
const FP16Bytes = 2

// HeadConfig describes the attention-head geometry of a served model:
// query heads, KV heads (GQA groups queries over fewer KV heads; MHA has
// K = Heads), and the MLA variant where all queries share one compressed
// latent KV — effectively a single KV head that cannot be sharded by TPA.
type HeadConfig struct {
	// QueryHeads is the number of query heads H.
	QueryHeads int `json:"query_heads"`
	// KVHeads is the number of KV heads K of a GQA/MHA model. Ignored
	// under MLA, whose latent acts as a single shared KV head.
	KVHeads int `json:"kv_heads,omitempty"`
	// HeadDim is the per-head dimension d.
	HeadDim int `json:"head_dim"`
	// MLA marks multi-head latent attention: the KV cache holds one
	// compressed latent of LatentDim per token instead of K*(d K + d V).
	MLA bool `json:"mla,omitempty"`
	// LatentDim is the MLA latent width c (e.g. 512 for DeepSeek-style
	// compression). Required when MLA is set, ignored otherwise.
	LatentDim int `json:"latent_dim,omitempty"`
}

// EffectiveKVHeads is the shardable KV-head count: 1 under MLA (the latent
// is shared by every query head), KVHeads otherwise.
func (h HeadConfig) EffectiveKVHeads() int {
	if h.MLA {
		return 1
	}
	return h.KVHeads
}

// kvBytesPerToken is one token's KV-cache footprint per layer across all
// effective KV heads: the latent under MLA, K and V vectors per head
// otherwise.
func (h HeadConfig) kvBytesPerToken() int64 {
	if h.MLA {
		return int64(h.LatentDim) * FP16Bytes
	}
	return 2 * int64(h.KVHeads) * int64(h.HeadDim) * FP16Bytes
}

// Validate reports an error when the head geometry is unusable.
func (h HeadConfig) Validate() error {
	switch {
	case h.QueryHeads <= 0:
		return fmt.Errorf("decode: query heads must be positive, got %d", h.QueryHeads)
	case h.HeadDim <= 0:
		return fmt.Errorf("decode: head dim must be positive, got %d", h.HeadDim)
	}
	if h.MLA {
		if h.LatentDim <= 0 {
			return fmt.Errorf("decode: MLA needs a positive latent dim, got %d", h.LatentDim)
		}
		return nil
	}
	switch {
	case h.KVHeads <= 0:
		return fmt.Errorf("decode: kv heads must be positive, got %d", h.KVHeads)
	case h.QueryHeads%h.KVHeads != 0:
		return fmt.Errorf("decode: query heads (%d) must be divisible by kv heads (%d)",
			h.QueryHeads, h.KVHeads)
	}
	return nil
}

// Sharding is one point of the KVP x TPA lattice: KVP ranks partition the
// sequence (each holds S/KVP of every KV cache), TPA ranks partition the
// KV heads. The group uses KVP*TPA of the scenario's N GPUs for attention;
// the FFN always runs tensor-parallel over all N.
type Sharding struct {
	// KVP is the sequence (KV-cache) partition width.
	KVP int `json:"kvp"`
	// TPA is the attention-head tensor-parallel width.
	TPA int `json:"tpa"`
}

func (s Sharding) String() string { return fmt.Sprintf("kvp=%d tpa=%d", s.KVP, s.TPA) }

// GPUs is the attention group size KVP*TPA.
func (s Sharding) GPUs() int { return s.KVP * s.TPA }

// Check validates the sharding against the lattice constraints for n GPUs
// and the head config: positive axes, KVP*TPA <= N, TPA <= K (effective),
// and even division of heads and GPUs so every rank gets identical work.
func (s Sharding) Check(n int, h HeadConfig) error {
	effK := h.EffectiveKVHeads()
	switch {
	case s.KVP <= 0 || s.TPA <= 0:
		return fmt.Errorf("decode: sharding axes must be positive, got %s", s)
	case s.GPUs() > n:
		return fmt.Errorf("decode: %s needs %d GPUs, scenario has %d (KVP*TPA must be <= N)",
			s, s.GPUs(), n)
	case s.TPA > effK:
		return fmt.Errorf("decode: %s shards %d effective KV heads over %d ranks (TPA must be <= K)",
			s, effK, s.TPA)
	case effK%s.TPA != 0:
		return fmt.Errorf("decode: %s does not divide the %d effective KV heads evenly", s, effK)
	case h.QueryHeads%s.TPA != 0:
		return fmt.Errorf("decode: %s does not divide the %d query heads evenly", s, h.QueryHeads)
	case n%s.GPUs() != 0:
		return fmt.Errorf("decode: %s group of %d does not divide the %d GPUs evenly", s, s.GPUs(), n)
	}
	return nil
}

// Shardings enumerates the full-utilization lattice for n GPUs under the
// head config: every (KVP, TPA) with KVP*TPA = N (the tight case of
// KVP*TPA <= N — idle GPUs never help latency in this model), TPA <= K,
// and heads dividing evenly. Deterministic order: ascending TPA, so the
// pure sequence-parallel point (KVP=N, TPA=1) comes first. Under MLA the
// effective K is 1 and the lattice collapses to exactly that point —
// matching the vLLM helix constraint table, where TP=4/DCP=4 resolves to
// TPA=1, KVP=4.
func Shardings(n int, h HeadConfig) []Sharding {
	var out []Sharding
	for tpa := 1; tpa <= n; tpa++ {
		if n%tpa != 0 {
			continue
		}
		s := Sharding{KVP: n / tpa, TPA: tpa}
		if s.Check(n, h) == nil {
			out = append(out, s)
		}
	}
	return out
}

// Scenario is one interactive-decoding workload: a model's dimensions, its
// head config, and the serving shape — context length already in the cache,
// tokens to generate, concurrent sessions, and the GPU count N.
type Scenario struct {
	// Model labels the model preset in reports.
	Model string `json:"model"`
	// Layers, Hidden and Vocab are the model dimensions the FFN/head cost
	// derives from.
	Layers int `json:"layers"`
	Hidden int `json:"hidden"`
	Vocab  int `json:"vocab"`
	// Heads is the attention-head geometry.
	Heads HeadConfig `json:"heads"`
	// ContextLen is the KV-cache length S0 every session starts decoding
	// from (the prompt/prefix).
	ContextLen int `json:"context_len"`
	// DecodeTokens is the number of tokens T each session generates; the
	// cache grows from S0 to S0+T over the run.
	DecodeTokens int `json:"decode_tokens"`
	// Sessions is the batch B of concurrent sessions decoding in lockstep.
	Sessions int `json:"sessions"`
	// GPUs is the tensor-parallel world size N the FFN runs over and the
	// attention lattice carves.
	GPUs int `json:"gpus"`
}

// Validate reports an error when the scenario cannot be simulated.
func (sc Scenario) Validate() error {
	switch {
	case sc.Layers <= 0:
		return fmt.Errorf("decode: layers must be positive, got %d", sc.Layers)
	case sc.Hidden <= 0:
		return fmt.Errorf("decode: hidden must be positive, got %d", sc.Hidden)
	case sc.Vocab <= 0:
		return fmt.Errorf("decode: vocab must be positive, got %d", sc.Vocab)
	case sc.ContextLen <= 0:
		return fmt.Errorf("decode: context length must be positive, got %d", sc.ContextLen)
	case sc.DecodeTokens <= 0:
		return fmt.Errorf("decode: decode tokens must be positive, got %d", sc.DecodeTokens)
	case sc.Sessions <= 0:
		return fmt.Errorf("decode: sessions must be positive, got %d", sc.Sessions)
	case sc.GPUs <= 0:
		return fmt.Errorf("decode: gpus must be positive, got %d", sc.GPUs)
	}
	if err := sc.Heads.Validate(); err != nil {
		return err
	}
	if q := sc.Heads.QueryHeads * sc.Heads.HeadDim; q != sc.Hidden {
		return fmt.Errorf("decode: query heads x head dim (%d x %d) must equal hidden (%d)",
			sc.Heads.QueryHeads, sc.Heads.HeadDim, sc.Hidden)
	}
	return nil
}

// kvShardBytes is one rank's KV-cache footprint at cache length s under the
// sharding, across all sessions and layers. The sequence axis divides by
// KVP (ceiling — the last shard is the reference); the head axis divides by
// TPA only as far as the effective KV heads go: a TPA wider than K (never
// enumerated, but priceable for what-if comparisons) duplicates the cache,
// which is exactly why MLA prefers pure KVP.
func (sc Scenario) kvShardBytes(sh Sharding, s int) int64 {
	perTokenAll := sc.Heads.kvBytesPerToken()
	effK := int64(sc.Heads.EffectiveKVHeads())
	share := effK / int64(sh.TPA)
	if share < 1 {
		share = 1 // duplicated: a rank cannot hold less than one head/latent
	}
	perToken := perTokenAll * share / effK
	tokens := int64(ceilDiv(s, sh.KVP))
	return int64(sc.Sessions) * tokens * perToken * int64(sc.Layers)
}

// KVBytesPerDevice is one rank's KV-cache footprint at the end of the run
// (cache length S0+T) — the peak the memory prune checks against.
func (sc Scenario) KVBytesPerDevice(sh Sharding) int64 {
	return sc.kvShardBytes(sh, sc.ContextLen+sc.DecodeTokens)
}

// linParams counts one layer's dense parameters: the Q projection, the KV
// (or latent) projection, the output projection and the two MLP matrices.
func (sc Scenario) linParams() int64 {
	h := int64(sc.Hidden)
	kvDim := 2 * int64(sc.Heads.EffectiveKVHeads()) * int64(sc.Heads.HeadDim)
	if sc.Heads.MLA {
		kvDim = int64(sc.Heads.LatentDim)
	}
	qProj := h * int64(sc.Heads.QueryHeads) * int64(sc.Heads.HeadDim)
	kvProj := h * kvDim
	outProj := h * h
	mlp := 8 * h * h
	return qProj + kvProj + outProj + mlp
}

// WeightBytesPerDevice is one rank's share of the model weights under
// N-way tensor parallelism: all dense layers plus the tied embedding/head.
func (sc Scenario) WeightBytesPerDevice() int64 {
	params := int64(sc.Layers)*sc.linParams() + int64(sc.Vocab)*int64(sc.Hidden)
	return params * FP16Bytes / int64(sc.GPUs)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Dist summarizes a latency distribution with nearest-rank percentiles.
type Dist struct {
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

// distOf summarizes the samples; it copies before sorting.
func distOf(samples []float64) Dist {
	if len(samples) == 0 {
		return Dist{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	rank := func(q float64) float64 {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return Dist{
		MeanSeconds: sum / float64(len(sorted)),
		P50Seconds:  rank(0.50),
		P95Seconds:  rank(0.95),
		MaxSeconds:  sorted[len(sorted)-1],
	}
}
