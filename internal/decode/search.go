package decode

import (
	"fmt"
	"iter"
	"sort"
	"time"

	"repro/internal/obs"
)

// Objectives the decode search can rank shardings by. Latency per token
// (mean seconds per generated token) is the interactive-serving default;
// throughput (aggregate tokens per second across the batch) matches the
// training-side tune objective. At a fixed batch the two are reciprocal,
// so they induce the same ranking — the choice matters for how budgets
// are read (<= seconds vs >= tokens/s) and how reports are oriented.
const (
	ObjectiveLatencyPerToken = "latency_per_token"
	ObjectiveThroughput      = "throughput"
)

// Prune reasons recorded in Report.Pruned, mirroring the autotuner's
// memsim-style accounting: geometry kills invalid lattice points before
// pricing, kv-memory kills points whose KV cache plus weight shard cannot
// fit the per-device budget.
const (
	PruneGeometry = "geometry"
	PruneKVMemory = "kv-memory"
)

// Spec configures one decode search: the scenario, the sharding axes to
// cross (empty axes enumerate the full-utilization lattice), the ranking
// objective, the per-device memory budget for the KV prune, and the
// hardware pricing.
type Spec struct {
	Scenario Scenario `json:"scenario"`
	// KVP and TPA are explicit axis values to cross. When both are empty
	// the search enumerates Shardings(N, heads).
	KVP []int `json:"kvp,omitempty"`
	TPA []int `json:"tpa,omitempty"`
	// Objective ranks points; defaults to latency_per_token.
	Objective string `json:"objective,omitempty"`
	// BudgetBytes is the per-device memory budget the KV prune checks
	// weights + peak KV cache against. Zero defaults to the GPU's MemoryGB.
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// Params prices the scenario.
	Params CostParams `json:"params"`
	// Sink receives per-cell progress events; nil drops them.
	Sink obs.Sink `json:"-"`
}

// WithDefaults fills the objective and budget.
func (sp Spec) WithDefaults() Spec {
	if sp.Objective == "" {
		sp.Objective = ObjectiveLatencyPerToken
	}
	if sp.BudgetBytes <= 0 {
		sp.BudgetBytes = int64(sp.Params.GPU.MemoryGB * float64(1<<30))
	}
	return sp
}

// Validate reports an error for an unusable search spec.
func (sp Spec) Validate() error {
	if err := sp.Scenario.Validate(); err != nil {
		return err
	}
	switch sp.Objective {
	case "", ObjectiveLatencyPerToken, ObjectiveThroughput:
	default:
		return fmt.Errorf("decode: unknown objective %q (want %q or %q)",
			sp.Objective, ObjectiveLatencyPerToken, ObjectiveThroughput)
	}
	for _, v := range sp.KVP {
		if v <= 0 {
			return fmt.Errorf("decode: kvp axis values must be positive, got %d", v)
		}
	}
	for _, v := range sp.TPA {
		if v <= 0 {
			return fmt.Errorf("decode: tpa axis values must be positive, got %d", v)
		}
	}
	return nil
}

// grid lists the candidate shardings before pruning: the cross product of
// explicit axes when given, the full-utilization lattice otherwise.
func (sp Spec) grid() []Sharding {
	if len(sp.KVP) == 0 && len(sp.TPA) == 0 {
		return Shardings(sp.Scenario.GPUs, sp.Scenario.Heads)
	}
	kvp, tpa := sp.KVP, sp.TPA
	if len(kvp) == 0 {
		kvp = []int{1}
	}
	if len(tpa) == 0 {
		tpa = []int{1}
	}
	out := make([]Sharding, 0, len(kvp)*len(tpa))
	for _, t := range tpa {
		for _, k := range kvp {
			out = append(out, Sharding{KVP: k, TPA: t})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TPA != out[j].TPA {
			return out[i].TPA < out[j].TPA
		}
		return out[i].KVP < out[j].KVP
	})
	return out
}

// CommBreakdown splits a point's per-token communication time by
// collective.
type CommBreakdown struct {
	AllGatherSeconds float64 `json:"all_gather_seconds"`
	AllToAllSeconds  float64 `json:"all_to_all_seconds"`
	AllReduceSeconds float64 `json:"all_reduce_seconds"`
	TotalSeconds     float64 `json:"total_seconds"`
}

// Point is one simulated sharding: its latency distribution over the
// generated tokens, both objective readings, memory accounting, and the
// compute/comm breakdown (per-token means).
type Point struct {
	Sharding             Sharding      `json:"sharding"`
	TTFTSeconds          float64       `json:"ttft_seconds"`
	TokenSeconds         []float64     `json:"token_seconds"`
	Latency              Dist          `json:"latency"`
	SecondsPerToken      float64       `json:"seconds_per_token"`
	TokensPerSecond      float64       `json:"tokens_per_second"`
	KVBytesPerDevice     int64         `json:"kv_bytes_per_device"`
	WeightBytesPerDevice int64         `json:"weight_bytes_per_device"`
	Comm                 CommBreakdown `json:"comm"`
	ComputeSeconds       float64       `json:"compute_seconds"`
}

// Report is the decode search result: scenario provenance, the objective,
// pruning accounting, the ranked best point and every evaluated point in
// stream order.
type Report struct {
	Scenario    Scenario       `json:"scenario"`
	Objective   string         `json:"objective"`
	BudgetBytes int64          `json:"budget_bytes"`
	GPU         string         `json:"gpu"`
	Link        string         `json:"link,omitempty"`
	GridSize    int            `json:"grid_size"`
	Evaluated   int            `json:"evaluated"`
	Pruned      map[string]int `json:"pruned,omitempty"`
	Best        *Point         `json:"best,omitempty"`
	Points      []Point        `json:"points"`
}

var (
	decodePointsC = obs.Default().Counter("helix_decode_points_total")
	decodePrunedC = map[string]*obs.Counter{
		PruneGeometry: obs.Default().Counter("helix_decode_pruned_total", "reason", PruneGeometry),
		PruneKVMemory: obs.Default().Counter("helix_decode_pruned_total", "reason", PruneKVMemory),
	}
	tokenSecondsH = obs.Default().Histogram("helix_decode_token_seconds",
		[]float64{1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1})
)

// emit forwards to the sink when one is set.
func emit(s obs.Sink, e obs.Event) {
	if s != nil {
		s.Emit(e)
	}
}

// Simulate prices one sharding token by token: the cache grows from S0 to
// S0+T, so later tokens are strictly slower — the distribution is the
// point, not an average. Deterministic: same inputs, same Point.
func (sp Spec) Simulate(sh Sharding) Point {
	sp = sp.WithDefaults()
	sc := sp.Scenario
	pt := Point{
		Sharding:             sh,
		TTFTSeconds:          sc.TTFTSeconds(sh, sp.Params),
		TokenSeconds:         make([]float64, 0, sc.DecodeTokens),
		KVBytesPerDevice:     sc.KVBytesPerDevice(sh),
		WeightBytesPerDevice: sc.WeightBytesPerDevice(),
	}
	var total, compute float64
	for t := 0; t < sc.DecodeTokens; t++ {
		c := sc.stepCost(sh, sc.ContextLen+t, sp.Params)
		step := c.Total()
		pt.TokenSeconds = append(pt.TokenSeconds, step)
		tokenSecondsH.Observe(step)
		total += step
		compute += c.ComputeSeconds()
		pt.Comm.AllGatherSeconds += c.AllGatherSeconds
		pt.Comm.AllToAllSeconds += c.AllToAllSeconds
		pt.Comm.AllReduceSeconds += c.AllReduceSeconds
	}
	n := float64(sc.DecodeTokens)
	pt.Latency = distOf(pt.TokenSeconds)
	pt.SecondsPerToken = total / n
	if total > 0 {
		pt.TokensPerSecond = float64(sc.Sessions) * n / total
	}
	pt.Comm.AllGatherSeconds /= n
	pt.Comm.AllToAllSeconds /= n
	pt.Comm.AllReduceSeconds /= n
	pt.Comm.TotalSeconds = pt.Comm.AllGatherSeconds + pt.Comm.AllToAllSeconds + pt.Comm.AllReduceSeconds
	pt.ComputeSeconds = compute / n
	return pt
}

// better ranks a over b under the spec's objective.
func (sp Spec) better(a, b Point) bool {
	if sp.Objective == ObjectiveThroughput {
		return a.TokensPerSecond > b.TokensPerSecond
	}
	return a.SecondsPerToken < b.SecondsPerToken
}

// Search runs a decode search, streaming each evaluated point as it
// completes. Construct with NewSearch, drain Points, then read Result.
type Search struct {
	spec Spec
	res  Report
}

// NewSearch validates and prepares a search.
func NewSearch(spec Spec) (*Search, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.WithDefaults()
	s := &Search{spec: spec}
	s.res = Report{
		Scenario:    spec.Scenario,
		Objective:   spec.Objective,
		BudgetBytes: spec.BudgetBytes,
		GPU:         spec.Params.GPU.Name,
		Link:        spec.Params.Link.Class,
		Pruned:      map[string]int{},
	}
	return s, nil
}

// Points streams evaluated points in deterministic lattice order
// (ascending TPA), pruning invalid and over-budget shardings first. Cell
// events flow to the spec's sink so long sweeps render live progress.
func (s *Search) Points() iter.Seq2[Point, error] {
	return func(yield func(Point, error) bool) {
		grid := s.spec.grid()
		s.res.GridSize = len(grid)
		sc := s.spec.Scenario

		kept := make([]Sharding, 0, len(grid))
		for _, sh := range grid {
			if err := sh.Check(sc.GPUs, sc.Heads); err != nil {
				s.res.Pruned[PruneGeometry]++
				decodePrunedC[PruneGeometry].Inc()
				continue
			}
			need := sc.KVBytesPerDevice(sh) + sc.WeightBytesPerDevice()
			if need > s.spec.BudgetBytes {
				s.res.Pruned[PruneKVMemory]++
				decodePrunedC[PruneKVMemory].Inc()
				continue
			}
			kept = append(kept, sh)
		}

		for i, sh := range kept {
			emit(s.spec.Sink, obs.Event{
				Kind: obs.CellStarted, Label: sh.String(), Index: i, Total: len(kept),
			})
			pt := s.spec.Simulate(sh)
			s.res.Points = append(s.res.Points, pt)
			s.res.Evaluated++
			decodePointsC.Inc()
			if s.res.Best == nil || s.spec.better(pt, *s.res.Best) {
				best := pt
				s.res.Best = &best
			}
			emit(s.spec.Sink, obs.Event{
				Kind: obs.CellFinished, Label: sh.String(), Index: i, Total: len(kept),
				Duration: time.Duration(pt.Latency.MeanSeconds * float64(time.Second)),
			})
			if !yield(pt, nil) {
				return
			}
		}
	}
}

// Result returns the report accumulated so far. Call after draining
// Points; partial drains yield partial reports.
func (s *Search) Result() *Report {
	res := s.res
	if len(res.Pruned) == 0 {
		res.Pruned = nil
	}
	return &res
}

// Run drains the search and returns the full report.
func (s *Search) Run() (*Report, error) {
	for _, err := range s.Points() {
		if err != nil {
			return nil, err
		}
	}
	return s.Result(), nil
}
