package decode

import (
	"math"

	"repro/internal/costmodel"
)

// CostParams prices a scenario on concrete hardware: the per-device GPU
// spec and the intra-group link the attention/FFN collectives cross. A
// zero Link falls back to the GPU's flat NVLink bandwidth with no latency,
// matching the training cost model's fallback.
type CostParams struct {
	GPU           costmodel.GPUSpec  `json:"gpu"`
	Link          costmodel.LinkSpec `json:"link"`
	ComputeFactor float64            `json:"compute_factor,omitempty"`
}

// WithDefaults fills the compute factor (1.0) so a zero CostParams still
// prices sanely once a GPU is set.
func (p CostParams) WithDefaults() CostParams {
	if p.ComputeFactor <= 0 {
		p.ComputeFactor = 1
	}
	return p
}

func (p CostParams) gemmFLOPS() float64 {
	return p.GPU.DenseFP16TFLOPS * 1e12 * p.GPU.GEMMEfficiency
}

func (p CostParams) attnFLOPS() float64 {
	return p.GPU.DenseFP16TFLOPS * 1e12 * p.GPU.AttnEfficiency
}

func (p CostParams) hbmBps() float64 { return p.GPU.HBMGBps * 1e9 }

// linkBps resolves the collective bandwidth: the resolved link when set,
// else the GPU's NVLink spec.
func (p CostParams) linkBps() float64 {
	if p.Link.GBps > 0 {
		return p.Link.GBps * 1e9
	}
	return p.GPU.NVLinkGBps * 1e9
}

func (p CostParams) linkLatency() float64 { return p.Link.LatencySec }

// collective prices one ring pass of bytes over a group of g ranks:
// latency plus (g-1)/g of the payload through the link. g <= 1 is free.
func (p CostParams) collective(bytes float64, g int) float64 {
	if g <= 1 || bytes <= 0 {
		return 0
	}
	return p.linkLatency() + bytes*float64(g-1)/float64(g)/p.linkBps()
}

// allReduce is two ring passes (reduce-scatter + all-gather).
func (p CostParams) allReduce(bytes float64, g int) float64 {
	return 2 * p.collective(bytes, g)
}

// StepCost is the priced breakdown of one decode step (one token per
// session) at a given cache length.
type StepCost struct {
	LinearSeconds    float64
	AttentionSeconds float64
	HeadSeconds      float64
	AllGatherSeconds float64
	AllToAllSeconds  float64
	AllReduceSeconds float64
}

// Total is the step's wall-clock: compute and comm in sequence (decode
// steps are too short to overlap meaningfully at batch sizes this small).
func (c StepCost) Total() float64 {
	return c.LinearSeconds + c.AttentionSeconds + c.HeadSeconds +
		c.AllGatherSeconds + c.AllToAllSeconds + c.AllReduceSeconds
}

// CommSeconds is the collective share of the step.
func (c StepCost) CommSeconds() float64 {
	return c.AllGatherSeconds + c.AllToAllSeconds + c.AllReduceSeconds
}

// ComputeSeconds is the on-device share of the step.
func (c StepCost) ComputeSeconds() float64 {
	return c.LinearSeconds + c.AttentionSeconds + c.HeadSeconds
}

// stepCost prices one decode step for the scenario under the sharding with
// the cache at length s tokens.
//
// Per layer:
//   - Dense projections + MLP run tensor-parallel over all N GPUs. At
//     decode the batch is tiny, so each GEMM is really a GEMV: cost is the
//     max of the FLOP time and the weight-streaming time from HBM —
//     decode-phase FFN is weight-bandwidth-bound at small B.
//   - Attention reads each rank's KV shard once (HBM-bound against the
//     growing cache) and does 4*B*Hq/TPA*ceil(S/KVP)*d FLOPs.
//   - KVP > 1 pays the helix collectives inside each attention group: an
//     all-gather of the query activations so every sequence shard sees
//     every query, then an all-to-all exchanging partial outputs plus the
//     (max, sumexp) pair per head for the flash-style rescale combine.
//   - N > 1 pays two all-reduces of the hidden activations per layer
//     (attention output + MLP output), the standard TP pattern.
//
// The LM head runs once per step, vocab-parallel over N.
func (sc Scenario) stepCost(sh Sharding, s int, p CostParams) StepCost {
	p = p.WithDefaults()
	b := float64(sc.Sessions)
	h := float64(sc.Hidden)
	n := float64(sc.GPUs)
	dh := float64(sc.Heads.HeadDim)
	cf := p.ComputeFactor

	var c StepCost

	// Dense projections + MLP, sharded over all N GPUs.
	linParams := float64(sc.linParams()) / n
	linFLOPs := 2 * b * linParams
	linBytes := linParams * FP16Bytes
	c.LinearSeconds = cf * math.Max(linFLOPs/p.gemmFLOPS(), linBytes/p.hbmBps())

	// Attention against one rank's shard of the cache.
	ctxPerRank := float64(ceilDiv(s, sh.KVP))
	qPerRank := float64(sc.Heads.QueryHeads) / float64(sh.TPA)
	attnFLOPs := 4 * b * qPerRank * ctxPerRank * dh
	effK := sc.Heads.EffectiveKVHeads()
	kvPerRank := effK / sh.TPA
	if kvPerRank < 1 {
		kvPerRank = 1
	}
	kvReadBytes := b * ctxPerRank * float64(sc.Heads.kvBytesPerToken()) * float64(kvPerRank) / float64(effK)
	c.AttentionSeconds = cf * math.Max(attnFLOPs/p.attnFLOPS(), kvReadBytes/p.hbmBps())

	// Helix collectives inside the KVP group.
	if sh.KVP > 1 {
		qBytes := b * qPerRank * dh * FP16Bytes
		c.AllGatherSeconds = p.collective(qBytes, sh.KVP)
		// Partial outputs plus per-head (max, sumexp) for the combine.
		oBytes := b * qPerRank * (dh + 2) * FP16Bytes
		c.AllToAllSeconds = p.collective(oBytes, sh.KVP)
	}

	// Standard TP all-reduces over the full N-GPU world, twice per layer.
	if sc.GPUs > 1 {
		actBytes := b * h * FP16Bytes
		c.AllReduceSeconds = 2 * p.allReduce(actBytes, sc.GPUs)
	}

	// Everything above repeats per layer; the head runs once.
	c.LinearSeconds *= float64(sc.Layers)
	c.AttentionSeconds *= float64(sc.Layers)
	c.AllGatherSeconds *= float64(sc.Layers)
	c.AllToAllSeconds *= float64(sc.Layers)
	c.AllReduceSeconds *= float64(sc.Layers)

	headFLOPs := 2 * b * h * float64(sc.Vocab) / n
	headBytes := h * float64(sc.Vocab) * FP16Bytes / n
	c.HeadSeconds = cf * math.Max(headFLOPs/p.gemmFLOPS(), headBytes/p.hbmBps())

	return c
}

// TTFTSeconds estimates time-to-first-token: the prefill of the S0-token
// prompt (dense GEMMs plus causal attention, compute-bound at long S)
// followed by the first decode step. Prefill parallelism is the same
// N-GPU tensor-parallel world; the causal factor halves the attention
// FLOPs exactly as the training cost model does.
func (sc Scenario) TTFTSeconds(sh Sharding, p CostParams) float64 {
	p = p.WithDefaults()
	b := float64(sc.Sessions)
	s0 := float64(sc.ContextLen)
	n := float64(sc.GPUs)
	cf := p.ComputeFactor

	linFLOPs := 2 * b * s0 * float64(sc.linParams()) * float64(sc.Layers)
	headFLOPs := 2 * b * float64(sc.Hidden) * float64(sc.Vocab)
	gemmSec := cf * (linFLOPs + headFLOPs) / (n * p.gemmFLOPS())

	attnFLOPs := 4 * b * float64(sc.Heads.QueryHeads) * float64(sc.Heads.HeadDim) *
		s0 * s0 * costmodel.CausalFactor * float64(sc.Layers)
	attnSec := cf * attnFLOPs / (n * p.attnFLOPS())

	return gemmSec + attnSec + sc.stepCost(sh, sc.ContextLen, p).Total()
}
