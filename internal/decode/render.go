package decode

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON writes the report as indented JSON. The encoding is
// deterministic: identical searches produce byte-identical output, which
// is what the golden corpus diffs.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders the search accounting — scenario shape, objective, grid
// size, and the per-reason prune counts — as one line per fact.
func (r *Report) Summary() string {
	var b strings.Builder
	sc := r.Scenario
	attn := fmt.Sprintf("gqa k=%d", sc.Heads.KVHeads)
	if sc.Heads.MLA {
		attn = fmt.Sprintf("mla c=%d", sc.Heads.LatentDim)
	}
	fmt.Fprintf(&b, "model %s (%s) on %d x %s, context %d + %d tokens, %d sessions\n",
		sc.Model, attn, sc.GPUs, r.GPU, sc.ContextLen, sc.DecodeTokens, sc.Sessions)
	fmt.Fprintf(&b, "objective %s, budget %.1f GB per GPU\n", r.Objective, gb(r.BudgetBytes))
	fmt.Fprintf(&b, "grid %d shardings, evaluated %d\n", r.GridSize, r.Evaluated)
	for _, reason := range []string{PruneGeometry, PruneKVMemory} {
		if n := r.Pruned[reason]; n > 0 {
			fmt.Fprintf(&b, "pruned %d (%s)\n", n, reason)
		}
	}
	if r.Best != nil {
		fmt.Fprintf(&b, "best %s: %.2f ms/token, %.1f tokens/s\n",
			r.Best.Sharding, r.Best.SecondsPerToken*1e3, r.Best.TokensPerSecond)
	}
	return b.String()
}

// Table renders every evaluated sharding as an aligned ASCII table in
// stream order (ascending TPA).
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s per sharding\n", r.Objective)
	if len(r.Points) == 0 {
		b.WriteString("(no feasible shardings)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-5s %-5s %-12s %-12s %-12s %-12s %-10s %-10s %-10s\n",
		"kvp", "tpa", "ms/token", "p95 ms", "tokens/s", "ttft s", "kv GB", "comm ms", "compute ms")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-5d %-5d %-12.3f %-12.3f %-12.1f %-12.1f %-10.1f %-10.3f %-10.3f\n",
			p.Sharding.KVP, p.Sharding.TPA,
			p.SecondsPerToken*1e3, p.Latency.P95Seconds*1e3, p.TokensPerSecond,
			p.TTFTSeconds, gb(p.KVBytesPerDevice),
			p.Comm.TotalSeconds*1e3, p.ComputeSeconds*1e3)
	}
	return b.String()
}

func gb(bytes int64) float64 { return float64(bytes) / (1 << 30) }
