package decode

import (
	"reflect"
	"testing"

	"repro/internal/costmodel"
)

func gqaHeads(q, k, d int) HeadConfig {
	return HeadConfig{QueryHeads: q, KVHeads: k, HeadDim: d}
}

func mlaHeads(q, d, c int) HeadConfig {
	return HeadConfig{QueryHeads: q, HeadDim: d, MLA: true, LatentDim: c}
}

func TestShardingsMLACollapsesToPureKVP(t *testing.T) {
	// MLA: effective K = 1, so TPA must be 1 and the lattice is the single
	// pure-KVP point.
	got := Shardings(8, mlaHeads(32, 128, 512))
	want := []Sharding{{KVP: 8, TPA: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MLA lattice = %v, want %v", got, want)
	}
}

func TestShardingsGQARespectsTPALimit(t *testing.T) {
	// GQA with K=4 on 8 GPUs: TPA can be 1, 2 or 4 (never 8 > K).
	got := Shardings(8, gqaHeads(32, 4, 128))
	want := []Sharding{{KVP: 8, TPA: 1}, {KVP: 4, TPA: 2}, {KVP: 2, TPA: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GQA lattice = %v, want %v", got, want)
	}
	for _, s := range got {
		if s.TPA > 4 {
			t.Errorf("%s violates TPA <= K", s)
		}
		if s.GPUs() != 8 {
			t.Errorf("%s does not use all 8 GPUs", s)
		}
	}
}

func TestShardingsMatchVLLMHelixTable(t *testing.T) {
	// The vLLM helix integration shape: TP=4 with DCP=4 on an MLA model
	// resolves to TPA=1, KVP=4 — the only legal point of the 4-GPU lattice.
	got := Shardings(4, mlaHeads(16, 128, 512))
	want := []Sharding{{KVP: 4, TPA: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("vLLM-shape lattice = %v, want %v", got, want)
	}
}

func TestShardingCheckErrors(t *testing.T) {
	h := gqaHeads(32, 4, 128)
	cases := []struct {
		name string
		s    Sharding
		n    int
	}{
		{"zero tpa", Sharding{KVP: 8, TPA: 0}, 8},
		{"over budget", Sharding{KVP: 8, TPA: 2}, 8},
		{"tpa over k", Sharding{KVP: 1, TPA: 8}, 8},
		{"uneven heads", Sharding{KVP: 2, TPA: 3}, 6},
		{"uneven gpus", Sharding{KVP: 3, TPA: 1}, 8},
	}
	for _, c := range cases {
		if err := c.s.Check(c.n, h); err == nil {
			t.Errorf("%s: Check(%d, gqa k=4) = nil, want error", c.name, c.n)
		}
	}
	if err := (Sharding{KVP: 4, TPA: 2}).Check(8, h); err != nil {
		t.Errorf("valid sharding rejected: %v", err)
	}
}

func testScenario(h HeadConfig) Scenario {
	return Scenario{
		Model: "test", Layers: 32, Hidden: h.QueryHeads * h.HeadDim, Vocab: 32000,
		Heads: h, ContextLen: 1 << 20, DecodeTokens: 8, Sessions: 4, GPUs: 8,
	}
}

func testParams() CostParams {
	return CostParams{GPU: costmodel.H20(), Link: costmodel.LinkSpec{
		Class: "nvlink", GBps: 450, LatencySec: 6e-6,
	}}
}

func TestKVBytesPerDevice(t *testing.T) {
	sc := testScenario(gqaHeads(32, 8, 128))
	sc.ContextLen = 1 << 10
	sc.DecodeTokens = 0
	sc.DecodeTokens = 1024 // final cache length 2048

	// Pure KVP: each of 8 ranks holds 2048/8 = 256 tokens of all 8 KV
	// heads: 4 sessions * 256 * 2*8*128*2 B * 32 layers.
	got := sc.KVBytesPerDevice(Sharding{KVP: 8, TPA: 1})
	want := int64(4) * 256 * (2 * 8 * 128 * 2) * 32
	if got != want {
		t.Fatalf("KVP=8 kv bytes = %d, want %d", got, want)
	}

	// TPA=8: each rank holds the full 2048 tokens of one head — the same
	// per-device footprint under the full-use lattice.
	got = sc.KVBytesPerDevice(Sharding{KVP: 1, TPA: 8})
	if got != want {
		t.Fatalf("TPA=8 kv bytes = %d, want %d (full-use lattice is footprint-neutral)", got, want)
	}

	// MLA with TPA>1 duplicates the latent: TPA=2 halves the sequence
	// shard vs KVP=8... no — KVP=4 holds 2048/4 tokens of the whole
	// latent, so the footprint doubles versus KVP=8.
	mla := testScenario(mlaHeads(32, 128, 512))
	mla.ContextLen = 1 << 10
	mla.DecodeTokens = 1024
	pure := mla.KVBytesPerDevice(Sharding{KVP: 8, TPA: 1})
	dup := mla.KVBytesPerDevice(Sharding{KVP: 4, TPA: 2})
	if dup != 2*pure {
		t.Fatalf("MLA TPA=2 kv bytes = %d, want 2x pure KVP (%d)", dup, 2*pure)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	sp := Spec{Scenario: testScenario(gqaHeads(32, 8, 128)), Params: testParams()}
	a := sp.Simulate(Sharding{KVP: 4, TPA: 2})
	b := sp.Simulate(Sharding{KVP: 4, TPA: 2})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Simulate is not deterministic")
	}
	if a.SecondsPerToken <= 0 || a.TokensPerSecond <= 0 || a.TTFTSeconds <= 0 {
		t.Fatalf("degenerate point: %+v", a)
	}
	if a.Latency.P95Seconds < a.Latency.P50Seconds || a.Latency.MaxSeconds < a.Latency.P95Seconds {
		t.Fatalf("latency percentiles out of order: %+v", a.Latency)
	}
	// The cache grows, so the last token is strictly slower than the first.
	if last, first := a.TokenSeconds[len(a.TokenSeconds)-1], a.TokenSeconds[0]; last <= first {
		t.Fatalf("token latency did not grow with the cache: first %g, last %g", first, last)
	}
}

// TestMLAPureKVPStrictlyWins is the acceptance test: for an MLA-style
// config (effective K=1), pure KVP strictly beats every TPA>1 sharding on
// simulated latency per token at >= 1M context. TPA>1 duplicates the
// latent KV, so each rank reads TPA times more cache bytes from HBM.
func TestMLAPureKVPStrictlyWins(t *testing.T) {
	sp := Spec{Scenario: testScenario(mlaHeads(32, 128, 512)), Params: testParams()}
	if sp.Scenario.ContextLen < 1<<20 {
		t.Fatalf("acceptance requires >= 1M context, got %d", sp.Scenario.ContextLen)
	}
	pure := sp.Simulate(Sharding{KVP: 8, TPA: 1})
	for _, tpa := range []int{2, 4, 8} {
		sh := Sharding{KVP: 8 / tpa, TPA: tpa}
		pt := sp.Simulate(sh)
		if pure.SecondsPerToken >= pt.SecondsPerToken {
			t.Errorf("MLA pure KVP (%.4g s/token) does not strictly beat %s (%.4g s/token)",
				pure.SecondsPerToken, sh, pt.SecondsPerToken)
		}
	}
}

// TestGQABestRespectsTPALimit is the second acceptance clause: the
// search's best point respects TPA <= K on every GQA grid cell.
func TestGQABestRespectsTPALimit(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		for _, k := range []int{1, 2, 4, 8} {
			sc := testScenario(gqaHeads(32, k, 128))
			sc.GPUs = n
			// Keep the grid within budget at 16 GPUs too.
			sc.ContextLen = 1 << 18
			s, err := NewSearch(Spec{Scenario: sc, Params: testParams()})
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			rep, err := s.Run()
			if err != nil {
				t.Fatalf("n=%d k=%d: %v", n, k, err)
			}
			if rep.Best == nil {
				t.Fatalf("n=%d k=%d: no best point", n, k)
			}
			if rep.Best.Sharding.TPA > k {
				t.Errorf("n=%d k=%d: best %s violates TPA <= K", n, k, rep.Best.Sharding)
			}
			for _, p := range rep.Points {
				if p.Sharding.TPA > k {
					t.Errorf("n=%d k=%d: evaluated %s violates TPA <= K", n, k, p.Sharding)
				}
			}
		}
	}
}

func TestSearchKVMemoryPrune(t *testing.T) {
	// A context so long the KV cache cannot fit any H20 even fully sharded.
	sc := testScenario(gqaHeads(32, 8, 128))
	sc.ContextLen = 1 << 26
	s, err := NewSearch(Spec{Scenario: sc, Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 0 {
		t.Fatalf("evaluated %d shardings, want all pruned", rep.Evaluated)
	}
	if rep.Pruned[PruneKVMemory] != rep.GridSize {
		t.Fatalf("pruned %v of grid %d, want all %s", rep.Pruned, rep.GridSize, PruneKVMemory)
	}
}

func TestSearchExplicitAxesGeometryPrune(t *testing.T) {
	sc := testScenario(gqaHeads(32, 4, 128))
	s, err := NewSearch(Spec{
		Scenario: sc, Params: testParams(),
		KVP: []int{1, 2, 8}, TPA: []int{1, 8}, // tpa=8 > K=4 is geometry-pruned
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.GridSize != 6 {
		t.Fatalf("grid size = %d, want 6", rep.GridSize)
	}
	if rep.Pruned[PruneGeometry] == 0 {
		t.Fatal("expected geometry prunes for TPA > K")
	}
	for _, p := range rep.Points {
		if err := p.Sharding.Check(sc.GPUs, sc.Heads); err != nil {
			t.Errorf("evaluated invalid sharding: %v", err)
		}
	}
}

func TestObjectivesAgreeAtFixedBatch(t *testing.T) {
	// latency_per_token and throughput are reciprocal at a fixed batch, so
	// both objectives must pick the same best sharding.
	sc := testScenario(gqaHeads(32, 8, 128))
	best := map[string]Sharding{}
	for _, obj := range []string{ObjectiveLatencyPerToken, ObjectiveThroughput} {
		s, err := NewSearch(Spec{Scenario: sc, Params: testParams(), Objective: obj})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Best == nil {
			t.Fatalf("%s: no best point", obj)
		}
		best[obj] = rep.Best.Sharding
	}
	if best[ObjectiveLatencyPerToken] != best[ObjectiveThroughput] {
		t.Fatalf("objectives disagree: latency %v vs throughput %v",
			best[ObjectiveLatencyPerToken], best[ObjectiveThroughput])
	}
}

func TestSpecValidate(t *testing.T) {
	ok := Spec{Scenario: testScenario(gqaHeads(32, 8, 128)), Params: testParams()}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := ok
	bad.Objective = "goodput"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown objective accepted")
	}
	bad = ok
	bad.KVP = []int{0}
	if err := bad.Validate(); err == nil {
		t.Fatal("non-positive kvp axis accepted")
	}
	mismatch := ok
	mismatch.Scenario.Hidden = 128
	if err := mismatch.Validate(); err == nil {
		t.Fatal("heads x dim != hidden accepted")
	}
	mla := ok
	mla.Scenario.Heads = HeadConfig{QueryHeads: 32, HeadDim: 128, MLA: true}
	if err := mla.Validate(); err == nil {
		t.Fatal("MLA without latent dim accepted")
	}
}

func TestRenderSmoke(t *testing.T) {
	s, err := NewSearch(Spec{Scenario: testScenario(gqaHeads(32, 8, 128)), Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary() == "" || rep.Table() == "" {
		t.Fatal("empty render")
	}
}
