package memsim

import "fmt"

// StageTrace describes the allocation behaviour of one pipeline stage over
// one training iteration at the fidelity feasibility pruning needs: per-layer
// stashes that live from a micro batch's forward to its backward, short-lived
// working buffers cycling around every layer, and buffers resident for the
// whole iteration. The schedule-specific part is entirely in the numbers —
// 1F1B's most loaded stage holds p outstanding micro batches, GPipe and the
// FILO HelixPipe schedules hold all m — so one replay serves every method.
type StageTrace struct {
	// StashBytes is the long-lived stash one layer lays down per outstanding
	// micro batch during its forward and releases in its backward.
	StashBytes int64
	// StashBytesPerMB optionally overrides StashBytes per outstanding micro
	// batch — variable-length workloads stash different amounts per micro
	// batch. When set its length must be at least OutstandingMB; entry i is
	// the per-layer stash of outstanding micro batch i.
	StashBytesPerMB []int64
	// LayersPerStage is the layer count of the stage (L/p).
	LayersPerStage int
	// OutstandingMB is the number of micro batches whose stashes the
	// schedule holds simultaneously at its most loaded stage.
	OutstandingMB int
	// TransientBytes are the short-lived working buffers (MLP intermediates,
	// all-gather workspaces) allocated around one layer's compute and freed
	// before the next layer's stash is laid down. Sizes vary per layer by
	// the same deterministic irregularity as the chunked-MLP workload.
	TransientBytes []int64
	// ResidentBytes are allocated before the iteration and held until its
	// end — e.g. ZB1P's fp32 embedding-gradient stash at the last stage.
	ResidentBytes []int64
}

// Validate reports an error when the trace cannot be replayed.
func (tr StageTrace) Validate() error {
	switch {
	case tr.StashBytes < 0:
		return fmt.Errorf("memsim: negative stash bytes %d", tr.StashBytes)
	case tr.LayersPerStage <= 0:
		return fmt.Errorf("memsim: layers per stage must be positive, got %d", tr.LayersPerStage)
	case tr.OutstandingMB <= 0:
		return fmt.Errorf("memsim: outstanding micro batches must be positive, got %d", tr.OutstandingMB)
	case len(tr.StashBytesPerMB) > 0 && len(tr.StashBytesPerMB) < tr.OutstandingMB:
		return fmt.Errorf("memsim: %d per-micro-batch stashes for %d outstanding micro batches",
			len(tr.StashBytesPerMB), tr.OutstandingMB)
	}
	for _, b := range tr.StashBytesPerMB {
		if b < 0 {
			return fmt.Errorf("memsim: negative per-micro-batch stash %d", b)
		}
	}
	for _, b := range tr.TransientBytes {
		if b < 0 {
			return fmt.Errorf("memsim: negative transient buffer %d", b)
		}
	}
	for _, b := range tr.ResidentBytes {
		if b < 0 {
			return fmt.Errorf("memsim: negative resident buffer %d", b)
		}
	}
	return nil
}

// EstimatePeak replays the stage trace on a fresh allocator and returns its
// statistics. Stash laydown interleaves with the transient buffers exactly
// like the chunked-MLP workload, so PeakReservedBytes includes the holes a
// caching allocator would actually carve — an estimate a few hundred
// allocations cheap, which is what lets the autotuner discard infeasible
// grid points before paying for a full discrete-event simulation.
func EstimatePeak(cfg Config, tr StageTrace) (Stats, error) {
	if err := tr.Validate(); err != nil {
		return Stats{}, err
	}
	a := New(cfg)

	allocAll := func(sizes []int64) ([]int64, error) {
		var hs []int64
		for _, size := range sizes {
			if size <= 0 {
				continue
			}
			h, err := a.Alloc(size)
			if err != nil {
				return hs, err
			}
			hs = append(hs, h)
		}
		return hs, nil
	}
	freeAll := func(hs []int64) error {
		for _, h := range hs {
			if err := a.Free(h); err != nil {
				return err
			}
		}
		return nil
	}
	// transients returns the layer's working-buffer sizes with the same
	// deterministic per-layer irregularity the chunked-MLP workload uses:
	// real MLP temporaries are not uniform, and the irregularity interacting
	// with long-lived stashes is what fragments the pool.
	transients := func(layer int) []int64 {
		out := make([]int64, 0, len(tr.TransientBytes))
		for _, base := range tr.TransientBytes {
			size := base + irregular(layer)*base/8
			if size <= 0 {
				continue
			}
			out = append(out, size)
		}
		return out
	}
	cycleTransients := func(layer int) error {
		hs, err := allocAll(transients(layer))
		if err != nil {
			return err
		}
		return freeAll(hs)
	}

	residents, err := allocAll(tr.ResidentBytes)
	if err != nil {
		return a.Stats(), err
	}

	// Forward: each outstanding micro batch lays its per-layer stashes down
	// while the layer's transient buffers come and go around them.
	stashBytes := func(mb int) int64 {
		if mb < len(tr.StashBytesPerMB) {
			return tr.StashBytesPerMB[mb]
		}
		return tr.StashBytes
	}
	stash := make([][]int64, tr.OutstandingMB)
	for mb := range stash {
		stash[mb] = make([]int64, tr.LayersPerStage)
		for layer := 0; layer < tr.LayersPerStage; layer++ {
			hs, err := allocAll(transients(layer))
			if err != nil {
				return a.Stats(), err
			}
			if sb := stashBytes(mb); sb > 0 {
				h, err := a.Alloc(sb)
				if err != nil {
					return a.Stats(), err
				}
				stash[mb][layer] = h
			}
			if err := freeAll(hs); err != nil {
				return a.Stats(), err
			}
		}
	}

	// Backward in FILO order: transients cycle again (recomputation and
	// gradient workspaces), then the stashes release.
	for mb := tr.OutstandingMB - 1; mb >= 0; mb-- {
		for layer := tr.LayersPerStage - 1; layer >= 0; layer-- {
			if err := cycleTransients(layer); err != nil {
				return a.Stats(), err
			}
			if h := stash[mb][layer]; h != 0 {
				if err := a.Free(h); err != nil {
					return a.Stats(), err
				}
			}
		}
	}
	if err := freeAll(residents); err != nil {
		return a.Stats(), err
	}
	if err := a.CheckInvariants(); err != nil {
		return a.Stats(), err
	}
	return a.Stats(), nil
}
