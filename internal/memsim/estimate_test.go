package memsim

import "testing"

func TestEstimatePeakValidation(t *testing.T) {
	bad := []StageTrace{
		{StashBytes: 1 << 20, LayersPerStage: 0, OutstandingMB: 4},
		{StashBytes: 1 << 20, LayersPerStage: 4, OutstandingMB: 0},
		{StashBytes: -1, LayersPerStage: 4, OutstandingMB: 4},
		{StashBytes: 1 << 20, LayersPerStage: 4, OutstandingMB: 4, TransientBytes: []int64{-5}},
		{StashBytes: 1 << 20, LayersPerStage: 4, OutstandingMB: 4, ResidentBytes: []int64{-5}},
	}
	for i, tr := range bad {
		if _, err := EstimatePeak(DefaultConfig(), tr); err == nil {
			t.Errorf("trace %d: expected validation error, got none", i)
		}
	}
}

func TestEstimatePeakCoversStashes(t *testing.T) {
	const unit = int64(8 << 20)
	tr := StageTrace{
		StashBytes:     4 * unit,
		LayersPerStage: 4,
		OutstandingMB:  8,
		TransientBytes: []int64{unit, 4 * unit, 4 * unit, unit},
	}
	st, err := EstimatePeak(DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Peak allocated must cover all stashes held simultaneously.
	minPeak := tr.StashBytes * int64(tr.LayersPerStage) * int64(tr.OutstandingMB)
	if st.PeakAllocatedBytes < minPeak {
		t.Errorf("peak allocated %d below the simultaneous stash volume %d", st.PeakAllocatedBytes, minPeak)
	}
	// Reserved always dominates allocated, and the replay must leave the
	// allocator empty.
	if st.PeakReservedBytes < st.PeakAllocatedBytes {
		t.Errorf("peak reserved %d below peak allocated %d", st.PeakReservedBytes, st.PeakAllocatedBytes)
	}
	if st.AllocatedBytes != 0 {
		t.Errorf("replay leaked %d bytes", st.AllocatedBytes)
	}
}

func TestEstimatePeakMonotoneInOutstanding(t *testing.T) {
	base := StageTrace{
		StashBytes:     2 << 20,
		LayersPerStage: 4,
		TransientBytes: []int64{1 << 20, 4 << 20},
	}
	var prevAlloc, prevReserved int64
	for _, m := range []int{2, 4, 8, 16} {
		tr := base
		tr.OutstandingMB = m
		st, err := EstimatePeak(DefaultConfig(), tr)
		if err != nil {
			t.Fatal(err)
		}
		if st.PeakAllocatedBytes <= prevAlloc {
			t.Errorf("m=%d: peak allocated %d not above previous %d", m, st.PeakAllocatedBytes, prevAlloc)
		}
		// Reserved is segment-granular, so it may plateau but never shrink.
		if st.PeakReservedBytes < prevReserved {
			t.Errorf("m=%d: peak reserved %d shrank below %d", m, st.PeakReservedBytes, prevReserved)
		}
		prevAlloc, prevReserved = st.PeakAllocatedBytes, st.PeakReservedBytes
	}
}

func TestEstimatePeakResidents(t *testing.T) {
	tr := StageTrace{
		StashBytes:     1 << 20,
		LayersPerStage: 2,
		OutstandingMB:  2,
		ResidentBytes:  []int64{64 << 20},
	}
	with, err := EstimatePeak(DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.ResidentBytes = nil
	without, err := EstimatePeak(DefaultConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if with.PeakReservedBytes < without.PeakReservedBytes+(64<<20) {
		t.Errorf("resident buffer not reflected: with=%d without=%d", with.PeakReservedBytes, without.PeakReservedBytes)
	}
}

func TestEstimatePeakZeroStash(t *testing.T) {
	// A fully recomputing schedule may stash nothing at all; the replay must
	// still cycle the transients without error.
	st, err := EstimatePeak(DefaultConfig(), StageTrace{
		LayersPerStage: 4,
		OutstandingMB:  4,
		TransientBytes: []int64{1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakAllocatedBytes == 0 {
		t.Error("transient buffers should register a nonzero peak")
	}
}
