package memsim

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAllocFreeBasics(t *testing.T) {
	a := New(DefaultConfig())
	h1, err := a.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := a.Alloc(2000)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.AllocatedBytes < 3000 {
		t.Errorf("allocated %d, want >= 3000", st.AllocatedBytes)
	}
	if st.AllocatedBytes%512 != 0 {
		t.Error("allocations must be rounded to 512")
	}
	if err := a.Free(h1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(h2); err != nil {
		t.Fatal(err)
	}
	if a.Stats().AllocatedBytes != 0 {
		t.Error("everything freed but allocated > 0")
	}
	if err := a.Free(h1); err == nil {
		t.Error("double free must error")
	}
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero alloc must error")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCoalescing frees neighbouring blocks and expects one merged block.
func TestCoalescing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SegmentBytes = 8192
	a := New(cfg)
	var hs []int64
	for i := 0; i < 4; i++ {
		h, err := a.Alloc(2048)
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	// Free all four: they must coalesce into a single full-segment block.
	for _, h := range hs {
		if err := a.Free(h); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.FreeBlocks != 1 {
		t.Errorf("free blocks = %d, want 1 after coalescing", st.FreeBlocks)
	}
	if st.LargestFreeBlock != 8192 {
		t.Errorf("largest free block %d, want 8192", st.LargestFreeBlock)
	}
}

// TestReuseCachedBlock verifies the caching behaviour: freeing then
// reallocating the same size must not reserve new device memory.
func TestReuseCachedBlock(t *testing.T) {
	a := New(DefaultConfig())
	h, err := a.Alloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	reserved := a.Stats().ReservedBytes
	if err := a.Free(h); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().ReservedBytes; got != reserved {
		t.Errorf("reserved grew from %d to %d despite cached block", reserved, got)
	}
}

// TestCapacityOOM verifies the capacity cap produces allocation failures.
func TestCapacityOOM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CapacityBytes = 1 << 20
	cfg.SegmentBytes = 1 << 19
	a := New(cfg)
	var live []int64
	for {
		h, err := a.Alloc(1 << 18)
		if err != nil {
			break
		}
		live = append(live, h)
	}
	if len(live) == 0 {
		t.Fatal("no allocation succeeded under the cap")
	}
	if a.Stats().Failures == 0 {
		t.Error("OOM not recorded")
	}
	if a.Stats().ReservedBytes > cfg.CapacityBytes {
		t.Error("reserved memory exceeded the cap")
	}
}

// TestExpandableSegments verifies the expandable mode grows the tail
// segment in place instead of reserving a fresh one, reducing waste — the
// effect of PYTORCH_CUDA_ALLOC_CONF the paper enables for all methods.
func TestExpandableSegments(t *testing.T) {
	run := func(expandable bool) Stats {
		cfg := DefaultConfig()
		cfg.SegmentBytes = 1 << 20
		cfg.Expandable = expandable
		a := New(cfg)
		// Grow-shrink pattern: allocate big, free, allocate bigger.
		size := int64(1 << 20)
		for i := 0; i < 6; i++ {
			h, err := a.Alloc(size)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Free(h); err != nil {
				t.Fatal(err)
			}
			size += size / 2
		}
		return a.Stats()
	}
	plain := run(false)
	expandable := run(true)
	if expandable.PeakReservedBytes >= plain.PeakReservedBytes {
		t.Errorf("expandable segments should reserve less: %d vs %d",
			expandable.PeakReservedBytes, plain.PeakReservedBytes)
	}
}

// TestRandomWorkloadInvariants is a property test: a random alloc/free
// storm never violates the allocator invariants and always balances.
func TestRandomWorkloadInvariants(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		cfg := DefaultConfig()
		cfg.SegmentBytes = 1 << 16
		a := New(cfg)
		stream := rng.New(seed)
		var live []int64
		for i := 0; i < 300; i++ {
			if len(live) > 0 && stream.Float64() < 0.45 {
				idx := stream.Intn(len(live))
				if err := a.Free(live[idx]); err != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
			} else {
				h, err := a.Alloc(int64(stream.Intn(1<<14) + 1))
				if err != nil {
					return false
				}
				live = append(live, h)
			}
			if a.CheckInvariants() != nil {
				return false
			}
		}
		for _, h := range live {
			if err := a.Free(h); err != nil {
				return false
			}
		}
		return a.Stats().AllocatedBytes == 0 && a.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestChunkedMLPReducesFragmentation reproduces the section 4.4.2 claim:
// replaying the two-fold FILO stage workload, chunked MLP yields a smaller
// reserved-over-allocated inflation than unchunked MLP.
func TestChunkedMLPReducesFragmentation(t *testing.T) {
	base := DefaultConfig()
	base.SegmentBytes = 4 << 20
	cfg := ChunkedMLPConfig{
		UnitBytes:       8 << 20, // a long-sequence [s,b,h] shard
		LayersPerStage:  4,
		MicroBatches:    8,
		ChunkTokensFrac: 0.125,
	}
	plain, chunked, err := CompareChunking(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unchunked: reserved %.1f MiB, allocated %.1f MiB, ratio %.3f, free blocks %d",
		float64(plain.PeakReservedBytes)/(1<<20), float64(plain.PeakAllocatedBytes)/(1<<20),
		plain.FragmentationRatio(), plain.FreeBlocks)
	t.Logf("chunked:   reserved %.1f MiB, allocated %.1f MiB, ratio %.3f, free blocks %d",
		float64(chunked.PeakReservedBytes)/(1<<20), float64(chunked.PeakAllocatedBytes)/(1<<20),
		chunked.FragmentationRatio(), chunked.FreeBlocks)
	if chunked.FragmentationRatio() >= plain.FragmentationRatio() {
		t.Errorf("chunked MLP should reduce fragmentation: %.3f vs %.3f",
			chunked.FragmentationRatio(), plain.FragmentationRatio())
	}
	// The chunked run should be close to waste-free.
	if chunked.FragmentationRatio() > 1.15 {
		t.Errorf("chunked fragmentation ratio %.3f, expected near 1", chunked.FragmentationRatio())
	}
}

// TestChunkedMLPWithinCapacity verifies the practical consequence: under a
// capacity cap sized between the chunked and unchunked peaks, only the
// chunked variant completes the iteration (the paper's "enables longer
// sequences").
func TestChunkedMLPWithinCapacity(t *testing.T) {
	base := DefaultConfig()
	base.SegmentBytes = 4 << 20
	cfg := ChunkedMLPConfig{UnitBytes: 8 << 20, LayersPerStage: 4, MicroBatches: 8, ChunkTokensFrac: 0.125}
	plain, chunked, err := CompareChunking(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cap := (plain.PeakReservedBytes + chunked.PeakReservedBytes) / 2
	capped := base
	capped.CapacityBytes = cap

	noChunk := cfg
	noChunk.ChunkTokensFrac = 0
	if _, err := RunChunkedMLP(New(capped), noChunk); err == nil {
		t.Error("unchunked run should OOM under the cap")
	}
	if _, err := RunChunkedMLP(New(capped), cfg); err != nil {
		t.Errorf("chunked run should fit under the cap: %v", err)
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := RunChunkedMLP(New(DefaultConfig()), ChunkedMLPConfig{}); err == nil {
		t.Error("invalid config must error")
	}
}
