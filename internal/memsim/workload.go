package memsim

import "fmt"

// ChunkedMLPConfig describes the allocation workload of one HelixPipe stage
// under the two-fold FILO schedule with recomputation without attention —
// the setting whose fragmentation motivated chunked MLP (section 4.4.2).
type ChunkedMLPConfig struct {
	// UnitBytes is the size of one [s, b, h] activation shard on the GPU
	// (b*s*h*2/t bytes).
	UnitBytes int64
	// LayersPerStage is L/p.
	LayersPerStage int
	// MicroBatches is the number of micro batches whose stashes the FILO
	// schedule holds simultaneously (m).
	MicroBatches int
	// ChunkTokensFrac is the chunk size as a fraction of the sequence
	// (0 disables chunking: the whole [s, b, 4h] MLP buffers are allocated
	// at once). The paper's chunked MLP processes the all-gathered sequence
	// in configurable chunks through pre-allocated reusable buffers.
	ChunkTokensFrac float64
}

// irregular returns the transient-buffer irregularity multiplier for a
// layer. Real MLP temporaries are not perfectly uniform (all-gather
// workspaces, alignment padding, occasional fp32 epilogues), and it is this
// irregularity interacting with long-lived FILO stashes that carves the
// pool; a deterministic per-layer variation stands in for it.
func irregular(layer int) int64 {
	return int64(layer%3) - 1 // -1, 0, +1 quarter units
}

// RunChunkedMLP replays the stage's allocation trace for one training
// iteration and returns the allocator statistics. The trace interleaves
// long-lived FILO stashes (4 units per layer per micro batch under
// recomputation without attention) with the transient MLP buffers of the
// forward pass, then replays the backward pass in FILO order with
// recomputed intermediates.
func RunChunkedMLP(a *Allocator, cfg ChunkedMLPConfig) (Stats, error) {
	if cfg.UnitBytes <= 0 || cfg.LayersPerStage <= 0 || cfg.MicroBatches <= 0 {
		return Stats{}, fmt.Errorf("memsim: invalid chunked-MLP config %+v", cfg)
	}
	u := cfg.UnitBytes
	chunked := cfg.ChunkTokensFrac > 0

	// Chunked MLP pre-allocates reusable all-gather / intermediate buffers
	// once ("pre-allocating reusable buffers for all-gather and
	// reduce-scatter communications, eliminating dynamic memory overhead").
	var reusable []int64
	if chunked {
		c := cfg.ChunkTokensFrac
		for _, size := range []int64{int64(float64(u) * c), int64(float64(4*u) * c), int64(float64(4*u) * c)} {
			h, err := a.Alloc(size)
			if err != nil {
				return a.Stats(), err
			}
			reusable = append(reusable, h)
		}
	}

	// stash[mb][layer] holds the long-lived FILO handles.
	type layerStash struct{ unitIn, attn int64 }
	stash := make([][]layerStash, cfg.MicroBatches)
	for mb := range stash {
		stash[mb] = make([]layerStash, cfg.LayersPerStage)
	}

	transientSizes := func(layer int) []int64 {
		extra := irregular(layer) * u / 4
		if chunked {
			// Chunked MLP streams through the reusable buffers; only a
			// small per-chunk bookkeeping allocation remains.
			return []int64{u / 64}
		}
		return []int64{u + extra, 4*u + extra, 4 * u, u + extra}
	}

	allocTransients := func(layer int) ([]int64, error) {
		var hs []int64
		for _, size := range transientSizes(layer) {
			if size <= 0 {
				size = u / 4
			}
			h, err := a.Alloc(size)
			if err != nil {
				return nil, err
			}
			hs = append(hs, h)
		}
		return hs, nil
	}
	freeAll := func(hs []int64) error {
		for _, h := range hs {
			if err := a.Free(h); err != nil {
				return err
			}
		}
		return nil
	}
	runTransients := func(layer int) error {
		hs, err := allocTransients(layer)
		if err != nil {
			return err
		}
		return freeAll(hs)
	}
	allocStash := func(mb, layer int) error {
		unitIn, err := a.Alloc(2 * u) // residual + received attention out
		if err != nil {
			return err
		}
		attn, err := a.Alloc(2 * u) // flash-attention stash
		if err != nil {
			return err
		}
		stash[mb][layer] = layerStash{unitIn: unitIn, attn: attn}
		return nil
	}

	// Forward: the two-fold schedule processes micro batches in pairs, so
	// micro batch b's long-lived stash is laid down while micro batch a's
	// transient MLP buffers are still alive. When a's transients free, the
	// resulting hole is bounded by b's stash — the pinning that fragments
	// the pool (section 4.4.2).
	for layer := 0; layer < cfg.LayersPerStage; layer++ {
		for mb := 0; mb+1 < cfg.MicroBatches; mb += 2 {
			if err := allocStash(mb, layer); err != nil {
				return a.Stats(), err
			}
			transA, err := allocTransients(layer)
			if err != nil {
				return a.Stats(), err
			}
			if err := allocStash(mb+1, layer); err != nil {
				return a.Stats(), err
			}
			if err := freeAll(transA); err != nil {
				return a.Stats(), err
			}
			if err := runTransients(layer + 1); err != nil { // fold partner's buffers
				return a.Stats(), err
			}
		}
		if cfg.MicroBatches%2 == 1 {
			if err := allocStash(cfg.MicroBatches-1, layer); err != nil {
				return a.Stats(), err
			}
			if err := runTransients(layer); err != nil {
				return a.Stats(), err
			}
		}
	}

	// Backward in FILO order: recompute intermediates (transients again),
	// then release the stashes.
	for layer := cfg.LayersPerStage - 1; layer >= 0; layer-- {
		for mb := cfg.MicroBatches - 1; mb >= 0; mb-- {
			if err := runTransients(layer); err != nil {
				return a.Stats(), err
			}
			if err := a.Free(stash[mb][layer].attn); err != nil {
				return a.Stats(), err
			}
			if err := a.Free(stash[mb][layer].unitIn); err != nil {
				return a.Stats(), err
			}
		}
	}
	for _, h := range reusable {
		if err := a.Free(h); err != nil {
			return a.Stats(), err
		}
	}
	if err := a.CheckInvariants(); err != nil {
		return a.Stats(), err
	}
	return a.Stats(), nil
}

// CompareChunking runs the workload with and without chunked MLP on fresh
// allocators and returns (unchunked, chunked) statistics — the section
// 4.4.2 experiment.
func CompareChunking(base Config, cfg ChunkedMLPConfig) (Stats, Stats, error) {
	noChunk := cfg
	noChunk.ChunkTokensFrac = 0
	sa, err := RunChunkedMLP(New(base), noChunk)
	if err != nil {
		return sa, Stats{}, err
	}
	withChunk := cfg
	if withChunk.ChunkTokensFrac <= 0 {
		withChunk.ChunkTokensFrac = 0.125
	}
	sb, err := RunChunkedMLP(New(base), withChunk)
	return sa, sb, err
}
