// Package memsim simulates a CUDA caching allocator of the PyTorch variety:
// memory is requested from the device in segments, segments are split into
// blocks, freed blocks return to per-segment free lists and coalesce with
// free neighbours, and a request that fits no cached block grows the pool.
// An expandable-segments mode (PYTORCH_CUDA_ALLOC_CONF, paper section 5.1)
// lets the last segment grow in place instead of allocating fresh segments.
//
// The paper's chunked-MLP contribution (section 4.4.2) is about exactly the
// fragmentation this allocator model exhibits: long-sequence MLP buffers of
// irregular sizes (bsh, 4bsh, 8bsh/t...) interleaved with stash lifetimes
// carve the pool into unusable holes. The chunked-MLP experiment replays a
// transformer workload's allocation trace with and without chunking and
// reports reserved-versus-allocated inflation.
package memsim

import (
	"fmt"
	"sort"
)

// Config tunes the allocator.
type Config struct {
	// RoundBytes rounds every request up (PyTorch rounds to 512 B).
	RoundBytes int64
	// SegmentBytes is the granularity of device allocations for large
	// requests (PyTorch uses 20 MiB buckets for small, per-size for big;
	// we use one knob).
	SegmentBytes int64
	// Expandable enables expandable segments: the allocator may extend the
	// most recent segment in place, mimicking virtual-memory stitching.
	Expandable bool
	// CapacityBytes caps total reserved memory; 0 means unlimited. Reaching
	// the cap makes Alloc fail, modeling an OOM.
	CapacityBytes int64
}

// DefaultConfig mirrors the PyTorch caching allocator defaults.
func DefaultConfig() Config {
	return Config{RoundBytes: 512, SegmentBytes: 20 << 20, Expandable: false}
}

// block is a contiguous range inside a segment.
type block struct {
	off, size int64
	free      bool
}

// segment is one device allocation holding blocks.
type segment struct {
	size   int64
	blocks []*block
}

// Allocator is the caching-allocator simulator.
type Allocator struct {
	cfg      Config
	segments []*segment
	live     map[int64]alloc // handle -> location
	next     int64

	reserved      int64
	allocated     int64
	peakReserved  int64
	peakAllocated int64
	failures      int
}

type alloc struct {
	seg *segment
	blk *block
}

// New returns an allocator with the given configuration.
func New(cfg Config) *Allocator {
	if cfg.RoundBytes <= 0 {
		cfg.RoundBytes = 512
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 20 << 20
	}
	return &Allocator{cfg: cfg, live: map[int64]alloc{}}
}

func (a *Allocator) round(n int64) int64 {
	r := a.cfg.RoundBytes
	return (n + r - 1) / r * r
}

// Alloc requests n bytes and returns an opaque handle, or an error when the
// capacity cap is exhausted even after considering a fresh segment.
func (a *Allocator) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("memsim: non-positive allocation %d", n)
	}
	n = a.round(n)
	// Best-fit over cached free blocks, matching the caching allocator's
	// free-list policy.
	var bestSeg *segment
	var bestBlk *block
	for _, seg := range a.segments {
		for _, blk := range seg.blocks {
			if blk.free && blk.size >= n {
				if bestBlk == nil || blk.size < bestBlk.size {
					bestSeg, bestBlk = seg, blk
				}
			}
		}
	}
	if bestBlk == nil && a.cfg.Expandable && len(a.segments) > 0 {
		// Expandable segments: grow the last segment in place if its tail
		// block is free (virtual memory stitching per GMLake/PyTorch).
		seg := a.segments[len(a.segments)-1]
		tail := seg.blocks[len(seg.blocks)-1]
		if tail.free {
			grow := n - tail.size
			if grow > 0 && a.withinCap(grow) {
				tail.size += grow
				seg.size += grow
				a.reserved += grow
				bestSeg, bestBlk = seg, tail
			}
		}
	}
	if bestBlk == nil {
		// Fresh segment sized to the request bucket.
		segSize := a.cfg.SegmentBytes
		if n > segSize {
			segSize = n
		}
		if !a.withinCap(segSize) {
			a.failures++
			return 0, fmt.Errorf("memsim: out of memory: need %d, reserved %d, cap %d",
				segSize, a.reserved, a.cfg.CapacityBytes)
		}
		seg := &segment{size: segSize, blocks: []*block{{off: 0, size: segSize, free: true}}}
		a.segments = append(a.segments, seg)
		a.reserved += segSize
		bestSeg, bestBlk = seg, seg.blocks[0]
	}
	// Split the block if the remainder is usable.
	if bestBlk.size > n {
		rest := &block{off: bestBlk.off + n, size: bestBlk.size - n, free: true}
		bestBlk.size = n
		idx := indexOf(bestSeg.blocks, bestBlk)
		bestSeg.blocks = append(bestSeg.blocks[:idx+1],
			append([]*block{rest}, bestSeg.blocks[idx+1:]...)...)
	}
	bestBlk.free = false
	a.next++
	h := a.next
	a.live[h] = alloc{seg: bestSeg, blk: bestBlk}
	a.allocated += n
	if a.allocated > a.peakAllocated {
		a.peakAllocated = a.allocated
	}
	if a.reserved > a.peakReserved {
		a.peakReserved = a.reserved
	}
	return h, nil
}

func (a *Allocator) withinCap(extra int64) bool {
	return a.cfg.CapacityBytes <= 0 || a.reserved+extra <= a.cfg.CapacityBytes
}

func indexOf(blocks []*block, b *block) int {
	for i, x := range blocks {
		if x == b {
			return i
		}
	}
	panic("memsim: block not in segment")
}

// Free releases a handle, coalescing with free neighbours.
func (a *Allocator) Free(h int64) error {
	loc, ok := a.live[h]
	if !ok {
		return fmt.Errorf("memsim: double free or unknown handle %d", h)
	}
	delete(a.live, h)
	loc.blk.free = true
	a.allocated -= loc.blk.size
	// Coalesce neighbours.
	blocks := loc.seg.blocks
	idx := indexOf(blocks, loc.blk)
	if idx+1 < len(blocks) && blocks[idx+1].free {
		loc.blk.size += blocks[idx+1].size
		blocks = append(blocks[:idx+1], blocks[idx+2:]...)
	}
	if idx > 0 && blocks[idx-1].free {
		blocks[idx-1].size += loc.blk.size
		blocks = append(blocks[:idx], blocks[idx+1:]...)
	}
	loc.seg.blocks = blocks
	return nil
}

// Stats summarises allocator state.
type Stats struct {
	// ReservedBytes is the device memory held by the allocator.
	ReservedBytes int64
	// AllocatedBytes is the memory currently handed to tensors.
	AllocatedBytes int64
	// PeakReservedBytes and PeakAllocatedBytes are the high-water marks.
	PeakReservedBytes  int64
	PeakAllocatedBytes int64
	// LargestFreeBlock is the biggest single free block — what the next
	// large allocation can actually use.
	LargestFreeBlock int64
	// FreeBlocks counts free-list entries; many small ones mean carving.
	FreeBlocks int
	// Failures counts allocation failures (OOMs).
	Failures int
}

// FragmentationRatio is peak reserved over peak allocated: 1.0 means no
// waste; the paper's motivation for chunked MLP is exactly this ratio
// blowing up for long sequences.
func (s Stats) FragmentationRatio() float64 {
	if s.PeakAllocatedBytes == 0 {
		return 1
	}
	return float64(s.PeakReservedBytes) / float64(s.PeakAllocatedBytes)
}

// Stats returns current statistics.
func (a *Allocator) Stats() Stats {
	st := Stats{
		ReservedBytes:      a.reserved,
		AllocatedBytes:     a.allocated,
		PeakReservedBytes:  a.peakReserved,
		PeakAllocatedBytes: a.peakAllocated,
		Failures:           a.failures,
	}
	for _, seg := range a.segments {
		for _, blk := range seg.blocks {
			if blk.free {
				st.FreeBlocks++
				if blk.size > st.LargestFreeBlock {
					st.LargestFreeBlock = blk.size
				}
			}
		}
	}
	return st
}

// CheckInvariants verifies internal consistency: blocks tile each segment
// exactly, no two live handles share a block, and accounting matches the
// block states. Property tests call this after random workloads.
func (a *Allocator) CheckInvariants() error {
	seen := map[*block]bool{}
	var allocated int64
	for si, seg := range a.segments {
		var off int64
		for _, blk := range seg.blocks {
			if blk.off != off {
				return fmt.Errorf("memsim: segment %d: block at %d, expected offset %d", si, blk.off, off)
			}
			if blk.size <= 0 {
				return fmt.Errorf("memsim: segment %d: non-positive block", si)
			}
			off += blk.size
			if !blk.free {
				allocated += blk.size
			}
		}
		if off != seg.size {
			return fmt.Errorf("memsim: segment %d: blocks cover %d of %d", si, off, seg.size)
		}
	}
	for h, loc := range a.live {
		if loc.blk.free {
			return fmt.Errorf("memsim: live handle %d points at a free block", h)
		}
		if seen[loc.blk] {
			return fmt.Errorf("memsim: two handles share a block")
		}
		seen[loc.blk] = true
	}
	if allocated != a.allocated {
		return fmt.Errorf("memsim: accounting says %d allocated, blocks say %d", a.allocated, allocated)
	}
	return nil
}

// FreeBlockSizes returns the free-list sizes sorted descending, for reports.
func (a *Allocator) FreeBlockSizes() []int64 {
	var out []int64
	for _, seg := range a.segments {
		for _, blk := range seg.blocks {
			if blk.free {
				out = append(out, blk.size)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
