package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteProm writes the registry's state in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric family, label
// sets rendered `{k="v"}`, histograms expanded into cumulative
// `_bucket{le=...}`, `_sum` and `_count` series.
func WriteProm(w io.Writer, r *Registry) error {
	snaps := r.Snapshot()
	// Group into families: Snapshot is sorted by name, so one linear scan.
	typed := make(map[string]bool, len(snaps))
	for _, s := range snaps {
		if !typed[s.Name] {
			typed[s.Name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type); err != nil {
				return err
			}
		}
		if err := writePromMetric(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writePromMetric(w io.Writer, s MetricSnapshot) error {
	switch s.Type {
	case "histogram":
		cum := int64(0)
		for _, b := range s.Buckets {
			cum += b.Count
			le := strconv.FormatFloat(b.LE, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				s.Name, promLabels(s.Labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.Name, promLabels(s.Labels, "le", "+Inf"), s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			s.Name, promLabels(s.Labels), promFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels), s.Count)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels), promFloat(s.Value))
		return err
	}
}

// promLabels renders a label set (plus optional extra key/value pairs such
// as a histogram's `le`) as `{k="v",...}`, or "" when empty.
func promLabels(labels map[string]string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	put := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(v))
	}
	for _, k := range keys {
		put(k, labels[k])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		put(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders values integer-valued counters read naturally
// ("42", not "4.2e+01") while keeping full float precision elsewhere.
func promFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
