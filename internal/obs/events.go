package obs

import (
	"fmt"
	"time"
)

// EventKind discriminates progress events.
type EventKind int

const (
	// CellStarted fires when a unit of work (a sweep cell, a tune
	// candidate, a fleet run) begins executing on a worker.
	CellStarted EventKind = iota
	// CellFinished fires when the unit completes, successfully or not.
	CellFinished
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case CellStarted:
		return "started"
	case CellFinished:
		return "finished"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one progress event. Producers (Session.Stream/Execute,
// tune.Search.Points) emit them to a pluggable Sink as cells run; only
// the fields meaningful for the Kind are set.
type Event struct {
	// Kind is the event kind.
	Kind EventKind
	// Label identifies the cell in human terms, e.g. "HelixPipe seq=131072 p=8".
	Label string
	// Index is the cell's position in submission order.
	Index int
	// Total is the number of cells in the run when known (0 otherwise).
	Total int
	// Worker is the worker-pool slot executing the cell.
	Worker int
	// CacheHit marks a CellFinished whose report came from the report cache.
	CacheHit bool
	// Duration is the cell's wall clock (CellFinished only).
	Duration time.Duration
	// Err is the cell's terminal error, if any (CellFinished only).
	Err error
}

// Sink consumes progress events. Emit must be safe for concurrent use:
// worker pools deliver events from many goroutines.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }
