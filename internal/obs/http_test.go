package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("helix_http_test_total").Add(3)
	r.Gauge("helix_http_test_gauge", "kind", "x").Set(1.5)

	addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if _, ok := doc["helix"]; !ok {
		t.Fatalf("/debug/vars missing the helix namespace: %s", body)
	}
	if !strings.Contains(body, "helix_http_test_total") {
		t.Errorf("/debug/vars missing the counter: %s", body)
	}

	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(body, "helix_http_test_total 3") {
		t.Errorf("/metrics missing the counter sample:\n%s", body)
	}
	if !strings.Contains(body, `helix_http_test_gauge{kind="x"} 1.5`) {
		t.Errorf("/metrics missing the labeled gauge:\n%s", body)
	}

	if code, _ := get("/other"); code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", code)
	}
}
