package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fakeClock steps a Progress deterministically past its render throttle.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) advance(d time.Duration) {
	c.t = c.t.Add(d)
}

func newTestProgress(w *strings.Builder, label string, total int) (*Progress, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	p := NewProgress(w, label, total)
	p.now = clk.now
	p.start = clk.t
	p.last = time.Time{}
	return p, clk
}

func TestProgressLifecycle(t *testing.T) {
	var b strings.Builder
	p, clk := newTestProgress(&b, "sweep", 4)
	for i := 0; i < 4; i++ {
		clk.advance(time.Second)
		p.Emit(Event{Kind: CellStarted, Index: i, Total: 4})
		p.Emit(Event{Kind: CellFinished, Index: i, Total: 4, CacheHit: i >= 2, Duration: time.Second})
	}
	p.Done()
	out := b.String()
	if !strings.Contains(out, "sweep: 4/4 cells") {
		t.Errorf("missing completed live line: %q", out)
	}
	if !strings.Contains(out, "sweep: 4 cells in 4.0s (1.0 cells/s), 2 cache hits") {
		t.Errorf("missing final summary: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("Done must end the line with a newline")
	}
	// Events after Done are ignored.
	mark := b.Len()
	p.Emit(Event{Kind: CellFinished})
	if b.Len() != mark {
		t.Error("renderer wrote after Done")
	}
}

func TestProgressAdoptsTotalFromEvents(t *testing.T) {
	var b strings.Builder
	p, clk := newTestProgress(&b, "tune", 0)
	clk.advance(time.Second)
	p.Emit(Event{Kind: CellFinished, Index: 0, Total: 12})
	if !strings.Contains(b.String(), "tune: 1/12 cells") {
		t.Errorf("total not adopted from event: %q", b.String())
	}
}

func TestProgressThrottle(t *testing.T) {
	var b strings.Builder
	p, clk := newTestProgress(&b, "x", 100)
	clk.advance(time.Second)
	p.Emit(Event{Kind: CellFinished})
	first := b.Len()
	// Within the throttle window, nothing new is rendered.
	clk.advance(time.Millisecond)
	p.Emit(Event{Kind: CellFinished})
	if b.Len() != first {
		t.Error("throttle did not suppress a rapid update")
	}
	// Past the window it renders again.
	clk.advance(time.Second)
	p.Emit(Event{Kind: CellFinished})
	if b.Len() == first {
		t.Error("renderer stuck after the throttle window passed")
	}
}

func TestProgressErrorsCounted(t *testing.T) {
	var b strings.Builder
	p, clk := newTestProgress(&b, "s", 2)
	clk.advance(time.Second)
	p.Emit(Event{Kind: CellFinished, Err: errors.New("boom")})
	p.Emit(Event{Kind: CellFinished})
	p.Done()
	if !strings.Contains(b.String(), "1 errors") {
		t.Errorf("error count missing from summary: %q", b.String())
	}
}

func TestProgressLineOnlyProducer(t *testing.T) {
	var b strings.Builder
	p, clk := newTestProgress(&b, "fleet", 0)
	clk.advance(time.Second)
	p.Line("t=5s  2 queued  1 running")
	p.Done()
	out := b.String()
	if !strings.Contains(out, "fleet: t=5s  2 queued  1 running") {
		t.Errorf("free-form line missing: %q", out)
	}
	if !strings.Contains(out, "fleet: done in") {
		t.Errorf("line-only summary should not count cells: %q", out)
	}
	if strings.Contains(out, "cells") {
		t.Errorf("line-only producer still reported cells: %q", out)
	}
}

func TestSinkFunc(t *testing.T) {
	var got []Event
	var s Sink = SinkFunc(func(e Event) { got = append(got, e) })
	s.Emit(Event{Kind: CellStarted, Label: "a"})
	s.Emit(Event{Kind: CellFinished, Label: "a"})
	if len(got) != 2 || got[0].Kind != CellStarted || got[1].Kind != CellFinished {
		t.Fatalf("SinkFunc dropped events: %+v", got)
	}
	if CellStarted.String() != "started" || CellFinished.String() != "finished" {
		t.Error("EventKind labels drifted")
	}
}
