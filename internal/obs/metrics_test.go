package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-resolving the same name shares the instrument.
	if got := r.Counter("requests_total").Value(); got != 5 {
		t.Fatalf("re-resolved counter = %d, want 5", got)
	}

	g := r.Gauge("depth")
	g.Set(3.5)
	g.Add(-1)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestLabeledCountersAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("pruned_total", "reason", "memory")
	b := r.Counter("pruned_total", "reason", "geometry")
	a.Inc()
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 1 {
		t.Fatalf("labeled counters crossed: memory=%d geometry=%d", a.Value(), b.Value())
	}
	// Label order must not matter for identity.
	x := r.Counter("multi", "b", "2", "a", "1")
	y := r.Counter("multi", "a", "1", "b", "2")
	x.Inc()
	if y.Value() != 1 {
		t.Fatal("label order changed the instrument identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got < 55.649 || got > 55.651 {
		t.Fatalf("sum = %g, want ~55.65", got)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d metrics, want 1", len(snap))
	}
	// le semantics: 0.1 lands in the 0.1 bucket, 50 overflows to +Inf
	// (visible only via count minus the explicit buckets).
	want := []int64{2, 1, 1}
	for i, b := range snap[0].Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket le=%g count = %d, want %d", b.LE, b.Count, want[i])
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestOddLabelsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label list did not panic")
		}
	}()
	r.Counter("x", "key_without_value")
}

func TestSnapshotSortedAndExpvarString(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Inc()
	r.Gauge("alpha").Set(1)
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "alpha" || snap[1].Name != "zeta" {
		t.Fatalf("snapshot not sorted by name: %+v", snap)
	}
	// String() is the expvar.Var contract: it must be valid JSON.
	var decoded []MetricSnapshot
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("String() is not JSON: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("String() carried %d metrics, want 2", len(decoded))
	}
}

func TestConcurrentCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", c.Value())
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("helix_cache_hits_total").Add(42)
	r.Gauge("helix_fleet_utilization").Set(0.625)
	r.Counter("helix_tune_pruned_total", "reason", "memory").Add(3)
	h := r.Histogram("helix_cell_seconds", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(9)

	var b strings.Builder
	if err := WriteProm(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE helix_cache_hits_total counter\n",
		"helix_cache_hits_total 42\n",
		"# TYPE helix_fleet_utilization gauge\n",
		"helix_fleet_utilization 0.625\n",
		"helix_tune_pruned_total{reason=\"memory\"} 3\n",
		"# TYPE helix_cell_seconds histogram\n",
		"helix_cell_seconds_bucket{le=\"0.5\"} 1\n",
		"helix_cell_seconds_bucket{le=\"2\"} 2\n",
		"helix_cell_seconds_bucket{le=\"+Inf\"} 3\n",
		"helix_cell_seconds_sum 10.25\n",
		"helix_cell_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family even with several labeled children.
	if n := strings.Count(out, "# TYPE helix_tune_pruned_total"); n != 1 {
		t.Errorf("family helix_tune_pruned_total has %d TYPE headers, want 1", n)
	}
}
