package obs

import (
	"fmt"
	"net"
	"net/http"
)

// Handler serves a registry over HTTP on two read-only endpoints:
//
//   - /debug/vars — the registry's JSON snapshot, expvar-style
//   - /metrics — the Prometheus text exposition of the same snapshot
//
// Everything else is 404. The handler reads a live snapshot per request, so
// a long-lived scrape loop observes counters as they move.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n\"helix\": %s\n}\n", r.String())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteProm(w, r); err != nil {
			// The connection died mid-write; nothing useful left to do.
			return
		}
	})
	return mux
}

// Serve binds addr (e.g. "localhost:6060", or ":0" for an ephemeral port)
// and serves Handler(r) on it in a background goroutine for the life of the
// process. It returns the bound address so callers can print the real port.
// The tools' -listen flag lands here; a scrape endpoint has no orderly
// shutdown story worth carrying, so none is offered.
func Serve(addr string, r *Registry) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return ln.Addr(), nil
}
