package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress renders a single live status line ("\r"-overwritten, stderr by
// convention) from the event stream: completed cells, rate, ETA and
// cache-hit ratio. It implements Sink, so it plugs directly into
// Session/tune sinks; fleet probes without cell events feed it free-form
// text through Line. Rendering is throttled so event storms don't flood
// slow terminals; Done always prints a final summary.
type Progress struct {
	mu      sync.Mutex
	w       io.Writer
	label   string
	start   time.Time
	minGap  time.Duration
	last    time.Time
	total   int
	done    int
	hits    int
	errs    int
	lastLen int
	closed  bool
	now     func() time.Time // test hook
}

// NewProgress returns a renderer writing to w. label prefixes every line;
// total is the expected cell count (0 when unknown — events carrying a
// Total fill it in).
func NewProgress(w io.Writer, label string, total int) *Progress {
	return &Progress{
		w:      w,
		label:  label,
		total:  total,
		minGap: 100 * time.Millisecond,
		now:    time.Now,
		start:  time.Now(),
	}
}

// Emit implements Sink.
func (p *Progress) Emit(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if e.Total > p.total {
		p.total = e.Total
	}
	if e.Kind != CellFinished {
		return
	}
	p.done++
	if e.CacheHit {
		p.hits++
	}
	if e.Err != nil {
		p.errs++
	}
	p.print(p.status(), false)
}

// Line renders an arbitrary status line under the same throttle, for
// producers that aren't cell-shaped (the fleet engine's probe stream).
func (p *Progress) Line(s string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.print(p.label+": "+s, false)
}

// Done prints the final summary and a newline, ending the live line. The
// renderer ignores events after Done.
func (p *Progress) Done() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	elapsed := p.now().Sub(p.start).Seconds()
	var line string
	if p.done == 0 && p.total == 0 {
		// A Line-only producer (e.g. the fleet probe) has no cell counts.
		line = fmt.Sprintf("%s: done in %.1fs", p.label, elapsed)
	} else {
		line = fmt.Sprintf("%s: %d cells in %.1fs", p.label, p.done, elapsed)
	}
	if elapsed > 0 && p.done > 0 {
		line += fmt.Sprintf(" (%.1f cells/s)", float64(p.done)/elapsed)
	}
	if p.hits > 0 {
		line += fmt.Sprintf(", %d cache hits", p.hits)
	}
	if p.errs > 0 {
		line += fmt.Sprintf(", %d errors", p.errs)
	}
	p.print(line, true)
	fmt.Fprintln(p.w)
}

// status composes the live line: "<label>: 8/12 cells 6.2/s ETA 0.6s cache 3/8".
func (p *Progress) status() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d", p.label, p.done)
	if p.total > 0 {
		fmt.Fprintf(&b, "/%d", p.total)
	}
	b.WriteString(" cells")
	elapsed := p.now().Sub(p.start).Seconds()
	if elapsed > 0 && p.done > 0 {
		rate := float64(p.done) / elapsed
		fmt.Fprintf(&b, "  %.1f/s", rate)
		if p.total > p.done && rate > 0 {
			fmt.Fprintf(&b, "  ETA %.1fs", float64(p.total-p.done)/rate)
		}
	}
	if p.hits > 0 {
		fmt.Fprintf(&b, "  cache %d/%d", p.hits, p.done)
	}
	return b.String()
}

// print overwrites the live line, padding with spaces so a shorter line
// fully erases its predecessor. force bypasses the throttle (final lines
// and run completion must always land).
func (p *Progress) print(line string, force bool) {
	now := p.now()
	if !force && now.Sub(p.last) < p.minGap && p.done != p.total {
		return
	}
	p.last = now
	pad := p.lastLen - len(line)
	p.lastLen = len(line)
	if pad > 0 {
		line += strings.Repeat(" ", pad)
	}
	fmt.Fprintf(p.w, "\r%s", line)
}
