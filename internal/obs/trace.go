package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace accumulates events in the Chrome trace-event JSON format, the
// interchange format of chrome://tracing and ui.perfetto.dev. Producers
// append metadata, complete ("X") and flow ("s"/"f") events; WriteJSON
// emits the standard {"traceEvents": [...]} document.
//
// Timestamps and durations are in microseconds, the unit the format
// mandates; callers converting from the simulator's seconds multiply by
// 1e6. Lanes are addressed (pid, tid): by convention one process per
// simulated cell (or fleet job) and one thread per pipeline stage.
type Trace struct {
	events []map[string]any
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Len returns the number of accumulated events.
func (t *Trace) Len() int { return len(t.events) }

func (t *Trace) add(e map[string]any) { t.events = append(t.events, e) }

// ProcessName names a process lane via a metadata event.
func (t *Trace) ProcessName(pid int, name string) {
	t.add(map[string]any{
		"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
		"args": map[string]any{"name": name},
	})
}

// ProcessSortIndex pins the display order of a process lane.
func (t *Trace) ProcessSortIndex(pid, index int) {
	t.add(map[string]any{
		"ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
		"args": map[string]any{"sort_index": index},
	})
}

// ThreadName names a thread lane within a process.
func (t *Trace) ThreadName(pid, tid int, name string) {
	t.add(map[string]any{
		"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
		"args": map[string]any{"name": name},
	})
}

// Complete appends a complete ("X") event: one slice on the (pid, tid)
// lane spanning [tsUS, tsUS+durUS]. A nil args map is omitted.
func (t *Trace) Complete(pid, tid int, name, cat string, tsUS, durUS float64, args map[string]any) {
	e := map[string]any{
		"ph": "X", "name": name, "cat": cat,
		"pid": pid, "tid": tid, "ts": tsUS, "dur": durUS,
	}
	if len(args) > 0 {
		e["args"] = args
	}
	t.add(e)
}

// FlowStart appends a flow-start ("s") event anchored inside the slice
// enclosing tsUS on the (pid, tid) lane. Flow events with equal ids are
// drawn as an arrow between their anchors.
func (t *Trace) FlowStart(pid, tid int, name, cat string, tsUS float64, id uint64) {
	t.add(map[string]any{
		"ph": "s", "name": name, "cat": cat, "id": flowID(id),
		"pid": pid, "tid": tid, "ts": tsUS,
	})
}

// FlowEnd appends a flow-finish ("f") event with binding point "e"
// (enclosing slice), terminating the arrow of the matching FlowStart.
func (t *Trace) FlowEnd(pid, tid int, name, cat string, tsUS float64, id uint64) {
	t.add(map[string]any{
		"ph": "f", "bp": "e", "name": name, "cat": cat, "id": flowID(id),
		"pid": pid, "tid": tid, "ts": tsUS,
	})
}

// flowID renders flow ids as hex strings, the format's recommended id
// representation (numeric ids are legal but string ids survive every
// consumer).
func flowID(id uint64) string { return fmt.Sprintf("0x%x", id) }

// WriteJSON writes the accumulated events as a Chrome trace JSON document,
// one event per line so the output diffs cleanly under version control.
// Event field order is deterministic (encoding/json sorts map keys), so
// identical traces serialize byte-identically.
func (t *Trace) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range t.events {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
