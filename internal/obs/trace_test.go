package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceWriteJSON(t *testing.T) {
	tr := NewTrace()
	tr.ProcessName(1, "cell")
	tr.ProcessSortIndex(1, 1)
	tr.ThreadName(1, 0, "stage 0")
	tr.Complete(1, 0, "fwd mb0", "forward", 0, 1.5e6, map[string]any{"mb": 0})
	tr.Complete(1, 0, "idle", "other", 1.5e6, 0.5e6, nil)
	tr.FlowStart(1, 0, "xfer", "transfer", 2e6, 7)
	tr.FlowEnd(1, 1, "xfer", "transfer", 3e6, 7)
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tr.Len())
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("decoded %d events, want 7", len(doc.TraceEvents))
	}

	// The nil-args slice must omit the args key entirely.
	idle := doc.TraceEvents[4]
	if _, ok := idle["args"]; ok {
		t.Error("nil args serialized instead of being omitted")
	}
	// Flow ids render as hex strings and match across start/finish.
	start, end := doc.TraceEvents[5], doc.TraceEvents[6]
	if start["id"] != "0x7" || end["id"] != "0x7" {
		t.Errorf("flow ids = %v / %v, want 0x7", start["id"], end["id"])
	}
	if end["bp"] != "e" {
		t.Errorf("flow end bp = %v, want e", end["bp"])
	}

	// One event per line: VCS-diffable output.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 7+3 { // header, opener, 7 events, closer share lines
		t.Errorf("got %d lines, want 10:\n%s", len(lines), buf.String())
	}
}

func TestTraceDeterministicBytes(t *testing.T) {
	build := func() []byte {
		tr := NewTrace()
		tr.ProcessName(1, "p")
		tr.Complete(1, 0, "op", "cat", 1, 2, map[string]any{"b": 1, "a": 2, "c": 3})
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical traces serialized differently")
	}
}
