package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates the instrument types of a Registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// metric is one registered instrument. The same struct backs all three
// kinds; the wrappers expose only the operations that make sense for each.
type metric struct {
	name   string
	labels [][2]string // sorted by key
	kind   metricKind

	count atomic.Int64  // counter value; histogram observation count
	bits  atomic.Uint64 // gauge value; histogram sum (float64 bits)

	bounds  []float64 // histogram upper bounds, ascending
	buckets []atomic.Int64
}

func (m *metric) addFloat(v float64) {
	for {
		old := m.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if m.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ m *metric }

// Inc adds one.
func (c *Counter) Inc() { c.m.count.Add(1) }

// Add adds n (n must be non-negative; not enforced, counters are trusted).
func (c *Counter) Add(n int64) { c.m.count.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.m.count.Load() }

// Gauge is a float metric that can move in both directions.
type Gauge struct{ m *metric }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.m.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (negative to decrease). Several publishers can
// Add into one shared gauge (e.g. per-cache cached bytes).
func (g *Gauge) Add(v float64) { g.m.addFloat(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.m.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets and tracks
// their sum, Prometheus-style (cumulative on exposition, not in storage).
type Histogram struct{ m *metric }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.m.bounds, v)
	if i < len(h.m.buckets) {
		h.m.buckets[i].Add(1)
	}
	h.m.count.Add(1)
	h.m.addFloat(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.m.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.m.bits.Load()) }

// Registry holds named instruments. Lookups are get-or-create, so
// independent publishers resolving the same (name, labels) share one
// instrument; callers on hot paths resolve once and keep the pointer.
// The zero Registry is not usable; use NewRegistry or Default.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// std is the process-wide default registry. Package-level instrumentation
// (sim runner pool, report caches, tune search, fleet gauges) publishes
// here unless a caller injects its own registry.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// NewRegistry returns an empty registry, independent of Default. Tests use
// private registries to assert exact values without cross-test noise.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// labelPairs normalizes alternating key/value label arguments.
func labelPairs(name string, kv []string) [][2]string {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: odd label list %q", name, kv))
	}
	pairs := make([][2]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, [2]string{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	return pairs
}

func metricKey(name string, pairs [][2]string) string {
	if len(pairs) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, p := range pairs {
		b.WriteByte(0)
		b.WriteString(p[0])
		b.WriteByte('=')
		b.WriteString(p[1])
	}
	return b.String()
}

func (r *Registry) lookup(name string, kind metricKind, kv []string) *metric {
	pairs := labelPairs(name, kv)
	key := metricKey(name, pairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, labels: pairs, kind: kind}
	r.metrics[key] = m
	return m
}

// Counter returns the counter with the given name and alternating
// key/value labels, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return &Counter{r.lookup(name, kindCounter, labels)}
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return &Gauge{r.lookup(name, kindGauge, labels)}
}

// Histogram returns the histogram with the given name, upper bucket bounds
// (ascending; an implicit +Inf bucket is added on exposition) and labels,
// creating it on first use. Bounds are fixed at creation; later calls for
// the same instrument ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	m := r.lookup(name, kindHistogram, labels)
	r.mu.Lock()
	if m.bounds == nil {
		m.bounds = append([]float64(nil), bounds...)
		m.buckets = make([]atomic.Int64, len(m.bounds))
	}
	r.mu.Unlock()
	return &Histogram{m}
}

// Bucket is one histogram bucket in a snapshot: the count of observations
// at or below the upper bound (non-cumulative).
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MetricSnapshot is the point-in-time state of one instrument.
type MetricSnapshot struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Type    string            `json:"type"`
	Value   float64           `json:"value"`
	Count   int64             `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// Snapshot returns the state of every instrument, sorted by name then
// label set, so output is deterministic for a quiesced registry.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	keys := make([]string, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ms := make([]*metric, 0, len(keys))
	for _, k := range keys {
		ms = append(ms, r.metrics[k])
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Type: m.kind.String()}
		if len(m.labels) > 0 {
			s.Labels = make(map[string]string, len(m.labels))
			for _, p := range m.labels {
				s.Labels[p[0]] = p[1]
			}
		}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.count.Load())
		case kindGauge:
			s.Value = math.Float64frombits(m.bits.Load())
		case kindHistogram:
			s.Count = m.count.Load()
			s.Sum = math.Float64frombits(m.bits.Load())
			s.Buckets = make([]Bucket, 0, len(m.bounds))
			for i, b := range m.bounds {
				s.Buckets = append(s.Buckets, Bucket{LE: b, Count: m.buckets[i].Load()})
			}
		}
		out = append(out, s)
	}
	return out
}

// String renders the snapshot as JSON. The method makes *Registry satisfy
// the expvar.Var interface, so a registry can be published on the expvar
// endpoint with expvar.Publish("helix", obs.Default()) without this
// package importing expvar.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "[]"
	}
	return string(b)
}
