// Package obs is the repository's dependency-light observability layer:
// a metrics registry (counters, gauges, histograms) with an
// expvar-compatible JSON snapshot and Prometheus text exposition, a
// Chrome/Perfetto trace-event builder, and a typed progress-event stream
// with a live terminal renderer.
//
// The package deliberately imports nothing from the rest of the module so
// every layer (sim engine, report cache, tune search, fleet simulator,
// CLIs) can publish into it without import cycles.
package obs
