package core
