package core

// PreOwner returns the pipeline stage owning the pre-attention of layer l in
// a p-stage pipeline. Section 4.2: "the pre-attention of 0-th layer is
// assigned to stage 0; for l in [1, L), post-attention of layer (l-1) and
// pre-attention of layer l are concatenated to stage (l mod p)".
func PreOwner(layer, stages int) int { return layer % stages }

// PostOwner returns the stage owning the post-attention of layer l: the
// stage that also owns the pre-attention of layer l+1 ((l+1) mod p). The
// post-attention of the final layer L-1 lands back on stage 0 whenever p
// divides L.
func PostOwner(layer, stages int) int { return (layer + 1) % stages }

// AttnStage returns the stage executing the attention of micro batch mb at
// layer l: (l + mb + 1) mod p, "which makes different attention computation
// executed in parallel" (section 4.2) — for a fixed layer, consecutive
// micro batches map to consecutive stages.
func AttnStage(layer, mb, stages int) int { return ((layer+mb+1)%stages + stages) % stages }

// UnitOwner returns the stage owning helix unit u for u in [0, L]: unit 0 is
// the input embedding plus pre-attention of layer 0, unit u (0<u<L) is the
// concatenation [post-attention of layer u-1, pre-attention of layer u], and
// unit L is the post-attention of the final layer plus the (deferred) LM
// head. With p | L both ends sit on stage 0, which lets HelixPipe keep the
// tied word embedding entirely on one stage (section 4.6).
func UnitOwner(unit, stages int) int { return unit % stages }
