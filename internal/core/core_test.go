package core

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
)

func testCosts(t *testing.T) sched.Costs {
	t.Helper()
	w := costmodel.NewWorkload(model.Model7B(), costmodel.H20Cluster(), model.Shape{B: 1, S: 32768})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return sched.NewCosts(w)
}

func TestPlacement(t *testing.T) {
	const p = 4
	// Section 4.2 example facts.
	if PreOwner(0, p) != 0 {
		t.Error("pre-attention of layer 0 must live on stage 0")
	}
	for l := 0; l < 16; l++ {
		if PreOwner(l, p) != l%p {
			t.Errorf("PreOwner(%d) = %d", l, PreOwner(l, p))
		}
		if PostOwner(l, p) != (l+1)%p {
			t.Errorf("PostOwner(%d) = %d", l, PostOwner(l, p))
		}
		for mb := 0; mb < 8; mb++ {
			if AttnStage(l, mb, p) != (l+mb+1)%p {
				t.Errorf("AttnStage(%d,%d) = %d", l, mb, AttnStage(l, mb, p))
			}
		}
	}
	// Unit L lands on stage 0 when p divides L: the two pipeline ends share
	// a stage, so the tied embedding stays local (section 4.6).
	if UnitOwner(16, p) != 0 {
		t.Error("final unit must return to stage 0")
	}
}

// TestAttentionParallelism verifies the defining property of the attention
// parallel partition: for any fixed layer, the attention computations of p
// consecutive micro batches land on p distinct stages.
func TestAttentionParallelism(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		for l := 0; l < 3*p; l++ {
			seen := map[int]bool{}
			for mb := 0; mb < p; mb++ {
				seen[AttnStage(l, mb, p)] = true
			}
			if len(seen) != p {
				t.Errorf("p=%d layer %d: attention of %d micro batches uses only %d stages", p, l, p, len(seen))
			}
		}
	}
}

// TestBuildVariantsValid builds every HelixPipe variant over several shapes
// and runs the full plan validator (token dataflow, counts, stash balance).
func TestBuildVariantsValid(t *testing.T) {
	costs := testCosts(t)
	variants := []struct {
		name string
		opt  Options
		want sched.Method
	}{
		{"naive", Options{Fold: 1, Recompute: true}, sched.MethodHelixNaive},
		{"twofold", Options{Fold: 2, Recompute: true}, sched.MethodHelix},
		{"norecompute", Options{Fold: 2, Recompute: false}, sched.MethodHelixNoRecompute},
	}
	shapes := []struct{ p, layers int }{
		{2, 8}, {4, 16}, {8, 32}, {4, 4},
	}
	for _, v := range variants {
		for _, sh := range shapes {
			m := 2 * sh.p * v.opt.Fold / v.opt.Fold // base m = 2p
			if v.opt.Fold == 2 && m%(2*sh.p) != 0 {
				m = 2 * sh.p
			}
			cfg := sched.Config{Stages: sh.p, MicroBatches: m, Layers: sh.layers}
			plan, err := Build(cfg, costs, v.opt)
			if err != nil {
				t.Errorf("%s p=%d: %v", v.name, sh.p, err)
				continue
			}
			if plan.Method != v.want {
				t.Errorf("%s: method %s, want %s", v.name, plan.Method, v.want)
			}
			if err := sched.Validate(plan); err != nil {
				t.Errorf("%s p=%d L=%d: %v", v.name, sh.p, sh.layers, err)
			}
		}
	}
}

// TestBuildMultiLoop exercises FILO with multiple loops (m a larger multiple
// of fold*p) for both folds.
func TestBuildMultiLoop(t *testing.T) {
	costs := testCosts(t)
	for _, fold := range []int{1, 2} {
		for _, loops := range []int{1, 2, 3} {
			p := 4
			cfg := sched.Config{Stages: p, MicroBatches: loops * fold * p, Layers: 8}
			plan, err := Build(cfg, costs, Options{Fold: fold, Recompute: true})
			if err != nil {
				t.Fatalf("fold=%d loops=%d: %v", fold, loops, err)
			}
			if err := sched.Validate(plan); err != nil {
				t.Errorf("fold=%d loops=%d: %v", fold, loops, err)
			}
		}
	}
}

func TestBuildRejectsBadConfigs(t *testing.T) {
	costs := testCosts(t)
	cases := []struct {
		cfg sched.Config
		opt Options
	}{
		{sched.Config{Stages: 4, MicroBatches: 6, Layers: 8}, Options{Fold: 2, Recompute: true}},  // m not multiple of 2p
		{sched.Config{Stages: 4, MicroBatches: 6, Layers: 8}, Options{Fold: 1, Recompute: true}},  // m not multiple of p
		{sched.Config{Stages: 1, MicroBatches: 2, Layers: 4}, Options{Fold: 1, Recompute: true}},  // p < 2
		{sched.Config{Stages: 4, MicroBatches: 8, Layers: 10}, Options{Fold: 2, Recompute: true}}, // L % p != 0
		{sched.Config{Stages: 4, MicroBatches: 8, Layers: 8}, Options{Fold: 3, Recompute: true}},  // bad fold
	}
	for i, tc := range cases {
		if _, err := Build(tc.cfg, costs, tc.opt); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestParameterOwnershipBalanced verifies that the helix mapping gives every
// stage exactly L/p pre-attention and L/p post-attention segments — the
// model-state balance claim of section 4.2.
func TestParameterOwnershipBalanced(t *testing.T) {
	costs := testCosts(t)
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 16}
	plan, err := Build(cfg, costs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pre := make(map[int]map[int]bool) // stage -> layer set
	post := make(map[int]map[int]bool)
	for s, ops := range plan.Ops {
		pre[s] = map[int]bool{}
		post[s] = map[int]bool{}
		for _, op := range ops {
			if op.Kind == sched.KForward && op.Layer >= 0 {
				if op.Seg == model.SegPre {
					pre[s][op.Layer] = true
				}
				if op.Seg == model.SegPost {
					post[s][op.Layer] = true
				}
			}
		}
	}
	per := cfg.Layers / cfg.Stages
	for s := 0; s < cfg.Stages; s++ {
		if len(pre[s]) != per || len(post[s]) != per {
			t.Errorf("stage %d owns %d pre and %d post segments, want %d each",
				s, len(pre[s]), len(post[s]), per)
		}
	}
}

// TestAttentionSpreadInPlan verifies in the generated plan that attention
// forward ops of one layer within one loop are spread over all p stages.
func TestAttentionSpreadInPlan(t *testing.T) {
	costs := testCosts(t)
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 8}
	plan, err := Build(cfg, costs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stagesOf := map[int]map[int]bool{} // layer -> stage set (first loop only)
	for s, ops := range plan.Ops {
		for _, op := range ops {
			if op.Kind == sched.KForward && op.Layer >= 0 && op.Seg == model.SegAttn && op.MB < 4 {
				if stagesOf[op.Layer] == nil {
					stagesOf[op.Layer] = map[int]bool{}
				}
				stagesOf[op.Layer][s] = true
			}
		}
	}
	for l := 0; l < cfg.Layers; l++ {
		if len(stagesOf[l]) != cfg.Stages {
			t.Errorf("layer %d: attention spread over %d stages, want %d", l, len(stagesOf[l]), cfg.Stages)
		}
	}
}

// TestRecomputeCutsStash verifies that the recomputation variant allocates
// 4x less stash at forward time than the no-recompute variant (section 4.5).
func TestRecomputeCutsStash(t *testing.T) {
	costs := testCosts(t)
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 16}
	peakFwd := func(opt Options) int64 {
		plan, err := Build(cfg, costs, opt)
		if err != nil {
			t.Fatal(err)
		}
		var worst int64
		for _, ops := range plan.Ops {
			var bal, peak int64
			for _, op := range ops {
				// Count only forward allocations to isolate the stash policy.
				if op.Kind == sched.KForward {
					bal += op.Alloc
				}
				if op.Kind == sched.KBackwardB || op.Kind == sched.KBackwardW {
					bal -= op.Free
				}
				if bal > peak {
					peak = bal
				}
			}
			if peak > worst {
				worst = peak
			}
		}
		return worst
	}
	with := peakFwd(Options{Fold: 2, Recompute: true})
	without := peakFwd(Options{Fold: 2, Recompute: false})
	ratio := float64(without) / float64(with)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("no-recompute/recompute stash ratio = %.2f, want about 4 (paper section 4.5)", ratio)
	}
}

// TestNaiveUsesBlockingSends verifies the naive FILO schedule marks its
// sends blocking (Figure 6a) while the two-fold schedule sends async.
func TestNaiveUsesBlockingSends(t *testing.T) {
	costs := testCosts(t)
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 8}
	naive, err := Build(cfg, costs, Options{Fold: 1, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Build(cfg, costs, Options{Fold: 2, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	check := func(p *sched.Plan, wantBlocking bool) {
		for _, ops := range p.Ops {
			for _, op := range ops {
				if op.Kind == sched.KSend && op.Blocking != wantBlocking {
					t.Fatalf("%s: send blocking=%v, want %v", p.Method, op.Blocking, wantBlocking)
				}
			}
		}
	}
	check(naive, true)
	check(two, false)
}

// TestHelixCommVolume verifies every helix boundary message uses the helix
// volumes (2bsh-scale), never the layerwise activation volume, and that each
// layer contributes exactly 2 forward sends per micro batch.
func TestHelixCommVolume(t *testing.T) {
	costs := testCosts(t)
	cfg := sched.Config{Stages: 4, MicroBatches: 8, Layers: 8}
	plan, err := Build(cfg, costs, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sends := 0
	for _, ops := range plan.Ops {
		for _, op := range ops {
			if op.Kind != sched.KSend {
				continue
			}
			if op.Tag.Bound == sched.BoundAct {
				t.Fatal("helix plans must not use the layerwise activation boundary")
			}
			if !op.Tag.Back {
				sends++
			}
		}
	}
	// Two sends per layer per micro batch, minus the co-located cases: the
	// attention of micro batch mb at layer l runs on the pre owner itself
	// when mb = p-1 (mod p) and on the post owner when mb = 0 (mod p).
	m := cfg.MicroBatches
	want := 2*cfg.Layers*m - 2*cfg.Layers*(m/cfg.Stages)
	if sends != want {
		t.Errorf("forward sends = %d, want %d", sends, want)
	}
}
