// Package core implements the paper's primary contribution: HelixPipe's
// attention parallel partition (section 4.2) and the first-in-last-out
// micro-batch schedules built on it — the naive FILO schedule and the
// asynchronous two-fold FILO schedule (section 4.3) — together with the
// recomputation-without-attention memory strategy (section 4.4.1).
//
// Plans are expressed in the shared IR of internal/sched, so the simulator
// and the numeric executor run HelixPipe exactly like the baselines. The
// package registers its three schedule variants in the sched method
// registry, which makes them reachable from every registry-driven caller
// (sessions, sweeps, the command-line tools) without hardwired dispatch.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/sched"
)

// init registers the HelixPipe variants in the method registry. BuildParams
// may override the per-variant defaults (fold, recomputation); the zero
// params reproduce the paper configuration of each variant.
func init() {
	register := func(name sched.Method, desc string, rank int, def Options) {
		sched.Register(sched.Registration{
			Name:        name,
			Description: desc,
			Rank:        rank,
			Build: func(cfg sched.Config, costs sched.Costs, p sched.BuildParams) (*sched.Plan, error) {
				opt := def
				if p.HelixFold != 0 {
					opt.Fold = p.HelixFold
				}
				if p.HelixRecompute != nil {
					opt.Recompute = *p.HelixRecompute
				}
				return Build(cfg, costs, opt)
			},
		})
	}
	register(sched.MethodHelixNaive,
		"attention parallel partition with blocking naive FILO schedule", 70,
		Options{Fold: 1, Recompute: true})
	register(sched.MethodHelix,
		"attention parallel partition, two-fold FILO, recomputation without attention", 80,
		DefaultOptions())
	register(sched.MethodHelixNoRecompute,
		"HelixPipe two-fold FILO keeping all activations (no recomputation)", 90,
		Options{Fold: 2, Recompute: false})
}

// Options selects the HelixPipe variant to build.
type Options struct {
	// Fold is the number of micro batches executed per schedule slot:
	// 1 reproduces the naive FILO schedule of section 4.3.1 (with blocking
	// communication, the behaviour Figure 6a illustrates), 2 the
	// asynchronous two-fold FILO schedule of section 4.3.2.
	Fold int
	// Recompute enables the recomputation-without-attention strategy of
	// section 4.4.1 (on by default in the paper's HelixPipe).
	Recompute bool
}

// DefaultOptions returns the paper's HelixPipe configuration: two-fold FILO
// with recomputation without attention.
func DefaultOptions() Options { return Options{Fold: 2, Recompute: true} }

// Build constructs the HelixPipe plan for the given pipeline configuration
// and cost book.
//
// The FILO schedule admits fold*p micro batches per loop (section 4.3: "each
// loop admitting p micro batches"; the two-fold variant doubles that), so
// MicroBatches must be a positive multiple of fold*stages. Stages must be at
// least 2 and divide Layers, which keeps both pipeline ends on stage 0.
func Build(cfg sched.Config, costs sched.Costs, opt Options) (*sched.Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Fold != 1 && opt.Fold != 2 {
		return nil, fmt.Errorf("core: fold must be 1 (naive FILO) or 2 (two-fold FILO), got %d", opt.Fold)
	}
	if cfg.Stages < 2 {
		return nil, fmt.Errorf("core: HelixPipe needs at least 2 stages, got %d", cfg.Stages)
	}
	loopSize := opt.Fold * cfg.Stages
	if cfg.MicroBatches%loopSize != 0 {
		return nil, fmt.Errorf("core: micro batches (%d) must be a multiple of fold*stages (%d)",
			cfg.MicroBatches, loopSize)
	}
	b := &helixBuilder{cfg: cfg, costs: costs, opt: opt}
	b.buildTasks()
	if err := b.schedule(); err != nil {
		return nil, err
	}
	method := sched.MethodHelix
	switch {
	case opt.Fold == 1:
		method = sched.MethodHelixNaive
	case !opt.Recompute:
		method = sched.MethodHelixNoRecompute
	}
	return &sched.Plan{
		Method:       method,
		Stages:       cfg.Stages,
		MicroBatches: cfg.MicroBatches,
		Layers:       cfg.Layers,
		Ops:          b.ops,
		Costs:        costs,
		Batch:        cfg.Batch,
	}, nil
}

// taskKind discriminates helix schedule tasks.
type taskKind int

const (
	tUnitF taskKind = iota // forward of one unit for one micro-batch group
	tAttnF                 // forward attention of one (layer, micro batch)
	tUnitB                 // backward of one unit for one group (reversed)
	tAttnB                 // backward attention of one (layer, micro batch)
)

// hTask is one schedulable unit of helix work. Unit tasks process a whole
// fold group back to back (the essence of the two-fold schedule); attention
// tasks are per micro batch so they interleave freely.
type hTask struct {
	id      int
	kind    taskKind
	unit    int   // unit index for tUnitF/tUnitB (0..L); layer for attention
	mbs     []int // the micro batches, in emission order
	stage   int
	key     [4]int // lexicographic priority
	prereqs []int
}

type helixBuilder struct {
	cfg   sched.Config
	costs sched.Costs
	opt   Options

	tasks []hTask
	ops   [][]sched.Op

	// scheduling state
	arrival map[sched.Tag]float64
	clock   []float64
	done    []bool
	endAt   []float64
	// NIC availability per stage (full duplex), mirrored from the
	// simulator so arrival estimates account for link contention and the
	// emitted program order matches true arrival order.
	sendFree []float64
	recvFree []float64
}

func (b *helixBuilder) addTask(t hTask) int {
	t.id = len(b.tasks)
	b.tasks = append(b.tasks, t)
	return t.id
}

// buildTasks enumerates every task of one training iteration with its
// priority key and prerequisites.
func (b *helixBuilder) buildTasks() {
	p, m, L := b.cfg.Stages, b.cfg.MicroBatches, b.cfg.Layers
	fold := b.opt.Fold
	loopSize := fold * p
	loops := m / loopSize

	// Task id lookup tables.
	unitF := make([][]int, L+1) // [unit][group] -> task id
	attnF := make([][]int, L)   // [layer][mb] -> task id
	for u := range unitF {
		unitF[u] = make([]int, m/fold)
	}
	for l := range attnF {
		attnF[l] = make([]int, m)
	}
	groupMBs := func(g int) []int {
		mbs := make([]int, fold)
		for i := range mbs {
			mbs[i] = g*fold + i
		}
		return mbs
	}
	totalGroups := m / fold

	// Forward unit and attention tasks.
	for u := 0; u <= L; u++ {
		for g := 0; g < totalGroups; g++ {
			loop := (g * fold) / loopSize
			gInLoop := g % p
			t := hTask{
				kind:  tUnitF,
				unit:  u,
				mbs:   groupMBs(g),
				stage: UnitOwner(u, p),
				key:   [4]int{0, loop, 2 * u, gInLoop},
			}
			if u > 0 {
				for _, mb := range t.mbs {
					t.prereqs = append(t.prereqs, attnF[u-1][mb])
				}
			}
			unitF[u][g] = b.addTask(t)
		}
		if u == L {
			break
		}
		for g := 0; g < totalGroups; g++ {
			for _, mb := range groupMBs(g) {
				loop := mb / loopSize
				t := hTask{
					kind:    tAttnF,
					unit:    u,
					mbs:     []int{mb},
					stage:   AttnStage(u, mb, p),
					key:     [4]int{0, loop, 2*u + 1, mb % loopSize},
					prereqs: []int{unitF[u][g]},
				}
				attnF[u][mb] = b.addTask(t)
			}
		}
	}

	// Backward: FILO — loops in reverse, micro batches in reverse.
	unitB := make([][]int, L+1)
	attnB := make([][]int, L)
	for u := range unitB {
		unitB[u] = make([]int, totalGroups)
	}
	for l := range attnB {
		attnB[l] = make([]int, m)
	}
	invLoop := func(loop int) int { return loops - 1 - loop }
	for u := L; u >= 0; u-- {
		for g := totalGroups - 1; g >= 0; g-- {
			loop := (g * fold) / loopSize
			gInLoop := g % p
			mbs := groupMBs(g)
			rev := make([]int, len(mbs))
			for i, mb := range mbs {
				rev[len(mbs)-1-i] = mb
			}
			t := hTask{
				kind:  tUnitB,
				unit:  u,
				mbs:   rev,
				stage: UnitOwner(u, p),
				key:   [4]int{1, invLoop(loop), 2 * (L - u), p - 1 - gInLoop},
			}
			if u == L {
				t.prereqs = append(t.prereqs, unitF[u][g])
			} else {
				for _, mb := range t.mbs {
					t.prereqs = append(t.prereqs, attnB[u][mb])
				}
				t.prereqs = append(t.prereqs, unitF[u][g])
			}
			unitB[u][g] = b.addTask(t)
		}
		if u == 0 {
			break
		}
		l := u - 1 // attention backward of layer u-1 follows unit u backward
		for g := totalGroups - 1; g >= 0; g-- {
			mbs := groupMBs(g)
			for i := len(mbs) - 1; i >= 0; i-- {
				mb := mbs[i]
				loop := mb / loopSize
				t := hTask{
					kind:    tAttnB,
					unit:    l,
					mbs:     []int{mb},
					stage:   AttnStage(l, mb, p),
					key:     [4]int{1, invLoop(loop), 2*(L-u) + 1, loopSize - 1 - mb%loopSize},
					prereqs: []int{unitB[u][g], attnF[l][mb]},
				}
				attnB[l][mb] = b.addTask(t)
			}
		}
	}
}

// schedule orders the tasks with deterministic earliest-start greedy list
// scheduling and emits the per-stage op programs.
func (b *helixBuilder) schedule() error {
	p := b.cfg.Stages
	b.ops = make([][]sched.Op, p)
	b.arrival = map[sched.Tag]float64{}
	b.clock = make([]float64, p)
	b.done = make([]bool, len(b.tasks))
	b.endAt = make([]float64, len(b.tasks))
	b.sendFree = make([]float64, p)
	b.recvFree = make([]float64, p)

	remaining := len(b.tasks)
	// Stable candidate iteration order: by key then id.
	order := make([]int, len(b.tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, c := b.tasks[order[i]], b.tasks[order[j]]
		if a.key != c.key {
			return lessKey(a.key, c.key)
		}
		return a.id < c.id
	})

	for remaining > 0 {
		bestIdx, bestStart := -1, math.MaxFloat64
		for _, id := range order {
			t := &b.tasks[id]
			if b.done[id] {
				continue
			}
			ready := true
			depEnd := 0.0
			for _, pre := range t.prereqs {
				if !b.done[pre] {
					ready = false
					break
				}
				if b.endAt[pre] > depEnd {
					depEnd = b.endAt[pre]
				}
			}
			if !ready {
				continue
			}
			start := math.Max(b.clock[t.stage], b.firstInputArrival(t))
			if start < bestStart-1e-15 {
				bestIdx, bestStart = id, start
			}
		}
		if bestIdx < 0 {
			return fmt.Errorf("core: helix scheduling wedged with %d tasks remaining", remaining)
		}
		b.runTask(&b.tasks[bestIdx])
		b.done[bestIdx] = true
		remaining--
	}
	return nil
}

func lessKey(a, c [4]int) bool {
	for i := range a {
		if a[i] != c[i] {
			return a[i] < c[i]
		}
	}
	return false
}

// firstInputArrival returns the arrival estimate of the task's first message
// input, or 0 when it has none.
func (b *helixBuilder) firstInputArrival(t *hTask) float64 {
	tags := b.inputTags(t, t.mbs[0])
	first := 0.0
	for _, tag := range tags {
		if a, ok := b.arrival[tag]; ok && a > first {
			first = a
		}
	}
	return first
}

// inputTags returns the message tags one micro-batch piece of the task
// consumes.
func (b *helixBuilder) inputTags(t *hTask, mb int) []sched.Tag {
	L := b.cfg.Layers
	switch t.kind {
	case tUnitF:
		if t.unit == 0 {
			return nil
		}
		return []sched.Tag{{MB: mb, Layer: t.unit - 1, Bound: sched.BoundAttnPost}}
	case tAttnF:
		return []sched.Tag{{MB: mb, Layer: t.unit, Bound: sched.BoundPreAttn}}
	case tUnitB:
		if t.unit == L {
			return nil
		}
		return []sched.Tag{{MB: mb, Layer: t.unit, Bound: sched.BoundPreAttn, Back: true}}
	default: // tAttnB
		return []sched.Tag{{MB: mb, Layer: t.unit, Bound: sched.BoundAttnPost, Back: true}}
	}
}

// runTask emits the ops of a task and advances the builder clocks.
func (b *helixBuilder) runTask(t *hTask) {
	switch t.kind {
	case tUnitF:
		b.runUnitF(t)
	case tAttnF:
		b.runAttn(t, false)
	case tUnitB:
		b.runUnitB(t)
	default:
		b.runAttn(t, true)
	}
	b.endAt[t.id] = b.clock[t.stage]
}

func (b *helixBuilder) emit(stage int, op sched.Op) { b.ops[stage] = append(b.ops[stage], op) }

// recvPiece emits the recv ops for one micro-batch piece and returns the
// stage clock after waiting for the arrivals. When the producer ran on this
// very stage (the attention of micro batch mb at layer l is co-located with
// a pre/post owner whenever (l+mb+1) = l or l+1 mod p) the value is already
// local and no communication op is emitted.
func (b *helixBuilder) recvPiece(t *hTask, mb int, from int, clock float64) float64 {
	for _, tag := range b.inputTags(t, mb) {
		if from != t.stage {
			b.emit(t.stage, sched.Op{Kind: sched.KRecv, MB: mb, Peer: from, Tag: tag})
		}
		if a, ok := b.arrival[tag]; ok && a > clock {
			clock = a
		}
	}
	return clock
}

// sendPiece emits a send and records the message arrival estimate. Naive
// FILO (fold 1) uses blocking sends that occupy the compute stream (the
// paper's Figure 6a behaviour); the two-fold schedule sends asynchronously.
func (b *helixBuilder) sendPiece(stage, mb, peer int, tag sched.Tag, clock float64) float64 {
	if peer == stage {
		// Co-located consumer: the value is available immediately, no
		// transfer happens.
		b.arrival[tag] = clock
		return clock
	}
	blocking := b.opt.Fold == 1
	bytes := b.costs.MB(tag.MB).BoundBytes[tag.Bound]
	b.emit(stage, sched.Op{
		Kind: sched.KSend, MB: mb, Peer: peer, Tag: tag, Bytes: bytes, Blocking: blocking,
	})
	// Reserve the duplex NIC pair exactly like the simulator does, so the
	// emitted program order anticipates link contention.
	var wire float64
	if b.costs.P2PBytesPerSec > 0 {
		wire = float64(bytes) / b.costs.P2PBytesPerSec
	}
	start := clock
	if b.sendFree[stage] > start {
		start = b.sendFree[stage]
	}
	if b.recvFree[peer] > start {
		start = b.recvFree[peer]
	}
	end := start + wire
	arrival := end + b.costs.P2PLatency
	b.sendFree[stage] = end
	b.recvFree[peer] = end
	b.arrival[tag] = arrival
	if blocking {
		return arrival
	}
	return clock
}

// stashAlloc returns the forward allocation for one micro batch's segment
// under the active memory strategy.
func (b *helixBuilder) stashAlloc(mb int, seg model.Segment) int64 {
	c := b.costs.MB(mb)
	if b.opt.Recompute {
		return c.HelixSegStash[seg]
	}
	return c.SegStash[seg]
}

// attnFree returns the stash released by one micro batch's attention backward.
func (b *helixBuilder) attnFree(mb int) int64 {
	c := b.costs.MB(mb)
	if b.opt.Recompute {
		return c.HelixSegStash[model.SegAttn]
	}
	return c.SegStash[model.SegAttn]
}

func (b *helixBuilder) runUnitF(t *hTask) {
	L, p := b.cfg.Layers, b.cfg.Stages
	clock := b.clock[t.stage]
	for _, mb := range t.mbs {
		c := b.costs.StageMB(t.stage, mb)
		if t.unit > 0 {
			from := AttnStage(t.unit-1, mb, p)
			clock = b.recvPiece(t, mb, from, clock)
			b.emit(t.stage, sched.Op{Kind: sched.KForward, MB: mb, Layer: t.unit - 1, Seg: model.SegPost,
				Dur: c.Seg[model.SegPost][model.Forward], Alloc: b.stashAlloc(mb, model.SegPost)})
			clock += c.Seg[model.SegPost][model.Forward]
		} else {
			b.emit(t.stage, sched.Op{Kind: sched.KForward, MB: mb, Layer: sched.LayerEmbed, Dur: c.EmbedF})
			clock += c.EmbedF
		}
		if t.unit < L {
			b.emit(t.stage, sched.Op{Kind: sched.KForward, MB: mb, Layer: t.unit, Seg: model.SegPre,
				Dur: c.Seg[model.SegPre][model.Forward], Alloc: b.stashAlloc(mb, model.SegPre)})
			clock += c.Seg[model.SegPre][model.Forward]
			clock = b.sendPiece(t.stage, mb, AttnStage(t.unit, mb, p),
				sched.Tag{MB: mb, Layer: t.unit, Bound: sched.BoundPreAttn}, clock)
		}
	}
	b.clock[t.stage] = clock
}

func (b *helixBuilder) runAttn(t *hTask, back bool) {
	p := b.cfg.Stages
	l := t.unit
	mb := t.mbs[0]
	c := b.costs.StageMB(t.stage, mb)
	clock := b.clock[t.stage]
	if back {
		clock = b.recvPiece(t, mb, PostOwner(l, p), clock)
		b.emit(t.stage, sched.Op{Kind: sched.KBackwardB, MB: mb, Layer: l, Seg: model.SegAttn,
			Dur: c.Seg[model.SegAttn][model.BackwardB], Free: b.attnFree(mb)})
		clock += c.Seg[model.SegAttn][model.BackwardB]
		clock = b.sendPiece(t.stage, mb, PreOwner(l, p),
			sched.Tag{MB: mb, Layer: l, Bound: sched.BoundPreAttn, Back: true}, clock)
	} else {
		clock = b.recvPiece(t, mb, PreOwner(l, p), clock)
		b.emit(t.stage, sched.Op{Kind: sched.KForward, MB: mb, Layer: l, Seg: model.SegAttn,
			Dur: c.Seg[model.SegAttn][model.Forward], Alloc: b.stashAlloc(mb, model.SegAttn)})
		clock += c.Seg[model.SegAttn][model.Forward]
		clock = b.sendPiece(t.stage, mb, PostOwner(l, p),
			sched.Tag{MB: mb, Layer: l, Bound: sched.BoundAttnPost}, clock)
	}
	b.clock[t.stage] = clock
}

func (b *helixBuilder) runUnitB(t *hTask) {
	L, p := b.cfg.Layers, b.cfg.Stages
	clock := b.clock[t.stage]
	for _, mb := range t.mbs {
		c := b.costs.StageMB(t.stage, mb)
		if t.unit == L {
			// Deferred LM head: forward + loss + backward-B fused (4.6),
			// weight gradient immediately after (no ZB1P-style deferral).
			b.emit(t.stage, sched.Op{Kind: sched.KBackwardB, MB: mb, Layer: sched.LayerHead,
				Dur: c.HeadFB, Alloc: c.EmbedGradStash})
			b.emit(t.stage, sched.Op{Kind: sched.KBackwardW, MB: mb, Layer: sched.LayerHead,
				Dur: c.HeadW, Free: c.EmbedGradStash})
			clock += c.HeadFB + c.HeadW
		} else {
			from := AttnStage(t.unit, mb, p)
			clock = b.recvPiece(t, mb, from, clock)
		}
		// Recompute the unit's discarded intermediates in forward order:
		// post-attention of layer unit-1, then pre-attention of layer unit.
		if b.opt.Recompute {
			if t.unit > 0 {
				b.emit(t.stage, sched.Op{Kind: sched.KRecompute, MB: mb, Layer: t.unit - 1, Seg: model.SegPost,
					Dur:   c.SegRecompute[model.SegPost],
					Alloc: c.SegStash[model.SegPost] - c.HelixSegStash[model.SegPost]})
				clock += c.SegRecompute[model.SegPost]
			}
			if t.unit < L {
				b.emit(t.stage, sched.Op{Kind: sched.KRecompute, MB: mb, Layer: t.unit, Seg: model.SegPre,
					Dur:   c.SegRecompute[model.SegPre],
					Alloc: c.SegStash[model.SegPre] - c.HelixSegStash[model.SegPre]})
				clock += c.SegRecompute[model.SegPre]
			}
		}
		if t.unit < L {
			b.emit(t.stage, sched.Op{Kind: sched.KBackwardB, MB: mb, Layer: t.unit, Seg: model.SegPre,
				Dur: c.Seg[model.SegPre][model.BackwardB], Free: c.SegStashBFree[model.SegPre]})
			b.emit(t.stage, sched.Op{Kind: sched.KBackwardW, MB: mb, Layer: t.unit, Seg: model.SegPre,
				Dur: c.Seg[model.SegPre][model.BackwardW], Free: c.SegStashWFree[model.SegPre]})
			clock += c.Seg[model.SegPre][model.BackwardB] + c.Seg[model.SegPre][model.BackwardW]
		}
		if t.unit > 0 {
			b.emit(t.stage, sched.Op{Kind: sched.KBackwardB, MB: mb, Layer: t.unit - 1, Seg: model.SegPost,
				Dur: c.Seg[model.SegPost][model.BackwardB], Free: c.SegStashBFree[model.SegPost]})
			b.emit(t.stage, sched.Op{Kind: sched.KBackwardW, MB: mb, Layer: t.unit - 1, Seg: model.SegPost,
				Dur: c.Seg[model.SegPost][model.BackwardW], Free: c.SegStashWFree[model.SegPost]})
			clock += c.Seg[model.SegPost][model.BackwardB] + c.Seg[model.SegPost][model.BackwardW]
			clock = b.sendPiece(t.stage, mb, AttnStage(t.unit-1, mb, p),
				sched.Tag{MB: mb, Layer: t.unit - 1, Bound: sched.BoundAttnPost, Back: true}, clock)
		} else {
			b.emit(t.stage, sched.Op{Kind: sched.KBackwardW, MB: mb, Layer: sched.LayerEmbed, Dur: c.EmbedW})
			clock += c.EmbedW
		}
	}
	b.clock[t.stage] = clock
}
