// Command helixbench regenerates the paper's evaluation: every table and
// figure as a text table, written to stdout or one file per experiment.
//
// Usage:
//
//	helixbench                 # run everything
//	helixbench -exp fig8       # run the Figure 8 panels only
//	helixbench -exp table2     # one experiment
//	helixbench -out results/   # also write one .txt per experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixbench: ")
	var (
		exp    = flag.String("exp", "all", "experiment id prefix (all, table1, table2, table3, fig3, fig4, fig8, fig9, fig10, fig11, chunk, saturation, interleaved, zb1p-sensitivity)")
		outDir = flag.String("out", "", "directory to write one .txt per experiment")
	)
	flag.Parse()

	tables, err := helixpipe.AllExperiments()
	if err != nil {
		log.Fatal(err)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	matched := 0
	for _, t := range tables {
		if *exp != "all" && !strings.HasPrefix(t.ID, *exp) {
			continue
		}
		matched++
		out := t.Render()
		fmt.Println(out)
		if *outDir != "" {
			path := filepath.Join(*outDir, t.ID+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	if matched == 0 {
		log.Fatalf("no experiment matches %q", *exp)
	}
	fmt.Printf("ran %d experiments\n", matched)
}
