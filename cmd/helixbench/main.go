// Command helixbench regenerates the paper's evaluation: every table and
// figure as a text table, written to stdout or one file per experiment. With
// -method it instead fans a Session.Sweep over the paper's sequence-length
// and pipeline-size axes for the named methods.
//
// Usage:
//
//	helixbench                      # run every experiment
//	helixbench -exp fig8            # the Figure 8 panels only
//	helixbench -exp table2 -json    # one experiment, as JSON
//	helixbench -out results/        # also write one .txt per experiment
//	helixbench -method helixpipe,1f1b -json   # sweep reports as JSON
//	helixbench -method help         # list the registered methods
//	helixbench -spec sweep.json -emit-spec resolved.json
//	                                # sweep an experiment spec (flags become
//	                                # overrides), save the resolved spec
//	helixbench -method helixpipe -csv sweep.csv
//	                                # stream rows into sweep.csv as cells
//	                                # complete (tail -f friendly)
//	helixbench -diff prev/BENCH_baseline.json -against BENCH_baseline.json
//	                                # perf trajectory: exit 1 on any >10%
//	                                # throughput regression vs the previous
//	                                # recorded baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	helixpipe "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
)

// The paper's Figure 8 sweep axes.
var (
	sweepSeqLens = []int{32768, 65536, 98304, 131072}
	sweepStages  = []int{2, 4, 8}
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixbench: ")
	sf := cliutil.RegisterSpecFlags()
	var (
		exp         = flag.String("exp", "all", "experiment id prefix (all, table1, table2, table3, fig3, fig4, fig8, fig9, fig10, fig11, chunk, saturation, interleaved, zb1p-sensitivity)")
		outDir      = flag.String("out", "", "directory to write one .txt per experiment")
		methodsFlag = flag.String("method", "", "comma-separated methods (case-insensitive) to sweep instead of running experiments; 'help' lists them")
		modelName   = flag.String("model", "7B", "model preset for -method sweeps")
		clusterName = flag.String("cluster", "H20", "cluster preset for -method sweeps")
		jsonOut     = flag.Bool("json", false, "emit machine-readable JSON on stdout")
		csvPath     = flag.String("csv", "", "stream sweep reports as CSV rows to this path as cells complete")
		noCache     = flag.Bool("nocache", false, "disable the report cache: simulate every cell, even exact duplicates")
		metricsOut  = flag.Bool("metrics", false, "dump the telemetry metrics snapshot (Prometheus text) to stderr after a sweep")
		diffPrev    = flag.String("diff", "", "previous BENCH_baseline.json to diff the perf trajectory against")
		diffCur     = flag.String("against", "", "current BENCH_baseline.json for -diff")
		diffLimit   = flag.Float64("threshold", 0.10, "throughput regression fraction -diff fails on")
		listenAddr  = flag.String("listen", "", "serve /metrics and /debug/vars on this address (e.g. localhost:6060) for the run's duration")
	)
	flag.Parse()

	if *listenAddr != "" {
		addr, err := obs.Serve(*listenAddr, obs.Default())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "helixbench: serving /metrics and /debug/vars on http://%s\n", addr)
	}
	if *diffPrev != "" || *diffCur != "" {
		runDiff(*diffPrev, *diffCur, *diffLimit)
		return
	}
	if *methodsFlag != "" || sf.Path != "" {
		runSweep(sf, *methodsFlag, *modelName, *clusterName, *jsonOut, *csvPath, *noCache, *metricsOut)
		return
	}
	if sf.EmitPath != "" {
		log.Fatal("-emit-spec needs a spec-driven sweep (-method or -spec); the experiment tables are not spec-driven")
	}
	if *csvPath != "" {
		log.Fatal("-csv streams sweep reports; use it with -method or -spec")
	}

	tables, err := helixpipe.AllExperiments()
	if err != nil {
		log.Fatal(err)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	var matched []*helixpipe.ExperimentTable
	for _, t := range tables {
		if *exp != "all" && !strings.HasPrefix(t.ID, *exp) {
			continue
		}
		matched = append(matched, t)
		var out string
		if !*jsonOut || *outDir != "" {
			out = t.Render()
		}
		if !*jsonOut {
			fmt.Println(out)
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, t.ID+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	if len(matched) == 0 {
		log.Fatalf("no experiment matches %q", *exp)
	}
	if *jsonOut {
		if err := helixpipe.WriteTablesJSON(os.Stdout, matched); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("ran %d experiments\n", len(matched))
}

// runDiff enforces the perf trajectory: it diffs the previous recorded
// baseline against the current one and exits non-zero on any throughput
// regression beyond the threshold.
func runDiff(prevPath, curPath string, threshold float64) {
	if prevPath == "" || curPath == "" {
		log.Fatal("-diff and -against must both be given")
	}
	read := func(path string) []helixpipe.BaselineConfig {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		configs, err := helixpipe.ReadBaselineJSON(f)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		return configs
	}
	prev, cur := read(prevPath), read(curPath)
	regressions := helixpipe.CompareBaselines(prev, cur, threshold)
	if len(regressions) == 0 {
		fmt.Printf("perf trajectory ok: no throughput regression beyond %.0f%% across %d baseline configs\n",
			threshold*100, len(prev))
		return
	}
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "regression: %s\n", r)
	}
	os.Exit(1)
}

// runSweep fans the spec's methods across its sweep axes — the paper's
// Figure 8 grid by default — streaming the reports row by row as cells
// complete (to stdout and, with -csv, as CSV rows), or collecting them as
// JSON.
func runSweep(sf *cliutil.SpecFlags, methodsFlag, modelName, clusterName string, jsonOut bool, csvPath string, noCache, metricsOut bool) {
	spec := sf.Load()
	if spec.Tune != nil {
		log.Fatalf("the spec holds a tune grid; run it with helixtune -spec %s", sf.Path)
	}
	ov := cliutil.NewOverlay()
	ov.String("model", modelName, &spec.Model)
	ov.String("cluster", clusterName, &spec.Cluster)
	ov.Bool("nocache", noCache, &spec.NoCache)
	if ov.Has("method") || len(spec.Methods) == 0 {
		// An empty -method on a spec-driven sweep keeps the spec default:
		// every registered method.
		spec.Methods = cliutil.MethodsArg(methodsFlag)
	}
	if spec.Sweep == nil {
		// A workload spec sweeps stages only: its per-micro-batch shapes
		// replace the sequence-length axis.
		sw := &helixpipe.SpecSweep{Stages: sweepStages}
		if spec.Workload == nil {
			sw.SeqLens = sweepSeqLens
		}
		spec.Sweep = sw
	}
	out := ov.Output(spec, func(out *helixpipe.SpecOutput) {
		ov.Bool("json", jsonOut, &out.JSON)
		ov.String("csv", csvPath, &out.CSV)
	})

	sf.EmitResolved(spec)
	session, runset, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	if runset.Engine != helixpipe.EngineSim {
		log.Fatalf("helixbench benchmarks the simulator; run %s-engine specs with helixtrain", runset.Engine)
	}
	for _, note := range spec.Notes() {
		fmt.Fprintf(os.Stderr, "helixbench: note: %s\n", note)
	}
	// A live progress line on stderr tracks the sweep: rate, ETA and the
	// cache-hit ratio, with a one-line summary when the run finishes. The
	// sink also turns on report provenance (the telemetry block), which the
	// digest-based golden comparisons ignore by design.
	prog := obs.NewProgress(os.Stderr, "sweep", len(runset.Cells))
	if session, err = session.With(helixpipe.WithEventSink(prog)); err != nil {
		log.Fatal(err)
	}
	// Attach an observable cache so the run can report its hit/miss counts.
	var cache *helixpipe.ReportCache
	if !spec.NoCache {
		cache = helixpipe.NewReportCache()
		if session, err = session.With(helixpipe.WithReportCache(cache)); err != nil {
			log.Fatal(err)
		}
	}
	// The CSV sink streams: each cell's row is flushed as it completes, so a
	// long sweep can be tailed instead of waited out.
	var csvw *helixpipe.ReportCSVWriter
	if out.CSV != "" {
		f, err := os.Create(out.CSV)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if csvw, err = helixpipe.NewReportCSVWriter(f); err != nil {
			log.Fatal(err)
		}
	}
	var reports []*helixpipe.Report
	if !out.JSON {
		fmt.Printf("%-22s %-8s %-4s %-14s %-14s %-10s\n",
			"method", "seq", "pp", "iteration (s)", "tokens/s", "bubble %")
	}
	for r, err := range session.Execute(spec) {
		if err != nil {
			log.Fatal(err)
		}
		if csvw != nil {
			if err := csvw.Write(r); err != nil {
				log.Fatal(err)
			}
		}
		if out.JSON {
			reports = append(reports, r)
			continue
		}
		fmt.Printf("%-22s %-8d %-4d %-14.3f %-14.0f %-10.1f\n",
			r.Method, r.SeqLen, r.Stages,
			r.Sim.IterationSeconds, r.Sim.TokensPerSecond, r.Sim.BubbleFraction*100)
	}
	if out.JSON {
		if err := helixpipe.WriteReportsJSON(os.Stdout, reports); err != nil {
			log.Fatal(err)
		}
	}
	// The progress summary replaces the old one-off cache-stats print: it
	// already folds the hit count into its final line on stderr, so JSON/CSV
	// consumers of stdout never see it.
	prog.Done()
	if metricsOut {
		if err := obs.WriteProm(os.Stderr, obs.Default()); err != nil {
			log.Fatal(err)
		}
	}
}
