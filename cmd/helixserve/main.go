// Command helixserve prices interactive decoding under Helix Parallelism:
// for a model with a multi-million-token KV cache on an N-GPU node, it
// enumerates the KVP x TPA sharding lattice (KV heads sharded across TPA
// ranks, the sequence across KVP ranks), prunes shardings whose KV cache
// plus weight shard overflows device memory, simulates token-by-token
// decoding against the growing cache, and reports the best sharding under
// the chosen objective. Like every tool, the run is an experiment spec:
// -spec loads a saved one (flags become overrides) and -emit-spec writes
// the fully-resolved spec back.
//
// Usage:
//
//	helixserve -model 7B -cluster H20 -kv-heads 8 -context 1048576
//	                                   # GQA: rank the full sharding lattice
//	helixserve -model 7B -cluster H20 -mla -context 4194304
//	                                   # MLA: the lattice collapses to pure KVP
//	helixserve -spec examples/interactive_decode/gqa_1m.json -json
//	helixserve -kvp 1,2,4 -tpa 1,2 -objective throughput
//	                                   # explicit axes, ranked by tokens/s
//	helixserve -spec decode.json -perfetto decode.trace.json
//	                                   # one Perfetto process per sharding
//	helixserve -spec decode.json -listen localhost:6060
//	                                   # scrape /metrics and /debug/vars live
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	helixpipe "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixserve: ")
	sf := cliutil.RegisterSpecFlags()
	var (
		modelName   = flag.String("model", "7B", "model preset: 1.3B, 3B, 7B, 13B, tiny")
		clusterName = flag.String("cluster", "H20", "cluster: flat preset (H20, A800), topology preset (DGX-A800x4, DGX-H20x2, PCIe-box), or a topology .json file")
		contextLen  = flag.Int("context", 0, "KV-cache context length in tokens at decode start (default 1M)")
		tokens      = flag.Int("tokens", 0, "tokens to decode per session (default 32)")
		sessions    = flag.Int("sessions", 0, "concurrent decoding sessions, i.e. the batch (default 4)")
		gpus        = flag.Int("gpus", 0, "GPUs to shard across (default 8)")
		kvHeads     = flag.Int("kv-heads", 0, "GQA KV-head count (default the model's full head count, MHA)")
		mla         = flag.Bool("mla", false, "multi-head latent attention: one shared latent KV, lattice collapses to pure KVP")
		latentDim   = flag.Int("latent-dim", 0, "MLA latent dimension (default 512; requires -mla)")
		kvpList     = flag.String("kvp", "", "comma-separated KVP (sequence-shard) values; empty enumerates the lattice")
		tpaList     = flag.String("tpa", "", "comma-separated TPA (KV-head-shard) values; empty enumerates the lattice")
		objective   = flag.String("objective", "", "ranking objective: latency_per_token (default) or throughput")
		budgetGB    = flag.Float64("budget", 0, "per-GPU memory budget in GB for KV cache plus weight shard (0 = GPU capacity)")
		jsonOut     = flag.Bool("json", false, "emit the machine-readable decode report on stdout")
		perfPath    = flag.String("perfetto", "", "write a Perfetto/Chrome trace-event JSON file (one process per sharding) to this path")
		listenAddr  = flag.String("listen", "", "serve /metrics and /debug/vars on this address (e.g. localhost:6060) for the run's duration")
	)
	flag.Parse()

	spec := sf.Load()
	ov := cliutil.NewOverlay()
	ov.String("model", *modelName, &spec.Model)
	ov.String("cluster", *clusterName, &spec.Cluster)
	if spec.Decode == nil {
		spec.Decode = &helixpipe.SpecDecode{}
	}
	d := spec.Decode
	ov.Int("context", *contextLen, &d.ContextLen)
	ov.Int("tokens", *tokens, &d.DecodeTokens)
	ov.Int("sessions", *sessions, &d.Sessions)
	ov.Int("gpus", *gpus, &d.GPUs)
	ov.Int("kv-heads", *kvHeads, &d.KVHeads)
	ov.Bool("mla", *mla, &d.MLA)
	ov.Int("latent-dim", *latentDim, &d.LatentDim)
	if ov.Has("kvp") {
		d.KVP = cliutil.ParseInts("kvp", *kvpList)
	}
	if ov.Has("tpa") {
		d.TPA = cliutil.ParseInts("tpa", *tpaList)
	}
	ov.String("objective", *objective, &d.Objective)
	ov.Float64("budget", *budgetGB, &d.BudgetGB)
	out := ov.Output(spec, func(out *helixpipe.SpecOutput) {
		ov.Bool("json", *jsonOut, &out.JSON)
		ov.String("perfetto", *perfPath, &out.Perfetto)
	})

	sf.EmitResolved(spec)
	if *listenAddr != "" {
		addr, err := obs.Serve(*listenAddr, obs.Default())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "helixserve: serving /metrics and /debug/vars on http://%s\n", addr)
	}
	session, runset, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	if runset.Kind != helixpipe.RunKindDecode || runset.Decode == nil {
		log.Fatalf("the spec resolved to a %s run, not a decode run", runset.Kind)
	}
	// A live progress line on stderr tracks the sharding evaluations.
	prog := obs.NewProgress(os.Stderr, "decode", 0)
	if session, err = session.With(helixpipe.WithEventSink(prog)); err != nil {
		log.Fatal(err)
	}
	report, err := session.Decode(*runset.Decode)
	if err != nil {
		log.Fatal(err)
	}
	prog.Done()

	if out.JSON {
		if err := helixpipe.WriteDecodeReportJSON(os.Stdout, report); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(report.Summary())
		fmt.Println()
		fmt.Print(report.Table())
	}
	if out.Perfetto != "" {
		fw, err := os.Create(out.Perfetto)
		if err != nil {
			log.Fatal(err)
		}
		if err := helixpipe.WriteDecodePerfetto(fw, report); err != nil {
			fw.Close()
			log.Fatal(err)
		}
		if err := fw.Close(); err != nil {
			log.Fatal(err)
		}
		if !out.JSON {
			fmt.Printf("wrote %s\n", out.Perfetto)
		}
	}
}
