// Command helixtrain demonstrates the numeric pipeline runtime: it trains a
// tiny GPT with a chosen pipeline parallelism (goroutines as GPUs, channels
// as interconnect) and verifies gradient and loss parity against the
// single-device reference — the paper's section 4.1 semantics claim, live.
//
// Usage:
//
//	helixtrain -method HelixPipe -steps 10 -pp 2
package main

import (
	"flag"
	"fmt"
	"log"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixtrain: ")
	var (
		methodName = flag.String("method", "HelixPipe", "pipeline parallelism to train with")
		steps      = flag.Int("steps", 10, "optimizer steps")
		stages     = flag.Int("pp", 2, "pipeline stages")
		seqLen     = flag.Int("seq", 16, "sequence length")
		lr         = flag.Float64("lr", 3e-3, "Adam learning rate")
		seed       = flag.Uint64("seed", 42, "init/data seed")
	)
	flag.Parse()

	cfg := helixpipe.TrainConfig{
		Model:        helixpipe.TinyModel(),
		Method:       helixpipe.Method(*methodName),
		Stages:       *stages,
		MicroBatches: 2 * *stages * 2, // two two-fold FILO loops
		Batch:        1,
		SeqLen:       *seqLen,
		Steps:        *steps,
		LR:           *lr,
		Seed:         *seed,
	}
	fmt.Printf("training tiny GPT (%d layers, hidden %d) with %s on %d stages, %d micro batches\n",
		cfg.Model.Layers, cfg.Model.Hidden, cfg.Method, cfg.Stages, cfg.MicroBatches)

	report, err := helixpipe.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for i, loss := range report.Losses {
		fmt.Printf("step %2d  loss %.6f\n", i, loss)
	}
	if n := len(report.Losses); n >= 2 && report.Losses[n-1] < report.Losses[0] {
		fmt.Printf("loss improved %.4f -> %.4f\n", report.Losses[0], report.Losses[n-1])
	}

	// Single-iteration parity check against the single-device reference.
	m1 := helixpipe.NewNumericModel(cfg.Model, cfg.Seed)
	m2 := helixpipe.NewNumericModel(cfg.Model, cfg.Seed)
	batches := make([]helixpipe.MicroBatch, cfg.MicroBatches)
	for i := range batches {
		batches[i] = helixpipe.SyntheticBatch(cfg.Model, 1, cfg.SeqLen, uint64(i)+1)
	}
	plan, err := helixpipe.BuildHelix(
		helixpipe.ScheduleConfig{Stages: cfg.Stages, MicroBatches: cfg.MicroBatches, Layers: cfg.Model.Layers},
		helixpipe.UnitCosts(0), helixpipe.HelixOptions{Fold: 2, Recompute: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := helixpipe.RunNumeric(plan, m1, batches)
	if err != nil {
		log.Fatal(err)
	}
	refLoss, refGrads := helixpipe.ReferenceStep(m2, batches)
	fmt.Printf("parity: pipeline loss %.9f, reference loss %.9f, max grad diff %g\n",
		res.Loss, refLoss, helixpipe.GradDiff(res.Grads, refGrads))
	if res.Loss == refLoss && helixpipe.GradDiff(res.Grads, refGrads) == 0 {
		fmt.Println("HelixPipe preserves the computation semantics of single-device training (paper section 4.1)")
	} else {
		log.Fatal("parity violated!")
	}
}
