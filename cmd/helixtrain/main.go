// Command helixtrain demonstrates the numeric pipeline runtime: it trains a
// tiny GPT with a chosen pipeline parallelism (goroutines as GPUs, channels
// as interconnect) and verifies gradient and loss parity against the
// single-device reference — the paper's section 4.1 semantics claim, live.
// The parity configuration is an experiment spec (engine "numeric"): -spec
// loads a saved one and -emit-spec writes the resolved spec back. The
// training-loop knobs (-steps, -lr) are runtime flags outside the spec —
// the spec reproduces the model/schedule/geometry/seed configuration, not
// the loop length.
//
// Usage:
//
//	helixtrain -method HelixPipe -steps 10 -pp 2
//	helixtrain -emit-spec parity.json -steps 1
//	helixtrain -spec parity.json       # reproduce a saved parity run
//	helixtrain -method help            # list the registered methods
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	helixpipe "repro"
	"repro/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixtrain: ")
	sf := cliutil.RegisterSpecFlags()
	var (
		methodName = flag.String("method", "HelixPipe", "pipeline parallelism to train with (case-insensitive; 'help' lists)")
		steps      = flag.Int("steps", 10, "optimizer steps")
		stages     = flag.Int("pp", 2, "pipeline stages")
		seqLen     = flag.Int("seq", 16, "sequence length")
		lr         = flag.Float64("lr", 3e-3, "Adam learning rate")
		seed       = flag.Uint64("seed", 42, "init/data seed")
		jsonOut    = flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	)
	flag.Parse()

	spec := sf.Load()
	ov := cliutil.NewOverlay()
	switch spec.Engine {
	case "", helixpipe.SpecEngineNumeric:
		spec.Engine = helixpipe.SpecEngineNumeric
	default:
		log.Fatalf("helixtrain runs the numeric engine; the spec names %q", spec.Engine)
	}
	if spec.Model == "" {
		spec.Model = "tiny"
	}
	if spec.Cluster == "" {
		spec.Cluster = "H20"
	}
	ov.Int("pp", *stages, &spec.Stages)
	ov.Int("seq", *seqLen, &spec.SeqLen)
	ov.Uint64("seed", *seed, &spec.Seed)
	if ov.Has("method") || len(spec.Methods) == 0 {
		if strings.EqualFold(*methodName, "all") {
			log.Fatalf("helixtrain trains one method at a time; pick one of:\n%s",
				helixpipe.MethodListing())
		}
		if strings.EqualFold(*methodName, "help") {
			cliutil.FatalUnknownMethodSingle(*methodName)
		}
		spec.Methods = cliutil.MethodsArg(*methodName)
	}
	if spec.MicroBatches == 0 {
		spec.MicroBatches = 2 * spec.Stages * 2 // two two-fold FILO loops
	}
	if ov.Has("json") {
		if spec.Output == nil {
			spec.Output = &helixpipe.SpecOutput{}
		}
		spec.Output.JSON = *jsonOut
	}

	sf.EmitResolved(spec)
	session, runset, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	if len(runset.Cells) != 1 {
		log.Fatalf("helixtrain trains one method; the spec resolves to %d cells", len(runset.Cells))
	}
	method := runset.Cells[0].Method
	useJSON := spec.Output != nil && spec.Output.JSON

	cfg := helixpipe.TrainConfig{
		Model:        session.Model(),
		Method:       method,
		Stages:       session.Stages(),
		MicroBatches: session.MicroBatches(),
		Batch:        session.MicroBatchSize(),
		SeqLen:       session.SeqLen(),
		Steps:        *steps,
		LR:           *lr,
		Seed:         runset.Seed,
	}
	if !useJSON {
		fmt.Printf("training tiny GPT (%d layers, hidden %d) with %s on %d stages, %d micro batches\n",
			cfg.Model.Layers, cfg.Model.Hidden, cfg.Method, cfg.Stages, cfg.MicroBatches)
	}

	trainReport, err := helixpipe.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !useJSON {
		for i, loss := range trainReport.Losses {
			fmt.Printf("step %2d  loss %.6f\n", i, loss)
		}
		if n := len(trainReport.Losses); n >= 2 && trainReport.Losses[n-1] < trainReport.Losses[0] {
			fmt.Printf("loss improved %.4f -> %.4f\n", trainReport.Losses[0], trainReport.Losses[n-1])
		}
	}

	// Single-iteration parity check against the single-device reference,
	// through the spec-resolved session: the numeric engine and the
	// reference share initialization seed and micro batches.
	engine := session.NumericEngine(runset.Seed)
	report, err := session.Run(engine, method)
	if err != nil {
		log.Fatal(err)
	}
	ref := helixpipe.NewNumericModel(cfg.Model, runset.Seed)
	refLoss, refGrads := helixpipe.ReferenceStep(ref, engine.Batches)
	res := report.NumericResult()
	diff := helixpipe.GradDiff(res.Grads, refGrads)
	identical := res.Loss == refLoss && diff == 0

	if useJSON {
		out := struct {
			Losses    []float64         `json:"losses"`
			Parity    *helixpipe.Report `json:"parity"`
			RefLoss   float64           `json:"reference_loss"`
			GradDiff  float64           `json:"max_grad_diff"`
			Identical bool              `json:"identical"`
		}{trainReport.Losses, report, refLoss, diff, identical}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("parity: pipeline loss %.9f, reference loss %.9f, max grad diff %g\n",
			res.Loss, refLoss, diff)
	}
	if identical {
		if !useJSON {
			fmt.Printf("%s preserves the computation semantics of single-device training (paper section 4.1)\n", method)
		}
	} else {
		log.Fatal("parity violated!")
	}
}
