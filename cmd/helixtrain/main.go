// Command helixtrain demonstrates the numeric pipeline runtime: it trains a
// tiny GPT with a chosen pipeline parallelism (goroutines as GPUs, channels
// as interconnect) and verifies gradient and loss parity against the
// single-device reference — the paper's section 4.1 semantics claim, live.
//
// Usage:
//
//	helixtrain -method HelixPipe -steps 10 -pp 2
//	helixtrain -method help            # list the registered methods
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixtrain: ")
	var (
		methodName = flag.String("method", "HelixPipe", "pipeline parallelism to train with (case-insensitive; 'help' lists)")
		steps      = flag.Int("steps", 10, "optimizer steps")
		stages     = flag.Int("pp", 2, "pipeline stages")
		seqLen     = flag.Int("seq", 16, "sequence length")
		lr         = flag.Float64("lr", 3e-3, "Adam learning rate")
		seed       = flag.Uint64("seed", 42, "init/data seed")
		jsonOut    = flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	)
	flag.Parse()

	method, ok := helixpipe.LookupMethod(*methodName)
	if !ok {
		if !strings.EqualFold(*methodName, "help") {
			fmt.Fprintf(os.Stderr, "unknown method %q; the registered methods are:\n\n", *methodName)
		}
		fmt.Fprint(os.Stderr, helixpipe.MethodListing())
		os.Exit(2)
	}

	cfg := helixpipe.TrainConfig{
		Model:        helixpipe.TinyModel(),
		Method:       method,
		Stages:       *stages,
		MicroBatches: 2 * *stages * 2, // two two-fold FILO loops
		Batch:        1,
		SeqLen:       *seqLen,
		Steps:        *steps,
		LR:           *lr,
		Seed:         *seed,
	}
	if !*jsonOut {
		fmt.Printf("training tiny GPT (%d layers, hidden %d) with %s on %d stages, %d micro batches\n",
			cfg.Model.Layers, cfg.Model.Hidden, cfg.Method, cfg.Stages, cfg.MicroBatches)
	}

	trainReport, err := helixpipe.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !*jsonOut {
		for i, loss := range trainReport.Losses {
			fmt.Printf("step %2d  loss %.6f\n", i, loss)
		}
		if n := len(trainReport.Losses); n >= 2 && trainReport.Losses[n-1] < trainReport.Losses[0] {
			fmt.Printf("loss improved %.4f -> %.4f\n", trainReport.Losses[0], trainReport.Losses[n-1])
		}
	}

	// Single-iteration parity check against the single-device reference,
	// through the Session/Engine API: the numeric engine and the reference
	// share initialization seed and micro batches.
	session, err := helixpipe.NewSession(cfg.Model, helixpipe.H20Cluster(),
		helixpipe.WithSeqLen(cfg.SeqLen),
		helixpipe.WithStages(cfg.Stages),
		helixpipe.WithMicroBatches(cfg.MicroBatches))
	if err != nil {
		log.Fatal(err)
	}
	engine := session.NumericEngine(cfg.Seed)
	report, err := session.Run(engine, method)
	if err != nil {
		log.Fatal(err)
	}
	ref := helixpipe.NewNumericModel(cfg.Model, cfg.Seed)
	refLoss, refGrads := helixpipe.ReferenceStep(ref, engine.Batches)
	res := report.NumericResult()
	diff := helixpipe.GradDiff(res.Grads, refGrads)
	identical := res.Loss == refLoss && diff == 0

	if *jsonOut {
		out := struct {
			Losses    []float64         `json:"losses"`
			Parity    *helixpipe.Report `json:"parity"`
			RefLoss   float64           `json:"reference_loss"`
			GradDiff  float64           `json:"max_grad_diff"`
			Identical bool              `json:"identical"`
		}{trainReport.Losses, report, refLoss, diff, identical}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("parity: pipeline loss %.9f, reference loss %.9f, max grad diff %g\n",
			res.Loss, refLoss, diff)
	}
	if identical {
		if !*jsonOut {
			fmt.Printf("%s preserves the computation semantics of single-device training (paper section 4.1)\n", method)
		}
	} else {
		log.Fatal("parity violated!")
	}
}
