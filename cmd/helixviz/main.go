// Command helixviz renders the paper's schedule diagrams (Figures 2, 5, 6
// and 7) from actual simulated executions, as ASCII timelines and optional
// SVG files. The execution-time ratio pre:attention:post is the figures'
// didactic 1:3:2. With -spec it instead renders the timeline of an
// arbitrary experiment spec's run (tracing forced), one panel per cell.
//
// Usage:
//
//	helixviz -figure 2          # 1F1B vs HelixPipe FILO (Figure 2)
//	helixviz -figure 5          # layer-wise vs attention parallel partition
//	helixviz -figure 6          # naive vs two-fold FILO with communication
//	helixviz -figure 7          # naive vs two-fold FILO full schedules
//	helixviz -figure 7 -svgdir out/
//	helixviz -figure 7 -json    # the panel reports as JSON
//	helixviz -spec examples/spec_driven/paper_128k.json -width 120
//	                            # timeline of a committed experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	helixpipe "repro"
	"repro/internal/cliutil"
)

// panel is one sub-diagram: a method under a configuration.
type panel struct {
	name     string
	method   helixpipe.Method
	cfg      helixpipe.ScheduleConfig
	params   helixpipe.BuildParams
	commTime float64 // per-message time in the 1:3:2 unit system
}

// noRecompute disables recomputation for the didactic figures, which draw
// plain schedules without the memory strategy.
var noRecompute = false

func panels(figure int) ([]panel, error) {
	plain := helixpipe.BuildParams{HelixRecompute: &noRecompute}
	switch figure {
	case 2:
		// Figure 2: 4 micro batches, 8 layers, 4 stages, no communication.
		cfg := helixpipe.ScheduleConfig{Stages: 4, MicroBatches: 4, Layers: 8}
		return []panel{
			{"Figure 2a: 1F1B", helixpipe.Method1F1B, cfg, helixpipe.BuildParams{}, 0},
			{"Figure 2b: HelixPipe FILO", helixpipe.MethodHelixNaive, cfg, plain, 0},
		}, nil
	case 5:
		// Figure 5: one layer equivalent, two stages, two micro batches.
		cfg := helixpipe.ScheduleConfig{Stages: 2, MicroBatches: 2, Layers: 2}
		return []panel{
			{"Figure 5a: layer-wise partition", helixpipe.MethodGPipe, cfg, helixpipe.BuildParams{}, 0},
			{"Figure 5b: attention parallel partition", helixpipe.MethodHelixNaive, cfg, plain, 0},
		}, nil
	case 6:
		// Figure 6: two stages with visible communication.
		cfg := helixpipe.ScheduleConfig{Stages: 2, MicroBatches: 4, Layers: 4}
		return []panel{
			{"Figure 6a: naive FILO (blocking comm delays the pipeline)", helixpipe.MethodHelixNaive, cfg, plain, 1.0},
			{"Figure 6b: two-fold FILO (comm overlapped by attention)", helixpipe.MethodHelix, cfg, plain, 1.0},
		}, nil
	case 7:
		// Figure 7: 8 micro batches, 4 layers, 4 stages.
		cfg := helixpipe.ScheduleConfig{Stages: 4, MicroBatches: 8, Layers: 4}
		return []panel{
			{"Figure 7a: naive FILO", helixpipe.MethodHelixNaive, cfg, plain, 0.5},
			{"Figure 7b: two-fold FILO", helixpipe.MethodHelix, cfg, plain, 0.5},
		}, nil
	default:
		return nil, fmt.Errorf("unknown figure %d (supported: 2, 5, 6, 7)", figure)
	}
}

// buildPanel builds the panel's plan through the method registry and runs it
// on a traced simulator engine.
func buildPanel(p panel) (*helixpipe.Report, error) {
	plan, err := helixpipe.BuildMethod(p.method, p.cfg, helixpipe.UnitCosts(p.commTime), p.params)
	if err != nil {
		return nil, err
	}
	return helixpipe.NewSimEngine(helixpipe.SimOptions{Trace: true}).Run(plan)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixviz: ")
	sf := cliutil.RegisterSpecFlags()
	var (
		figure   = flag.Int("figure", 2, "paper figure to render: 2, 5, 6 or 7")
		width    = flag.Int("width", 140, "ASCII timeline width")
		svgDir   = flag.String("svgdir", "", "write SVG files to this directory")
		jsonOut  = flag.Bool("json", false, "emit the panel reports as JSON on stdout")
		perfetto = flag.String("perfetto", "", "write a Perfetto/Chrome trace-event JSON file of the traced cells to this path")
	)
	flag.Parse()

	if sf.Path != "" {
		renderSpec(sf, *width, *svgDir, *jsonOut, *perfetto)
		return
	}
	if sf.EmitPath != "" {
		log.Fatal("-emit-spec requires -spec; the didactic figures are not spec-driven")
	}

	ps, err := panels(*figure)
	if err != nil {
		log.Fatal(err)
	}
	var reports []*helixpipe.Report
	for i, p := range ps {
		report, err := buildPanel(p)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		reports = append(reports, report)
		if !*jsonOut {
			fmt.Println(p.name)
			fmt.Println(report.TimelineASCII(*width))
		}
		if *svgDir != "" {
			if err := os.MkdirAll(*svgDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*svgDir, fmt.Sprintf("figure%d_%c.svg", *figure, 'a'+i))
			if err := os.WriteFile(path, []byte(report.TimelineSVG(1400)), 0o644); err != nil {
				log.Fatal(err)
			}
			if !*jsonOut {
				fmt.Printf("wrote %s\n\n", path)
			}
		}
	}
	if *jsonOut {
		if err := helixpipe.WriteReportsJSON(os.Stdout, reports); err != nil {
			log.Fatal(err)
		}
	}
	writePerfetto(*perfetto, reports)
}

// writePerfetto writes the traced reports as a Perfetto trace file when a
// path was selected (flag or spec output block).
func writePerfetto(path string, reports []*helixpipe.Report) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := helixpipe.WritePerfettoTrace(f, reports); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "helixviz: wrote %s\n", path)
}

// renderSpec renders the timeline of an arbitrary experiment spec's run:
// tracing is forced on, every cell of the spec becomes one panel, streamed
// as each simulation completes.
func renderSpec(sf *cliutil.SpecFlags, width int, svgDir string, jsonOut bool, perfetto string) {
	spec := sf.Load()
	spec.Trace = true
	if spec.Engine == helixpipe.SpecEngineNumeric {
		log.Fatal("the numeric engine records no simulator spans; use a sim-engine spec")
	}
	// The spec's output selection applies here too; the -json and -perfetto
	// flags layer over it like every other tool's flags.
	ov := cliutil.NewOverlay()
	if !ov.Has("json") && spec.Output != nil {
		jsonOut = spec.Output.JSON
	}
	if !ov.Has("perfetto") && spec.Output != nil && spec.Output.Perfetto != "" {
		perfetto = spec.Output.Perfetto
	}
	sf.EmitResolved(spec)
	session, runset, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	if runset.Kind == helixpipe.RunKindTune {
		log.Fatalf("the spec holds a tune grid; run it with helixtune -spec %s", sf.Path)
	}
	var reports []*helixpipe.Report
	for report, err := range session.Execute(spec) {
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("%s seq=%d p=%d", report.Method, report.SeqLen, report.Stages)
		if !jsonOut {
			fmt.Println(name)
			fmt.Println(report.TimelineASCII(width))
		}
		if svgDir != "" {
			if err := os.MkdirAll(svgDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(svgDir, fmt.Sprintf("%s_seq%d_p%d.svg",
				report.Method, report.SeqLen, report.Stages))
			if err := os.WriteFile(path, []byte(report.TimelineSVG(1400)), 0o644); err != nil {
				log.Fatal(err)
			}
			if !jsonOut {
				fmt.Printf("wrote %s\n\n", path)
			}
		}
		if jsonOut || perfetto != "" {
			reports = append(reports, report)
		}
	}
	if jsonOut {
		if err := helixpipe.WriteReportsJSON(os.Stdout, reports); err != nil {
			log.Fatal(err)
		}
	}
	writePerfetto(perfetto, reports)
}
