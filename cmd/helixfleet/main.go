// Command helixfleet simulates a stream of training jobs sharing one GPU
// cluster — the capacity-planning question a single-job simulation cannot
// answer: how many long-sequence jobs per hour can this cluster sustain,
// at what queue wait, under which admission and placement policy? Jobs are
// drawn from the spec's fleet templates (or replayed from a trace), an
// admission policy carves devices for each, and every job's pipeline is
// priced by the real simulator through a content-hashed spec→Report cache,
// so repeated job shapes never re-simulate.
//
// Usage:
//
//	helixfleet -spec examples/fleet_capacity/fleet_stream.json
//	                                   # run the committed capacity study
//	helixfleet -spec fleet.json -policy bestfit
//	                                   # same stream, different policy
//	helixfleet -spec fleet.json -policy help
//	                                   # list the admission policies
//	helixfleet -spec fleet.json -json > report.json
//	helixfleet -spec fleet.json -csv jobs.csv
//	helixfleet -spec base.json -emit-spec resolved.json
//	                                   # save the fully-resolved spec
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	helixpipe "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixfleet: ")
	sf := cliutil.RegisterSpecFlags()
	var (
		policyName = flag.String("policy", "", "admission/placement policy (fifo, bestfit, worstfit, backfill, preempt; 'help' to list)")
		jobs       = flag.Int("jobs", 0, "number of jobs to generate (default 50)")
		arrival    = flag.String("arrival", "", "arrival generator: poisson or bursty")
		ratePerHr  = flag.Float64("rate", 0, "mean arrival rate in jobs/hour (default 12)")
		seed       = flag.Uint64("fleet-seed", 0, "arrival and template-draw seed (default 1)")
		tracePath  = flag.String("trace", "", "replay arrivals from a JSON trace file instead of generating them")
		jsonOut    = flag.Bool("json", false, "emit the machine-readable fleet report on stdout")
		csvPath    = flag.String("csv", "", "also write the per-job records as CSV to this path")
		perfPath   = flag.String("perfetto", "", "write a Perfetto/Chrome trace-event JSON file (one process per job) to this path")
		listenAddr = flag.String("listen", "", "serve /metrics and /debug/vars on this address (e.g. localhost:6060) for the run's duration")
	)
	flag.Parse()

	if *listenAddr != "" {
		addr, err := obs.Serve(*listenAddr, obs.Default())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "helixfleet: serving /metrics and /debug/vars on http://%s\n", addr)
	}

	if strings.EqualFold(*policyName, "help") {
		fmt.Fprint(os.Stderr, helixpipe.FleetPolicyListing())
		os.Exit(2)
	}
	if sf.Path == "" {
		log.Fatalf("a fleet run needs a spec with a fleet section: helixfleet -spec examples/fleet_capacity/fleet_stream.json")
	}
	spec := sf.Load()
	if spec.Fleet == nil {
		log.Fatalf("%s has no fleet section; add one or run it with helixsim", sf.Path)
	}
	ov := cliutil.NewOverlay()
	f := spec.Fleet
	ov.String("policy", *policyName, &f.Policy)
	ov.String("arrival", *arrival, &f.Arrival)
	ov.String("trace", *tracePath, &f.Trace)
	if ov.Has("jobs") {
		f.Jobs = *jobs
	}
	if ov.Has("rate") {
		f.RatePerHour = *ratePerHr
	}
	if ov.Has("fleet-seed") {
		f.Seed = *seed
	}
	out := ov.Output(spec, func(out *helixpipe.SpecOutput) {
		ov.Bool("json", *jsonOut, &out.JSON)
		ov.String("csv", *csvPath, &out.CSV)
		ov.String("perfetto", *perfPath, &out.Perfetto)
	})

	sf.EmitResolved(spec)
	session, runset, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	if runset.Kind != helixpipe.RunKindFleet || runset.Fleet == nil {
		log.Fatalf("the spec resolved to a %s run, not a fleet run", runset.Kind)
	}

	fs := *runset.Fleet
	// Share one observable cache across the run so the simulator cache
	// stats (hits, singleflight waits, cached bytes) can print at the end,
	// and feed the engine probe into a live progress line on stderr.
	cache := fs.Cache
	if cache == nil {
		cache = helixpipe.NewReportCache()
		fs.Cache = cache
	}
	prog := obs.NewProgress(os.Stderr, "fleet", 0)
	inner := fs.Probe
	fs.Probe = func(p helixpipe.FleetProbeEvent) {
		prog.Line(fmt.Sprintf("t=%.0fs  %d queued  %d running  %d preemptions",
			p.TimeSec, p.Queued, p.Running, p.Preemptions))
		if inner != nil {
			inner(p)
		}
	}
	report, err := session.Fleet(fs)
	if err != nil {
		log.Fatal(err)
	}
	prog.Done()
	cs := cache.StatsDetail()
	fmt.Fprintf(os.Stderr,
		"helixfleet: sim cache: %d hits, %d misses, %d singleflight waits, %d entries (%.1f KB cached)\n",
		cs.Hits, cs.Misses, cs.SingleflightWaits, cs.Entries, float64(cs.Bytes)/1024)
	if out.JSON {
		if err := helixpipe.WriteFleetReportJSON(os.Stdout, report); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(report.Summary())
		printLinkTraffic(report)
	}
	if out.CSV != "" {
		fw, err := os.Create(out.CSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := helixpipe.WriteFleetReportCSV(fw, report); err != nil {
			log.Fatal(err)
		}
		if err := fw.Close(); err != nil {
			log.Fatal(err)
		}
		if !out.JSON {
			fmt.Printf("wrote %s\n", out.CSV)
		}
	}
	if out.Perfetto != "" {
		fw, err := os.Create(out.Perfetto)
		if err != nil {
			log.Fatal(err)
		}
		if err := helixpipe.WriteFleetPerfetto(fw, report); err != nil {
			fw.Close()
			log.Fatal(err)
		}
		if err := fw.Close(); err != nil {
			log.Fatal(err)
		}
		if !out.JSON {
			fmt.Printf("wrote %s\n", out.Perfetto)
		}
	}
}

func printLinkTraffic(r *helixpipe.FleetReport) {
	for _, lt := range r.LinkTraffic {
		fmt.Printf("  link %-8s %10.1f GB in %d transfers (%.1fs wire time)\n",
			lt.Class, float64(lt.Bytes)/(1<<30), lt.Transfers, lt.Seconds)
	}
}
