// Command helixsim simulates one training iteration of a pipeline
// parallelism on a simulated GPU cluster and prints the per-stage
// utilization, memory and throughput summary.
//
// Usage:
//
//	helixsim -model 7B -cluster H20 -seq 131072 -pp 8 -method HelixPipe [-timeline] [-svg out.svg]
//	helixsim -method all -json         # every registered method, JSON reports
//	helixsim -method help              # list the registered methods
//	helixsim -dist bimodal -docs 64 -minseq 8192 -seq 131072 -method 1F1B
//	                                   # variable-length workload: sample
//	                                   # document lengths, pack under -seq
//	                                   # tokens per micro batch, simulate
//	helixsim -cluster DGX-A800x4 -pp 16 -placement greedy
//	                                   # topology-aware: place 16 stages on a
//	                                   # 4-node cluster, NVLink inside nodes,
//	                                   # IB between them
//	helixsim -cluster my-cluster.json -placement roundrobin -perturb slow=3x2.0,link=ibx0.5
//	                                   # custom topology with a straggler and
//	                                   # a degraded IB fabric
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixsim: ")
	var (
		modelName   = flag.String("model", "7B", "model preset: 1.3B, 3B, 7B, 13B, tiny")
		clusterName = flag.String("cluster", "H20", "cluster: flat preset (H20, A800), topology preset (DGX-A800x4, DGX-H20x2, PCIe-box), or a topology .json file")
		seqLen      = flag.Int("seq", 131072, "sequence length")
		stages      = flag.Int("pp", 8, "pipeline size (stages, one node each)")
		microBatch  = flag.Int("b", 1, "micro batch size")
		numMB       = flag.Int("m", 0, "micro batches per iteration (default 2*pp)")
		methodName  = flag.String("method", "HelixPipe", "schedule name (case-insensitive), 'all', or 'help' to list")
		timeline    = flag.Bool("timeline", false, "print an ASCII timeline")
		svgPath     = flag.String("svg", "", "write an SVG timeline to this path")
		jsonOut     = flag.Bool("json", false, "emit machine-readable JSON reports on stdout")
		distName    = flag.String("dist", "", "variable-length workload: document-length distribution (uniform, bimodal, longtail)")
		docs        = flag.Int("docs", 64, "variable-length workload: documents to sample")
		minSeq      = flag.Int("minseq", 0, "variable-length workload: shortest document (default seq/16)")
		distSeed    = flag.Uint64("dist-seed", 42, "variable-length workload: sampling seed")
		orderName   = flag.String("order", "", "variable-length workload: micro-batch order (packed, longest, shortest, balanced)")
		placeName   = flag.String("placement", "", "topology clusters: placement strategy (contiguous, roundrobin, greedy; default contiguous)")
		placeSeed   = flag.Uint64("place-seed", 1, "topology clusters: greedy placement search seed")
		perturbSpec = flag.String("perturb", "", "topology clusters: fault injection, e.g. slow=3x2.0,link=ibx0.5,jitter=0.05,seed=7")
	)
	flag.Parse()

	methods, err := resolveMethods(*methodName)
	if err != nil {
		log.Fatal(err)
	}

	mc, ok := helixpipe.ModelByName(*modelName)
	if !ok {
		log.Fatalf("unknown model %q", *modelName)
	}
	cl, topo, err := helixpipe.ResolveCluster(*clusterName)
	if err != nil {
		log.Fatal(err)
	}
	opts := []helixpipe.Option{
		helixpipe.WithSeqLen(*seqLen),
		helixpipe.WithStages(*stages),
		helixpipe.WithMicroBatchSize(*microBatch),
	}
	if topo != nil {
		opts = append(opts, helixpipe.WithCluster(*topo))
	}
	if *perturbSpec != "" {
		if topo == nil {
			log.Fatalf("-perturb requires a topology cluster (-cluster DGX-A800x4, ...)")
		}
		perturb, err := helixpipe.ParsePerturb(*perturbSpec)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, helixpipe.WithPerturb(perturb))
	}
	if *numMB > 0 {
		opts = append(opts, helixpipe.WithMicroBatches(*numMB))
	}
	if *timeline || *svgPath != "" {
		opts = append(opts, helixpipe.WithTrace())
	}
	if *distName != "" {
		dist, ok := helixpipe.LengthDistByName(*distName)
		if !ok {
			log.Fatalf("unknown distribution %q (uniform, bimodal, longtail)", *distName)
		}
		lo := *minSeq
		if lo <= 0 {
			lo = *seqLen / 16
			if lo < 1 {
				lo = 1
			}
		}
		// -seq doubles as the longest document and the per-micro-batch token
		// budget, so a full-length document fills one micro batch alone.
		workload, err := helixpipe.SyntheticWorkload(dist, *docs, lo, *seqLen, int64(*seqLen), *distSeed)
		if err != nil {
			log.Fatal(err)
		}
		if *orderName != "" {
			order, ok := helixpipe.MBOrderByName(*orderName)
			if !ok {
				log.Fatalf("unknown order %q (packed, longest, shortest, balanced)", *orderName)
			}
			if workload, err = workload.Ordered(order); err != nil {
				log.Fatal(err)
			}
		}
		opts = append(opts, helixpipe.WithWorkload(workload))
	} else if *orderName != "" {
		log.Fatalf("-order requires a variable-length workload (-dist)")
	}
	if *placeName != "" && topo == nil {
		log.Fatalf("-placement requires a topology cluster (-cluster DGX-A800x4, ...)")
	}
	session, err := helixpipe.NewSession(mc, cl, opts...)
	if err != nil {
		log.Fatal(err)
	}

	var reports []*helixpipe.Report
	for _, method := range methods {
		run := session
		if *placeName != "" {
			// Placement search uses the method's own traffic matrix, so each
			// method derives its own placed session.
			placement, err := session.PlacementFor(method, *placeName, *placeSeed)
			if err != nil {
				log.Fatal(err)
			}
			if run, err = session.With(helixpipe.WithPlacement(placement)); err != nil {
				log.Fatal(err)
			}
		}
		report, err := run.Simulate(method)
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, report)
	}

	if *jsonOut {
		if err := helixpipe.WriteReportsJSON(os.Stdout, reports); err != nil {
			log.Fatal(err)
		}
	}
	for _, report := range reports {
		if !*jsonOut {
			printReport(report)
			if *timeline {
				fmt.Println(report.TimelineASCII(140))
			}
		}
		if *svgPath != "" {
			path := *svgPath
			if len(methods) > 1 {
				path = strings.TrimSuffix(path, ".svg") + "_" + string(report.Method) + ".svg"
			}
			if err := os.WriteFile(path, []byte(report.TimelineSVG(1400)), 0o644); err != nil {
				log.Fatal(err)
			}
			if !*jsonOut {
				fmt.Printf("wrote %s\n", path)
			}
		}
	}
}

// resolveMethods expands the -method flag into registry method names,
// case-insensitively. "help" (or an unknown name) prints the registry's
// method list.
func resolveMethods(name string) ([]helixpipe.Method, error) {
	if strings.EqualFold(name, "all") {
		return helixpipe.Methods(), nil
	}
	var out []helixpipe.Method
	for _, part := range strings.Split(name, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, ok := helixpipe.LookupMethod(part)
		if !ok {
			if !strings.EqualFold(part, "help") {
				fmt.Fprintf(os.Stderr, "unknown method %q; the registered methods are:\n\n", part)
			}
			fmt.Fprint(os.Stderr, helixpipe.MethodListing())
			fmt.Fprintf(os.Stderr, "  %-22s run every registered method\n", "all")
			os.Exit(2)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no method given")
	}
	return out, nil
}

func printReport(r *helixpipe.Report) {
	s := r.Sim
	fmt.Printf("%-22s iteration %8.3f s   %10.0f tokens/s   bubble %6.1f%%   peak stash %.1f GB\n",
		r.Method, s.IterationSeconds, s.TokensPerSecond,
		s.BubbleFraction*100, float64(s.MaxPeakStashBytes)/(1<<30))
	if len(r.SeqLenHistogram) > 0 {
		fmt.Printf("  %d mixed-length micro batches, %d tokens/iteration; seq lens:",
			r.MicroBatches, r.TokensPerIteration)
		for _, b := range r.SeqLenHistogram {
			fmt.Printf("  %d-%d x%d", b.MinSeqLen, b.MaxSeqLen, b.MicroBatches)
		}
		fmt.Println()
	}
	if r.PadFraction > 0 {
		fmt.Printf("  padding: %d real of %d padded tokens (%.1f%% waste)\n",
			r.RealTokens, r.TokensPerIteration, r.PadFraction*100)
	}
	if len(r.Placement) > 0 {
		fmt.Printf("  topology %s, placement %s %v\n", r.Topology, r.PlacementStrategy, r.Placement)
	}
	for _, lt := range s.LinkTraffic {
		fmt.Printf("  link %-8s %8.1f GB in %d transfers (%.2fs wire time)\n",
			lt.Class, float64(lt.Bytes)/(1<<30), lt.Transfers, lt.Seconds)
	}
	for _, st := range s.PerStage {
		fmt.Printf("  P%-2d busy %7.2fs  idle %6.2fs  recv-wait %6.2fs  comm-stall %6.2fs  stash %.1f GB  sent %.1f GB\n",
			st.Stage, st.BusySeconds, st.IdleSeconds, st.WaitSeconds,
			st.CommStallSeconds, float64(st.PeakStashBytes)/(1<<30),
			float64(st.BytesSent)/(1<<30))
	}
}
