// Command helixsim simulates one training iteration of a pipeline
// parallelism on a simulated GPU cluster and prints the per-stage
// utilization, memory and throughput summary.
//
// Usage:
//
//	helixsim -model 7B -cluster H20 -seq 131072 -pp 8 -method HelixPipe [-timeline] [-svg out.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixsim: ")
	var (
		modelName   = flag.String("model", "7B", "model preset: 1.3B, 3B, 7B, 13B")
		clusterName = flag.String("cluster", "H20", "cluster preset: H20 or A800")
		seqLen      = flag.Int("seq", 131072, "sequence length")
		stages      = flag.Int("pp", 8, "pipeline size (stages, one node each)")
		microBatch  = flag.Int("b", 1, "micro batch size")
		numMB       = flag.Int("m", 0, "micro batches per iteration (default 2*pp)")
		methodName  = flag.String("method", "HelixPipe", "schedule: GPipe, 1F1B, Interleaved1F1B, ZB1P, AdaPipe, HelixPipe-naive, HelixPipe, HelixPipe-norecompute, or 'all'")
		timeline    = flag.Bool("timeline", false, "print an ASCII timeline")
		svgPath     = flag.String("svg", "", "write an SVG timeline to this path")
	)
	flag.Parse()

	mc, ok := modelByName(*modelName)
	if !ok {
		log.Fatalf("unknown model %q", *modelName)
	}
	cl, ok := clusterByName(*clusterName)
	if !ok {
		log.Fatalf("unknown cluster %q", *clusterName)
	}
	s := helixpipe.NewScenario(mc, cl, *seqLen, *stages)
	s.MicroBatch = *microBatch
	if *numMB > 0 {
		s.MicroBatches = *numMB
	}

	methods := []helixpipe.Method{helixpipe.Method(*methodName)}
	if *methodName == "all" {
		methods = helixpipe.Methods()
	}
	for _, method := range methods {
		plan, err := helixpipe.BuildPlan(s, method)
		if err != nil {
			log.Fatalf("%s: %v", method, err)
		}
		opt := helixpipe.SimOptions{Trace: *timeline || *svgPath != "", SMPenalty: cl.CommSMPenalty}
		res, err := helixpipe.Simulate(plan, opt)
		if err != nil {
			log.Fatalf("%s: %v", method, err)
		}
		tokens := s.TokensPerIteration()
		fmt.Printf("%-22s iteration %8.3f s   %10.0f tokens/s   bubble %6.1f%%   peak stash %.1f GB\n",
			method, res.IterationSeconds, res.Throughput(tokens),
			res.BubbleSeconds()/res.IterationSeconds*100,
			float64(res.MaxPeakStashBytes())/(1<<30))
		for st := 0; st < res.Stages; st++ {
			fmt.Printf("  P%-2d busy %7.2fs  idle %6.2fs  recv-wait %6.2fs  comm-stall %6.2fs  stash %.1f GB  sent %.1f GB\n",
				st, res.BusySeconds[st], res.IdleSeconds[st], res.WaitSeconds[st],
				res.CommStallSeconds[st], float64(res.PeakStashBytes[st])/(1<<30),
				float64(res.BytesSent[st])/(1<<30))
		}
		if *timeline {
			fmt.Println(helixpipe.TimelineASCII(res, 140))
		}
		if *svgPath != "" {
			if err := os.WriteFile(*svgPath, []byte(helixpipe.TimelineSVG(res, 1400)), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *svgPath)
		}
	}
}

func modelByName(name string) (helixpipe.ModelConfig, bool) {
	switch name {
	case "1.3B":
		return helixpipe.Model1B3(), true
	case "3B":
		return helixpipe.Model3B(), true
	case "7B":
		return helixpipe.Model7B(), true
	case "13B":
		return helixpipe.Model13B(), true
	case "tiny":
		return helixpipe.TinyModel(), true
	}
	return helixpipe.ModelConfig{}, false
}

func clusterByName(name string) (helixpipe.ClusterSpec, bool) {
	switch name {
	case "H20":
		return helixpipe.H20Cluster(), true
	case "A800":
		return helixpipe.A800Cluster(), true
	}
	return helixpipe.ClusterSpec{}, false
}
