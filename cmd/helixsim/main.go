// Command helixsim simulates one training iteration of a pipeline
// parallelism on a simulated GPU cluster and prints the per-stage
// utilization, memory and throughput summary. Every invocation is an
// experiment spec under the hood: -spec loads a saved one (flags become
// overrides layered onto it) and -emit-spec writes back the fully-resolved
// spec for exact reproduction.
//
// Usage:
//
//	helixsim -model 7B -cluster H20 -seq 131072 -pp 8 -method HelixPipe [-timeline] [-svg out.svg]
//	helixsim -method all -json         # every registered method, JSON reports
//	helixsim -method help              # list the registered methods
//	helixsim -spec examples/spec_driven/paper_128k.json
//	                                   # reproduce a committed experiment
//	helixsim -spec base.json -pp 4 -emit-spec resolved.json
//	                                   # override one axis, save the result
//	helixsim -dist bimodal -docs 64 -minseq 8192 -seq 131072 -method 1F1B
//	                                   # variable-length workload: sample
//	                                   # document lengths, pack under -seq
//	                                   # tokens per micro batch, simulate
//	helixsim -cluster DGX-A800x4 -pp 16 -placement greedy
//	                                   # topology-aware: place 16 stages on a
//	                                   # 4-node cluster, NVLink inside nodes,
//	                                   # IB between them
//	helixsim -cluster my-cluster.json -placement roundrobin -perturb slow=3x2.0,link=ibx0.5
//	                                   # custom topology with a straggler and
//	                                   # a degraded IB fabric
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	helixpipe "repro"
	"repro/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixsim: ")
	sf := cliutil.RegisterSpecFlags()
	var (
		modelName   = flag.String("model", "7B", "model preset: 1.3B, 3B, 7B, 13B, tiny")
		clusterName = flag.String("cluster", "H20", "cluster: flat preset (H20, A800), topology preset (DGX-A800x4, DGX-H20x2, PCIe-box), or a topology .json file")
		seqLen      = flag.Int("seq", 131072, "sequence length")
		stages      = flag.Int("pp", 8, "pipeline size (stages, one node each)")
		microBatch  = flag.Int("b", 1, "micro batch size")
		numMB       = flag.Int("m", 0, "micro batches per iteration (default 2*pp)")
		methodName  = flag.String("method", "HelixPipe", "schedule name (case-insensitive), 'all', or 'help' to list")
		timeline    = flag.Bool("timeline", false, "print an ASCII timeline")
		svgPath     = flag.String("svg", "", "write an SVG timeline to this path")
		jsonOut     = flag.Bool("json", false, "emit machine-readable JSON reports on stdout")
		csvPath     = flag.String("csv", "", "also write the reports as CSV to this path")
		perfPath    = flag.String("perfetto", "", "write a Perfetto/Chrome trace-event JSON file to this path (forces tracing)")
		distName    = flag.String("dist", "", "variable-length workload: document-length distribution (uniform, bimodal, longtail)")
		docs        = flag.Int("docs", 64, "variable-length workload: documents to sample")
		minSeq      = flag.Int("minseq", 0, "variable-length workload: shortest document (default seq/16)")
		distSeed    = flag.Uint64("dist-seed", 42, "variable-length workload: sampling seed")
		orderName   = flag.String("order", "", "variable-length workload: micro-batch order (packed, longest, shortest, balanced)")
		placeName   = flag.String("placement", "", "topology clusters: placement strategy (contiguous, roundrobin, greedy; default contiguous)")
		placeSeed   = flag.Uint64("place-seed", 1, "topology clusters: greedy placement search seed")
		perturbSpec = flag.String("perturb", "", "topology clusters: fault injection, e.g. slow=3x2.0,link=ibx0.5,jitter=0.05,seed=7")
	)
	flag.Parse()

	spec := sf.Load()
	ov := cliutil.NewOverlay()
	ov.String("model", *modelName, &spec.Model)
	ov.String("cluster", *clusterName, &spec.Cluster)
	ov.Int("seq", *seqLen, &spec.SeqLen)
	ov.Int("pp", *stages, &spec.Stages)
	ov.Int("b", *microBatch, &spec.MicroBatchSize)
	if ov.Has("m") {
		spec.MicroBatches = *numMB
	}
	// The HelixPipe flag default applies to flag-only runs; a spec file
	// that omits methods keeps the spec semantics (every registered
	// method), the same as the library and the other tools.
	if ov.Has("method") || (sf.Path == "" && len(spec.Methods) == 0) {
		spec.Methods = cliutil.MethodsArg(*methodName)
	}
	if *orderName != "" && *distName == "" && spec.Workload == nil {
		log.Fatalf("-order requires a variable-length workload (-dist)")
	}
	ov.Workload(spec, *distName, *docs, *minSeq, 0, *distSeed, *orderName)
	ov.String("placement", *placeName, &spec.Placement)
	ov.Uint64("place-seed", *placeSeed, &spec.PlacementSeed)
	ov.String("perturb", *perturbSpec, &spec.Perturb)
	out := ov.Output(spec, func(out *helixpipe.SpecOutput) {
		ov.Bool("json", *jsonOut, &out.JSON)
		ov.Bool("timeline", *timeline, &out.Timeline)
		ov.String("svg", *svgPath, &out.SVG)
		ov.String("csv", *csvPath, &out.CSV)
		ov.String("perfetto", *perfPath, &out.Perfetto)
	})

	sf.EmitResolved(spec)
	session, runset, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	if runset.Kind == helixpipe.RunKindTune {
		log.Fatalf("the spec holds a tune grid; run it with helixtune -spec %s", sf.Path)
	}
	for _, note := range spec.Notes() {
		fmt.Fprintf(os.Stderr, "helixsim: note: %s\n", note)
	}

	// Execute streams the reports in cell order; text output prints each as
	// it lands, JSON and CSV collect the array.
	var reports []*helixpipe.Report
	multi := len(runset.Cells) > 1
	for report, err := range session.Execute(spec) {
		if err != nil {
			log.Fatal(err)
		}
		if !out.JSON {
			printReport(report)
			if out.Timeline {
				fmt.Println(report.TimelineASCII(140))
			}
		}
		if out.SVG != "" {
			path := out.SVG
			if multi {
				suffix := "_" + string(report.Method)
				if runset.Kind == helixpipe.RunKindSweep {
					// Sweep cells repeat methods; the geometry keeps every
					// cell's file distinct.
					suffix += fmt.Sprintf("_seq%d_p%d", report.SeqLen, report.Stages)
				}
				path = strings.TrimSuffix(path, ".svg") + suffix + ".svg"
			}
			if err := os.WriteFile(path, []byte(report.TimelineSVG(1400)), 0o644); err != nil {
				log.Fatal(err)
			}
			if !out.JSON {
				fmt.Printf("wrote %s\n", path)
			}
		}
		// Only the collected output modes need the slice; text mode stays
		// streaming and holds nothing.
		if out.JSON || out.CSV != "" || out.Perfetto != "" {
			reports = append(reports, report)
		}
	}
	if out.JSON {
		if err := helixpipe.WriteReportsJSON(os.Stdout, reports); err != nil {
			log.Fatal(err)
		}
	}
	if out.CSV != "" {
		f, err := os.Create(out.CSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := helixpipe.WriteReportsCSV(f, reports); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if out.Perfetto != "" {
		f, err := os.Create(out.Perfetto)
		if err != nil {
			log.Fatal(err)
		}
		if err := helixpipe.WritePerfettoTrace(f, reports); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if !out.JSON {
			fmt.Printf("wrote %s\n", out.Perfetto)
		}
	}
}

func printReport(r *helixpipe.Report) {
	if r.Sim == nil {
		// A numeric-engine spec run has no simulator metrics.
		if r.Numeric != nil {
			fmt.Printf("%-22s numeric loss %.6f\n", r.Method, r.Numeric.Loss)
		}
		return
	}
	s := r.Sim
	fmt.Printf("%-22s iteration %8.3f s   %10.0f tokens/s   bubble %6.1f%%   peak stash %.1f GB\n",
		r.Method, s.IterationSeconds, s.TokensPerSecond,
		s.BubbleFraction*100, float64(s.MaxPeakStashBytes)/(1<<30))
	if len(r.SeqLenHistogram) > 0 {
		fmt.Printf("  %d mixed-length micro batches, %d tokens/iteration; seq lens:",
			r.MicroBatches, r.TokensPerIteration)
		for _, b := range r.SeqLenHistogram {
			fmt.Printf("  %d-%d x%d", b.MinSeqLen, b.MaxSeqLen, b.MicroBatches)
		}
		fmt.Println()
	}
	if r.PadFraction > 0 {
		fmt.Printf("  padding: %d real of %d padded tokens (%.1f%% waste)\n",
			r.RealTokens, r.TokensPerIteration, r.PadFraction*100)
	}
	if len(r.Placement) > 0 {
		fmt.Printf("  topology %s, placement %s %v\n", r.Topology, r.PlacementStrategy, r.Placement)
	}
	for _, lt := range s.LinkTraffic {
		fmt.Printf("  link %-8s %8.1f GB in %d transfers (%.2fs wire time)\n",
			lt.Class, float64(lt.Bytes)/(1<<30), lt.Transfers, lt.Seconds)
	}
	for _, st := range s.PerStage {
		fmt.Printf("  P%-2d busy %7.2fs  idle %6.2fs  recv-wait %6.2fs  comm-stall %6.2fs  stash %.1f GB  sent %.1f GB\n",
			st.Stage, st.BusySeconds, st.IdleSeconds, st.WaitSeconds,
			st.CommStallSeconds, float64(st.PeakStashBytes)/(1<<30),
			float64(st.BytesSent)/(1<<30))
	}
}
