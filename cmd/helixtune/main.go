// Command helixtune searches the pipeline-parallelism configuration space
// for a model on a cluster under a per-GPU memory budget: it enumerates the
// method x seqlen x stages x micro-batch grid, prunes memory-infeasible
// points with cheap caching-allocator estimates before simulating, fans the
// survivors across a worker pool, and prints the best schedule per sequence
// length plus the throughput-vs-peak-memory Pareto frontier. Like every
// tool, the search is an experiment spec: -spec loads a saved one (flags
// become overrides) and -emit-spec writes the fully-resolved grid back.
//
// Usage:
//
//	helixtune -model 3B -cluster A800 -budget 64
//	helixtune -seq 32768,65536,131072 -pp 2,4,8 -m 0,16 -json
//	helixtune -method helixpipe,1f1b,zb1p -csv points.csv
//	helixtune -method help              # list the registered methods
//	helixtune -spec examples/spec_driven/tune_a800_64gb.json
//	helixtune -dist longtail -docs 64 -minseq 8192 -maxseq 131072
//	                                    # also rank methods on a sampled
//	                                    # variable-length workload
//	helixtune -dist longtail -orders packed,longest,shortest,balanced
//	                                    # cross micro-batch execution orders
//	                                    # with methods so order, method and
//	                                    # placement rank jointly
//	helixtune -cluster DGX-A800x4 -pp 8,16,32
//	                                    # topology-aware: search placements
//	                                    # (contiguous, roundrobin, greedy) per
//	                                    # config and report the best one
//	helixtune -cluster DGX-A800x4 -perturb link=ibx0.5
//	                                    # rank configurations under a degraded
//	                                    # inter-node fabric
//	helixtune -objective latency_per_token -target 0.002
//	                                    # rank by seconds/token and stop the
//	                                    # search once a config meets the target
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	helixpipe "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixtune: ")
	sf := cliutil.RegisterSpecFlags()
	var (
		modelName   = flag.String("model", "3B", "model preset: 1.3B, 3B, 7B, 13B, tiny")
		clusterName = flag.String("cluster", "A800", "cluster: flat preset (H20, A800), topology preset (DGX-A800x4, DGX-H20x2, PCIe-box), or a topology .json file")
		seqList     = flag.String("seq", "32768,65536,131072", "comma-separated sequence lengths to tune for")
		ppList      = flag.String("pp", "2,4,8", "comma-separated candidate pipeline sizes")
		mbList      = flag.String("m", "0", "comma-separated candidate micro-batch counts (0 = 2*pp)")
		bList       = flag.String("b", "1", "comma-separated candidate micro-batch sizes")
		methodsFlag = flag.String("method", "", "comma-separated methods to consider (default all; 'help' lists)")
		budgetGB    = flag.Float64("budget", 0, "per-GPU memory budget in GB, model states included (0 = GPU capacity)")
		objective   = flag.String("objective", "", "ranking objective: throughput (default) or latency_per_token")
		target      = flag.Float64("target", 0, "early-stopping target in the objective's unit (tokens/s or seconds/token); 0 searches the full grid")
		workers     = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		jsonOut     = flag.Bool("json", false, "emit the full machine-readable result as JSON on stdout")
		csvPath     = flag.String("csv", "", "also write every evaluated point as CSV to this path")
		distName    = flag.String("dist", "", "also tune a variable-length workload: length distribution (uniform, bimodal, longtail)")
		docs        = flag.Int("docs", 64, "variable-length workload: documents to sample")
		minSeq      = flag.Int("minseq", 8192, "variable-length workload: shortest document")
		maxSeq      = flag.Int("maxseq", 131072, "variable-length workload: longest document and micro-batch token budget")
		distSeed    = flag.Uint64("dist-seed", 42, "variable-length workload: sampling seed")
		ordersList  = flag.String("orders", "", "variable-length workload: comma-separated micro-batch orders to cross with methods (packed, longest, shortest, balanced)")
		placeList   = flag.String("placement", "", "topology clusters: comma-separated placement strategies to search (default contiguous,roundrobin,greedy)")
		perturbSpec = flag.String("perturb", "", "topology clusters: fault injection, e.g. slow=3x2.0,link=ibx0.5")
	)
	flag.Parse()

	spec := sf.Load()
	ov := cliutil.NewOverlay()
	ov.String("model", *modelName, &spec.Model)
	ov.String("cluster", *clusterName, &spec.Cluster)
	if ov.Has("method") || len(spec.Methods) == 0 {
		spec.Methods = cliutil.MethodsArg(*methodsFlag)
	}
	ov.Workload(spec, *distName, *docs, *minSeq, *maxSeq, *distSeed, "")
	if spec.Tune == nil {
		spec.Tune = &helixpipe.SpecTune{}
	}
	t := spec.Tune
	// The default fixed-length axis applies on flag-driven runs (with
	// -dist it ranks the workload *in addition* to the fixed grid, as
	// documented); only a spec file's own workload keeps the search
	// workload-only.
	if ov.Has("seq") || (len(t.SeqLens) == 0 && (spec.Workload == nil || ov.Has("dist"))) {
		t.SeqLens = cliutil.ParseInts("seq", *seqList)
	}
	ov.Ints("pp", *ppList, &t.Stages)
	ov.Ints("m", *mbList, &t.MicroBatches)
	ov.Ints("b", *bList, &t.MicroBatchSizes)
	ov.Float64("budget", *budgetGB, &t.BudgetGB)
	ov.String("objective", *objective, &t.Objective)
	ov.Float64("target", *target, &t.Budget)
	ov.Int("workers", *workers, &t.Workers)
	if ov.Has("placement") {
		t.Placements = cliutil.SplitList(*placeList)
	}
	if ov.Has("orders") {
		t.Orders = cliutil.SplitList(*ordersList)
	}
	ov.String("perturb", *perturbSpec, &spec.Perturb)
	out := ov.Output(spec, func(out *helixpipe.SpecOutput) {
		ov.Bool("json", *jsonOut, &out.JSON)
		ov.String("csv", *csvPath, &out.CSV)
	})

	sf.EmitResolved(spec)
	session, runset, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	// A live progress line on stderr tracks the survivor evaluations; the
	// search publishes the grid size once pruning settles, so the total
	// appears as soon as the first point lands.
	prog := obs.NewProgress(os.Stderr, "tune", 0)
	if session, err = session.With(helixpipe.WithEventSink(prog)); err != nil {
		log.Fatal(err)
	}
	result, err := session.Autotune(*runset.Tune)
	if err != nil {
		log.Fatal(err)
	}
	prog.Done()

	if out.CSV != "" {
		f, err := os.Create(out.CSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := helixpipe.WriteTuneResultCSV(f, result); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if out.JSON {
		if err := helixpipe.WriteTuneResultJSON(os.Stdout, result); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(result.Summary())
	fmt.Println()
	fmt.Print(result.BestTable())
	fmt.Println()
	fmt.Print(result.FrontierTable())
	for _, e := range result.Errors {
		fmt.Fprintf(os.Stderr, "skipped: %s\n", e)
	}
}
