// Command helixtune searches the pipeline-parallelism configuration space
// for a model on a cluster under a per-GPU memory budget: it enumerates the
// method x seqlen x stages x micro-batch grid, prunes memory-infeasible
// points with cheap caching-allocator estimates before simulating, fans the
// survivors across a worker pool, and prints the best schedule per sequence
// length plus the throughput-vs-peak-memory Pareto frontier.
//
// Usage:
//
//	helixtune -model 3B -cluster A800 -budget 64
//	helixtune -seq 32768,65536,131072 -pp 2,4,8 -m 0,16 -json
//	helixtune -method helixpipe,1f1b,zb1p -csv points.csv
//	helixtune -method help              # list the registered methods
//	helixtune -dist longtail -docs 64 -minseq 8192 -maxseq 131072
//	                                    # also rank methods on a sampled
//	                                    # variable-length workload
//	helixtune -cluster DGX-A800x4 -pp 8,16,32
//	                                    # topology-aware: search placements
//	                                    # (contiguous, roundrobin, greedy) per
//	                                    # config and report the best one
//	helixtune -cluster DGX-A800x4 -perturb link=ibx0.5
//	                                    # rank configurations under a degraded
//	                                    # inter-node fabric
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("helixtune: ")
	var (
		modelName   = flag.String("model", "3B", "model preset: 1.3B, 3B, 7B, 13B, tiny")
		clusterName = flag.String("cluster", "A800", "cluster: flat preset (H20, A800), topology preset (DGX-A800x4, DGX-H20x2, PCIe-box), or a topology .json file")
		seqList     = flag.String("seq", "32768,65536,131072", "comma-separated sequence lengths to tune for")
		ppList      = flag.String("pp", "2,4,8", "comma-separated candidate pipeline sizes")
		mbList      = flag.String("m", "0", "comma-separated candidate micro-batch counts (0 = 2*pp)")
		bList       = flag.String("b", "1", "comma-separated candidate micro-batch sizes")
		methodsFlag = flag.String("method", "", "comma-separated methods to consider (default all; 'help' lists)")
		budgetGB    = flag.Float64("budget", 0, "per-GPU memory budget in GB, model states included (0 = GPU capacity)")
		workers     = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		jsonOut     = flag.Bool("json", false, "emit the full machine-readable result as JSON on stdout")
		csvPath     = flag.String("csv", "", "also write every evaluated point as CSV to this path")
		distName    = flag.String("dist", "", "also tune a variable-length workload: length distribution (uniform, bimodal, longtail)")
		docs        = flag.Int("docs", 64, "variable-length workload: documents to sample")
		minSeq      = flag.Int("minseq", 8192, "variable-length workload: shortest document")
		maxSeq      = flag.Int("maxseq", 131072, "variable-length workload: longest document and micro-batch token budget")
		distSeed    = flag.Uint64("dist-seed", 42, "variable-length workload: sampling seed")
		placeList   = flag.String("placement", "", "topology clusters: comma-separated placement strategies to search (default contiguous,roundrobin,greedy)")
		perturbSpec = flag.String("perturb", "", "topology clusters: fault injection, e.g. slow=3x2.0,link=ibx0.5")
	)
	flag.Parse()

	mc, ok := helixpipe.ModelByName(*modelName)
	if !ok {
		log.Fatalf("unknown model %q", *modelName)
	}
	cl, topo, err := helixpipe.ResolveCluster(*clusterName)
	if err != nil {
		log.Fatal(err)
	}

	spec := helixpipe.TuneSpec{
		Methods:           resolveMethods(*methodsFlag),
		SeqLens:           parseInts("seq", *seqList),
		Stages:            parseInts("pp", *ppList),
		MicroBatches:      parseInts("m", *mbList),
		MicroBatchSizes:   parseInts("b", *bList),
		MemoryBudgetBytes: int64(*budgetGB * float64(1<<30)),
		Workers:           *workers,
	}
	spec.Cluster = topo
	if *placeList != "" {
		if topo == nil {
			log.Fatalf("-placement requires a topology cluster (-cluster DGX-A800x4, ...)")
		}
		for _, part := range strings.Split(*placeList, ",") {
			if part = strings.TrimSpace(part); part != "" {
				spec.Placements = append(spec.Placements, part)
			}
		}
	}
	if *perturbSpec != "" {
		if topo == nil {
			log.Fatalf("-perturb requires a topology cluster (-cluster DGX-A800x4, ...)")
		}
		perturb, err := helixpipe.ParsePerturb(*perturbSpec)
		if err != nil {
			log.Fatal(err)
		}
		spec.Perturb = &perturb
	}
	if *distName != "" {
		dist, ok := helixpipe.LengthDistByName(*distName)
		if !ok {
			log.Fatalf("unknown distribution %q (uniform, bimodal, longtail)", *distName)
		}
		workload, err := helixpipe.SyntheticWorkload(dist, *docs, *minSeq, *maxSeq, int64(*maxSeq), *distSeed)
		if err != nil {
			log.Fatal(err)
		}
		spec.Workloads = append(spec.Workloads, helixpipe.TuneWorkload{
			Name: *distName, Batch: workload,
		})
	}

	session, err := helixpipe.NewSession(mc, cl)
	if err != nil {
		log.Fatal(err)
	}
	result, err := session.Autotune(spec)
	if err != nil {
		log.Fatal(err)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := helixpipe.WriteTuneResultCSV(f, result); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonOut {
		if err := helixpipe.WriteTuneResultJSON(os.Stdout, result); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(result.Summary())
	fmt.Println()
	fmt.Print(result.BestTable())
	fmt.Println()
	fmt.Print(result.FrontierTable())
	for _, e := range result.Errors {
		fmt.Fprintf(os.Stderr, "skipped: %s\n", e)
	}
}

// resolveMethods expands the -method flag through the registry,
// case-insensitively; empty keeps the autotuner's every-method default.
// "help" (or an unknown name) prints the registry's method list.
func resolveMethods(flagValue string) []helixpipe.Method {
	if flagValue == "" {
		return nil
	}
	var out []helixpipe.Method
	for _, part := range strings.Split(flagValue, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		m, ok := helixpipe.LookupMethod(part)
		if !ok {
			if !strings.EqualFold(part, "help") {
				fmt.Fprintf(os.Stderr, "unknown method %q; the registered methods are:\n\n", part)
			}
			fmt.Fprint(os.Stderr, helixpipe.MethodListing())
			os.Exit(2)
		}
		out = append(out, m)
	}
	return out
}

// parseInts parses a comma-separated integer list flag.
func parseInts(name, s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			log.Fatalf("-%s: %q is not an integer", name, part)
		}
		out = append(out, v)
	}
	return out
}
