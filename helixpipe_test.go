package helixpipe

import (
	"strings"
	"testing"
)

// TestPublicAPISimulation exercises the simulation surface end to end.
func TestPublicAPISimulation(t *testing.T) {
	s, err := NewSession(Model3B(), H20Cluster(),
		WithSeqLen(65536), WithStages(4), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{Method1F1B, MethodHelix} {
		plan, err := s.Plan(m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := ValidatePlan(plan); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		report, err := s.Simulate(m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if report.Sim.IterationSeconds <= 0 {
			t.Errorf("%s: non-positive iteration", m)
		}
		if out := report.TimelineASCII(100); !strings.Contains(out, "P0") {
			t.Errorf("%s: timeline broken", m)
		}
		if out := report.TimelineSVG(800); !strings.Contains(out, "<svg") {
			t.Errorf("%s: SVG broken", m)
		}
	}
}

// TestPublicAPIHelixWins checks the headline through the public API only.
func TestPublicAPIHelixWins(t *testing.T) {
	s, err := NewSession(Model7B(), H20Cluster(), WithSeqLen(131072), WithStages(8))
	if err != nil {
		t.Fatal(err)
	}
	tput := map[Method]float64{}
	for _, m := range []Method{Method1F1B, MethodHelix} {
		report, err := s.Simulate(m)
		if err != nil {
			t.Fatal(err)
		}
		tput[m] = report.Sim.TokensPerSecond
	}
	if tput[MethodHelix] <= tput[Method1F1B] {
		t.Errorf("HelixPipe (%f) should beat 1F1B (%f) at 128k", tput[MethodHelix], tput[Method1F1B])
	}
}

// TestPublicAPINumeric exercises the numeric training surface.
func TestPublicAPINumeric(t *testing.T) {
	report, err := Train(TrainConfig{
		Model: TinyModel(), Method: MethodHelix,
		Stages: 2, MicroBatches: 4, Batch: 1, SeqLen: 8,
		Steps: 2, LR: 1e-3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Losses) != 2 {
		t.Fatalf("want 2 losses, got %d", len(report.Losses))
	}
	for _, l := range report.Losses {
		if l <= 0 {
			t.Error("loss must be positive at init scale")
		}
	}
	if _, err := Train(TrainConfig{}); err == nil {
		t.Error("empty train config must error")
	}
}

// TestPublicAPIParityHelpers checks GradDiff and ReferenceStep wiring.
func TestPublicAPIParityHelpers(t *testing.T) {
	cfg := TinyModel()
	m1 := NewNumericModel(cfg, 3)
	m2 := NewNumericModel(cfg, 3)
	batches := []MicroBatch{SyntheticBatch(cfg, 1, 8, 1), SyntheticBatch(cfg, 1, 8, 2)}
	plan, err := BuildHelix(ScheduleConfig{Stages: 2, MicroBatches: 2, Layers: cfg.Layers},
		UnitCosts(0), HelixOptions{Fold: 1, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunNumeric(plan, m1, batches)
	if err != nil {
		t.Fatal(err)
	}
	refLoss, refGrads := ReferenceStep(m2, batches)
	if res.Loss != refLoss {
		t.Errorf("loss mismatch: %v vs %v", res.Loss, refLoss)
	}
	if d := GradDiff(res.Grads, refGrads); d != 0 {
		t.Errorf("gradients differ by %g", d)
	}
}

// TestPublicAPIMisc covers the small helpers.
func TestPublicAPIMisc(t *testing.T) {
	if len(Methods()) < 6 {
		t.Error("Methods() incomplete")
	}
	if AttnStage(0, 3, 4) != 0 {
		t.Error("AttnStage mapping wrong")
	}
	for _, mc := range []ModelConfig{Model1B3(), Model3B(), Model7B(), Model13B(), TinyModel()} {
		if err := mc.Validate(); err != nil {
			t.Error(err)
		}
	}
	if H20Cluster().Validate() != nil || A800Cluster().Validate() != nil {
		t.Error("cluster presets invalid")
	}
	s, err := NewSession(Model3B(), A800Cluster(), WithSeqLen(32768), WithStages(2))
	if err != nil {
		t.Fatal(err)
	}
	if NewCosts(s.Workload()).LayerDur(0) <= 0 {
		t.Error("cost book broken")
	}
}
