package helixpipe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// varlenSession builds a tiny 2-stage session over a mixed-length workload,
// including a b=2 micro batch.
func varlenSession(t *testing.T) (*Session, BatchSpec) {
	t.Helper()
	spec := BatchSpec{Shapes: []Shape{
		{B: 1, S: 8}, {B: 2, S: 16}, {B: 1, S: 12}, {B: 1, S: 16},
	}}
	s, err := NewSession(TinyModel(), H20Cluster(), WithStages(2), WithWorkload(spec))
	if err != nil {
		t.Fatal(err)
	}
	return s, spec
}

func TestWithWorkloadGeometry(t *testing.T) {
	s, spec := varlenSession(t)
	if s.MicroBatches() != 4 {
		t.Errorf("MicroBatches = %d, want the spec's 4", s.MicroBatches())
	}
	if s.SeqLen() != 16 || s.MicroBatchSize() != 2 {
		t.Errorf("SeqLen/MicroBatchSize = %d/%d, want maxima 16/2", s.SeqLen(), s.MicroBatchSize())
	}
	if got := s.TokensPerIteration(); got != spec.TotalTokens() {
		t.Errorf("TokensPerIteration = %d, want %d", got, spec.TotalTokens())
	}
	if !s.Costs().Variable() {
		t.Error("session costs must carry per-micro-batch books")
	}
	if len(s.Batch().Shapes) != 4 {
		t.Error("Batch accessor lost the spec")
	}
	if _, err := NewSession(TinyModel(), H20Cluster(), WithStages(2),
		WithWorkload(BatchSpec{Shapes: []Shape{{B: 0, S: 8}}})); err == nil {
		t.Error("invalid workload accepted")
	}
}

// TestWorkloadGeometryPrecedence pins the option-ordering contract: a later
// fixed-shape option replaces the workload (so Sweep axes are not silently
// ignored), and an empty WithWorkload restores the fixed-shape geometry.
func TestWorkloadGeometryPrecedence(t *testing.T) {
	s, _ := varlenSession(t)

	fixed, err := s.With(WithSeqLen(32))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed.Batch().Shapes) != 0 {
		t.Error("WithSeqLen must clear the workload")
	}
	if fixed.SeqLen() != 32 || fixed.MicroBatches() != 2*fixed.Stages() {
		t.Errorf("fixed geometry = seq %d m %d, want 32 / %d",
			fixed.SeqLen(), fixed.MicroBatches(), 2*fixed.Stages())
	}

	cleared, err := s.With(WithWorkload(BatchSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(cleared.Batch().Shapes) != 0 || cleared.MicroBatches() != 2*cleared.Stages() {
		t.Errorf("empty WithWorkload left geometry %d micro batches", cleared.MicroBatches())
	}

	// Sweeping SeqLens over a workload session sweeps fixed shapes: the two
	// cells must differ.
	reports, err := s.Sweep(Sweep{Methods: []Method{Method1F1B}, SeqLens: []int{16, 32}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("sweep returned %d reports", len(reports))
	}
	if reports[0].SeqLen == reports[1].SeqLen {
		t.Errorf("sweep cells share seq_len %d — the axis was ignored", reports[0].SeqLen)
	}
	for _, r := range reports {
		if len(r.MicroBatchTokens) != 0 {
			t.Error("fixed-shape sweep cell carries variable-length fields")
		}
	}
}

// TestWorkloadEndToEndBothEngines is the acceptance check: a mixed-length
// workload runs through Session on both engines — the simulator reports
// per-micro-batch token counts and a length histogram, and the numeric
// engine's gradients are bit-identical to the sequential reference.
func TestWorkloadEndToEndBothEngines(t *testing.T) {
	s, spec := varlenSession(t)
	for _, method := range []Method{Method1F1B, MethodHelix} {
		rep, err := s.Simulate(method)
		if err != nil {
			t.Fatalf("%s sim: %v", method, err)
		}
		if rep.Sim == nil || rep.Sim.IterationSeconds <= 0 {
			t.Fatalf("%s: no sim metrics", method)
		}
		if len(rep.MicroBatchTokens) != 4 {
			t.Errorf("%s: MicroBatchTokens = %v", method, rep.MicroBatchTokens)
		}
		if len(rep.SeqLenHistogram) == 0 {
			t.Errorf("%s: missing length histogram", method)
		}
		if rep.TokensPerIteration != spec.TotalTokens() {
			t.Errorf("%s: tokens %d, want %d", method, rep.TokensPerIteration, spec.TotalTokens())
		}
		if rep.Sim.TokensPerSecond <= 0 {
			t.Errorf("%s: no throughput", method)
		}

		eng := s.NumericEngine(7)
		nrep, err := s.Run(eng, method)
		if err != nil {
			t.Fatalf("%s numeric: %v", method, err)
		}
		refLoss, refGrads := ReferenceStep(eng.Model, eng.Batches)
		if nrep.Numeric.Loss != refLoss {
			t.Errorf("%s: loss %v != reference %v", method, nrep.Numeric.Loss, refLoss)
		}
		if d := GradDiff(nrep.NumericResult().Grads, refGrads); d != 0 {
			t.Errorf("%s: gradients differ from reference by %g", method, d)
		}
	}
}

func TestWorkloadReportSerialization(t *testing.T) {
	s, _ := varlenSession(t)
	rep, err := s.Simulate(Method1F1B)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"micro_batch_tokens", "seq_len_histogram"} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON misses %q: %s", key, data)
		}
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.MicroBatchTokens) != 4 || len(back.SeqLenHistogram) == 0 {
		t.Error("round trip lost the variable-length fields")
	}

	var buf bytes.Buffer
	if err := WriteReportsCSV(&buf, []*Report{rep}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "mb_tokens") || !strings.Contains(lines[0], "seq_len_hist") {
		t.Errorf("CSV header misses variable-length columns: %q", lines[0])
	}
	if !strings.Contains(lines[1], ";") {
		t.Errorf("CSV row misses joined per-micro-batch values: %q", lines[1])
	}
}

// TestAutotuneVariableLength checks the autotuner ranks methods on a
// length-distribution workload and returns a best pick for it.
func TestAutotuneVariableLength(t *testing.T) {
	wl, err := SyntheticWorkload(DistBimodal, 24, 8, 64, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(TinyModel(), H20Cluster(), WithStages(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Autotune(TuneSpec{
		Methods:   []Method{Method1F1B, MethodGPipe, MethodHelix},
		Workloads: []TuneWorkload{{Name: "bimodal", Batch: wl}},
		Stages:    []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == 0 {
		t.Fatalf("nothing evaluated: pruned %v, errors %v", res.Pruned, res.Errors)
	}
	if len(res.Best) != 1 || res.Best[0].Workload != "bimodal" {
		t.Fatalf("Best = %+v, want one bimodal pick", res.Best)
	}
	if res.Best[0].TokensPerSecond <= 0 {
		t.Error("best pick has no throughput")
	}

	// A variable-length session tunes its own workload by default.
	vs, _ := varlenSession(t)
	res2, err := vs.Autotune(TuneSpec{Methods: []Method{Method1F1B}, Stages: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Best) != 1 || res2.Best[0].Workload != "session" {
		t.Fatalf("session workload default missing: %+v", res2.Best)
	}
}
