package helixpipe

// This file holds the benchmark harness required by the reproduction: one
// testing.B benchmark per paper table and figure (regenerating its rows),
// plus micro-benchmarks of the core machinery. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks report domain metrics via b.ReportMetric where meaningful
// (headline speedup, simulated tokens/s).

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/sched"
	"repro/internal/tensor"
)

func benchTable(b *testing.B, fn func() (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty experiment")
		}
	}
}

// BenchmarkTable1 regenerates paper Table 1 (layer FLOPs/memory accounting).
func BenchmarkTable1(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.Table1(), nil })
}

// BenchmarkTable2 regenerates paper Table 2 (analytic vs simulated bubbles).
func BenchmarkTable2(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.Table2(), nil })
}

// BenchmarkTable3 regenerates paper Table 3 (model configurations).
func BenchmarkTable3(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.Table3(), nil })
}

// BenchmarkFigure3 regenerates paper Figure 3 (layer phase breakdown).
func BenchmarkFigure3(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.Figure3(), nil })
}

// BenchmarkFigure4 regenerates paper Figure 4 (1F1B activation memory).
func BenchmarkFigure4(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.Figure4(), nil })
}

// BenchmarkFigure8 regenerates the six panels of paper Figure 8 (normalized
// throughput across models, clusters, pipeline sizes, sequence lengths) and
// reports the headline 7B/128k/p8/H20 gain over the best baseline.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := bench.Figure8All()
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) != 6 {
			b.Fatalf("want 6 panels, got %d", len(tables))
		}
	}
	s := bench.NewScenario(model.Model7B(), costmodel.H20Cluster(), 131072, 8)
	row, err := s.ThroughputRow()
	if err != nil {
		b.Fatal(err)
	}
	bestBaseline := 0.0
	for _, m := range []sched.Method{sched.Method1F1B, sched.MethodZB1P, sched.MethodAdaPipe} {
		if row[m] > bestBaseline {
			bestBaseline = row[m]
		}
	}
	b.ReportMetric((row[sched.MethodHelix]/bestBaseline-1)*100, "headline-gain-%")
}

// BenchmarkFigure9 regenerates paper Figure 9 (compute vs comm overlap).
func BenchmarkFigure9(b *testing.B) {
	benchTable(b, func() (*bench.Table, error) { return bench.Figure9(), nil })
}

// BenchmarkFigure10 regenerates paper Figure 10 (per-stage peak memory).
func BenchmarkFigure10(b *testing.B) {
	benchTable(b, bench.Figure10)
}

// BenchmarkFigure11 regenerates paper Figure 11 (recomputation ablation).
func BenchmarkFigure11(b *testing.B) {
	benchTable(b, bench.Figure11)
}

// BenchmarkChunkedMLP regenerates the section 4.4.2 fragmentation study.
func BenchmarkChunkedMLP(b *testing.B) {
	benchTable(b, bench.ChunkedMLPTable)
}

// BenchmarkMicroBatchSaturation runs the section 3.1 saturation extension.
func BenchmarkMicroBatchSaturation(b *testing.B) {
	benchTable(b, bench.MicroBatchSaturation)
}

// BenchmarkInterleavedComparison runs the section 6.2 ablation.
func BenchmarkInterleavedComparison(b *testing.B) {
	benchTable(b, bench.InterleavedComparison)
}

// BenchmarkZB1PSensitivity runs the backward-W share sensitivity extension.
func BenchmarkZB1PSensitivity(b *testing.B) {
	benchTable(b, bench.ZB1PSensitivity)
}

// headlineSession builds the paper's headline configuration (7B, 128k, p=8)
// for the micro-benchmarks.
func headlineSession(b *testing.B) *Session {
	b.Helper()
	s, err := NewSession(Model7B(), H20Cluster(), WithSeqLen(131072), WithStages(8))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkBuildHelixPlan measures HelixPipe plan construction at the
// headline scale (p=8, m=16, 32 layers).
func BenchmarkBuildHelixPlan(b *testing.B) {
	s := headlineSession(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Plan(MethodHelix); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateHelix measures one simulated headline iteration and
// reports simulated tokens/s.
func BenchmarkSimulateHelix(b *testing.B) {
	s := headlineSession(b)
	plan, err := s.Plan(MethodHelix)
	if err != nil {
		b.Fatal(err)
	}
	engine := NewSimEngine(SimOptions{})
	var tput float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := engine.Run(plan)
		if err != nil {
			b.Fatal(err)
		}
		tput = report.SimResult().Throughput(s.TokensPerIteration())
	}
	b.ReportMetric(tput, "simulated-tokens/s")
}

// BenchmarkLargeSweep measures a full Session.Sweep — every registered
// method across four sequence lengths and three pipeline sizes (144 cells) —
// and reports cells simulated per second. This is the wall-clock number the
// engine rewrite and cost-book memoization target; the CI perf trajectory
// pins the closely related 216-cell sweep via internal/bench.SweepBaseline.
func BenchmarkLargeSweep(b *testing.B) {
	s, err := NewSession(Model3B(), A800Cluster())
	if err != nil {
		b.Fatal(err)
	}
	sw := Sweep{
		SeqLens: []int{8192, 16384, 32768, 65536},
		Stages:  []int{2, 4, 8},
	}
	cells := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports, err := s.Sweep(sw)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) == 0 {
			b.Fatal("empty sweep")
		}
		cells = len(reports)
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds()*float64(b.N), "cells/s")
}

// BenchmarkZB1PListScheduling measures the cost-driven ZB1P constructor.
func BenchmarkZB1PListScheduling(b *testing.B) {
	s := headlineSession(b)
	costs := NewCosts(s.Workload())
	cfg := ScheduleConfig{Stages: 8, MicroBatches: 16, Layers: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.ZB1P(cfg, costs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNumericIteration measures one numeric pipeline iteration of the
// tiny model under HelixPipe (goroutines + channels + real tensors).
func BenchmarkNumericIteration(b *testing.B) {
	cfg := TinyModel()
	m := NewNumericModel(cfg, 1)
	plan, err := BuildHelix(ScheduleConfig{Stages: 2, MicroBatches: 4, Layers: cfg.Layers},
		UnitCosts(0), HelixOptions{Fold: 2, Recompute: true})
	if err != nil {
		b.Fatal(err)
	}
	batches := make([]MicroBatch, 4)
	for i := range batches {
		batches[i] = SyntheticBatch(cfg, 1, 16, uint64(i)+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunNumeric(plan, m, batches); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMul measures the parallel GEMM kernel on a transformer-ish
// shape (tokens x hidden x 4*hidden).
func BenchmarkMatMul(b *testing.B) {
	a := tensor.New(256, 128)
	w := tensor.New(128, 512)
	for i := range a.Data {
		a.Data[i] = float32(i%7) * 0.1
	}
	for i := range w.Data {
		w.Data[i] = float32(i%5) * 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(a, w)
	}
}

// BenchmarkCausalAttention measures the causal flash-attention-style kernel.
func BenchmarkCausalAttention(b *testing.B) {
	q := tensor.New(2, 64, 64)
	k := tensor.New(2, 64, 64)
	v := tensor.New(2, 64, 64)
	for i := range q.Data {
		q.Data[i] = float32(i%11) * 0.02
		k.Data[i] = float32(i%13) * 0.02
		v.Data[i] = float32(i%17) * 0.02
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.CausalAttentionForward(q, k, v, 4)
	}
}

// BenchmarkReferenceStep measures the single-device reference iteration.
func BenchmarkReferenceStep(b *testing.B) {
	cfg := model.TinyTest()
	m := nn.NewModel(cfg, 3)
	batches := []nn.MicroBatch{nn.SyntheticBatch(cfg, 1, 16, 9)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ReferenceStep(m, batches)
	}
}
