package helixpipe

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the pinned outputs instead of diffing them:
//
//	go test -run TestGoldenReports -update .
var updateGolden = flag.Bool("update", false, "rewrite the examples/**/*.golden.json files")

// TestGoldenReports pins the output of every committed example spec: next to
// each examples/**/*.json spec sits a *.golden.json with the exact report
// JSON the spec produces — run-kind and sweep specs pin their report stream,
// tune specs the autotuner's point stream, fleet specs the fleet report. A
// diff means an engine change altered committed results; if the change is
// intended, regenerate with -update and review the golden diff like code.
func TestGoldenReports(t *testing.T) {
	paths, err := filepath.Glob("examples/*/*.json")
	if err != nil {
		t.Fatal(err)
	}
	var specs []string
	for _, p := range paths {
		if !strings.HasSuffix(p, ".golden.json") && !strings.HasSuffix(p, ".trace.json") {
			specs = append(specs, p)
		}
	}
	if len(specs) == 0 {
		t.Fatal("no example specs found")
	}
	for _, path := range specs {
		t.Run(strings.TrimSuffix(filepath.Base(path), ".json"), func(t *testing.T) {
			got, err := goldenOutput(path)
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := strings.TrimSuffix(path, ".json") + ".golden.json"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (generate it with: go test -run TestGoldenReports -update .)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: output drifted from %s; regenerate with -update and review the diff",
					path, goldenPath)
			}
		})
	}
}

// goldenOutput runs one example spec and renders its canonical JSON output.
func goldenOutput(path string) ([]byte, error) {
	spec, err := ParseSpecFile(path)
	if err != nil {
		return nil, err
	}
	session, runset, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	switch runset.Kind {
	case RunKindDecode:
		report, err := session.Decode(*runset.Decode)
		if err != nil {
			return nil, err
		}
		if err := WriteDecodeReportJSON(&buf, report); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	case RunKindFleet:
		report, err := session.Fleet(*runset.Fleet)
		if err != nil {
			return nil, err
		}
		if err := WriteFleetReportJSON(&buf, report); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	case RunKindTune:
		// The tune point stream yields prune errors as elements; the ranked
		// TuneResult (with its pruning accounting) is the canonical output.
		result, err := session.Autotune(*runset.Tune)
		if err != nil {
			return nil, err
		}
		if err := WriteTuneResultJSON(&buf, result); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var reports []*Report
	for r, err := range session.Execute(spec) {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		reports = append(reports, r)
	}
	// Golden sessions are unobserved and stamp no telemetry; strip anyway so
	// the corpus stays byte-stable even if a future caller attaches a sink.
	StripTelemetry(reports)
	if err := WriteReportsJSON(&buf, reports); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TestGoldenPerfettoTrace pins the Perfetto export of the paper spec's traced
// run: the committed examples/spec_driven/paper_128k.trace.json is exactly
// what helixviz -spec examples/spec_driven/paper_128k.json -perfetto emits.
// Regenerate with -update like the report goldens.
func TestGoldenPerfettoTrace(t *testing.T) {
	spec, err := ParseSpecFile("examples/spec_driven/paper_128k.json")
	if err != nil {
		t.Fatal(err)
	}
	spec.Trace = true
	session, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	var reports []*Report
	for r, err := range session.Execute(spec) {
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	var buf bytes.Buffer
	if err := WritePerfettoTrace(&buf, reports); err != nil {
		t.Fatal(err)
	}
	goldenPath := "examples/spec_driven/paper_128k.trace.json"
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (generate it with: go test -run TestGoldenPerfettoTrace -update .)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("perfetto trace drifted from %s; regenerate with -update and review the diff", goldenPath)
	}
}
