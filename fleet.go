package helixpipe

// This file bridges the public spec/session layer to internal/fleet, the
// shared-cluster job-stream simulator. A spec's fleet section materializes
// into a FleetSpec — concrete jobs with arrival times, priorities and
// single-method experiment specs as payloads — and Session.Fleet runs the
// stream on the session's cluster topology: the fleet engine carves device
// sets under the admission policy, and each carved job prices its pipeline
// through the real simulator behind the spec→Report cache, so repeated job
// shapes never re-simulate.

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Fleet simulator types (internal/fleet).
type (
	// FleetReport is the outcome of one fleet run: queue wait and JCT
	// distributions, makespan, utilization, fragmentation, per-link-class
	// traffic, and a per-job record list.
	FleetReport = fleet.Report
	// FleetPolicy is an admission/placement policy (order, carve, backfill,
	// preemption).
	FleetPolicy = fleet.Policy
	// FleetJobRecord is one job's outcome inside a FleetReport.
	FleetJobRecord = fleet.JobRecord
	// FleetDistStats summarizes a fleet duration distribution.
	FleetDistStats = fleet.Stats
	// FleetLinkTraffic is one link class's share of a fleet's communication.
	FleetLinkTraffic = fleet.LinkClassTraffic
	// FleetTraceEntry is one job of a replayed arrival trace.
	FleetTraceEntry = fleet.TraceEntry
)

// The preset fleet policies.
const (
	FleetPolicyFIFO     = fleet.PolicyFIFO
	FleetPolicyBestFit  = fleet.PolicyBestFit
	FleetPolicyWorstFit = fleet.PolicyWorstFit
	FleetPolicyBackfill = fleet.PolicyBackfill
	FleetPolicyPreempt  = fleet.PolicyPreempt
)

// The fleet arrival generators a spec's fleet section can name.
const (
	// FleetArrivalPoisson draws exponential inter-arrival gaps.
	FleetArrivalPoisson = "poisson"
	// FleetArrivalBursty lands jobs in Poisson-started bursts.
	FleetArrivalBursty = "bursty"
)

// FleetPolicies lists the preset fleet policy names.
func FleetPolicies() []string { return fleet.Policies() }

// FleetPolicyByName resolves a preset fleet policy case-insensitively and
// reports whether it exists.
func FleetPolicyByName(name string) (FleetPolicy, bool) { return fleet.PolicyByName(name) }

// FleetPolicyListing renders the preset policy table as helixfleet prints
// it.
func FleetPolicyListing() string {
	var b strings.Builder
	desc := map[string]string{
		FleetPolicyFIFO:     "arrival order, first-fit carve, head-of-line blocking",
		FleetPolicyBestFit:  "arrival order, best-fit carve (pack full nodes)",
		FleetPolicyWorstFit: "arrival order, worst-fit carve (spread across nodes)",
		FleetPolicyBackfill: "best fit + backfill past a blocked head",
		FleetPolicyPreempt:  "priority order + backfill + preemption with re-queue",
	}
	for _, name := range fleet.Policies() {
		fmt.Fprintf(&b, "  %-10s %s\n", name, desc[name])
	}
	return b.String()
}

// FleetJob is one materialized job of a FleetSpec: stream metadata plus the
// single-method experiment spec describing its pipeline. The job's device
// demand is its spec's stage count — one device per pipeline stage.
type FleetJob struct {
	// ID identifies the job in the report ("job007").
	ID string `json:"id"`
	// Template names the spec-level template the job was drawn from.
	Template string `json:"template,omitempty"`
	// ArrivalSec is the job's arrival time on the fleet clock.
	ArrivalSec float64 `json:"arrival_sec"`
	// Priority orders preemptive admission; higher preempts lower.
	Priority int `json:"priority,omitempty"`
	// Iterations is the number of training iterations the job runs.
	Iterations int `json:"iterations"`
	// Spec describes the job's pipeline: a run-kind experiment spec naming
	// exactly one method. Its stage count is the job's device demand; its
	// cluster field is overridden by the devices the fleet carves for it.
	Spec *ExperimentSpec `json:"spec"`
}

// FleetSpec is the materialized input of Session.Fleet: the job stream and
// the admission policy. Specs with a fleet section produce one via Resolve
// (RunSet.Fleet); construct one directly to script custom streams.
type FleetSpec struct {
	// Policy names the admission/placement policy (default "fifo").
	Policy string `json:"policy,omitempty"`
	// Jobs is the stream, in arrival order.
	Jobs []FleetJob `json:"jobs"`
	// Cache memoizes spec→Report simulations across jobs; nil uses a fresh
	// cache per run. Share one across runs to reuse results between policy
	// comparisons on the same stream.
	Cache *ReportCache `json:"-"`
	// Probe, when set, observes the fleet engine state after every processed
	// event (arrival or completion) — the hook live progress lines use.
	// Runtime plumbing, never serialized.
	Probe func(FleetProbeEvent) `json:"-"`
}

// FleetProbeEvent is the engine state snapshot handed to FleetSpec.Probe.
type FleetProbeEvent = fleet.ProbeEvent

// Fleet simulates a stream of training jobs sharing the session's cluster
// topology under an admission/placement policy and returns the fleet report.
// Each admitted job's carved devices become a sub-cluster; the job's spec is
// simulated on it through the spec→Report cache (repeated job shapes on
// equivalent carves simulate once), its placement searched by the spec's
// placement strategy. The run is deterministic: identical specs produce
// byte-identical reports.
func (s *Session) Fleet(fs FleetSpec) (*FleetReport, error) {
	if s.topo == nil {
		return nil, fmt.Errorf("helixpipe: Fleet requires a cluster topology (WithCluster)")
	}
	name := fs.Policy
	if name == "" {
		name = FleetPolicyFIFO
	}
	policy, ok := fleet.PolicyByName(name)
	if !ok {
		return nil, fmt.Errorf("helixpipe: unknown fleet policy %q; the policies are:\n%s",
			fs.Policy, FleetPolicyListing())
	}
	cache := fs.Cache
	if cache == nil {
		cache = NewReportCache()
	}
	jobs := make([]fleet.Job, len(fs.Jobs))
	for i := range fs.Jobs {
		fj := &fs.Jobs[i]
		if fj.Spec == nil {
			return nil, fmt.Errorf("helixpipe: fleet job %s has no spec", fj.ID)
		}
		if len(fj.Spec.Methods) != 1 {
			return nil, fmt.Errorf("helixpipe: fleet job %s must name exactly one method, got %v",
				fj.ID, fj.Spec.Methods)
		}
		jobs[i] = fleet.Job{
			ID:         fj.ID,
			Template:   fj.Template,
			ArrivalSec: fj.ArrivalSec,
			Priority:   fj.Priority,
			Demand:     fj.Spec.Stages,
			Iterations: fj.Iterations,
			Payload:    fj,
		}
	}
	probe := fleetProbe(float64(s.topo.Devices()), fs.Probe)
	return fleet.Run(*s.topo, jobs, &fleetSimulator{cache: cache}, fleet.Options{Policy: policy, Probe: probe})
}

// fleetProbe mirrors the engine state into the default obs registry on every
// event — queue depth, running jobs, device utilization, and the cumulative
// preemption count — and then forwards to the caller's probe, if any.
func fleetProbe(devices float64, next func(FleetProbeEvent)) func(fleet.ProbeEvent) {
	var (
		queueG   = obs.Default().Gauge("helix_fleet_queue_depth")
		runningG = obs.Default().Gauge("helix_fleet_running_jobs")
		utilG    = obs.Default().Gauge("helix_fleet_utilization")
		preemptC = obs.Default().Counter("helix_fleet_preemptions_total")
	)
	seen := 0
	return func(p fleet.ProbeEvent) {
		queueG.Set(float64(p.Queued))
		runningG.Set(float64(p.Running))
		if devices > 0 {
			utilG.Set(float64(p.AllocatedDevices) / devices)
		}
		if d := p.Preemptions - seen; d > 0 {
			preemptC.Add(int64(d))
			seen = p.Preemptions
		}
		if next != nil {
			next(p)
		}
	}
}

// fleetSimulator prices fleet jobs through the session/spec machinery: the
// job's spec resolves to a session, the carve replaces its topology, the
// spec's placement strategy searches the stage placement, and the sim engine
// runs one iteration — all behind the content-hashed report cache.
type fleetSimulator struct {
	cache *ReportCache
}

func (f *fleetSimulator) Simulate(job fleet.Job, sub cluster.Cluster) (fleet.JobRun, error) {
	fj, ok := job.Payload.(*FleetJob)
	if !ok || fj.Spec == nil {
		return fleet.JobRun{}, fmt.Errorf("helixpipe: fleet job %s carries no spec payload", job.ID)
	}
	key, err := f.cache.Key(fj.Spec, "carve="+fleet.Signature(sub))
	if err != nil {
		return fleet.JobRun{}, err
	}
	report, hit, err := f.cache.Do(key, func() (*Report, error) {
		return simulateOnCarve(fj.Spec, sub)
	})
	if err != nil {
		return fleet.JobRun{}, err
	}
	if report.Sim == nil {
		return fleet.JobRun{}, fmt.Errorf("helixpipe: fleet job %s produced no sim metrics", job.ID)
	}
	return fleet.JobRun{
		IterationSeconds: report.Sim.IterationSeconds,
		Placement:        cluster.Placement{Devices: append([]int(nil), report.Placement...)},
		LinkTraffic:      append([]sim.LinkClassStats(nil), report.Sim.LinkTraffic...),
		CacheHit:         hit,
	}, nil
}

// simulateOnCarve runs a job's spec on a carved sub-cluster: resolve the
// spec, swap its topology for the carve, search the placement, simulate.
func simulateOnCarve(spec *ExperimentSpec, sub cluster.Cluster) (*Report, error) {
	base, rs, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	cell, err := base.With(WithCluster(sub))
	if err != nil {
		return nil, err
	}
	method := Method(spec.Methods[0])
	if rs.Placement != "" {
		p, err := cell.PlacementFor(method, rs.Placement, rs.PlacementSeed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", method, err)
		}
		if cell, err = cell.With(WithPlacement(p)); err != nil {
			return nil, fmt.Errorf("%s: %w", method, err)
		}
	}
	return cell.Simulate(method)
}

// buildFleetSpec materializes a normalized spec's fleet section into the
// concrete job stream: arrival times from the named generator (or a replayed
// trace file), templates drawn by weight, and one resolved single-method job
// spec per template, shared by every draw so the report cache keys align.
func (s *ExperimentSpec) buildFleetSpec(p *specParts) (*FleetSpec, error) {
	f := s.Fleet
	if p.topo == nil {
		return nil, fmt.Errorf("helixpipe: a fleet run requires a topology cluster (e.g. DGX-A800x4), not the flat %s", s.Cluster)
	}
	specs := map[string]*ExperimentSpec{}
	templates := map[string]SpecFleetTemplate{}
	for _, t := range f.Templates {
		js, err := s.templateSpec(t)
		if err != nil {
			return nil, fmt.Errorf("helixpipe: fleet template %q: %w", t.Name, err)
		}
		specs[t.Name] = js
		templates[t.Name] = t
	}
	fs := &FleetSpec{Policy: f.Policy}
	if f.Trace != "" {
		entries, err := fleet.LoadTraceFile(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("helixpipe: %w", err)
		}
		for i, e := range entries {
			t, ok := templates[e.Template]
			if !ok {
				return nil, fmt.Errorf("helixpipe: trace entry %d names unknown fleet template %q", i, e.Template)
			}
			job := newFleetJob(i, t, e.ArrivalSec, specs[t.Name])
			if e.Priority != 0 {
				job.Priority = e.Priority
			}
			if e.Iterations > 0 {
				job.Iterations = e.Iterations
			}
			fs.Jobs = append(fs.Jobs, job)
		}
		return fs, nil
	}
	stream := rng.New(f.Seed)
	arrivalStream, drawStream := stream.Split(1), stream.Split(2)
	rate := f.RatePerHour / 3600
	var arrivals []float64
	if f.Arrival == FleetArrivalBursty {
		arrivals = fleet.BurstyArrivals(arrivalStream, f.Jobs, f.BurstSize, rate)
	} else {
		arrivals = fleet.PoissonArrivals(arrivalStream, f.Jobs, rate)
	}
	total := 0.0
	for _, t := range f.Templates {
		total += t.Weight
	}
	for i, at := range arrivals {
		x := drawStream.Float64() * total
		t := f.Templates[len(f.Templates)-1]
		for _, cand := range f.Templates {
			if x < cand.Weight {
				t = cand
				break
			}
			x -= cand.Weight
		}
		fs.Jobs = append(fs.Jobs, newFleetJob(i, t, at, specs[t.Name]))
	}
	return fs, nil
}

func newFleetJob(i int, t SpecFleetTemplate, arrivalSec float64, spec *ExperimentSpec) FleetJob {
	return FleetJob{
		ID:         fmt.Sprintf("job%03d", i),
		Template:   t.Name,
		ArrivalSec: arrivalSec,
		Priority:   t.Priority,
		Iterations: t.Iterations,
		Spec:       spec,
	}
}

// templateSpec derives a template's job spec from the parent spec: the
// template's geometry overrides layered on, the fleet/sweep/tune/output
// sections stripped, resolved eagerly so an unbuildable template fails at
// Resolve time, not mid-stream.
func (s *ExperimentSpec) templateSpec(t SpecFleetTemplate) (*ExperimentSpec, error) {
	js := *s
	js.Fleet, js.Sweep, js.Tune, js.Output = nil, nil, nil, nil
	js.Trace = false
	js.Methods = []string{t.Method}
	js.Stages = t.Stages
	if t.SeqLen > 0 {
		// A pinned sequence length replaces an inherited workload: the
		// template wants a fixed shape.
		js.SeqLen = t.SeqLen
		js.Workload = nil
	}
	if t.MicroBatchSize > 0 {
		js.MicroBatchSize = t.MicroBatchSize
	}
	if t.MicroBatches > 0 {
		js.MicroBatches = t.MicroBatches
	}
	return js.Resolved()
}

// WriteFleetReportJSON writes a fleet report as indented JSON —
// deterministic, byte for byte, under identical specs.
func WriteFleetReportJSON(w io.Writer, r *FleetReport) error { return r.WriteJSON(w) }

// WriteFleetReportCSV writes a fleet report's per-job records as CSV.
func WriteFleetReportCSV(w io.Writer, r *FleetReport) error { return r.WriteCSV(w) }

// WriteFleetPerfetto writes a fleet report as a Chrome/Perfetto trace-event
// JSON file: one process per job (named after the job id and template), with
// a "queued" slice from arrival to admission and a "run" slice from admission
// to completion on the job's lifecycle track. Load the output in
// ui.perfetto.dev or chrome://tracing to see the whole stream at once.
func WriteFleetPerfetto(w io.Writer, r *FleetReport) error {
	t := obs.NewTrace()
	for i := range r.JobRecords {
		rec := &r.JobRecords[i]
		pid := i + 1
		name := rec.ID
		if rec.Template != "" {
			name += " " + rec.Template
		}
		t.ProcessName(pid, name)
		t.ProcessSortIndex(pid, pid)
		t.ThreadName(pid, 0, "lifecycle")
		if wait := rec.StartSec - rec.ArrivalSec; wait > 0 {
			t.Complete(pid, 0, "queued", "queued", rec.ArrivalSec*1e6, wait*1e6, map[string]any{
				"wait_sec": rec.WaitSec,
			})
		}
		t.Complete(pid, 0, "run", "run", rec.StartSec*1e6, (rec.EndSec-rec.StartSec)*1e6, map[string]any{
			"devices":       len(rec.Devices),
			"nodes":         rec.Nodes,
			"iteration_sec": rec.IterationSec,
			"iterations":    rec.Iterations,
			"preempted":     rec.Preempted,
			"cache_hit":     rec.CacheHit,
		})
	}
	return t.WriteJSON(w)
}
