package helixpipe

import (
	"bytes"
	"encoding/json"
	"iter"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// fullSpec returns a spec exercising every field, matching
// testdata/spec_full.json.
func fullSpec() *ExperimentSpec {
	recompute := true
	return &ExperimentSpec{
		Model:          "3B",
		Cluster:        "DGX-A800x4",
		SeqLen:         65536,
		Stages:         4,
		MicroBatchSize: 2,
		MicroBatches:   8,
		MemoryBudgetGB: 60,
		Methods:        []string{"1F1B", "HelixPipe"},
		Engine:         SpecEngineSim,
		Seed:           7,
		Trace:          true,
		Helix:          &SpecHelix{Fold: 2, Recompute: &recompute},
		Workload: &SpecWorkload{
			Dist:   "bimodal",
			Docs:   32,
			MinSeq: 4096,
			MaxSeq: 65536,
			Seed:   9,
			Order:  "balanced",
		},
		Placement:     "greedy",
		PlacementSeed: 3,
		Perturb:       "slow=1x1.5,jitter=0.05,seed=11",
		// A workload spec sweeps stages only; a seq_lens axis would discard
		// the workload and is rejected (TestSpecInvalid).
		Sweep:   &SpecSweep{Stages: []int{2, 4}},
		NoCache: true,
		Output:  &SpecOutput{JSON: true, CSV: "points.csv", Timeline: true, SVG: "out.svg"},
	}
}

// TestSpecRoundTripGolden proves every field survives Write -> Parse and
// that the wire format matches the committed golden file.
func TestSpecRoundTripGolden(t *testing.T) {
	spec := fullSpec()
	var buf bytes.Buffer
	if err := WriteSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile("testdata/spec_full.json")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(golden) {
		t.Errorf("WriteSpec drifted from testdata/spec_full.json:\n%s", buf.String())
	}
	parsed, err := ParseSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, spec) {
		t.Errorf("round trip lost fields:\n got %+v\nwant %+v", parsed, spec)
	}
	// And the round-tripped spec resolves: every field is consumable.
	if _, _, err := parsed.Resolve(); err != nil {
		t.Fatalf("round-tripped spec does not resolve: %v", err)
	}
}

// TestSpecResolvedReproduces proves the -emit-spec contract: the resolved
// spec re-resolves to an identical RunSet, and resolving is idempotent.
func TestSpecResolvedReproduces(t *testing.T) {
	for name, spec := range map[string]*ExperimentSpec{
		"full": fullSpec(),
		"minimal": {
			Model:   "tiny",
			Cluster: "H20",
			SeqLen:  64,
			Stages:  2,
			Methods: []string{"1f1b"},
		},
		"tune": {
			Model:   "3B",
			Cluster: "A800",
			Methods: []string{"HelixPipe", "ZB1P"},
			Tune: &SpecTune{
				SeqLens:   []int{32768},
				Stages:    []int{2, 4},
				BudgetGB:  64,
				Objective: TuneObjectiveLatencyPerToken,
				Budget:    0.001,
			},
		},
	} {
		_, rs1, err := spec.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resolved, err := spec.Resolved()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, rs2, err := resolved.Resolve()
		if err != nil {
			t.Fatalf("%s: resolved spec does not resolve: %v", name, err)
		}
		if !reflect.DeepEqual(rs1, rs2) {
			t.Errorf("%s: resolved spec changes the RunSet:\n got %+v\nwant %+v", name, rs2, rs1)
		}
		again, err := resolved.Resolved()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(resolved, again) {
			t.Errorf("%s: Resolved is not idempotent", name)
		}
	}
}

// TestSpecResolvedCanonicalizes checks name canonicalization: lower-case
// method spellings come back in registry casing, defaults become explicit.
func TestSpecResolvedCanonicalizes(t *testing.T) {
	spec := &ExperimentSpec{Model: "tiny", Cluster: "H20", SeqLen: 64, Stages: 2,
		Methods: []string{"helixpipe", "zb1p"}}
	resolved, err := spec.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resolved.Methods, []string{"HelixPipe", "ZB1P"}) {
		t.Errorf("methods = %v, want canonical casing", resolved.Methods)
	}
	if resolved.Engine != SpecEngineSim || resolved.MicroBatchSize != 1 {
		t.Errorf("defaults not filled: engine=%q b=%d", resolved.Engine, resolved.MicroBatchSize)
	}
}

// TestSpecRunSetShape pins the RunSet enumeration: kinds, cell order, and
// method expansion.
func TestSpecRunSetShape(t *testing.T) {
	spec := &ExperimentSpec{
		Model: "tiny", Cluster: "H20", SeqLen: 64, Stages: 2,
		Methods: []string{"1F1B", "GPipe"},
		Sweep:   &SpecSweep{SeqLens: []int{64, 128}, Stages: []int{2}},
	}
	_, rs, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Kind != RunKindSweep {
		t.Errorf("kind = %q, want sweep", rs.Kind)
	}
	want := []RunCell{
		{Method: "1F1B", SeqLen: 64, Stages: 2},
		{Method: "GPipe", SeqLen: 64, Stages: 2},
		{Method: "1F1B", SeqLen: 128, Stages: 2},
		{Method: "GPipe", SeqLen: 128, Stages: 2},
	}
	if !reflect.DeepEqual(rs.Cells, want) {
		t.Errorf("cells = %+v, want %+v", rs.Cells, want)
	}

	all := &ExperimentSpec{Model: "tiny", Cluster: "H20", SeqLen: 64, Stages: 2,
		Methods: []string{"all"}}
	_, rsAll, err := all.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rsAll.Kind != RunKindRun || len(rsAll.Cells) != len(Methods()) {
		t.Errorf("kind=%q cells=%d, want run with %d cells", rsAll.Kind, len(rsAll.Cells), len(Methods()))
	}
}

// TestSpecInvalid checks that bad specs fail eagerly with actionable
// messages — including the shared cluster listing (the one ResolveCluster
// code path every tool now goes through).
func TestSpecInvalid(t *testing.T) {
	cases := []struct {
		name string
		spec ExperimentSpec
		want string
	}{
		{"no model", ExperimentSpec{Cluster: "H20"}, "names no model"},
		{"unknown model", ExperimentSpec{Model: "70B", Cluster: "H20"}, "unknown model"},
		{"unknown cluster", ExperimentSpec{Model: "7B", Cluster: "B200"}, "DGX-A800x4"},
		{"unknown method", ExperimentSpec{Model: "7B", Cluster: "H20", Methods: []string{"pipedream"}}, "registered methods"},
		{"unknown engine", ExperimentSpec{Model: "7B", Cluster: "H20", Engine: "fpga"}, "unknown engine"},
		{"bad order", ExperimentSpec{Model: "7B", Cluster: "H20",
			Workload: &SpecWorkload{Dist: "uniform", Order: "random"}}, "unknown micro-batch order"},
		{"bad dist", ExperimentSpec{Model: "7B", Cluster: "H20",
			Workload: &SpecWorkload{Dist: "zipf"}}, "unknown length distribution"},
		{"workload without dist", ExperimentSpec{Model: "7B", Cluster: "H20",
			Workload: &SpecWorkload{}}, "dist or explicit shapes"},
		{"placement on flat cluster", ExperimentSpec{Model: "7B", Cluster: "H20",
			Placement: "greedy"}, "requires a topology cluster"},
		{"perturb on flat cluster", ExperimentSpec{Model: "7B", Cluster: "H20",
			Perturb: "slow=0x2.0"}, "requires a topology cluster"},
		{"bad placement strategy", ExperimentSpec{Model: "7B", Cluster: "DGX-H20x2",
			Placement: "hilbert"}, "unknown placement strategy"},
		{"sweep and tune", ExperimentSpec{Model: "7B", Cluster: "H20",
			Sweep: &SpecSweep{}, Tune: &SpecTune{}}, "pick one"},
		{"workload with seqlen sweep", ExperimentSpec{Model: "7B", Cluster: "H20",
			Workload: &SpecWorkload{Dist: "uniform"},
			Sweep:    &SpecSweep{SeqLens: []int{32768, 65536}}}, "discard the spec's workload"},
		{"tune orders without workload", ExperimentSpec{Model: "7B", Cluster: "H20",
			Tune: &SpecTune{Orders: []string{"longest"}}}, "without a workload"},
		{"tune placements on flat cluster", ExperimentSpec{Model: "7B", Cluster: "H20",
			Tune: &SpecTune{Placements: []string{"greedy"}}}, "without a cluster topology"},
		{"tune negative seqlen", ExperimentSpec{Model: "7B", Cluster: "H20",
			Tune: &SpecTune{SeqLens: []int{-1}}}, "non-positive sequence length"},
		{"tune bad objective", ExperimentSpec{Model: "7B", Cluster: "H20",
			Tune: &SpecTune{Objective: "goodput"}}, "unknown tune objective"},
		{"tune negative budget", ExperimentSpec{Model: "7B", Cluster: "H20",
			Tune: &SpecTune{Budget: -1}}, "non-negative"},
		{"numeric tune", ExperimentSpec{Model: "7B", Cluster: "H20", Engine: "numeric",
			Tune: &SpecTune{}}, "engine must be"},
		{"indivisible layers", ExperimentSpec{Model: "7B", Cluster: "H20", Stages: 5}, "divisible"},
	}
	for _, tc := range cases {
		_, _, err := tc.spec.Resolve()
		if err == nil {
			t.Errorf("%s: Resolve succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestParseSpecStrict checks that typos fail loudly instead of silently
// running defaults.
func TestParseSpecStrict(t *testing.T) {
	if _, err := ParseSpec(strings.NewReader(`{"model": "7B", "sequence": 1}`)); err == nil {
		t.Error("unknown field accepted")
	} else if !strings.Contains(err.Error(), "sequence") {
		t.Errorf("error %q does not name the unknown field", err)
	}
	if _, err := ParseSpec(strings.NewReader(`{"model": "7B"} {"model": "3B"}`)); err == nil {
		t.Error("trailing data accepted")
	}
}

// gateEngine wraps the simulator engine: cells at gated sequence lengths
// block until the gate closes, proving the stream yields earlier cells
// while later ones are still running.
type gateEngine struct {
	inner   Engine
	gate    chan struct{}
	freeSeq int
	planSeq int
}

func (e *gateEngine) Name() string { return e.inner.Name() }

func (e *gateEngine) Run(plan *Plan) (*Report, error) {
	if e.planSeq != e.freeSeq {
		<-e.gate
	}
	return e.inner.Run(plan)
}

// TestStreamIncremental asserts reports arrive incrementally: the first
// cell's report is yielded while every later cell is still blocked.
func TestStreamIncremental(t *testing.T) {
	// The pool must hold every cell so a blocked later cell cannot starve
	// the free first one.
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	s, err := NewSession(TinyModel(), H20Cluster(), WithSeqLen(64), WithStages(2))
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	sw := Sweep{
		Methods: []Method{Method1F1B},
		SeqLens: []int{64, 128, 256},
		Engine: func(cell *Session) Engine {
			return &gateEngine{inner: cell.SimEngine(), gate: gate, freeSeq: 64, planSeq: cell.SeqLen()}
		},
	}
	next, stop := iter.Pull2(s.Stream(sw))
	defer stop()
	r, err, ok := next()
	if !ok || err != nil {
		t.Fatalf("first cell: ok=%v err=%v", ok, err)
	}
	if r.SeqLen != 64 {
		t.Fatalf("first report seq=%d, want 64", r.SeqLen)
	}
	// The first report arrived while seq 128 and 256 were still gated.
	close(gate)
	var rest []int
	for {
		r, err, ok := next()
		if !ok {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rest = append(rest, r.SeqLen)
	}
	if !reflect.DeepEqual(rest, []int{128, 256}) {
		t.Errorf("remaining cells = %v, want [128 256]", rest)
	}
}

// TestStreamErrorsDontAbort asserts a failing cell yields its error and the
// later cells still produce reports.
func TestStreamErrorsDontAbort(t *testing.T) {
	s, err := NewSession(TinyModel(), H20Cluster(), WithSeqLen(64), WithStages(2))
	if err != nil {
		t.Fatal(err)
	}
	// tiny has 4 layers: p=3 cannot divide them, p=2 and p=4 can.
	var reports, errs []string
	for r, err := range s.Stream(Sweep{Methods: []Method{Method1F1B}, Stages: []int{3, 2, 4}}) {
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		reports = append(reports, string(r.Method))
	}
	if len(errs) != 1 || !strings.Contains(errs[0], "p=3") {
		t.Errorf("errors = %v, want one p=3 failure", errs)
	}
	if len(reports) != 2 {
		t.Errorf("reports = %v, want the two later cells", reports)
	}
	// The collector form agrees.
	reports2, err := s.Sweep(Sweep{Methods: []Method{Method1F1B}, Stages: []int{3, 2, 4}})
	if len(reports2) != 2 || err == nil {
		t.Errorf("Sweep: reports=%d err=%v, want 2 reports and a joined error", len(reports2), err)
	}
}

// TestExecuteMatchesFlagsEquivalent is the acceptance criterion: the
// committed paper spec emits the same Report JSON as the equivalent
// hand-built session, and its resolved spec reproduces it bit-identically.
func TestExecuteMatchesFlagsEquivalent(t *testing.T) {
	spec, err := ParseSpecFile("examples/spec_driven/paper_128k.json")
	if err != nil {
		t.Fatal(err)
	}
	session, rs, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Kind != RunKindRun || len(rs.Cells) != 4 {
		t.Fatalf("runset = %+v, want 4 run cells", rs)
	}
	collect := func(src iter.Seq2[*Report, error]) []byte {
		t.Helper()
		var reports []*Report
		for r, err := range src {
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, r)
		}
		data, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	specJSON := collect(session.Execute(spec))

	// The equivalent option-chain invocation.
	flags, err := NewSession(Model3B(), A800Cluster(),
		WithSeqLen(131072), WithStages(8), WithMicroBatchSize(1))
	if err != nil {
		t.Fatal(err)
	}
	var flagReports []*Report
	for _, m := range []Method{Method1F1B, MethodZB1P, MethodAdaPipe, MethodHelix} {
		r, err := flags.Simulate(m)
		if err != nil {
			t.Fatal(err)
		}
		flagReports = append(flagReports, r)
	}
	flagJSON, err := json.Marshal(flagReports)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(specJSON, flagJSON) {
		t.Error("spec-driven reports differ from the flag-equivalent session's")
	}

	// And the -emit-spec round trip is bit-identical too.
	resolved, err := spec.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	session2, _, err := resolved.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(collect(session2.Execute(resolved)), specJSON) {
		t.Error("resolved spec does not reproduce the original reports")
	}
}

// TestExecuteWorkloadSweepKeepsWorkload asserts a stages-only sweep over a
// workload spec runs every cell on the workload's per-micro-batch shapes
// instead of silently reverting to fixed shapes.
func TestExecuteWorkloadSweepKeepsWorkload(t *testing.T) {
	spec := &ExperimentSpec{
		Model: "tiny", Cluster: "H20", SeqLen: 64, Stages: 2,
		Methods: []string{"1F1B"},
		Workload: &SpecWorkload{Shapes: []Shape{
			{B: 1, S: 16}, {B: 1, S: 64}, {B: 1, S: 32}, {B: 1, S: 64},
		}},
		Sweep: &SpecSweep{Stages: []int{2, 4}},
	}
	session, rs, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Kind != RunKindSweep || len(rs.Cells) != 2 {
		t.Fatalf("runset = %+v, want a 2-cell stages sweep", rs)
	}
	var cells int
	for r, err := range session.Execute(spec) {
		if err != nil {
			t.Fatal(err)
		}
		cells++
		if len(r.MicroBatchTokens) != 4 {
			t.Errorf("p=%d: micro_batch_tokens = %v, workload was dropped", r.Stages, r.MicroBatchTokens)
		}
	}
	if cells != 2 {
		t.Errorf("cells = %d, want 2", cells)
	}
}

// TestExecuteTuneStreams checks the tune-kind Execute path: evaluated grid
// points stream as compact sim reports.
func TestExecuteTuneStreams(t *testing.T) {
	spec := &ExperimentSpec{
		Model: "3B", Cluster: "A800",
		Methods: []string{"1F1B", "HelixPipe"},
		Tune:    &SpecTune{SeqLens: []int{32768}, Stages: []int{2}},
	}
	session, rs, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Kind != RunKindTune || rs.Tune == nil {
		t.Fatalf("runset = %+v, want tune kind", rs)
	}
	var n int
	for r, err := range session.Execute(spec) {
		if err != nil {
			continue // pruned points are informational
		}
		n++
		if r.Sim == nil || r.Sim.TokensPerSecond <= 0 {
			t.Errorf("tune report %s has no sim metrics", r.Method)
		}
	}
	if n == 0 {
		t.Error("tune stream yielded no evaluated points")
	}
	// The collector agrees with the stream.
	res, err := session.Autotune(*rs.Tune)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != n {
		t.Errorf("Autotune evaluated %d, stream yielded %d", res.Evaluated, n)
	}
}

// TestExampleSpecsResolve is the spec-validation smoke: every committed
// *.json spec under examples/ must parse and resolve cleanly.
func TestExampleSpecsResolve(t *testing.T) {
	paths, err := filepath.Glob("examples/*/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example specs found")
	}
	for _, path := range paths {
		if strings.HasSuffix(path, ".golden.json") || strings.HasSuffix(path, ".trace.json") {
			// Pinned expected outputs, not specs; golden_test.go diffs them.
			continue
		}
		spec, err := ParseSpecFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if _, _, err := spec.Resolve(); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}

// TestResolveClusterListing pins the satellite fix: an unknown cluster
// reports one shared listing of every resolvable name.
func TestResolveClusterListing(t *testing.T) {
	_, _, err := ResolveCluster("B200")
	if err == nil {
		t.Fatal("unknown cluster accepted")
	}
	for _, want := range append(FlatClusterNames(), "DGX-A800x4", "DGX-H20x2", "PCIe-box") {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q misses %q", err, want)
		}
	}
}

// TestSpecNotes pins the trace-without-consumer advisory: a spec forcing
// trace while selecting no timeline/SVG/perfetto output is accepted but
// noted (the spans are recorded per cell and dropped); any span-consuming
// output silences the note.
func TestSpecNotes(t *testing.T) {
	base := ExperimentSpec{
		Model: "3B", Cluster: "A800", SeqLen: 8192, Stages: 2,
		Methods: []string{"1F1B"}, Trace: true,
	}

	spec := base
	if _, _, err := spec.Resolve(); err != nil {
		t.Fatalf("trace without output must still resolve: %v", err)
	}
	notes := spec.Notes()
	if len(notes) != 1 || !strings.Contains(notes[0], "trace is set but no timeline/svg/perfetto output") {
		t.Fatalf("want the dropped-spans note, got %v", notes)
	}

	for name, out := range map[string]SpecOutput{
		"timeline": {Timeline: true},
		"svg":      {SVG: "out.svg"},
		"perfetto": {Perfetto: "out.trace.json"},
	} {
		spec := base
		o := out
		spec.Output = &o
		if notes := spec.Notes(); len(notes) != 0 {
			t.Errorf("%s output consumes the spans, but Notes = %v", name, notes)
		}
	}

	// No trace, no note — and a broken spec yields no notes (resolution
	// errors first).
	spec = base
	spec.Trace = false
	if notes := spec.Notes(); len(notes) != 0 {
		t.Errorf("untraced spec has notes: %v", notes)
	}
	spec = base
	spec.Methods = []string{"no-such-method"}
	if notes := spec.Notes(); notes != nil {
		t.Errorf("unresolvable spec has notes: %v", notes)
	}
}

// TestSpecPerfettoOutputForcesTracing pins the resolution rule: selecting a
// Perfetto output implies span tracing, like timeline and SVG.
func TestSpecPerfettoOutputForcesTracing(t *testing.T) {
	spec := ExperimentSpec{
		Model: "3B", Cluster: "A800", SeqLen: 8192, Stages: 2,
		Methods: []string{"1F1B"},
		Output:  &SpecOutput{Perfetto: "out.trace.json"},
	}
	session, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	var reports []*Report
	for r, err := range session.Execute(&spec) {
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, r)
	}
	var buf bytes.Buffer
	if err := WritePerfettoTrace(&buf, reports); err != nil {
		t.Fatalf("perfetto output did not force tracing: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace")
	}
}
