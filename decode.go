package helixpipe

// This file bridges the public spec/session layer to internal/decode, the
// interactive-decoding (Helix Parallelism) cost model. A spec's decode
// section materializes into a DecodeSpec — the serving scenario plus the
// KVP x TPA axes to search — and Session.Decode runs the search on the
// session's hardware: the GPU and intra-node link resolve from the
// session's cluster (placement-resolved on topology sessions, flat NVLink
// otherwise), points stream through the session's event sink, and the
// report pins TTFT, the per-token latency distribution, tokens/sec, KV
// bytes per device and the collective breakdown for every sharding.

import (
	"fmt"
	"io"
	"iter"

	"repro/internal/costmodel"
	"repro/internal/decode"
	"repro/internal/obs"
)

// Decode search types (internal/decode).
type (
	// DecodeReport is the outcome of one decode search: the scenario, the
	// ranked best sharding, pruning accounting and every evaluated point.
	DecodeReport = decode.Report
	// DecodePoint is one evaluated sharding of a DecodeReport.
	DecodePoint = decode.Point
	// DecodeSharding is one (KVP, TPA) point of the attention lattice.
	DecodeSharding = decode.Sharding
	// DecodeScenario is the serving workload: model dims, head config,
	// context length, batch of sessions and GPU count.
	DecodeScenario = decode.Scenario
	// DecodeHeadConfig is the GQA/MLA attention-head geometry.
	DecodeHeadConfig = decode.HeadConfig
	// DecodeDist summarizes a per-token latency distribution.
	DecodeDist = decode.Dist
	// DecodeCommBreakdown splits a point's per-token collective time.
	DecodeCommBreakdown = decode.CommBreakdown
	// DecodeCostParams is the hardware pricing of a decode search.
	DecodeCostParams = decode.CostParams
)

// The objectives a decode search can rank shardings by.
const (
	// DecodeObjectiveLatencyPerToken minimizes mean seconds per generated
	// token (the interactive-serving default).
	DecodeObjectiveLatencyPerToken = decode.ObjectiveLatencyPerToken
	// DecodeObjectiveThroughput maximizes aggregate tokens per second.
	DecodeObjectiveThroughput = decode.ObjectiveThroughput
)

// DecodeShardings enumerates the full-utilization KVP x TPA lattice for n
// GPUs under a head config: every point with KVP*TPA = n and TPA <= K.
func DecodeShardings(n int, h DecodeHeadConfig) []DecodeSharding {
	return decode.Shardings(n, h)
}

// DecodeSpec is the materialized input of Session.Decode: the serving
// scenario and the sharding axes to search. Specs with a decode section
// produce one via Resolve (RunSet.Decode); construct one directly to
// script custom scenarios.
type DecodeSpec struct {
	// Scenario is the serving workload.
	Scenario DecodeScenario `json:"scenario"`
	// KVP and TPA pin explicit axes to cross; empty sweeps the
	// full-utilization lattice.
	KVP []int `json:"kvp,omitempty"`
	TPA []int `json:"tpa,omitempty"`
	// Objective ranks shardings (default latency_per_token).
	Objective string `json:"objective,omitempty"`
	// BudgetBytes is the per-device memory budget of the KV prune; 0 means
	// the GPU's capacity.
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
}

// decodeParams resolves the hardware pricing of a decode search from the
// session's cluster: on a topology session the first placed device's GPU
// generation and intra-node link (decode groups live inside one node), on
// a flat session the cluster's GPU and NVLink spec.
func (s *Session) decodeParams() DecodeCostParams {
	p := DecodeCostParams{GPU: s.cluster.GPU}
	p.Link = costmodel.LinkSpec{
		Class:      "nvlink",
		GBps:       s.cluster.GPU.NVLinkGBps,
		LatencySec: s.cluster.NVLinkLatency,
	}
	if s.resolvedTopo != nil {
		if g, ok := costmodel.GPUByName(s.resolvedTopo.GPUName(0)); ok {
			p.GPU = g
		}
		l := s.resolvedTopo.IntraLink(0)
		p.Link = costmodel.LinkSpec{Class: string(l.Class), GBps: l.GBps, LatencySec: l.LatencySec}
	}
	return p
}

// decodeSearch assembles the internal search for a DecodeSpec.
func (s *Session) decodeSearch(ds DecodeSpec) (*decode.Search, error) {
	return decode.NewSearch(decode.Spec{
		Scenario:    ds.Scenario,
		KVP:         append([]int(nil), ds.KVP...),
		TPA:         append([]int(nil), ds.TPA...),
		Objective:   ds.Objective,
		BudgetBytes: ds.BudgetBytes,
		Params:      s.decodeParams(),
		Sink:        s.events,
	})
}

// Decode searches the decoding scenario's KVP x TPA lattice on the
// session's hardware and returns the full report. Invalid lattice points
// and shardings whose KV cache plus weight shard exceed the memory budget
// are pruned before simulation; the rest are priced token by token against
// the growing cache. Deterministic: identical specs produce byte-identical
// reports.
func (s *Session) Decode(ds DecodeSpec) (*DecodeReport, error) {
	search, err := s.decodeSearch(ds)
	if err != nil {
		return nil, err
	}
	return search.Run()
}

// DecodeStream streams the evaluated shardings of a decode search in
// deterministic lattice order as they complete; collect the ranked report
// with Decode instead when only the outcome matters.
func (s *Session) DecodeStream(ds DecodeSpec) iter.Seq2[DecodePoint, error] {
	return func(yield func(DecodePoint, error) bool) {
		search, err := s.decodeSearch(ds)
		if err != nil {
			yield(DecodePoint{}, err)
			return
		}
		for pt, err := range search.Points() {
			if !yield(pt, err) {
				return
			}
		}
	}
}

// buildDecodeSpec materializes a normalized spec's decode section against
// the resolved model: the scenario inherits the model's dimensions, the
// head config comes from the section, and the budget converts to bytes.
func (s *ExperimentSpec) buildDecodeSpec(p *specParts) (*DecodeSpec, error) {
	d := s.Decode
	heads := DecodeHeadConfig{
		QueryHeads: p.model.Heads,
		KVHeads:    d.KVHeads,
		HeadDim:    p.model.HeadDim(),
		MLA:        d.MLA,
		LatentDim:  d.LatentDim,
	}
	ds := &DecodeSpec{
		Scenario: DecodeScenario{
			Model:        p.model.Name,
			Layers:       p.model.Layers,
			Hidden:       p.model.Hidden,
			Vocab:        p.model.Vocab,
			Heads:        heads,
			ContextLen:   d.ContextLen,
			DecodeTokens: d.DecodeTokens,
			Sessions:     d.Sessions,
			GPUs:         d.GPUs,
		},
		KVP:         append([]int(nil), d.KVP...),
		TPA:         append([]int(nil), d.TPA...),
		Objective:   d.Objective,
		BudgetBytes: int64(d.BudgetGB * float64(1<<30)),
	}
	// Validate the assembled scenario eagerly, like the tune grid: a decode
	// spec that would die inside Session.Decode must fail Resolve, or
	// -emit-spec would write an unrunnable spec.
	if err := ds.Scenario.Validate(); err != nil {
		return nil, fmt.Errorf("helixpipe: %w", err)
	}
	return ds, nil
}

// WriteDecodeReportJSON writes a decode report as indented JSON —
// deterministic, byte for byte, under identical specs.
func WriteDecodeReportJSON(w io.Writer, r *DecodeReport) error { return r.WriteJSON(w) }

// WriteDecodePerfetto writes a decode report as a Chrome/Perfetto
// trace-event JSON file: one process per sharding group (named after its
// KVP x TPA point), a "tokens" track with one slice per generated token at
// its cumulative offset, and a "comm" track summarizing the collective
// breakdown. Load the output in ui.perfetto.dev to compare shardings lane
// by lane.
func WriteDecodePerfetto(w io.Writer, r *DecodeReport) error {
	t := obs.NewTrace()
	for i := range r.Points {
		p := &r.Points[i]
		pid := i + 1
		t.ProcessName(pid, p.Sharding.String())
		t.ProcessSortIndex(pid, pid)
		t.ThreadName(pid, 0, "tokens")
		t.ThreadName(pid, 1, "comm")
		ts := 0.0
		for tok, sec := range p.TokenSeconds {
			t.Complete(pid, 0, fmt.Sprintf("token %d", tok), "decode", ts*1e6, sec*1e6, map[string]any{
				"context_len": r.Scenario.ContextLen + tok,
			})
			ts += sec
		}
		t.Complete(pid, 1, "collectives", "comm", 0, p.Comm.TotalSeconds*float64(r.Scenario.DecodeTokens)*1e6, map[string]any{
			"all_gather_seconds": p.Comm.AllGatherSeconds,
			"all_to_all_seconds": p.Comm.AllToAllSeconds,
			"all_reduce_seconds": p.Comm.AllReduceSeconds,
		})
	}
	return t.WriteJSON(w)
}
