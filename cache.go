package helixpipe

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// ReportCache memoizes simulation results by experiment content: the key of
// a spec is the hash of its Resolved (normalized, defaults-filled) form, so
// a flag-layered run and a spec-file run describing the same experiment
// share one entry, and a renamed field or reordered method list does not. It
// is the spec→Report cache behind the fleet simulator — repeated job shapes
// in a stream simulate once — and is safe for concurrent use.
type ReportCache struct {
	mu      sync.Mutex
	entries map[string]*Report
	hits    int
	misses  int
}

// NewReportCache returns an empty cache.
func NewReportCache() *ReportCache {
	return &ReportCache{entries: map[string]*Report{}}
}

// Key computes the content hash of a spec plus any extra context components
// (a carve signature, an engine revision — anything that changes the result
// without living in the spec). The spec is resolved first, so equivalent
// specs key identically; an unresolvable spec is an error.
func (c *ReportCache) Key(spec *ExperimentSpec, extra ...string) (string, error) {
	n, err := spec.Resolved()
	if err != nil {
		return "", err
	}
	blob, err := json.Marshal(n)
	if err != nil {
		return "", fmt.Errorf("helixpipe: hashing spec: %w", err)
	}
	h := sha256.New()
	h.Write(blob)
	for _, e := range extra {
		h.Write([]byte{0})
		h.Write([]byte(e))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Do returns the cached report for the key, or computes, stores and returns
// it. The second result reports a cache hit. A compute error is returned
// without storing anything, so a transient failure does not poison the key.
// Cached reports are shared — treat them as immutable.
func (c *ReportCache) Do(key string, compute func() (*Report, error)) (*Report, bool, error) {
	c.mu.Lock()
	if r, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return r, true, nil
	}
	c.misses++
	c.mu.Unlock()
	// Compute outside the lock: entries can be large simulations, and the
	// fleet engine is sequential anyway. A racing duplicate computation of
	// the same key is deterministic, so last-write-wins is harmless.
	r, err := compute()
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.entries[key] = r
	c.mu.Unlock()
	return r, false, nil
}

// Len returns the number of cached entries.
func (c *ReportCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the hit and miss counts so far.
func (c *ReportCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
