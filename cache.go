package helixpipe

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/obs"
)

// ReportCache memoizes simulation results by experiment content: the key of
// a spec is the hash of its Resolved (normalized, defaults-filled) form, so
// a flag-layered run and a spec-file run describing the same experiment
// share one entry, and a renamed field or reordered method list does not. It
// is the spec→Report cache behind the fleet simulator — repeated job shapes
// in a stream simulate once — and is safe for concurrent use.
type ReportCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    int
	misses  int
	waits   int   // hits that blocked on an in-flight computation
	bytes   int64 // total stored report size (marshaled JSON bytes)

	// Shared instruments in the registry the cache publishes into
	// (obs.Default unless injected via NewReportCacheInRegistry).
	hitsC   *obs.Counter
	missesC *obs.Counter
	waitsC  *obs.Counter
	bytesG  *obs.Gauge
}

// cacheEntry is one computation, possibly still in flight: done closes when
// report/err are final, so concurrent requests for one key wait instead of
// duplicating the simulation (and hit/miss counts stay deterministic under
// the sweep worker pool).
type cacheEntry struct {
	done   chan struct{}
	report *Report
	err    error
}

// NewReportCache returns an empty cache publishing its metrics into the
// default obs registry.
func NewReportCache() *ReportCache {
	return NewReportCacheInRegistry(obs.Default())
}

// NewReportCacheInRegistry returns an empty cache publishing hit/miss/
// singleflight-wait counters and the cached-bytes gauge into reg. Several
// caches in one registry aggregate into the same instruments; tests use a
// private registry for exact counts.
func NewReportCacheInRegistry(reg *obs.Registry) *ReportCache {
	return &ReportCache{
		entries: map[string]*cacheEntry{},
		hitsC:   reg.Counter("helix_cache_hits_total"),
		missesC: reg.Counter("helix_cache_misses_total"),
		waitsC:  reg.Counter("helix_cache_singleflight_waits_total"),
		bytesG:  reg.Gauge("helix_cache_bytes"),
	}
}

// Key computes the content hash of a spec plus any extra context components
// (a carve signature, an engine revision — anything that changes the result
// without living in the spec). The spec is resolved first, so equivalent
// specs key identically; an unresolvable spec is an error.
func (c *ReportCache) Key(spec *ExperimentSpec, extra ...string) (string, error) {
	n, err := spec.Resolved()
	if err != nil {
		return "", err
	}
	blob, err := json.Marshal(n)
	if err != nil {
		return "", fmt.Errorf("helixpipe: hashing spec: %w", err)
	}
	h := sha256.New()
	h.Write(blob)
	for _, e := range extra {
		h.Write([]byte{0})
		h.Write([]byte(e))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Do returns the cached report for the key, or computes, stores and returns
// it. The second result reports a cache hit. Concurrent calls for one key
// single-flight: the first computes, the rest wait on it and count as hits —
// duplicate cells in a fanned-out sweep simulate exactly once, and hit
// counts equal the number of duplicates regardless of pool timing. A
// compute error is returned without storing anything (waiters see it too),
// so a transient failure does not poison the key. Cached reports are shared
// — treat them as immutable.
func (c *ReportCache) Do(key string, compute func() (*Report, error)) (*Report, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if c.hitsC != nil {
			c.hitsC.Inc()
		}
		select {
		case <-e.done:
			// Finished entry: a plain hit.
		default:
			// Still in flight: this hit is a singleflight wait.
			c.waits++
			if c.waitsC != nil {
				c.waitsC.Inc()
			}
		}
		c.mu.Unlock()
		<-e.done
		return e.report, true, e.err
	}
	c.misses++
	if c.missesC != nil {
		c.missesC.Inc()
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	// Compute outside the lock: entries can be large simulations, and other
	// keys must not serialize behind this one.
	e.report, e.err = compute()
	if e.err != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	} else if blob, merr := json.Marshal(e.report); merr == nil {
		// Account the stored entry's size by its marshaled JSON — the same
		// serialization the reports ship in, so "cached bytes" means what an
		// operator expects.
		c.mu.Lock()
		c.bytes += int64(len(blob))
		c.mu.Unlock()
		if c.bytesG != nil {
			c.bytesG.Add(float64(len(blob)))
		}
	}
	close(e.done)
	return e.report, false, e.err
}

// Len returns the number of cached entries.
func (c *ReportCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the hit and miss counts so far.
func (c *ReportCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CacheStats is the full accounting of a ReportCache.
type CacheStats struct {
	// Hits and Misses partition the Do calls so far.
	Hits, Misses int
	// SingleflightWaits counts the subset of hits that blocked on a
	// computation still in flight (duplicate cells landing while the first
	// copy simulates).
	SingleflightWaits int
	// Entries is the number of stored reports.
	Entries int
	// Bytes is the total marshaled-JSON size of the stored reports.
	Bytes int64
}

// StatsDetail returns the full accounting, including singleflight waits
// and total cached bytes.
func (c *ReportCache) StatsDetail() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:              c.hits,
		Misses:            c.misses,
		SingleflightWaits: c.waits,
		Entries:           len(c.entries),
		Bytes:             c.bytes,
	}
}

// runKeyIdentity is the serialized identity of one cell run: everything a
// Report depends on — the session's resolved configuration plus the run's
// method, engine, seed and placement search. Two cells with equal identities
// produce byte-identical Reports, so Stream/Execute share one simulation
// between them.
type runKeyIdentity struct {
	Model        model.Config          `json:"model"`
	Cluster      costmodel.ClusterSpec `json:"cluster"`
	SeqLen       int                   `json:"seq_len"`
	MicroBatch   int                   `json:"micro_batch"`
	Stages       int                   `json:"stages"`
	MicroBatches int                   `json:"micro_batches"`
	Batch        model.BatchSpec       `json:"batch"`
	MemBudget    int64                 `json:"mem_budget"`
	Helix        *HelixOptions         `json:"helix,omitempty"`
	Trace        bool                  `json:"trace,omitempty"`
	SMPenalty    float64               `json:"sm_penalty,omitempty"`
	SendLaunch   float64               `json:"send_launch_seconds,omitempty"`
	Topology     *cluster.Cluster      `json:"topology,omitempty"`
	Placement    *cluster.Placement    `json:"placement,omitempty"`
	Perturb      cluster.Perturb       `json:"perturb"`

	Method            Method `json:"method"`
	Engine            string `json:"engine"`
	Seed              uint64 `json:"seed,omitempty"`
	PlacementStrategy string `json:"placement_strategy,omitempty"`
	PlacementSeed     uint64 `json:"placement_seed,omitempty"`
}

// runKey content-hashes one cell run of the session. Geometry accessors
// resolve defaults first, so a session with an explicit m equal to the 2p
// default keys identically to one without. Sessions carrying a
// caller-supplied sim topology (WithSimOptions with Options.Topology set)
// are not content-hashable and return an error; callers fall back to
// running uncached.
func (s *Session) runKey(method Method, engineName string, seed uint64, strategy string, placementSeed uint64) (string, error) {
	if s.simExplicit && s.simOpt.Topology != nil {
		return "", fmt.Errorf("helixpipe: caller-supplied sim topology is not content-hashable")
	}
	opt := s.SimOptions()
	k := runKeyIdentity{
		Model:        s.model,
		Cluster:      s.cluster,
		SeqLen:       s.SeqLen(),
		MicroBatch:   s.MicroBatchSize(),
		Stages:       s.stages,
		MicroBatches: s.MicroBatches(),
		Batch:        s.batch,
		MemBudget:    s.MemoryBudget(),
		Helix:        s.helix,
		Trace:        opt.Trace,
		SMPenalty:    opt.SMPenalty,
		SendLaunch:   opt.SendLaunchSeconds,
		Topology:     s.topo,
		Placement:    s.placement,
		Perturb:      s.perturb,

		Method:            method,
		Engine:            engineName,
		Seed:              seed,
		PlacementStrategy: strategy,
		PlacementSeed:     placementSeed,
	}
	blob, err := json.Marshal(k)
	if err != nil {
		return "", fmt.Errorf("helixpipe: hashing run identity: %w", err)
	}
	sum := sha256.Sum256(blob)
	// The prefix keeps run keys disjoint from spec-hash keys (Key) in a
	// cache shared with the fleet engine.
	return "run:" + hex.EncodeToString(sum[:]), nil
}
