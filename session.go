package helixpipe

import (
	"errors"
	"fmt"
	"iter"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tune"
)

// Session is the configured front door of the package: one model on one
// cluster at one micro-batch geometry, validated eagerly, from which plans
// are built and engines are run. A Session is immutable after construction;
// With derives a modified copy, and Sweep fans a method x sequence-length x
// stage grid out across goroutines.
type Session struct {
	model        model.Config
	cluster      costmodel.ClusterSpec
	seqLen       int
	microBatch   int
	stages       int
	microBatches int             // 0 while unset: resolved to 2*stages
	mbExplicit   bool            // WithMicroBatches was applied (kept across Sweep cells)
	batch        model.BatchSpec // per-micro-batch shapes; empty = uniform
	memBudget    int64
	memExplicit  bool
	helix        *HelixOptions
	simOpt       sim.Options
	simExplicit  bool
	trace        bool

	// Topology-aware communication: a cluster topology, the stage placement
	// on its devices, and an optional fault/straggler perturbation. All nil /
	// zero on flat-NIC sessions. resolvedTopo caches the validated Resolve
	// result; it is recomputed by validate, so With-derived sessions never
	// share a stale view.
	topo         *cluster.Cluster
	placement    *cluster.Placement
	perturb      cluster.Perturb
	resolvedTopo *cluster.Topology

	// Report caching across Stream/Execute/Sweep: cells with identical
	// content (runKey) simulate once. cache is a caller-shared cache (nil:
	// each Stream/Execute uses a fresh one); noCache disables caching.
	cache   *ReportCache
	noCache bool

	// events receives progress events from Stream/Execute/Sweep and turns
	// on telemetry provenance stamping (Report.Telemetry). Nil on
	// unobserved sessions, whose reports stay byte-stable run to run.
	events obs.Sink
}

// Option mutates a Session under construction. Options are applied in order;
// validation runs once, eagerly, after the last option.
type Option func(*Session)

// WithSeqLen sets the sequence length of every micro batch (default 131072,
// the paper's headline 128k configuration). Options apply in order: a
// fixed-shape geometry option replaces any variable-length workload set
// earlier, so sweeping SeqLens over a workload session sweeps fixed shapes
// instead of silently ignoring the axis.
func WithSeqLen(s int) Option {
	return func(ses *Session) { ses.seqLen = s; ses.batch = BatchSpec{} }
}

// WithStages sets the pipeline size p (default 8; the paper maps one stage
// to one node).
func WithStages(p int) Option { return func(ses *Session) { ses.stages = p } }

// WithMicroBatches sets the number of micro batches m per iteration. The
// default is the paper's m = 2p (section 5.1), recomputed per grid cell by
// Sweep; an explicit value is kept as-is everywhere. Like WithSeqLen, it
// replaces any variable-length workload set earlier (whose micro-batch count
// is its number of shapes).
func WithMicroBatches(m int) Option {
	return func(ses *Session) { ses.microBatches = m; ses.mbExplicit = true; ses.batch = BatchSpec{} }
}

// WithMicroBatchSize sets the micro batch size b (default 1, as in the
// paper's evaluation). Like WithSeqLen, it replaces any variable-length
// workload set earlier.
func WithMicroBatchSize(b int) Option {
	return func(ses *Session) { ses.microBatch = b; ses.batch = BatchSpec{} }
}

// WithMemoryBudget sets the per-GPU activation budget in bytes handed to
// budget-aware schedules (AdaPipe). The default derives it from the cluster:
// GPU capacity minus model states and a 10% allocator reserve. Zero or
// negative means unlimited.
func WithMemoryBudget(bytes int64) Option {
	return func(ses *Session) { ses.memBudget = bytes; ses.memExplicit = true }
}

// WithHelixOptions pins the HelixPipe build options (fold, recomputation)
// for every helix method built by the session, overriding each variant's
// registered default.
func WithHelixOptions(opt HelixOptions) Option {
	return func(ses *Session) { o := opt; ses.helix = &o }
}

// WithSimOptions replaces the simulator options. The default applies the
// cluster's CommSMPenalty and no tracing.
func WithSimOptions(opt SimOptions) Option {
	return func(ses *Session) { ses.simOpt = opt; ses.simExplicit = true }
}

// WithTrace enables span tracing in the simulator so reports can render
// ASCII and SVG timelines.
func WithTrace() Option { return func(ses *Session) { ses.trace = true } }

// WithCluster sets a cluster topology: the simulator then resolves each
// communication op's bandwidth and latency from the link class (NVLink,
// PCIe, IB) between its endpoints' placed devices, instead of pricing every
// hop at the flat inter-node NIC of the ClusterSpec. The topology must hold
// at least as many devices as the session has stages (validated eagerly).
// Stages are placed contiguously unless WithPlacement overrides; use
// Session.PlacementFor to search a placement for a method's traffic.
func WithCluster(topo ClusterTopology) Option {
	return func(ses *Session) { t := topo; ses.topo = &t }
}

// WithPlacement pins the stage-to-device placement on the session's cluster
// topology (set WithCluster first or in the same option list). The
// placement's device count must equal the session's stage count (validated
// eagerly).
func WithPlacement(p Placement) Option {
	return func(ses *Session) { q := p; ses.placement = &q }
}

// WithPerturb injects a fault/straggler perturbation — a slow device, a
// degraded link class, per-iteration compute jitter — into the session's
// cluster topology (requires WithCluster). The zero Perturb clears it.
func WithPerturb(p Perturb) Option {
	return func(ses *Session) { ses.perturb = p }
}

// WithReportCache attaches a shared report cache: Stream, Execute and Sweep
// memoize cell reports in it by content hash, so repeated cells — duplicate
// grid points, overlapping sweeps, tune grids re-visiting a shape — never
// re-simulate, across every run of every session sharing the cache. Cached
// reports are shared and must be treated as immutable. Without this option
// each Stream/Execute invocation still dedupes internally with a fresh
// private cache; read hit/miss counts off the shared cache with Stats.
func WithReportCache(c *ReportCache) Option {
	return func(ses *Session) { ses.cache = c; ses.noCache = false }
}

// WithoutReportCache disables report caching on Stream, Execute and Sweep:
// every cell simulates, even exact duplicates. The spec field `no_cache`
// maps to this option.
func WithoutReportCache() Option {
	return func(ses *Session) { ses.cache = nil; ses.noCache = true }
}

// WithWorkload sets a variable-length workload: one (b, s) shape per micro
// batch. While set, it governs the geometry — MicroBatches reports the
// spec's length and SeqLen/MicroBatchSize the per-axis maxima. Build the
// spec by hand, with UniformWorkload, or by sampling a length distribution
// and packing it (SampleLengths + PackLengths / SyntheticWorkload). An empty
// spec clears the workload, restoring the session's fixed-shape geometry;
// later fixed-shape options (WithSeqLen, WithMicroBatchSize,
// WithMicroBatches) do the same.
func WithWorkload(spec BatchSpec) Option {
	return func(ses *Session) { ses.batch = spec }
}

// WithEventSink attaches a progress-event sink: Stream, Execute and Sweep
// emit an obs.Event when each cell starts and finishes (with worker id,
// duration and cache-hit flag), and tune runs launched through the session
// inherit the sink. Attaching a sink also turns on telemetry provenance:
// every report carries a Telemetry block (wall clock, cache hit, runner
// reuse) in its JSON and CSV forms. Unobserved sessions stamp nothing, so
// their reports stay byte-identical run to run; use obs.NewProgress for a
// ready-made live stderr line, or any Sink for custom consumers.
func WithEventSink(sink obs.Sink) Option {
	return func(ses *Session) { ses.events = sink }
}

// NewSession builds and eagerly validates a session. The defaults reproduce
// the paper's headline configuration: sequence length 131072, 8 stages,
// micro batch size 1, and m = 2p micro batches.
func NewSession(m ModelConfig, cl ClusterSpec, opts ...Option) (*Session, error) {
	s := &Session{
		model:      m,
		cluster:    cl,
		seqLen:     131072,
		microBatch: 1,
		stages:     8,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.microBatches == 0 {
		s.microBatches = 2 * s.stages
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Session) validate() error {
	if err := s.model.Validate(); err != nil {
		return fmt.Errorf("helixpipe: invalid model: %w", err)
	}
	if err := s.cluster.Validate(); err != nil {
		return fmt.Errorf("helixpipe: invalid cluster: %w", err)
	}
	switch {
	case s.seqLen <= 0:
		return fmt.Errorf("helixpipe: sequence length must be positive, got %d", s.seqLen)
	case s.microBatch <= 0:
		return fmt.Errorf("helixpipe: micro batch size must be positive, got %d", s.microBatch)
	case s.stages <= 0:
		return fmt.Errorf("helixpipe: stages must be positive, got %d", s.stages)
	case s.microBatches <= 0:
		return fmt.Errorf("helixpipe: micro batches must be positive, got %d", s.microBatches)
	case s.model.Layers%s.stages != 0:
		return fmt.Errorf("helixpipe: layers (%d) must be divisible by stages (%d)",
			s.model.Layers, s.stages)
	}
	if s.helix != nil && s.helix.Fold != 1 && s.helix.Fold != 2 {
		return fmt.Errorf("helixpipe: helix fold must be 1 or 2, got %d", s.helix.Fold)
	}
	if len(s.batch.Shapes) > 0 {
		if err := s.batch.Validate(); err != nil {
			return fmt.Errorf("helixpipe: invalid workload: %w", err)
		}
	}
	return s.resolveTopology()
}

// gpuNames lists the known per-device GPU spec names for error messages.
func gpuNames() []string {
	specs := costmodel.GPUs()
	names := make([]string, len(specs))
	for i, g := range specs {
		names[i] = g.Name
	}
	return names
}

// resolveTopology validates the topology options against the session
// geometry and caches the resolved per-stage-pair link view the simulator
// reads. Flat-NIC sessions (no WithCluster) resolve to nil.
func (s *Session) resolveTopology() error {
	s.resolvedTopo = nil
	if s.topo == nil {
		if s.placement != nil {
			return fmt.Errorf("helixpipe: WithPlacement requires WithCluster")
		}
		if !s.perturb.Zero() {
			return fmt.Errorf("helixpipe: WithPerturb requires WithCluster")
		}
		return nil
	}
	for _, n := range s.topo.Nodes {
		if n.GPU != "" {
			if _, ok := costmodel.GPUByName(n.GPU); !ok {
				return fmt.Errorf("helixpipe: topology node %q has unknown GPU %q (known: %v)",
					n.Name, n.GPU, gpuNames())
			}
		}
	}
	place := cluster.Placement{}
	if s.placement != nil {
		place = *s.placement
		if place.Stages() != s.stages {
			return fmt.Errorf("helixpipe: placement maps %d devices for %d stages",
				place.Stages(), s.stages)
		}
	} else {
		var err error
		place, err = cluster.Contiguous(*s.topo, s.stages)
		if err != nil {
			return fmt.Errorf("helixpipe: %w", err)
		}
	}
	resolved, err := cluster.Resolve(*s.topo, place, s.perturb)
	if err != nil {
		return fmt.Errorf("helixpipe: %w", err)
	}
	s.resolvedTopo = resolved
	return nil
}

// With derives a new session with the extra options applied, re-validating
// eagerly. The receiver is unchanged.
func (s *Session) With(opts ...Option) (*Session, error) {
	d := *s
	if s.helix != nil {
		h := *s.helix
		d.helix = &h
	}
	if !d.mbExplicit {
		d.microBatches = 0
	}
	for _, opt := range opts {
		opt(&d)
	}
	if d.microBatches == 0 {
		d.microBatches = 2 * d.stages
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Accessors.

// Model returns the session's model configuration.
func (s *Session) Model() ModelConfig { return s.model }

// Cluster returns the session's cluster spec.
func (s *Session) Cluster() ClusterSpec { return s.cluster }

// SeqLen returns the sequence length — on a variable-length session, the
// longest micro batch's.
func (s *Session) SeqLen() int {
	if len(s.batch.Shapes) > 0 {
		return s.batch.MaxSeqLen()
	}
	return s.seqLen
}

// Stages returns the pipeline size p.
func (s *Session) Stages() int { return s.stages }

// MicroBatches returns the micro batches m per iteration — on a
// variable-length session, the workload's shape count.
func (s *Session) MicroBatches() int {
	if len(s.batch.Shapes) > 0 {
		return len(s.batch.Shapes)
	}
	return s.microBatches
}

// MicroBatchSize returns the micro batch size b — on a variable-length
// session, the largest micro batch's.
func (s *Session) MicroBatchSize() int {
	if len(s.batch.Shapes) > 0 {
		return s.batch.MaxShape().B
	}
	return s.microBatch
}

// Batch returns the session's variable-length workload spec; its Shapes are
// empty on fixed-shape sessions.
func (s *Session) Batch() BatchSpec { return s.batch }

// Topology returns the session's cluster topology and whether one was set
// with WithCluster.
func (s *Session) Topology() (ClusterTopology, bool) {
	if s.topo == nil {
		return ClusterTopology{}, false
	}
	return *s.topo, true
}

// Placement returns the stage placement the session simulates under: the
// explicit WithPlacement value, or the contiguous default of a WithCluster
// session. The second result is false on flat-NIC sessions.
func (s *Session) Placement() (Placement, bool) {
	if s.resolvedTopo == nil {
		return Placement{}, false
	}
	return s.resolvedTopo.Placement, true
}

// PlacementFor searches a placement of the session's stages for one method:
// it builds the method's plan, reads its per-(stage, peer) traffic matrix,
// and generates the named strategy's placement on the session's topology
// ("contiguous", "roundrobin", or "greedy", which minimizes the modeled P2P
// cost; seed drives the greedy local search deterministically). Apply the
// result with With(WithPlacement(p)).
func (s *Session) PlacementFor(method Method, strategy string, seed uint64) (Placement, error) {
	if s.topo == nil {
		return Placement{}, fmt.Errorf("helixpipe: PlacementFor requires WithCluster")
	}
	plan, err := s.Plan(method)
	if err != nil {
		return Placement{}, err
	}
	// The search prices candidate links as the session's perturbation leaves
	// them, so a degraded fabric steers placement away from the broken links.
	p, err := cluster.Generate(strategy, *s.topo, s.stages, plan.TrafficMatrix(),
		cluster.SearchOptions{Seed: seed, Perturb: s.perturb})
	if err != nil {
		return Placement{}, fmt.Errorf("helixpipe: %w", err)
	}
	return p, nil
}

// Workload returns the cost-model workload of the session. On a
// variable-length session the shape is the per-axis maximum — per-micro-batch
// shapes live in Costs().
func (s *Session) Workload() Workload {
	return costmodel.NewWorkload(s.model, s.cluster, model.Shape{B: s.MicroBatchSize(), S: s.SeqLen()})
}

// Costs returns the cost book plans are annotated with: per-micro-batch on a
// variable-length session, uniform otherwise. A topology-aware session gets
// placement-resolved books — each stage priced by its placed node's
// intra-node link, device generation and perturbation factor; flat NVLink
// topologies reproduce the flat book bit for bit.
func (s *Session) Costs() Costs {
	if len(s.batch.Shapes) > 0 {
		if s.resolvedTopo != nil {
			return sched.NewPlacedBatchCosts(s.Workload(), s.batch, s.resolvedTopo)
		}
		return sched.NewBatchCosts(s.Workload(), s.batch)
	}
	if s.resolvedTopo != nil {
		return sched.NewPlacedCosts(s.Workload(), s.resolvedTopo)
	}
	return sched.NewCosts(s.Workload())
}

// MemoryBudget returns the per-GPU activation budget handed to budget-aware
// schedules: the explicit WithMemoryBudget value, or the cluster-derived
// default (GPU capacity minus model states and a 10% allocator reserve).
func (s *Session) MemoryBudget() int64 {
	if s.memExplicit {
		return s.memBudget
	}
	return s.scenario().MemoryBudget()
}

// TokensPerIteration returns the tokens one iteration processes: the
// per-micro-batch sum on a variable-length session.
func (s *Session) TokensPerIteration() int64 {
	if len(s.batch.Shapes) > 0 {
		return s.batch.TotalTokens()
	}
	return int64(s.microBatch) * int64(s.seqLen) * int64(s.MicroBatches())
}

// SimOptions returns the simulator options the session runs with: the
// explicit WithSimOptions value or the cluster defaults, with tracing forced
// on by WithTrace.
func (s *Session) SimOptions() SimOptions {
	opt := s.simOpt
	if !s.simExplicit {
		opt = sim.Options{SMPenalty: s.cluster.CommSMPenalty}
	}
	if s.trace {
		opt.Trace = true
	}
	if s.resolvedTopo != nil {
		opt.Topology = s.resolvedTopo
	}
	return opt
}

// scenario bridges to the internal experiment harness for its derived
// quantities.
func (s *Session) scenario() bench.Scenario {
	return bench.Scenario{
		Model:        s.model,
		Cluster:      s.cluster,
		SeqLen:       s.SeqLen(),
		MicroBatch:   s.MicroBatchSize(),
		Stages:       s.stages,
		MicroBatches: s.MicroBatches(),
	}
}

// buildParams assembles the registry build parameters from the session.
func (s *Session) buildParams() sched.BuildParams {
	p := sched.BuildParams{MemoryBudget: s.MemoryBudget()}
	if s.helix != nil {
		p.HelixFold = s.helix.Fold
		rec := s.helix.Recompute
		p.HelixRecompute = &rec
	}
	return p
}

// Plan builds the schedule plan of any registered method for the session.
// Method names resolve case-insensitively through the registry.
func (s *Session) Plan(method Method) (*Plan, error) {
	reg, ok := sched.Lookup(string(method))
	if !ok {
		return nil, fmt.Errorf("helixpipe: unknown method %q (known: %v)", method, Methods())
	}
	cfg := sched.Config{Stages: s.stages, MicroBatches: s.MicroBatches(),
		Layers: s.model.Layers, Batch: s.batch}
	plan, err := reg.Build(cfg, s.Costs(), s.buildParams())
	if err != nil {
		return nil, err
	}
	if s.resolvedTopo != nil {
		// Stamp the session's placement so engines, validators and reports
		// see where each stage runs.
		plan.Placement = append([]int(nil), s.resolvedTopo.Placement.Devices...)
	}
	return plan, nil
}

// Engine runs plans and produces Reports. The simulator and the numeric
// goroutine runtime are interchangeable behind this interface.
type Engine interface {
	// Name labels the engine in reports ("sim" or "numeric").
	Name() string
	// Run executes one training iteration of the plan.
	Run(plan *Plan) (*Report, error)
}

// SimEngine runs plans on the deterministic discrete-event cluster
// simulator.
type SimEngine struct {
	// Options tunes the simulator.
	Options SimOptions

	meta reportMeta
}

// NewSimEngine returns a simulator engine with explicit options, detached
// from any session. Reports it produces carry plan-derived metadata only.
func NewSimEngine(opt SimOptions) *SimEngine { return &SimEngine{Options: opt} }

// SimEngine returns the session's simulator engine: session sim options and
// report metadata (model, cluster, geometry) included.
func (s *Session) SimEngine() *SimEngine {
	return &SimEngine{Options: s.SimOptions(), meta: s.reportMeta()}
}

// Name implements Engine.
func (e *SimEngine) Name() string { return EngineSim }

// Run implements Engine: it simulates one training iteration.
func (e *SimEngine) Run(plan *Plan) (*Report, error) {
	res, err := sim.Run(plan, e.Options)
	if err != nil {
		return nil, err
	}
	return newSimReport(plan, res, e.meta), nil
}

// NumericEngine runs plans on real tensors: one goroutine per pipeline
// stage, channels as the interconnect.
type NumericEngine struct {
	// Model is the real-parameter model the iteration trains.
	Model *NumericModel
	// Batches are the micro batches of one iteration; the length must equal
	// the plan's MicroBatches.
	Batches []MicroBatch

	meta reportMeta
}

// NewNumericEngine returns a numeric engine over an explicit model and
// batches, detached from any session.
func NewNumericEngine(m *NumericModel, batches []MicroBatch) *NumericEngine {
	return &NumericEngine{Model: m, Batches: batches}
}

// NumericEngine returns the session's numeric engine: a deterministically
// initialized model of the session's configuration and synthetic micro
// batches of the session's geometry, both derived from seed. On a
// variable-length session every micro batch is generated at its own shape.
func (s *Session) NumericEngine(seed uint64) *NumericEngine {
	batches := make([]MicroBatch, s.MicroBatches())
	for i := range batches {
		b, sl := s.microBatch, s.seqLen
		if i < len(s.batch.Shapes) {
			b, sl = s.batch.Shapes[i].B, s.batch.Shapes[i].S
		}
		batches[i] = nn.SyntheticBatch(s.model, b, sl, seed+uint64(i)+1)
	}
	return &NumericEngine{
		Model:   nn.NewModel(s.model, seed),
		Batches: batches,
		meta:    s.reportMeta(),
	}
}

// Name implements Engine.
func (e *NumericEngine) Name() string { return EngineNumeric }

// Run implements Engine: it executes one training iteration numerically.
func (e *NumericEngine) Run(plan *Plan) (*Report, error) {
	res, err := exec.Run(plan, e.Model, e.Batches)
	if err != nil {
		return nil, err
	}
	return newNumericReport(plan, res, e.meta), nil
}

// Run builds the method's plan and executes it on the engine.
func (s *Session) Run(engine Engine, method Method) (*Report, error) {
	plan, err := s.Plan(method)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", method, err)
	}
	report, err := engine.Run(plan)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", method, engine.Name(), err)
	}
	return report, nil
}

// Simulate builds and simulates one method: shorthand for
// s.Run(s.SimEngine(), method).
func (s *Session) Simulate(method Method) (*Report, error) {
	return s.Run(s.SimEngine(), method)
}

// Autotune searches the spec's method x seqlen x stages x micro-batch grid
// for the session's model and cluster: grid points are pruned cheaply with
// memsim peak-memory estimates before anything simulates, the survivors fan
// out across a bounded worker pool with memoized cost-model evaluations, and
// the result ranks a best-throughput pick per sequence length next to a
// throughput-vs-peak-memory Pareto frontier.
//
// Empty spec axes fall back to the session's own geometry; a zero memory
// budget means the GPU's full capacity. Build or simulation failures of
// individual grid points are counted in the result's pruning accounting, not
// returned as errors. Autotune is a thin collector over the tuner's point
// stream (tune.Search); Execute streams the same points report by report.
func (s *Session) Autotune(spec TuneSpec) (*TuneResult, error) {
	return tune.Run(s.model, s.cluster, s.fillTuneDefaults(spec))
}

// Sweep describes a grid of runs fanned out by Session.Sweep. Empty axes
// fall back to the session's own value (or, for Methods, to every
// registered method).
type Sweep struct {
	// Methods are the schedules to run; empty means every registered method.
	Methods []Method
	// SeqLens are the sequence lengths; empty means the session's.
	SeqLens []int
	// Stages are the pipeline sizes; empty means the session's.
	Stages []int
	// Engine builds the engine of one grid cell; nil means the cell
	// session's SimEngine.
	Engine func(cell *Session) Engine
}

// streamCache returns the cache one Stream/Execute invocation memoizes cell
// reports in: the session's shared cache when one is attached, a fresh
// private cache otherwise (duplicate cells within the one grid still
// simulate once), nil when caching is disabled.
func (s *Session) streamCache() *ReportCache {
	if s.noCache {
		return nil
	}
	if s.cache != nil {
		return s.cache
	}
	return NewReportCache()
}

// cachedJob wraps one cell job with the report cache: identical cells share
// one simulation. A nil cache, or a cell whose identity cannot be
// content-hashed (caller-supplied sim topology), runs the job directly. On
// observed sessions (WithEventSink) the wrapper also stamps telemetry
// provenance — wall clock, cache-hit flag, runner reuse — onto a shallow
// copy of the report: stored cache entries stay provenance-free, so
// sessions sharing the cache never see another run's wall clocks.
func cachedJob(cache *ReportCache, cell *Session, method Method, engineName string, seed uint64,
	strategy string, placementSeed uint64, job func() (*Report, error)) func() (*Report, error) {
	key, useCache := "", false
	if cache != nil {
		if k, err := cell.runKey(method, engineName, seed, strategy, placementSeed); err == nil {
			key, useCache = k, true
		}
	}
	if !useCache && cell.events == nil {
		return job
	}
	return func() (*Report, error) {
		start := time.Now()
		var (
			r   *Report
			hit bool
			err error
		)
		if useCache {
			r, hit, err = cache.Do(key, job)
		} else {
			r, err = job()
		}
		if err != nil || r == nil || cell.events == nil {
			return r, err
		}
		r2 := *r
		t := &ReportTelemetry{WallSeconds: time.Since(start).Seconds(), CacheHit: hit}
		if r.simResult != nil {
			t.RunnerReused = r.simResult.PoolReused
		}
		r2.Telemetry = t
		return &r2, nil
	}
}

// cellSecondsH is the per-cell wall-clock distribution across every
// Stream/Execute/Sweep job (cache hits included — a hit's cell time is its
// cache wait). Bounds span sub-millisecond cached lookups to multi-second
// long-sequence simulations.
var cellSecondsH = obs.Default().Histogram("helix_cell_seconds",
	[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10})

// streamReports runs the jobs on a bounded worker pool and yields each
// job's (report, error) in job order, as soon as it is available — the
// first report arrives while later cells are still simulating. A
// semaphore keeps the pool full even when the in-order head cell is the
// slow one, while a launch window a few pool-widths ahead of the yield
// cursor caps how many finished reports can pile up waiting their turn: a
// 500-cell grid holds a bounded window of reports, not five hundred. A
// job error is yielded as (nil, err) and never aborts the remaining jobs.
// Breaking out of the iteration launches nothing further; in-flight jobs
// finish into their buffered slots and are collected by the GC.
//
// A non-nil sink receives a CellStarted/CellFinished event pair per job,
// carrying the job's label, the worker slot that ran it, its wall clock
// and (off the report's telemetry) the cache-hit flag.
func streamReports(jobs []func() (*Report, error), labels []string, sink obs.Sink) iter.Seq2[*Report, error] {
	return func(yield func(*Report, error) bool) {
		type slot struct {
			report *Report
			err    error
		}
		workers := max(runtime.GOMAXPROCS(0), 1)
		window := 4 * workers
		results := make([]chan slot, len(jobs))
		for i := range results {
			results[i] = make(chan slot, 1)
		}
		// The semaphore doubles as the worker-id pool: a job holds one id
		// for its whole run, so events can say which slot ran it.
		sem := make(chan int, workers)
		for w := 0; w < workers; w++ {
			sem <- w
		}
		labelAt := func(i int) string {
			if i < len(labels) {
				return labels[i]
			}
			return ""
		}
		launch := func(i int) {
			go func() {
				w := <-sem
				defer func() { sem <- w }()
				start := time.Now()
				if sink != nil {
					sink.Emit(obs.Event{Kind: obs.CellStarted, Label: labelAt(i),
						Index: i, Total: len(jobs), Worker: w})
				}
				r, err := jobs[i]()
				cellSecondsH.Observe(time.Since(start).Seconds())
				if sink != nil {
					ev := obs.Event{Kind: obs.CellFinished, Label: labelAt(i),
						Index: i, Total: len(jobs), Worker: w,
						Duration: time.Since(start), Err: err}
					if r != nil && r.Telemetry != nil {
						ev.CacheHit = r.Telemetry.CacheHit
					}
					sink.Emit(ev)
				}
				results[i] <- slot{r, err}
			}()
		}
		next := 0
		for ; next < len(jobs) && next < window; next++ {
			launch(next)
		}
		for i := range jobs {
			res := <-results[i]
			if next < len(jobs) {
				launch(next)
				next++
			}
			if !yield(res.report, res.err) {
				return
			}
		}
	}
}

// Stream is the streaming core of Sweep: it derives one session per
// (seqlen, stages) cell, runs every method on the cell's engine across a
// bounded worker pool, and yields the reports in deterministic grid order
// (seqlen-major, then stages, then method) as each becomes available. Cells
// that fail — an invalid derived geometry or a build/run error — yield
// (nil, err) and never abort the remaining cells. Sweep collects this
// stream; iterate it directly when the grid is large enough that buffering
// every report matters.
func (s *Session) Stream(sw Sweep) iter.Seq2[*Report, error] {
	methods := sw.Methods
	if len(methods) == 0 {
		methods = Methods()
	}
	seqLens := sw.SeqLens
	if len(seqLens) == 0 {
		seqLens = []int{s.SeqLen()}
	}
	stages := sw.Stages
	if len(stages) == 0 {
		stages = []int{s.stages}
	}
	engineOf := sw.Engine
	if engineOf == nil {
		engineOf = func(cell *Session) Engine { return cell.SimEngine() }
	}
	// Custom engine factories are opaque and cannot be content-keyed, so
	// only the default sim-engine path caches.
	cache := s.streamCache()
	if sw.Engine != nil {
		cache = nil
	}

	var jobs []func() (*Report, error)
	var labels []string
	for _, seq := range seqLens {
		for _, p := range stages {
			derived, derr := s.With(WithSeqLen(seq), WithStages(p))
			for _, m := range methods {
				seq, p, method := seq, p, m
				labels = append(labels, fmt.Sprintf("%s seq=%d p=%d", method, seq, p))
				if derr != nil {
					jobs = append(jobs, func() (*Report, error) {
						return nil, fmt.Errorf("seq=%d p=%d: %w", seq, p, derr)
					})
					continue
				}
				cell := derived
				run := func() (*Report, error) {
					r, err := cell.Run(engineOf(cell), method)
					if err != nil {
						return nil, fmt.Errorf("seq=%d p=%d: %w", cell.SeqLen(), cell.stages, err)
					}
					return r, nil
				}
				jobs = append(jobs, cachedJob(cache, cell, method, EngineSim, 0, "", 0, run))
			}
		}
	}
	return streamReports(jobs, labels, s.events)
}

// Sweep is a thin collector over Stream: it drains the stream and returns
// the successful reports in grid order plus the joined error of every
// failed cell.
func (s *Session) Sweep(sw Sweep) ([]*Report, error) {
	var reports []*Report
	var errs []error
	for r, err := range s.Stream(sw) {
		if err != nil {
			errs = append(errs, err)
			continue
		}
		reports = append(reports, r)
	}
	return reports, errors.Join(errs...)
}

// Execute runs a resolved experiment spec on the session, streaming its
// reports as they become available — a 500-cell sweep holds at most a
// worker-pool's worth of reports, not five hundred. The receiver is
// normally the session returned by
// spec.Resolve(); the spec's cells (method, seqlen, stages) derive from it
// with With. Per-cell failures yield (nil, err) and never abort the
// remaining cells; only an unresolvable spec ends the stream early (its one
// yield is the resolution error). Execute re-resolves the spec rather than
// trusting a caller-supplied RunSet — a deliberate tradeoff: resolution is
// milliseconds against simulation seconds, it is deterministic, and it
// keeps the iterator safe to build from a bare spec without a prior
// Resolve call.
//
// A RunKindTune spec streams the autotuner's evaluated points as compact
// sim reports (geometry plus iteration/throughput/bubble metrics) in grid
// order; use Autotune when the ranked TuneResult is wanted instead.
func (s *Session) Execute(spec *ExperimentSpec) iter.Seq2[*Report, error] {
	return func(yield func(*Report, error) bool) {
		n, err := spec.normalized()
		if err != nil {
			yield(nil, err)
			return
		}
		p, err := n.resolveParts()
		if err != nil {
			yield(nil, err)
			return
		}
		rs, err := n.runSet(p)
		if err != nil {
			yield(nil, err)
			return
		}
		if rs.Kind == RunKindFleet {
			// A fleet run produces one FleetReport, not a stream of cell
			// reports — it has its own entry point.
			yield(nil, fmt.Errorf("helixpipe: a fleet spec runs via Session.Fleet (or the helixfleet tool), not Execute"))
			return
		}
		if rs.Kind == RunKindDecode {
			// Likewise: a decode run produces one DecodeReport, via its own
			// entry point.
			yield(nil, fmt.Errorf("helixpipe: a decode spec runs via Session.Decode (or the helixserve tool), not Execute"))
			return
		}
		if rs.Kind == RunKindTune {
			s.executeTune(*rs.Tune, yield)
			return
		}
		cache := s.streamCache()
		if n.NoCache {
			cache = nil
		}
		jobs := make([]func() (*Report, error), 0, len(rs.Cells))
		labels := make([]string, 0, len(rs.Cells))
		for _, c := range rs.Cells {
			cell := c
			labels = append(labels, fmt.Sprintf("%s seq=%d p=%d", cell.Method, cell.SeqLen, cell.Stages))
			run := s
			var derr error
			if rs.Kind == RunKindSweep {
				// A workload spec sweeps stages only: re-deriving the
				// sequence length would clear its per-micro-batch shapes.
				opts := []Option{WithStages(cell.Stages)}
				if n.Workload == nil {
					opts = append(opts, WithSeqLen(cell.SeqLen))
				}
				run, derr = s.With(opts...)
			}
			runJob := func() (*Report, error) {
				if derr != nil {
					return nil, fmt.Errorf("seq=%d p=%d: %w", cell.SeqLen, cell.Stages, derr)
				}
				placed := run
				if rs.Placement != "" {
					// The placement search reads the method's own traffic
					// matrix, so each cell derives its own placed session.
					placement, err := run.PlacementFor(cell.Method, rs.Placement, rs.PlacementSeed)
					if err != nil {
						return nil, fmt.Errorf("%s: %w", cell.Method, err)
					}
					if placed, err = run.With(WithPlacement(placement)); err != nil {
						return nil, fmt.Errorf("%s: %w", cell.Method, err)
					}
				}
				var engine Engine
				if rs.Engine == EngineNumeric {
					engine = placed.NumericEngine(rs.Seed)
				} else {
					engine = placed.SimEngine()
				}
				return placed.Run(engine, cell.Method)
			}
			if derr != nil {
				jobs = append(jobs, runJob)
				continue
			}
			jobs = append(jobs, cachedJob(cache, run, cell.Method, rs.Engine, rs.Seed, rs.Placement, rs.PlacementSeed, runJob))
		}
		for r, err := range streamReports(jobs, labels, s.events) {
			if !yield(r, err) {
				return
			}
		}
	}
}

// executeTune streams a tune-kind run: each evaluated grid point becomes a
// compact sim report, pruned points yield their prune error.
func (s *Session) executeTune(spec TuneSpec, yield func(*Report, error) bool) {
	search, err := tune.NewSearch(s.model, s.cluster, s.fillTuneDefaults(spec))
	if err != nil {
		yield(nil, err)
		return
	}
	for point, err := range search.Points() {
		if err != nil {
			if !yield(nil, err) {
				return
			}
			continue
		}
		r := &Report{
			Method:             point.Method,
			Engine:             EngineSim,
			Model:              s.model.Name,
			Cluster:            s.cluster.Name,
			SeqLen:             point.SeqLen,
			MicroBatchSize:     point.MicroBatchSize,
			Stages:             point.Stages,
			MicroBatches:       point.MicroBatches,
			Layers:             s.model.Layers,
			PlacementStrategy:  point.Placement,
			Placement:          append([]int(nil), point.PlacementDevices...),
			PadFraction:        point.PadFraction,
			TokensPerIteration: point.TokensPerIteration,
			Sim: &SimMetrics{
				IterationSeconds: point.IterationSeconds,
				TokensPerSecond:  point.TokensPerSecond,
				BubbleFraction:   point.BubbleFraction,
				BubbleSeconds:    point.BubbleFraction * point.IterationSeconds,
			},
		}
		if !yield(r, nil) {
			return
		}
	}
}

// fillTuneDefaults resolves a TuneSpec's empty axes against the session's
// own geometry, topology and perturbation — shared by Autotune and the
// tune-kind Execute path.
func (s *Session) fillTuneDefaults(spec TuneSpec) TuneSpec {
	if len(spec.SeqLens) == 0 && len(spec.Workloads) == 0 {
		if len(s.batch.Shapes) > 0 {
			// A variable-length session tunes its own workload by default.
			spec.Workloads = []TuneWorkload{{Name: "session", Batch: s.batch}}
		} else {
			spec.SeqLens = []int{s.SeqLen()}
		}
	}
	if len(spec.Stages) == 0 {
		spec.Stages = []int{s.stages}
	}
	if len(spec.MicroBatches) == 0 && s.mbExplicit {
		spec.MicroBatches = []int{s.microBatches}
	}
	if len(spec.MicroBatchSizes) == 0 {
		spec.MicroBatchSizes = []int{s.MicroBatchSize()}
	}
	if spec.Cluster == nil && s.topo != nil {
		// A topology-aware session tunes placements on its own topology by
		// default — including its perturbation, so a degraded-fabric session
		// ranks configurations under the degraded fabric.
		spec.Cluster = s.topo
		if spec.Perturb == nil && !s.perturb.Zero() {
			p := s.perturb
			spec.Perturb = &p
		}
	}
	if spec.Sink == nil {
		// An observed session's tune runs report progress to the same sink.
		spec.Sink = s.events
	}
	return spec
}
