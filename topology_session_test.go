package helixpipe

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// testTopology builds a 2-node test topology with enough devices for a tiny
// pipeline.
func testTopology(devicesPerNode int) ClusterTopology {
	intra := ClusterLink{Class: LinkNVLink, GBps: 200, LatencySec: 6e-6}
	return ClusterTopology{
		Name: "test-2node",
		GPU:  "H20",
		Nodes: []ClusterNode{
			{Devices: devicesPerNode, Intra: intra},
			{Devices: devicesPerNode, Intra: intra},
		},
		Inter: ClusterLink{Class: LinkIB, GBps: 46, LatencySec: 14e-6},
	}
}

func TestSessionTopologyValidation(t *testing.T) {
	topo := testTopology(2)
	cases := []struct {
		name    string
		opts    []Option
		wantErr string
	}{
		{"placement-without-cluster",
			[]Option{WithSeqLen(64), WithStages(4), WithPlacement(Placement{Devices: []int{0, 1, 2, 3}})},
			"WithPlacement requires WithCluster"},
		{"perturb-without-cluster",
			[]Option{WithSeqLen(64), WithStages(4), WithPerturb(Perturb{SlowDevice: 0, SlowFactor: 2})},
			"WithPerturb requires WithCluster"},
		{"too-many-stages",
			[]Option{WithSeqLen(64), WithStages(4), WithCluster(testTopology(1))},
			"exceed the 2 devices"},
		{"placement-count-mismatch",
			[]Option{WithSeqLen(64), WithStages(4), WithCluster(topo),
				WithPlacement(Placement{Devices: []int{0, 1}})},
			"placement maps 2 devices for 4 stages"},
		{"placement-shared-device",
			[]Option{WithSeqLen(64), WithStages(4), WithCluster(topo),
				WithPlacement(Placement{Devices: []int{0, 0, 1, 2}})},
			"share device"},
		{"perturb-bad-class",
			[]Option{WithSeqLen(64), WithStages(4), WithCluster(topo),
				WithPerturb(Perturb{SlowDevice: -1, DegradeClass: "pcie", DegradeFactor: 0.5})},
			"no such link class"},
	}
	for _, tc := range cases {
		_, err := NewSession(TinyModel(), H20Cluster(), tc.opts...)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestSessionTopologyReport(t *testing.T) {
	topo := testTopology(2)
	s, err := NewSession(TinyModel(), H20Cluster(),
		WithSeqLen(64), WithStages(4), WithCluster(topo))
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Simulate(Method1F1B)
	if err != nil {
		t.Fatal(err)
	}
	if report.Topology != "test-2node" {
		t.Errorf("Topology = %q", report.Topology)
	}
	if report.PlacementStrategy != PlacementContiguous {
		t.Errorf("PlacementStrategy = %q", report.PlacementStrategy)
	}
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(report.Placement, want) {
		t.Errorf("Placement = %v, want %v", report.Placement, want)
	}
	if len(report.Sim.LinkTraffic) != 2 {
		t.Fatalf("LinkTraffic = %+v, want nvlink and ib", report.Sim.LinkTraffic)
	}
	if report.Sim.LinkTraffic[0].Class != "ib" || report.Sim.LinkTraffic[1].Class != "nvlink" {
		t.Errorf("LinkTraffic classes = %+v", report.Sim.LinkTraffic)
	}
	for _, lt := range report.Sim.LinkTraffic {
		if lt.Bytes <= 0 || lt.Transfers <= 0 {
			t.Errorf("empty link traffic entry %+v", lt)
		}
	}

	// JSON round trip keeps the topology fields.
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Topology != report.Topology ||
		!reflect.DeepEqual(decoded.Placement, report.Placement) ||
		len(decoded.Sim.LinkTraffic) != 2 {
		t.Errorf("JSON round trip lost topology fields: %+v", decoded)
	}

	// CSV stays rectangular with the new columns.
	var buf bytes.Buffer
	if err := WriteReportsCSV(&buf, []*Report{report}); err != nil {
		t.Fatal(err)
	}
	header := strings.Split(strings.SplitN(buf.String(), "\n", 2)[0], ",")
	if len(header) != len(report.CSVRow()) {
		t.Errorf("CSV header %d columns, row %d", len(header), len(report.CSVRow()))
	}
	joined := buf.String()
	for _, col := range []string{"topology", "placement", "link_traffic", "pad_fraction"} {
		if !strings.Contains(joined, col) {
			t.Errorf("CSV header missing %q", col)
		}
	}
}

// TestSessionTopologySlowdown is the acceptance criterion at the session
// level: the same fixed helix plan strictly slows down moving from one
// NVLink node to two IB-joined nodes.
func TestSessionTopologySlowdown(t *testing.T) {
	oneNode := ClusterTopology{
		Name: "test-1node", GPU: "H20",
		Nodes: []ClusterNode{{Devices: 4,
			Intra: ClusterLink{Class: LinkNVLink, GBps: 200, LatencySec: 6e-6}}},
	}
	twoNode := testTopology(2)
	base, err := NewSession(Model7B(), H20Cluster(), WithSeqLen(32768), WithStages(4))
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]float64{}
	for name, topo := range map[string]ClusterTopology{"one": oneNode, "two": twoNode} {
		s, err := base.With(WithCluster(topo))
		if err != nil {
			t.Fatal(err)
		}
		report, err := s.Simulate(MethodHelix)
		if err != nil {
			t.Fatal(err)
		}
		times[name] = report.Sim.IterationSeconds
	}
	if times["two"] <= times["one"] {
		t.Errorf("2-node IB iteration %g not above 1-node NVLink %g", times["two"], times["one"])
	}
}

func TestPlacementForDeterministicAndApplied(t *testing.T) {
	topo := testTopology(4)
	s, err := NewSession(Model7B(), H20Cluster(), WithSeqLen(16384), WithStages(8),
		WithCluster(topo))
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.PlacementFor(Method1F1B, PlacementGreedy, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.PlacementFor(Method1F1B, PlacementGreedy, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Devices, b.Devices) {
		t.Errorf("same seed, different placements: %v vs %v", a.Devices, b.Devices)
	}
	placedSession, err := s.With(WithPlacement(a))
	if err != nil {
		t.Fatal(err)
	}
	report, err := placedSession.Simulate(Method1F1B)
	if err != nil {
		t.Fatal(err)
	}
	if report.PlacementStrategy != PlacementGreedy ||
		!reflect.DeepEqual(report.Placement, a.Devices) {
		t.Errorf("placed report carries %q %v, want greedy %v",
			report.PlacementStrategy, report.Placement, a.Devices)
	}
}

func TestReportPadFraction(t *testing.T) {
	workload, err := SyntheticWorkload(DistBimodal, 32, 512, 4096, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	if workload.PadFraction() <= 0 {
		t.Fatalf("bimodal packing produced no padding (fraction %g)", workload.PadFraction())
	}
	s, err := NewSession(Model3B(), H20Cluster(), WithStages(2), WithWorkload(workload))
	if err != nil {
		t.Fatal(err)
	}
	report, err := s.Simulate(Method1F1B)
	if err != nil {
		t.Fatal(err)
	}
	if report.PadFraction != workload.PadFraction() || report.RealTokens != workload.RealTokens {
		t.Errorf("report pad %g/%d, workload %g/%d",
			report.PadFraction, report.RealTokens, workload.PadFraction(), workload.RealTokens)
	}
	row := report.CSVRow()
	found := false
	for _, cell := range row {
		if cell != "" && strings.Contains(cell, ".") && cell == trimFloat(report.PadFraction) {
			found = true
		}
	}
	if !found {
		t.Errorf("CSV row misses pad fraction %g: %v", report.PadFraction, row)
	}
}

func trimFloat(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

func TestAutotunePlacementAxis(t *testing.T) {
	topo := testTopology(4)
	s, err := NewSession(Model3B(), A800Cluster(), WithSeqLen(16384), WithStages(4),
		WithCluster(topo))
	if err != nil {
		t.Fatal(err)
	}
	result, err := s.Autotune(TuneSpec{
		Methods: []Method{Method1F1B, MethodHelix},
		Stages:  []int{4, 8, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if result.Topology != "test-2node" {
		t.Errorf("result topology = %q", result.Topology)
	}
	// 16 stages cannot be placed on 8 devices: pruned with the placement
	// reason, not a sim error.
	if result.Pruned[TunePrunePlacement] == 0 {
		t.Errorf("no placement prunes in %+v", result.Pruned)
	}
	if len(result.Points) == 0 {
		t.Fatal("no evaluated points")
	}
	for _, p := range result.Points {
		if p.Stages > 8 {
			t.Errorf("16-stage point evaluated: %+v", p)
		}
		if p.Placement == "" || len(p.PlacementDevices) != p.Stages {
			t.Errorf("point misses placement: %+v", p)
		}
	}
	if len(result.Best) == 0 || result.Best[0].Placement == "" {
		t.Errorf("best point misses placement: %+v", result.Best)
	}
	// The rendered best table shows the placement column.
	if table := result.BestTable(); !strings.Contains(table, "placement") {
		t.Errorf("BestTable misses placement column:\n%s", table)
	}
}
