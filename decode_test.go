package helixpipe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func decodeSpecJSON(t *testing.T, text string) *ExperimentSpec {
	t.Helper()
	spec, err := ParseSpec(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestDecodeSpecDefaults(t *testing.T) {
	spec := decodeSpecJSON(t, `{"model": "7B", "cluster": "H20", "decode": {}}`)
	n, err := spec.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	d := n.Decode
	if d.ContextLen != 1<<20 || d.DecodeTokens != 32 || d.Sessions != 4 || d.GPUs != 8 {
		t.Fatalf("decode defaults = %+v", d)
	}
	if d.KVHeads != 32 {
		t.Fatalf("kv_heads default = %d, want the 7B model's 32 heads (MHA)", d.KVHeads)
	}
	if d.Objective != DecodeObjectiveLatencyPerToken {
		t.Fatalf("objective default = %q", d.Objective)
	}
}

func TestDecodeSpecMLADefaults(t *testing.T) {
	spec := decodeSpecJSON(t, `{"model": "7B", "cluster": "H20", "decode": {"mla": true}}`)
	n, err := spec.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	if n.Decode.LatentDim != 512 {
		t.Fatalf("mla latent_dim default = %d, want 512", n.Decode.LatentDim)
	}
	if n.Decode.KVHeads != 0 {
		t.Fatalf("mla kv_heads = %d, want unset", n.Decode.KVHeads)
	}
}

func TestDecodeSpecRoundTrip(t *testing.T) {
	spec := decodeSpecJSON(t, `{
		"model": "7B", "cluster": "H20",
		"decode": {"context_len": 262144, "kv_heads": 8, "kvp": [2, 4], "tpa": [1, 2], "budget_gb": 64}
	}`)
	n, err := spec.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSpec(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := back.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(n)
	b, _ := json.Marshal(n2)
	if !bytes.Equal(a, b) {
		t.Fatalf("decode spec round trip drifted:\n%s\n%s", a, b)
	}
	_, rs1, err := n.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	_, rs2, err := n2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := json.Marshal(rs1)
	r2, _ := json.Marshal(rs2)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("decode RunSet round trip drifted:\n%s\n%s", r1, r2)
	}
	if rs1.Kind != RunKindDecode || rs1.Decode == nil {
		t.Fatalf("RunSet = %+v, want decode kind", rs1)
	}
}

func TestDecodeSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"with sweep", `{"model": "7B", "cluster": "H20", "decode": {}, "sweep": {}}`, "cannot also sweep"},
		{"with tune", `{"model": "7B", "cluster": "H20", "decode": {}, "tune": {}}`, "cannot also sweep"},
		{"with workload", `{"model": "7B", "cluster": "H20", "decode": {}, "workload": {"dist": "uniform"}}`, "drop the workload"},
		{"numeric engine", `{"model": "7B", "cluster": "H20", "engine": "numeric", "decode": {}}`, "engine must be"},
		{"mla with kv heads", `{"model": "7B", "cluster": "H20", "decode": {"mla": true, "kv_heads": 8}}`, "drop kv_heads"},
		{"latent without mla", `{"model": "7B", "cluster": "H20", "decode": {"latent_dim": 512}}`, "requires mla"},
		{"kv heads not dividing", `{"model": "7B", "cluster": "H20", "decode": {"kv_heads": 5}}`, "must divide"},
		{"bad objective", `{"model": "7B", "cluster": "H20", "decode": {"objective": "goodput"}}`, "unknown decode objective"},
		{"bad kvp", `{"model": "7B", "cluster": "H20", "decode": {"kvp": [0]}}`, "kvp values"},
	}
	for _, c := range cases {
		spec := decodeSpecJSON(t, c.text)
		_, err := spec.Resolved()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Resolved() err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestSessionDecode(t *testing.T) {
	spec := decodeSpecJSON(t, `{
		"model": "7B", "cluster": "H20",
		"decode": {"context_len": 65536, "decode_tokens": 4, "kv_heads": 8}
	}`)
	session, rs, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	report, err := session.Decode(*rs.Decode)
	if err != nil {
		t.Fatal(err)
	}
	if report.Best == nil || report.Evaluated == 0 {
		t.Fatalf("empty decode report: %+v", report)
	}
	if report.GPU != "H20" || report.Link != "nvlink" {
		t.Fatalf("hardware provenance = %q/%q", report.GPU, report.Link)
	}
	// The streamed variant yields the same points in the same order.
	var streamed []DecodePoint
	for pt, err := range session.DecodeStream(*rs.Decode) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, pt)
	}
	if len(streamed) != len(report.Points) {
		t.Fatalf("stream yielded %d points, report has %d", len(streamed), len(report.Points))
	}
	for i := range streamed {
		if streamed[i].Sharding != report.Points[i].Sharding {
			t.Fatalf("stream order diverged at %d", i)
		}
	}
}

func TestExecuteRejectsDecodeSpec(t *testing.T) {
	spec := decodeSpecJSON(t, `{"model": "7B", "cluster": "H20", "decode": {}}`)
	session, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range session.Execute(spec) {
		if err == nil || !strings.Contains(err.Error(), "Session.Decode") {
			t.Fatalf("Execute on a decode spec = %v, want the Session.Decode redirect", err)
		}
		return
	}
	t.Fatal("Execute yielded nothing")
}

func TestWriteDecodePerfetto(t *testing.T) {
	spec := decodeSpecJSON(t, `{
		"model": "7B", "cluster": "H20",
		"decode": {"context_len": 65536, "decode_tokens": 2, "kv_heads": 8}
	}`)
	session, rs, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	report, err := session.Decode(*rs.Decode)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDecodePerfetto(&buf, report); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty perfetto trace")
	}
}
