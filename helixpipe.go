// Package helixpipe is a Go reproduction of "HelixPipe: Efficient
// Distributed Training of Long Sequence Transformers with Attention Parallel
// Pipeline Parallelism" (PPoPP 2026).
//
// The public surface is built around three concepts:
//
//   - A Session binds a ModelConfig and a ClusterSpec with functional
//     options (WithSeqLen, WithStages, WithMicroBatches, ...), validates
//     eagerly, and builds schedule plans for any registered method.
//
//   - An Engine runs plans. Two interchangeable implementations exist:
//     SimEngine, a deterministic discrete-event simulator of GPU-cluster
//     pipeline training driven by the paper's analytic cost model, and
//     NumericEngine, a numeric runtime — one goroutine per stage, channels
//     as the interconnect, a pure-Go tensor library underneath — that
//     executes the same schedules on real transformer math and proves the
//     semantics claim: HelixPipe's gradients are bit-identical to 1F1B's
//     and to a single device's.
//
//   - A Report is the unified result of one run: serializable to JSON and
//     CSV, with the ASCII/SVG timeline renderers hanging off it.
//
// Both engines consume the same schedule IR. Methods live in a registry
// (internal/sched): the HelixPipe variants (attention parallel partition
// with naive or two-fold FILO schedules, with or without recomputation
// without attention) register from internal/core, and the baselines GPipe,
// 1F1B, interleaved 1F1B, ZB1P, ZB2P and AdaPipe register from
// internal/sched itself. Methods() and the command-line tools are
// registry-driven.
//
// Quick start:
//
//	s, err := helixpipe.NewSession(helixpipe.Model7B(), helixpipe.H20Cluster(),
//		helixpipe.WithSeqLen(131072), helixpipe.WithStages(8))
//	report, err := s.Simulate(helixpipe.MethodHelix)
//	// report.Sim.IterationSeconds, report.Sim.TokensPerSecond, ...
//	data, err := json.Marshal(report)
//
// Session.Sweep fans a method x sequence-length x stages grid out across
// goroutines; Session.NumericEngine runs the same plans numerically:
//
//	reports, err := s.Sweep(helixpipe.Sweep{
//		Methods: []helixpipe.Method{helixpipe.Method1F1B, helixpipe.MethodHelix},
//		SeqLens: []int{32768, 65536, 131072},
//		Stages:  []int{2, 4, 8},
//	})
//	parity, err := s.Run(s.NumericEngine(42), helixpipe.MethodHelix)
//
// Whole experiments are declarative: an ExperimentSpec is a JSON-round-
// trippable description of everything a run needs (model, cluster, topology,
// placement, perturbation, workload, methods, engine, sweep axes, tune grid,
// output selection). ParseSpec reads one, Resolve validates it eagerly into a
// Session plus a RunSet, and Session.Execute streams its Reports as an
// iter.Seq2 so arbitrarily large sweeps never buffer:
//
//	spec, err := helixpipe.ParseSpecFile("examples/spec_driven/paper_128k.json")
//	session, runset, err := spec.Resolve()
//	for report, err := range session.Execute(spec) { ... }
//
// The command-line tools build on the same spec: every tool accepts
// -spec file.json (flags become overrides layered onto the spec) and
// -emit-spec to write back the fully-resolved spec for exact reproduction.
package helixpipe

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tune"
)

// Model and cluster configuration types.
type (
	// ModelConfig describes a GPT-family transformer (paper Table 3).
	ModelConfig = model.Config
	// ClusterSpec describes a GPU cluster testbed.
	ClusterSpec = costmodel.ClusterSpec
	// GPUSpec describes one GPU type.
	GPUSpec = costmodel.GPUSpec
	// Workload binds a model, cluster and micro-batch shape.
	Workload = costmodel.Workload
	// Shape is a micro-batch shape (batch, sequence length).
	Shape = model.Shape
	// BatchSpec is the per-micro-batch shape list of one iteration — the
	// variable-length workload description consumed by WithWorkload.
	BatchSpec = model.BatchSpec
	// LengthBucket is one bin of a sequence-length histogram.
	LengthBucket = model.LengthBucket
	// LengthDist names a synthetic document-length distribution.
	LengthDist = model.LengthDist
)

// The synthetic document-length distributions.
const (
	DistUniform  = model.DistUniform
	DistBimodal  = model.DistBimodal
	DistLongTail = model.DistLongTail
)

// Cluster topology and placement types (internal/cluster). A ClusterTopology
// describes nodes of devices with intra-node links and an inter-node fabric;
// a Placement maps pipeline stages onto its devices; a Perturb injects
// faults and stragglers. Set them on a session with WithCluster,
// WithPlacement and WithPerturb.
type (
	// ClusterTopology is a physical cluster: nodes of devices, per-node intra
	// links, one inter-node fabric.
	ClusterTopology = cluster.Cluster
	// ClusterNode is one machine of a ClusterTopology.
	ClusterNode = cluster.Node
	// ClusterLink is one link class instance (bandwidth + latency).
	ClusterLink = cluster.Link
	// LinkClass names an interconnect class ("nvlink", "pcie", "ib", ...).
	LinkClass = cluster.LinkClass
	// Placement maps pipeline stages onto cluster devices.
	Placement = cluster.Placement
	// PlacementSearchOptions tunes the greedy placement search.
	PlacementSearchOptions = cluster.SearchOptions
	// Perturb is a fault/straggler injection: a slow device, a degraded link
	// class, per-iteration compute jitter.
	Perturb = cluster.Perturb
	// LinkTraffic is one link class's share of a simulated iteration's
	// communication.
	LinkTraffic = sim.LinkClassStats
	// MBOrder names a micro-batch execution-order policy for variable-length
	// workloads (BatchSpec.Ordered).
	MBOrder = model.MBOrder
)

// The link classes of cluster topologies.
const (
	LinkNVLink   = cluster.ClassNVLink
	LinkPCIe     = cluster.ClassPCIe
	LinkIB       = cluster.ClassIB
	LinkEthernet = cluster.ClassEthernet
)

// The placement strategies.
const (
	PlacementContiguous = cluster.StrategyContiguous
	PlacementRoundRobin = cluster.StrategyRoundRobin
	PlacementGreedy     = cluster.StrategyGreedy
)

// The micro-batch ordering policies.
const (
	OrderPacked        = model.OrderPacked
	OrderLongestFirst  = model.OrderLongestFirst
	OrderShortestFirst = model.OrderShortestFirst
	OrderBalanced      = model.OrderBalanced
)

// Topologies returns the built-in cluster topology presets (DGX-A800x4,
// DGX-H20x2, PCIe-box).
func Topologies() []ClusterTopology { return cluster.Presets() }

// TopologyByName resolves a built-in topology preset case-insensitively and
// reports whether it exists.
func TopologyByName(name string) (ClusterTopology, bool) { return cluster.PresetByName(name) }

// TopologyListing renders the preset table as the command-line tools print
// it.
func TopologyListing() string { return cluster.PresetListing() }

// TopologyFromJSON decodes and validates a custom cluster topology (see the
// cluster JSON schema in the README).
func TopologyFromJSON(r io.Reader) (ClusterTopology, error) { return cluster.FromJSON(r) }

// LoadTopologyFile reads and validates a custom cluster topology from a
// JSON file.
func LoadTopologyFile(path string) (ClusterTopology, error) { return cluster.LoadFile(path) }

// PlacementStrategies lists the built-in placement strategies in search
// order: contiguous, roundrobin, greedy.
func PlacementStrategies() []string { return cluster.Strategies() }

// GeneratePlacement builds the named strategy's placement of stages onto the
// topology's devices; greedy minimizes the modeled P2P cost of the traffic
// matrix (Plan.TrafficMatrix) under a deterministic seeded local search.
func GeneratePlacement(strategy string, c ClusterTopology, stages int, traffic [][]int64,
	opt PlacementSearchOptions) (Placement, error) {
	return cluster.Generate(strategy, c, stages, traffic, opt)
}

// ParsePerturb parses the -perturb flag syntax: comma-separated
// "slow=<device>x<factor>", "link=<class>x<factor>", "jitter=<fraction>",
// "seed=<n>" clauses.
func ParsePerturb(s string) (Perturb, error) { return cluster.ParsePerturb(s) }

// MBOrderByName resolves a micro-batch ordering policy name ("packed",
// "longest", "shortest", "balanced") and reports whether it exists.
func MBOrderByName(name string) (MBOrder, bool) { return model.OrderByName(name) }

// FlatClusterNames lists the flat cost-model cluster presets ("H20",
// "A800") in preset order.
func FlatClusterNames() []string {
	clusters := costmodel.Clusters()
	names := make([]string, len(clusters))
	for i, cl := range clusters {
		names[i] = cl.Name
	}
	return names
}

// ClusterListing renders every resolvable -cluster argument — the flat
// cost-model presets followed by the topology presets — as the command-line
// tools print it on an unknown cluster name.
func ClusterListing() string {
	var b strings.Builder
	for _, cl := range costmodel.Clusters() {
		fmt.Fprintf(&b, "  %-12s flat %s testbed (one-hop NIC model)\n", cl.Name, cl.GPU.Name)
	}
	b.WriteString(cluster.PresetListing())
	return b.String()
}

// ResolveCluster resolves a -cluster style argument: a flat cost-model
// preset name ("H20", "A800"), a topology preset name ("DGX-A800x4",
// "DGX-H20x2", "PCIe-box"), or a path to a topology JSON file. Flat presets
// return a nil topology (the one-hop NIC model); topology arguments
// additionally return the cost-model ClusterSpec named by the topology's
// GPU field, which prices compute on its devices. An unknown name reports
// the full ClusterListing.
func ResolveCluster(arg string) (ClusterSpec, *ClusterTopology, error) {
	if cl, ok := costmodel.ClusterByName(arg); ok {
		return cl, nil, nil
	}
	var topo ClusterTopology
	if t, ok := cluster.PresetByName(arg); ok {
		topo = t
	} else if strings.HasSuffix(arg, ".json") {
		t, err := cluster.LoadFile(arg)
		if err != nil {
			return ClusterSpec{}, nil, err
		}
		topo = t
	} else {
		return ClusterSpec{}, nil, fmt.Errorf(
			"helixpipe: unknown cluster %q; the available clusters are:\n%s  (or a topology .json file)",
			arg, ClusterListing())
	}
	cl, ok := costmodel.ClusterByName(topo.GPU)
	if !ok {
		return ClusterSpec{}, nil, fmt.Errorf(
			"helixpipe: topology %s names GPU %q, not a flat cluster preset (%s)",
			topo.Name, topo.GPU, strings.Join(FlatClusterNames(), ", "))
	}
	return cl, &topo, nil
}

// UniformWorkload returns the classic fixed-shape iteration as a BatchSpec:
// m micro batches of shape (b, s).
func UniformWorkload(m, b, s int) BatchSpec { return model.UniformBatch(m, b, s) }

// SampleLengths draws n synthetic document lengths in [minLen, maxLen] from
// the distribution, deterministically from the seed.
func SampleLengths(dist LengthDist, n, minLen, maxLen int, seed uint64) ([]int, error) {
	return model.SampleLengths(dist, n, minLen, maxLen, seed)
}

// PackLengths bins document lengths into micro batches under a token budget
// with first-fit-decreasing bucketing; each micro batch pads its documents to
// its longest sequence.
func PackLengths(lengths []int, tokenBudget int64) (BatchSpec, error) {
	return model.PackLengths(lengths, tokenBudget)
}

// SyntheticWorkload samples n document lengths from the distribution and
// packs them under the token budget — the one-call constructor for
// variable-length workloads.
func SyntheticWorkload(dist LengthDist, n, minLen, maxLen int, tokenBudget int64, seed uint64) (BatchSpec, error) {
	return model.SyntheticBatchSpec(dist, n, minLen, maxLen, tokenBudget, seed)
}

// LengthDistByName resolves a distribution name ("uniform", "bimodal",
// "longtail") and reports whether it exists.
func LengthDistByName(name string) (LengthDist, bool) { return model.LengthDistByName(name) }

// Schedule types.
type (
	// Method names a pipeline parallelism.
	Method = sched.Method
	// Plan is a static pipeline schedule consumable by both engines.
	Plan = sched.Plan
	// ScheduleConfig carries pipeline size, micro batches and layers.
	ScheduleConfig = sched.Config
	// Costs is the cost book plans are annotated with.
	Costs = sched.Costs
	// BuildParams carries method-specific build knobs for the registry.
	BuildParams = sched.BuildParams
	// HelixOptions selects the HelixPipe variant.
	HelixOptions = core.Options
)

// Autotuner types (Session.Autotune).
type (
	// TuneSpec constrains the autotuner's configuration search.
	TuneSpec = tune.Spec
	// TuneResult is the outcome of one autotuner run: pruning accounting,
	// best-per-seqlen picks and the throughput-vs-peak-memory frontier.
	TuneResult = tune.Result
	// TunePoint is one evaluated configuration of an autotuner run.
	TunePoint = tune.Point
	// TuneCandidate is one grid point of the autotuner's search space.
	TuneCandidate = tune.Candidate
	// TuneWorkload is one named variable-length workload of a TuneSpec.
	TuneWorkload = tune.WorkloadSpec
)

// The autotuner's ranking objectives (TuneSpec.Objective).
const (
	TuneObjectiveThroughput      = tune.ObjectiveThroughput
	TuneObjectiveLatencyPerToken = tune.ObjectiveLatencyPerToken
)

// The autotuner's "why pruned" constraint names (TuneResult.Pruned keys).
const (
	TunePruneGeometry  = tune.PruneGeometry
	TunePruneMemory    = tune.PruneMemory
	TunePruneBuild     = tune.PruneBuild
	TunePruneSim       = tune.PruneSim
	TunePruneMeasured  = tune.PruneMeasured
	TunePrunePlacement = tune.PrunePlacement
)

// Simulation types.
type (
	// SimResult is a simulated iteration's metrics.
	SimResult = sim.Result
	// SimOptions tunes the simulator.
	SimOptions = sim.Options
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = bench.Table
)

// The implemented pipeline parallelisms.
const (
	MethodGPipe            = sched.MethodGPipe
	Method1F1B             = sched.Method1F1B
	MethodInterleaved      = sched.MethodInterleaved
	MethodZB1P             = sched.MethodZB1P
	MethodZB2P             = sched.MethodZB2P
	MethodAdaPipe          = sched.MethodAdaPipe
	MethodHelixNaive       = sched.MethodHelixNaive
	MethodHelix            = sched.MethodHelix
	MethodHelixNoRecompute = sched.MethodHelixNoRecompute
)

// Model presets (paper Table 3 plus the 13B model of Figure 4).
func Model1B3() ModelConfig { return model.Model1B3() }
func Model3B() ModelConfig  { return model.Model3B() }
func Model7B() ModelConfig  { return model.Model7B() }
func Model13B() ModelConfig { return model.Model13B() }

// TinyModel returns the miniature configuration used by the numeric runtime.
func TinyModel() ModelConfig { return model.TinyTest() }

// ModelByName resolves a model preset by name ("1.3B", "3B", "7B", "13B",
// "tiny") and reports whether it exists.
func ModelByName(name string) (ModelConfig, bool) {
	if name == "tiny" {
		return model.TinyTest(), true
	}
	return model.PresetByName(name)
}

// ModelNames lists every model preset name ModelByName resolves, paper
// models first.
func ModelNames() []string {
	presets := model.Presets()
	names := make([]string, 0, len(presets)+1)
	for _, mc := range presets {
		names = append(names, mc.Name)
	}
	return append(names, "tiny")
}

// Cluster presets (paper section 5.1 testbeds).
func H20Cluster() ClusterSpec  { return costmodel.H20Cluster() }
func A800Cluster() ClusterSpec { return costmodel.A800Cluster() }

// ClusterByName resolves a cluster preset by name ("H20", "A800") and
// reports whether it exists.
func ClusterByName(name string) (ClusterSpec, bool) {
	return costmodel.ClusterByName(name)
}

// Methods lists every registered pipeline parallelism, baselines first.
func Methods() []Method { return sched.Methods() }

// NewCosts builds the cost book of a workload.
func NewCosts(w Workload) Costs { return sched.NewCosts(w) }

// NewBatchCosts builds the per-micro-batch cost book of a variable-length
// workload: micro batch i is costed at spec.Shapes[i].
func NewBatchCosts(w Workload, spec BatchSpec) Costs { return sched.NewBatchCosts(w, spec) }

// UnitCosts returns the didactic 1:3:2 cost book of the paper's figures.
func UnitCosts(commTime float64) Costs { return sched.UnitCosts(commTime) }

// ValidatePlan checks a plan's structural and dataflow invariants.
func ValidatePlan(p *Plan) error { return sched.Validate(p) }

// BuildHelix constructs a HelixPipe plan with explicit options.
func BuildHelix(cfg ScheduleConfig, costs Costs, opt HelixOptions) (*Plan, error) {
	return core.Build(cfg, costs, opt)
}

// BuildMethod constructs any registered method's plan from an explicit
// schedule configuration, cost book and build parameters.
func BuildMethod(method Method, cfg ScheduleConfig, costs Costs, p BuildParams) (*Plan, error) {
	return sched.Build(method, cfg, costs, p)
}

// AttnStage exposes the attention parallel partition's placement function:
// the stage executing the attention of micro batch mb at layer l in a
// p-stage pipeline (paper section 4.2).
func AttnStage(layer, mb, stages int) int { return core.AttnStage(layer, mb, stages) }

// AllExperiments regenerates every paper table and figure.
func AllExperiments() ([]*ExperimentTable, error) { return bench.All() }

// BaselineConfig is one configuration of the recorded perf baseline
// (BENCH_baseline.json).
type BaselineConfig = bench.BaselineConfig

// ReadBaselineJSON decodes a recorded perf baseline artifact.
func ReadBaselineJSON(r io.Reader) ([]BaselineConfig, error) { return bench.ReadBaselineJSON(r) }

// CompareBaselines diffs a previous perf baseline against the current one
// and returns one line per throughput regression beyond the threshold (0.10
// = fail on a >10% drop). Configs or methods on only one side never count.
func CompareBaselines(prev, cur []BaselineConfig, threshold float64) []string {
	return bench.CompareBaselines(prev, cur, threshold)
}
