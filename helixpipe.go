// Package helixpipe is a Go reproduction of "HelixPipe: Efficient
// Distributed Training of Long Sequence Transformers with Attention Parallel
// Pipeline Parallelism" (PPoPP 2026).
//
// It packages two engines behind one API:
//
//   - A deterministic discrete-event simulator of GPU-cluster pipeline
//     training, driven by the paper's analytic cost model (Table 1 FLOP and
//     byte counts, H20/A800 cluster specs). It regenerates every performance
//     table and figure of the paper's evaluation.
//
//   - A numeric pipeline runtime — one goroutine per stage, channels as the
//     interconnect, a pure-Go tensor library underneath — that executes the
//     same schedules on real transformer math and proves the semantics
//     claim: HelixPipe's gradients are bit-identical to 1F1B's and to a
//     single device's.
//
// Both engines consume the same schedule IR. Plans are built per method:
// the HelixPipe variants (attention parallel partition with naive or
// two-fold FILO schedules, with or without recomputation without attention)
// plus the baselines GPipe, 1F1B, interleaved 1F1B, ZB1P and AdaPipe.
//
// Quick start:
//
//	s := helixpipe.NewScenario(helixpipe.Model7B(), helixpipe.H20Cluster(), 131072, 8)
//	res, err := s.Simulate(helixpipe.MethodHelix)
//	// res.IterationSeconds, res.PeakStashBytes, ...
package helixpipe

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Model and cluster configuration types.
type (
	// ModelConfig describes a GPT-family transformer (paper Table 3).
	ModelConfig = model.Config
	// ClusterSpec describes a GPU cluster testbed.
	ClusterSpec = costmodel.ClusterSpec
	// GPUSpec describes one GPU type.
	GPUSpec = costmodel.GPUSpec
	// Workload binds a model, cluster and micro-batch shape.
	Workload = costmodel.Workload
	// Shape is a micro-batch shape (batch, sequence length).
	Shape = model.Shape
)

// Schedule types.
type (
	// Method names a pipeline parallelism.
	Method = sched.Method
	// Plan is a static pipeline schedule consumable by both engines.
	Plan = sched.Plan
	// ScheduleConfig carries pipeline size, micro batches and layers.
	ScheduleConfig = sched.Config
	// Costs is the cost book plans are annotated with.
	Costs = sched.Costs
	// HelixOptions selects the HelixPipe variant.
	HelixOptions = core.Options
)

// Simulation types.
type (
	// SimResult is a simulated iteration's metrics.
	SimResult = sim.Result
	// SimOptions tunes the simulator.
	SimOptions = sim.Options
	// Scenario is a full experiment configuration.
	Scenario = bench.Scenario
	// ExperimentTable is a rendered experiment result.
	ExperimentTable = bench.Table
)

// The implemented pipeline parallelisms.
const (
	MethodGPipe            = sched.MethodGPipe
	Method1F1B             = sched.Method1F1B
	MethodInterleaved      = sched.MethodInterleaved
	MethodZB1P             = sched.MethodZB1P
	MethodAdaPipe          = sched.MethodAdaPipe
	MethodHelixNaive       = sched.MethodHelixNaive
	MethodHelix            = sched.MethodHelix
	MethodHelixNoRecompute = sched.MethodHelixNoRecompute
)

// Model presets (paper Table 3 plus the 13B model of Figure 4).
func Model1B3() ModelConfig { return model.Model1B3() }
func Model3B() ModelConfig  { return model.Model3B() }
func Model7B() ModelConfig  { return model.Model7B() }
func Model13B() ModelConfig { return model.Model13B() }

// TinyModel returns the miniature configuration used by the numeric runtime.
func TinyModel() ModelConfig { return model.TinyTest() }

// Cluster presets (paper section 5.1 testbeds).
func H20Cluster() ClusterSpec  { return costmodel.H20Cluster() }
func A800Cluster() ClusterSpec { return costmodel.A800Cluster() }

// Methods lists every implemented pipeline parallelism.
func Methods() []Method { return sched.Methods() }

// NewScenario builds a paper-default scenario: micro batch size 1 and
// m = 2p micro batches per iteration (section 5.1).
func NewScenario(m ModelConfig, cl ClusterSpec, seqLen, stages int) Scenario {
	return bench.NewScenario(m, cl, seqLen, stages)
}

// BuildPlan constructs the schedule plan for a method under a scenario.
func BuildPlan(s Scenario, method Method) (*Plan, error) { return s.BuildPlan(method) }

// BuildHelix constructs a HelixPipe plan with explicit options.
func BuildHelix(cfg ScheduleConfig, costs Costs, opt HelixOptions) (*Plan, error) {
	return core.Build(cfg, costs, opt)
}

// NewCosts builds the cost book of a workload.
func NewCosts(w Workload) Costs { return sched.NewCosts(w) }

// UnitCosts returns the didactic 1:3:2 cost book of the paper's figures.
func UnitCosts(commTime float64) Costs { return sched.UnitCosts(commTime) }

// ValidatePlan checks a plan's structural and dataflow invariants.
func ValidatePlan(p *Plan) error { return sched.Validate(p) }

// Simulate runs one simulated training iteration of a plan.
func Simulate(p *Plan, opt SimOptions) (*SimResult, error) { return sim.Run(p, opt) }

// TimelineASCII renders a simulated (traced) result as text lanes.
func TimelineASCII(res *SimResult, width int) string { return trace.ASCII(res, width) }

// TimelineSVG renders a simulated (traced) result as an SVG document.
func TimelineSVG(res *SimResult, width int) string { return trace.SVG(res, width) }

// AllExperiments regenerates every paper table and figure.
func AllExperiments() ([]*ExperimentTable, error) { return bench.All() }

// AttnStage exposes the attention parallel partition's placement function:
// the stage executing the attention of micro batch mb at layer l in a
// p-stage pipeline (paper section 4.2).
func AttnStage(layer, mb, stages int) int { return core.AttnStage(layer, mb, stages) }

// BuildBaseline constructs a baseline plan (GPipe, 1F1B, interleaved 1F1B,
// ZB1P, AdaPipe) from an explicit schedule configuration and cost book.
// AdaPipe receives an unlimited memory budget here; use Scenario.BuildPlan
// for budgeted AdaPipe runs.
func BuildBaseline(method Method, cfg ScheduleConfig, costs Costs) (*Plan, error) {
	return sched.Build(method, cfg, costs, 0)
}
