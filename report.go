package helixpipe

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tune"
)

// Engine names appearing in Report.Engine.
const (
	// EngineSim is the discrete-event cluster simulator.
	EngineSim = "sim"
	// EngineNumeric is the goroutine-per-stage numeric runtime.
	EngineNumeric = "numeric"
)

// StageMetrics is one pipeline stage's share of a simulated iteration.
type StageMetrics struct {
	// Stage is the pipeline stage index.
	Stage int `json:"stage"`
	// BusySeconds is the compute-busy time.
	BusySeconds float64 `json:"busy_seconds"`
	// IdleSeconds is the bubble plus recv waiting.
	IdleSeconds float64 `json:"idle_seconds"`
	// WaitSeconds is the time blocked in recvs.
	WaitSeconds float64 `json:"wait_seconds"`
	// CommStallSeconds is the time the compute stream spent in blocking sends.
	CommStallSeconds float64 `json:"comm_stall_seconds"`
	// PeakStashBytes is the peak activation stash.
	PeakStashBytes int64 `json:"peak_stash_bytes"`
	// BytesSent is the outbound traffic.
	BytesSent int64 `json:"bytes_sent"`
}

// SimMetrics summarises a simulated iteration inside a Report.
type SimMetrics struct {
	// IterationSeconds is the makespan of one training iteration.
	IterationSeconds float64 `json:"iteration_seconds"`
	// TokensPerSecond is the training throughput (zero when the report has
	// no token geometry).
	TokensPerSecond float64 `json:"tokens_per_second,omitempty"`
	// BubbleSeconds is the mean per-stage idle time.
	BubbleSeconds float64 `json:"bubble_seconds"`
	// BubbleFraction is BubbleSeconds over IterationSeconds.
	BubbleFraction float64 `json:"bubble_fraction"`
	// MaxPeakStashBytes is the largest per-stage stash peak.
	MaxPeakStashBytes int64 `json:"max_peak_stash_bytes"`
	// LinkTraffic breaks the iteration's communication down per link class
	// (nvlink, ib, ...), sorted by class name. Absent on flat-NIC runs.
	LinkTraffic []LinkTraffic `json:"link_traffic,omitempty"`
	// PerStage holds the per-stage breakdown.
	PerStage []StageMetrics `json:"per_stage"`
}

// NumericMetrics summarises a numerically executed iteration inside a
// Report. Gradients are not serialized; use Report.NumericResult for them.
type NumericMetrics struct {
	// Loss is the mean micro-batch loss.
	Loss float64 `json:"loss"`
}

// Report is the unified, serializable result of running one method on one
// engine. It marshals to stable JSON, renders CSV rows, and — when the
// simulation was traced — the ASCII and SVG timeline renderers hang off it.
type Report struct {
	// Method is the pipeline parallelism that ran.
	Method Method `json:"method"`
	// Engine is the engine that ran it (EngineSim or EngineNumeric).
	Engine string `json:"engine"`
	// Model and Cluster label the session configuration (empty on reports
	// from engines detached from a session).
	Model   string `json:"model,omitempty"`
	Cluster string `json:"cluster,omitempty"`
	// Topology names the cluster topology of a topology-aware run and
	// Placement lists the device each stage was placed on (absent on
	// flat-NIC runs).
	Topology  string `json:"topology,omitempty"`
	Placement []int  `json:"placement,omitempty"`
	// PlacementStrategy names the generator of the placement ("contiguous",
	// "roundrobin", "greedy", "custom").
	PlacementStrategy string `json:"placement_strategy,omitempty"`
	// SeqLen and MicroBatchSize are the micro-batch shape.
	SeqLen         int `json:"seq_len,omitempty"`
	MicroBatchSize int `json:"micro_batch_size,omitempty"`
	// Stages, MicroBatches and Layers are the plan geometry.
	Stages       int `json:"stages"`
	MicroBatches int `json:"micro_batches"`
	Layers       int `json:"layers"`
	// TokensPerIteration is the token count one iteration processes.
	TokensPerIteration int64 `json:"tokens_per_iteration,omitempty"`
	// MicroBatchTokens lists the per-micro-batch token counts of a
	// variable-length workload, in execution order (absent on fixed-shape
	// runs, where every micro batch carries SeqLen*MicroBatchSize tokens).
	MicroBatchTokens []int64 `json:"micro_batch_tokens,omitempty"`
	// SeqLenHistogram summarises the micro-batch sequence-length distribution
	// of a variable-length workload (absent on fixed-shape runs).
	SeqLenHistogram []LengthBucket `json:"seq_len_histogram,omitempty"`
	// RealTokens is the unpadded token count behind a packed variable-length
	// workload, and PadFraction the share of TokensPerIteration that is
	// padding (absent when the workload was not packed from documents).
	RealTokens  int64   `json:"real_tokens,omitempty"`
	PadFraction float64 `json:"pad_fraction,omitempty"`
	// Sim holds the simulator metrics (sim engine only).
	Sim *SimMetrics `json:"sim,omitempty"`
	// Numeric holds the numeric metrics (numeric engine only).
	Numeric *NumericMetrics `json:"numeric,omitempty"`
	// Telemetry is the run's provenance (wall clock, cache hit, runner
	// reuse). It is stamped only on observed sessions (WithEventSink), so
	// default runs — including the golden corpus and the byte-identity
	// CI diffs — marshal without it and stay byte-stable; StripTelemetry
	// removes it before any digest comparison that mixes both.
	Telemetry *ReportTelemetry `json:"telemetry,omitempty"`

	// Unserialized raw results, retained for timelines and gradient access.
	simResult     *sim.Result
	numericResult *exec.Result
}

// ReportTelemetry is a report's run provenance. Wall-clock fields vary run
// to run by construction — comparisons that expect byte-identical reports
// must strip the block first (StripTelemetry).
type ReportTelemetry struct {
	// WallSeconds is the cell's wall clock: the engine run for computed
	// reports, the cache wait for reports served from the report cache.
	WallSeconds float64 `json:"wall_seconds"`
	// CacheHit marks a report served from the report cache.
	CacheHit bool `json:"cache_hit"`
	// RunnerReused marks a simulation that ran on a recycled pooled Runner
	// (warm per-stage buffers) rather than a cold one.
	RunnerReused bool `json:"runner_reused,omitempty"`
}

// StripTelemetry removes the telemetry block from every report, in place.
// Golden-corpus digests and cached-vs-uncached byte comparisons call it so
// provenance never perturbs content equality.
func StripTelemetry(reports []*Report) {
	for _, r := range reports {
		if r != nil {
			r.Telemetry = nil
		}
	}
}

// reportMeta is the session-derived context an engine stamps onto reports.
type reportMeta struct {
	model, cluster     string
	topology, strategy string
	seqLen, microBatch int
	tokensPerIteration int64
}

func (s *Session) reportMeta() reportMeta {
	m := reportMeta{
		model:              s.model.Name,
		cluster:            s.cluster.Name,
		seqLen:             s.SeqLen(),
		microBatch:         s.MicroBatchSize(),
		tokensPerIteration: s.TokensPerIteration(),
	}
	if topo, ok := s.Topology(); ok {
		m.topology = topo.Name
	}
	if place, ok := s.Placement(); ok {
		m.strategy = place.Strategy
		if m.strategy == "" {
			m.strategy = "custom"
		}
	}
	return m
}

func newReport(plan *sched.Plan, engine string, meta reportMeta) *Report {
	r := &Report{
		Method:             plan.Method,
		Engine:             engine,
		Model:              meta.model,
		Cluster:            meta.cluster,
		SeqLen:             meta.seqLen,
		MicroBatchSize:     meta.microBatch,
		Stages:             plan.Stages,
		MicroBatches:       plan.MicroBatches,
		Layers:             plan.Layers,
		TokensPerIteration: meta.tokensPerIteration,
	}
	r.Topology = meta.topology
	r.PlacementStrategy = meta.strategy
	// Placed plans carry their device mapping; read it off the plan so
	// detached engines report it too.
	if len(plan.Placement) > 0 {
		r.Placement = append([]int(nil), plan.Placement...)
	}
	// Variable-length plans carry their batch spec; read the per-micro-batch
	// geometry off the plan so detached engines report it too.
	if len(plan.Batch.Shapes) > 0 {
		r.MicroBatchTokens = plan.Batch.TokensPerMB()
		r.SeqLenHistogram = plan.Batch.Histogram(8)
		r.RealTokens = plan.Batch.RealTokens
		r.PadFraction = plan.Batch.PadFraction()
		if r.TokensPerIteration == 0 {
			r.TokensPerIteration = plan.Batch.TotalTokens()
		}
		if r.SeqLen == 0 {
			r.SeqLen = plan.Batch.MaxSeqLen()
		}
	}
	return r
}

func newSimReport(plan *sched.Plan, res *sim.Result, meta reportMeta) *Report {
	r := newReport(plan, EngineSim, meta)
	r.simResult = res
	m := &SimMetrics{
		IterationSeconds:  res.IterationSeconds,
		BubbleSeconds:     res.BubbleSeconds(),
		MaxPeakStashBytes: res.MaxPeakStashBytes(),
		LinkTraffic:       append([]LinkTraffic(nil), res.LinkClasses...),
	}
	if res.IterationSeconds > 0 {
		m.BubbleFraction = m.BubbleSeconds / res.IterationSeconds
		if r.TokensPerIteration > 0 {
			m.TokensPerSecond = res.Throughput(r.TokensPerIteration)
		}
	}
	for st := 0; st < res.Stages; st++ {
		m.PerStage = append(m.PerStage, StageMetrics{
			Stage:            st,
			BusySeconds:      res.BusySeconds[st],
			IdleSeconds:      res.IdleSeconds[st],
			WaitSeconds:      res.WaitSeconds[st],
			CommStallSeconds: res.CommStallSeconds[st],
			PeakStashBytes:   res.PeakStashBytes[st],
			BytesSent:        res.BytesSent[st],
		})
	}
	r.Sim = m
	return r
}

func newNumericReport(plan *sched.Plan, res *exec.Result, meta reportMeta) *Report {
	r := newReport(plan, EngineNumeric, meta)
	r.numericResult = res
	r.Numeric = &NumericMetrics{Loss: res.Loss}
	return r
}

// SimResult returns the raw simulator result backing the report, or nil for
// numeric reports and reports decoded from JSON.
func (r *Report) SimResult() *SimResult { return r.simResult }

// NumericResult returns the raw numeric result (loss and full gradients)
// backing the report, or nil for sim reports and decoded reports.
func (r *Report) NumericResult() *NumericResult { return r.numericResult }

// TimelineASCII renders the traced simulation as text lanes, one per stage.
// It returns an empty string when the report has no traced sim result (run
// the session with WithTrace, or set SimOptions.Trace).
func (r *Report) TimelineASCII(width int) string {
	if r.simResult == nil || len(r.simResult.Spans) == 0 {
		return ""
	}
	return trace.ASCII(r.simResult, width)
}

// TimelineSVG renders the traced simulation as an SVG document, or an empty
// string when the report has no traced sim result.
func (r *Report) TimelineSVG(width int) string {
	if r.simResult == nil || len(r.simResult.Spans) == 0 {
		return ""
	}
	return trace.SVG(r.simResult, width)
}

// perfettoLabel names a report's process lane in a Perfetto trace.
func (r *Report) perfettoLabel() string {
	label := fmt.Sprintf("%s seq=%d p=%d", r.Method, r.SeqLen, r.Stages)
	if r.MicroBatchSize > 1 {
		label += fmt.Sprintf(" b=%d", r.MicroBatchSize)
	}
	return label
}

// WritePerfettoTrace writes the traced reports as one Chrome/Perfetto
// trace-event JSON document, loadable in ui.perfetto.dev: one process per
// report (named by method and geometry), one thread lane per pipeline
// stage, and flow events linking each send to its receive across lanes.
// Reports without traced sim results are skipped; when none of the reports
// carries spans an error is returned instead of an empty trace (run with
// trace enabled, e.g. spec `trace` or Output.Perfetto).
func WritePerfettoTrace(w io.Writer, reports []*Report) error {
	t := obs.NewTrace()
	pid := 0
	for _, r := range reports {
		if r == nil || r.simResult == nil || len(r.simResult.Spans) == 0 {
			continue
		}
		pid++
		trace.Perfetto(t, r.simResult, pid, r.perfettoLabel())
	}
	if pid == 0 {
		return fmt.Errorf("helixpipe: no traced sim reports to export as a Perfetto trace (enable tracing)")
	}
	return t.WriteJSON(w)
}

// ReportCSVHeader returns the column names of Report.CSVRow.
func ReportCSVHeader() []string {
	return []string{
		"method", "engine", "model", "cluster",
		"topology", "placement_strategy", "placement",
		"seq_len", "micro_batch_size", "stages", "micro_batches", "layers",
		"tokens_per_iteration", "pad_fraction", "mb_tokens", "seq_len_hist",
		"iteration_seconds", "tokens_per_second", "bubble_fraction",
		"max_peak_stash_bytes", "link_traffic", "loss",
		"wall_seconds", "cache_hit",
	}
}

// CSVRow renders the report as one CSV row matching ReportCSVHeader.
// Engine-specific columns are empty when they do not apply; the
// variable-length columns (pad_fraction, mb_tokens, seq_len_hist) are empty
// on fixed-shape runs, the topology columns (topology, placement_strategy,
// placement, link_traffic) on flat-NIC runs.
func (r *Report) CSVRow() []string {
	iter, tput, bubble, stash, loss := "", "", "", "", ""
	var linkTraffic []string
	if r.Sim != nil {
		iter = fmt.Sprintf("%g", r.Sim.IterationSeconds)
		tput = fmt.Sprintf("%g", r.Sim.TokensPerSecond)
		bubble = fmt.Sprintf("%g", r.Sim.BubbleFraction)
		stash = fmt.Sprintf("%d", r.Sim.MaxPeakStashBytes)
		for _, lt := range r.Sim.LinkTraffic {
			linkTraffic = append(linkTraffic, fmt.Sprintf("%s:%d", lt.Class, lt.Bytes))
		}
	}
	if r.Numeric != nil {
		loss = fmt.Sprintf("%g", r.Numeric.Loss)
	}
	var placement []string
	for _, d := range r.Placement {
		placement = append(placement, fmt.Sprintf("%d", d))
	}
	padFraction := ""
	if r.PadFraction > 0 {
		padFraction = fmt.Sprintf("%g", r.PadFraction)
	}
	var mbTokens []string
	for _, t := range r.MicroBatchTokens {
		mbTokens = append(mbTokens, fmt.Sprintf("%d", t))
	}
	var hist []string
	for _, b := range r.SeqLenHistogram {
		hist = append(hist, fmt.Sprintf("%d-%d:%d", b.MinSeqLen, b.MaxSeqLen, b.MicroBatches))
	}
	// The telemetry columns are empty on unobserved runs, so default CSV
	// output stays deterministic.
	wall, cacheHit := "", ""
	if r.Telemetry != nil {
		wall = fmt.Sprintf("%g", r.Telemetry.WallSeconds)
		cacheHit = fmt.Sprintf("%t", r.Telemetry.CacheHit)
	}
	return []string{
		string(r.Method), r.Engine, r.Model, r.Cluster,
		r.Topology, r.PlacementStrategy, strings.Join(placement, ";"),
		fmt.Sprintf("%d", r.SeqLen), fmt.Sprintf("%d", r.MicroBatchSize),
		fmt.Sprintf("%d", r.Stages), fmt.Sprintf("%d", r.MicroBatches),
		fmt.Sprintf("%d", r.Layers),
		fmt.Sprintf("%d", r.TokensPerIteration), padFraction,
		strings.Join(mbTokens, ";"), strings.Join(hist, ";"),
		iter, tput, bubble, stash, strings.Join(linkTraffic, ";"), loss,
		wall, cacheHit,
	}
}

// ReportCSVWriter streams reports as CSV rows: the header goes out when the
// writer is built, each Write flushes one row, so a sink tailing the file
// sees rows as sweep cells complete rather than after the whole run. Rows
// match ReportCSVHeader.
type ReportCSVWriter struct {
	cw *csv.Writer
}

// NewReportCSVWriter writes the CSV header and returns the row writer.
func NewReportCSVWriter(w io.Writer) (*ReportCSVWriter, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(ReportCSVHeader()); err != nil {
		return nil, err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return nil, err
	}
	return &ReportCSVWriter{cw: cw}, nil
}

// Write appends one report row and flushes it through to the sink.
func (w *ReportCSVWriter) Write(r *Report) error {
	if err := w.cw.Write(r.CSVRow()); err != nil {
		return err
	}
	w.cw.Flush()
	return w.cw.Error()
}

// WriteReportsCSV writes a header plus one row per report.
func WriteReportsCSV(w io.Writer, reports []*Report) error {
	sw, err := NewReportCSVWriter(w)
	if err != nil {
		return err
	}
	for _, r := range reports {
		if err := sw.Write(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteReportsJSON writes the reports as an indented JSON array.
func WriteReportsJSON(w io.Writer, reports []*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// WriteTuneResultJSON writes an autotuner result as indented JSON: the
// search accounting (grid size, "why pruned" count per constraint, memoized
// cost-model evaluations), the best pick per sequence length, the Pareto
// frontier, and every evaluated point.
func WriteTuneResultJSON(w io.Writer, r *TuneResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// TuneCSVHeader returns the column names of the autotuner's CSV rows.
func TuneCSVHeader() []string { return tune.CSVHeader() }

// WriteTuneResultCSV writes every evaluated point of an autotuner result as
// CSV, one row per configuration, matching TuneCSVHeader.
func WriteTuneResultCSV(w io.Writer, r *TuneResult) error {
	return tune.WriteCSV(w, r.Points)
}

// WriteTablesJSON writes experiment tables as an indented JSON array.
func WriteTablesJSON(w io.Writer, tables []*ExperimentTable) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tables)
}

// MethodInfo describes one registered pipeline parallelism.
type MethodInfo struct {
	// Name is the canonical method name.
	Name Method
	// Description is a one-line summary.
	Description string
}

// MethodInfos lists every registered method with its description, baselines
// first.
func MethodInfos() []MethodInfo {
	regs := sched.Registrations()
	out := make([]MethodInfo, len(regs))
	for i, r := range regs {
		out[i] = MethodInfo{Name: r.Name, Description: r.Description}
	}
	return out
}

// LookupMethod resolves a method name case-insensitively against the
// registry and reports whether it is registered.
func LookupMethod(name string) (Method, bool) {
	r, ok := sched.Lookup(name)
	if !ok {
		return "", false
	}
	return r.Name, true
}

// MethodListing renders the registry's method table — one line per method
// with its description — as the command-line tools print it on
// "-method help" or an unknown name.
func MethodListing() string {
	var b strings.Builder
	for _, info := range MethodInfos() {
		fmt.Fprintf(&b, "  %-22s %s\n", info.Name, info.Description)
	}
	return b.String()
}
