// Long-context planning: which pipeline parallelism should serve a given
// sequence length on a given cluster? This example fans a Session.Sweep over
// 32k-128k on both paper testbeds and reports the winner and the HelixPipe
// gain, reproducing the scalability story of Figure 8 — including the
// A800/32k regime where the two-fold FILO communication cannot hide behind
// attention and plain 1F1B is the right choice.
//
// Run with: go run ./examples/long_context
package main

import (
	"fmt"
	"log"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	methods := []helixpipe.Method{
		helixpipe.Method1F1B, helixpipe.MethodZB1P, helixpipe.MethodAdaPipe, helixpipe.MethodHelix,
	}
	seqLens := []int{32768, 65536, 98304, 131072}
	fmt.Printf("%-6s %-6s %-34s %-12s %s\n", "seq", "nodes", "tokens/s per method (1F1B/ZB1P/AdaPipe/Helix)", "winner", "Helix vs best baseline")
	for _, cl := range []helixpipe.ClusterSpec{helixpipe.H20Cluster(), helixpipe.A800Cluster()} {
		session, err := helixpipe.NewSession(helixpipe.Model7B(), cl, helixpipe.WithStages(8))
		if err != nil {
			log.Fatal(err)
		}
		// One sweep per cluster: methods x sequence lengths, fanned out
		// across goroutines, reports back in deterministic grid order.
		reports, err := session.Sweep(helixpipe.Sweep{Methods: methods, SeqLens: seqLens})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s cluster (%.0f GB/s inter-node, %s GPUs)\n", cl.Name, cl.InterNodeGBps, cl.GPU.Name)
		for i, seq := range seqLens {
			row := reports[i*len(methods) : (i+1)*len(methods)]
			tputs := make([]float64, len(row))
			winner, best, baseline := helixpipe.Method(""), 0.0, 0.0
			for j, r := range row {
				tputs[j] = r.Sim.TokensPerSecond
				if tputs[j] > best {
					best, winner = tputs[j], r.Method
				}
				if r.Method != helixpipe.MethodHelix && tputs[j] > baseline {
					baseline = tputs[j]
				}
			}
			fmt.Printf("%-6s %-6d %8.0f /%8.0f /%8.0f /%8.0f   %-12s %+.1f%%\n",
				fmt.Sprintf("%dk", seq/1024), session.Stages(),
				tputs[0], tputs[1], tputs[2], tputs[3], winner,
				(tputs[3]/baseline-1)*100)
		}
	}
	fmt.Println("\nRule of thumb (paper section 5.3): HelixPipe wins once per-layer attention time")
	fmt.Println("exceeds the 2bsh p2p transfer time; below that crossover, stay on 1F1B.")
}
