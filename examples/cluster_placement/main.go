// Cluster topology and placement end to end: simulate the same HelixPipe
// plan on a single NVLink node versus a multi-node InfiniBand cluster,
// compare the placement strategies on the multi-node topology, let the
// autotuner pick a placement per configuration, and inject a straggler and
// a degraded fabric to see how the schedule absorbs them.
//
// Run with: go run ./examples/cluster_placement
package main

import (
	"fmt"
	"log"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)

	// 1. A 16-stage 7B pipeline on the 4-node DGX-A800 topology. With the
	// flat cost model every hop would cost InfiniBand; with the topology,
	// stages placed on the same node talk over NVLink instead.
	topo, _ := helixpipe.TopologyByName("DGX-A800x4")
	base, err := helixpipe.NewSession(helixpipe.Model7B(), helixpipe.A800Cluster(),
		helixpipe.WithSeqLen(65536), helixpipe.WithStages(16))
	if err != nil {
		log.Fatal(err)
	}
	placed, err := base.With(helixpipe.WithCluster(topo))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster: %s\n\n", topo)
	flat, err := base.Simulate(helixpipe.MethodHelix)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s iteration %6.3f s  %8.0f tokens/s\n",
		"flat NIC (every hop IB)", flat.Sim.IterationSeconds, flat.Sim.TokensPerSecond)

	// 2. The placement strategies. Contiguous keeps pipeline neighbours on
	// one node; round robin deals them across nodes (every boundary pays
	// IB); greedy searches against the plan's traffic matrix.
	for _, strategy := range helixpipe.PlacementStrategies() {
		placement, err := placed.PlacementFor(helixpipe.MethodHelix, strategy, 1)
		if err != nil {
			log.Fatal(err)
		}
		run, err := placed.With(helixpipe.WithPlacement(placement))
		if err != nil {
			log.Fatal(err)
		}
		report, err := run.Simulate(helixpipe.MethodHelix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s iteration %6.3f s  %8.0f tokens/s",
			strategy, report.Sim.IterationSeconds, report.Sim.TokensPerSecond)
		for _, lt := range report.Sim.LinkTraffic {
			fmt.Printf("  %s %.1f GB", lt.Class, float64(lt.Bytes)/(1<<30))
		}
		fmt.Println()
	}

	// 3. Fault and straggler scenarios on the contiguous placement: one
	// device at half speed, then the IB fabric at half bandwidth.
	fmt.Println("\nperturbations (contiguous placement):")
	for _, scenario := range []string{"slow=5x2.0", "link=ibx0.5", "jitter=0.05,seed=7"} {
		perturb, err := helixpipe.ParsePerturb(scenario)
		if err != nil {
			log.Fatal(err)
		}
		run, err := placed.With(helixpipe.WithPerturb(perturb))
		if err != nil {
			log.Fatal(err)
		}
		report, err := run.Simulate(helixpipe.MethodHelix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s iteration %6.3f s  %8.0f tokens/s\n",
			scenario, report.Sim.IterationSeconds, report.Sim.TokensPerSecond)
	}

	// 4. The autotuner searches placements per grid point on the topology
	// and reports the best strategy next to each winning configuration.
	result, err := placed.Autotune(helixpipe.TuneSpec{
		Methods: []helixpipe.Method{helixpipe.Method1F1B, helixpipe.MethodHelix},
		SeqLens: []int{65536},
		Stages:  []int{8, 16, 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(result.BestTable())
}
